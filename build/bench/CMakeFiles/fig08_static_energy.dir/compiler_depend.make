# Empty compiler generated dependencies file for fig08_static_energy.
# This may be replaced when dependencies are built.

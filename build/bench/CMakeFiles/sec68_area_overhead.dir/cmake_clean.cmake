file(REMOVE_RECURSE
  "CMakeFiles/sec68_area_overhead.dir/sec68_area_overhead.cpp.o"
  "CMakeFiles/sec68_area_overhead.dir/sec68_area_overhead.cpp.o.d"
  "sec68_area_overhead"
  "sec68_area_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec68_area_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

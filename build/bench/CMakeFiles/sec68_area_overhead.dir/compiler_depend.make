# Empty compiler generated dependencies file for sec68_area_overhead.
# This may be replaced when dependencies are built.

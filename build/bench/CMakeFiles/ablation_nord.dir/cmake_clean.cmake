file(REMOVE_RECURSE
  "CMakeFiles/ablation_nord.dir/ablation_nord.cpp.o"
  "CMakeFiles/ablation_nord.dir/ablation_nord.cpp.o.d"
  "ablation_nord"
  "ablation_nord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_nord.
# This may be replaced when dependencies are built.

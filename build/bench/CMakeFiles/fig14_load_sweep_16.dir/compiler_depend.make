# Empty compiler generated dependencies file for fig14_load_sweep_16.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_load_sweep_16.dir/fig14_load_sweep_16.cpp.o"
  "CMakeFiles/fig14_load_sweep_16.dir/fig14_load_sweep_16.cpp.o.d"
  "fig14_load_sweep_16"
  "fig14_load_sweep_16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_load_sweep_16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

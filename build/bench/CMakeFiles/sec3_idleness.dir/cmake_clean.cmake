file(REMOVE_RECURSE
  "CMakeFiles/sec3_idleness.dir/sec3_idleness.cpp.o"
  "CMakeFiles/sec3_idleness.dir/sec3_idleness.cpp.o.d"
  "sec3_idleness"
  "sec3_idleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_idleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

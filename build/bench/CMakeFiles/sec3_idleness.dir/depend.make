# Empty dependencies file for sec3_idleness.
# This may be replaced when dependencies are built.

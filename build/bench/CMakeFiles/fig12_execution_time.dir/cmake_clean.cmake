file(REMOVE_RECURSE
  "CMakeFiles/fig12_execution_time.dir/fig12_execution_time.cpp.o"
  "CMakeFiles/fig12_execution_time.dir/fig12_execution_time.cpp.o.d"
  "fig12_execution_time"
  "fig12_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_execution_time.
# This may be replaced when dependencies are built.

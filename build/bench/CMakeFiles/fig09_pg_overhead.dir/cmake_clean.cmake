file(REMOVE_RECURSE
  "CMakeFiles/fig09_pg_overhead.dir/fig09_pg_overhead.cpp.o"
  "CMakeFiles/fig09_pg_overhead.dir/fig09_pg_overhead.cpp.o.d"
  "fig09_pg_overhead"
  "fig09_pg_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pg_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig01_power_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_wakeup_threshold.dir/fig07_wakeup_threshold.cpp.o"
  "CMakeFiles/fig07_wakeup_threshold.dir/fig07_wakeup_threshold.cpp.o.d"
  "fig07_wakeup_threshold"
  "fig07_wakeup_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_wakeup_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

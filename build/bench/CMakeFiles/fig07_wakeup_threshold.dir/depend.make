# Empty dependencies file for fig07_wakeup_threshold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig15_load_sweep_64.dir/fig15_load_sweep_64.cpp.o"
  "CMakeFiles/fig15_load_sweep_64.dir/fig15_load_sweep_64.cpp.o.d"
  "fig15_load_sweep_64"
  "fig15_load_sweep_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_load_sweep_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

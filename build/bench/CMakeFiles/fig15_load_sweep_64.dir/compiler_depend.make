# Empty compiler generated dependencies file for fig15_load_sweep_64.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig06_router_criticality.
# This may be replaced when dependencies are built.

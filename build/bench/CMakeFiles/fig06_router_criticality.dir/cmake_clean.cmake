file(REMOVE_RECURSE
  "CMakeFiles/fig06_router_criticality.dir/fig06_router_criticality.cpp.o"
  "CMakeFiles/fig06_router_criticality.dir/fig06_router_criticality.cpp.o.d"
  "fig06_router_criticality"
  "fig06_router_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_router_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

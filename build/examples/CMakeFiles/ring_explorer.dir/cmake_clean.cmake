file(REMOVE_RECURSE
  "CMakeFiles/ring_explorer.dir/ring_explorer.cpp.o"
  "CMakeFiles/ring_explorer.dir/ring_explorer.cpp.o.d"
  "ring_explorer"
  "ring_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

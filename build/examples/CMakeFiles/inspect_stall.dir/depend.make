# Empty dependencies file for inspect_stall.
# This may be replaced when dependencies are built.

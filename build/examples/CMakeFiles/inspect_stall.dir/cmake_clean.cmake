file(REMOVE_RECURSE
  "CMakeFiles/inspect_stall.dir/inspect_stall.cpp.o"
  "CMakeFiles/inspect_stall.dir/inspect_stall.cpp.o.d"
  "inspect_stall"
  "inspect_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

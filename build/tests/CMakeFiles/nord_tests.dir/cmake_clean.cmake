file(REMOVE_RECURSE
  "CMakeFiles/nord_tests.dir/test_deadlock.cc.o"
  "CMakeFiles/nord_tests.dir/test_deadlock.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_kernel.cc.o"
  "CMakeFiles/nord_tests.dir/test_kernel.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_link.cc.o"
  "CMakeFiles/nord_tests.dir/test_link.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_network_basic.cc.o"
  "CMakeFiles/nord_tests.dir/test_network_basic.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_ni.cc.o"
  "CMakeFiles/nord_tests.dir/test_ni.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_nord.cc.o"
  "CMakeFiles/nord_tests.dir/test_nord.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_parsec.cc.o"
  "CMakeFiles/nord_tests.dir/test_parsec.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_power_gating.cc.o"
  "CMakeFiles/nord_tests.dir/test_power_gating.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_power_model.cc.o"
  "CMakeFiles/nord_tests.dir/test_power_model.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_rng.cc.o"
  "CMakeFiles/nord_tests.dir/test_rng.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_routing.cc.o"
  "CMakeFiles/nord_tests.dir/test_routing.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_stats.cc.o"
  "CMakeFiles/nord_tests.dir/test_stats.cc.o.d"
  "CMakeFiles/nord_tests.dir/test_topology.cc.o"
  "CMakeFiles/nord_tests.dir/test_topology.cc.o.d"
  "nord_tests"
  "nord_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nord_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_deadlock.cc" "tests/CMakeFiles/nord_tests.dir/test_deadlock.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_deadlock.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/nord_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_link.cc" "tests/CMakeFiles/nord_tests.dir/test_link.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_link.cc.o.d"
  "/root/repo/tests/test_network_basic.cc" "tests/CMakeFiles/nord_tests.dir/test_network_basic.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_network_basic.cc.o.d"
  "/root/repo/tests/test_ni.cc" "tests/CMakeFiles/nord_tests.dir/test_ni.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_ni.cc.o.d"
  "/root/repo/tests/test_nord.cc" "tests/CMakeFiles/nord_tests.dir/test_nord.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_nord.cc.o.d"
  "/root/repo/tests/test_parsec.cc" "tests/CMakeFiles/nord_tests.dir/test_parsec.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_parsec.cc.o.d"
  "/root/repo/tests/test_power_gating.cc" "tests/CMakeFiles/nord_tests.dir/test_power_gating.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_power_gating.cc.o.d"
  "/root/repo/tests/test_power_model.cc" "tests/CMakeFiles/nord_tests.dir/test_power_model.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_power_model.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/nord_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_routing.cc" "tests/CMakeFiles/nord_tests.dir/test_routing.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_routing.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/nord_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/nord_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/nord_tests.dir/test_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nord.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for nord_tests.
# This may be replaced when dependencies are built.

src/CMakeFiles/nord.dir/power/tech_params.cc.o: \
 /root/repo/src/power/tech_params.cc /usr/include/stdc-predef.h \
 /root/repo/src/power/tech_params.hh

# Empty compiler generated dependencies file for nord.
# This may be replaced when dependencies are built.

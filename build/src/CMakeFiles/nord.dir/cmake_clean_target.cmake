file(REMOVE_RECURSE
  "libnord.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cc" "src/CMakeFiles/nord.dir/common/log.cc.o" "gcc" "src/CMakeFiles/nord.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/nord.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/nord.dir/common/rng.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/nord.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/nord.dir/common/trace.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/nord.dir/common/types.cc.o" "gcc" "src/CMakeFiles/nord.dir/common/types.cc.o.d"
  "/root/repo/src/core/nord_controller.cc" "src/CMakeFiles/nord.dir/core/nord_controller.cc.o" "gcc" "src/CMakeFiles/nord.dir/core/nord_controller.cc.o.d"
  "/root/repo/src/network/link.cc" "src/CMakeFiles/nord.dir/network/link.cc.o" "gcc" "src/CMakeFiles/nord.dir/network/link.cc.o.d"
  "/root/repo/src/network/noc_config.cc" "src/CMakeFiles/nord.dir/network/noc_config.cc.o" "gcc" "src/CMakeFiles/nord.dir/network/noc_config.cc.o.d"
  "/root/repo/src/network/noc_system.cc" "src/CMakeFiles/nord.dir/network/noc_system.cc.o" "gcc" "src/CMakeFiles/nord.dir/network/noc_system.cc.o.d"
  "/root/repo/src/ni/network_interface.cc" "src/CMakeFiles/nord.dir/ni/network_interface.cc.o" "gcc" "src/CMakeFiles/nord.dir/ni/network_interface.cc.o.d"
  "/root/repo/src/power/area_model.cc" "src/CMakeFiles/nord.dir/power/area_model.cc.o" "gcc" "src/CMakeFiles/nord.dir/power/area_model.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/nord.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/nord.dir/power/power_model.cc.o.d"
  "/root/repo/src/power/tech_params.cc" "src/CMakeFiles/nord.dir/power/tech_params.cc.o" "gcc" "src/CMakeFiles/nord.dir/power/tech_params.cc.o.d"
  "/root/repo/src/powergate/pg_controller.cc" "src/CMakeFiles/nord.dir/powergate/pg_controller.cc.o" "gcc" "src/CMakeFiles/nord.dir/powergate/pg_controller.cc.o.d"
  "/root/repo/src/router/router.cc" "src/CMakeFiles/nord.dir/router/router.cc.o" "gcc" "src/CMakeFiles/nord.dir/router/router.cc.o.d"
  "/root/repo/src/routing/routing_policy.cc" "src/CMakeFiles/nord.dir/routing/routing_policy.cc.o" "gcc" "src/CMakeFiles/nord.dir/routing/routing_policy.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/CMakeFiles/nord.dir/sim/kernel.cc.o" "gcc" "src/CMakeFiles/nord.dir/sim/kernel.cc.o.d"
  "/root/repo/src/stats/network_stats.cc" "src/CMakeFiles/nord.dir/stats/network_stats.cc.o" "gcc" "src/CMakeFiles/nord.dir/stats/network_stats.cc.o.d"
  "/root/repo/src/topology/bypass_ring.cc" "src/CMakeFiles/nord.dir/topology/bypass_ring.cc.o" "gcc" "src/CMakeFiles/nord.dir/topology/bypass_ring.cc.o.d"
  "/root/repo/src/topology/criticality.cc" "src/CMakeFiles/nord.dir/topology/criticality.cc.o" "gcc" "src/CMakeFiles/nord.dir/topology/criticality.cc.o.d"
  "/root/repo/src/topology/mesh.cc" "src/CMakeFiles/nord.dir/topology/mesh.cc.o" "gcc" "src/CMakeFiles/nord.dir/topology/mesh.cc.o.d"
  "/root/repo/src/traffic/parsec_workload.cc" "src/CMakeFiles/nord.dir/traffic/parsec_workload.cc.o" "gcc" "src/CMakeFiles/nord.dir/traffic/parsec_workload.cc.o.d"
  "/root/repo/src/traffic/synthetic_traffic.cc" "src/CMakeFiles/nord.dir/traffic/synthetic_traffic.cc.o" "gcc" "src/CMakeFiles/nord.dir/traffic/synthetic_traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

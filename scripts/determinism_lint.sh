#!/usr/bin/env bash
# Determinism lint: the simulator must be bit-reproducible from its seed,
# so every source of randomness and wall-clock time has to flow through the
# seeded generator in src/common/rng.*. This grep-level gate bans the libc
# and <random> escape hatches everywhere else:
#
#   - rand( / srand(          libc PRNG (global hidden state)
#   - std::random_device      nondeterministic hardware entropy
#   - time(nullptr|NULL|0)    wall clock leaking into simulation state
#
# Usage: scripts/determinism_lint.sh [repo-root]
# Exits 1 and prints every offending line if any banned pattern appears
# outside src/common/rng.{hh,cc}.

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

status=0
fail() {
    echo "determinism-lint: $1"
    echo "$2" | sed 's/^/    /'
    status=1
}

scan() {
    # Word-boundary grep over all C++ sources, exempting the one sanctioned
    # wrapper and this script's own documentation.
    grep -rnE "$1" src tools bench examples tests \
        --include='*.cc' --include='*.hh' \
        | grep -v '^src/common/rng\.'
}

hits=$(scan '(^|[^_[:alnum:]])s?rand[[:space:]]*\(')
[ -n "$hits" ] && fail "libc rand()/srand() outside src/common/rng.*" "$hits"

hits=$(scan 'std::random_device')
[ -n "$hits" ] && fail "std::random_device outside src/common/rng.*" "$hits"

hits=$(scan '(^|[^_[:alnum:]])time[[:space:]]*\([[:space:]]*(nullptr|NULL|0)?[[:space:]]*\)')
[ -n "$hits" ] && fail "wall-clock time() call" "$hits"

if [ "$status" -eq 0 ]; then
    echo "determinism-lint: clean (all randomness goes through src/common/rng)"
fi
exit "$status"

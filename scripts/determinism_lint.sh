#!/usr/bin/env bash
# Thin compatibility wrapper: the grep-level determinism gate that used to
# live here is now the `determinism` check inside nord-lint (see
# src/verify/lint/source_lint.{hh,cc}), alongside the mutable-static,
# env side-channel, stdio and Clocked-contract checks. This script just
# finds or builds the nord-lint binary and runs it.
#
# Usage: scripts/determinism_lint.sh [repo-root]

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 2

# Prefer an already-built binary from any build tree.
for candidate in build*/tools/nord-lint; do
    if [ -x "$candidate" ]; then
        exec "$candidate" "$root"
    fi
done

# Fall back to a standalone compile: the lint engine is deliberately
# std-only so this works on a tree that does not otherwise build.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
if ! c++ -std=c++20 -O1 -I src \
        tools/nord_lint.cc src/verify/lint/source_lint.cc \
        -o "$tmp/nord-lint"; then
    echo "determinism-lint: could not build nord-lint" >&2
    exit 2
fi
exec "$tmp/nord-lint" "$root"

#!/usr/bin/env bash
# Kill-and-resume smoke test for the resilience_sweep campaign.
#
# 1. Runs the quick campaign uninterrupted to produce a reference JSON.
# 2. Starts the same campaign with periodic checkpointing, SIGKILLs it
#    mid-flight, then resumes from the last checkpoint.
# 3. Requires the resumed run's final JSON to be byte-identical to the
#    reference -- the acceptance criterion for bit-exact restore.
#
# Usage: scripts/kill_resume_smoke.sh [path-to-resilience_sweep]
set -u

BIN="${1:-build/bench/resilience_sweep}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

REF="$WORK/ref.json"
OUT="$WORK/resumed.json"
CKPT="$WORK/sweep.ckpt"

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not found or not executable" >&2
    exit 1
fi

echo "[smoke] reference run (uninterrupted)..."
if ! NORD_QUICK=1 "$BIN" --out="$REF" 2>/dev/null; then
    echo "FAIL: reference campaign did not exit cleanly" >&2
    exit 1
fi

echo "[smoke] checkpointed run, to be killed mid-campaign..."
NORD_QUICK=1 "$BIN" --checkpoint="$CKPT" --checkpoint-every=300 \
    --out="$OUT" 2>/dev/null &
PID=$!

# Wait until at least one checkpoint lands, then give the campaign a
# moment to advance past it so the resume genuinely re-enters mid-run.
for _ in $(seq 1 300); do
    [ -f "$CKPT" ] && break
    sleep 0.1
done
if [ ! -f "$CKPT" ]; then
    kill -9 "$PID" 2>/dev/null
    echo "FAIL: no checkpoint appeared within 30s" >&2
    exit 1
fi
sleep 1
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

if [ -f "$OUT" ]; then
    echo "FAIL: campaign finished before the kill; nothing to resume" >&2
    exit 1
fi

echo "[smoke] resuming from $CKPT..."
if ! NORD_QUICK=1 "$BIN" --resume-from="$CKPT" --checkpoint="$CKPT" \
        --checkpoint-every=300 --out="$OUT"; then
    echo "FAIL: resumed campaign did not exit cleanly" >&2
    exit 1
fi

if ! diff -u "$REF" "$OUT"; then
    echo "FAIL: resumed output differs from uninterrupted reference" >&2
    exit 1
fi

echo "[smoke] PASS: resumed campaign output is byte-identical"

#!/usr/bin/env bash
# Retired into scripts/chaos_smoke.sh (Phase A is the original
# kill-and-resume test; Phase B adds the campaign orchestrator). This
# wrapper keeps old invocations working.
exec "$(dirname "$0")/chaos_smoke.sh" "${1:-build/bench/resilience_sweep}"

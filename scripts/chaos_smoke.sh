#!/usr/bin/env bash
# Chaos smoke test: the fault-tolerance acceptance gate.
#
# Phase A -- single-process kill-and-resume (the original smoke):
#   1. Runs the quick resilience_sweep campaign uninterrupted to produce
#      a reference JSON.
#   2. Starts the same campaign with periodic checkpointing, SIGKILLs it
#      mid-flight, then resumes from the last checkpoint.
#   3. Requires the resumed run's final JSON to be byte-identical.
#
# Phase B -- the campaign orchestrator under fire:
#   1. Clean reference campaign (includes a deterministic poison point
#      and a hang point, so quarantine paths are exercised).
#   2. The same grid under --chaos: workers are SIGKILLed on a seeded
#      schedule and must resume from checkpoints. Report must be
#      byte-identical to the clean run's.
#   3. The same grid with the ORCHESTRATOR itself SIGKILLed mid-campaign
#      and re-executed. Report must again be byte-identical.
#   4. The journal must show both quarantine classes (gate, hang) with
#      diagnostics.
#
# Phase C -- multi-executor fleet under partition chaos (--executors 2):
#   1. Clean reference campaign (classic single orchestrator).
#   2. Two executors --join the same campaign directory. One SIGSTOPs
#      itself for longer than the lease grace (partition chaos), loses
#      its shard leases, and must self-fence: exit 14 (lease-lost), no
#      post-fence writes. The survivor steals the shards and drains the
#      grid.
#   3. The fleet's report must be byte-identical to the classic run's.
#
# Usage: scripts/chaos_smoke.sh [resilience_sweep] [nord-campaign]
#                               [--executors N]
set -u

SWEEP="build/bench/resilience_sweep"
CAMPAIGN="build/tools/nord-campaign"
EXECUTORS=1
POS=0
while [ $# -gt 0 ]; do
    case "$1" in
      --executors)
        [ $# -ge 2 ] || { echo "missing value for --executors" >&2; exit 2; }
        EXECUTORS="$2"
        shift 2
        ;;
      *)
        POS=$((POS + 1))
        if [ "$POS" -eq 1 ]; then SWEEP="$1"; else CAMPAIGN="$1"; fi
        shift
        ;;
    esac
done
WORK="$(mktemp -d)"

cleanup() {
    # -x matches the exact process name only: a -f pattern would match
    # this script's own command line (and the CI shell) and kill them.
    pkill -9 -x nord-campaign 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

[ -x "$SWEEP" ] || fail "$SWEEP not found or not executable"
[ -x "$CAMPAIGN" ] || fail "$CAMPAIGN not found or not executable"

# ----------------------------------------------------------------------
# Phase A: resilience_sweep kill-and-resume.
# ----------------------------------------------------------------------

REF="$WORK/ref.json"
OUT="$WORK/resumed.json"
CKPT="$WORK/sweep.ckpt"

echo "[smoke A] reference run (uninterrupted)..."
NORD_QUICK=1 "$SWEEP" --out="$REF" 2>/dev/null \
    || fail "reference campaign did not exit cleanly"

echo "[smoke A] checkpointed run, to be killed mid-campaign..."
NORD_QUICK=1 "$SWEEP" --checkpoint="$CKPT" --checkpoint-every=300 \
    --out="$OUT" 2>/dev/null &
PID=$!

# Wait until at least one checkpoint lands, then give the campaign a
# moment to advance past it so the resume genuinely re-enters mid-run.
for _ in $(seq 1 300); do
    [ -f "$CKPT" ] && break
    sleep 0.1
done
if [ ! -f "$CKPT" ]; then
    kill -9 "$PID" 2>/dev/null
    fail "no checkpoint appeared within 30s"
fi
sleep 1
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

[ -f "$OUT" ] && fail "campaign finished before the kill; nothing to resume"

echo "[smoke A] resuming from $CKPT..."
NORD_QUICK=1 "$SWEEP" --resume-from="$CKPT" --checkpoint="$CKPT" \
    --checkpoint-every=300 --out="$OUT" \
    || fail "resumed campaign did not exit cleanly"

diff -u "$REF" "$OUT" \
    || fail "resumed output differs from uninterrupted reference"
echo "[smoke A] PASS: resumed campaign output is byte-identical"

# ----------------------------------------------------------------------
# Phase B: nord-campaign orchestrator.
# ----------------------------------------------------------------------

# Point 0 is honest work, point 1 is deterministic poison (gate), point 2
# hangs (stops heartbeating mid-run) -- so one campaign exercises
# completion, first-attempt quarantine and heartbeat-kill quarantine.
GRID="--designs nord --rates 0.05 --seeds 1,2,3 --cycles 100000
      --rows 4 --cols 4 --poison-points 1 --hang-points 2"
SUP="--workers 3 --hang-timeout 2 --checkpoint-every 2000
     --max-failures 2 --backoff-initial 0.05 --backoff-max 0.2"
# Quarantined points make the campaign exit 10 by design.
QUARANTINE_RC=10

run_campaign() {
    # shellcheck disable=SC2086
    "$CAMPAIGN" $GRID $SUP --out "$@"
}

echo "[smoke B] clean reference campaign..."
run_campaign "$WORK/clean"
[ $? -eq $QUARANTINE_RC ] || fail "clean campaign: expected exit $QUARANTINE_RC"
[ -f "$WORK/clean/report.json" ] || fail "clean campaign wrote no report"

echo "[smoke B] chaos campaign (worker SIGKILLs on a seeded schedule)..."
# The kill count MUST be capped here: this grid contains a hang point,
# and an unlimited 0.3s chaos schedule always SIGKILLs the hung worker
# before the 2s heartbeat timeout can. Chaos kills are uncounted by
# design, so the hang point would relaunch forever (a livelock, not a
# failure). Capped, chaos stands down and the hang point is then
# heartbeat-killed and quarantined exactly like the clean run.
run_campaign "$WORK/chaos" --chaos --chaos-seed 7 --chaos-interval 0.3 \
    --chaos-max-kills 6 \
    2>&1 | tee "$WORK/chaos.log"
[ "${PIPESTATUS[0]}" -eq $QUARANTINE_RC ] || fail "chaos campaign: bad exit"
grep -q "chaos: killed" "$WORK/chaos.log" \
    || fail "the chaos schedule never fired; the test proved nothing"
diff -u "$WORK/clean/report.json" "$WORK/chaos/report.json" \
    || fail "chaos kills changed report.json"
diff -u "$WORK/clean/report.csv" "$WORK/chaos/report.csv" \
    || fail "chaos kills changed report.csv"
echo "[smoke B] PASS: chaos-disturbed report is byte-identical"

echo "[smoke B] orchestrator SIGKILL + resume..."
run_campaign "$WORK/kr" &
PID=$!
# Let it journal some progress first (the journal appears immediately;
# give the workers time to start and checkpoint).
for _ in $(seq 1 100); do
    [ -f "$WORK/kr/journal.jsonl" ] && break
    sleep 0.1
done
sleep 2
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
# Reap orphaned workers; their checkpoints ARE the resumable state.
pkill -9 -x nord-campaign 2>/dev/null
sleep 0.2
[ -f "$WORK/kr/report.json" ] && fail "campaign finished before the kill"

run_campaign "$WORK/kr"
[ $? -eq $QUARANTINE_RC ] || fail "resumed campaign: bad exit"
diff -u "$WORK/clean/report.json" "$WORK/kr/report.json" \
    || fail "orchestrator kill+resume changed report.json"
diff -u "$WORK/clean/report.csv" "$WORK/kr/report.csv" \
    || fail "orchestrator kill+resume changed report.csv"
echo "[smoke B] PASS: kill+resume report is byte-identical"

echo "[smoke B] quarantine diagnostics..."
grep -q '"event":"quarantine".*"class":"gate"' "$WORK/clean/journal.jsonl" \
    || fail "no gate quarantine in the journal"
grep -q '"event":"quarantine".*"class":"hang"' "$WORK/clean/journal.jsonl" \
    || fail "no hang quarantine in the journal"
grep -q '"status":"quarantined"' "$WORK/clean/report.json" \
    || fail "report carries no quarantined points"

# ----------------------------------------------------------------------
# Phase C: multi-executor fleet with partition chaos.
# ----------------------------------------------------------------------

if [ "$EXECUTORS" -ge 2 ]; then
    # A clean grid (no poison/hang): completion-only, so the classic
    # golden and the surviving executor both exit 0 and every byte of
    # report divergence is a fleet bug, not taxonomy noise.
    CGRID="--designs nord --rates 0.05 --seeds 1,2,3,4,5,6
           --cycles 150000 --rows 4 --cols 4"
    CSUP="--workers 2 --checkpoint-every 2000 --max-failures 2
          --backoff-initial 0.05 --backoff-max 0.2"

    echo "[smoke C] classic golden run..."
    # shellcheck disable=SC2086
    "$CAMPAIGN" $CGRID $CSUP --out "$WORK/fleet-gold" \
        || fail "golden classic campaign failed"

    echo "[smoke C] two executors join; one self-partitions past the" \
         "lease grace..."
    FLEET="$WORK/fleet"
    # Executor 1: partition chaos only (the huge --chaos-interval keeps
    # worker kills out of the picture). It SIGSTOPs itself for 4s with a
    # 1s lease grace, so on resume it MUST self-fence and exit 14.
    # shellcheck disable=SC2086
    "$CAMPAIGN" $CGRID $CSUP --join "$FLEET" --executor-id exec-1 \
        --lease-grace 1 \
        --chaos --chaos-seed 5 --chaos-interval 10000 \
        --chaos-partition-mean 0.6 --chaos-partition-duration 4 \
        --chaos-max-partitions 1 \
        > "$WORK/exec1.log" 2>&1 &
    PID1=$!
    # Executor 2: an honest survivor. It steals the partitioned
    # executor's shards after the grace and drains the grid.
    # shellcheck disable=SC2086
    "$CAMPAIGN" $CGRID $CSUP --join "$FLEET" --executor-id exec-2 \
        --lease-grace 1 \
        > "$WORK/exec2.log" 2>&1
    RC2=$?
    wait "$PID1"
    RC1=$?
    [ "$RC2" -eq 0 ] || {
        cat "$WORK/exec2.log" >&2
        fail "surviving executor: expected exit 0, got $RC2"
    }
    [ "$RC1" -eq 14 ] || {
        cat "$WORK/exec1.log" >&2
        fail "partitioned executor: expected exit 14 (lease-lost), got $RC1"
    }
    grep -q "self-fenced" "$WORK/exec1.log" \
        || fail "partitioned executor never reported a self-fence"
    grep -q "lease lost" "$WORK/exec1.log" \
        || fail "partitioned executor never reported the lost lease"

    diff -u "$WORK/fleet-gold/report.json" "$FLEET/report.json" \
        || fail "fleet report.json differs from the classic golden run"
    diff -u "$WORK/fleet-gold/report.csv" "$FLEET/report.csv" \
        || fail "fleet report.csv differs from the classic golden run"
    # The canonical journal must carry no trace of the fenced executor's
    # abandoned work: replay it as a classic journal and count points.
    DONE_COUNT=$(grep -c '"event":"done"' "$FLEET/journal.jsonl")
    [ "$DONE_COUNT" -eq 6 ] \
        || fail "canonical journal has $DONE_COUNT done events, want 6"
    echo "[smoke C] PASS: self-fence at exit 14, fleet report" \
         "byte-identical to the classic golden"
fi

echo "[smoke] PASS: all phases"

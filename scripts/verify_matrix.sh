#!/usr/bin/env bash
# Run the offline protocol verifier over the full shipped matrix -- four
# power-gating designs x {4x4, 8x8} meshes x both NoRD routing modes (with
# and without the criticality steering table) -- and then confirm the
# negative paths still bite: the seeded dateline-less escape ring must be
# reported as a cycle, and every handshake mutation must refute its
# property. A verifier that passes everything, including the planted bugs,
# proves nothing.
#
# Usage: scripts/verify_matrix.sh [path/to/nord-verify]

set -u

bin="${1:-build/tools/nord-verify}"
if [ ! -x "$bin" ]; then
    echo "verify_matrix: $bin not found or not executable" >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 2
fi

status=0

echo "== positive: full shipped matrix =="
"$bin" --all || status=1

echo
echo "== negative: seeded dateline-less ring must report a cycle =="
if "$bin" --design nord --pass cdg --seed-cycle >/dev/null 2>&1; then
    echo "verify_matrix: FAIL -- seeded escape cycle was NOT caught"
    status=1
else
    echo "caught, as required"
fi

for mutation in deaf-wakeup-input drop-ic-guard no-drain-check; do
    echo
    echo "== negative: FSM mutation $mutation must be refuted =="
    if "$bin" --design nord --pass fsm --mutation "$mutation" \
        >/dev/null 2>&1; then
        echo "verify_matrix: FAIL -- $mutation was NOT caught"
        status=1
    else
        echo "caught, as required"
    fi
done

echo
echo "== negative: watchdog must not mask NoRD's lost wakeup =="
if "$bin" --design nord --pass fsm --mutation deaf-wakeup-input --watchdog \
    >/dev/null 2>&1; then
    echo "verify_matrix: FAIL -- watchdog masked the NoRD lost wakeup"
    status=1
else
    echo "caught, as required"
fi

echo
if [ "$status" -eq 0 ]; then
    echo "verify_matrix: OK"
else
    echo "verify_matrix: FAILED"
fi
exit "$status"

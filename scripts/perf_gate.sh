#!/usr/bin/env bash
# perf_gate.sh -- compare fresh BENCH_*.json runs against the committed
# baselines and fail on real regressions.
#
# Usage:
#   perf_gate.sh [--report-only] [--tolerance PCT] [--fail-ratio R]
#                FRESH_DIR [BASELINE_DIR]
#
#   FRESH_DIR     directory holding the just-produced BENCH_*.json
#   BASELINE_DIR  directory with the committed baselines (default: the
#                 repository root, i.e. this script's parent directory)
#
# Policy (two thresholds, so noisy runners stay useful):
#   - a metric worse than baseline by more than --tolerance percent
#     (default 30) is a WARNING: exit 1 in strict mode, exit 0 with
#     --report-only (shared CI runners jitter far beyond microbenchmark
#     noise floors);
#   - a metric worse by more than --fail-ratio x (default 2.0) is a HARD
#     FAILURE in every mode: no amount of runner noise makes a
#     deterministic single-threaded simulator 2x slower.
#
# Direction is derived from the metric name (the nord-perf-v1 schema
# contract): *_ns_per_flit and *_allocs_per_cycle are lower-is-better,
# every other numeric metric is higher-is-better. "schema", "bench" and
# "rss_peak_mib" are informational and never gated (RSS depends on the
# allocator and the runner).

set -u

report_only=0
tolerance=30
fail_ratio=2.0

while [ $# -gt 0 ]; do
    case "$1" in
        --report-only) report_only=1; shift ;;
        --tolerance) tolerance="$2"; shift 2 ;;
        --fail-ratio) fail_ratio="$2"; shift 2 ;;
        -h|--help) sed -n '2,27p' "$0"; exit 0 ;;
        *) break ;;
    esac
done

if [ $# -lt 1 ]; then
    echo "usage: $0 [--report-only] [--tolerance PCT] [--fail-ratio R]" \
         "FRESH_DIR [BASELINE_DIR]" >&2
    exit 2
fi
fresh_dir=$1
base_dir=${2:-$(cd "$(dirname "$0")/.." && pwd)}

# Emit "key value" pairs from a flat nord-perf-v1 JSON (one per line).
metrics() {
    awk -F'"' '/^"/ {
        key = $2
        val = $3
        sub(/^:[ \t]*/, "", val)
        sub(/,?[ \t]*$/, "", val)
        if (val + 0 == val)  # numeric only
            print key, val
    }' "$1"
}

warnings=0
failures=0
compared=0

for base in "$base_dir"/BENCH_*.json; do
    [ -e "$base" ] || { echo "no baselines in $base_dir" >&2; exit 2; }
    name=$(basename "$base")
    fresh="$fresh_dir/$name"
    if [ ! -e "$fresh" ]; then
        echo "MISSING  $name: not produced by this run"
        failures=$((failures + 1))
        continue
    fi
    schema=$(awk -F'"' '/^"schema"/ {print $4}' "$fresh")
    if [ "$schema" != "nord-perf-v1" ]; then
        echo "MISSING  $name: unknown schema '$schema'"
        failures=$((failures + 1))
        continue
    fi
    echo "== $name"
    result=$(
        metrics "$base" | while read -r key baseval; do
            case "$key" in rss_peak_mib) continue ;; esac
            freshval=$(metrics "$fresh" | awk -v k="$key" \
                       '$1 == k {print $2; exit}')
            if [ -z "$freshval" ]; then
                echo "F $key missing-from-fresh-run"
                continue
            fi
            awk -v k="$key" -v b="$baseval" -v f="$freshval" \
                -v tol="$tolerance" -v fr="$fail_ratio" '
            BEGIN {
                lower = (k ~ /_ns_per_flit$/ || k ~ /_allocs_per_cycle$/)
                # ratio > 1 means "worse than baseline".
                if (b <= 0 || f <= 0) { print "S", k, "non-positive"; exit }
                ratio = lower ? f / b : b / f
                pct = (ratio - 1) * 100
                if (ratio >= fr)
                    printf "F %s worse %.1f%% (base %g, now %g)\n", \
                           k, pct, b, f
                else if (pct > tol)
                    printf "W %s worse %.1f%% (base %g, now %g)\n", \
                           k, pct, b, f
                else
                    printf "P %s %+.1f%% (base %g, now %g)\n", \
                           k, -pct, b, f
            }'
        done
    )
    echo "$result" | while read -r tag rest; do
        case "$tag" in
            F) echo "  FAIL  $rest" ;;
            W) echo "  WARN  $rest" ;;
            P) echo "  ok    $rest" ;;
            S) echo "  skip  $rest" ;;
        esac
    done
    failures=$((failures + $(echo "$result" | grep -c '^F')))
    warnings=$((warnings + $(echo "$result" | grep -c '^W')))
    compared=$((compared + $(echo "$result" | grep -c '^[PW]')))
done

echo
echo "perf gate: $compared metrics compared," \
     "$warnings warnings, $failures hard failures"
if [ "$failures" -gt 0 ]; then
    echo "perf gate: FAILED (>${fail_ratio}x regression or missing data)"
    exit 1
fi
if [ "$warnings" -gt 0 ] && [ "$report_only" -eq 0 ]; then
    echo "perf gate: FAILED (regressions beyond ${tolerance}% tolerance)"
    exit 1
fi
echo "perf gate: OK"
exit 0

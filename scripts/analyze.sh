#!/usr/bin/env bash
# Run the whole static-analysis battery -- nord-lint (hidden state and
# side channels), nord-statecheck (state-coverage: serialize walks,
# NORD_STATE_EXCLUDE legality, ownership declarations),
# nord-access-graph --check (runtime ownership contracts) and clang-tidy
# -- and print one summary table. This is the CI static-analysis job;
# `ctest -L static` runs the same gates through ctest.
#
# Usage: scripts/analyze.sh [build_dir [root]]
#
# The build tree must be configured; missing tool binaries are built on
# demand. clang-tidy is SKIPped (not failed) when the binary is absent,
# so the std-only analyzers still gate a machine without LLVM.

set -u

build="${1:-build}"
root="${2:-.}"

if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "analyze: $build is not a configured build tree" >&2
    echo "run first: cmake -B $build -S $root" >&2
    exit 2
fi

names=()
codes=()

note() {
    names+=("$1")
    codes+=("$2")
}

run_tool() {
    # run_tool <name> <target> <cmd...>: build the target, run the
    # command, record its exit code.
    local name="$1" target="$2"
    shift 2
    echo
    echo "== $name =="
    if ! cmake --build "$build" -j --target "$target" >/dev/null; then
        echo "analyze: building $target failed" >&2
        note "$name" 2
        return
    fi
    "$@"
    note "$name" $?
}

run_tool nord-lint nord-lint "$build/tools/nord-lint" "$root"
run_tool nord-statecheck nord-statecheck \
    "$build/tools/nord-statecheck" "$root"
run_tool nord-access-graph nord-access-graph \
    "$build/tools/nord-access-graph" --design all --faults --check --quiet

echo
echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    # The lint target needs the generated compile_commands.json, which
    # the main build produces.
    if cmake --build "$build" -j >/dev/null &&
        cmake --build "$build" --target lint; then
        note clang-tidy 0
    else
        note clang-tidy 1
    fi
else
    echo "clang-tidy not installed; skipping"
    note clang-tidy skip
fi

echo
echo "analyzer           result"
echo "-----------------  ------"
status=0
for i in "${!names[@]}"; do
    case "${codes[$i]}" in
        0) result="OK" ;;
        skip) result="SKIP" ;;
        *)
            result="FAIL(${codes[$i]})"
            status=1
            ;;
    esac
    printf '%-17s  %s\n' "${names[$i]}" "$result"
done
exit "$status"

/**
 * @file
 * Tests for the conventional power-gating controllers and handshake
 * (Sections 3.1 and 6).
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"

namespace nord {
namespace {

NocConfig
configFor(PgDesign design)
{
    NocConfig cfg;
    cfg.design = design;
    return cfg;
}

TEST(PowerGating, NoPgNeverSleeps)
{
    NocSystem sys(configFor(PgDesign::kNoPg));
    sys.run(2000);
    EXPECT_EQ(sys.countInState(PowerState::kOn), 16);
    EXPECT_EQ(sys.stats().totalWakeups(), 0u);
    const ActivityCounters t = sys.stats().totals();
    EXPECT_EQ(t.offCycles, 0u);
    EXPECT_EQ(t.sleeps, 0u);
}

TEST(PowerGating, ConvPgSleepsWhenIdle)
{
    NocSystem sys(configFor(PgDesign::kConvPg));
    sys.run(200);
    // No traffic at all: every router should be gated off quickly.
    EXPECT_EQ(sys.countInState(PowerState::kOff), 16);
}

TEST(PowerGating, ConvPgWakesForInjection)
{
    NocSystem sys(configFor(PgDesign::kConvPg));
    sys.run(200);
    ASSERT_EQ(sys.countInState(PowerState::kOff), 16);
    sys.inject(0, 1, 1);
    ASSERT_TRUE(sys.runToCompletion(2000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
    // At least the source and destination routers woke up.
    EXPECT_GE(sys.stats().totalWakeups(), 2u);
}

TEST(PowerGating, WakeupLatencyOnCriticalPath)
{
    // Conventional power-gating exposes the wakeup latency to packets:
    // a packet sent into a fully gated network must be slower than in
    // the always-on network by at least one wakeup latency.
    NocConfig on = configFor(PgDesign::kNoPg);
    NocSystem sysOn(on);
    sysOn.inject(0, 15, 1);
    ASSERT_TRUE(sysOn.runToCompletion(2000));
    const double base = sysOn.stats().avgPacketLatency();

    NocConfig cfg = configFor(PgDesign::kConvPg);
    NocSystem sys(cfg);
    sys.run(200);  // let everything gate off
    sys.inject(0, 15, 1);
    ASSERT_TRUE(sys.runToCompletion(3000));
    EXPECT_GE(sys.stats().avgPacketLatency(),
              base + cfg.wakeupLatency - 2.0);
}

TEST(PowerGating, EarlyWakeupReducesPenalty)
{
    // Conv_PG_OPT hides part of the wakeup latency relative to Conv_PG.
    double lat[2];
    const PgDesign designs[2] = {PgDesign::kConvPg, PgDesign::kConvPgOpt};
    for (int i = 0; i < 2; ++i) {
        NocSystem sys(configFor(designs[i]));
        sys.run(300);
        for (int round = 0; round < 50; ++round) {
            sys.inject(0, 15, 1);
            ASSERT_TRUE(sys.runToCompletion(5000));
            sys.run(100);  // let routers re-gate between packets
        }
        lat[i] = sys.stats().avgPacketLatency();
    }
    EXPECT_LT(lat[1], lat[0]);
}

TEST(PowerGating, OptSleepGuardReducesSleeps)
{
    // The OPT sleep guard (4 empty cycles) must produce fewer state
    // transitions than Conv_PG's immediate gating for bursty traffic.
    std::uint64_t sleeps[2];
    const PgDesign designs[2] = {PgDesign::kConvPg, PgDesign::kConvPgOpt};
    for (int i = 0; i < 2; ++i) {
        NocSystem sys(configFor(designs[i]));
        for (int round = 0; round < 60; ++round) {
            sys.inject(round % 16, (round + 3) % 16, 1);
            sys.run(30);
        }
        ASSERT_TRUE(sys.runToCompletion(10000));
        sleeps[i] = sys.stats().totals().sleeps;
    }
    EXPECT_LE(sleeps[1], sleeps[0]);
}

TEST(PowerGating, NoSleepMidPacket)
{
    // Drive a steady stream and check the invariant that routers never
    // gate with buffered flits (the router asserts internally; this test
    // also checks the IC handshake by observing zero flit loss).
    NocSystem sys(configFor(PgDesign::kConvPg));
    for (int i = 0; i < 200; ++i)
        sys.inject(i % 16, (i * 7 + 3) % 16, 5);
    ASSERT_TRUE(sys.runToCompletion(100000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 200u);
}

TEST(PowerGating, GatedDesignSavesStaticEnergy)
{
    // Light traffic: Conv_PG must spend substantially fewer powered-on
    // cycles than No_PG.
    ActivityCounters totals[2];
    const PgDesign designs[2] = {PgDesign::kNoPg, PgDesign::kConvPg};
    for (int i = 0; i < 2; ++i) {
        NocSystem sys(configFor(designs[i]));
        for (int round = 0; round < 10; ++round) {
            sys.inject(round % 16, (round + 8) % 16, 1);
            sys.run(500);
        }
        totals[i] = sys.stats().totals();
    }
    EXPECT_LT(totals[1].onCycles + totals[1].wakingCycles,
              totals[0].onCycles / 2);
}

TEST(PowerGating, WakeupTakesConfiguredCycles)
{
    NocConfig cfg = configFor(PgDesign::kConvPg);
    cfg.wakeupLatency = 20;
    NocSystem sys(cfg);
    sys.run(200);
    ASSERT_EQ(sys.countInState(PowerState::kOff), 16);
    sys.inject(0, 1, 1);
    // The NI raises WU on the next NI tick; the router must stay in
    // WakingUp for 20 cycles before turning on.
    sys.run(10);
    EXPECT_EQ(sys.controller(0).state(), PowerState::kWakingUp);
    sys.run(25);
    EXPECT_EQ(sys.controller(0).state(), PowerState::kOn);
}

}  // namespace
}  // namespace nord

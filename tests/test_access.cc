/**
 * @file
 * Shard-safety access-analysis tests.
 *
 * The contract under test: with verify.trackAccess on, every
 * cross-component access observed during a campaign matches a declared
 * ownership channel (AccessTracker::verify() is empty) for all four
 * power-gating designs; the negative paths -- a rogue write outside any
 * declared channel, a declared channel written from the wrong kernel
 * slot -- are flagged; and tracking is purely observational (bit-identical
 * stateHash with tracking on or off, same configFingerprint).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"
#include "verify/access/access_tracker.hh"
#include "verify/static/config_registry.hh"

namespace nord {
namespace {

NocConfig
trackedConfig(PgDesign design)
{
    NocConfig cfg = makeShippedConfig(design, 4, 4);
    cfg.verify.trackAccess = true;
    cfg.verify.interval = 250;  // include auditor sweep edges
    return cfg;
}

/** Uniform-random campaign with drain; returns the final state hash. */
std::uint64_t
runCampaign(NocSystem &sys, Cycle cycles)
{
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05,
                             sys.config().seed);
    sys.setWorkload(&traffic);
    sys.run(cycles);
    sys.setWorkload(nullptr);
    EXPECT_TRUE(sys.runToCompletion(cycles * 4));
    return sys.stateHash();
}

TEST(AccessTracker, CleanContractsAllDesigns)
{
    for (PgDesign design :
         {PgDesign::kNoPg, PgDesign::kConvPg, PgDesign::kConvPgOpt,
          PgDesign::kNord}) {
        SCOPED_TRACE(pgDesignName(design));
        NocSystem sys(trackedConfig(design));
        runCampaign(sys, 4000);

        const AccessTracker *t = sys.accessTracker();
        ASSERT_NE(t, nullptr);
        EXPECT_GT(t->totalAccesses(), 0u);
        EXPECT_FALSE(t->components().empty());
        EXPECT_FALSE(t->edges().empty());
        for (const AccessTracker::Violation &v : t->verify())
            ADD_FAILURE() << v.what;
        for (const std::string &r : t->undeclaredReads())
            ADD_FAILURE() << "advisory: " << r;
    }
}

TEST(AccessTracker, ObservesExpectedChannels)
{
    NocSystem sys(trackedConfig(PgDesign::kNord));
    runCampaign(sys, 6000);
    const AccessTracker *t = sys.accessTracker();
    ASSERT_NE(t, nullptr);

    // Local injection: each NI writes its router's injection port.
    EXPECT_GT(t->edgeCount("ni0", "router0", ChannelKind::kLocalInject),
              0u);
    // Ejection: the router hands delivered flits to its NI.
    EXPECT_GT(t->edgeCount("router0", "ni0", ChannelKind::kEjection), 0u);
    // Power gating: the controller drives its router's power state.
    EXPECT_GT(t->edgeCount("pg0", "router0", ChannelKind::kPowerSignal),
              0u);
    // Closed-loop traffic flows through the workload ticker.
    EXPECT_GT(t->edgeCount("workload", "ni0", ChannelKind::kInjection),
              0u);

    // Every kind that showed up is on a declared (or wildcard) channel.
    bool sawFlitDeliver = false;
    for (const AccessTracker::Edge &e : t->edges()) {
        if (e.kind == ChannelKind::kFlitDeliver)
            sawFlitDeliver = true;
        if (e.mode == AccessMode::kWrite) {
            EXPECT_TRUE(e.declared)
                << channelKindName(e.kind) << " edge undeclared";
        }
    }
    EXPECT_TRUE(sawFlitDeliver);
}

TEST(AccessTracker, RogueWriteIsFlagged)
{
    NocSystem sys(trackedConfig(PgDesign::kNord));
    AccessTracker *t = sys.accessTracker();
    ASSERT_NE(t, nullptr);
    runCampaign(sys, 1000);
    ASSERT_TRUE(t->verify().empty());

    // Simulate router0 scribbling on ni1's ejection queue -- no such
    // channel is declared (router0 may only eject into its own ni0), so
    // under per-shard execution this would be a data race.
    t->beginTick(&sys.router(0), sys.now());
    access::onWrite(&sys.ni(1), ChannelKind::kEjection);
    t->endTick();

    const std::vector<AccessTracker::Violation> vs = t->verify();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].type, AccessTracker::Violation::Type::kUndeclaredWrite);
    EXPECT_NE(vs[0].what.find("router0"), std::string::npos);
    EXPECT_NE(vs[0].what.find("ni1"), std::string::npos);
}

TEST(AccessTracker, OrderViolationIsFlagged)
{
    NocSystem sys(trackedConfig(PgDesign::kNord));
    AccessTracker *t = sys.accessTracker();
    ASSERT_NE(t, nullptr);

    // ni0 -> pg0 kWakeup is declared same-cycle visible: the write must
    // originate from a kernel slot no later than pg0's. Forge a tick
    // rooted at pg15 (a strictly later slot) with the access handed off
    // to ni0 -- the root-order audit must object.
    t->beginTick(&sys.controller(15), 1);
    {
        access::Handoff handoff(&sys.ni(0));
        access::onWrite(&sys.controller(0), ChannelKind::kWakeup);
    }
    t->endTick();

    const std::vector<AccessTracker::Violation> vs = t->verify();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].type, AccessTracker::Violation::Type::kOrderViolation);
    EXPECT_NE(vs[0].what.find("wakeup"), std::string::npos);
}

TEST(AccessTracker, TrackingIsObservationalOnly)
{
    NocConfig tracked = trackedConfig(PgDesign::kNord);
    NocConfig plain = tracked;
    plain.verify.trackAccess = false;

    NocSystem sysTracked(tracked);
    NocSystem sysPlain(plain);
    EXPECT_EQ(sysTracked.configFingerprint(), sysPlain.configFingerprint())
        << "trackAccess must not change checkpoint compatibility";

    const std::uint64_t hashTracked = runCampaign(sysTracked, 4000);
    const std::uint64_t hashPlain = runCampaign(sysPlain, 4000);
    EXPECT_EQ(hashTracked, hashPlain)
        << "access tracking perturbed the simulation";
    EXPECT_EQ(sysTracked.stats().packetsDelivered(),
              sysPlain.stats().packetsDelivered());
}

TEST(AccessTracker, DumpFormats)
{
    NocSystem sys(trackedConfig(PgDesign::kConvPg));
    runCampaign(sys, 2000);
    const AccessTracker *t = sys.accessTracker();
    ASSERT_NE(t, nullptr);

    const std::string dot = t->dot();
    EXPECT_NE(dot.find("digraph nord_access"), std::string::npos);
    EXPECT_NE(dot.find("router0"), std::string::npos);

    const std::string json = t->json();
    EXPECT_NE(json.find("\"components\""), std::string::npos);
    EXPECT_NE(json.find("\"edges\""), std::string::npos);
    EXPECT_NE(json.find("\"violations\""), std::string::npos);
    EXPECT_NE(json.find("\"flit_push\""), std::string::npos);
}

TEST(AccessTracker, DisabledByDefault)
{
    NocConfig cfg = makeShippedConfig(PgDesign::kNord, 4, 4);
    NocSystem sys(cfg);
    EXPECT_EQ(sys.accessTracker(), nullptr);
}

}  // namespace
}  // namespace nord

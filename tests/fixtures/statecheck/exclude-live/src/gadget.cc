#include "gadget.hh"

void
Gadget::tick(Cycle now)
{
    credits_ -= 1;
}

void
Gadget::serializeState(StateSerializer &s)
{
    s.io(credits_);
}

void
Gadget::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("gadget");
}

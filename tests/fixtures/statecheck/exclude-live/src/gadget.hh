// Planted violation: credits_ carries NORD_STATE_EXCLUDE but the
// serializeState walk includes it -- the annotation lies about live
// state. Expected finding: exclude-but-serialized.
#ifndef FIXTURE_GADGET_HH
#define FIXTURE_GADGET_HH

class Gadget : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    NORD_STATE_EXCLUDE(stat, "claims to be a counter, but it is serialized")
    int credits_ = 0;
};

#endif

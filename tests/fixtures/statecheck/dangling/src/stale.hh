// Planted violation: the trailing NORD_STATE_EXCLUDE binds to no member
// declaration (the member it used to cover was deleted). Expected
// finding: dangling-exclude.
#ifndef FIXTURE_STALE_HH
#define FIXTURE_STALE_HH

class Stale : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    int value_ = 0;
    NORD_STATE_EXCLUDE(stat, "the counter this covered was deleted")
};

#endif

#include "stale.hh"

void
Stale::tick(Cycle now)
{
    value_ += 1;
}

void
Stale::serializeState(StateSerializer &s)
{
    s.io(value_);
}

void
Stale::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("stale");
}

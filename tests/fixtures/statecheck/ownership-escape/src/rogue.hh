// Planted violations:
//  - Rogue mutates seq_ inside tick() but declareOwnership claims no
//    ownership domain (no owns(...))     -> undeclared-tick-mutation
//  - Rogue pushes into *peer_ on the tick path but declares no channel
//    access (no writes/reads)            -> undeclared-channel-use
#ifndef FIXTURE_ROGUE_HH
#define FIXTURE_ROGUE_HH

class Rogue : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    long seq_ = 0;
    NORD_STATE_EXCLUDE(config, "wiring; set once at build time")
    Peer *peer_ = nullptr;
};

#endif

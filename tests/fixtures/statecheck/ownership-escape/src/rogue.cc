#include "rogue.hh"

void
Rogue::tick(Cycle now)
{
    seq_ += 1;
    peer_->push(seq_, now);
}

void
Rogue::serializeState(StateSerializer &s)
{
    s.io(seq_);
}

void
Rogue::declareOwnership(OwnershipDeclarator &d) const
{
    // Deliberately empty: neither owns() nor writes()/reads().
    (void)d;
}

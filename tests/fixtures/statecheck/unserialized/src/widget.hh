// Planted violation: phase_ is live state but never serialized and
// carries no NORD_STATE_EXCLUDE. Expected finding: unserialized-member.
#ifndef FIXTURE_WIDGET_HH
#define FIXTURE_WIDGET_HH

class Widget : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    int count_ = 0;
    int phase_ = 0;  // <-- forgotten in serializeState
};

#endif

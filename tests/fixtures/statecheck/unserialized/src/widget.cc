#include "widget.hh"

void
Widget::tick(Cycle now)
{
    count_ += 1;
    phase_ = (phase_ + 1) % 4;
}

void
Widget::serializeState(StateSerializer &s)
{
    s.io(count_);
}

void
Widget::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("widget");
}

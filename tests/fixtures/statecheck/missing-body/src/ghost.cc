#include "ghost.hh"

void
Ghost::tick(Cycle now)
{
    depth_ += 1;
}

// serializeState deliberately left undefined.

void
Ghost::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("ghost");
}

// Planted violation: Ghost declares serializeState but no definition
// exists anywhere in the tree, so the walk cannot be checked. Expected
// finding: missing-serialize-body.
#ifndef FIXTURE_GHOST_HH
#define FIXTURE_GHOST_HH

class Ghost : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    int depth_ = 0;
};

#endif

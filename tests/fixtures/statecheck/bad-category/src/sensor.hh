// Planted violations, one per legality rule:
//  - scratch_: unknown category "scrach" (typo) -> bad-exclude-category
//  - mode_: 'config' member assigned inside tick()  -> bad-exclude-category
//  - hits_: 'perf_counter' outside src/sim|common   -> bad-exclude-category
//    (this fixture file lives at src/sensor.hh, not src/sim/...)
//  - shadow_: 'cache' member never written anywhere -> bad-exclude-category
#ifndef FIXTURE_SENSOR_HH
#define FIXTURE_SENSOR_HH

class Sensor : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    int level_ = 0;
    NORD_STATE_EXCLUDE(scrach, "typo in the category token")
    int scratch_ = 0;
    NORD_STATE_EXCLUDE(config, "claims to be fixed, but tick writes it")
    int mode_ = 0;
    NORD_STATE_EXCLUDE(perf_counter, "perf counters only live in sim/common")
    int hits_ = 0;
    NORD_STATE_EXCLUDE(cache, "claims derived state, but nothing writes it")
    int shadow_ = 0;
};

#endif

#include "sensor.hh"

void
Sensor::tick(Cycle now)
{
    level_ += 1;
    scratch_ = level_ * 2;
    mode_ = level_ & 1;
    hits_ += 1;
}

void
Sensor::serializeState(StateSerializer &s)
{
    s.io(level_);
}

void
Sensor::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("sensor");
}

// A fully covered component: every member is serialized, annotated, or
// auto-exempt (static/const/reference). nord-statecheck must exit 0.
#ifndef FIXTURE_MODEL_HH
#define FIXTURE_MODEL_HH

class Model : public Clocked
{
  public:
    void tick(Cycle now) override;
    void serializeState(StateSerializer &s);
    void declareOwnership(OwnershipDeclarator &d) const;

  private:
    struct Slot
    {
        int value = 0;
        int age = 0;
    };

    static int instances_;          // static: auto-exempt
    const int capacity_ = 8;        // const: auto-exempt
    int head_ = 0;                  // serialized
    std::vector<Slot> slots_;       // serialized (value/age via the walk)
    NORD_STATE_EXCLUDE(config, "wiring; set once at build time")
    Peer *peer_ = nullptr;
    NORD_STATE_EXCLUDE(stat, "observational; loss on restore is fine")
    long ticks_ = 0;
    NORD_STATE_EXCLUDE(cache, "memo of the last scan; rebuilt next tick")
    int lastScan_ = 0;
};

#endif

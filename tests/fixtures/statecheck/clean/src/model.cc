#include "model.hh"

void
Model::tick(Cycle now)
{
    head_ = (head_ + 1) % capacity_;
    ticks_ += 1;
    lastScan_ = head_;
    peer_->poke(now);
}

void
Model::serializeState(StateSerializer &s)
{
    s.io(head_);
    for (auto &slot : slots_) {
        s.io(slot.value);
        s.io(slot.age);
    }
}

void
Model::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("model");
    d.writes("peer", "poke");
}

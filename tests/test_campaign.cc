/**
 * @file
 * Campaign orchestrator tests: the crash-resumable work queue.
 *
 * The contract under test mirrors the checkpoint suite's, one level up:
 * the aggregate report is a pure function of the grid. Any sequence of
 * worker crashes, chaos kills, journal truncations and orchestrator
 * re-execs must yield byte-identical report.json / report.csv. The unit
 * half exercises the pieces (exit taxonomy, backoff determinism, grid
 * expansion, journal replay/rotation); the end-to-end half forks real
 * worker fleets against tiny grids.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/backoff.hh"
#include "campaign/campaign_point.hh"
#include "campaign/exit_codes.hh"
#include "campaign/fleet.hh"
#include "campaign/journal.hh"
#include "campaign/orchestrator.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nord {
namespace campaign {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/** A campaign out-dir guaranteed fresh: TempDir persists across runs,
 *  and a leftover journal would make the campaign resume-to-terminal
 *  instead of actually running. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = tmpPath(name);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::out | std::ios::binary |
                                std::ios::trunc);
    out << bytes;
}

// ---------------------------------------------------------------------
// Exit-code taxonomy.
// ---------------------------------------------------------------------

TEST(CampaignExitCodes, ClassificationTable)
{
    EXPECT_EQ(classifyExit(true, kExitOk, false, 0),
              FailureClass::kNone);
    EXPECT_EQ(classifyExit(true, kExitGateFailure, false, 0),
              FailureClass::kGate);
    EXPECT_EQ(classifyExit(true, kExitBadConfig, false, 0),
              FailureClass::kBadConfig);
    EXPECT_EQ(classifyExit(true, kExitInfraFailure, false, 0),
              FailureClass::kInfra);
    EXPECT_EQ(classifyExit(true, kExitLeaseLost, false, 0),
              FailureClass::kLeaseLost);
    // Outside the taxonomy: asserts (134 via abort is a signal, but a
    // plain exit(1)) and sanitizer exits classify as unknown -> retried.
    EXPECT_EQ(classifyExit(true, 1, false, 0), FailureClass::kUnknown);
    EXPECT_EQ(classifyExit(true, 2, false, 0), FailureClass::kUnknown);
    EXPECT_EQ(classifyExit(false, 0, true, SIGSEGV),
              FailureClass::kCrash);
    // Supervisor-inflicted kills override the raw wait status.
    EXPECT_EQ(classifyExit(false, 0, true, SIGKILL, true, false),
              FailureClass::kHang);
    EXPECT_EQ(classifyExit(false, 0, true, SIGKILL, false, true),
              FailureClass::kChaos);
    EXPECT_EQ(classifyExit(false, 0, true, SIGKILL, true, true),
              FailureClass::kChaos) << "chaos attribution wins: the "
                                       "schedule killed it first";
}

TEST(CampaignExitCodes, RetryAndQuarantineSemantics)
{
    EXPECT_TRUE(isDeterministicFailure(FailureClass::kGate));
    EXPECT_TRUE(isDeterministicFailure(FailureClass::kBadConfig));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kInfra));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kCrash));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kHang));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kChaos));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kLeaseLost));
    EXPECT_FALSE(isDeterministicFailure(FailureClass::kUnknown));

    EXPECT_FALSE(failureCountsTowardQuarantine(FailureClass::kNone));
    EXPECT_FALSE(failureCountsTowardQuarantine(FailureClass::kChaos))
        << "chaos kills are the supervisor's own doing and must never "
           "charge the point's budget";
    EXPECT_FALSE(failureCountsTowardQuarantine(FailureClass::kLeaseLost))
        << "lease loss is a fleet event: the shard's next owner retries "
           "the point, which must never be charged for it";
    EXPECT_TRUE(failureCountsTowardQuarantine(FailureClass::kInfra));
    EXPECT_TRUE(failureCountsTowardQuarantine(FailureClass::kHang));
    EXPECT_TRUE(failureCountsTowardQuarantine(FailureClass::kCrash));
}

TEST(CampaignExitCodes, ClassNamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(FailureClass::kUnknown); ++i) {
        const FailureClass c = static_cast<FailureClass>(i);
        EXPECT_EQ(failureClassFromName(failureClassName(c)), c);
    }
    EXPECT_EQ(failureClassFromName("not-a-class"),
              FailureClass::kUnknown);
}

// ---------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------

TEST(CampaignBackoff, DeterministicCappedAndBounded)
{
    BackoffPolicy p;
    p.initialSec = 0.25;
    p.maxSec = 4.0;
    p.jitterFraction = 0.5;
    for (int attempt = 1; attempt <= 24; ++attempt) {
        const double d = backoffDelaySec(p, attempt, 0x1234);
        EXPECT_EQ(d, backoffDelaySec(p, attempt, 0x1234))
            << "replayed campaigns must reschedule identically";
        EXPECT_GT(d, 0.0);
        EXPECT_LE(d, p.maxSec);
        // Jitter only shrinks the base delay, never below (1-j) of it.
        double base = p.initialSec;
        for (int i = 1; i < attempt && base < p.maxSec; ++i)
            base *= 2.0;
        base = std::min(base, p.maxSec);
        EXPECT_GE(d, base * (1.0 - p.jitterFraction) - 1e-12);
    }
}

TEST(CampaignBackoff, ZeroJitterIsExactDoubling)
{
    BackoffPolicy p;
    p.initialSec = 0.5;
    p.maxSec = 8.0;
    p.jitterFraction = 0.0;
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 1, 7), 0.5);
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 2, 7), 1.0);
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 3, 7), 2.0);
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 4, 7), 4.0);
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 5, 7), 8.0);
    EXPECT_DOUBLE_EQ(backoffDelaySec(p, 9, 7), 8.0) << "capped";
}

TEST(CampaignBackoff, DistinctNoiseDesynchronizes)
{
    // The whole reason jitter exists: two points that fail together must
    // not retry together.
    BackoffPolicy p;
    int differing = 0;
    for (int attempt = 1; attempt <= 8; ++attempt) {
        if (backoffDelaySec(p, attempt, 1) !=
            backoffDelaySec(p, attempt, 2))
            ++differing;
    }
    EXPECT_GE(differing, 6);
}

// ---------------------------------------------------------------------
// Grid expansion.
// ---------------------------------------------------------------------

TEST(CampaignGrid, ExpansionOrderIdsAndFingerprint)
{
    GridSpec grid;
    grid.designs = {PgDesign::kNord, PgDesign::kConvPg};
    grid.patterns = {TrafficPattern::kUniformRandom,
                     TrafficPattern::kTranspose};
    grid.parsec = {"blackscholes"};
    grid.rates = {0.05, 0.10};
    grid.faultRates = {0.0, 1e-4};
    grid.seeds = {1, 2};

    const std::vector<PointSpec> specs = expandGrid(grid);
    // Per design: 2 patterns x 2 rates + 1 parsec (closed loop, no rate
    // axis), then x 2 fault rates x 2 seeds.
    EXPECT_EQ(specs.size(), 2u * (2 * 2 + 1) * 2 * 2);
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(specs[i].id, i) << "ids must be dense and sequential";
    // Design is the major axis.
    EXPECT_EQ(specs.front().design, PgDesign::kNord);
    EXPECT_EQ(specs.back().design, PgDesign::kConvPg);

    // The fingerprint is stable and sensitive.
    const std::uint64_t fp = gridFingerprint(specs);
    EXPECT_EQ(fp, gridFingerprint(expandGrid(grid)));
    grid.seeds = {1, 3};
    EXPECT_NE(fp, gridFingerprint(expandGrid(grid)));
}

TEST(CampaignGrid, SpecJsonIsCanonical)
{
    PointSpec spec;
    spec.id = 7;
    const std::string j = specJson(spec);
    EXPECT_EQ(j, specJson(spec)) << "byte layout is a resume contract";
    EXPECT_NE(j.find("\"id\":7"), std::string::npos) << j;
    EXPECT_EQ(j.find('\n'), std::string::npos) << "one line";
}

// ---------------------------------------------------------------------
// Journal.
// ---------------------------------------------------------------------

TEST(CampaignJournalTest, AppendReplayRoundTrip)
{
    const std::string path = tmpPath("journal_roundtrip.jsonl");
    std::remove(path.c_str());

    ReplayState replay;
    std::string err;
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, 3, 0xabcdef, &replay, &err)) << err;
        EXPECT_FALSE(replay.tornTail);
        EXPECT_TRUE(j.appendAttempt(0, 1));
        EXPECT_TRUE(j.appendDone(0, "{\"x\":1,\"y\":\"a b\"}"));
        EXPECT_TRUE(j.appendAttempt(1, 1));
        EXPECT_TRUE(j.appendFail(1, FailureClass::kInfra,
                                 kExitInfraFailure, 0, true, "tail\ntxt",
                                 "p1.ckpt"));
        QuarantineRecord q;
        q.cls = FailureClass::kGate;
        q.exitCode = kExitGateFailure;
        q.stderrTail = "gate said no";
        q.ckptPath = "p2.ckpt";
        EXPECT_TRUE(j.appendQuarantine(2, q));
        j.close();
    }
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, 3, 0xabcdef, &replay, &err)) << err;
        EXPECT_TRUE(replay.opened);
        EXPECT_TRUE(replay.perPoint[0].done);
        EXPECT_EQ(replay.perPoint[0].resultLine,
                  "{\"x\":1,\"y\":\"a b\"}")
            << "result bytes must round-trip verbatim";
        EXPECT_EQ(replay.perPoint[1].countedFailures, 1);
        EXPECT_EQ(replay.perPoint[1].launches, 1);
        EXPECT_FALSE(replay.perPoint[1].done);
        EXPECT_TRUE(replay.perPoint[2].quarantined);
        EXPECT_EQ(replay.perPoint[2].quarantine.cls,
                  FailureClass::kGate);
        EXPECT_EQ(replay.perPoint[2].quarantine.exitCode,
                  kExitGateFailure);
        EXPECT_EQ(replay.perPoint[2].quarantine.stderrTail,
                  "gate said no");
        j.close();
    }
    // A different grid must refuse the journal, not silently mix runs.
    CampaignJournal other;
    EXPECT_FALSE(other.open(path, 3, 0x999999, &replay, &err));
    EXPECT_FALSE(other.open(path, 4, 0xabcdef, &replay, &err));
    std::remove(path.c_str());
}

TEST(CampaignJournalTest, TornTailIgnoredAndRepaired)
{
    const std::string path = tmpPath("journal_torn.jsonl");
    std::remove(path.c_str());
    ReplayState replay;
    std::string err;
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, 2, 0x42, &replay, &err)) << err;
        ASSERT_TRUE(j.appendAttempt(0, 1));
        ASSERT_TRUE(j.appendDone(0, "{\"ok\":true}"));
        j.close();
    }
    // Simulate a crash mid-append: a final line with no newline.
    const std::string intact = slurp(path);
    spew(path, intact + "{\"event\":\"done\",\"point\":1,\"resu");
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, 2, 0x42, &replay, &err)) << err;
        EXPECT_TRUE(replay.tornTail)
            << "the torn line is a crash artifact, not an event";
        EXPECT_TRUE(replay.perPoint[0].done);
        EXPECT_FALSE(replay.perPoint[1].done);
        // open() truncates the torn bytes so the next append starts on
        // a clean line boundary.
        ASSERT_TRUE(j.appendDone(1, "{\"ok\":true}"));
        j.close();
    }
    {
        CampaignJournal j;
        ASSERT_TRUE(j.open(path, 2, 0x42, &replay, &err)) << err;
        EXPECT_FALSE(replay.tornTail);
        EXPECT_TRUE(replay.perPoint[1].done);
        j.close();
    }
    std::remove(path.c_str());
}

TEST(CampaignJournalTest, RotationCompactsPreservingState)
{
    const std::string path = tmpPath("journal_rotate.jsonl");
    std::remove(path.c_str());
    ReplayState replay;
    std::string err;
    CampaignJournal j;
    ASSERT_TRUE(j.open(path, 2, 0x77, &replay, &err)) << err;
    // Heavy retry traffic on point 0, then success; quarantine point 1.
    for (int n = 1; n <= 20; ++n) {
        ASSERT_TRUE(j.appendAttempt(0, n));
        ASSERT_TRUE(j.appendFail(0, FailureClass::kCrash, 0, SIGSEGV,
                                 true, "boom", ""));
    }
    ASSERT_TRUE(j.appendAttempt(0, 21));
    ASSERT_TRUE(j.appendDone(0, "{\"fine\":1}"));
    QuarantineRecord q;
    q.cls = FailureClass::kHang;
    q.signal = SIGKILL;
    ASSERT_TRUE(j.appendQuarantine(1, q));

    const std::size_t before = slurp(path).size();
    ReplayState state;
    ASSERT_TRUE(CampaignJournal::replayContent(slurp(path), 2, 0x77,
                                               &state, &err))
        << err;
    ASSERT_TRUE(j.rotate(state)) << j.error();
    j.close();

    EXPECT_LT(slurp(path).size(), before);
    CampaignJournal j2;
    ASSERT_TRUE(j2.open(path, 2, 0x77, &replay, &err)) << err;
    EXPECT_TRUE(replay.perPoint[0].done);
    EXPECT_EQ(replay.perPoint[0].resultLine, "{\"fine\":1}");
    EXPECT_EQ(replay.perPoint[0].countedFailures, 20)
        << "counted totals survive compaction";
    EXPECT_TRUE(replay.perPoint[1].quarantined);
    EXPECT_EQ(replay.perPoint[1].quarantine.cls, FailureClass::kHang);
    j2.close();
    std::remove(path.c_str());
}

TEST(CampaignJournalTest, LockExcludesSecondOrchestrator)
{
    const std::string path = tmpPath("journal_lock.jsonl");
    std::remove(path.c_str());
    ReplayState replay;
    std::string err;
    CampaignJournal j1;
    ASSERT_TRUE(j1.open(path, 1, 0x1, &replay, &err)) << err;
    CampaignJournal j2;
    EXPECT_FALSE(j2.open(path, 1, 0x1, &replay, &err))
        << "two live orchestrators would interleave journal writes";
    j1.close();
    CampaignJournal j3;
    EXPECT_TRUE(j3.open(path, 1, 0x1, &replay, &err)) << err;
    j3.close();
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Report rendering (pure function of replayed state).
// ---------------------------------------------------------------------

TEST(CampaignReport, RenderingIsDeterministic)
{
    GridSpec grid;
    grid.seeds = {1, 2, 3};
    grid.measure = 100;
    const std::vector<PointSpec> specs = expandGrid(grid);

    ReplayState state;
    state.opened = true;
    state.points = specs.size();
    state.perPoint[0].done = true;
    state.perPoint[0].resultLine =
        "{\"created\":10,\"delivered\":10,\"deliveredFraction\":1.0000}";
    state.perPoint[1].quarantined = true;
    state.perPoint[1].quarantine.cls = FailureClass::kGate;
    state.perPoint[1].quarantine.exitCode = kExitGateFailure;
    // Point 2 stays missing (campaign drained before it finished).

    const std::string json = renderReportJson(specs, state);
    EXPECT_EQ(json, renderReportJson(specs, state));
    EXPECT_NE(json.find("\"status\":\"completed\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"quarantined\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\":\"missing\""), std::string::npos);
    EXPECT_NE(json.find("\"class\":\"gate\""), std::string::npos);
    EXPECT_NE(json.find("\"delivered\":10"), std::string::npos)
        << "worker result bytes must appear verbatim";

    const std::string csv = renderReportCsv(specs, state);
    EXPECT_EQ(csv, renderReportCsv(specs, state));
    // Header plus one row per point.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
              static_cast<long>(specs.size()) + 1);

    // Nondeterministic diagnostics live in provenance, not the report.
    state.perPoint[1].quarantine.stderrTail = "varies per run";
    state.perPoint[1].quarantine.ckptPath = "point-1.ckpt";
    EXPECT_EQ(json, renderReportJson(specs, state));
    EXPECT_EQ(csv, renderReportCsv(specs, state));
    const std::string prov =
        renderProvenanceJson(specs, state, "/tmp/out");
    EXPECT_NE(prov.find("varies per run"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end fleets (these fork real workers).
// ---------------------------------------------------------------------

OrchestratorOptions
e2eOptions(const std::string &outDir)
{
    OrchestratorOptions opts;
    opts.outDir = outDir;
    opts.workers = 2;
    opts.maxFailures = 2;
    opts.hangTimeoutSec = 30.0;
    opts.pollIntervalSec = 0.01;
    opts.worker.checkpointEvery = 100;
    opts.backoff.initialSec = 0.05;
    opts.backoff.maxSec = 0.2;
    return opts;
}

GridSpec
e2eGrid()
{
    GridSpec grid;
    grid.designs = {PgDesign::kNord};
    grid.rates = {0.05};
    grid.seeds = {1, 2};
    grid.measure = 300;
    return grid;
}

TEST(CampaignEndToEnd, CompletesResumesAndSurvivesJournalTruncation)
{
    clearCampaignDrain();
    const std::string dir = freshDir("campaign_e2e");
    const std::vector<PointSpec> specs = expandGrid(e2eGrid());
    const OrchestratorOptions opts = e2eOptions(dir);

    CampaignOutcome out;
    std::string err;
    ASSERT_TRUE(runCampaign(specs, opts, &out, &err)) << err;
    EXPECT_EQ(out.completed, specs.size());
    EXPECT_EQ(out.quarantined, 0u);
    EXPECT_FALSE(out.interrupted);
    const std::string json1 = slurp(out.reportJson);
    const std::string csv1 = slurp(out.reportCsv);
    ASSERT_FALSE(json1.empty());
    ASSERT_FALSE(csv1.empty());

    // Resume with everything already terminal: no new launches, same
    // bytes.
    CampaignOutcome out2;
    ASSERT_TRUE(runCampaign(specs, opts, &out2, &err)) << err;
    EXPECT_EQ(out2.launches, 0u);
    EXPECT_EQ(slurp(out2.reportJson), json1);
    EXPECT_EQ(slurp(out2.reportCsv), csv1);

    // Amputate the journal back to its first two lines (the shape an
    // orchestrator SIGKILL leaves behind): the rerun must redo the lost
    // work -- resuming workers from leftover checkpoints -- and land on
    // the same report bytes.
    const std::string jpath = dir + "/journal.jsonl";
    const std::string full = slurp(jpath);
    std::size_t cut = full.find('\n');
    ASSERT_NE(cut, std::string::npos);
    cut = full.find('\n', cut + 1);
    ASSERT_NE(cut, std::string::npos);
    spew(jpath, full.substr(0, cut + 1));
    std::remove(out.reportJson.c_str());
    std::remove(out.reportCsv.c_str());

    CampaignOutcome out3;
    ASSERT_TRUE(runCampaign(specs, opts, &out3, &err)) << err;
    EXPECT_EQ(out3.completed, specs.size());
    EXPECT_GT(out3.launches, 0u);
    EXPECT_EQ(slurp(out3.reportJson), json1)
        << "a resumed campaign's report must be byte-identical";
    EXPECT_EQ(slurp(out3.reportCsv), csv1);
}

TEST(CampaignEndToEnd, PoisonPointQuarantinedWithDiagnostics)
{
    clearCampaignDrain();
    const std::string dir = freshDir("campaign_poison");
    std::vector<PointSpec> specs = expandGrid(e2eGrid());
    ASSERT_GE(specs.size(), 2u);
    specs[1].selfTest = SelfTest::kPoison;

    CampaignOutcome out;
    std::string err;
    ASSERT_TRUE(runCampaign(specs, e2eOptions(dir), &out, &err)) << err;
    EXPECT_EQ(out.completed, specs.size() - 1);
    EXPECT_EQ(out.quarantined, 1u);

    const std::string json = slurp(out.reportJson);
    EXPECT_NE(json.find("\"status\":\"quarantined\""),
              std::string::npos);
    EXPECT_NE(json.find("\"class\":\"gate\""), std::string::npos)
        << "a deterministic gate failure must quarantine on the first "
           "attempt, not burn retries: " << json;
    // The journal carries the quarantine diagnostics.
    const std::string journal = slurp(dir + "/journal.jsonl");
    EXPECT_NE(journal.find("\"event\":\"quarantine\""),
              std::string::npos);
}

TEST(CampaignEndToEnd, HangPointKilledByHeartbeatAndQuarantined)
{
    clearCampaignDrain();
    const std::string dir = freshDir("campaign_hang");
    std::vector<PointSpec> specs = expandGrid(e2eGrid());
    ASSERT_GE(specs.size(), 2u);
    specs[0].selfTest = SelfTest::kHang;

    OrchestratorOptions opts = e2eOptions(dir);
    opts.hangTimeoutSec = 0.5;
    opts.worker.checkpointEvery = 50;

    CampaignOutcome out;
    std::string err;
    ASSERT_TRUE(runCampaign(specs, opts, &out, &err)) << err;
    EXPECT_EQ(out.quarantined, 1u);
    EXPECT_EQ(out.completed, specs.size() - 1);
    const std::string json = slurp(out.reportJson);
    EXPECT_NE(json.find("\"class\":\"hang\""), std::string::npos)
        << json;
}

TEST(CampaignEndToEnd, ChaosKillsNeverChangeTheReport)
{
    clearCampaignDrain();
    GridSpec grid = e2eGrid();
    grid.measure = 20000;  // long enough for the schedule to land kills

    // Undisturbed reference run.
    const std::string cleanDir = freshDir("campaign_chaos_clean");
    const std::vector<PointSpec> specs = expandGrid(grid);
    CampaignOutcome clean;
    std::string err;
    ASSERT_TRUE(runCampaign(specs, e2eOptions(cleanDir), &clean, &err))
        << err;
    ASSERT_EQ(clean.completed, specs.size());

    // Same grid under chaos: workers are SIGKILLed on a seeded schedule
    // and resume from their checkpoints.
    const std::string chaosDir = freshDir("campaign_chaos");
    OrchestratorOptions opts = e2eOptions(chaosDir);
    opts.chaos.enabled = true;
    opts.chaos.seed = 7;
    opts.chaos.meanIntervalSec = 0.05;
    opts.chaos.maxKills = 3;
    CampaignOutcome chaotic;
    ASSERT_TRUE(runCampaign(specs, opts, &chaotic, &err)) << err;
    EXPECT_EQ(chaotic.completed, specs.size());
    EXPECT_GE(chaotic.chaosKills, 1u)
        << "the schedule never fired; the test proved nothing";

    EXPECT_EQ(slurp(chaotic.reportJson), slurp(clean.reportJson))
        << "chaos kills are uncounted and workers resume bit-exactly, "
           "so the report must not change";
    EXPECT_EQ(slurp(chaotic.reportCsv), slurp(clean.reportCsv));
}

#ifdef __linux__
// A SIGKILL'd orchestrator gets no chance to run any cleanup path; only
// the workers' own PR_SET_PDEATHSIG (fleet.cc) can reap them. Fork an
// orchestrator, wait until its workers heartbeat, SIGKILL it, and
// verify every checkpoint mtime freezes -- an orphaned worker would
// keep heartbeating.
TEST(CampaignEndToEnd, SigkilledOrchestratorLeavesNoOrphanWorkers)
{
    clearCampaignDrain();
    const std::string dir = freshDir("campaign_orphan");
    GridSpec grid = e2eGrid();
    grid.measure = 500000000;  // effectively unbounded at test scale
    const std::vector<PointSpec> specs = expandGrid(grid);

    const pid_t orch = fork();
    ASSERT_GE(orch, 0) << "fork failed";
    if (orch == 0) {
        OrchestratorOptions opts = e2eOptions(dir);
        opts.worker.checkpointEvery = 50;  // rapid heartbeats
        CampaignOutcome out;
        std::string err;
        runCampaign(specs, opts, &out, &err);
        _exit(0);
    }

    // Wait for a live heartbeat: point 0's checkpoint mtime must tick.
    const std::string ckpt0 = pointPaths(dir, specs[0].id).checkpoint;
    std::uint64_t last = 0;
    bool beating = false;
    const double deadline = monotonicSec() + 30.0;
    while (monotonicSec() < deadline && !beating) {
        std::uint64_t m = 0;
        if (fileMtimeNs(ckpt0, &m)) {
            beating = (last != 0 && m != last);
            last = m;
        }
        sleepSec(0.02);
    }
    ASSERT_TRUE(beating) << "workers never started heartbeating";

    ASSERT_EQ(kill(orch, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(orch, &status, 0), orch);

    // PDEATHSIG delivery is immediate; allow in-flight writes to land,
    // then require every checkpoint mtime to be frozen across a window
    // several heartbeat periods long.
    sleepSec(0.3);
    for (const PointSpec &s : specs) {
        const std::string ckpt = pointPaths(dir, s.id).checkpoint;
        std::uint64_t before = 0;
        const bool existed = fileMtimeNs(ckpt, &before);
        sleepSec(0.7);
        std::uint64_t after = 0;
        EXPECT_EQ(fileMtimeNs(ckpt, &after), existed);
        EXPECT_EQ(after, before)
            << "an orphaned worker is still heartbeating " << ckpt;
    }
}
#endif  // __linux__

}  // namespace
}  // namespace campaign
}  // namespace nord

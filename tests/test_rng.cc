/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace nord {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInBounds)
{
    Rng r(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.uniformInt(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    for (int c : counts)
        EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, BernoulliRate)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(20.0));
    EXPECT_NEAR(sum / n, 20.0, 1.0);
}

TEST(Rng, GeometricZeroMean)
{
    Rng r(15);
    EXPECT_EQ(r.geometric(0.0), 0u);
    EXPECT_EQ(r.geometric(-1.0), 0u);
}

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedTest, NoShortCycles)
{
    Rng r(GetParam());
    std::uint64_t first = r.next64();
    for (int i = 0; i < 10000; ++i)
        ASSERT_NE(r.next64(), first) << "cycle after " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
    ::testing::Values(0ull, 1ull, 42ull, 0xffffffffffffffffull,
                      0xdeadbeefull));

}  // namespace
}  // namespace nord

/**
 * @file
 * Multi-executor engine tests: the lease protocol, the deterministic
 * journal merge, and end-to-end executor fleets.
 *
 * The contract under test extends the orchestrator suite's one more
 * level: report.json / report.csv are a pure function of the grid
 * REGARDLESS of executor count, kill schedule, partition timing, or the
 * order journals are merged in. The unit half drives LeaseManager with
 * explicit clocks and folds hand-built and fuzzed journal sets in random
 * orders; the end-to-end half joins real executor processes against the
 * same tiny grids the classic tests use and compares report bytes
 * against a classic single-orchestrator golden run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_point.hh"
#include "campaign/executor.hh"
#include "campaign/exit_codes.hh"
#include "campaign/fleet.hh"
#include "campaign/journal.hh"
#include "campaign/lease.hh"
#include "campaign/merge.hh"
#include "campaign/orchestrator.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nord {
namespace campaign {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "/" + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path,
                      std::ios::out | std::ios::binary | std::ios::trunc);
    out << bytes;
}

#ifdef NORD_CAMPAIGN_POSIX

// ---------------------------------------------------------------------
// Lease protocol.
// ---------------------------------------------------------------------

LeaseOptions
leaseOpts(const std::string &dir, const std::string &execId,
          double graceSec = 0.3)
{
    LeaseOptions o;
    o.leaseDir = dir;
    o.execId = execId;
    o.shards = 2;
    o.graceSec = graceSec;
    o.settleSec = 0.01;
    return o;
}

TEST(LeaseProtocol, FileRoundTripAndGarbageRejected)
{
    const std::string dir = freshDir("lease_file");
    LeaseInfo info;
    info.shard = 3;
    info.token = 7;
    info.beat = 42;
    info.owner = "exec-a";
    const std::string path = leasePath(dir, 3);
    EXPECT_NE(path.find("shard-3.lease"), std::string::npos);
    spew(path, renderLeaseLine(info));
    LeaseInfo got;
    ASSERT_TRUE(readLeaseFile(path, &got));
    EXPECT_EQ(got.shard, 3u);
    EXPECT_EQ(got.token, 7u);
    EXPECT_EQ(got.beat, 42u);
    EXPECT_EQ(got.owner, "exec-a");

    spew(path, "not a lease\n");
    EXPECT_FALSE(readLeaseFile(path, &got));
}

TEST(LeaseProtocol, FreshClaimIsExclusiveWithTokenOne)
{
    const std::string dir = freshDir("lease_claim");
    LeaseManager a, b;
    std::string err;
    ASSERT_TRUE(a.init(leaseOpts(dir, "exec-a"), &err)) << err;
    ASSERT_TRUE(b.init(leaseOpts(dir, "exec-b"), &err)) << err;

    std::uint64_t token = 0;
    const double now = monotonicSec();
    ASSERT_TRUE(a.tryAcquire(0, now, &token));
    EXPECT_EQ(token, 1u) << "a fresh claim always starts the sequence";
    EXPECT_TRUE(a.holds(0));
    EXPECT_TRUE(a.writable(0, monotonicSec()));
    EXPECT_EQ(a.token(0), 1u);

    LeaseInfo file;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &file));
    EXPECT_EQ(file.owner, "exec-a");
    EXPECT_EQ(file.token, 1u);

    // A live lease is not acquirable: b must observe silence first.
    EXPECT_FALSE(b.tryAcquire(0, monotonicSec(), &token));
    EXPECT_FALSE(b.holds(0));
}

TEST(LeaseProtocol, RenewalKeepsOwnershipAgainstObservers)
{
    const std::string dir = freshDir("lease_renew");
    // Generous grace: the loop itself must never fence a on a scheduler
    // stall in a loaded CI runner.
    const double grace = 0.8;
    LeaseManager a, b;
    std::string err;
    ASSERT_TRUE(a.init(leaseOpts(dir, "exec-a", grace), &err)) << err;
    ASSERT_TRUE(b.init(leaseOpts(dir, "exec-b", grace), &err)) << err;

    std::uint64_t token = 0;
    ASSERT_TRUE(a.tryAcquire(0, monotonicSec(), &token));

    // Heartbeat for > graceSec of wall time; b keeps watching and must
    // never see the grace of silence a steal requires.
    const double until = monotonicSec() + grace + 0.2;
    while (monotonicSec() < until) {
        a.renewDue(monotonicSec());
        EXPECT_FALSE(b.tryAcquire(0, monotonicSec(), &token));
        sleepSec(0.02);
    }
    EXPECT_FALSE(a.fenced());
    EXPECT_TRUE(a.writable(0, monotonicSec()));
    LeaseInfo file;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &file));
    EXPECT_EQ(file.owner, "exec-a");
    EXPECT_GT(file.beat, 1u) << "renewals must advance the beat";
}

TEST(LeaseProtocol, ReleasedLeaseIsImmediatelyStealable)
{
    const std::string dir = freshDir("lease_release");
    LeaseManager a, b;
    std::string err;
    ASSERT_TRUE(a.init(leaseOpts(dir, "exec-a"), &err)) << err;
    ASSERT_TRUE(b.init(leaseOpts(dir, "exec-b"), &err)) << err;

    std::uint64_t token = 0;
    ASSERT_TRUE(a.tryAcquire(0, monotonicSec(), &token));
    a.releaseAll();
    EXPECT_FALSE(a.holds(0));
    LeaseInfo file;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &file));
    EXPECT_EQ(file.owner, "") << "released leases carry an empty owner";

    // No grace wait: the very next acquire succeeds, token bumped.
    ASSERT_TRUE(b.tryAcquire(0, monotonicSec(), &token));
    EXPECT_EQ(token, 2u)
        << "the token sequence survives a release (never resets)";
}

TEST(LeaseProtocol, ExpiryStealFencesTheSilentOwner)
{
    const std::string dir = freshDir("lease_steal");
    const double grace = 0.3;
    LeaseManager a, b;
    std::string err;
    ASSERT_TRUE(a.init(leaseOpts(dir, "exec-a", grace), &err)) << err;
    ASSERT_TRUE(b.init(leaseOpts(dir, "exec-b", grace), &err)) << err;

    std::uint64_t token = 0;
    ASSERT_TRUE(a.tryAcquire(0, monotonicSec(), &token));

    // a goes silent (partition). b needs one observation to start its
    // silence clock, then the full grace before the steal lands.
    EXPECT_FALSE(b.tryAcquire(0, monotonicSec(), &token));
    sleepSec(grace + 0.05);
    ASSERT_TRUE(b.tryAcquire(0, monotonicSec(), &token));
    EXPECT_EQ(token, 2u);
    EXPECT_TRUE(b.writable(0, monotonicSec()));

    // The resumed owner must fence on its next renewal, not overwrite
    // the thief -- and a fenced manager never un-fences or writes.
    a.renewDue(monotonicSec());
    EXPECT_TRUE(a.fenced());
    EXPECT_FALSE(a.fenceReason().empty());
    EXPECT_FALSE(a.writable(0, monotonicSec()));
    EXPECT_FALSE(a.holds(0));
    EXPECT_FALSE(a.tryAcquire(1, monotonicSec(), &token))
        << "a fenced manager must refuse every acquisition";
    a.releaseAll();  // must be a no-op
    LeaseInfo file;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &file));
    EXPECT_EQ(file.owner, "exec-b")
        << "the fenced owner wrote a lease file after losing it";
    EXPECT_EQ(file.token, 2u);
}

TEST(LeaseProtocol, StalenessAloneFencesBeforeAnyWrite)
{
    // Self-fencing is clock-local: an owner that cannot prove a renewal
    // younger than grace/2 classifies itself dead even if nobody stole
    // anything -- that margin is what makes the steal sound.
    const std::string dir = freshDir("lease_stale");
    const double grace = 0.2;
    LeaseManager a;
    std::string err;
    ASSERT_TRUE(a.init(leaseOpts(dir, "exec-a", grace), &err)) << err;
    std::uint64_t token = 0;
    ASSERT_TRUE(a.tryAcquire(0, monotonicSec(), &token));
    LeaseInfo before;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &before));

    sleepSec(grace / 2.0 + 0.05);
    EXPECT_FALSE(a.writable(0, monotonicSec()));
    EXPECT_TRUE(a.fenced());
    // renewDue after the fence must not touch the file either.
    a.renewDue(monotonicSec());
    LeaseInfo after;
    ASSERT_TRUE(readLeaseFile(leasePath(dir, 0), &after));
    EXPECT_EQ(after.beat, before.beat)
        << "a fenced owner wrote a heartbeat";
}

TEST(LeaseProtocol, TokenSequencePerShardIsMonotonic)
{
    const std::string dir = freshDir("lease_monotonic");
    std::string err;
    std::uint64_t lastToken = 0;
    for (int gen = 0; gen < 3; ++gen) {
        LeaseManager m;
        ASSERT_TRUE(m.init(leaseOpts(dir, "exec-" + std::to_string(gen)),
                           &err))
            << err;
        std::uint64_t token = 0;
        ASSERT_TRUE(m.tryAcquire(0, monotonicSec(), &token));
        EXPECT_GT(token, lastToken)
            << "tokens must be strictly increasing across owners";
        lastToken = token;
        m.releaseAll();
    }
    EXPECT_EQ(lastToken, 3u);
}

// ---------------------------------------------------------------------
// Deterministic journal merge.
// ---------------------------------------------------------------------

ReplayState
baseState(std::uint64_t points = 4, std::uint64_t fp = 0xfeedULL)
{
    ReplayState s;
    s.opened = true;
    s.points = points;
    s.gridFp = fp;
    return s;
}

void
setDone(ReplayState *s, std::uint64_t id, std::uint64_t token,
        const std::string &result, int launches = 1)
{
    ReplayPoint &p = s->perPoint[id];
    p.done = true;
    p.token = token;
    p.resultLine = result;
    p.launches = launches;
}

void
setQuarantine(ReplayState *s, std::uint64_t id, std::uint64_t token,
              const std::string &tail)
{
    ReplayPoint &p = s->perPoint[id];
    p.quarantined = true;
    p.token = token;
    p.quarantine.cls = FailureClass::kGate;
    p.quarantine.exitCode = kExitGateFailure;
    p.quarantine.stderrTail = tail;
}

TEST(JournalMerge, SumsCountersAndDedupesEqualTerminals)
{
    ReplayState a = baseState(), b = baseState();
    setDone(&a, 0, 1, "{\"v\":1}", 2);
    a.perPoint[0].countedFailures = 1;
    setDone(&b, 0, 1, "{\"v\":1}", 3);
    b.perPoint[0].countedFailures = 2;

    ReplayState merged;
    MergeStats stats;
    std::string err;
    ASSERT_TRUE(mergeReplayStates({a, b}, &merged, &stats, &err)) << err;
    EXPECT_EQ(merged.perPoint[0].launches, 5);
    EXPECT_EQ(merged.perPoint[0].countedFailures, 3);
    EXPECT_TRUE(merged.perPoint[0].done);
    EXPECT_EQ(merged.perPoint[0].resultLine, "{\"v\":1}");
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.staleDropped, 0u);
}

TEST(JournalMerge, StaleLowerTokenCommitRejectedEitherOrder)
{
    // The fencing-token check at merge time: an executor that lost
    // shard ownership committed "done" under token 1 after the new
    // owner re-ran the point under token 2. The stale bytes must lose
    // in BOTH fold orders.
    ReplayState stale = baseState(), fresh = baseState();
    setDone(&stale, 0, 1, "{\"v\":\"stale\"}");
    setDone(&fresh, 0, 2, "{\"v\":\"fresh\"}");

    for (const auto &order :
         {std::vector<ReplayState>{stale, fresh},
          std::vector<ReplayState>{fresh, stale}}) {
        ReplayState merged;
        MergeStats stats;
        std::string err;
        ASSERT_TRUE(mergeReplayStates(order, &merged, &stats, &err))
            << err;
        EXPECT_EQ(merged.perPoint[0].resultLine, "{\"v\":\"fresh\"}");
        EXPECT_EQ(merged.perPoint[0].token, 2u);
        EXPECT_EQ(stats.staleDropped, 1u);
    }
}

TEST(JournalMerge, DoneBeatsQuarantineAtEqualToken)
{
    // One owner quarantined the point, a same-token retry (same owner,
    // later attempt) completed it: success is definitive.
    ReplayState q = baseState(), d = baseState();
    setQuarantine(&q, 1, 2, "boom");
    setDone(&d, 1, 2, "{\"v\":9}");

    for (const auto &order : {std::vector<ReplayState>{q, d},
                              std::vector<ReplayState>{d, q}}) {
        ReplayState merged;
        std::string err;
        ASSERT_TRUE(mergeReplayStates(order, &merged, nullptr, &err))
            << err;
        EXPECT_TRUE(merged.perPoint[1].done);
        EXPECT_FALSE(merged.perPoint[1].quarantined);
    }
}

TEST(JournalMerge, EqualTokenQuarantineTieBreakIsOrderIndependent)
{
    // Quarantine diagnostics (stderr tails) legitimately vary between
    // owners; the winner is chosen by rendered bytes, not fold order.
    ReplayState x = baseState(), y = baseState();
    setQuarantine(&x, 2, 1, "tail-b");
    setQuarantine(&y, 2, 1, "tail-a");

    std::string firstTail;
    for (const auto &order : {std::vector<ReplayState>{x, y},
                              std::vector<ReplayState>{y, x}}) {
        ReplayState merged;
        std::string err;
        ASSERT_TRUE(mergeReplayStates(order, &merged, nullptr, &err))
            << err;
        ASSERT_TRUE(merged.perPoint[2].quarantined);
        if (firstTail.empty())
            firstTail = merged.perPoint[2].quarantine.stderrTail;
        EXPECT_EQ(merged.perPoint[2].quarantine.stderrTail, firstTail);
    }
}

TEST(JournalMerge, SameTokenDivergentDoneIsAHardErrorEitherOrder)
{
    // Two different result byte strings under ONE fencing token cannot
    // both be right: workers are pure functions of their spec, so this
    // means the simulator is nondeterministic. The merge must refuse --
    // in every fold order, including with a third higher-token state
    // that would otherwise win and mask the conflict.
    ReplayState a = baseState(), b = baseState(), c = baseState();
    setDone(&a, 0, 1, "{\"v\":1}");
    setDone(&b, 0, 1, "{\"v\":2}");
    setDone(&c, 0, 2, "{\"v\":3}");

    std::vector<ReplayState> states{a, b, c};
    std::sort(states.begin(), states.end(),
              [](const ReplayState &l, const ReplayState &r) {
                  return l.perPoint.at(0).resultLine <
                         r.perPoint.at(0).resultLine;
              });
    int checked = 0;
    do {
        ReplayState merged;
        std::string err;
        EXPECT_FALSE(mergeReplayStates(states, &merged, nullptr, &err));
        EXPECT_NE(err.find("divergent"), std::string::npos) << err;
        ++checked;
    } while (std::next_permutation(
        states.begin(), states.end(),
        [](const ReplayState &l, const ReplayState &r) {
            return l.perPoint.at(0).resultLine <
                   r.perPoint.at(0).resultLine;
        }));
    EXPECT_EQ(checked, 6);
}

TEST(JournalMerge, CanonicalJournalMatchesRotationBytes)
{
    // renderCanonicalJournal's contract: the canonical journal of a
    // drained fleet campaign is byte-equal to what classic journal
    // rotation would write for the same state -- readable by any
    // classic tool.
    const std::string dir = freshDir("merge_canonical");
    const std::string path = dir + "/journal.jsonl";
    CampaignJournal j;
    ReplayState replay;
    std::string err;
    ASSERT_TRUE(j.open(path, 3, 0xabcdULL, &replay, &err)) << err;
    ASSERT_TRUE(j.appendFail(0, FailureClass::kInfra, 12, 0, true,
                             "tail", "ckpt"));
    ASSERT_TRUE(j.appendDone(0, "{\"v\":1}"));
    ASSERT_TRUE(j.appendDone(1, "{\"v\":2}"));
    QuarantineRecord rec;
    rec.cls = FailureClass::kGate;
    rec.exitCode = kExitGateFailure;
    rec.stderrTail = "gate \"fail\"";
    ASSERT_TRUE(j.appendQuarantine(2, rec));

    ReplayState state;
    ASSERT_TRUE(CampaignJournal::replayContent(slurp(path), 3, 0xabcdULL,
                                               &state, &err))
        << err;
    ASSERT_TRUE(j.rotate(state));
    j.close();

    EXPECT_EQ(renderCanonicalJournal(state), slurp(path));
}

TEST(JournalMerge, FuzzedJournalSetsMergeOrderIndependently)
{
    // Satellite: merge determinism under fuzz. Random journal sets --
    // stale commits, duplicate commits, divergent-diagnostic
    // quarantines, counted failures, torn tails -- must fold to
    // byte-identical canonical journals and reports under every
    // merge order.
    GridSpec grid;
    grid.designs = {PgDesign::kNord};
    grid.rates = {0.05};
    grid.seeds = {1, 2, 3, 4, 5};
    grid.measure = 300;
    const std::vector<PointSpec> specs = expandGrid(grid);
    const std::uint64_t fp = gridFingerprint(specs);
    const std::uint64_t P = specs.size();
    const std::string dir = freshDir("merge_fuzz");

    const auto result = [](std::uint64_t p, std::uint64_t t) {
        // Pure function of (point, token): same-token commits agree,
        // different-token commits differ (so stale drops are visible).
        return std::string("{\"v\":") +
               std::to_string(p * 100 + t) + "}";
    };

    for (unsigned round = 0; round < 6; ++round) {
        std::mt19937 rng(round * 7919u + 13u);
        const int K = 3;

        // Choose each point's winning (token, kind) up front.
        std::vector<std::uint64_t> winTok(P);
        std::vector<bool> winDone(P);
        std::vector<unsigned> winJournal(P);
        for (std::uint64_t p = 0; p < P; ++p) {
            winTok[p] = 1 + rng() % 3;
            winDone[p] = rng() % 4 != 0;
            winJournal[p] = rng() % K;
        }

        std::vector<std::string> contents;
        for (int k = 0; k < K; ++k) {
            const std::string path =
                dir + "/journal-r" + std::to_string(round) + "-" +
                std::to_string(k) + ".jsonl";
            std::error_code ec;
            std::filesystem::remove(path, ec);
            CampaignJournal j;
            ReplayState replay;
            std::string err;
            ASSERT_TRUE(j.open(path, P, fp, &replay, &err)) << err;
            for (std::uint64_t p = 0; p < P; ++p) {
                const ShardStamp stamp{p % 2, winTok[p]};
                if (rng() % 2) {
                    ASSERT_TRUE(j.appendFail(
                        p, FailureClass::kInfra, 12, 0, true,
                        "tail-" + std::to_string(k), "", stamp));
                }
                if (winJournal[p] == static_cast<unsigned>(k)) {
                    if (winDone[p]) {
                        ASSERT_TRUE(j.appendDone(
                            p, result(p, winTok[p]), stamp));
                    } else {
                        QuarantineRecord rec;
                        rec.cls = FailureClass::kGate;
                        rec.exitCode = kExitGateFailure;
                        rec.stderrTail = "q-" + std::to_string(k);
                        ASSERT_TRUE(j.appendQuarantine(p, rec, stamp));
                    }
                } else if (winTok[p] > 1 && rng() % 2) {
                    // A stale commit under a lower token: either kind.
                    const ShardStamp old{p % 2, winTok[p] - 1};
                    if (rng() % 2) {
                        ASSERT_TRUE(j.appendDone(
                            p, result(p, old.token), old));
                    } else {
                        QuarantineRecord rec;
                        rec.cls = FailureClass::kCrash;
                        rec.signal = 9;
                        rec.stderrTail = "stale-" + std::to_string(k);
                        ASSERT_TRUE(j.appendQuarantine(p, rec, old));
                    }
                } else if (winDone[p] && rng() % 2) {
                    // A duplicate of the winner (same token, same
                    // bytes -- the benign steal-race shape).
                    ASSERT_TRUE(j.appendDone(
                        p, result(p, winTok[p]),
                        ShardStamp{p % 2, winTok[p]}));
                }
            }
            j.close();
            std::string content = slurp(path);
            if (rng() % 3 == 0) {
                // Torn tail: cut mid-way through the final line.
                const std::size_t firstNl = content.find('\n');
                ASSERT_NE(firstNl, std::string::npos);
                const std::size_t lastNl =
                    content.find_last_of('\n', content.size() - 2);
                if (lastNl != std::string::npos && lastNl > firstNl)
                    content.resize(lastNl + 1 + rng() % 5);
            }
            contents.push_back(content);
        }

        std::string canonical, reportJ, reportC;
        for (int perm = 0; perm < 5; ++perm) {
            std::shuffle(contents.begin(), contents.end(), rng);
            ReplayState merged;
            MergeStats stats;
            std::string err;
            ASSERT_TRUE(
                mergeJournals(P, fp, contents, &merged, &stats, &err))
                << "round " << round << ": " << err;
            const std::string cj = renderCanonicalJournal(merged);
            const std::string rj = renderReportJson(specs, merged);
            const std::string rc = renderReportCsv(specs, merged);
            if (perm == 0) {
                canonical = cj;
                reportJ = rj;
                reportC = rc;
            } else {
                EXPECT_EQ(cj, canonical)
                    << "round " << round << " perm " << perm
                    << ": canonical journal depends on merge order";
                EXPECT_EQ(rj, reportJ);
                EXPECT_EQ(rc, reportC);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Executor end-to-end.
// ---------------------------------------------------------------------

GridSpec
fleetGrid(int points = 4)
{
    GridSpec grid;
    grid.designs = {PgDesign::kNord};
    grid.rates = {0.05};
    grid.seeds.clear();
    for (int s = 1; s <= points; ++s)
        grid.seeds.push_back(static_cast<std::uint64_t>(s));
    grid.measure = 300;
    return grid;
}

ExecutorOptions
fleetOptions(const std::string &outDir, const std::string &execId)
{
    ExecutorOptions o;
    o.outDir = outDir;
    o.execId = execId;
    o.workers = 2;
    o.maxFailures = 2;
    o.hangTimeoutSec = 30.0;
    o.pollIntervalSec = 0.01;
    o.worker.checkpointEvery = 100;
    o.backoff.initialSec = 0.05;
    o.backoff.maxSec = 0.2;
    return o;
}

/** Classic single-orchestrator golden run for @p specs. */
CampaignOutcome
goldenRun(const std::vector<PointSpec> &specs, const std::string &dir)
{
    clearCampaignDrain();
    OrchestratorOptions opts;
    opts.outDir = dir;
    opts.workers = 2;
    opts.maxFailures = 2;
    opts.pollIntervalSec = 0.01;
    opts.worker.checkpointEvery = 100;
    CampaignOutcome out;
    std::string err;
    EXPECT_TRUE(runCampaign(specs, opts, &out, &err)) << err;
    return out;
}

TEST(ExecutorEndToEnd, SingleJoinMatchesClassicReportBytes)
{
    clearCampaignDrain();
    const std::vector<PointSpec> specs = expandGrid(fleetGrid());
    const std::string goldDir = freshDir("exec_single_gold");
    const CampaignOutcome gold = goldenRun(specs, goldDir);
    ASSERT_EQ(gold.completed, specs.size());

    const std::string dir = freshDir("exec_single");
    ExecutorOutcome out;
    std::string err;
    ASSERT_TRUE(runExecutor(specs, fleetOptions(dir, "exec-solo"), &out,
                            &err))
        << err;
    EXPECT_FALSE(out.fenced) << out.fenceReason;
    EXPECT_EQ(out.completed, specs.size());
    EXPECT_TRUE(out.wroteReports);

    EXPECT_EQ(slurp(out.reportJson), slurp(gold.reportJson))
        << "a joined fleet of one must reproduce the classic report "
           "byte for byte";
    EXPECT_EQ(slurp(out.reportCsv), slurp(gold.reportCsv));

    // The canonical journal is classic-readable.
    ReplayState state;
    ASSERT_TRUE(CampaignJournal::replayContent(
        slurp(dir + "/journal.jsonl"), specs.size(),
        gridFingerprint(specs), &state, &err))
        << err;
    for (const PointSpec &s : specs)
        EXPECT_TRUE(state.perPoint[s.id].done);

    // Re-joining a finished campaign launches nothing and rewrites the
    // same bytes (idempotent completion).
    ExecutorOutcome again;
    ASSERT_TRUE(runExecutor(specs, fleetOptions(dir, "exec-late"), &again,
                            &err))
        << err;
    EXPECT_EQ(again.launches, 0u);
    EXPECT_EQ(slurp(again.reportJson), slurp(gold.reportJson));

    // Mode guards, both directions: classic dirs refuse --join, fleet
    // dirs refuse the classic orchestrator.
    ExecutorOutcome bad;
    EXPECT_FALSE(runExecutor(specs, fleetOptions(goldDir, "exec-x"),
                             &bad, &err));
    EXPECT_NE(err.find("classic"), std::string::npos) << err;
    OrchestratorOptions copts;
    copts.outDir = dir;
    CampaignOutcome cout;
    EXPECT_FALSE(runCampaign(specs, copts, &cout, &err));
    EXPECT_NE(err.find("--join"), std::string::npos) << err;
}

TEST(ExecutorEndToEnd, TwoConcurrentExecutorsProduceIdenticalReports)
{
    clearCampaignDrain();
    const std::vector<PointSpec> specs = expandGrid(fleetGrid(6));
    const std::string goldDir = freshDir("exec_pair_gold");
    const CampaignOutcome gold = goldenRun(specs, goldDir);
    ASSERT_EQ(gold.completed, specs.size());

    const std::string dir = freshDir("exec_pair");
    const pid_t peer = fork();
    ASSERT_GE(peer, 0);
    if (peer == 0) {
        ExecutorOutcome out;
        std::string err;
        const bool ok =
            runExecutor(specs, fleetOptions(dir, "exec-b"), &out, &err);
        _exit(ok && !out.fenced ? 0 : 1);
    }
    ExecutorOutcome out;
    std::string err;
    ASSERT_TRUE(
        runExecutor(specs, fleetOptions(dir, "exec-a"), &out, &err))
        << err;
    int status = 0;
    ASSERT_EQ(waitpid(peer, &status, 0), peer);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "peer executor failed";
    EXPECT_FALSE(out.fenced) << out.fenceReason;

    EXPECT_EQ(slurp(dir + "/report.json"), slurp(gold.reportJson))
        << "two cooperating executors must land on the classic bytes";
    EXPECT_EQ(slurp(dir + "/report.csv"), slurp(gold.reportCsv));
}

TEST(ExecutorEndToEnd, SequentialHandoverDrainsAndResumes)
{
    clearCampaignDrain();
    const std::vector<PointSpec> specs = expandGrid(fleetGrid());
    const std::string goldDir = freshDir("exec_handover_gold");
    const CampaignOutcome gold = goldenRun(specs, goldDir);
    ASSERT_EQ(gold.completed, specs.size());

    // Executor 1 drains itself after a single launch (test hook): a
    // deterministic stand-in for an operator Ctrl-C mid-campaign.
    clearCampaignDrain();
    const std::string dir = freshDir("exec_handover");
    ExecutorOptions first = fleetOptions(dir, "exec-first");
    first.drainAfterLaunches = 1;
    ExecutorOutcome out1;
    std::string err;
    ASSERT_TRUE(runExecutor(specs, first, &out1, &err)) << err;
    EXPECT_TRUE(out1.interrupted);
    EXPECT_EQ(out1.launches, 1u);
    EXPECT_FALSE(out1.wroteReports);

    // Executor 2 joins later, adopts the manifest, steals or claims the
    // released shards, and finishes the campaign.
    clearCampaignDrain();
    ExecutorOutcome out2;
    ASSERT_TRUE(runExecutor(specs, fleetOptions(dir, "exec-second"),
                            &out2, &err))
        << err;
    EXPECT_TRUE(out2.wroteReports);
    EXPECT_EQ(out2.completed, specs.size());
    EXPECT_EQ(slurp(out2.reportJson), slurp(gold.reportJson));
    EXPECT_EQ(slurp(out2.reportCsv), slurp(gold.reportCsv));
}

#endif  // NORD_CAMPAIGN_POSIX

}  // namespace
}  // namespace campaign
}  // namespace nord

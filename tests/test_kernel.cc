/**
 * @file
 * Unit tests for the simulation kernel and synthetic traffic sources.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/noc_system.hh"
#include "sim/kernel.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

/** Records the cycles and order in which it was ticked. */
class Probe : public Clocked
{
  public:
    explicit Probe(std::vector<int> *log, int id) : log_(log), id_(id) {}
    void tick(Cycle) override { log_->push_back(id_); }
    std::string name() const override { return "probe"; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(SimKernel, TicksInRegistrationOrder)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    Probe b(&log, 2);
    Probe c(&log, 3);
    kernel.add(&a);
    kernel.add(&b);
    kernel.add(&c);
    kernel.run(2);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 1, 2, 3}));
    EXPECT_EQ(kernel.now(), 2u);
}

TEST(SimKernel, RunUntilStopsAtPredicate)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    kernel.add(&a);
    bool hit = kernel.runUntil([&] { return log.size() >= 5; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(kernel.now(), 5u);
}

TEST(SimKernel, RunUntilHonorsLimit)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    kernel.add(&a);
    bool hit = kernel.runUntil([] { return false; }, 7);
    EXPECT_FALSE(hit);
    EXPECT_EQ(kernel.now(), 7u);
}

TEST(SyntheticTraffic, RateIsRespected)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 3);
    sys.setWorkload(&traffic);
    sys.run(50000);
    // flits injected ~= rate * nodes * cycles.
    const double expected = 0.10 * 16 * 50000;
    EXPECT_NEAR(static_cast<double>(sys.stats().flitsInjected()),
                expected, 0.08 * expected);
}

TEST(SyntheticTraffic, BimodalLengths)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 3);
    sys.setWorkload(&traffic);
    sys.run(30000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(10000));
    // Average packet length must be ~(1+5)/2 = 3 flits.
    const double avgLen =
        static_cast<double>(sys.stats().flitsDelivered()) /
        static_cast<double>(sys.stats().packetsDelivered());
    EXPECT_NEAR(avgLen, 3.0, 0.2);
}

TEST(SyntheticTraffic, BitComplementDestinations)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    // Bit-complement of (r, c) in 4x4: (3-r, 3-c): node 0 -> 15.
    SyntheticTraffic traffic(TrafficPattern::kBitComplement, 0.05, 3);
    sys.setWorkload(&traffic);
    sys.run(5000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(10000));
    // All delivered at complement nodes: hop count == manhattan + 1 of
    // the complement pairs; for 4x4 all pairs have distance >= 2.
    EXPECT_GT(sys.stats().avgHops(), 3.0);
    EXPECT_EQ(sys.ni(15).packetsReceived(),
              sys.stats().packetsDelivered() - [&] {
                  std::uint64_t other = 0;
                  for (NodeId n = 0; n < 15; ++n)
                      other += sys.ni(n).packetsReceived();
                  return other;
              }());
}

TEST(SyntheticTraffic, PatternNames)
{
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kUniformRandom),
                 "uniform_random");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kBitComplement),
                 "bit_complement");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kTranspose),
                 "transpose");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kHotspot), "hotspot");
}

TEST(NocConfigTest, ValidationCatchesBadSetups)
{
    NocConfig cfg;
    cfg.numEscapeVcs = 4;  // == numVcs: no adaptive class left
    EXPECT_EXIT({ cfg.validate(); }, ::testing::ExitedWithCode(1), "");

    NocConfig odd;
    odd.rows = 3;
    EXPECT_EXIT({ odd.validate(); }, ::testing::ExitedWithCode(1), "");

    NocConfig nordOneEscape;
    nordOneEscape.design = PgDesign::kNord;
    nordOneEscape.numVcs = 4;
    nordOneEscape.numEscapeVcs = 1;
    EXPECT_EXIT({ nordOneEscape.validate(); },
                ::testing::ExitedWithCode(1), "");
}

TEST(NocConfigTest, VcClassHelpers)
{
    NocConfig cfg;  // 4 VCs, 2 escape
    EXPECT_EQ(cfg.vcClassOf(0), VcClass::kEscape);
    EXPECT_EQ(cfg.vcClassOf(1), VcClass::kEscape);
    EXPECT_EQ(cfg.vcClassOf(2), VcClass::kAdaptive);
    EXPECT_EQ(cfg.vcClassOf(3), VcClass::kAdaptive);
    EXPECT_EQ(cfg.firstVcOf(VcClass::kEscape), 0);
    EXPECT_EQ(cfg.firstVcOf(VcClass::kAdaptive), 2);
    EXPECT_EQ(cfg.numVcsOf(VcClass::kEscape), 2);
    EXPECT_EQ(cfg.numVcsOf(VcClass::kAdaptive), 2);
}

TEST(TypesTest, DirectionHelpers)
{
    EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
    EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
    EXPECT_EQ(opposite(Direction::kLocal), Direction::kLocal);
    EXPECT_EQ(indexDir(dirIndex(Direction::kWest)), Direction::kWest);
    EXPECT_STREQ(pgDesignName(PgDesign::kNord), "NoRD");
    EXPECT_STREQ(powerStateName(PowerState::kWakingUp), "waking");
    EXPECT_TRUE(isHead(FlitType::kHeadTail));
    EXPECT_TRUE(isTail(FlitType::kHeadTail));
    EXPECT_FALSE(isHead(FlitType::kBody));
    EXPECT_FALSE(isTail(FlitType::kHead));
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Unit tests for the simulation kernel and synthetic traffic sources.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "network/noc_system.hh"
#include "sim/kernel.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

/** Records the cycles and order in which it was ticked. */
class Probe : public Clocked
{
  public:
    explicit Probe(std::vector<int> *log, int id) : log_(log), id_(id) {}
    void tick(Cycle) override { log_->push_back(id_); }
    std::string name() const override { return "probe"; }

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(SimKernel, TicksInRegistrationOrder)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    Probe b(&log, 2);
    Probe c(&log, 3);
    kernel.add(&a);
    kernel.add(&b);
    kernel.add(&c);
    kernel.run(2);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 1, 2, 3}));
    EXPECT_EQ(kernel.now(), 2u);
}

TEST(SimKernel, RunUntilStopsAtPredicate)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    kernel.add(&a);
    bool hit = kernel.runUntil([&] { return log.size() >= 5; }, 100);
    EXPECT_TRUE(hit);
    EXPECT_EQ(kernel.now(), 5u);
}

TEST(SimKernel, RunUntilHonorsLimit)
{
    SimKernel kernel;
    std::vector<int> log;
    Probe a(&log, 1);
    kernel.add(&a);
    bool hit = kernel.runUntil([] { return false; }, 7);
    EXPECT_FALSE(hit);
    EXPECT_EQ(kernel.now(), 7u);
}

/**
 * Probe with a controllable quiescence flag and a wake hook, to exercise
 * the kernel's active list directly.
 */
class SleepyProbe : public Clocked
{
  public:
    SleepyProbe(std::vector<int> *log, int id) : log_(log), id_(id) {}
    void tick(Cycle) override
    {
        log_->push_back(id_);
        ++ticks;
        if (wakeTarget != nullptr) {
            wakeTarget->kernelWake();
            wakeTarget = nullptr;
        }
    }
    bool quiescent() const override { return sleepy; }
    std::string name() const override { return "sleepy"; }

    bool sleepy = false;
    int ticks = 0;
    Clocked *wakeTarget = nullptr;  ///< woken during our next tick

  private:
    std::vector<int> *log_;
    int id_;
};

TEST(SimKernel, QuiescentObjectsAreSkipped)
{
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe a(&log, 1);
    SleepyProbe b(&log, 2);
    kernel.add(&a);
    kernel.add(&b);
    a.sleepy = true;
    kernel.run(1);
    // Cycle 0: both tick (a's quiescence is only observed after its
    // tick), then a drops off the active list.
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(kernel.tickedLastCycle(), 2u);
    EXPECT_FALSE(kernel.isActive(&a));
    EXPECT_TRUE(kernel.isActive(&b));
    kernel.run(3);
    EXPECT_EQ(a.ticks, 1);
    EXPECT_EQ(b.ticks, 4);
    EXPECT_EQ(kernel.tickedLastCycle(), 1u);
    EXPECT_EQ(kernel.skippedLastCycle(), 1u);
    EXPECT_EQ(kernel.skippedTotal(), 3u);
}

TEST(SimKernel, WakeRearmsASkippedObject)
{
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe a(&log, 1);
    kernel.add(&a);
    a.sleepy = true;
    kernel.run(2);
    EXPECT_EQ(a.ticks, 1);
    a.sleepy = false;
    a.kernelWake();
    kernel.run(2);
    EXPECT_EQ(a.ticks, 3);
    EXPECT_TRUE(kernel.isActive(&a));
    // Waking an already-active object is a no-op.
    a.kernelWake();
    kernel.run(1);
    EXPECT_EQ(a.ticks, 4);
}

TEST(SimKernel, WakeOfLaterSlotTicksSameCycle)
{
    // Satellite regression: a producer waking a consumer registered
    // AFTER it must see the consumer tick the very same cycle -- exactly
    // what the serial kernel would do.
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe producer(&log, 1);
    SleepyProbe consumer(&log, 2);
    kernel.add(&producer);
    kernel.add(&consumer);
    consumer.sleepy = true;
    kernel.run(1);  // consumer ticks once, then parks
    log.clear();
    consumer.sleepy = false;
    producer.wakeTarget = &consumer;
    kernel.run(1);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(SimKernel, WakeOfEarlierSlotDuringTickDoesNotInvalidateIteration)
{
    // Satellite regression (the registration-order hazard): an NI-like
    // object waking a router-like object registered BEFORE it, mid-cycle,
    // must neither re-tick the earlier object this cycle (serially its
    // tick already happened as a no-op) nor skip/corrupt the rest of the
    // pass.
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe router(&log, 1);
    SleepyProbe ni(&log, 2);
    SleepyProbe after(&log, 3);
    kernel.add(&router);
    kernel.add(&ni);
    kernel.add(&after);
    router.sleepy = true;
    kernel.run(1);  // router parks after this cycle
    log.clear();
    router.sleepy = false;
    ni.wakeTarget = &router;
    kernel.run(1);
    // The woken (earlier) router must NOT run this cycle; `after` must
    // still run exactly once.
    EXPECT_EQ(log, (std::vector<int>{2, 3}));
    log.clear();
    kernel.run(1);
    // Next cycle the router is back in registration order.
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(SimKernel, SelfWakeDuringOwnTickIsSafe)
{
    // An object that re-arms itself from inside its own tick while
    // reporting quiescent must not break the pass; the self-wake lands
    // after the erase, so it stays active for the next cycle.
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe a(&log, 1);
    SleepyProbe b(&log, 2);
    kernel.add(&a);
    kernel.add(&b);
    a.sleepy = true;
    b.wakeTarget = &a;  // b wakes a in the same cycle a parks
    kernel.run(1);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_TRUE(kernel.isActive(&a));
    kernel.run(1);
    EXPECT_EQ(a.ticks, 2);
}

TEST(SimKernel, SkipDisabledTicksEverything)
{
    SimKernel kernel;
    std::vector<int> log;
    SleepyProbe a(&log, 1);
    kernel.add(&a);
    a.sleepy = true;
    kernel.setSkipEnabled(false);
    kernel.run(5);
    EXPECT_EQ(a.ticks, 5);
    EXPECT_EQ(kernel.skippedTotal(), 0u);
    // Re-enabling re-arms everything and resumes skipping.
    kernel.setSkipEnabled(true);
    kernel.run(5);
    EXPECT_EQ(a.ticks, 6);
}

TEST(SimKernel, TickedPlusSkippedCoversGatedSet)
{
    // System-level counter check: every cycle ticked + skipped must
    // cover all components, and once an idle NoRD network settles with
    // every router gated, every gated router must actually be off the
    // active list (its links drain and park alongside it).
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    sys.run(400);  // no traffic: all 16 routers gate off and settle
    ASSERT_EQ(sys.countInState(PowerState::kOff), cfg.numNodes());
    for (int i = 0; i < 50; ++i) {
        sys.run(1);
        EXPECT_EQ(sys.kernel().tickedLastCycle() +
                      sys.kernel().skippedLastCycle(),
                  sys.kernel().numComponents());
        int gatedSkipped = 0;
        for (NodeId id = 0; id < cfg.numNodes(); ++id) {
            ASSERT_EQ(sys.controller(id).state(), PowerState::kOff);
            if (!sys.kernel().isActive(&sys.router(id)))
                ++gatedSkipped;
        }
        EXPECT_EQ(gatedSkipped, cfg.numNodes());
        // The skipped set covers at least the gated routers.
        EXPECT_GE(sys.kernel().skippedLastCycle(),
                  static_cast<std::uint64_t>(cfg.numNodes()));
    }
    // Traffic through the parked fabric still delivers: the wake edges
    // re-register the skipped links/routers as the flit advances.
    const std::uint64_t delivered = sys.stats().packetsDelivered();
    sys.inject(0, 15, 4);
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), delivered + 1);
}

TEST(SyntheticTraffic, RateIsRespected)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 3);
    sys.setWorkload(&traffic);
    sys.run(50000);
    // flits injected ~= rate * nodes * cycles.
    const double expected = 0.10 * 16 * 50000;
    EXPECT_NEAR(static_cast<double>(sys.stats().flitsInjected()),
                expected, 0.08 * expected);
}

TEST(SyntheticTraffic, BimodalLengths)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 3);
    sys.setWorkload(&traffic);
    sys.run(30000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(10000));
    // Average packet length must be ~(1+5)/2 = 3 flits.
    const double avgLen =
        static_cast<double>(sys.stats().flitsDelivered()) /
        static_cast<double>(sys.stats().packetsDelivered());
    EXPECT_NEAR(avgLen, 3.0, 0.2);
}

TEST(SyntheticTraffic, BitComplementDestinations)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    // Bit-complement of (r, c) in 4x4: (3-r, 3-c): node 0 -> 15.
    SyntheticTraffic traffic(TrafficPattern::kBitComplement, 0.05, 3);
    sys.setWorkload(&traffic);
    sys.run(5000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(10000));
    // All delivered at complement nodes: hop count == manhattan + 1 of
    // the complement pairs; for 4x4 all pairs have distance >= 2.
    EXPECT_GT(sys.stats().avgHops(), 3.0);
    EXPECT_EQ(sys.ni(15).packetsReceived(),
              sys.stats().packetsDelivered() - [&] {
                  std::uint64_t other = 0;
                  for (NodeId n = 0; n < 15; ++n)
                      other += sys.ni(n).packetsReceived();
                  return other;
              }());
}

TEST(SyntheticTraffic, PatternNames)
{
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kUniformRandom),
                 "uniform_random");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kBitComplement),
                 "bit_complement");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kTranspose),
                 "transpose");
    EXPECT_STREQ(trafficPatternName(TrafficPattern::kHotspot), "hotspot");
}

TEST(NocConfigTest, ValidationCatchesBadSetups)
{
    NocConfig cfg;
    cfg.numEscapeVcs = 4;  // == numVcs: no adaptive class left
    EXPECT_EXIT({ cfg.validate(); }, ::testing::ExitedWithCode(1), "");

    NocConfig odd;
    odd.rows = 3;
    EXPECT_EXIT({ odd.validate(); }, ::testing::ExitedWithCode(1), "");

    NocConfig nordOneEscape;
    nordOneEscape.design = PgDesign::kNord;
    nordOneEscape.numVcs = 4;
    nordOneEscape.numEscapeVcs = 1;
    EXPECT_EXIT({ nordOneEscape.validate(); },
                ::testing::ExitedWithCode(1), "");
}

TEST(NocConfigTest, VcClassHelpers)
{
    NocConfig cfg;  // 4 VCs, 2 escape
    EXPECT_EQ(cfg.vcClassOf(0), VcClass::kEscape);
    EXPECT_EQ(cfg.vcClassOf(1), VcClass::kEscape);
    EXPECT_EQ(cfg.vcClassOf(2), VcClass::kAdaptive);
    EXPECT_EQ(cfg.vcClassOf(3), VcClass::kAdaptive);
    EXPECT_EQ(cfg.firstVcOf(VcClass::kEscape), 0);
    EXPECT_EQ(cfg.firstVcOf(VcClass::kAdaptive), 2);
    EXPECT_EQ(cfg.numVcsOf(VcClass::kEscape), 2);
    EXPECT_EQ(cfg.numVcsOf(VcClass::kAdaptive), 2);
}

TEST(TypesTest, DirectionHelpers)
{
    EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
    EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
    EXPECT_EQ(opposite(Direction::kLocal), Direction::kLocal);
    EXPECT_EQ(indexDir(dirIndex(Direction::kWest)), Direction::kWest);
    EXPECT_STREQ(pgDesignName(PgDesign::kNord), "NoRD");
    EXPECT_STREQ(powerStateName(PowerState::kWakingUp), "waking");
    EXPECT_TRUE(isHead(FlitType::kHeadTail));
    EXPECT_TRUE(isTail(FlitType::kHeadTail));
    EXPECT_FALSE(isHead(FlitType::kBody));
    EXPECT_FALSE(isTail(FlitType::kHead));
}

}  // namespace
}  // namespace nord

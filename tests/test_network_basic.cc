/**
 * @file
 * Integration tests: basic packet transport through the assembled network
 * under every design.
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"

namespace nord {
namespace {

NocConfig
configFor(PgDesign design)
{
    NocConfig cfg;
    cfg.design = design;
    return cfg;
}

class BasicTransportTest : public ::testing::TestWithParam<PgDesign>
{
};

TEST_P(BasicTransportTest, SinglePacketDelivered)
{
    NocSystem sys(configFor(GetParam()));
    sys.inject(0, 15, 5);
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
    EXPECT_EQ(sys.stats().flitsDelivered(), 5u);
    EXPECT_TRUE(sys.drained());
}

TEST_P(BasicTransportTest, AllPairsDelivered)
{
    NocSystem sys(configFor(GetParam()));
    int expected = 0;
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s != d) {
                sys.inject(s, d, 1);
                ++expected;
            }
        }
    }
    ASSERT_TRUE(sys.runToCompletion(50000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              static_cast<std::uint64_t>(expected));
}

TEST_P(BasicTransportTest, SelfPacketLoopsBack)
{
    NocSystem sys(configFor(GetParam()));
    sys.inject(3, 3, 5);
    ASSERT_TRUE(sys.runToCompletion(2000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
}

TEST_P(BasicTransportTest, LongPacketWormhole)
{
    // A packet longer than the 5-flit buffer must stream through.
    NocSystem sys(configFor(GetParam()));
    sys.inject(0, 15, 12);
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
    EXPECT_EQ(sys.stats().flitsDelivered(), 12u);
}

TEST_P(BasicTransportTest, ManySmallPacketsConserved)
{
    NocSystem sys(configFor(GetParam()));
    for (int round = 0; round < 30; ++round) {
        for (NodeId s = 0; s < 16; ++s)
            sys.inject(s, (s + 5 + round) % 16, 1 + (round % 2) * 4);
    }
    ASSERT_TRUE(sys.runToCompletion(200000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
    EXPECT_EQ(sys.stats().flitsInjected(), sys.stats().flitsDelivered());
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, BasicTransportTest,
    ::testing::Values(PgDesign::kNoPg, PgDesign::kConvPg,
                      PgDesign::kConvPgOpt, PgDesign::kNord),
    [](const ::testing::TestParamInfo<PgDesign> &info) {
        return pgDesignName(info.param);
    });

TEST(BasicTransport, ZeroLoadLatencyMatchesPipeline)
{
    // No_PG, one hop: NI packetization + 4-stage pipeline per router +
    // LT. Two routers are traversed (source and destination).
    NocSystem sys(configFor(PgDesign::kNoPg));
    sys.inject(5, 6, 1);
    ASSERT_TRUE(sys.runToCompletion(1000));
    // Latency = creation to tail ejection: roughly 2 routers x 5 cycles
    // + NI handoffs; allow slack but catch gross regressions.
    double lat = sys.stats().avgPacketLatency();
    EXPECT_GE(lat, 10.0);
    EXPECT_LE(lat, 18.0);
}

TEST(BasicTransport, HopsAreMinimalUnderNoPg)
{
    NocSystem sys(configFor(PgDesign::kNoPg));
    sys.inject(0, 15, 1);  // manhattan distance 6
    ASSERT_TRUE(sys.runToCompletion(1000));
    // Hops counts both the source and destination routers (+1).
    EXPECT_NEAR(sys.stats().avgHops(), 7.0, 0.01);
}

TEST(BasicTransport, EightByEightWorks)
{
    NocConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    for (NodeId s = 0; s < 64; s += 3)
        sys.inject(s, 63 - s, 5);
    ASSERT_TRUE(sys.runToCompletion(20000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
}

TEST(BasicTransport, RectangularMeshWorks)
{
    NocConfig cfg;
    cfg.rows = 4;
    cfg.cols = 6;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    for (NodeId s = 0; s < cfg.numNodes(); ++s)
        sys.inject(s, cfg.numNodes() - 1 - s, 1);
    ASSERT_TRUE(sys.runToCompletion(20000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
}

TEST(BasicTransport, PowerStateResidencyAccountsEveryCycle)
{
    NocSystem sys(configFor(PgDesign::kConvPg));
    sys.inject(0, 15, 5);
    sys.run(3000);
    const ActivityCounters t = sys.stats().totals();
    EXPECT_EQ(t.onCycles + t.offCycles + t.wakingCycles,
              16ull * 3000ull);
}

}  // namespace
}  // namespace nord

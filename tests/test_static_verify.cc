/**
 * @file
 * Tests for the offline protocol verifier (src/verify/static/): CDG
 * deadlock analysis, PG-handshake model checking and config lint,
 * including the seeded negative cases the passes must catch and the
 * replay of model counterexamples against the live simulator.
 */

#include <gtest/gtest.h>

#include "core/nord_controller.hh"
#include "network/noc_system.hh"
#include "verify/static/cdg.hh"
#include "verify/static/config_lint.hh"
#include "verify/static/config_registry.hh"
#include "verify/static/fsm_check.hh"

namespace nord {
namespace {

// --- CDG deadlock analysis -------------------------------------------------

TEST(StaticCdg, ShippedMatrixEscapeAcyclic)
{
    for (const NamedConfig &named : shippedConfigs()) {
        CdgAnalysis analysis(named.config);
        CdgResult result = analysis.run();
        EXPECT_TRUE(result.ok()) << named.name << ": " << result.summary();
        EXPECT_TRUE(result.cycle.empty()) << named.name;
        EXPECT_GT(result.numEscapeChannels, 0) << named.name;
        EXPECT_GT(result.statesExplored, 0u) << named.name;
    }
}

TEST(StaticCdg, NordWithoutSteeringAlsoAcyclic)
{
    // The pre-criticality routing mode (minimal + ring fallback) must be
    // deadlock-free too: the escape sub-network is the same ring.
    CdgOptions opts;
    opts.steering = false;
    CdgAnalysis analysis(makeShippedConfig(PgDesign::kNord, 4, 4), opts);
    EXPECT_TRUE(analysis.run().ok());
}

TEST(StaticCdg, SeededDatelinelessRingCycleCaught)
{
    // Forcing every escape hop to level 0 models a single-escape-VC ring
    // without the dateline: the level-0 ring closes on itself and the
    // analysis must report exactly that cycle.
    CdgOptions opts;
    opts.escapeLevelOverride = 0;
    CdgAnalysis analysis(makeShippedConfig(PgDesign::kNord, 4, 4), opts);
    CdgResult result = analysis.run();
    EXPECT_FALSE(result.escapeAcyclic);
    ASSERT_FALSE(result.cycle.empty());

    // The counterexample is the full 16-node Hamiltonian ring at level 0.
    ASSERT_EQ(result.cycle.channels.size(), 16u);
    const BypassRing &ring = analysis.ring();
    for (size_t i = 0; i < result.cycle.channels.size(); ++i) {
        const CdgChannel &ch = result.cycle.channels[i];
        EXPECT_EQ(ch.cls, VcClass::kEscape);
        EXPECT_EQ(ch.escLevel, 0);
        EXPECT_EQ(ch.dir, ring.bypassOutport(ch.from));
        const CdgChannel &next =
            result.cycle.channels[(i + 1) % result.cycle.channels.size()];
        EXPECT_EQ(ring.successor(ch.from), next.from);
    }

    // And it replays: every dependency edge re-derives from the live
    // RoutingPolicy.
    std::string why;
    EXPECT_TRUE(analysis.replayCycle(result.cycle, &why)) << why;
}

TEST(StaticCdg, TamperedCounterexampleFailsReplay)
{
    CdgOptions opts;
    opts.escapeLevelOverride = 0;
    CdgAnalysis analysis(makeShippedConfig(PgDesign::kNord, 4, 4), opts);
    CdgResult result = analysis.run();
    ASSERT_FALSE(result.cycle.empty());

    // A fabricated dependency (wrong direction out of the first channel)
    // must be rejected -- replay confirms cycles exist in the code, not
    // in the analyzer's imagination.
    CdgCounterexample tampered = result.cycle;
    tampered.channels[1].dir =
        opposite(tampered.channels[1].dir);
    std::string why;
    EXPECT_FALSE(analysis.replayCycle(tampered, &why));
    EXPECT_FALSE(why.empty());
}

TEST(StaticCdg, MisrouteCapBookkeepingConsistent)
{
    // The adaptive enumeration cross-checks route() against
    // routeAtBypass() at the cap boundary at every (here, dst) state; any
    // divergence in misroute-cap or forced-escape bookkeeping lands in
    // problems[].
    CdgAnalysis analysis(makeShippedConfig(PgDesign::kNord, 4, 4));
    CdgResult result = analysis.run();
    for (const std::string &p : result.problems)
        ADD_FAILURE() << p;
}

// --- PG-handshake model checker --------------------------------------------

TEST(StaticFsm, HealthyDesignsHoldAllProperties)
{
    for (PgDesign design : {PgDesign::kNord, PgDesign::kConvPg,
                            PgDesign::kConvPgOpt, PgDesign::kNoPg}) {
        FsmOptions opts;
        opts.design = design;
        FsmResult result = FsmCheck(opts).run();
        EXPECT_TRUE(result.ok())
            << pgDesignName(design) << ": " << result.summary();
        EXPECT_GT(result.statesReached, 0u);
        EXPECT_LT(result.statesReached, result.stateSpace);
    }
}

TEST(StaticFsm, DeafWakeupInputCaughtAsLostWakeup)
{
    FsmOptions opts;
    opts.design = PgDesign::kNord;
    opts.mutation = FsmMutation::kDeafWakeupInput;
    FsmCheck checker(opts);
    FsmResult result = checker.run();
    EXPECT_FALSE(result.noLostWakeup);
    // NoRD's bypass still drains the work itself.
    EXPECT_TRUE(result.deadlockFree);
    EXPECT_TRUE(result.noStWhileGated);

    // The trace must replay step by step through the model's own
    // transition function, ending in a state whose metric has fired
    // while the router is off.
    ASSERT_FALSE(result.counterexamples.empty());
    const FsmCounterexample &cx = result.counterexamples.front();
    EXPECT_EQ(cx.property, FsmProperty::kNoLostWakeup);
    ASSERT_FALSE(cx.trace.empty());
    FsmState s;
    s.power = static_cast<std::int8_t>(PowerState::kOn);
    s.suppressed = 1;  // the deaf input is dead from the start
    for (const FsmTraceStep &step : cx.trace) {
        ASSERT_TRUE(checker.apply(s, step.event))
            << fsmEventName(step.event) << " not enabled at ["
            << s.describe() << "]";
        EXPECT_TRUE(s == step.next)
            << "diverged after " << fsmEventName(step.event) << ": got ["
            << s.describe() << "], trace claims [" << step.next.describe()
            << "]";
    }
    EXPECT_EQ(s.power, static_cast<std::int8_t>(PowerState::kOff));
}

TEST(StaticFsm, DeafWakeupDeadlocksBaselines)
{
    // The baselines have no bypass: a permanently lost wakeup also means
    // the node's work can never drain.
    FsmOptions opts;
    opts.design = PgDesign::kConvPg;
    opts.mutation = FsmMutation::kDeafWakeupInput;
    FsmResult result = FsmCheck(opts).run();
    EXPECT_FALSE(result.noLostWakeup);
    EXPECT_FALSE(result.deadlockFree);
}

TEST(StaticFsm, WatchdogRescuesBaselinesButNotNord)
{
    // The wakeup watchdog observes the latched WU request, which
    // NordController never sets (it retries the metric every off-cycle
    // instead): so the watchdog closes the baselines' deaf-input hole
    // but cannot close NoRD's.
    FsmOptions conv;
    conv.design = PgDesign::kConvPg;
    conv.mutation = FsmMutation::kDeafWakeupInput;
    conv.watchdog = true;
    EXPECT_TRUE(FsmCheck(conv).run().ok());

    FsmOptions nord;
    nord.design = PgDesign::kNord;
    nord.mutation = FsmMutation::kDeafWakeupInput;
    nord.watchdog = true;
    EXPECT_FALSE(FsmCheck(nord).run().noLostWakeup);
}

TEST(StaticFsm, DropIcGuardCaughtAsFlitIntoGatedRouter)
{
    FsmOptions opts;
    opts.design = PgDesign::kNord;
    opts.mutation = FsmMutation::kDropIcGuard;
    FsmCheck checker(opts);
    FsmResult result = checker.run();
    EXPECT_FALSE(result.noStWhileGated);

    ASSERT_FALSE(result.counterexamples.empty());
    const FsmCounterexample &cx = result.counterexamples.front();
    EXPECT_EQ(cx.property, FsmProperty::kNoStWhileGated);
    FsmState s;
    s.power = static_cast<std::int8_t>(PowerState::kOn);
    for (const FsmTraceStep &step : cx.trace)
        ASSERT_TRUE(checker.apply(s, step.event));
    EXPECT_EQ(s.power, static_cast<std::int8_t>(PowerState::kOff));
    EXPECT_EQ(s.buffered, 1);
}

TEST(StaticFsm, NoDrainCheckCaught)
{
    FsmOptions opts;
    opts.design = PgDesign::kNord;
    opts.mutation = FsmMutation::kNoDrainCheck;
    EXPECT_FALSE(FsmCheck(opts).run().noStWhileGated);
}

TEST(StaticFsm, GatedWithFlitIsUnreachableInHealthyModel)
{
    // P4 in action: the "flit inside a gated router" states must be in
    // the unreachable set of the healthy model -- their reachability is
    // exactly what the mutations above introduce.
    FsmOptions opts;
    opts.design = PgDesign::kNord;
    FsmResult result = FsmCheck(opts).run();
    EXPECT_TRUE(result.ok());
    EXPECT_GT(result.unreachableStates, 0u);
}

TEST(StaticFsm, LostWakeupCounterexampleReplaysOnLiveSimulator)
{
    // Replay the deaf-wakeup-input trace against the real thing: gate a
    // router off, make its wakeup command input permanently deaf
    // (injectWakeupSuppression), drive sustained local traffic so the
    // wakeup metric fires, and confirm the router never wakes -- then
    // heal the input and confirm the identical traffic wakes it, proving
    // the suppression (not the traffic pattern) lost the wakeup.
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfCentricCount = 0;  // uniform power-centric thresholds
    cfg.nordPowerThreshold = 2;
    NocSystem sys(cfg);
    sys.run(200);
    const NodeId victim = 0;
    ASSERT_EQ(sys.controller(victim).state(), PowerState::kOff);
    auto *ctrl = dynamic_cast<NordController *>(&sys.controller(victim));
    ASSERT_NE(ctrl, nullptr);

    sys.controller(victim).injectWakeupSuppression(kNeverCycle);
    bool metricFired = false;
    for (int i = 0; i < 60; ++i) {
        sys.inject(victim, 10, 5);
        sys.run(1);
        metricFired =
            metricFired || ctrl->windowSum() >= ctrl->wakeupThreshold();
        ASSERT_EQ(sys.controller(victim).state(), PowerState::kOff)
            << "suppressed router woke at step " << i;
    }
    EXPECT_TRUE(metricFired)
        << "traffic never fired the wakeup metric; the stay-off "
           "observation proves nothing";

    sys.controller(victim).injectWakeupSuppression(0);
    for (int i = 0;
         i < 60 && sys.controller(victim).state() == PowerState::kOff;
         ++i) {
        sys.inject(victim, 10, 5);
        sys.run(1);
    }
    EXPECT_NE(sys.controller(victim).state(), PowerState::kOff);
    sys.run(5000);  // drain the backlog before teardown
}

// --- Config lint -----------------------------------------------------------

TEST(StaticLint, ShippedConfigsClean)
{
    for (const NamedConfig &named : shippedConfigs()) {
        LintResult result = lintConfig(named.config);
        EXPECT_TRUE(result.ok()) << named.name << ": " << result.summary();
    }
}

TEST(StaticLint, FlagsEmptyEscapeClass)
{
    NocConfig cfg = makeShippedConfig(PgDesign::kConvPg, 4, 4);
    cfg.numEscapeVcs = 0;
    EXPECT_FALSE(lintConfig(cfg).ok());
}

TEST(StaticLint, FlagsSingleEscapeVcForNord)
{
    NocConfig cfg = makeShippedConfig(PgDesign::kNord, 4, 4);
    cfg.numEscapeVcs = 1;
    LintResult result = lintConfig(cfg);
    ASSERT_FALSE(result.ok());
    // The diagnosis must point at the dateline scheme, matching what the
    // CDG pass demonstrates with escapeLevelOverride = 0.
    bool mentionsDateline = false;
    for (const std::string &p : result.problems)
        mentionsDateline = mentionsDateline ||
                           p.find("dateline") != std::string::npos;
    EXPECT_TRUE(mentionsDateline) << result.summary();
}

TEST(StaticLint, FlagsOddRowsAndTinyMesh)
{
    NocConfig odd = makeShippedConfig(PgDesign::kNord, 3, 4);
    EXPECT_FALSE(lintConfig(odd).ok());
    NocConfig tiny = makeShippedConfig(PgDesign::kNord, 1, 1);
    EXPECT_FALSE(lintConfig(tiny).ok());
}

TEST(StaticLint, FlagsInvertedThresholds)
{
    NocConfig cfg = makeShippedConfig(PgDesign::kNord, 4, 4);
    cfg.nordPerfThreshold = 5;
    cfg.nordPowerThreshold = 1;
    EXPECT_FALSE(lintConfig(cfg).ok());
}

TEST(StaticLint, CanonicalRingsCleanAcrossShapes)
{
    for (auto [rows, cols] : {std::pair{2, 2}, {2, 5}, {4, 3}, {4, 6},
                              {6, 4}, {8, 8}}) {
        MeshTopology mesh(rows, cols);
        BypassRing ring(mesh);
        LintResult result = lintRingOrder(mesh, ring.order());
        EXPECT_TRUE(result.ok())
            << rows << "x" << cols << ": " << result.summary();
    }
}

TEST(StaticLint, FlagsNonHamiltonianRingOrders)
{
    MeshTopology mesh(4, 4);

    // Not a permutation: node 0 twice, node 15 missing.
    std::vector<NodeId> repeated = BypassRing(mesh).order();
    for (NodeId &n : repeated) {
        if (n == 15)
            n = 0;
    }
    EXPECT_FALSE(lintRingOrder(mesh, repeated).ok());

    // Permutation, but a hop teleports across the mesh.
    std::vector<NodeId> teleport = BypassRing(mesh).order();
    std::swap(teleport[3], teleport[10]);
    EXPECT_FALSE(lintRingOrder(mesh, teleport).ok());

    // Wrong length entirely.
    EXPECT_FALSE(lintRingOrder(mesh, {0, 1, 2}).ok());
}

}  // namespace
}  // namespace nord

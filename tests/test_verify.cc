/**
 * @file
 * InvariantAuditor tests: injected faults must be detected with a usable
 * diagnosis, and a clean simulation swept every cycle must stay silent.
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

using Kind = InvariantAuditor::Kind;

NocConfig
auditedConfig(PgDesign design)
{
    NocConfig cfg;
    cfg.design = design;
    cfg.verify.interval = 1;
    cfg.verify.policy = AuditPolicy::kDiagnose;  // accumulate, assert in the test
    return cfg;
}

TEST(InvariantAuditorTest, DisabledByDefault)
{
    NocSystem sys(NocConfig{});
    EXPECT_FALSE(sys.auditor().enabled());
    sys.inject(0, 15, 5);
    ASSERT_TRUE(sys.runToCompletion(5000));
    // Disabled auditor never sweeps on its own.
    EXPECT_EQ(sys.auditor().sweepCount(), 0u);
}

TEST(InvariantAuditorTest, ManualSweepOfIdleNetworkIsClean)
{
    NocSystem sys(NocConfig{});
    EXPECT_EQ(sys.auditor().sweep(sys.now()), 0u);
    EXPECT_TRUE(sys.auditor().violations().empty());
}

TEST(InvariantAuditorTest, DetectsLeakedCredit)
{
    NocSystem sys(NocConfig{});
    // Lose one credit of an interior east link, as a dropped credit
    // message would.
    sys.router(5).injectCreditLeak(Direction::kEast, 0);
    EXPECT_GT(sys.auditor().sweep(sys.now()), 0u);
    ASSERT_TRUE(sys.auditor().hasViolation(Kind::kCreditConservation));
    for (const auto &v : sys.auditor().violations()) {
        EXPECT_FALSE(v.diagnosis.empty());
        if (v.kind == Kind::kCreditConservation) {
            EXPECT_EQ(v.node, 5);
        }
    }
}

TEST(InvariantAuditorTest, DetectsDroppedFlit)
{
    NocSystem sys(NocConfig{});
    sys.inject(0, 15, 5);

    // Advance until some flit is on the wire, then make a link lose it.
    bool dropped = false;
    for (int cycle = 0; cycle < 200 && !dropped; ++cycle) {
        sys.run(1);
        for (NodeId id = 0; id < 16 && !dropped; ++id) {
            for (int d = 0; d < kNumMeshDirs && !dropped; ++d) {
                const FlitLink *link =
                    sys.router(id).outputLink(indexDir(d));
                if (link && !link->empty()) {
                    dropped =
                        const_cast<FlitLink *>(link)->injectFlitDrop();
                }
            }
        }
    }
    ASSERT_TRUE(dropped) << "no flit ever appeared on a link";

    EXPECT_GT(sys.auditor().sweep(sys.now()), 0u);
    ASSERT_TRUE(sys.auditor().hasViolation(Kind::kFlitConservation));
    for (const auto &v : sys.auditor().violations())
        EXPECT_FALSE(v.diagnosis.empty());
}

TEST(InvariantAuditorTest, DetectsGatingOfNonEmptyRouter)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;  // keep routers on until we force one off
    NocSystem sys(cfg);
    sys.inject(0, 15, 5);
    sys.inject(12, 3, 5);

    NodeId victim = kInvalidNode;
    for (int cycle = 0; cycle < 200 && victim == kInvalidNode; ++cycle) {
        sys.run(1);
        for (NodeId id = 0; id < 16; ++id) {
            if (sys.router(id).bufferedFlits() > 0) {
                victim = id;
                break;
            }
        }
    }
    ASSERT_NE(victim, kInvalidNode) << "no router ever buffered a flit";

    // A buggy sleep policy gates the router without draining it.
    sys.controller(victim).injectForcedOff(sys.now());
    EXPECT_GT(sys.auditor().sweep(sys.now()), 0u);
    ASSERT_TRUE(sys.auditor().hasViolation(Kind::kPgSafety));
    bool victimReported = false;
    for (const auto &v : sys.auditor().violations()) {
        EXPECT_FALSE(v.diagnosis.empty());
        if (v.kind == Kind::kPgSafety && v.node == victim)
            victimReported = true;
    }
    EXPECT_TRUE(victimReported);
}

TEST(InvariantAuditorTest, CleanNordRunAtLoadHasNoViolations)
{
    NocConfig cfg = auditedConfig(PgDesign::kNord);
    cfg.rows = 8;
    cfg.cols = 8;
    NocSystem sys(cfg);
    ASSERT_TRUE(sys.auditor().enabled());

    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&traffic);
    sys.run(3000);
    sys.setWorkload(nullptr);  // open-loop source: stop injecting and drain
    ASSERT_TRUE(sys.runToCompletion(20000));

    EXPECT_GT(sys.stats().packetsDelivered(), 100u);
    EXPECT_GT(sys.auditor().sweepCount(), 3000u);
    for (const auto &v : sys.auditor().violations()) {
        ADD_FAILURE() << InvariantAuditor::kindName(v.kind) << ": "
                      << v.diagnosis;
    }
    sys.checkInvariants();
}

class AuditedDesignTest : public ::testing::TestWithParam<PgDesign>
{
};

TEST_P(AuditedDesignTest, PerCycleSweepsStaySilent)
{
    NocConfig cfg = auditedConfig(GetParam());
    NocSystem sys(cfg);

    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 11);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);  // open-loop source: stop injecting and drain
    ASSERT_TRUE(sys.runToCompletion(20000));

    EXPECT_GT(sys.stats().packetsDelivered(), 50u);
    for (const auto &v : sys.auditor().violations()) {
        ADD_FAILURE() << InvariantAuditor::kindName(v.kind) << ": "
                      << v.diagnosis;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, AuditedDesignTest,
                         ::testing::Values(PgDesign::kNoPg,
                                           PgDesign::kConvPg,
                                           PgDesign::kConvPgOpt,
                                           PgDesign::kNord),
                         [](const auto &info) {
                             return pgDesignName(info.param);
                         });

}  // namespace
}  // namespace nord

/**
 * @file
 * nord-statecheck tests: the declaration parser, the rule layer, the
 * planted-violation fixture trees, and -- most importantly -- the
 * annotation-truthing half that keeps the static model honest against
 * the live simulator.
 *
 * The static analyzer claims two things about every data member: included
 * members are restore-faithful (a restored system re-serializes to the
 * identical byte stream) and NORD_STATE_EXCLUDE members are hash-neutral
 * (they can differ between two systems without splitting stateHash()).
 * The truthing tests prove both claims differentially on real NocSystems,
 * and a registry cross-checked against the parsed model in both
 * directions makes it impossible to add an annotation without naming the
 * runtime experiment that justifies it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/state_serializer.hh"
#include "network/noc_system.hh"
#include "topology/criticality.hh"
#include "traffic/synthetic_traffic.hh"
#include "verify/statecheck/state_check.hh"
#include "verify/statecheck/state_model.hh"

namespace nord {
namespace statecheck {
namespace {

// ---------------------------------------------------------------------
// Parser helpers.
// ---------------------------------------------------------------------

TreeModel
headerModel(const std::string &content,
            const std::string &path = "src/foo/foo.hh")
{
    TreeModel m;
    parseHeader(path, content, m);
    return m;
}

const ClassModel *
findClass(const TreeModel &m, const std::string &qualified)
{
    for (const ClassModel &c : m.classes)
        if (c.qualified == qualified)
            return &c;
    return nullptr;
}

const MemberModel *
findMember(const ClassModel &c, const std::string &name)
{
    for (const MemberModel &mm : c.members)
        if (mm.name == name)
            return &mm;
    return nullptr;
}

// ---------------------------------------------------------------------
// Declaration parsing.
// ---------------------------------------------------------------------

TEST(StateModel, MemberQualifiersExtracted)
{
    const char *hh = R"cc(
class Widget : public Clocked
{
  public:
    void serializeState(StateSerializer &s) override;

  private:
    int plain_ = 0;
    static int shared_;
    static constexpr int kCap = 8;
    const double ratio_ = 0.5;
    Router &owner_;
    Flit *head_ = nullptr;
    std::vector<int> items_;
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *c = findClass(m, "Widget");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->clocked);
    EXPECT_TRUE(c->declaresSerialize);

    const MemberModel *plain = findMember(*c, "plain_");
    ASSERT_NE(plain, nullptr);
    EXPECT_FALSE(plain->isStatic);
    EXPECT_FALSE(plain->isConst);
    EXPECT_FALSE(plain->isPointer);
    EXPECT_FALSE(plain->isReference);

    ASSERT_NE(findMember(*c, "shared_"), nullptr);
    EXPECT_TRUE(findMember(*c, "shared_")->isStatic);
    ASSERT_NE(findMember(*c, "kCap"), nullptr);
    EXPECT_TRUE(findMember(*c, "kCap")->isConst);
    ASSERT_NE(findMember(*c, "ratio_"), nullptr);
    EXPECT_TRUE(findMember(*c, "ratio_")->isConst);
    ASSERT_NE(findMember(*c, "owner_"), nullptr);
    EXPECT_TRUE(findMember(*c, "owner_")->isReference);
    ASSERT_NE(findMember(*c, "head_"), nullptr);
    EXPECT_TRUE(findMember(*c, "head_")->isPointer);
    ASSERT_NE(findMember(*c, "items_"), nullptr);
}

TEST(StateModel, MembersAfterAccessLabelsAreSeen)
{
    // Regression: the statement scanner splits at ';', so "private:\n
    // int x_;" is one statement whose first token is the access label.
    // The label must be skipped, not the member swallowed with it.
    const char *hh = R"cc(
class Widget
{
  public:
    void serializeState(StateSerializer &s);
  private:
    int first_ = 0;
  protected:
    int second_ = 0;
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *c = findClass(m, "Widget");
    ASSERT_NE(c, nullptr);
    EXPECT_NE(findMember(*c, "first_"), nullptr);
    EXPECT_NE(findMember(*c, "second_"), nullptr);
}

TEST(StateModel, AnnotationBindsToNextMember)
{
    const char *hh = R"cc(
class Widget
{
    void serializeState(StateSerializer &s);

    NORD_STATE_EXCLUDE(cache, "rebuilt on demand")
    int memo_ = 0;
    int live_ = 0;
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *c = findClass(m, "Widget");
    ASSERT_NE(c, nullptr);
    const MemberModel *memo = findMember(*c, "memo_");
    ASSERT_NE(memo, nullptr);
    EXPECT_TRUE(memo->excluded);
    EXPECT_EQ(memo->category, "cache");
    EXPECT_EQ(memo->reason, "rebuilt on demand");
    const MemberModel *live = findMember(*c, "live_");
    ASSERT_NE(live, nullptr);
    EXPECT_FALSE(live->excluded);
    EXPECT_TRUE(c->danglingExcludeLines.empty());
}

TEST(StateModel, TrailingAnnotationIsDangling)
{
    const char *hh = R"cc(
class Widget
{
    int live_ = 0;
    NORD_STATE_EXCLUDE(cache, "binds to nothing")
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *c = findClass(m, "Widget");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->danglingExcludeLines.size(), 1u);
    const MemberModel *live = findMember(*c, "live_");
    ASSERT_NE(live, nullptr);
    EXPECT_FALSE(live->excluded);
}

TEST(StateModel, NestedStructUsedAsMemberStorage)
{
    const char *hh = R"cc(
class Router : public Clocked
{
  public:
    void serializeState(StateSerializer &s) override;

  private:
    struct VirtualChannel
    {
        std::deque<Flit> buffer;
        int credits = 0;
    };
    struct Unused
    {
        int orphan = 0;
    };
    std::vector<VirtualChannel> vcs_;
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *vc = findClass(m, "Router::VirtualChannel");
    ASSERT_NE(vc, nullptr);
    EXPECT_TRUE(vc->nested);
    EXPECT_TRUE(vc->usedAsMemberType);
    EXPECT_EQ(vc->outer, "Router");
    EXPECT_NE(findMember(*vc, "buffer"), nullptr);
    EXPECT_NE(findMember(*vc, "credits"), nullptr);

    const ClassModel *unused = findClass(m, "Router::Unused");
    ASSERT_NE(unused, nullptr);
    EXPECT_FALSE(unused->usedAsMemberType);
}

TEST(StateModel, EnumClassAndForwardDeclsIgnored)
{
    const char *hh = R"cc(
enum class PgDesign { kNoPg, kNord };
class Router;
struct Flit;
class Real
{
    int x_ = 0;
};
)cc";
    const TreeModel m = headerModel(hh);
    EXPECT_EQ(m.classes.size(), 1u);
    EXPECT_EQ(m.classes[0].name, "Real");
}

TEST(StateModel, MethodsNotMistakenForMembers)
{
    const char *hh = R"cc(
class Widget
{
  public:
    int count() const { return n_; }
    void reset();
    Widget &operator=(const Widget &) = delete;

  private:
    int n_ = 0;
};
)cc";
    const TreeModel m = headerModel(hh);
    const ClassModel *c = findClass(m, "Widget");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->members.size(), 1u);
    EXPECT_EQ(c->members[0].name, "n_");
}

TEST(StateModel, InlineAndOutOfLineBodiesCaptured)
{
    TreeModel m;
    parseHeader("src/foo/foo.hh", R"cc(
class Widget
{
  public:
    void bump() { n_ += 1; }
    void tick(Cycle now);

  private:
    int n_ = 0;
};
)cc",
                m);
    parseMethodBodies("src/foo/foo.cc", R"cc(
#include "foo/foo.hh"

void
Widget::tick(Cycle now)
{
    n_ -= 1;
}
)cc",
                      m);
    std::set<std::string> names;
    for (const MethodBody &mb : m.methods)
        if (mb.cls == "Widget")
            names.insert(mb.name);
    EXPECT_TRUE(names.count("bump"));
    EXPECT_TRUE(names.count("tick"));
}

TEST(StateModel, ExternalSerializerWalkNamedIoHashT)
{
    TreeModel m;
    parseMethodBodies("src/ckpt/state_serializer.cc", R"cc(
void
StateSerializer::io(Flit &f)
{
    io(f.id);
    io(f.kind);
}
)cc",
                      m);
    ASSERT_EQ(m.methods.size(), 1u);
    EXPECT_EQ(m.methods[0].cls, "StateSerializer");
    EXPECT_EQ(m.methods[0].name, "io#Flit");
}

// ---------------------------------------------------------------------
// mutatesMember / containsWord.
// ---------------------------------------------------------------------

TEST(StateModel, ContainsWordRespectsBoundaries)
{
    EXPECT_TRUE(containsWord("s.io(head_);", "head_"));
    EXPECT_FALSE(containsWord("s.io(ahead_);", "head_"));
    EXPECT_FALSE(containsWord("s.io(head_x);", "head_"));
    EXPECT_TRUE(containsWord("head_ = 0;", "head_"));
    EXPECT_FALSE(containsWord("", "head_"));
}

TEST(StateModel, MutatesMemberTruthTable)
{
    EXPECT_TRUE(mutatesMember("n_ = 3;", "n_"));
    EXPECT_TRUE(mutatesMember("n_ += rhs;", "n_"));
    EXPECT_TRUE(mutatesMember("++n_;", "n_"));
    EXPECT_TRUE(mutatesMember("n_--;", "n_"));
    EXPECT_TRUE(mutatesMember("buf_[i] = f;", "buf_"));
    EXPECT_TRUE(mutatesMember("q_.push_back(f);", "q_"));
    EXPECT_TRUE(mutatesMember("q_.clear();", "q_"));

    // Reads and comparisons are not mutations.
    EXPECT_FALSE(mutatesMember("if (n_ == 3) return;", "n_"));
    EXPECT_FALSE(mutatesMember("int x = n_ + 1;", "n_"));
    EXPECT_FALSE(mutatesMember("use(q_.size());", "q_"));

    // A call through a pointer member mutates the *pointee*, not the
    // pointer: peer_->push(f) must not count as mutating peer_.
    EXPECT_FALSE(mutatesMember("peer_->push(f);", "peer_"));
    EXPECT_FALSE(mutatesMember("peer_->clear();", "peer_"));

    // Substring lookalikes don't count.
    EXPECT_FALSE(mutatesMember("total_n_ = 3;", "n_"));
}

// ---------------------------------------------------------------------
// Walk closures.
// ---------------------------------------------------------------------

TEST(StateCheck, MethodClosureFollowsHelperCalls)
{
    TreeModel m;
    parseHeader("src/foo/foo.hh", R"cc(
class Widget
{
  public:
    void serializeState(StateSerializer &s);

  private:
    void ioQueues(StateSerializer &s);
    int head_ = 0;
    int tail_ = 0;
    int orphan_ = 0;
};
)cc",
                m);
    parseMethodBodies("src/foo/foo.cc", R"cc(
void
Widget::serializeState(StateSerializer &s)
{
    s.io(head_);
    ioQueues(s);
}

void
Widget::ioQueues(StateSerializer &s)
{
    s.io(tail_);
}

void
Widget::unrelated()
{
    orphan_ = 1;
}
)cc",
                      m);
    const std::string walk = methodClosure(m, "Widget", {"serializeState"});
    EXPECT_TRUE(containsWord(walk, "head_"));
    EXPECT_TRUE(containsWord(walk, "tail_")) << "helper bodies join the walk";
    EXPECT_FALSE(containsWord(walk, "orphan_"));
}

TEST(StateCheck, ExpandWalkCreditsAccessorSerialization)
{
    // The Rng shape: an external StateSerializer::io(Rng&) walk reaches
    // the private state only through accessors, so the member's name is
    // absent from the walk until the accessor bodies are folded in.
    TreeModel m;
    parseHeader("src/common/rng.hh", R"cc(
class Rng
{
  public:
    std::uint64_t rawState() const { return s_; }
    void setRawState(std::uint64_t v) { s_ = v; }

  private:
    std::uint64_t s_ = 0x9e3779b97f4a7c15ull;
};
)cc",
                m);
    const std::string external = "auto v = r.rawState(); r.setRawState(v);";
    EXPECT_FALSE(containsWord(external, "s_"));
    const std::string walk = expandWalk(m, "Rng", external);
    EXPECT_TRUE(containsWord(walk, "s_"));
}

// ---------------------------------------------------------------------
// Planted-violation fixture trees.
//
// Each fixture under tests/fixtures/statecheck/<rule>/src/ plants exactly
// the violations one rule exists to catch; `clean` plants none. Running
// the real rule layer over them proves each rule both fires and stays
// quiet -- the same trees back the nord-statecheck CLI's self-test.
// ---------------------------------------------------------------------

#ifdef NORD_SOURCE_ROOT

std::vector<CheckFinding>
checkFixture(const std::string &name)
{
    const std::string root = std::string(NORD_SOURCE_ROOT) +
                             "/tests/fixtures/statecheck/" + name;
    std::string err;
    const TreeModel m = buildTreeModel(root, &err);
    EXPECT_TRUE(err.empty()) << name << ": " << err;
    return checkTree(m);
}

std::multiset<std::string>
ruleBag(const std::vector<CheckFinding> &fs)
{
    std::multiset<std::string> bag;
    for (const CheckFinding &f : fs)
        bag.insert(f.rule);
    return bag;
}

TEST(StateCheckFixtures, EachPlantedViolationFiresItsRule)
{
    const struct
    {
        const char *dir;
        std::multiset<std::string> expected;
    } kCases[] = {
        {"unserialized", {kRuleUnserializedMember}},
        {"exclude-live", {kRuleExcludeButSerialized}},
        {"bad-category",
         {kRuleBadExcludeCategory, kRuleBadExcludeCategory,
          kRuleBadExcludeCategory, kRuleBadExcludeCategory}},
        {"dangling", {kRuleDanglingExclude}},
        {"missing-body", {kRuleMissingSerializeBody}},
        {"ownership-escape",
         {kRuleUndeclaredTickMutation, kRuleUndeclaredChannelUse}},
    };
    for (const auto &tc : kCases) {
        const std::vector<CheckFinding> fs = checkFixture(tc.dir);
        EXPECT_EQ(ruleBag(fs), tc.expected) << "fixture " << tc.dir;
        for (const CheckFinding &f : fs) {
            EXPECT_FALSE(f.file.empty());
            EXPECT_GT(f.line, 0) << tc.dir << ": " << f.message;
            EXPECT_EQ(f.severity, "error");
            EXPECT_FALSE(f.message.empty());
        }
    }
}

TEST(StateCheckFixtures, CleanFixtureIsClean)
{
    for (const CheckFinding &f : checkFixture("clean"))
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message;
}

// ---------------------------------------------------------------------
// The real tree.
// ---------------------------------------------------------------------

TreeModel
realTreeModel()
{
    std::string err;
    TreeModel m = buildTreeModel(NORD_SOURCE_ROOT, &err);
    EXPECT_TRUE(err.empty()) << err;
    return m;
}

TEST(StateCheckRealTree, IsClean)
{
    for (const CheckFinding &f : checkTree(realTreeModel()))
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                      << f.message;
}

TEST(StateCheckRealTree, ModelCoversTheCoreComponents)
{
    // Guard against the parser silently losing classes: the components
    // whose members the whole analysis exists to police must be present,
    // modeled as Clocked and serializable.
    const TreeModel m = realTreeModel();
    for (const char *name : {"Router", "NetworkInterface", "PgController",
                             "FaultInjector"}) {
        const ClassModel *c = findClass(m, name);
        ASSERT_NE(c, nullptr) << name;
        EXPECT_TRUE(c->clocked) << name;
        EXPECT_TRUE(c->declaresSerialize) << name;
        EXPECT_FALSE(c->members.empty()) << name;
    }
    // NordController is Clocked only transitively (via PgController);
    // the parser records the direct base, the rule layer still scopes
    // it in through declaresSerialize.
    const ClassModel *nordCtl = findClass(m, "NordController");
    ASSERT_NE(nordCtl, nullptr);
    EXPECT_FALSE(nordCtl->clocked);
    EXPECT_TRUE(nordCtl->declaresSerialize);
    const ClassModel *vc = findClass(m, "Router::VirtualChannel");
    ASSERT_NE(vc, nullptr);
    EXPECT_TRUE(vc->usedAsMemberType);
}

// ---------------------------------------------------------------------
// Annotation truthing: the static claims, proven on live systems.
// ---------------------------------------------------------------------

NocConfig
truthConfig(PgDesign design)
{
    NocConfig cfg;
    cfg.design = design;
    return cfg;
}

/**
 * Restore-faithfulness: serializeState covers enough state that a
 * restored system re-serializes to the byte-identical stream. If an
 * *included* member failed to restore (serialized in kSave but not
 * reloaded, or reloaded into the wrong field), the second stream would
 * differ. Run for every power-gating design so design-specific state
 * (bypass ring, handshake timers) is covered too.
 */
TEST(StateTruthing, IncludedMembersSurviveRestore)
{
    for (int d = 0; d < 4; ++d) {
        const NocConfig cfg = truthConfig(static_cast<PgDesign>(d));
        NocSystem sys1(cfg);
        SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.08, 7);
        sys1.setWorkload(&t1);
        sys1.run(500);

        StateSerializer save1(SerialMode::kSave);
        sys1.saveState(save1);
        ASSERT_TRUE(save1.ok()) << save1.error();
        const std::vector<std::uint8_t> bytes1 = save1.takeBuffer();

        NocSystem sys2(cfg);
        SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.08, 7);
        sys2.setWorkload(&t2);
        StateSerializer load(bytes1);
        sys2.loadState(load);
        ASSERT_TRUE(load.ok()) << load.error();
        ASSERT_TRUE(load.exhausted());

        StateSerializer save2(SerialMode::kSave);
        sys2.saveState(save2);
        ASSERT_TRUE(save2.ok()) << save2.error();
        EXPECT_EQ(bytes1, save2.buffer())
            << "design " << pgDesignName(cfg.design)
            << ": restored system re-serializes differently";
        EXPECT_EQ(sys1.stateHash(), sys2.stateHash());
    }
}

/**
 * How each excluded member's hash-neutrality is proven. One experiment
 * covers a family of members; the registry below names the experiment
 * for every annotation in the tree.
 */
enum class Proof
{
    /**
     * Two independently constructed systems, identical config and
     * workload, marched in lockstep: every pointer member (component
     * wiring, kernel back-pointers, link endpoints) holds different
     * addresses in the two instances, and construction-determined
     * values are reproduced from NocConfig alone -- yet the hashes
     * match cycle for cycle.
     */
    kTwinConstruction,
    /**
     * Save a warmed system, load into a fresh one: scratch buffers,
     * arena slab bookkeeping and derived flags hold evolved values on
     * one side and just-constructed values on the other, yet the
     * hashes match (and stay matched while running on).
     */
    kFreshRestore,
    /**
     * One kernel with idle skipping on, one with it off: the active
     * list, cursor and tick/skip counters diverge wildly, yet the
     * hashes match every cycle.
     */
    kSkipToggle,
    /** CriticalityCache::clear() between two hashes of one system. */
    kCacheClear,
};

/**
 * Every NORD_STATE_EXCLUDE in the tree, keyed "Class::member" (nested
 * classes keep their full qualification), mapped to the experiment that
 * proves it hash-neutral. ExclusionRegistryMatchesParsedModel checks
 * this list against the parsed model in BOTH directions: annotating a
 * new member without naming its proof here fails, as does a stale entry
 * for a member that no longer carries the annotation.
 */
const std::map<std::string, Proof> &
exclusionRegistry()
{
    static const std::map<std::string, Proof> reg = {
        {"Clocked::kernel_", Proof::kTwinConstruction},
        {"Clocked::kernelSlot_", Proof::kTwinConstruction},
        {"CreditLink::dst_", Proof::kTwinConstruction},
        {"CreditLink::outPort_", Proof::kTwinConstruction},
        {"CriticalityCache::knee_", Proof::kCacheClear},
        {"CriticalityCache::mu_", Proof::kTwinConstruction},
        {"CriticalityCache::perfSet_", Proof::kCacheClear},
        {"CriticalityCache::steering_", Proof::kCacheClear},
        {"E2eEndpoint::id_", Proof::kTwinConstruction},
        {"FaultInjector::auditor_", Proof::kTwinConstruction},
        {"FaultInjector::schedule_", Proof::kTwinConstruction},
        {"FlitLink::dst_", Proof::kTwinConstruction},
        {"FlitLink::inPort_", Proof::kTwinConstruction},
        {"InvariantAuditor::config_", Proof::kTwinConstruction},
        {"InvariantAuditor::mutableSys_", Proof::kTwinConstruction},
        {"NetworkInterface::ackBuf_", Proof::kFreshRestore},
        {"NetworkInterface::deliverBuf_", Proof::kFreshRestore},
        {"NetworkInterface::onDelivery_", Proof::kTwinConstruction},
        {"NetworkInterface::resendBuf_", Proof::kFreshRestore},
        {"NetworkInterface::router_", Proof::kTwinConstruction},
        {"NetworkStats::warmup_", Proof::kTwinConstruction},
        {"NocSystem::accessTracker_", Proof::kTwinConstruction},
        {"NocSystem::arena_", Proof::kFreshRestore},
        {"NocSystem::config_", Proof::kTwinConstruction},
        {"NocSystem::mesh_", Proof::kTwinConstruction},
        {"NocSystem::perfCentric_", Proof::kTwinConstruction},
        {"NocSystem::policy_", Proof::kTwinConstruction},
        {"NocSystem::ring_", Proof::kTwinConstruction},
        {"NocSystem::ticker_", Proof::kTwinConstruction},
        {"NordController::sleepGuard_", Proof::kTwinConstruction},
        {"NordController::threshold_", Proof::kTwinConstruction},
        {"ParsecWorkload::numNodes_", Proof::kTwinConstruction},
        {"ParsecWorkload::params_", Proof::kTwinConstruction},
        {"PgController::listener_", Proof::kTwinConstruction},
        {"PoolArena::freeLists_", Proof::kFreshRestore},
        {"PoolArena::nextSlabBytes_", Proof::kFreshRestore},
        {"PoolArena::slabCap_", Proof::kFreshRestore},
        {"PoolArena::slabNext_", Proof::kFreshRestore},
        {"PoolArena::slabs_", Proof::kFreshRestore},
        {"PoolArena::stats_", Proof::kFreshRestore},
        {"Router::InputPort::creditReturn", Proof::kTwinConstruction},
        {"Router::InputPort::inLink", Proof::kTwinConstruction},
        {"Router::OutputPort::link", Proof::kTwinConstruction},
        {"Router::OutputPort::neighbor", Proof::kTwinConstruction},
        {"Router::controller_", Proof::kTwinConstruction},
        {"Router::emptyAfterTick_", Proof::kFreshRestore},
        {"Router::ni_", Proof::kTwinConstruction},
        {"SimKernel::activeIdx_", Proof::kSkipToggle},
        {"SimKernel::active_", Proof::kSkipToggle},
        {"SimKernel::cursor_", Proof::kSkipToggle},
        {"SimKernel::inTick_", Proof::kSkipToggle},
        {"SimKernel::objects_", Proof::kTwinConstruction},
        {"SimKernel::skipEnabled_", Proof::kSkipToggle},
        {"SimKernel::skippedLast_", Proof::kSkipToggle},
        {"SimKernel::skippedTotal_", Proof::kSkipToggle},
        {"SimKernel::tickedLast_", Proof::kSkipToggle},
        {"SimKernel::tickedTotal_", Proof::kSkipToggle},
        {"SimKernel::tracker_", Proof::kTwinConstruction},
        {"SyntheticTraffic::longFraction_", Proof::kTwinConstruction},
        {"SyntheticTraffic::longLen_", Proof::kTwinConstruction},
        {"SyntheticTraffic::numNodes_", Proof::kTwinConstruction},
        {"SyntheticTraffic::pattern_", Proof::kTwinConstruction},
        {"SyntheticTraffic::shortLen_", Proof::kTwinConstruction},
        {"Workload::system_", Proof::kTwinConstruction},
    };
    return reg;
}

TEST(StateTruthing, ExclusionRegistryMatchesParsedModel)
{
    const TreeModel m = realTreeModel();
    std::set<std::string> parsed;
    for (const ClassModel &c : m.classes)
        for (const MemberModel &mm : c.members)
            if (mm.excluded)
                parsed.insert(c.qualified + "::" + mm.name);

    for (const std::string &key : parsed)
        EXPECT_TRUE(exclusionRegistry().count(key))
            << key << " carries NORD_STATE_EXCLUDE but no truthing proof "
            << "is registered for it -- add it to exclusionRegistry() "
            << "with the experiment that shows it hash-neutral";
    for (const auto &entry : exclusionRegistry())
        EXPECT_TRUE(parsed.count(entry.first))
            << entry.first << " is registered but no longer carries "
            << "NORD_STATE_EXCLUDE in the tree -- drop the stale entry";
}

TEST(StateTruthing, TwinConstructionMembersAreHashNeutral)
{
    // Two instances hold different heap addresses in every pointer
    // member; a single leaked pointer in a serializeState walk would
    // split these hashes immediately.
    for (int d = 0; d < 4; ++d) {
        const NocConfig cfg = truthConfig(static_cast<PgDesign>(d));
        NocSystem sys1(cfg), sys2(cfg);
        SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.08, 7);
        SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.08, 7);
        sys1.setWorkload(&t1);
        sys2.setWorkload(&t2);
        ASSERT_EQ(sys1.stateHash(), sys2.stateHash());
        for (int step = 0; step < 8; ++step) {
            sys1.run(50);
            sys2.run(50);
            ASSERT_EQ(sys1.stateHash(), sys2.stateHash())
                << "design " << pgDesignName(cfg.design) << " cycle "
                << sys1.now();
        }
    }
}

TEST(StateTruthing, SkipToggleMembersAreHashNeutral)
{
    // NoRD powers routers down, so the skipping kernel's bookkeeping
    // diverges hard from the serial kernel's -- the counters prove the
    // differential is not vacuous.
    const NocConfig cfg = truthConfig(PgDesign::kNord);
    NocSystem skipping(cfg), serial(cfg);
    SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.05, 7);
    SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.05, 7);
    skipping.setWorkload(&t1);
    serial.setWorkload(&t2);
    ASSERT_TRUE(skipping.kernel().skipEnabled());
    serial.kernel().setSkipEnabled(false);

    for (int step = 0; step < 30; ++step) {
        skipping.run(10);
        serial.run(10);
        ASSERT_EQ(skipping.stateHash(), serial.stateHash())
            << "cycle " << skipping.now();
    }
    EXPECT_GT(skipping.kernel().skippedTotal(), 0u)
        << "nothing was skipped; the differential proved nothing";
    EXPECT_EQ(serial.kernel().skippedTotal(), 0u);
    EXPECT_NE(skipping.kernel().tickedTotal(),
              serial.kernel().tickedTotal());
}

TEST(StateTruthing, FreshRestoreMembersAreHashNeutral)
{
    // After the load, sys2's arena has a different slab layout and its
    // NI scratch buffers hold constructed values while sys1's carry 600
    // cycles of history -- the hashes must match anyway, now and as
    // both run on.
    const NocConfig cfg = truthConfig(PgDesign::kNord);
    NocSystem sys1(cfg);
    SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.10, 7);
    sys1.setWorkload(&t1);
    sys1.run(600);

    StateSerializer save(SerialMode::kSave);
    sys1.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    NocSystem sys2(cfg);
    SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.10, 7);
    sys2.setWorkload(&t2);
    StateSerializer load(save.takeBuffer());
    sys2.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();

    EXPECT_EQ(sys1.stateHash(), sys2.stateHash());
    for (int step = 0; step < 10; ++step) {
        sys1.run(20);
        sys2.run(20);
        ASSERT_EQ(sys1.stateHash(), sys2.stateHash())
            << "cycle " << sys1.now();
    }
}

TEST(StateTruthing, CacheClearMembersAreHashNeutral)
{
    // The criticality memo tables are process-wide; clearing them
    // between two hashes of a warmed system must change nothing, and a
    // system that keeps running after the clear must stay in lockstep
    // with a twin that never saw it.
    const NocConfig cfg = truthConfig(PgDesign::kNord);
    NocSystem sys1(cfg), sys2(cfg);
    SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.08, 7);
    SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.08, 7);
    sys1.setWorkload(&t1);
    sys2.setWorkload(&t2);
    sys1.run(200);
    sys2.run(200);

    const std::uint64_t before = sys1.stateHash();
    CriticalityCache::instance().clear();
    EXPECT_EQ(sys1.stateHash(), before);

    sys1.run(200);
    sys2.run(200);
    EXPECT_EQ(sys1.stateHash(), sys2.stateHash())
        << "repopulating the cleared cache perturbed simulation state";
}

#endif  // NORD_SOURCE_ROOT

}  // namespace
}  // namespace statecheck
}  // namespace nord

/**
 * @file
 * PoolArena / ArenaAllocator unit tests: reuse after free, double-free
 * detection, alignment, exhaustion growth, and teardown leak accounting.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "common/arena.hh"
#include "common/flit.hh"

namespace nord {
namespace {

TEST(Arena, ReuseAfterFree)
{
    PoolArena arena;
    void *a = arena.allocate(48);
    arena.deallocate(a, 48);
    // Same size class -> the freed block is recycled, not fresh slab.
    void *b = arena.allocate(40);
    EXPECT_EQ(a, b);
    EXPECT_EQ(arena.stats().reuses, 1u);
    arena.deallocate(b, 40);
    EXPECT_EQ(arena.stats().liveBlocks, 0u);
    EXPECT_EQ(arena.checkTeardown(), 0u);
}

TEST(Arena, DistinctLiveBlocksDontAlias)
{
    PoolArena arena;
    std::vector<void *> blocks;
    for (int i = 0; i < 256; ++i)
        blocks.push_back(arena.allocate(64));
    for (size_t i = 0; i < blocks.size(); ++i) {
        for (size_t j = i + 1; j < blocks.size(); ++j)
            ASSERT_NE(blocks[i], blocks[j]);
    }
    for (void *p : blocks)
        arena.deallocate(p, 64);
    EXPECT_EQ(arena.stats().liveBlocks, 0u);
}

TEST(Arena, DoubleFreeTrips)
{
    PoolArena arena;
    void *p = arena.allocate(32);
    arena.deallocate(p, 32);
    EXPECT_DEATH(arena.deallocate(p, 32), "double free");
}

TEST(Arena, ForeignPointerTrips)
{
    PoolArena arena;
    alignas(PoolArena::kAlign) char fake[64] = {};
    EXPECT_DEATH(arena.deallocate(fake + PoolArena::kAlign, 16),
                 "non-arena");
}

TEST(Arena, Alignment)
{
    PoolArena arena;
    for (std::size_t sz : {1u, 7u, 16u, 33u, 100u, 4096u, 8192u}) {
        void *p = arena.allocate(sz);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                      PoolArena::kAlign,
                  0u)
            << "size " << sz;
        arena.deallocate(p, sz);
    }
}

TEST(Arena, ExhaustionGrowsSlabs)
{
    PoolArena arena;
    // Far more than the first slab (16 KiB) holds: growth path must kick
    // in, and every block must still be usable.
    std::vector<void *> blocks;
    constexpr int kCount = 10000;
    constexpr std::size_t kSz = 128;
    for (int i = 0; i < kCount; ++i) {
        void *p = arena.allocate(kSz);
        *static_cast<int *>(p) = i;
        blocks.push_back(p);
    }
    EXPECT_GT(arena.stats().slabBytes, 16u * 1024u);
    for (int i = 0; i < kCount; ++i)
        EXPECT_EQ(*static_cast<int *>(blocks[i]), i);
    for (void *p : blocks)
        arena.deallocate(p, kSz);
    EXPECT_EQ(arena.stats().liveBlocks, 0u);
    // Steady state: the next wave recycles instead of growing.
    const std::uint64_t slabsBefore = arena.stats().slabBytes;
    for (int i = 0; i < kCount; ++i)
        blocks[static_cast<size_t>(i)] = arena.allocate(kSz);
    EXPECT_EQ(arena.stats().slabBytes, slabsBefore);
    for (void *p : blocks)
        arena.deallocate(p, kSz);
}

TEST(Arena, OversizeFallback)
{
    PoolArena arena;
    void *p = arena.allocate(100000);
    EXPECT_EQ(arena.stats().oversize, 1u);
    EXPECT_EQ(arena.stats().liveBlocks, 1u);
    arena.deallocate(p, 100000);
    EXPECT_EQ(arena.stats().liveBlocks, 0u);
}

TEST(Arena, PlantedLeakFlaggedByTeardownAccounting)
{
    PoolArena arena;
    void *kept = arena.allocate(64);
    void *freed = arena.allocate(64);
    arena.deallocate(freed, 64);
    // The planted leak: `kept` is never returned. Teardown accounting
    // must flag exactly that block.
    EXPECT_EQ(arena.checkTeardown(), 1u);
    EXPECT_EQ(arena.stats().liveBytes, 64u);
    arena.deallocate(kept, 64);  // clean up so the dtor stays silent
    EXPECT_EQ(arena.checkTeardown(), 0u);
}

TEST(Arena, AllocatorBackedDequeRoundTrips)
{
    PoolArena arena;
    {
        ArenaDeque<Flit> q{ArenaAllocator<Flit>(&arena)};
        for (int i = 0; i < 1000; ++i) {
            Flit f;
            f.seq = static_cast<std::int16_t>(i % 128);
            q.push_back(f);
        }
        EXPECT_GT(arena.stats().allocCalls, 0u);
        while (!q.empty())
            q.pop_front();
        q.shrink_to_fit();
    }
    EXPECT_EQ(arena.checkTeardown(), 0u);
}

TEST(Arena, NullArenaAllocatorUsesHeap)
{
    // The heap-mode toggle: a default allocator must work standalone and
    // never touch any arena.
    ArenaDeque<int> q;
    for (int i = 0; i < 100; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 100u);
    EXPECT_EQ(q.front(), 0);
    ArenaAllocator<int> heap1;
    ArenaAllocator<int> heap2;
    EXPECT_TRUE(heap1 == heap2);
    PoolArena arena;
    ArenaAllocator<int> pooled(&arena);
    EXPECT_TRUE(heap1 != pooled);
}

}  // namespace
}  // namespace nord

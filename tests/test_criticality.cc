/**
 * @file
 * Tests for the Floyd-Warshall criticality analysis (Figure 6).
 */

#include <gtest/gtest.h>

#include "topology/criticality.hh"

namespace nord {
namespace {

class CriticalityTest : public ::testing::Test
{
  protected:
    CriticalityTest() : mesh(4, 4), ring(mesh), analyzer(mesh, ring) {}

    MeshTopology mesh;
    BypassRing ring;
    CriticalityAnalyzer analyzer;
};

TEST_F(CriticalityTest, AllOnMatchesMeshAverage)
{
    std::vector<bool> on(16, true);
    CriticalityPoint pt = analyzer.analyze(on);
    // Average pairwise Manhattan distance of a 4x4 mesh is 8/3.
    EXPECT_NEAR(pt.avgDistanceHops, 8.0 / 3.0, 1e-9);
    EXPECT_NEAR(pt.avgPerHopLatency, 5.0, 1e-9);
}

TEST_F(CriticalityTest, AllOffIsTheRing)
{
    std::vector<bool> off(16, false);
    CriticalityPoint pt = analyzer.analyze(off);
    // Unidirectional 16-ring: mean forward distance = (1+...+15)/15 = 8.
    EXPECT_NEAR(pt.avgDistanceHops, 8.0, 1e-9);
    EXPECT_NEAR(pt.avgPerHopLatency, 3.0, 1e-9);
}

TEST_F(CriticalityTest, GreedySweepShape)
{
    auto sweep = analyzer.greedySweep();
    ASSERT_EQ(sweep.size(), 17u);
    // Distance is non-increasing in k; per-hop latency rises overall.
    for (size_t k = 1; k < sweep.size(); ++k) {
        EXPECT_LE(sweep[k].avgDistanceHops,
                  sweep[k - 1].avgDistanceHops + 1e-9);
        EXPECT_EQ(sweep[k].numPoweredOn, static_cast<int>(k));
    }
    EXPECT_LT(sweep.front().avgPerHopLatency,
              sweep.back().avgPerHopLatency);
}

TEST_F(CriticalityTest, KneeMatchesPaper)
{
    // The paper's 4x4 example designates six performance-centric routers.
    auto sweep = analyzer.greedySweep();
    EXPECT_EQ(CriticalityAnalyzer::kneePoint(sweep), 6);
}

TEST_F(CriticalityTest, PerformanceCentricSetSizeAndValidity)
{
    auto set = analyzer.performanceCentricSet(6);
    EXPECT_EQ(set.size(), 6u);
    for (NodeId r : set) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 16);
    }
    // Sorted and unique.
    for (size_t i = 1; i < set.size(); ++i)
        EXPECT_LT(set[i - 1], set[i]);
}

TEST_F(CriticalityTest, DistanceMatrixProperties)
{
    std::vector<bool> on(16, false);
    on[5] = on[6] = on[9] = on[10] = true;  // center on
    auto m = analyzer.distanceMatrixCycles(on);
    ASSERT_EQ(m.size(), 256u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(m[i * 16 + i], 0.0);
        for (int j = 0; j < 16; ++j) {
            if (i != j) {
                EXPECT_GT(m[i * 16 + j], 0.0);
                EXPECT_LT(m[i * 16 + j], 16.0 * 5.0);
            }
        }
    }
    // Triangle inequality.
    for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
            for (int k = 0; k < 16; ++k) {
                EXPECT_LE(m[i * 16 + j],
                          m[i * 16 + k] + m[k * 16 + j] + 1e-9);
            }
        }
    }
}

TEST_F(CriticalityTest, SinglePoweredOnRouterStillConnected)
{
    for (NodeId r = 0; r < 16; ++r) {
        std::vector<bool> on(16, false);
        on[r] = true;
        CriticalityPoint pt = analyzer.analyze(on);  // panics if split
        EXPECT_GT(pt.avgDistanceHops, 0.0);
    }
}

TEST(CriticalityLarge, EightByEightRingDistance)
{
    MeshTopology mesh(8, 8);
    BypassRing ring(mesh);
    CriticalityAnalyzer analyzer(mesh, ring);
    std::vector<bool> off(64, false);
    CriticalityPoint pt = analyzer.analyze(off);
    // 64-ring: mean forward distance = 65*64/2/63... = sum(1..63)/63 = 32.
    EXPECT_NEAR(pt.avgDistanceHops, 32.0, 1e-9);
}

TEST(CriticalityEdge, TwoByTwoMesh)
{
    // The smallest legal mesh: the ring is the mesh's outer face, and the
    // analysis endpoints have closed forms.
    MeshTopology mesh(2, 2);
    BypassRing ring(mesh);
    CriticalityAnalyzer analyzer(mesh, ring);

    std::vector<bool> on(4, true);
    // Ordered pairwise Manhattan distances: 8x1 + 4x2 over 12 pairs.
    EXPECT_NEAR(analyzer.analyze(on).avgDistanceHops, 4.0 / 3.0, 1e-9);

    std::vector<bool> off(4, false);
    // 4-ring: mean forward distance = (1+2+3)/3 = 2.
    EXPECT_NEAR(analyzer.analyze(off).avgDistanceHops, 2.0, 1e-9);

    auto sweep = analyzer.greedySweep();
    ASSERT_EQ(sweep.size(), 5u);
    int knee = CriticalityAnalyzer::kneePoint(sweep);
    EXPECT_GE(knee, 0);
    EXPECT_LE(knee, 4);
    auto set = analyzer.performanceCentricSet(knee);
    EXPECT_EQ(static_cast<int>(set.size()), knee);
}

TEST(CriticalityEdge, RectangularMeshes)
{
    // k x m with k != m: the serpentine ring construction and the sweep
    // must not assume a square mesh.
    for (auto [rows, cols] : {std::pair{2, 5}, {4, 6}, {6, 4}}) {
        MeshTopology mesh(rows, cols);
        BypassRing ring(mesh);
        CriticalityAnalyzer analyzer(mesh, ring);
        const int n = rows * cols;

        std::vector<bool> off(n, false);
        // n-ring: mean forward distance = sum(1..n-1)/(n-1) = n/2.
        EXPECT_NEAR(analyzer.analyze(off).avgDistanceHops, n / 2.0, 1e-9)
            << rows << "x" << cols;

        auto sweep = analyzer.greedySweep();
        ASSERT_EQ(sweep.size(), static_cast<size_t>(n) + 1);
        for (size_t k = 1; k < sweep.size(); ++k) {
            EXPECT_LE(sweep[k].avgDistanceHops,
                      sweep[k - 1].avgDistanceHops + 1e-9);
        }
        int knee = CriticalityAnalyzer::kneePoint(sweep);
        auto set = analyzer.performanceCentricSet(knee);
        EXPECT_EQ(static_cast<int>(set.size()), knee);
        for (NodeId r : set) {
            EXPECT_GE(r, 0);
            EXPECT_LT(r, n);
        }
    }
}

TEST(CriticalityEdge, BrokenRingOrdersRejected)
{
    MeshTopology mesh(4, 4);

    // Node 0 appears twice, node 15 never: not Hamiltonian.
    std::vector<NodeId> repeated = BypassRing(mesh).order();
    for (NodeId &node : repeated) {
        if (node == 15)
            node = 0;
    }
    EXPECT_EXIT({ BypassRing ring(mesh, repeated); },
                ::testing::ExitedWithCode(1), "");

    // A permutation whose hops teleport across the mesh.
    std::vector<NodeId> teleport = BypassRing(mesh).order();
    std::swap(teleport[3], teleport[10]);
    EXPECT_EXIT({ BypassRing ring(mesh, teleport); },
                ::testing::ExitedWithCode(1), "");

    // Too short.
    EXPECT_EXIT({ BypassRing ring(mesh, {0, 1, 2}); },
                ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Tests for the Floyd-Warshall criticality analysis (Figure 6).
 */

#include <gtest/gtest.h>

#include "topology/criticality.hh"

namespace nord {
namespace {

class CriticalityTest : public ::testing::Test
{
  protected:
    CriticalityTest() : mesh(4, 4), ring(mesh), analyzer(mesh, ring) {}

    MeshTopology mesh;
    BypassRing ring;
    CriticalityAnalyzer analyzer;
};

TEST_F(CriticalityTest, AllOnMatchesMeshAverage)
{
    std::vector<bool> on(16, true);
    CriticalityPoint pt = analyzer.analyze(on);
    // Average pairwise Manhattan distance of a 4x4 mesh is 8/3.
    EXPECT_NEAR(pt.avgDistanceHops, 8.0 / 3.0, 1e-9);
    EXPECT_NEAR(pt.avgPerHopLatency, 5.0, 1e-9);
}

TEST_F(CriticalityTest, AllOffIsTheRing)
{
    std::vector<bool> off(16, false);
    CriticalityPoint pt = analyzer.analyze(off);
    // Unidirectional 16-ring: mean forward distance = (1+...+15)/15 = 8.
    EXPECT_NEAR(pt.avgDistanceHops, 8.0, 1e-9);
    EXPECT_NEAR(pt.avgPerHopLatency, 3.0, 1e-9);
}

TEST_F(CriticalityTest, GreedySweepShape)
{
    auto sweep = analyzer.greedySweep();
    ASSERT_EQ(sweep.size(), 17u);
    // Distance is non-increasing in k; per-hop latency rises overall.
    for (size_t k = 1; k < sweep.size(); ++k) {
        EXPECT_LE(sweep[k].avgDistanceHops,
                  sweep[k - 1].avgDistanceHops + 1e-9);
        EXPECT_EQ(sweep[k].numPoweredOn, static_cast<int>(k));
    }
    EXPECT_LT(sweep.front().avgPerHopLatency,
              sweep.back().avgPerHopLatency);
}

TEST_F(CriticalityTest, KneeMatchesPaper)
{
    // The paper's 4x4 example designates six performance-centric routers.
    auto sweep = analyzer.greedySweep();
    EXPECT_EQ(CriticalityAnalyzer::kneePoint(sweep), 6);
}

TEST_F(CriticalityTest, PerformanceCentricSetSizeAndValidity)
{
    auto set = analyzer.performanceCentricSet(6);
    EXPECT_EQ(set.size(), 6u);
    for (NodeId r : set) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, 16);
    }
    // Sorted and unique.
    for (size_t i = 1; i < set.size(); ++i)
        EXPECT_LT(set[i - 1], set[i]);
}

TEST_F(CriticalityTest, DistanceMatrixProperties)
{
    std::vector<bool> on(16, false);
    on[5] = on[6] = on[9] = on[10] = true;  // center on
    auto m = analyzer.distanceMatrixCycles(on);
    ASSERT_EQ(m.size(), 256u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(m[i * 16 + i], 0.0);
        for (int j = 0; j < 16; ++j) {
            if (i != j) {
                EXPECT_GT(m[i * 16 + j], 0.0);
                EXPECT_LT(m[i * 16 + j], 16.0 * 5.0);
            }
        }
    }
    // Triangle inequality.
    for (int i = 0; i < 16; ++i) {
        for (int j = 0; j < 16; ++j) {
            for (int k = 0; k < 16; ++k) {
                EXPECT_LE(m[i * 16 + j],
                          m[i * 16 + k] + m[k * 16 + j] + 1e-9);
            }
        }
    }
}

TEST_F(CriticalityTest, SinglePoweredOnRouterStillConnected)
{
    for (NodeId r = 0; r < 16; ++r) {
        std::vector<bool> on(16, false);
        on[r] = true;
        CriticalityPoint pt = analyzer.analyze(on);  // panics if split
        EXPECT_GT(pt.avgDistanceHops, 0.0);
    }
}

TEST(CriticalityLarge, EightByEightRingDistance)
{
    MeshTopology mesh(8, 8);
    BypassRing ring(mesh);
    CriticalityAnalyzer analyzer(mesh, ring);
    std::vector<bool> off(64, false);
    CriticalityPoint pt = analyzer.analyze(off);
    // 64-ring: mean forward distance = 65*64/2/63... = sum(1..63)/63 = 32.
    EXPECT_NEAR(pt.avgDistanceHops, 32.0, 1e-9);
}

}  // namespace
}  // namespace nord

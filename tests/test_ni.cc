/**
 * @file
 * Unit tests for the network interface: packetization, injection,
 * ejection, and credits.
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"

namespace nord {
namespace {

NocConfig
noPg()
{
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    return cfg;
}

TEST(NetworkInterface, PacketizationFlitTypes)
{
    NocSystem sys(noPg());
    sys.inject(0, 1, 5);
    EXPECT_EQ(sys.ni(0).injectionBacklog(), 5u);
    sys.inject(0, 1, 1);
    EXPECT_EQ(sys.ni(0).injectionBacklog(), 6u);
    ASSERT_TRUE(sys.runToCompletion(2000));
    EXPECT_EQ(sys.ni(1).packetsReceived(), 2u);
}

TEST(NetworkInterface, InjectsOneFlitPerCycle)
{
    NocSystem sys(noPg());
    sys.inject(0, 15, 5);
    sys.run(3);
    // At most one flit leaves the injection queue per cycle.
    EXPECT_GE(sys.ni(0).injectionBacklog(), 2u);
}

TEST(NetworkInterface, BackpressureWhenVcsBusy)
{
    // Saturate one source with many long packets; the injection queue
    // must drain gradually (credits bound the rate), never overflow
    // asserts, and all packets must arrive.
    NocSystem sys(noPg());
    for (int i = 0; i < 40; ++i)
        sys.inject(0, 15, 8);
    ASSERT_TRUE(sys.runToCompletion(20000));
    EXPECT_EQ(sys.ni(15).packetsReceived(), 40u);
}

TEST(NetworkInterface, IdleReflectsState)
{
    NocSystem sys(noPg());
    EXPECT_TRUE(sys.ni(0).idle());
    sys.inject(0, 1, 1);
    EXPECT_FALSE(sys.ni(0).idle());
    ASSERT_TRUE(sys.runToCompletion(1000));
    EXPECT_TRUE(sys.ni(0).idle());
}

TEST(NetworkInterface, DeliveryCallbackFires)
{
    NocSystem sys(noPg());
    int delivered = 0;
    sys.ni(9).setDeliveryCallback(
        [&](const Flit &tail, Cycle) {
            ++delivered;
            EXPECT_EQ(tail.dst, 9);
            EXPECT_TRUE(flitIsTail(tail));
        });
    sys.inject(0, 9, 5);
    sys.inject(4, 9, 1);
    ASSERT_TRUE(sys.runToCompletion(2000));
    EXPECT_EQ(delivered, 2);
}

TEST(NetworkInterface, PacketsReceivedPerNode)
{
    NocSystem sys(noPg());
    sys.inject(0, 5, 1);
    sys.inject(1, 5, 1);
    sys.inject(2, 6, 1);
    ASSERT_TRUE(sys.runToCompletion(2000));
    EXPECT_EQ(sys.ni(5).packetsReceived(), 2u);
    EXPECT_EQ(sys.ni(6).packetsReceived(), 1u);
    EXPECT_EQ(sys.ni(7).packetsReceived(), 0u);
}

TEST(NetworkInterface, ConservationWithSelfTraffic)
{
    NocSystem sys(noPg());
    for (NodeId n = 0; n < 16; ++n) {
        sys.inject(n, n, 5);       // self
        sys.inject(n, 15 - n, 1);  // remote (15-n != n for all n)
    }
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 32u);
    EXPECT_EQ(sys.stats().flitsInjected(), sys.stats().flitsDelivered());
}

}  // namespace
}  // namespace nord

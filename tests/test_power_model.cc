/**
 * @file
 * Tests for the technology/power/area models against the paper's anchors.
 */

#include <gtest/gtest.h>

#include "power/area_model.hh"
#include "power/power_model.hh"
#include "power/tech_params.hh"

namespace nord {
namespace {

TEST(TechParams, PaperDefault)
{
    TechParams t = TechParams::paperDefault();
    EXPECT_EQ(t.node, TechNode::k45nm);
    EXPECT_DOUBLE_EQ(t.voltage, 1.1);
    EXPECT_NEAR(t.cycleTime(), 1.0 / 3e9, 1e-15);
}

TEST(TechParams, ScalesAreOneAtAnchor)
{
    TechParams t{TechNode::k45nm, 1.1, 3.0};
    EXPECT_NEAR(t.staticScale(), 1.0, 1e-12);
    EXPECT_NEAR(t.dynamicScale(), 1.0, 1e-12);
}

TEST(TechParams, DynamicScalesWithVSquared)
{
    TechParams hi{TechNode::k45nm, 1.1, 3.0};
    TechParams lo{TechNode::k45nm, 1.0, 3.0};
    EXPECT_NEAR(lo.dynamicScale() / hi.dynamicScale(),
                (1.0 / 1.1) * (1.0 / 1.1), 1e-12);
}

TEST(PowerModel, StaticShareAnchors)
{
    // Figure 1a headline numbers.
    PowerModel p65(TechParams{TechNode::k65nm, 1.2, 3.0});
    EXPECT_NEAR(p65.staticShareAtReference(), 0.179, 0.02);
    PowerModel p45(TechParams{TechNode::k45nm, 1.1, 3.0});
    EXPECT_NEAR(p45.staticShareAtReference(), 0.354, 0.02);
    PowerModel p32(TechParams{TechNode::k32nm, 1.0, 3.0});
    EXPECT_NEAR(p32.staticShareAtReference(), 0.477, 0.02);
}

TEST(PowerModel, StaticShareGrowsWithScaling)
{
    PowerModel p65(TechParams{TechNode::k65nm, 1.2, 3.0});
    PowerModel p45(TechParams{TechNode::k45nm, 1.1, 3.0});
    PowerModel p32(TechParams{TechNode::k32nm, 1.0, 3.0});
    EXPECT_LT(p65.staticShareAtReference(), p45.staticShareAtReference());
    EXPECT_LT(p45.staticShareAtReference(), p32.staticShareAtReference());
}

TEST(PowerModel, StaticComponentSharesSumToOne)
{
    EXPECT_NEAR(PowerModel::kBufferStaticShare +
                    PowerModel::kVaStaticShare +
                    PowerModel::kSaStaticShare +
                    PowerModel::kXbarStaticShare +
                    PowerModel::kClockStaticShare,
                1.0, 1e-12);
    // Buffers dominate (55% per Figure 1b).
    EXPECT_NEAR(PowerModel::kBufferStaticShare, 0.55, 1e-12);
}

TEST(PowerModel, BreakEvenRoundTrip)
{
    PowerModel pm;
    double ovh = pm.wakeupOverheadEnergy(10);
    EXPECT_NEAR(pm.breakEvenCycles(ovh), 10.0, 1e-9);
    EXPECT_GT(ovh, 0.0);
}

TEST(PowerModel, BypassHopCheaperThanRouterHop)
{
    PowerModel pm;
    double bypass = pm.bypassLatchEnergy() + pm.bypassForwardEnergy();
    EXPECT_LT(bypass, pm.routerHopEnergy());
}

TEST(PowerModel, GatedResidualOrdering)
{
    PowerModel pm;
    // NoRD keeps more always-on hardware (latches, muxes) than a bare
    // PG controller, but far less than the full router.
    EXPECT_GT(pm.gatedResidualPower(PgDesign::kNord),
              pm.gatedResidualPower(PgDesign::kConvPg));
    EXPECT_LT(pm.gatedResidualPower(PgDesign::kNord),
              0.10 * pm.routerStaticPower());
}

TEST(PowerModel, ComputeEnergyArithmetic)
{
    PowerModel pm;
    NetworkStats stats(1, 0);
    ActivityCounters &c = stats.router(0);
    c.onCycles = 1000;
    c.offCycles = 0;
    c.bufferWrites = 10;
    c.bufferReads = 10;
    c.vcAllocs = 2;
    c.swAllocs = 10;
    c.xbarTraversals = 10;
    c.linkTraversals = 10;
    c.wakeups = 3;

    EnergyBreakdown e = pm.compute(stats, 1000, 4, PgDesign::kConvPg, 10);
    const double tc = pm.tech().cycleTime();
    EXPECT_NEAR(e.routerStatic, 1000 * pm.routerStaticPower() * tc, 1e-15);
    EXPECT_NEAR(e.linkStatic, 4 * pm.linkStaticPower() * 1000 * tc, 1e-15);
    EXPECT_NEAR(e.pgOverhead, 3 * pm.wakeupOverheadEnergy(10), 1e-18);
    EXPECT_NEAR(e.routerDynamic,
                10 * (pm.bufferWriteEnergy() + pm.bufferReadEnergy() +
                      pm.swAllocEnergy() + pm.xbarEnergy()) +
                    2 * pm.vcAllocEnergy(),
                1e-18);
    EXPECT_NEAR(e.linkDynamic, 10 * pm.linkTraversalEnergy(), 1e-18);
    EXPECT_NEAR(e.total(), e.routerStatic + e.routerDynamic +
                               e.linkStatic + e.linkDynamic + e.pgOverhead,
                1e-18);
}

TEST(PowerModel, OffCyclesLeakOnlyResidual)
{
    PowerModel pm;
    NetworkStats stats(1, 0);
    stats.router(0).offCycles = 1000;
    EnergyBreakdown e = pm.compute(stats, 1000, 0, PgDesign::kNord, 10);
    const double tc = pm.tech().cycleTime();
    EXPECT_NEAR(e.routerStatic,
                1000 * pm.gatedResidualPower(PgDesign::kNord) * tc, 1e-15);
}

TEST(AreaModel, NordOverheadMatchesPaper)
{
    NocConfig cfg;
    AreaModel area(cfg);
    // Section 6.8: 3.1% over Conv_PG_OPT, small in absolute terms.
    EXPECT_NEAR(area.overheadVs(PgDesign::kNord, PgDesign::kConvPgOpt),
                0.031, 0.008);
}

TEST(AreaModel, PgSwitchWithinPaperRange)
{
    NocConfig cfg;
    AreaModel area(cfg);
    double frac = area.pgSwitchArea() / area.baseRouterArea();
    EXPECT_GE(frac, 0.04);
    EXPECT_LE(frac, 0.10);
}

TEST(AreaModel, BuffersDominate)
{
    NocConfig cfg;
    AreaModel area(cfg);
    EXPECT_GT(area.bufferArea(), area.controlArea());
    EXPECT_GT(area.bufferArea(), area.crossbarArea());
    EXPECT_GT(area.bufferArea(), 0.5 * area.baseRouterArea());
}

TEST(AreaModel, MonotoneInDesign)
{
    NocConfig cfg;
    AreaModel area(cfg);
    EXPECT_LT(area.totalArea(PgDesign::kNoPg),
              area.totalArea(PgDesign::kConvPg));
    EXPECT_EQ(area.totalArea(PgDesign::kConvPg),
              area.totalArea(PgDesign::kConvPgOpt));
    EXPECT_LT(area.totalArea(PgDesign::kConvPgOpt),
              area.totalArea(PgDesign::kNord));
}

class TechSweepTest
    : public ::testing::TestWithParam<std::pair<TechNode, double>>
{
};

TEST_P(TechSweepTest, SharesAreSane)
{
    auto [node, v] = GetParam();
    PowerModel pm(TechParams{node, v, 3.0});
    double share = pm.staticShareAtReference();
    EXPECT_GT(share, 0.05);
    EXPECT_LT(share, 0.75);
    EXPECT_GT(pm.routerStaticPower(), 0.0);
    EXPECT_GT(pm.linkStaticPower(), 0.0);
    EXPECT_LT(pm.linkStaticPower(), pm.routerStaticPower());
}

INSTANTIATE_TEST_SUITE_P(Grid, TechSweepTest,
    ::testing::Values(std::pair{TechNode::k65nm, 1.2},
                      std::pair{TechNode::k65nm, 1.1},
                      std::pair{TechNode::k65nm, 1.0},
                      std::pair{TechNode::k45nm, 1.2},
                      std::pair{TechNode::k45nm, 1.1},
                      std::pair{TechNode::k45nm, 1.0},
                      std::pair{TechNode::k32nm, 1.2},
                      std::pair{TechNode::k32nm, 1.1},
                      std::pair{TechNode::k32nm, 1.0}));

}  // namespace
}  // namespace nord

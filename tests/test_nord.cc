/**
 * @file
 * Tests for NoRD's node-router decoupling: the bypass datapath, the
 * wakeup metric, asymmetric thresholds, and the paper's three headline
 * properties (no disconnection, hidden wakeup latency, fewer wakeups).
 */

#include <gtest/gtest.h>

#include "core/nord_controller.hh"
#include "network/noc_system.hh"

namespace nord {
namespace {

/** NoRD config whose routers can never wake (forced bypass). */
NocConfig
ringOnlyConfig()
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfThreshold = 1 << 20;
    cfg.nordPowerThreshold = 1 << 20;
    cfg.nordPerfCentricCount = 0;
    return cfg;
}

TEST(Nord, AllRoutersSleepWithoutTraffic)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    sys.run(200);
    EXPECT_EQ(sys.countInState(PowerState::kOff), 16);
}

TEST(Nord, DeliversThroughFullyGatedNetwork)
{
    // The decoupling bypass keeps all NIs connected even when every
    // router is off (Section 4.2) -- no disconnection problem.
    NocSystem sys(ringOnlyConfig());
    sys.run(200);
    ASSERT_EQ(sys.countInState(PowerState::kOff), 16);
    sys.inject(2, 9, 5);
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
    // And without a single wakeup.
    EXPECT_EQ(sys.stats().totalWakeups(), 0u);
    EXPECT_EQ(sys.countInState(PowerState::kOff), 16);
}

TEST(Nord, AllPairsThroughFullyGatedNetwork)
{
    NocSystem sys(ringOnlyConfig());
    sys.run(200);
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            if (s != d)
                sys.inject(s, d, 1);
        }
    }
    ASSERT_TRUE(sys.runToCompletion(200000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 240u);
    EXPECT_EQ(sys.stats().totalWakeups(), 0u);
}

TEST(Nord, RingOnlyLatencyMatchesBypassPipeline)
{
    // One ring hop through a gated router costs 3 cycles (2-stage bypass
    // + LT). Check a single-hop-on-ring packet at zero load.
    NocSystem sys(ringOnlyConfig());
    sys.run(200);
    NodeId src = 0;
    NodeId dst = sys.ring().successor(src);
    sys.inject(src, dst, 1);
    ASSERT_TRUE(sys.runToCompletion(2000));
    // Injection via the bypass (stage 2+3) + one link + sink at the
    // destination NI: small, and far below a woken pipeline's cost.
    EXPECT_LE(sys.stats().avgPacketLatency(), 12.0);
}

TEST(Nord, ReceivesAtGatedDestination)
{
    // A gated-off destination router does not disconnect its node: the
    // packet is ejected through the bypass latch without waking it.
    NocSystem sys(ringOnlyConfig());
    sys.run(200);
    sys.inject(1, 2, 5);  // 2 = ring successor of 1 in the 4x4 ring
    ASSERT_TRUE(sys.runToCompletion(5000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 1u);
    EXPECT_EQ(sys.stats().totalWakeups(), 0u);
}

TEST(Nord, WakeupMetricFiresAboveThreshold)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfCentricCount = 0;  // uniform threshold
    cfg.nordPowerThreshold = 2;
    NocSystem sys(cfg);
    sys.run(200);
    ASSERT_EQ(sys.countInState(PowerState::kOff), 16);
    // Sustained local injections create repeated VC requests at NI 0.
    for (int i = 0; i < 20; ++i)
        sys.inject(0, 10, 5);
    sys.run(60);
    EXPECT_NE(sys.controller(0).state(), PowerState::kOff);
    EXPECT_GE(sys.stats().totalWakeups(), 1u);
}

TEST(Nord, AsymmetricThresholdsAssigned)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    ASSERT_EQ(sys.perfCentricRouters().size(), 6u);  // Fig. 6 knee
    for (NodeId id = 0; id < 16; ++id) {
        auto *ctrl = dynamic_cast<NordController *>(&sys.controller(id));
        ASSERT_NE(ctrl, nullptr);
        const bool perf =
            std::find(sys.perfCentricRouters().begin(),
                      sys.perfCentricRouters().end(),
                      id) != sys.perfCentricRouters().end();
        EXPECT_EQ(ctrl->wakeupThreshold(),
                  perf ? cfg.nordPerfThreshold : cfg.nordPowerThreshold);
        EXPECT_EQ(ctrl->sleepGuard(),
                  perf ? cfg.nordPerfSleepGuard
                       : cfg.nordPowerSleepGuard);
    }
}

TEST(Nord, FewerWakeupsThanConventional)
{
    // Headline property: the decoupling bypass avoids most wakeups.
    // Sparse single packets: every one of them forces conventional
    // wakeups along its path, while NoRD's thresholds absorb most.
    std::uint64_t wakeups[2];
    const PgDesign designs[2] = {PgDesign::kConvPg, PgDesign::kNord};
    for (int i = 0; i < 2; ++i) {
        NocConfig cfg;
        cfg.design = designs[i];
        NocSystem sys(cfg);
        for (int round = 0; round < 100; ++round) {
            sys.inject(round % 16, (round * 5 + 7) % 16, 1);
            sys.run(60);
        }
        ASSERT_TRUE(sys.runToCompletion(30000));
        wakeups[i] = sys.stats().totalWakeups();
    }
    EXPECT_LT(wakeups[1], wakeups[0]);
}

TEST(Nord, LatencyInsensitiveToWakeupLatency)
{
    // Figure 13's property at test scale: doubling the wakeup latency
    // must barely move NoRD's latency (bypass carries packets while
    // routers ramp), unlike conventional gating.
    double lat[2];
    int idx = 0;
    for (int wl : {9, 18}) {
        NocConfig cfg;
        cfg.design = PgDesign::kNord;
        cfg.wakeupLatency = wl;
        cfg.seed = 3;
        NocSystem sys(cfg);
        for (int round = 0; round < 150; ++round) {
            sys.inject(round % 16, (round * 3 + 5) % 16, 1);
            sys.run(40);
        }
        ASSERT_TRUE(sys.runToCompletion(30000));
        lat[idx++] = sys.stats().avgPacketLatency();
    }
    EXPECT_NEAR(lat[1], lat[0], 0.15 * lat[0]);
}

TEST(Nord, MidPacketWakeupDrainsCleanly)
{
    // Stress the gated-off -> gated-on transition while packets are mid
    // bypass: low thresholds force frequent wakeups under a multi-flit
    // stream; every flit must still arrive exactly once.
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfCentricCount = 0;
    cfg.nordPowerThreshold = 1;
    cfg.nordPowerSleepGuard = 0;
    NocSystem sys(cfg);
    for (int i = 0; i < 300; ++i)
        sys.inject(i % 16, (i * 11 + 1) % 16, 5);
    ASSERT_TRUE(sys.runToCompletion(300000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 300u);
    EXPECT_EQ(sys.stats().flitsDelivered(), 1500u);
}

TEST(Nord, BypassCountersTrackTraffic)
{
    NocSystem sys(ringOnlyConfig());
    sys.run(200);
    sys.inject(0, 4, 1);  // 4 is far along the ring from 0
    ASSERT_TRUE(sys.runToCompletion(5000));
    const ActivityCounters t = sys.stats().totals();
    EXPECT_GT(t.bypassForwards, 0u);
    EXPECT_GT(t.bypassLatchWrites, 0u);
    // No pipeline activity at all while everything is gated.
    EXPECT_EQ(t.bufferReads, 0u);
    EXPECT_EQ(t.vcAllocs, 0u);
}

TEST(Nord, LocalStarvationBounded)
{
    // Heavy through-traffic on the ring must not starve local injection
    // beyond the starvation limit mechanism.
    NocConfig cfg = ringOnlyConfig();
    cfg.niStarvationLimit = 4;
    NocSystem sys(cfg);
    sys.run(200);
    // Through-traffic crossing node 1's NI bypass (ring 0->1->2).
    for (int i = 0; i < 50; ++i)
        sys.inject(0, 5, 5);
    // Local traffic from node 1.
    for (int i = 0; i < 20; ++i)
        sys.inject(1, 9, 1);
    ASSERT_TRUE(sys.runToCompletion(100000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 70u);
}

TEST(Nord, AggressiveBypassCutsLatency)
{
    // Section 6.8: the aggressive single-cycle bypass shortens ring
    // transit when the datapath is empty.
    double lat[2];
    for (int aggressive = 0; aggressive < 2; ++aggressive) {
        NocConfig cfg = ringOnlyConfig();
        cfg.nordAggressiveBypass = aggressive == 1;
        NocSystem sys(cfg);
        sys.run(200);
        sys.inject(0, 4, 1);  // 15 ring hops from 0 in the 4x4 ring
        EXPECT_TRUE(sys.runToCompletion(5000));
        lat[aggressive] = sys.stats().avgPacketLatency();
    }
    // One cycle saved per bypassed hop over a long ring path.
    EXPECT_LT(lat[1], lat[0] - 8.0);
}

TEST(Nord, AggressiveBypassConservesFlits)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordAggressiveBypass = true;
    NocSystem sys(cfg);
    for (int i = 0; i < 200; ++i)
        sys.inject(i % 16, (i * 7 + 3) % 16, 1 + (i % 2) * 4);
    ASSERT_TRUE(sys.runToCompletion(100000));
    EXPECT_EQ(sys.stats().packetsDelivered(), 200u);
    // The fast path was actually exercised.
    std::uint64_t aggressive = 0;
    for (NodeId n = 0; n < 16; ++n)
        aggressive += sys.ni(n).aggressiveForwards();
    EXPECT_GT(aggressive, 0u);
}

}  // namespace
}  // namespace nord

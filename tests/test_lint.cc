/**
 * @file
 * nord-lint engine tests.
 *
 * The planted-bug half feeds the lint the *pre-fix* shapes of real bugs
 * this repo has had -- the three function-local static caches that used
 * to live in src/network/noc_system.cc and the once-latched getenv()
 * read from src/common/trace.cc -- and requires findings. The post-fix
 * shapes (the whitelisted CriticalityCache singleton, the resettable
 * trace atomic) must lint clean, as must the real source tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "verify/lint/source_lint.hh"

namespace nord {
namespace {

std::vector<LintFinding>
lint(const std::string &path, const std::string &content)
{
    return lintSource(path, content);
}

int
countCheck(const std::vector<LintFinding> &fs, const std::string &check)
{
    int n = 0;
    for (const LintFinding &f : fs)
        n += f.check == check ? 1 : 0;
    return n;
}

// ---------------------------------------------------------------------
// Planted pre-fix bugs: the shapes nord-lint exists to catch.
// ---------------------------------------------------------------------

/** The three hidden criticality caches as they looked before the fix. */
const char *kPreFixStaticCaches = R"cc(
namespace nord {
namespace {

int
cachedKnee(const MeshTopology &mesh, const BypassRing &ring)
{
    static std::map<std::pair<int, int>, int> knees;
    const auto key = std::make_pair(mesh.rows(), mesh.cols());
    auto it = knees.find(key);
    if (it == knees.end())
        it = knees.emplace(key, computeKnee(mesh, ring)).first;
    return it->second;
}

const std::vector<NodeId> &
cachedPerfSet(const MeshTopology &mesh, const BypassRing &ring, int count)
{
    static std::map<std::tuple<int, int, int>, std::vector<NodeId>> sets;
    const auto key = std::make_tuple(mesh.rows(), mesh.cols(), count);
    auto it = sets.find(key);
    if (it == sets.end())
        it = sets.emplace(key, computePerfSet(mesh, ring, count)).first;
    return it->second;
}

const std::vector<double> &
cachedSteering(const MeshTopology &mesh, const BypassRing &ring, int count)
{
    static std::map<std::tuple<int, int, int>, std::vector<double>> tables;
    const auto key = std::make_tuple(mesh.rows(), mesh.cols(), count);
    auto it = tables.find(key);
    if (it == tables.end())
        it = tables.emplace(key, computeSteering(mesh, ring, count)).first;
    return it->second;
}

}  // namespace
}  // namespace nord
)cc";

TEST(NordLint, PlantedStaticCachesAreFlagged)
{
    const std::vector<LintFinding> fs =
        lint("src/network/noc_system.cc", kPreFixStaticCaches);
    EXPECT_EQ(countCheck(fs, "mutable-static"), 3);
    EXPECT_EQ(fs.size(), 3u) << "no other checks should fire";
    // Findings are sorted by line.
    ASSERT_EQ(fs.size(), 3u);
    EXPECT_LT(fs[0].line, fs[1].line);
    EXPECT_LT(fs[1].line, fs[2].line);
}

/** tracedPacket() as it looked before the fix: a once-latched env read. */
const char *kPreFixTraceLatch = R"cc(
namespace nord {

PacketId
tracedPacket()
{
    static const PacketId traced = [] {
        const char *env = std::getenv("NORD_TRACE_PACKET");
        if (!env)
            return static_cast<PacketId>(0);
        return static_cast<PacketId>(std::strtoull(env, nullptr, 10));
    }();
    return traced;
}

}  // namespace nord
)cc";

TEST(NordLint, PlantedTraceLatchIsFlagged)
{
    // src/common/ is exempt from the plain env-read ban, but an
    // env-LATCHED static is banned everywhere -- that was the bug.
    const std::vector<LintFinding> fs =
        lint("src/common/trace.cc", kPreFixTraceLatch);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].check, "env-latch");
}

// ---------------------------------------------------------------------
// Post-fix shapes: whitelisted or clean by construction.
// ---------------------------------------------------------------------

const char *kPostFixCacheSingleton = R"cc(
namespace nord {

CriticalityCache &
CriticalityCache::instance()
{
    static CriticalityCache cache;
    return cache;
}

}  // namespace nord
)cc";

TEST(NordLint, WhitelistedSingletonIsCleanOnlyInItsFile)
{
    EXPECT_TRUE(
        lint("src/topology/criticality.cc", kPostFixCacheSingleton)
            .empty());
    // The same shape anywhere else is still a finding: the whitelist is
    // (file, check, token)-specific.
    const std::vector<LintFinding> fs =
        lint("src/network/noc_system.cc", kPostFixCacheSingleton);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].check, "mutable-static");
}

const char *kPostFixTraceAtomic = R"cc(
namespace nord {
namespace {

std::atomic<PacketId> &
selection()
{
    static std::atomic<PacketId> selected{kUnset};
    return selected;
}

}  // namespace
}  // namespace nord
)cc";

TEST(NordLint, PostFixTraceSelectionIsClean)
{
    EXPECT_TRUE(
        lint("src/common/trace.cc", kPostFixTraceAtomic).empty());
}

TEST(NordLint, WhitelistEntriesCarryStories)
{
    const std::vector<LintWhitelistEntry> &wl = lintWhitelist();
    ASSERT_EQ(wl.size(), 2u);
    for (const LintWhitelistEntry &w : wl) {
        EXPECT_FALSE(w.fileSuffix.empty());
        EXPECT_FALSE(w.token.empty());
        EXPECT_GT(w.story.size(), 20u)
            << w.fileSuffix << " needs a real justification";
    }
}

// ---------------------------------------------------------------------
// Individual checks.
// ---------------------------------------------------------------------

TEST(NordLint, ConstAndThreadLocalStaticsAreFine)
{
    const char *code = R"cc(
static const int kTable[4] = {1, 2, 3, 4};
static constexpr double kPi = 3.14159;
static thread_local int scratch = 0;
thread_local static int scratch2 = 0;
static int helper(int x) { return x + 1; }
)cc";
    EXPECT_TRUE(lint("src/router/router.cc", code).empty());
}

TEST(NordLint, MutableStaticOutsideSrcIsNotOurBusiness)
{
    const char *code = "static int hits = 0;\n";
    EXPECT_FALSE(lint("src/router/router.cc", code).empty());
    EXPECT_TRUE(lint("tests/test_foo.cc", code).empty());
    EXPECT_TRUE(lint("bench/bench_foo.cc", code).empty());
}

TEST(NordLint, AllowAnnotationSuppresses)
{
    const char *annotated =
        "// nord-lint-allow(mutable-static): test scaffolding\n"
        "static int hits = 0;\n";
    EXPECT_TRUE(lint("src/router/router.cc", annotated).empty());

    const char *sameLine =
        "static int hits = 0;  // nord-lint-allow(mutable-static)\n";
    EXPECT_TRUE(lint("src/router/router.cc", sameLine).empty());

    const char *wrongCheck =
        "// nord-lint-allow(env-read)\n"
        "static int hits = 0;\n";
    EXPECT_FALSE(lint("src/router/router.cc", wrongCheck).empty());
}

TEST(NordLint, EnvReadScope)
{
    const char *code = "const char *v = std::getenv(\"NORD_KNOB\");\n";
    const std::vector<LintFinding> fs =
        lint("src/network/noc_system.cc", code);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].check, "env-read");
    // The funnel point and non-library code may read the environment.
    EXPECT_TRUE(lint("src/common/env.cc", code).empty());
    EXPECT_TRUE(lint("tests/test_foo.cc", code).empty());
    EXPECT_TRUE(lint("tools/nord_foo.cc", code).empty());
}

TEST(NordLint, StdioSideChannel)
{
    const char *code = "std::fprintf(stderr, \"boom\\n\");\n";
    const std::vector<LintFinding> fs =
        lint("src/router/router.cc", code);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].check, "stdio-side-channel");
    EXPECT_TRUE(lint("src/common/log.cc", code).empty());
}

TEST(NordLint, FlitHeapAllocationFlagged)
{
    const char *code = R"cc(
void
stash(const Flit &f)
{
    Flit *copy = new Flit(f);
    auto *desc = new
        PacketDescriptor();
    pending_.push_back(copy);
    descs_.push_back(desc);
}
)cc";
    const std::vector<LintFinding> fs = lint("src/ni/stash.cc", code);
    // Both the same-line and the line-broken new-expression are caught.
    EXPECT_EQ(countCheck(fs, "flit-heap"), 2);
    // The arena itself and non-library code are exempt.
    EXPECT_TRUE(lint("src/common/arena.cc", code).empty());
    EXPECT_TRUE(lint("tests/test_foo.cc", code).empty());
    EXPECT_TRUE(lint("bench/perf_foo.cpp", code).empty());
}

TEST(NordLint, FlitHeapIgnoresLookalikes)
{
    const char *code = R"cc(
FlitLink *l = new FlitLink(dst, port);   // different type, fine
int renewFlit = 0;                       // "new" not a word here
Flit f = makeFlit();                     // no new-expression at all
)cc";
    EXPECT_TRUE(
        countCheck(lint("src/network/wiring.cc", code), "flit-heap") == 0);
}

TEST(NordLint, FlitHeapAnnotationSuppresses)
{
    const char *code =
        "// nord-lint-allow(flit-heap)\n"
        "Flit *f = new Flit();\n";
    EXPECT_EQ(countCheck(lint("src/ni/stash.cc", code), "flit-heap"), 0);
}

TEST(NordLint, DeterminismChecks)
{
    const char *code = R"cc(
int
jitter()
{
    std::srand(42);
    std::random_device rd;
    long t = time(nullptr);
    return rand() + static_cast<int>(t) + static_cast<int>(rd());
}
)cc";
    // Applies to the whole tree, tools and tests included.
    const std::vector<LintFinding> fs = lint("tools/nord_foo.cc", code);
    EXPECT_EQ(countCheck(fs, "determinism"), 4);
    // ... except the seeded wrapper that owns the library's randomness.
    EXPECT_TRUE(lint("src/common/rng.cc", code).empty());
}

TEST(NordLint, DeterminismIgnoresLookalikes)
{
    const char *code = R"cc(
int operand = srandom_marker;
double uptime(Cycle now) { return now * 1e-9; }
std::string timestamp = formatTime(cycle);
)cc";
    EXPECT_TRUE(lint("src/stats/network_stats.cc", code).empty());
}

TEST(NordLint, ClockedContract)
{
    const char *broken = R"cc(
class BrokenProbe : public Clocked
{
  public:
    void tick(Cycle now) override;
    std::string name() const override;
};
)cc";
    const std::vector<LintFinding> fs =
        lint("src/verify/probe.hh", broken);
    EXPECT_EQ(countCheck(fs, "clocked-serialize"), 1);
    EXPECT_EQ(countCheck(fs, "clocked-ownership"), 1);
    // Only headers under src/ are in scope.
    EXPECT_TRUE(lint("tests/helpers.hh", broken).empty());

    const char *complete = R"cc(
class GoodProbe : public Clocked
{
  public:
    void tick(Cycle now) override;
    std::string name() const override;
    void serializeState(StateSerializer &s) override;
    void declareOwnership(OwnershipDeclarator &d) const override;
};
)cc";
    EXPECT_TRUE(lint("src/verify/probe.hh", complete).empty());

    const char *annotated = R"cc(
/** Ephemeral; no persistent state.
 *  nord-lint-allow(clocked-contract) */
class StatelessProbe : public Clocked
{
  public:
    void tick(Cycle now) override;
    std::string name() const override;
};
)cc";
    EXPECT_TRUE(lint("src/verify/probe.hh", annotated).empty());
}

TEST(NordLint, UncheckedIoFlaggedInDurabilityCode)
{
    const char *bare = R"cc(
void
flushJournal(std::FILE *f, int fd)
{
    std::fwrite(buf, 1, n, f);
    fflush(f);
    fsync(fd);
    std::rename(tmp, path);
}
)cc";
    // Five findings: four discarded results, plus the rename's missing
    // parent-directory fsync (a separate unchecked-io finding).
    const std::vector<LintFinding> fs =
        lint("src/campaign/journal.cc", bare);
    EXPECT_EQ(countCheck(fs, "unchecked-io"), 5);
    EXPECT_EQ(countCheck(lint("src/ckpt/checkpoint.cc", bare),
                         "unchecked-io"), 5);
    // Only the durability layers are in scope: elsewhere an ignored
    // fflush is merely sloppy, not a resumability bug.
    EXPECT_TRUE(lint("src/router/router.cc", bare).empty());
    EXPECT_TRUE(lint("bench/bench_foo.cc", bare).empty());
}

TEST(NordLint, UncheckedIoCleanWhenResultConsumed)
{
    const char *checked = R"cc(
bool
flushJournal(std::FILE *f, int fd)
{
    if (std::fwrite(buf, 1, n, f) != n)
        return false;
    bool ok = (std::fflush(f) == 0);
    ok = (fsync(fd) == 0) && ok;
    if (!ok || std::rename(tmp, path) != 0)
        return false;
    return fsyncParentDir(path);
}
)cc";
    EXPECT_TRUE(lint("src/ckpt/checkpoint.cc", checked).empty());

    // An explicit (void) cast at least states intent; it passes.
    const char *discarded =
        "void cleanup(int fd) { (void)fsync(fd); }\n";
    EXPECT_TRUE(lint("src/campaign/journal.cc", discarded).empty());

    // Declarations and non-call uses of the names are not findings.
    const char *lookalikes = R"cc(
int rename(const char *oldp, const char *newp);
void logRename(const std::string &rename_target);
int fsyncBudget = 3;
)cc";
    EXPECT_TRUE(lint("src/campaign/journal.cc", lookalikes).empty());
}

TEST(NordLint, UncheckedIoAnnotationSuppresses)
{
    const char *annotated = R"cc(
void
bestEffortCleanup(const char *a, const char *b)
{
    // nord-lint-allow(unchecked-io): cleanup path, failure is benign
    rename(a, b);
}
)cc";
    EXPECT_TRUE(lint("src/campaign/journal.cc", annotated).empty());

    const char *unannotated = R"cc(
void
bestEffortCleanup(const char *a, const char *b)
{
    rename(a, b);
}
)cc";
    // Discarded result + missing parent-directory fsync.
    const std::vector<LintFinding> fs =
        lint("src/campaign/journal.cc", unannotated);
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].check, "unchecked-io");
    EXPECT_EQ(fs[1].check, "unchecked-io");
}

TEST(NordLint, UncheckedIoRenameRequiresDirFsync)
{
    // A CHECKED rename is still not durable: without fsyncing the
    // parent directory the new entry can vanish on power loss.
    const char *noDirSync = R"cc(
bool
publish(const char *tmp, const char *path)
{
    if (std::rename(tmp, path) != 0)
        return false;
    return true;
}
)cc";
    const std::vector<LintFinding> fs =
        lint("src/campaign/lease.cc", noDirSync);
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].check, "unchecked-io");
    EXPECT_NE(fs[0].message.find("fsyncParentDir"), std::string::npos);

    // fsyncParentDir within the window satisfies the rule, even with
    // an error branch between the two calls.
    const char *synced = R"cc(
bool
publish(const char *tmp, const char *path, std::string *err)
{
    if (std::rename(tmp, path) != 0) {
        setErr(err, "rename failed");
        std::remove(tmp);
        return false;
    }
    return fsyncParentDir(path, err);
}
)cc";
    EXPECT_TRUE(lint("src/ckpt/checkpoint.cc", synced).empty());

    // A fsyncParentDir far below (a different operation) does not
    // excuse the rename.
    const char *farAway = R"cc(
bool
publish(const char *tmp, const char *path)
{
    if (std::rename(tmp, path) != 0)
        return false;
    return true;
}




void a();
void b();
void c();
void d();
void e();
bool
other(const char *path)
{
    return fsyncParentDir(path);
}
)cc";
    EXPECT_EQ(countCheck(lint("src/campaign/journal.cc", farAway),
                         "unchecked-io"), 1);

    // Annotation suppresses, as for every unchecked-io finding.
    const char *annotated = R"cc(
bool
publish(const char *tmp, const char *path)
{
    // nord-lint-allow(unchecked-io): tmpfs scratch, durability moot
    if (std::rename(tmp, path) != 0)
        return false;
    return true;
}
)cc";
    EXPECT_TRUE(lint("src/campaign/lease.cc", annotated).empty());

    // Out of durability scope the rule does not apply.
    EXPECT_TRUE(lint("src/router/router.cc", noDirSync).empty());
}

TEST(NordLint, StripCodeIgnoresCommentsAndStrings)
{
    const char *code = R"cc(
// static int commentedOut = 0;
/* std::random_device inBlockComment; */
const char *doc = "static int inString = 0; rand();";
const char *raw = R"(std::getenv("X") time(nullptr))";
)cc";
    EXPECT_TRUE(lint("src/router/router.cc", code).empty());

    const std::string stripped = stripCode(code);
    EXPECT_EQ(stripped.size(), std::string(code).size())
        << "stripping must preserve offsets";
    EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
              std::count(code, code + std::string(code).size(), '\n'));
    EXPECT_EQ(stripped.find("commentedOut"), std::string::npos);
    EXPECT_EQ(stripped.find("inString"), std::string::npos);
    EXPECT_EQ(stripped.find("getenv"), std::string::npos);
}

// ---------------------------------------------------------------------
// The real tree.
// ---------------------------------------------------------------------

#ifdef NORD_SOURCE_ROOT
TEST(NordLint, RealSourceTreeIsClean)
{
    std::string err;
    const std::vector<LintFinding> fs =
        lintTree(NORD_SOURCE_ROOT, lintWhitelist(), &err);
    EXPECT_TRUE(err.empty()) << err;
    for (const LintFinding &f : fs)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.check
                      << "] " << f.message;
}
#endif

}  // namespace
}  // namespace nord

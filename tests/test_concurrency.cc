/**
 * @file
 * Shard-safety stress tests: two NocSystems on two threads.
 *
 * The library's contract after the hidden-static purge: independent
 * NocSystems share NO mutable state except the mutex-guarded
 * CriticalityCache and the lock-free trace selection, so concurrent
 * campaigns are bit-identical to serial ones. These tests are excluded
 * from the main nord_tests ctest entry and run under their own
 * nord_concurrency entry -- and, in CI, under ThreadSanitizer, where
 * DISABLED_PlantedStaticCacheRace reproduces the pre-fix bug shape as a
 * detected race (negative control for the TSan job itself).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/trace.hh"
#include "network/noc_system.hh"
#include "topology/criticality.hh"
#include "traffic/synthetic_traffic.hh"
#include "verify/static/config_registry.hh"

#if defined(__SANITIZE_THREAD__)
#define NORD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NORD_TSAN 1
#endif
#endif

namespace nord {
namespace {

/** Build, run and drain one campaign; returns the final state hash. */
std::uint64_t
campaignHash(PgDesign design, Cycle cycles)
{
    NocConfig cfg = makeShippedConfig(design, 4, 4);
    cfg.verify.interval = 250;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05,
                             cfg.seed);
    sys.setWorkload(&traffic);
    sys.run(cycles);
    sys.setWorkload(nullptr);
    EXPECT_TRUE(sys.runToCompletion(cycles * 4));
    sys.checkInvariants();
    return sys.stateHash();
}

TEST(Concurrency, ThreadedCampaignsBitIdenticalToSerial)
{
    const Cycle kCycles = 3000;
    const std::vector<PgDesign> designs = {
        PgDesign::kNoPg, PgDesign::kConvPg, PgDesign::kConvPgOpt,
        PgDesign::kNord};

    // Golden serial hashes, one design at a time.
    std::vector<std::uint64_t> serial;
    for (PgDesign d : designs)
        serial.push_back(campaignHash(d, kCycles));

    // All four concurrently, racing through NocSystem construction (the
    // shared CriticalityCache) and the full campaign. Start from a cold
    // cache so construction itself contends.
    CriticalityCache::instance().clear();
    std::vector<std::uint64_t> threaded(designs.size(), 0);
    std::vector<std::thread> workers;
    for (size_t i = 0; i < designs.size(); ++i) {
        workers.emplace_back([&, i] {
            threaded[i] = campaignHash(designs[i], kCycles);
        });
    }
    for (std::thread &w : workers)
        w.join();

    for (size_t i = 0; i < designs.size(); ++i)
        EXPECT_EQ(threaded[i], serial[i])
            << pgDesignName(designs[i])
            << " diverged when run on a thread";
}

TEST(Concurrency, ConcurrentConstructionSharesCriticalityCache)
{
    CriticalityCache::instance().clear();
    std::vector<NodeId> perfA, perfB;
    std::thread a([&] {
        NocSystem sys(makeShippedConfig(PgDesign::kNord, 4, 4));
        perfA = sys.perfCentricRouters();
    });
    std::thread b([&] {
        NocSystem sys(makeShippedConfig(PgDesign::kNord, 4, 4));
        perfB = sys.perfCentricRouters();
    });
    a.join();
    b.join();
    EXPECT_FALSE(perfA.empty());
    EXPECT_EQ(perfA, perfB);
    EXPECT_GT(CriticalityCache::instance().entries(), 0u);
}

TEST(Concurrency, TraceSelectionIsResettable)
{
    // The old once-latched static could never change its mind within a
    // process; the TraceConfig atomic can.
    TraceConfig::setPacket(7);
    EXPECT_EQ(tracedPacket(), 7u);
    TraceConfig::setPacket(9);
    EXPECT_EQ(tracedPacket(), 9u);
    TraceConfig::setPacket(0);
    EXPECT_EQ(tracedPacket(), 0u);
    TraceConfig::reset();  // next query re-reads NORD_TRACE_PACKET
}

/**
 * The pre-fix bug shape: a function-local static cache mutated with no
 * lock. Kept as a disabled negative control -- under the TSan CI job it
 * is run explicitly (--gtest_also_run_disabled_tests) and MUST make the
 * run fail with a reported data race, proving the sanitizer wiring can
 * see exactly the class of bug the CriticalityCache fix removed.
 */
[[maybe_unused]] int
plantedCachedLookup(int key)
{
    // nord-lint-allow would be wrong here: tests/ is outside the
    // mutable-static ban, which is the point -- the planted bug lives
    // where the lint cannot object.
    static std::map<int, int> cache;
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, key * key).first;
    return it->second;
}

TEST(Concurrency, DISABLED_PlantedStaticCacheRace)
{
#ifdef NORD_TSAN
    std::thread a([] {
        for (int i = 0; i < 20000; ++i)
            plantedCachedLookup(i);
    });
    std::thread b([] {
        for (int i = 0; i < 20000; ++i)
            plantedCachedLookup(i + 1);
    });
    a.join();
    b.join();
    SUCCEED() << "TSan reports the race via its own exit code";
#else
    GTEST_SKIP() << "negative control: only meaningful under "
                    "ThreadSanitizer";
#endif
}

}  // namespace
}  // namespace nord

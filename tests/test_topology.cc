/**
 * @file
 * Unit tests for the mesh topology and Bypass Ring construction.
 */

#include <gtest/gtest.h>

#include <set>

#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {
namespace {

TEST(MeshTopology, Dimensions)
{
    MeshTopology mesh(4, 4);
    EXPECT_EQ(mesh.rows(), 4);
    EXPECT_EQ(mesh.cols(), 4);
    EXPECT_EQ(mesh.numNodes(), 16);
    EXPECT_EQ(mesh.nodeAt(1, 2), 6);
    EXPECT_EQ(mesh.rowOf(6), 1);
    EXPECT_EQ(mesh.colOf(6), 2);
}

TEST(MeshTopology, Neighbors)
{
    MeshTopology mesh(4, 4);
    EXPECT_EQ(mesh.neighbor(5, Direction::kNorth), 1);
    EXPECT_EQ(mesh.neighbor(5, Direction::kSouth), 9);
    EXPECT_EQ(mesh.neighbor(5, Direction::kEast), 6);
    EXPECT_EQ(mesh.neighbor(5, Direction::kWest), 4);
    EXPECT_EQ(mesh.neighbor(0, Direction::kNorth), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(0, Direction::kWest), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(15, Direction::kSouth), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(15, Direction::kEast), kInvalidNode);
}

TEST(MeshTopology, DirectionRoundTrip)
{
    MeshTopology mesh(4, 6);
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        for (int d = 0; d < kNumMeshDirs; ++d) {
            NodeId nb = mesh.neighbor(n, indexDir(d));
            if (nb == kInvalidNode)
                continue;
            EXPECT_EQ(mesh.directionTo(n, nb), indexDir(d));
            EXPECT_EQ(mesh.neighbor(nb, opposite(indexDir(d))), n);
            EXPECT_TRUE(mesh.adjacent(n, nb));
        }
    }
}

TEST(MeshTopology, Manhattan)
{
    MeshTopology mesh(4, 4);
    EXPECT_EQ(mesh.manhattan(0, 15), 6);
    EXPECT_EQ(mesh.manhattan(0, 0), 0);
    EXPECT_EQ(mesh.manhattan(3, 12), 6);
    EXPECT_EQ(mesh.manhattan(5, 6), 1);
}

TEST(MeshTopology, MinimalDirections)
{
    MeshTopology mesh(4, 4);
    auto dirs = mesh.minimalDirections(0, 15);
    EXPECT_EQ(dirs.size(), 2u);
    dirs = mesh.minimalDirections(5, 1);
    ASSERT_EQ(dirs.size(), 1u);
    EXPECT_EQ(dirs[0], Direction::kNorth);
    EXPECT_TRUE(mesh.minimalDirections(7, 7).empty());
}

TEST(MeshTopology, XyDirection)
{
    MeshTopology mesh(4, 4);
    // XY: X (columns) first.
    EXPECT_EQ(mesh.xyDirection(0, 15), Direction::kEast);
    EXPECT_EQ(mesh.xyDirection(3, 15), Direction::kSouth);
    EXPECT_EQ(mesh.xyDirection(7, 7), Direction::kLocal);
}

class BypassRingTest : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(BypassRingTest, IsHamiltonianCycle)
{
    auto [rows, cols] = GetParam();
    MeshTopology mesh(rows, cols);
    BypassRing ring(mesh);

    std::set<NodeId> visited;
    NodeId n = 0;
    for (int i = 0; i < mesh.numNodes(); ++i) {
        EXPECT_TRUE(visited.insert(n).second) << "revisited node " << n;
        NodeId next = ring.successor(n);
        EXPECT_TRUE(mesh.adjacent(n, next))
            << n << " -> " << next << " is not a mesh link";
        EXPECT_EQ(ring.predecessor(next), n);
        n = next;
    }
    EXPECT_EQ(n, 0) << "ring did not close";
    EXPECT_EQ(visited.size(), static_cast<size_t>(mesh.numNodes()));
}

TEST_P(BypassRingTest, PortsMatchRingEdges)
{
    auto [rows, cols] = GetParam();
    MeshTopology mesh(rows, cols);
    BypassRing ring(mesh);
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        EXPECT_EQ(mesh.neighbor(n, ring.bypassOutport(n)),
                  ring.successor(n));
        // The Bypass Inport faces the predecessor.
        EXPECT_EQ(mesh.neighbor(n, ring.bypassInport(n)),
                  ring.predecessor(n));
    }
}

TEST_P(BypassRingTest, RingDistances)
{
    auto [rows, cols] = GetParam();
    MeshTopology mesh(rows, cols);
    BypassRing ring(mesh);
    const int n = mesh.numNodes();
    for (NodeId a = 0; a < n; ++a) {
        EXPECT_EQ(ring.ringDistance(a, a), 0);
        EXPECT_EQ(ring.ringDistance(a, ring.successor(a)), 1);
        EXPECT_EQ(ring.ringDistance(ring.successor(a), a), n - 1);
    }
}

TEST_P(BypassRingTest, ExactlyOneDateline)
{
    auto [rows, cols] = GetParam();
    MeshTopology mesh(rows, cols);
    BypassRing ring(mesh);
    int datelines = 0;
    for (NodeId v = 0; v < mesh.numNodes(); ++v)
        datelines += ring.crossesDateline(v) ? 1 : 0;
    EXPECT_EQ(datelines, 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BypassRingTest,
    ::testing::Values(std::pair{4, 4}, std::pair{8, 8}, std::pair{4, 6},
                      std::pair{6, 4}, std::pair{2, 2}, std::pair{2, 8},
                      std::pair{8, 2}, std::pair{4, 2}, std::pair{6, 6}));

TEST(BypassRing, CanonicalOrder4x4)
{
    MeshTopology mesh(4, 4);
    BypassRing ring(mesh);
    // Row 0 east, serpentine rows 1..3 over cols 1..3, north up col 0.
    const std::vector<NodeId> expect = {0, 1, 2, 3, 7, 6, 5, 9, 10, 11,
                                        15, 14, 13, 12, 8, 4};
    EXPECT_EQ(ring.order(), expect);
}

TEST(BypassRing, RejectsNonCycleOrder)
{
    MeshTopology mesh(2, 2);
    // 0-3 are not adjacent: invalid ring.
    EXPECT_EXIT(
        { BypassRing bad(mesh, {0, 3, 1, 2}); },
        ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Tests for the closed-loop PARSEC workload models.
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"

namespace nord {
namespace {

TEST(ParsecSuite, HasTenBenchmarks)
{
    EXPECT_EQ(parsecSuite().size(), 10u);
    // The paper's benchmark list.
    const char *names[] = {"blackscholes", "bodytrack", "canneal",
                           "dedup", "ferret", "fluidanimate", "raytrace",
                           "swaptions", "vips", "x264"};
    for (const char *n : names)
        EXPECT_EQ(parsecByName(n).name, n);
}

TEST(ParsecSuite, LookupUnknownDies)
{
    EXPECT_EXIT({ parsecByName("nonexistent"); },
                ::testing::ExitedWithCode(1), "unknown PARSEC");
}

/** Shrunk copy of a benchmark for fast tests. */
ParsecParams
quick(const std::string &name, int txns = 60)
{
    ParsecParams p = parsecByName(name);
    p.transactionsPerCore = txns;
    return p;
}

class ParsecRunTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ParsecRunTest, RunsToCompletionUnderNord)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    NocSystem sys(cfg);
    ParsecWorkload wl(quick(GetParam()), 1);
    sys.setWorkload(&wl);
    ASSERT_TRUE(sys.runToCompletion(3000000));
    EXPECT_TRUE(wl.done());
    EXPECT_EQ(wl.completedTransactions(), wl.totalTransactions());
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParsecRunTest,
    ::testing::Values("blackscholes", "bodytrack", "canneal", "dedup",
                      "ferret", "fluidanimate", "raytrace", "swaptions",
                      "vips", "x264"));

TEST(ParsecWorkloadTest, DeterministicAcrossRuns)
{
    Cycle times[2];
    for (int i = 0; i < 2; ++i) {
        NocConfig cfg;
        cfg.design = PgDesign::kNoPg;
        NocSystem sys(cfg);
        ParsecWorkload wl(quick("canneal"), 42);
        sys.setWorkload(&wl);
        ASSERT_TRUE(sys.runToCompletion(3000000));
        times[i] = sys.now();
    }
    EXPECT_EQ(times[0], times[1]);
}

TEST(ParsecWorkloadTest, SeedChangesSchedule)
{
    Cycle times[2];
    std::uint64_t seeds[2] = {1, 2};
    for (int i = 0; i < 2; ++i) {
        NocConfig cfg;
        cfg.design = PgDesign::kNoPg;
        NocSystem sys(cfg);
        ParsecWorkload wl(quick("canneal"), seeds[i]);
        sys.setWorkload(&wl);
        ASSERT_TRUE(sys.runToCompletion(3000000));
        times[i] = sys.now();
    }
    EXPECT_NE(times[0], times[1]);
}

TEST(ParsecWorkloadTest, RunsUnderEveryDesign)
{
    for (int d = 0; d < 4; ++d) {
        NocConfig cfg;
        cfg.design = static_cast<PgDesign>(d);
        NocSystem sys(cfg);
        ParsecWorkload wl(quick("dedup", 40), 1);
        sys.setWorkload(&wl);
        ASSERT_TRUE(sys.runToCompletion(3000000))
            << pgDesignName(cfg.design);
        EXPECT_TRUE(wl.done());
    }
}

TEST(ParsecWorkloadTest, IdlenessOrderingMatchesPaper)
{
    // x264 is the busiest model, blackscholes among the lightest
    // (Section 3.1). Compare their idleness on short runs.
    double idle[2];
    const char *names[2] = {"x264", "blackscholes"};
    for (int i = 0; i < 2; ++i) {
        NocConfig cfg;
        cfg.design = PgDesign::kNoPg;
        NocSystem sys(cfg);
        ParsecWorkload wl(quick(names[i], 150), 1);
        sys.setWorkload(&wl);
        ASSERT_TRUE(sys.runToCompletion(5000000));
        sys.finalizeStats();
        idle[i] = sys.stats().avgIdleFraction();
    }
    EXPECT_LT(idle[0], idle[1]);
}

TEST(ParsecWorkloadTest, FragmentedIdlePeriods)
{
    // Section 3.2: a majority of idle periods are at or below the BET.
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    ParsecWorkload wl(quick("canneal", 150), 1);
    sys.setWorkload(&wl);
    ASSERT_TRUE(sys.runToCompletion(5000000));
    sys.finalizeStats();
    EXPECT_GT(sys.stats().combinedIdleHistogram().fractionAtOrBelow(
                  cfg.betCycles),
              0.5);
}

TEST(ParsecWorkloadTest, MemoryTrafficReachesCorners)
{
    // Memory controllers sit at the corners (Table 1); corner routers
    // must see traffic even though cores are everywhere.
    NocConfig cfg;
    cfg.design = PgDesign::kNoPg;
    NocSystem sys(cfg);
    ParsecParams p = quick("canneal", 120);
    p.memFraction = 0.8;
    ParsecWorkload wl(p, 1);
    sys.setWorkload(&wl);
    ASSERT_TRUE(sys.runToCompletion(5000000));
    for (NodeId corner : {0, 3, 12, 15})
        EXPECT_GT(sys.stats().router(corner).bufferWrites, 0u);
}

}  // namespace
}  // namespace nord

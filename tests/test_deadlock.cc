/**
 * @file
 * Property tests: deadlock- and livelock-freedom across designs,
 * patterns, loads, and seeds (Duato's Protocol, ring escape, misroute
 * cap). Every parameterized case runs open-loop traffic, then stops
 * injection and requires the network to drain completely.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

using DeadlockParam =
    std::tuple<PgDesign, TrafficPattern, double, std::uint64_t>;

class DeadlockTest : public ::testing::TestWithParam<DeadlockParam>
{
};

TEST_P(DeadlockTest, InjectThenDrain)
{
    auto [design, pattern, rate, seed] = GetParam();
    NocConfig cfg;
    cfg.design = design;
    cfg.seed = seed;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(pattern, rate, seed);
    sys.setWorkload(&traffic);

    sys.run(20000);
    const std::uint64_t midway = sys.stats().packetsDelivered();
    EXPECT_GT(midway, 0u) << "no forward progress";

    // Stop injection and require full drain: any deadlocked packet
    // would leave buffers non-empty.
    sys.setWorkload(nullptr);
    // Generous budget: saturated cases carry a large backlog.
    bool drained = sys.runToCompletion(400000);
    if (!drained)
        sys.dumpState(stderr);
    ASSERT_TRUE(drained) << "network failed to drain";
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
    // Resource conservation: credits home, no leaked VCs or bypass
    // state (panics on violation).
    sys.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(LoadGrid, DeadlockTest,
    ::testing::Combine(
        ::testing::Values(PgDesign::kNoPg, PgDesign::kConvPg,
                          PgDesign::kConvPgOpt, PgDesign::kNord),
        ::testing::Values(TrafficPattern::kUniformRandom,
                          TrafficPattern::kBitComplement,
                          TrafficPattern::kTranspose,
                          TrafficPattern::kHotspot),
        ::testing::Values(0.03, 0.15, 0.45),
        ::testing::Values(1ull)),
    [](const ::testing::TestParamInfo<DeadlockParam> &info) {
        return std::string(pgDesignName(std::get<0>(info.param))) + "_" +
               trafficPatternName(std::get<1>(info.param)) + "_r" +
               std::to_string(
                   static_cast<int>(std::get<2>(info.param) * 100)) +
               "_s" + std::to_string(std::get<3>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(SeedSweep, DeadlockTest,
    ::testing::Combine(
        ::testing::Values(PgDesign::kNord),
        ::testing::Values(TrafficPattern::kUniformRandom),
        ::testing::Values(0.10),
        ::testing::Values(2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull,
                          9ull)),
    [](const ::testing::TestParamInfo<DeadlockParam> &info) {
        return "seed" + std::to_string(std::get<3>(info.param));
    });

TEST(DeadlockStress, NordChurnExtreme)
{
    // Pathological churn: instant sleep, instant wake, tiny window.
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfCentricCount = 0;
    cfg.nordPowerThreshold = 1;
    cfg.nordPowerSleepGuard = 0;
    cfg.nordWakeupWindow = 2;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.20, 99);
    sys.setWorkload(&traffic);
    sys.run(30000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(100000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
    sys.checkInvariants();
}

TEST(DeadlockStress, NordRingOnlySaturated)
{
    // Everything gated, load far above the ring's capacity: livelock-
    // and deadlock-freedom must still hold; the network must drain.
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfThreshold = 1 << 20;
    cfg.nordPowerThreshold = 1 << 20;
    cfg.nordPerfCentricCount = 0;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.15, 5);
    sys.setWorkload(&traffic);
    sys.run(15000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(400000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
}

TEST(DeadlockStress, ConvPgSaturated8x8)
{
    NocConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.design = PgDesign::kConvPg;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kBitComplement, 0.30, 17);
    sys.setWorkload(&traffic);
    sys.run(15000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(400000));
    EXPECT_EQ(sys.stats().packetsDelivered(),
              sys.stats().packetsCreated());
}

TEST(DeadlockStress, MisrouteCapBoundsHops)
{
    // Livelock-freedom: even with most routers asleep, delivered hop
    // counts stay bounded (misroute cap forces ring escape, and the ring
    // reaches the destination within one lap).
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.nordPerfThreshold = 1 << 20;
    cfg.nordPowerThreshold = 1 << 20;
    cfg.nordPerfCentricCount = 0;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.04, 23);
    sys.setWorkload(&traffic);
    sys.run(30000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(100000));
    // Worst case: misroute cap of wandering + a full ring lap.
    EXPECT_LE(sys.stats().avgHops(),
              16.0 + cfg.nordMisrouteCap + 6.0);
}

}  // namespace
}  // namespace nord

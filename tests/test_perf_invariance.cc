/**
 * @file
 * Bit-identity lockdown for the performance layer.
 *
 * The contract under test: idle-router event skipping (perf.skipIdle)
 * and the pool-arena flit storage (perf.arena) are pure optimizations.
 * A system running with either (or both) toggled must march through the
 * exact same per-cycle stateHash() sequence as the plain
 * tick-everything, heap-everything build -- for every power-gating
 * design, with the fault campaign and E2E resilience active, and across
 * a checkpoint saved on one side and restored on the other (the
 * configuration fingerprint deliberately excludes PerfConfig, so
 * checkpoints cross perf settings).
 *
 * A randomized soak (seed matrix via NORD_PERF_SEED, run by the
 * nord_fault_soak ctest entry) stretches the same lockstep over a
 * heavier campaign with mid-run checkpoint/restore on one side only.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

NocConfig
perfConfig(PgDesign design, bool skip, bool arena, std::uint64_t seed = 1)
{
    NocConfig cfg;
    cfg.design = design;
    cfg.seed = seed;
    cfg.perf.skipIdle = skip;
    cfg.perf.arena = arena;
    cfg.fault.enabled = true;
    cfg.fault.e2e = true;
    cfg.fault.flitCorruptRate = 1e-4;
    cfg.fault.flitDropRate = 1e-4;
    cfg.fault.creditLeakRate = 5e-5;
    cfg.verify.interval = 64;
    cfg.verify.policy = AuditPolicy::kRecover;
    return cfg;
}

/** The stats any two bit-identical runs must agree on. */
void
expectSameStats(const NocSystem &a, const NocSystem &b)
{
    EXPECT_EQ(a.stats().packetsCreated(), b.stats().packetsCreated());
    EXPECT_EQ(a.stats().packetsDelivered(), b.stats().packetsDelivered());
    EXPECT_EQ(a.stats().flitsInjected(), b.stats().flitsInjected());
    EXPECT_EQ(a.stats().flitsEjected(), b.stats().flitsEjected());
    EXPECT_EQ(a.stats().totalWakeups(), b.stats().totalWakeups());
    EXPECT_EQ(a.stats().avgPacketLatency(), b.stats().avgPacketLatency());
}

/**
 * March @p ref and @p alt in per-cycle stateHash() lockstep under the
 * same traffic, then drain both and compare final state and stats.
 */
void
expectLockstep(const NocConfig &refCfg, const NocConfig &altCfg,
               double load, std::uint64_t seed, Cycle cycles)
{
    NocSystem ref(refCfg);
    NocSystem alt(altCfg);
    SyntheticTraffic tr(TrafficPattern::kUniformRandom, load, seed);
    SyntheticTraffic ta(TrafficPattern::kUniformRandom, load, seed);
    ref.setWorkload(&tr);
    alt.setWorkload(&ta);
    for (Cycle i = 0; i < cycles; ++i) {
        ref.run(1);
        alt.run(1);
        ASSERT_EQ(ref.stateHash(), alt.stateHash())
            << "perf layer diverged at cycle " << (i + 1) << " (design "
            << pgDesignName(refCfg.design) << ", skip "
            << altCfg.perf.skipIdle << ", arena " << altCfg.perf.arena
            << ")";
    }
    ref.setWorkload(nullptr);
    alt.setWorkload(nullptr);
    ASSERT_TRUE(ref.runToCompletion(100000));
    ASSERT_TRUE(alt.runToCompletion(100000));
    EXPECT_EQ(ref.now(), alt.now());
    EXPECT_EQ(ref.stateHash(), alt.stateHash());
    expectSameStats(ref, alt);
    alt.checkInvariants();
}

TEST(PerfInvariance, SkipAndArenaLockstepAllDesigns)
{
    for (int d = 0; d < 4; ++d) {
        const auto design = static_cast<PgDesign>(d);
        expectLockstep(perfConfig(design, false, false),
                       perfConfig(design, true, true), 0.08, 7, 400);
    }
}

TEST(PerfInvariance, TogglesAreIndependentlyInvariant)
{
    // Each optimization alone must also be bit-identical -- a bug in one
    // must not hide behind a compensating bug in the other.
    const NocConfig ref = perfConfig(PgDesign::kNord, false, false);
    expectLockstep(ref, perfConfig(PgDesign::kNord, true, false), 0.08,
                   11, 350);
    expectLockstep(ref, perfConfig(PgDesign::kNord, false, true), 0.08,
                   11, 350);
}

TEST(PerfInvariance, LowLoadDeepSleepLockstep)
{
    // Low load is where skipping actually fires (long gated stretches):
    // the highest-risk regime for a wake edge that arrives late.
    for (PgDesign d : {PgDesign::kNord, PgDesign::kConvPgOpt}) {
        expectLockstep(perfConfig(d, false, false),
                       perfConfig(d, true, true), 0.01, 13, 600);
    }
}

TEST(PerfInvariance, CheckpointCrossesPerfSettings)
{
    // Save mid-run from the optimized system, restore into a plain one
    // (and vice versa): PerfConfig is excluded from the configuration
    // fingerprint, so the checkpoint must load, and the restored run
    // must stay in lockstep with the donor.
    const std::string path =
        ::testing::TempDir() + "/nord_perf_cross.ckpt";
    for (int dir = 0; dir < 2; ++dir) {
        const bool donorFast = (dir == 0);
        NocSystem donor(perfConfig(PgDesign::kNord, donorFast, donorFast));
        SyntheticTraffic td(TrafficPattern::kUniformRandom, 0.08, 17);
        donor.setWorkload(&td);
        donor.run(500);
        std::string err;
        ASSERT_TRUE(donor.saveCheckpoint(path, {}, &err)) << err;

        NocSystem heir(
            perfConfig(PgDesign::kNord, !donorFast, !donorFast));
        SyntheticTraffic th(TrafficPattern::kUniformRandom, 0.08, 17);
        heir.setWorkload(&th);
        ASSERT_TRUE(heir.loadCheckpoint(path, nullptr, &err)) << err;
        ASSERT_EQ(donor.stateHash(), heir.stateHash());
        for (Cycle i = 0; i < 250; ++i) {
            donor.run(1);
            heir.run(1);
            ASSERT_EQ(donor.stateHash(), heir.stateHash())
                << "diverged " << (i + 1) << " cycles after restore "
                << "(donor fast=" << donorFast << ")";
        }
        expectSameStats(donor, heir);
        std::remove(path.c_str());
    }
}

// --- Randomized soak (CI runs a seed matrix via NORD_PERF_SEED) ------------

TEST(PerfInvariance, InvarianceFaultSoak)
{
    std::uint64_t seed = 1;
    if (const char *env = std::getenv("NORD_PERF_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    NocConfig refCfg = perfConfig(PgDesign::kNord, false, false, seed);
    refCfg.fault.flitCorruptRate = 5e-4;
    refCfg.fault.flitDropRate = 5e-4;
    refCfg.fault.lostWakeupRate = 0.01;
    refCfg.verify.interval = 8;
    NocConfig altCfg = refCfg;
    altCfg.perf.skipIdle = true;
    altCfg.perf.arena = true;

    NocSystem ref(refCfg);
    NocSystem alt(altCfg);
    SyntheticTraffic tr(TrafficPattern::kUniformRandom, 0.06, seed);
    SyntheticTraffic ta(TrafficPattern::kUniformRandom, 0.06, seed);
    ref.setWorkload(&tr);
    alt.setWorkload(&ta);
    const std::string path =
        ::testing::TempDir() + "/nord_perf_soak.ckpt";
    for (Cycle i = 0; i < 3000; ++i) {
        ref.run(1);
        alt.run(1);
        ASSERT_EQ(ref.stateHash(), alt.stateHash())
            << "soak diverged at cycle " << (i + 1) << " (seed " << seed
            << ")";
        if (i == 1500) {
            // Mid-soak, one side only: checkpoint the optimized system
            // and reload it into itself. A save/restore cycle must be
            // invisible to the lockstep.
            std::string err;
            ASSERT_TRUE(alt.saveCheckpoint(path, {}, &err)) << err;
            ASSERT_TRUE(alt.loadCheckpoint(path, nullptr, &err)) << err;
            ASSERT_EQ(ref.stateHash(), alt.stateHash());
        }
    }
    ref.setWorkload(nullptr);
    alt.setWorkload(nullptr);
    ASSERT_TRUE(ref.runToCompletion(400000));
    ASSERT_TRUE(alt.runToCompletion(400000));
    EXPECT_EQ(ref.now(), alt.now());
    EXPECT_EQ(ref.stateHash(), alt.stateHash());
    expectSameStats(ref, alt);
    EXPECT_EQ(alt.auditor().unexpectedViolations(), 0u);
    alt.checkInvariants();
    std::remove(path.c_str());
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Unit tests for the routing policies (minimal adaptive, XY escape, ring
 * escape, dateline, misroute cap).
 */

#include <gtest/gtest.h>

#include "network/noc_system.hh"
#include "routing/routing_policy.hh"

namespace nord {
namespace {

Flit
headTo(NodeId src, NodeId dst)
{
    Flit f;
    f.type = FlitType::kHeadTail;
    f.src = src;
    f.dst = dst;
    f.length = 1;
    return f;
}

class ConvRoutingTest : public ::testing::Test
{
  protected:
    ConvRoutingTest()
    {
        cfg.design = PgDesign::kNoPg;
        sys = std::make_unique<NocSystem>(cfg);
        policy = std::make_unique<RoutingPolicy>(cfg, sys->mesh(),
                                                 sys->ring());
    }

    NocConfig cfg;
    std::unique_ptr<NocSystem> sys;
    std::unique_ptr<RoutingPolicy> policy;
};

TEST_F(ConvRoutingTest, LocalDelivery)
{
    RouteRequest req = policy->route(5, headTo(0, 5), Direction::kWest,
                                     sys->router(5));
    ASSERT_EQ(req.adaptive.size(), 1u);
    EXPECT_EQ(req.adaptive[0].dir, Direction::kLocal);
    EXPECT_EQ(req.escapeDir, Direction::kLocal);
}

TEST_F(ConvRoutingTest, MinimalCandidatesForDiagonal)
{
    // From 0 to 15: east and south are both minimal.
    RouteRequest req = policy->route(0, headTo(0, 15), Direction::kLocal,
                                     sys->router(0));
    ASSERT_EQ(req.adaptive.size(), 2u);
    std::set<Direction> dirs = {req.adaptive[0].dir, req.adaptive[1].dir};
    EXPECT_TRUE(dirs.count(Direction::kEast));
    EXPECT_TRUE(dirs.count(Direction::kSouth));
    EXPECT_FALSE(req.mustEscape);
}

TEST_F(ConvRoutingTest, EscapeIsXy)
{
    RouteRequest req = policy->route(0, headTo(0, 15), Direction::kLocal,
                                     sys->router(0));
    EXPECT_EQ(req.escapeDir, Direction::kEast);  // X first
    req = policy->route(3, headTo(0, 15), Direction::kWest,
                        sys->router(3));
    EXPECT_EQ(req.escapeDir, Direction::kSouth);  // aligned: Y
}

TEST_F(ConvRoutingTest, NoUturn)
{
    // At node 5 heading to 4 (west), arriving from the west port must
    // not produce a west candidate... it is the only minimal direction,
    // so the packet escapes instead.
    RouteRequest req = policy->route(5, headTo(4, 4), Direction::kWest,
                                     sys->router(5));
    for (const RouteCandidate &c : req.adaptive)
        EXPECT_NE(c.dir, Direction::kWest);
}

TEST_F(ConvRoutingTest, StraightThroughAllowed)
{
    // Arriving at 5 from the west (input port W), continuing east to 6
    // is straight through and must be a candidate.
    RouteRequest req = policy->route(5, headTo(4, 6), Direction::kWest,
                                     sys->router(5));
    ASSERT_FALSE(req.adaptive.empty());
    EXPECT_EQ(req.adaptive[0].dir, Direction::kEast);
}

TEST_F(ConvRoutingTest, OnEscapeStaysOnEscape)
{
    Flit f = headTo(0, 15);
    f.onEscape = true;
    RouteRequest req = policy->route(5, f, Direction::kNorth,
                                     sys->router(5));
    EXPECT_TRUE(req.mustEscape);
}

class NordRoutingTest : public ::testing::Test
{
  protected:
    NordRoutingTest()
    {
        cfg.design = PgDesign::kNord;
        sys = std::make_unique<NocSystem>(cfg);
    }

    const RoutingPolicy &policy() { return sys->router(0).policy(); }

    NocConfig cfg;
    std::unique_ptr<NocSystem> sys;
};

TEST_F(NordRoutingTest, EscapeIsRingOutport)
{
    for (NodeId n = 0; n < 16; ++n) {
        RouteRequest req = policy().route(
            n, headTo(0, (n + 7) % 16), Direction::kLocal,
            sys->router(n));
        if ((n + 7) % 16 != n) {
            EXPECT_EQ(req.escapeDir, sys->ring().bypassOutport(n));
        }
    }
}

TEST_F(NordRoutingTest, DatelineBumpsEscapeLevel)
{
    const auto &ring = sys->ring();
    // Exactly one node's ring edge crosses the dateline.
    int crossings = 0;
    for (NodeId n = 0; n < 16; ++n) {
        Flit f = headTo(0, 15);
        f.onEscape = true;
        f.escLevel = 0;
        int level = policy().escapeVcLevel(n, ring.bypassOutport(n), f);
        if (level == 1)
            ++crossings;
    }
    EXPECT_EQ(crossings, 1);
}

TEST_F(NordRoutingTest, EscapeLevelSticksAtOne)
{
    Flit f = headTo(0, 15);
    f.onEscape = true;
    f.escLevel = 1;
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_EQ(policy().escapeVcLevel(
                      n, sys->ring().bypassOutport(n), f), 1);
    }
}

TEST_F(NordRoutingTest, AllOnPrefersProgress)
{
    // With every router on (fresh system is on until ticked), candidates
    // exist and the best one makes minimal progress.
    RouteRequest req = policy().route(0, headTo(0, 15),
                                      Direction::kLocal, sys->router(0));
    ASSERT_FALSE(req.adaptive.empty());
    EXPECT_FALSE(req.adaptive[0].nonMinimal);
}

TEST_F(NordRoutingTest, BypassRoutingAtOffRouter)
{
    // routeAtBypass: the only way out is the ring.
    Flit f = headTo(0, 9);
    RouteRequest req = policy().routeAtBypass(1, f);
    ASSERT_EQ(req.adaptive.size(), 1u);
    EXPECT_EQ(req.adaptive[0].dir, sys->ring().bypassOutport(1));
}

TEST_F(NordRoutingTest, BypassSinksLocal)
{
    Flit f = headTo(0, 1);
    RouteRequest req = policy().routeAtBypass(1, f);
    ASSERT_EQ(req.adaptive.size(), 1u);
    EXPECT_EQ(req.adaptive[0].dir, Direction::kLocal);
}

TEST_F(NordRoutingTest, MisrouteCapForcesEscapeAtBypass)
{
    // A misrouted-to-the-cap packet whose ring hop is another detour
    // must be confined to escape resources.
    const auto &ring = sys->ring();
    // Find a node whose ring successor moves away from some dst.
    for (NodeId n = 0; n < 16; ++n) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (dst == n || dst == ring.successor(n))
                continue;
            bool nonMin = sys->mesh().manhattan(ring.successor(n), dst) >=
                          sys->mesh().manhattan(n, dst);
            if (!nonMin)
                continue;
            Flit f = headTo(0, dst);
            f.misroutes = static_cast<std::int16_t>(cfg.nordMisrouteCap);
            RouteRequest req = policy().routeAtBypass(n, f);
            EXPECT_TRUE(req.mustEscape);
            return;
        }
    }
    FAIL() << "no detour case found";
}

TEST_F(NordRoutingTest, MisrouteCapBoundaryValues)
{
    // Boundary-value audit of the cap bookkeeping, mirroring the CDG
    // pass's cross-check: at misroutes == cap - 1 a detour ring hop is
    // still offered as a (nonMinimal) candidate -- the hop that follows
    // is the one that reaches the cap -- while misroutes == cap forces
    // escape. route() at an on-router must agree: capped heads get no
    // nonMinimal adaptive candidates.
    const auto &ring = sys->ring();
    const auto cap = static_cast<std::int16_t>(cfg.nordMisrouteCap);
    ASSERT_GE(cap, 1);
    bool checkedBypass = false;
    for (NodeId n = 0; n < 16 && !checkedBypass; ++n) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (dst == n || dst == ring.successor(n))
                continue;
            bool nonMin = sys->mesh().manhattan(ring.successor(n), dst) >=
                          sys->mesh().manhattan(n, dst);
            if (!nonMin)
                continue;

            Flit belowCap = headTo(0, dst);
            belowCap.misroutes = static_cast<std::int16_t>(cap - 1);
            RouteRequest req = policy().routeAtBypass(n, belowCap);
            EXPECT_FALSE(req.mustEscape);
            ASSERT_EQ(req.adaptive.size(), 1u);
            EXPECT_EQ(req.adaptive[0].dir, ring.bypassOutport(n));
            EXPECT_TRUE(req.adaptive[0].nonMinimal);

            Flit atCap = belowCap;
            atCap.misroutes = cap;
            EXPECT_TRUE(policy().routeAtBypass(n, atCap).mustEscape);
            checkedBypass = true;
            break;
        }
    }
    EXPECT_TRUE(checkedBypass) << "no detour case found";

    // On-router side: a head at the cap never sees nonMinimal candidates,
    // one below the cap may.
    for (std::int16_t mis : {static_cast<std::int16_t>(cap - 1), cap}) {
        for (NodeId dst = 1; dst < 16; ++dst) {
            Flit f = headTo(0, dst);
            f.misroutes = mis;
            RouteRequest req =
                policy().route(0, f, Direction::kLocal, sys->router(0));
            if (mis >= cap) {
                for (const RouteCandidate &c : req.adaptive)
                    EXPECT_FALSE(c.nonMinimal)
                        << "capped head offered a detour to dst " << dst;
            }
        }
    }
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Unit tests for statistics collection.
 */

#include <gtest/gtest.h>

#include "stats/network_stats.hh"

namespace nord {
namespace {

TEST(IdlePeriodHistogram, BasicRecording)
{
    IdlePeriodHistogram h;
    h.record(3);
    h.record(7);
    h.record(50);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.totalCycles(), 60u);
    EXPECT_NEAR(h.mean(), 20.0, 1e-9);
    EXPECT_EQ(h.countAtOrBelow(10), 2u);
    EXPECT_NEAR(h.fractionAtOrBelow(10), 2.0 / 3.0, 1e-9);
}

TEST(IdlePeriodHistogram, OverflowBucket)
{
    IdlePeriodHistogram h(16);
    h.record(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.totalCycles(), 1000u);
    EXPECT_EQ(h.countAtOrBelow(16), 0u);
}

TEST(IdlePeriodHistogram, EmptyIsZero)
{
    IdlePeriodHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.fractionAtOrBelow(10), 0.0);
}

TEST(NetworkStats, IdleSamplingBuildsPeriods)
{
    NetworkStats stats(1, 0);
    // busy(2), idle(3), busy(1), idle(5)...
    Cycle t = 0;
    for (int i = 0; i < 2; ++i)
        stats.routerIdleSample(0, false, t++);
    for (int i = 0; i < 3; ++i)
        stats.routerIdleSample(0, true, t++);
    stats.routerIdleSample(0, false, t++);
    for (int i = 0; i < 5; ++i)
        stats.routerIdleSample(0, true, t++);
    stats.finalize(t);

    const IdlePeriodHistogram &h = stats.idleHistogram(0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.totalCycles(), 8u);
    EXPECT_EQ(stats.router(0).emptyCycles, 8u);
    EXPECT_EQ(stats.router(0).busyCycles, 3u);
}

TEST(NetworkStats, LatencyAccounting)
{
    NetworkStats stats(1, 0);
    Flit tail;
    tail.type = FlitType::kHeadTail;
    tail.length = 1;
    tail.createdAt = 10;
    tail.hops = 4;
    stats.packetDelivered(tail, 30);
    tail.createdAt = 20;
    tail.hops = 2;
    stats.packetDelivered(tail, 30);
    EXPECT_EQ(stats.packetsDelivered(), 2u);
    EXPECT_NEAR(stats.avgPacketLatency(), 15.0, 1e-9);
    EXPECT_NEAR(stats.avgHops(), 3.0, 1e-9);
}

TEST(NetworkStats, WarmupExcludesEarlyPackets)
{
    NetworkStats stats(1, 1000);
    Flit tail;
    tail.type = FlitType::kHeadTail;
    tail.length = 1;
    tail.createdAt = 10;  // before warmup
    stats.packetDelivered(tail, 50);
    EXPECT_EQ(stats.packetsDelivered(), 1u);
    EXPECT_EQ(stats.avgPacketLatency(), 0.0);  // not measured

    tail.createdAt = 2000;
    stats.packetDelivered(tail, 2040);
    EXPECT_NEAR(stats.avgPacketLatency(), 40.0, 1e-9);
}

TEST(NetworkStats, TotalsAggregate)
{
    NetworkStats stats(3, 0);
    stats.router(0).bufferWrites = 5;
    stats.router(1).bufferWrites = 7;
    stats.router(2).wakeups = 2;
    ActivityCounters t = stats.totals();
    EXPECT_EQ(t.bufferWrites, 12u);
    EXPECT_EQ(t.wakeups, 2u);
    EXPECT_EQ(stats.totalWakeups(), 2u);
}

TEST(NetworkStats, CombinedIdleHistogram)
{
    NetworkStats stats(2, 0);
    stats.routerIdleSample(0, true, 0);
    stats.routerIdleSample(0, false, 1);
    stats.routerIdleSample(1, true, 0);
    stats.routerIdleSample(1, true, 1);
    stats.routerIdleSample(1, false, 2);
    stats.finalize(3);
    IdlePeriodHistogram combined = stats.combinedIdleHistogram();
    EXPECT_EQ(combined.count(), 2u);
    EXPECT_EQ(combined.countAtOrBelow(1), 1u);
    EXPECT_EQ(combined.countAtOrBelow(2), 2u);
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Fault-injection campaign tests: one test per fault class proving
 * detection + recovery, plus the determinism contract (enabling the fault
 * machinery with zero rates leaves a run bit-identical) and a randomized
 * soak entry point for CI (seed via NORD_FAULT_SEED).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "common/rng.hh"
#include "network/noc_system.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

// --- RNG sub-streams (satellite: traffic replay must not change) -----------

TEST(RngStreams, TrafficStreamMatchesLegacySeed)
{
    // Pre-existing single-stream simulations seeded Rng(seed) directly;
    // the kTraffic sub-stream must replay them bit-identically.
    Rng legacy(42);
    Rng traffic(42, RngStream::kTraffic);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(legacy.next64(), traffic.next64()) << "draw " << i;
}

TEST(RngStreams, FaultStreamDecorrelated)
{
    Rng traffic(42, RngStream::kTraffic);
    Rng faults(42, RngStream::kFaults);
    Rng alloc(42, RngStream::kAllocator);
    int equalTf = 0;
    int equalFa = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t t = traffic.next64();
        const std::uint64_t f = faults.next64();
        const std::uint64_t a = alloc.next64();
        equalTf += (t == f);
        equalFa += (f == a);
    }
    EXPECT_EQ(equalTf, 0);
    EXPECT_EQ(equalFa, 0);
}

// --- Determinism: zero-rate campaign is bit-identical ----------------------

using Fingerprint = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                               std::uint64_t, std::uint64_t, double>;

Fingerprint
runFingerprint(PgDesign design, bool faultMachinery)
{
    NocConfig cfg;
    cfg.design = design;
    cfg.fault.enabled = faultMachinery;  // injector built, all rates zero
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 11);
    sys.setWorkload(&traffic);
    sys.run(1500);
    sys.setWorkload(nullptr);
    EXPECT_TRUE(sys.runToCompletion(20000));
    const NetworkStats &st = sys.stats();
    return {st.packetsCreated(), st.packetsDelivered(), st.flitsInjected(),
            st.flitsEjected(), st.totals().linkTraversals,
            st.avgPacketLatency()};
}

TEST(FaultCampaign, ZeroRateCampaignIsBitIdentical)
{
    EXPECT_EQ(runFingerprint(PgDesign::kNord, false),
              runFingerprint(PgDesign::kNord, true));
    EXPECT_EQ(runFingerprint(PgDesign::kConvPg, false),
              runFingerprint(PgDesign::kConvPg, true));
}

// --- Transient link faults recovered by the E2E layer ----------------------

NocConfig
campaignConfig(PgDesign design)
{
    NocConfig cfg;
    cfg.design = design;
    cfg.fault.enabled = true;
    cfg.fault.e2e = true;
    cfg.verify.interval = 16;
    cfg.verify.policy = AuditPolicy::kRecover;
    return cfg;
}

TEST(FaultCampaign, CorruptedFlitsRecoverViaNack)
{
    NocConfig cfg = campaignConfig(PgDesign::kNoPg);
    cfg.fault.flitCorruptRate = 2e-3;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 3);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(200000));

    ASSERT_GT(sys.injector()->counts().corrupt, 0u);
    const FlowStats flows = sys.stats().flowTotals();
    EXPECT_GT(flows.damaged, 0u);
    EXPECT_GT(flows.nacks, 0u);
    EXPECT_GT(flows.retransmits, 0u);
    // Every corruption was detected and recovered: nothing lost.
    EXPECT_EQ(sys.stats().packetsFailed(), 0u);
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

TEST(FaultCampaign, DroppedFlitsRecoverViaTimeout)
{
    NocConfig cfg = campaignConfig(PgDesign::kNoPg);
    cfg.fault.flitDropRate = 1e-3;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 5);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(300000));

    ASSERT_GT(sys.injector()->counts().drop, 0u);
    const FlowStats flows = sys.stats().flowTotals();
    EXPECT_GT(flows.retransmits, 0u);
    EXPECT_GT(flows.timeouts, 0u);
    EXPECT_EQ(sys.stats().packetsFailed(), 0u);
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

// --- Credit leaks repaired by the auditor's recover mode -------------------

TEST(FaultCampaign, CreditLeaksRepairedInRecoverMode)
{
    NocConfig cfg = campaignConfig(PgDesign::kNoPg);
    cfg.fault.creditLeakRate = 1e-3;
    cfg.verify.interval = 8;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.05, 7);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(100000));

    ASSERT_GT(sys.injector()->counts().creditLeak, 0u);
    // Every leak was announced, attributed and repaired in place.
    EXPECT_EQ(sys.auditor().recoveredFaults(),
              sys.injector()->counts().creditLeak);
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    sys.checkInvariants();
}

// --- Lost wakeups recovered by the watchdog --------------------------------

TEST(FaultCampaign, LostWakeupsRecoveredByWatchdog)
{
    NocConfig cfg = campaignConfig(PgDesign::kConvPg);
    cfg.fault.e2e = false;  // nothing is lost; delivery must be exact
    cfg.fault.lostWakeupRate = 0.02;
    cfg.fault.lostWakeupStall = 1u << 20;  // effectively stuck-at-off
    cfg.fault.wakeupWatchdog = 64;
    cfg.verify.interval = 8;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.03, 9);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(100000));

    ASSERT_GT(sys.injector()->counts().lostWakeup, 0u);
    std::uint64_t watchdogWakes = 0;
    for (NodeId id = 0; id < cfg.numNodes(); ++id)
        watchdogWakes += sys.controller(id).watchdogWakes();
    EXPECT_GE(watchdogWakes, 1u);
    // A lost wakeup only delays packets; none may be dropped.
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

TEST(FaultCampaign, ShortSuppressionRecoversWithoutWatchdog)
{
    NocConfig cfg = campaignConfig(PgDesign::kConvPg);
    cfg.fault.e2e = false;
    cfg.fault.wakeupWatchdog = 512;
    // One scheduled lost wakeup whose window expires long before the
    // watchdog: the handshake must recover naturally.
    cfg.fault.schedule.push_back(
        {100, FaultClass::kLostWakeup, 5, 16});
    cfg.verify.interval = 8;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.03, 13);
    sys.setWorkload(&traffic);
    sys.run(1500);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(50000));

    EXPECT_EQ(sys.injector()->counts().lostWakeup, 1u);
    std::uint64_t watchdogWakes = 0;
    for (NodeId id = 0; id < cfg.numNodes(); ++id)
        watchdogWakes += sys.controller(id).watchdogWakes();
    EXPECT_EQ(watchdogWakes, 0u);
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

// --- Dead router: NoRD keeps the node reachable ----------------------------

TEST(FaultCampaign, DeadNordRouterNodeStaysReachable)
{
    NocConfig cfg;
    cfg.design = PgDesign::kNord;
    cfg.verify.interval = 8;
    cfg.verify.policy = AuditPolicy::kRecover;
    NocSystem sys(cfg);

    const NodeId victim = 5;  // interior router
    sys.killRouter(victim);
    EXPECT_TRUE(sys.controller(victim).dead());

    // Traffic to, from and through the dead router's node.
    sys.inject(0, victim, 5);
    sys.inject(victim, 15, 5);
    sys.inject(victim, 0, 1);
    sys.inject(10, victim, 1);
    sys.inject(1, 9, 3);  // minimal path crosses the victim column
    ASSERT_TRUE(sys.runToCompletion(50000));

    // The bypass ring delivered everything despite the dead router.
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_EQ(sys.stats().packetsFailed(), 0u);
    // The dead router ended (and stays) gated; its node lives on the ring.
    EXPECT_EQ(sys.controller(victim).state(), PowerState::kOff);
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

// --- Dead router: baselines degrade gracefully -----------------------------

TEST(FaultCampaign, DeadConvRouterDegradesGracefully)
{
    NocConfig cfg;
    cfg.design = PgDesign::kConvPg;
    cfg.verify.interval = 8;
    cfg.verify.policy = AuditPolicy::kRecover;
    NocSystem sys(cfg);

    const NodeId victim = 5;
    sys.killRouter(victim);

    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.04, 17);
    sys.setWorkload(&traffic);
    sys.run(1500);
    sys.setWorkload(nullptr);
    // No hang: packets into the dead router are eaten, packets from its
    // node are dropped at the source, everything else drains normally.
    ASSERT_TRUE(sys.runToCompletion(50000));

    EXPECT_GT(sys.stats().packetsFailed(), 0u);
    EXPECT_GT(sys.stats().flitsEaten(), 0u);
    // Graceful degradation: every packet is either delivered or accounted
    // as failed -- nothing silently vanishes.
    EXPECT_EQ(sys.stats().packetsDelivered() + sys.stats().packetsFailed(),
              sys.stats().packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

// --- Satellite (a): injectForcedOff goes through the transition path -------

TEST(FaultCampaign, ForcedOffRoutesThroughTransitionPath)
{
    NocConfig cfg;
    cfg.design = PgDesign::kConvPg;
    cfg.verify.interval = 1;  // sweep every cycle; kAbort would panic
    NocSystem sys(cfg);

    // Force an idle, empty router off: the transition must be coherent
    // (listener fired, sleep counter advanced, router sleep hook run), so
    // the auditor stays silent and the FSM still wakes on demand.
    const NodeId victim = 5;
    ASSERT_TRUE(sys.router(victim).datapathEmpty());
    const PowerState before = sys.controller(victim).state();
    sys.controller(victim).injectForcedOff(sys.now());
    EXPECT_EQ(sys.controller(victim).state(), PowerState::kOff);
    EXPECT_GE(sys.stats().router(victim).sleeps,
              before == PowerState::kOn ? 1u : 0u);

    // Traffic through and to the forced-off router wakes it normally.
    sys.inject(1, 9, 5);
    sys.inject(0, victim, 3);
    ASSERT_TRUE(sys.runToCompletion(20000));
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_TRUE(sys.auditor().violations().empty());
    sys.checkInvariants();
}

// --- Acceptance: 8x8 NoRD, mid load, 1e-4 transients -----------------------

TEST(FaultCampaign, Nord8x8MidLoadTransientAcceptance)
{
    NocConfig cfg = campaignConfig(PgDesign::kNord);
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.fault.flitCorruptRate = 1e-4;
    cfg.fault.flitDropRate = 1e-4;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.10, 21);
    sys.setWorkload(&traffic);
    sys.run(2500);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(300000));

    ASSERT_GT(sys.injector()->counts().corrupt +
                  sys.injector()->counts().drop, 0u);
    // 100% delivery through retransmission.
    EXPECT_EQ(sys.stats().packetsFailed(), 0u);
    EXPECT_EQ(sys.stats().packetsDelivered(), sys.stats().packetsCreated());
    EXPECT_GT(sys.stats().flowTotals().retransmits, 0u);
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

// --- Randomized soak (CI runs a seed matrix via NORD_FAULT_SEED) -----------

TEST(FaultCampaign, FaultSoak)
{
    std::uint64_t seed = 1;
    if (const char *env = std::getenv("NORD_FAULT_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    NocConfig cfg = campaignConfig(PgDesign::kNord);
    cfg.seed = seed;
    cfg.fault.flitCorruptRate = 5e-4;
    cfg.fault.flitDropRate = 5e-4;
    cfg.fault.creditLeakRate = 1e-4;
    cfg.fault.lostWakeupRate = 0.01;
    cfg.verify.interval = 8;
    NocSystem sys(cfg);
    SyntheticTraffic traffic(TrafficPattern::kUniformRandom, 0.06, seed);
    sys.setWorkload(&traffic);
    sys.run(2000);
    sys.setWorkload(nullptr);
    ASSERT_TRUE(sys.runToCompletion(400000));

    // Relaxed accounting: losses are legal under a heavy campaign, but
    // every packet must be delivered or accounted failed, and the auditor
    // must attribute every anomaly to an injected fault.
    const NetworkStats &st = sys.stats();
    EXPECT_LE(st.packetsDelivered(), st.packetsCreated());
    EXPECT_GE(st.packetsDelivered() + st.packetsFailed(),
              st.packetsCreated());
    EXPECT_EQ(sys.auditor().unexpectedViolations(), 0u);
    sys.checkInvariants();
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Unit tests for flit/credit links and direct router interfaces, using a
 * standalone router instance.
 */

#include <gtest/gtest.h>

#include "network/link.hh"
#include "powergate/pg_controller.hh"
#include "router/router.hh"
#include "stats/network_stats.hh"
#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {
namespace {

class LinkTest : public ::testing::Test
{
  protected:
    LinkTest()
        : mesh(2, 2), ring(mesh), stats(4, 0),
          router(0, cfg, mesh, ring, stats),
          ctrl(router, cfg, stats.router(0))
    {
        router.setController(&ctrl);
    }

    static NocConfig makeCfg()
    {
        NocConfig c;
        c.rows = 2;
        c.cols = 2;
        c.design = PgDesign::kNoPg;
        return c;
    }

    NocConfig cfg = makeCfg();
    MeshTopology mesh;
    BypassRing ring;
    NetworkStats stats;
    Router router;
    NoPgController ctrl;
};

Flit
makeFlit(VcId vc, int seq = 0, FlitType type = FlitType::kHeadTail)
{
    Flit f;
    f.packet = 1;
    f.src = 1;
    f.dst = 0;
    f.vc = vc;
    f.seq = static_cast<std::int16_t>(seq);
    f.type = type;
    return f;
}

TEST_F(LinkTest, DeliversAtDueCycle)
{
    FlitLink link(&router, Direction::kEast);
    link.push(makeFlit(0), 5);
    EXPECT_EQ(link.inFlight(), 1u);
    link.tick(4);
    EXPECT_EQ(router.bufferedFlits(), 0);
    link.tick(5);
    EXPECT_EQ(router.bufferedFlits(), 1);
    EXPECT_TRUE(link.empty());
    EXPECT_EQ(stats.router(0).bufferWrites, 1u);
}

TEST_F(LinkTest, SerializesEqualDueTimes)
{
    FlitLink link(&router, Direction::kEast);
    link.push(makeFlit(0, 0, FlitType::kHead), 5);
    link.push(makeFlit(1, 0, FlitType::kHead), 5);  // same wire cycle
    link.tick(5);
    EXPECT_EQ(router.bufferedFlits(), 1);  // second clamped to cycle 6
    link.tick(6);
    EXPECT_EQ(router.bufferedFlits(), 2);
}

TEST_F(LinkTest, PreservesFifoWhenLaterPushIsEarlier)
{
    FlitLink link(&router, Direction::kEast);
    link.push(makeFlit(0, 0, FlitType::kHead), 8);
    link.push(makeFlit(0, 1, FlitType::kTail), 6);  // would overtake
    link.tick(8);
    EXPECT_EQ(router.bufferedFlits(), 1);
    link.tick(9);
    EXPECT_EQ(router.bufferedFlits(), 2);
}

TEST_F(LinkTest, CountsTraversals)
{
    FlitLink link(&router, Direction::kEast);
    for (int i = 0; i < 4; ++i)
        link.push(makeFlit(i % cfg.numVcs, i, FlitType::kHeadTail),
                  i + 1);
    EXPECT_EQ(link.traversals(), 4u);
}

TEST_F(LinkTest, CreditLinkRestoresCredits)
{
    // Consume a credit by routing a flit out, then return it.
    CreditLink credits(&router, Direction::kEast);
    credits.push(2, 3);
    // Before: full.
    credits.tick(2);
    // Deliver: must not exceed bufferDepth, so first spend one.
    // (acceptCredit asserts <= depth; spend via a pipeline send.)
    // Direct unit check: push beyond depth panics, so only verify the
    // delivery timing here with a spent credit.
    SUCCEED();
}

TEST_F(LinkTest, BufferOverflowIsFatal)
{
    FlitLink link(&router, Direction::kEast);
    for (int i = 0; i <= cfg.bufferDepth; ++i)
        link.push(makeFlit(0, i, FlitType::kBody), 1);
    // Delivering depth+1 flits into one VC buffer violates flow control.
    EXPECT_DEATH({
        for (Cycle t = 0; t < 10; ++t)
            link.tick(t);
    }, "overflow");
}

TEST_F(LinkTest, RouterNamesAreStable)
{
    EXPECT_EQ(router.name(), "router0");
    FlitLink link(&router, Direction::kEast);
    EXPECT_EQ(link.name(), "flink->0E");
}

}  // namespace
}  // namespace nord

/**
 * @file
 * Checkpoint/restore tests: bit-exact resume.
 *
 * The contract under test: a run restored from a checkpoint reproduces the
 * uninterrupted run's per-cycle state hashes and final statistics exactly,
 * for every power-gating design, with the fault campaign and the E2E
 * resilience layer on or off. Plus the rejection paths -- wrong format
 * version, wrong configuration fingerprint, corrupt payload -- which must
 * fail with a diagnosis instead of loading garbage or panicking.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/state_serializer.hh"
#include "network/noc_system.hh"
#include "traffic/parsec_workload.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace {

NocConfig
ckptConfig(PgDesign design, bool faults = false)
{
    NocConfig cfg;
    cfg.design = design;
    if (faults) {
        cfg.fault.enabled = true;
        cfg.fault.e2e = true;
        cfg.fault.flitCorruptRate = 1e-4;
        cfg.fault.flitDropRate = 1e-4;
        cfg.fault.creditLeakRate = 5e-5;
        cfg.verify.interval = 64;
        cfg.verify.policy = AuditPolicy::kRecover;
    }
    return cfg;
}

/** Stats fields compared between a golden and a resumed run. */
struct StatsFingerprint
{
    std::uint64_t created, delivered, failed, injected, ejected;
    std::uint64_t traversals, wakeups;
    double latency, hops;

    bool operator==(const StatsFingerprint &o) const
    {
        return created == o.created && delivered == o.delivered &&
               failed == o.failed && injected == o.injected &&
               ejected == o.ejected && traversals == o.traversals &&
               wakeups == o.wakeups && latency == o.latency &&
               hops == o.hops;
    }
};

StatsFingerprint
fingerprint(const NocSystem &sys)
{
    const NetworkStats &st = sys.stats();
    return {st.packetsCreated(), st.packetsDelivered(),
            st.packetsFailed(), st.flitsInjected(), st.flitsEjected(),
            st.totals().linkTraversals, st.totalWakeups(),
            st.avgPacketLatency(), st.avgHops()};
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/**
 * Save sys1 mid-run, restore into a freshly built twin, then march both
 * in lockstep asserting per-cycle hash equality.
 */
void
expectLockstepAfterRestore(const NocConfig &cfg, TrafficPattern pattern,
                           Cycle warm, Cycle lockstep)
{
    NocSystem sys1(cfg);
    SyntheticTraffic t1(pattern, 0.08, 7);
    sys1.setWorkload(&t1);
    sys1.run(warm);

    StateSerializer save(SerialMode::kSave);
    sys1.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    NocSystem sys2(cfg);
    SyntheticTraffic t2(pattern, 0.08, 7);
    sys2.setWorkload(&t2);
    StateSerializer load(save.takeBuffer());
    sys2.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_TRUE(load.exhausted());

    ASSERT_EQ(sys1.now(), sys2.now());
    ASSERT_EQ(sys1.stateHash(), sys2.stateHash());
    for (Cycle i = 0; i < lockstep; ++i) {
        sys1.run(1);
        sys2.run(1);
        ASSERT_EQ(sys1.stateHash(), sys2.stateHash())
            << "state diverged " << (i + 1) << " cycles after restore "
            << "(design " << pgDesignName(cfg.design) << ")";
    }
    EXPECT_EQ(fingerprint(sys1), fingerprint(sys2));
}

TEST(Checkpoint, RoundTripLockstepAllDesigns)
{
    for (int d = 0; d < 4; ++d) {
        expectLockstepAfterRestore(
            ckptConfig(static_cast<PgDesign>(d)),
            TrafficPattern::kUniformRandom, 600, 250);
    }
}

TEST(Checkpoint, RoundTripLockstepTransposePattern)
{
    expectLockstepAfterRestore(ckptConfig(PgDesign::kNord),
                               TrafficPattern::kTranspose, 600, 250);
}

TEST(Checkpoint, RoundTripLockstepWithFaultsAndE2e)
{
    for (PgDesign d : {PgDesign::kNord, PgDesign::kConvPg}) {
        expectLockstepAfterRestore(ckptConfig(d, true),
                                   TrafficPattern::kUniformRandom, 800,
                                   300);
    }
}

TEST(Checkpoint, MidDrainCheckpointCompletesIdentically)
{
    // Checkpoint after traffic stops but before the network drains, while
    // flits are still in flight: the restored run must drain to the same
    // cycle with the same final statistics.
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    NocSystem sys1(cfg);
    SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.10, 3);
    sys1.setWorkload(&t1);
    sys1.run(500);
    sys1.setWorkload(nullptr);
    sys1.run(5);  // mid-drain: queues are busy emptying
    ASSERT_FALSE(sys1.drained());

    StateSerializer save(SerialMode::kSave);
    sys1.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    NocSystem sys2(cfg);
    StateSerializer load(save.takeBuffer());
    sys2.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_TRUE(load.exhausted());

    EXPECT_TRUE(sys1.runToCompletion(100000));
    EXPECT_TRUE(sys2.runToCompletion(100000));
    EXPECT_EQ(sys1.now(), sys2.now());
    EXPECT_EQ(sys1.stateHash(), sys2.stateHash());
    EXPECT_EQ(fingerprint(sys1), fingerprint(sys2));
    sys2.checkInvariants();
}

TEST(Checkpoint, ResumeFromFileMatchesGoldenRun)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNord, true);
    const Cycle warm = 700;
    const Cycle rest = 900;

    // Golden: one uninterrupted run.
    NocSystem golden(cfg);
    SyntheticTraffic tg(TrafficPattern::kUniformRandom, 0.08, 7);
    golden.setWorkload(&tg);
    golden.run(warm + rest);

    // Interrupted: run to the checkpoint, write it, then resume in a
    // process-fresh system (new NocSystem + new workload objects).
    const std::string path = tmpPath("nord_resume.ckpt");
    {
        NocSystem sys(cfg);
        SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
        sys.setWorkload(&t);
        sys.run(warm);
        std::string err;
        ASSERT_TRUE(sys.saveCheckpoint(path, {1, 2, 3, 4}, &err)) << err;
    }
    NocSystem resumed(cfg);
    SyntheticTraffic tr(TrafficPattern::kUniformRandom, 0.08, 7);
    resumed.setWorkload(&tr);
    std::array<std::uint64_t, 4> user{};
    std::string err;
    ASSERT_TRUE(resumed.loadCheckpoint(path, &user, &err)) << err;
    EXPECT_EQ(user, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
    EXPECT_EQ(resumed.now(), warm);
    resumed.run(rest);

    EXPECT_EQ(golden.now(), resumed.now());
    EXPECT_EQ(golden.stateHash(), resumed.stateHash());
    EXPECT_EQ(fingerprint(golden), fingerprint(resumed));
    std::remove(path.c_str());
}

TEST(Checkpoint, ParsecWorkloadRoundTrip)
{
    // Closed-loop workload: per-core scripts, RNGs and pending replies
    // must all restore, or issue timing diverges immediately.
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    ParsecParams params = parsecByName("blackscholes");
    params.transactionsPerCore = 40;

    NocSystem sys1(cfg);
    ParsecWorkload w1(params, 5);
    sys1.setWorkload(&w1);
    sys1.run(1500);

    StateSerializer save(SerialMode::kSave);
    sys1.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    NocSystem sys2(cfg);
    ParsecWorkload w2(params, 5);
    sys2.setWorkload(&w2);
    StateSerializer load(save.takeBuffer());
    sys2.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_TRUE(load.exhausted());

    EXPECT_EQ(sys1.runToCompletion(2000000),
              sys2.runToCompletion(2000000));
    EXPECT_EQ(sys1.now(), sys2.now());
    EXPECT_EQ(w1.completedTransactions(), w2.completedTransactions());
    EXPECT_EQ(fingerprint(sys1), fingerprint(sys2));
}

TEST(Checkpoint, VersionMismatchRejected)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNoPg);
    NocSystem sys(cfg);
    const std::string path = tmpPath("nord_version.ckpt");
    std::string err;
    ASSERT_TRUE(sys.saveCheckpoint(path, {}, &err)) << err;

    // Bump the on-disk format version (byte 4, after the 32-bit magic).
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4, SEEK_SET);
    const std::uint32_t bogus = kCheckpointVersion + 1;
    ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
    std::fclose(f);

    NocSystem fresh(cfg);
    EXPECT_FALSE(fresh.loadCheckpoint(path, nullptr, &err));
    EXPECT_NE(err.find("version mismatch"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(Checkpoint, ConfigFingerprintMismatchRejected)
{
    NocSystem nord(ckptConfig(PgDesign::kNord));
    const std::string path = tmpPath("nord_config.ckpt");
    std::string err;
    ASSERT_TRUE(nord.saveCheckpoint(path, {}, &err)) << err;

    NocSystem conv(ckptConfig(PgDesign::kConvPg));
    EXPECT_FALSE(conv.loadCheckpoint(path, nullptr, &err));
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(Checkpoint, CorruptPayloadRejectedWithoutPanic)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    NocSystem sys(cfg);
    SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&t);
    sys.run(300);
    const std::string path = tmpPath("nord_corrupt.ckpt");
    std::string err;
    ASSERT_TRUE(sys.saveCheckpoint(path, {}, &err)) << err;

    // Flip one byte deep inside the payload.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -64, SEEK_END);
    std::uint8_t b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    std::fseek(f, -1, SEEK_CUR);
    b ^= 0xff;
    ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
    std::fclose(f);

    NocSystem fresh(cfg);
    SyntheticTraffic tf(TrafficPattern::kUniformRandom, 0.08, 7);
    fresh.setWorkload(&tf);
    EXPECT_FALSE(fresh.loadCheckpoint(path, nullptr, &err));
    EXPECT_NE(err.find("hash mismatch"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(Checkpoint, AuditorRecoverStateSurvivesRestore)
{
    // A recover-mode campaign leaks credits the auditor repairs and
    // attributes to the injector. After a restore that attribution must
    // carry over: the resumed run's first sweeps raise no unexpected
    // violations and its recovery tally marches in lockstep with the
    // uninterrupted run's.
    NocConfig cfg = ckptConfig(PgDesign::kNord, true);
    cfg.fault.creditLeakRate = 5e-4;  // leak hard enough to see repairs

    NocSystem sys1(cfg);
    SyntheticTraffic t1(TrafficPattern::kUniformRandom, 0.10, 11);
    sys1.setWorkload(&t1);
    sys1.run(2000);

    StateSerializer save(SerialMode::kSave);
    sys1.saveState(save);
    ASSERT_TRUE(save.ok()) << save.error();

    NocSystem sys2(cfg);
    SyntheticTraffic t2(TrafficPattern::kUniformRandom, 0.10, 11);
    sys2.setWorkload(&t2);
    StateSerializer load(save.takeBuffer());
    sys2.loadState(load);
    ASSERT_TRUE(load.ok()) << load.error();
    ASSERT_TRUE(load.exhausted());

    const std::uint64_t sweepsAtRestore = sys2.auditor().sweepCount();
    sys1.run(1000);
    sys2.run(1000);
    EXPECT_GT(sys2.auditor().sweepCount(), sweepsAtRestore);
    EXPECT_EQ(sys1.auditor().unexpectedViolations(),
              sys2.auditor().unexpectedViolations());
    EXPECT_EQ(sys2.auditor().unexpectedViolations(), 0u);
    EXPECT_EQ(sys1.auditor().recoveredFaults(),
              sys2.auditor().recoveredFaults());
    EXPECT_GT(sys2.auditor().recoveredFaults(), 0u);
    EXPECT_EQ(sys1.stateHash(), sys2.stateHash());
}

// ---------------------------------------------------------------------
// Container fuzz: truncations and bit flips.
//
// The campaign orchestrator restarts workers from whatever checkpoint a
// SIGKILL left behind, so the loader must survive arbitrary damage: every
// truncation and every single-bit flip must fail with a diagnostic --
// never crash, never allocate absurdly (the header digest guards paySize
// before it is trusted), and never leave the system partially loaded
// (loadCheckpoint is transactional: on failure the pre-call state is
// rolled back).
// ---------------------------------------------------------------------

std::vector<unsigned char>
slurpBytes(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<unsigned char> bytes;
    unsigned char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spewBytes(const std::string &path, const std::vector<unsigned char> &b)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!b.empty()) {
        ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
    }
    ASSERT_EQ(std::fclose(f), 0);
}

/**
 * Fixed header size: magic u32, version u32, then fingerprint, cycle,
 * user[4], paySize, payHash, metaHash as u64 (see checkpoint.cc).
 */
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 * 9;

/**
 * Assert that loading @p path into a warmed system fails with a
 * diagnostic and rolls the system back to its pre-call state exactly.
 */
void
expectRejectedWithRollback(NocSystem &victim, const std::string &path,
                           const std::string &what)
{
    const std::uint64_t before = victim.stateHash();
    const Cycle now = victim.now();
    std::string err;
    EXPECT_FALSE(victim.loadCheckpoint(path, nullptr, &err)) << what;
    EXPECT_FALSE(err.empty()) << what << ": failure must carry a "
                                         "diagnostic";
    EXPECT_EQ(victim.now(), now) << what;
    EXPECT_EQ(victim.stateHash(), before)
        << what << ": failed load must roll back, not leave a "
                   "half-deserialized system";
}

TEST(CheckpointFuzz, EveryTruncationRejectedWithRollback)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    NocSystem sys(cfg);
    SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&t);
    sys.run(300);
    const std::string golden = tmpPath("fuzz_trunc_golden.ckpt");
    std::string err;
    ASSERT_TRUE(sys.saveCheckpoint(golden, {}, &err)) << err;
    const std::vector<unsigned char> intact = slurpBytes(golden);
    ASSERT_GT(intact.size(), kHeaderBytes);

    NocSystem victim(cfg);
    SyntheticTraffic tv(TrafficPattern::kUniformRandom, 0.08, 7);
    victim.setWorkload(&tv);
    victim.run(150);

    const std::string path = tmpPath("fuzz_trunc.ckpt");
    std::vector<std::size_t> cuts;
    // Every boundary inside the header, including the exact section
    // boundaries (magic|version|fingerprint|cycle|user|size|hash|digest).
    for (std::size_t n = 0; n <= kHeaderBytes; ++n)
        cuts.push_back(n);
    // A spread of payload truncations up to one-byte-short.
    const std::size_t pay = intact.size() - kHeaderBytes;
    for (int i = 1; i <= 16; ++i)
        cuts.push_back(kHeaderBytes + (pay * i) / 17);
    cuts.push_back(intact.size() - 1);
    for (std::size_t cut : cuts) {
        ASSERT_LT(cut, intact.size());
        spewBytes(path, {intact.begin(),
                         intact.begin() + static_cast<long>(cut)});
        expectRejectedWithRollback(
            victim, path,
            "truncated to " + std::to_string(cut) + " bytes");
    }

    // Control: the intact file still loads, so the harness is not
    // vacuously passing.
    std::string ok;
    EXPECT_TRUE(victim.loadCheckpoint(golden, nullptr, &ok)) << ok;
    EXPECT_EQ(victim.stateHash(), sys.stateHash());
    std::remove(golden.c_str());
    std::remove(path.c_str());
}

TEST(CheckpointFuzz, EveryHeaderBitFlipRejectedWithRollback)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    NocSystem sys(cfg);
    SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&t);
    sys.run(300);
    const std::string golden = tmpPath("fuzz_flip_golden.ckpt");
    std::string err;
    ASSERT_TRUE(sys.saveCheckpoint(golden, {1, 2, 3, 4}, &err)) << err;
    const std::vector<unsigned char> intact = slurpBytes(golden);

    NocSystem victim(cfg);
    SyntheticTraffic tv(TrafficPattern::kUniformRandom, 0.08, 7);
    victim.setWorkload(&tv);
    victim.run(150);

    const std::string path = tmpPath("fuzz_flip.ckpt");
    std::vector<unsigned char> bytes = intact;
    for (std::size_t byte = 0; byte < kHeaderBytes; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            bytes[byte] =
                static_cast<unsigned char>(intact[byte] ^ (1u << bit));
            spewBytes(path, bytes);
            expectRejectedWithRollback(
                victim, path,
                "bit " + std::to_string(bit) + " of header byte " +
                    std::to_string(byte));
            bytes[byte] = intact[byte];
        }
    }

    // The paySize field specifically: a flipped high bit must be caught
    // by the header digest, not by an attempted multi-exabyte vector.
    const std::size_t paySizeOff = 4 + 4 + 8 + 8 + 32;
    bytes[paySizeOff + 7] ^= 0x80;  // top bit of the little-endian u64
    spewBytes(path, bytes);
    std::string diag;
    EXPECT_FALSE(victim.loadCheckpoint(path, nullptr, &diag));
    EXPECT_NE(diag.find("digest"), std::string::npos) << diag;
    std::remove(golden.c_str());
    std::remove(path.c_str());
}

TEST(CheckpointFuzz, SampledPayloadBitFlipsRejectedWithRollback)
{
    const NocConfig cfg = ckptConfig(PgDesign::kNord);
    NocSystem sys(cfg);
    SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&t);
    sys.run(300);
    const std::string golden = tmpPath("fuzz_pay_golden.ckpt");
    std::string err;
    ASSERT_TRUE(sys.saveCheckpoint(golden, {}, &err)) << err;
    const std::vector<unsigned char> intact = slurpBytes(golden);
    const std::size_t pay = intact.size() - kHeaderBytes;
    ASSERT_GT(pay, 64u);

    NocSystem victim(cfg);
    SyntheticTraffic tv(TrafficPattern::kUniformRandom, 0.08, 7);
    victim.setWorkload(&tv);
    victim.run(150);

    const std::string path = tmpPath("fuzz_pay.ckpt");
    std::vector<unsigned char> bytes = intact;
    for (int i = 0; i < 64; ++i) {
        // Deterministic spread over the payload, cycling the flipped bit.
        const std::size_t off = kHeaderBytes + (pay * i) / 64;
        bytes[off] = static_cast<unsigned char>(intact[off] ^
                                                (1u << (i % 8)));
        spewBytes(path, bytes);
        expectRejectedWithRollback(victim, path,
                                   "payload byte " + std::to_string(off));
        bytes[off] = intact[off];
    }
    std::remove(golden.c_str());
    std::remove(path.c_str());
}

TEST(Checkpoint, HashModeMatchesSaveBufferDigest)
{
    // stateHash() (kHash walk) must equal the FNV digest of the kSave
    // buffer: the two walks visit identical bytes.
    NocSystem sys(ckptConfig(PgDesign::kNord));
    SyntheticTraffic t(TrafficPattern::kUniformRandom, 0.08, 7);
    sys.setWorkload(&t);
    sys.run(400);

    StateSerializer save(SerialMode::kSave);
    sys.saveState(save);
    ASSERT_TRUE(save.ok());
    EXPECT_EQ(sys.stateHash(), fnv1a(save.buffer()));
}

}  // namespace
}  // namespace nord

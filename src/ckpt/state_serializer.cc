/**
 * @file
 * StateSerializer implementation.
 */

#include "ckpt/state_serializer.hh"

#include "common/flit.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace nord {

StateSerializer::StateSerializer(SerialMode mode)
    : mode_(mode)
{
    NORD_ASSERT(mode != SerialMode::kLoad,
                "load mode requires a payload buffer");
}

StateSerializer::StateSerializer(std::vector<std::uint8_t> payload)
    : mode_(SerialMode::kLoad),
      buf_(std::move(payload))
{
}

void
StateSerializer::fail(const std::string &what)
{
    if (error_.empty())
        error_ = what;
}

void
StateSerializer::bytes(void *p, std::size_t n)
{
    if (!ok()) {
        if (loading())
            std::memset(p, 0, n);
        return;
    }
    switch (mode_) {
      case SerialMode::kSave:
        buf_.insert(buf_.end(), static_cast<std::uint8_t *>(p),
                    static_cast<std::uint8_t *>(p) + n);
        break;
      case SerialMode::kLoad:
        if (cursor_ + n > buf_.size()) {
            fail(detail::formatString(
                "checkpoint truncated: need %zu bytes at offset %zu of %zu",
                n, cursor_, buf_.size()));
            std::memset(p, 0, n);
            return;
        }
        std::memcpy(p, buf_.data() + cursor_, n);
        cursor_ += n;
        break;
      case SerialMode::kHash:
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= static_cast<const std::uint8_t *>(p)[i];
            hash_ *= kFnvPrime;
        }
        break;
    }
}

void
StateSerializer::section(std::uint32_t tag)
{
    std::uint32_t seen = tag;
    bytes(&seen, sizeof(seen));
    if (loading() && ok() && seen != tag) {
        fail(detail::formatString(
            "checkpoint section mismatch at offset %zu: "
            "expected %08x, found %08x",
            cursor_ - sizeof(seen), tag, seen));
    }
}

void
StateSerializer::io(std::string &v)
{
    std::uint64_t n = v.size();
    io(n);
    if (loading()) {
        if (!ok() || cursor_ + n > buf_.size()) {
            fail("checkpoint truncated inside string");
            v.clear();
            return;
        }
        v.assign(reinterpret_cast<const char *>(buf_.data() + cursor_),
                 static_cast<std::size_t>(n));
        cursor_ += static_cast<std::size_t>(n);
    } else {
        for (char &c : v)
            bytes(&c, 1);
    }
}

void
StateSerializer::io(Rng &rng)
{
    std::array<std::uint64_t, 4> s = rng.rawState();
    for (std::uint64_t &w : s)
        io(w);
    if (loading())
        rng.setRawState(s);
}

void
StateSerializer::io(Flit &f)
{
    io(f.packet);
    io(f.src);
    io(f.dst);
    io(f.type);
    io(f.length);
    io(f.seq);
    io(f.createdAt);
    io(f.injectedAt);
    io(f.hops);
    io(f.misroutes);
    io(f.onEscape);
    io(f.escLevel);
    io(f.vc);
    io(f.tag);
    io(f.kind);
    io(f.faultFlags);
    io(f.e2eSeq);
    io(f.ackSeq);
    io(f.nackSeq);
    io(f.payload);
    io(f.checksum);
    for (std::int16_t &n : f.visited)
        io(n);
    io(f.visitedCount);
}

void
StateSerializer::io(PacketDescriptor &d)
{
    io(d.src);
    io(d.dst);
    io(d.length);
    io(d.createdAt);
    io(d.tag);
}

}  // namespace nord

/**
 * @file
 * Checkpoint container implementation.
 */

#include "ckpt/checkpoint.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace nord {

namespace {

void
setErr(std::string *err, std::string what)
{
    if (err)
        *err = std::move(what);
}

bool
writeAll(std::FILE *f, const void *p, std::size_t n)
{
    return std::fwrite(p, 1, n, f) == n;
}

bool
readAll(std::FILE *f, void *p, std::size_t n)
{
    return std::fread(p, 1, n, f) == n;
}

}  // namespace

bool
fsyncParentDir(const std::string &path, std::string *err)
{
#ifndef _WIN32
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        setErr(err, detail::formatString("cannot open directory %s: %s",
                                         dir.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    const bool ok = fsync(fd) == 0;
    if (!ok)
        setErr(err, detail::formatString("fsync of directory %s failed: %s",
                                         dir.c_str(),
                                         std::strerror(errno)));
    if (::close(fd) != 0) {
        // The fsync result already told us whether the entry is durable.
    }
    return ok;
#else
    (void)path;
    (void)err;
    return true;
#endif
}

std::uint64_t
fnv1a(const std::vector<std::uint8_t> &bytes)
{
    return fnv1aFold(StateSerializer::kFnvOffset,
                     bytes.empty() ? nullptr : bytes.data(),
                     bytes.size());
}

std::uint64_t
fnv1aFold(std::uint64_t h, const void *p, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= StateSerializer::kFnvPrime;
    }
    return h;
}

namespace {

/** Digest of the header fields the payload hash cannot protect. */
std::uint64_t
headerDigest(const CheckpointMeta &meta, std::uint64_t paySize,
             std::uint64_t payHash)
{
    std::uint64_t h = StateSerializer::kFnvOffset;
    h = fnv1aFold(h, &meta.version, sizeof(meta.version));
    h = fnv1aFold(h, &meta.configFingerprint,
                  sizeof(meta.configFingerprint));
    h = fnv1aFold(h, &meta.cycle, sizeof(meta.cycle));
    h = fnv1aFold(h, meta.user.data(),
                  sizeof(std::uint64_t) * meta.user.size());
    h = fnv1aFold(h, &paySize, sizeof(paySize));
    h = fnv1aFold(h, &payHash, sizeof(payHash));
    return h;
}

}  // namespace

bool
writeCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                    const std::vector<std::uint8_t> &payload,
                    std::string *err)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        setErr(err, detail::formatString("cannot open %s: %s", tmp.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    const std::uint64_t paySize = payload.size();
    const std::uint64_t payHash = fnv1a(payload);
    const std::uint64_t metaHash = headerDigest(meta, paySize, payHash);
    bool ok = writeAll(f, &kCheckpointMagic, sizeof(kCheckpointMagic)) &&
              writeAll(f, &meta.version, sizeof(meta.version)) &&
              writeAll(f, &meta.configFingerprint,
                       sizeof(meta.configFingerprint)) &&
              writeAll(f, &meta.cycle, sizeof(meta.cycle)) &&
              writeAll(f, meta.user.data(),
                       sizeof(std::uint64_t) * meta.user.size()) &&
              writeAll(f, &paySize, sizeof(paySize)) &&
              writeAll(f, &payHash, sizeof(payHash)) &&
              writeAll(f, &metaHash, sizeof(metaHash)) &&
              (payload.empty() ||
               writeAll(f, payload.data(), payload.size()));
    ok = (std::fflush(f) == 0) && ok;
#ifndef _WIN32
    // Make the rename durable: the data must hit the disk before the new
    // name does, or a crash could leave a valid-looking empty file.
    ok = (fsync(fileno(f)) == 0) && ok;
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        setErr(err, detail::formatString("short write to %s", tmp.c_str()));
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, detail::formatString("rename %s -> %s failed: %s",
                                         tmp.c_str(), path.c_str(),
                                         std::strerror(errno)));
        std::remove(tmp.c_str());
        return false;
    }
    return fsyncParentDir(path, err);
}

bool
readCheckpointFile(const std::string &path, CheckpointMeta *meta,
                   std::vector<std::uint8_t> *payload, std::string *err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setErr(err, detail::formatString("cannot open %s: %s", path.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    std::uint32_t magic = 0;
    CheckpointMeta m;
    std::uint64_t paySize = 0;
    std::uint64_t payHash = 0;
    std::uint64_t metaHash = 0;
    bool ok = readAll(f, &magic, sizeof(magic)) &&
              readAll(f, &m.version, sizeof(m.version)) &&
              readAll(f, &m.configFingerprint,
                      sizeof(m.configFingerprint)) &&
              readAll(f, &m.cycle, sizeof(m.cycle)) &&
              readAll(f, m.user.data(),
                      sizeof(std::uint64_t) * m.user.size()) &&
              readAll(f, &paySize, sizeof(paySize)) &&
              readAll(f, &payHash, sizeof(payHash)) &&
              readAll(f, &metaHash, sizeof(metaHash));
    if (!ok) {
        std::fclose(f);
        setErr(err, detail::formatString("truncated checkpoint header in %s",
                                         path.c_str()));
        return false;
    }
    if (magic != kCheckpointMagic) {
        std::fclose(f);
        setErr(err, detail::formatString("%s is not a checkpoint "
                                         "(magic %08x)",
                                         path.c_str(), magic));
        return false;
    }
    if (m.version != kCheckpointVersion) {
        std::fclose(f);
        setErr(err, detail::formatString(
                        "checkpoint version mismatch in %s: file has v%u, "
                        "this build reads v%u",
                        path.c_str(), m.version, kCheckpointVersion));
        return false;
    }
    // Validate the header digest before paySize is trusted for the body
    // allocation: a flipped size bit must be caught here, not by an
    // attempted multi-exabyte vector.
    if (headerDigest(m, paySize, payHash) != metaHash) {
        std::fclose(f);
        setErr(err, detail::formatString("checkpoint header digest mismatch "
                                         "in %s (file corrupt)",
                                         path.c_str()));
        return false;
    }
    std::vector<std::uint8_t> body(static_cast<std::size_t>(paySize));
    if (!body.empty() && !readAll(f, body.data(), body.size())) {
        std::fclose(f);
        setErr(err, detail::formatString("truncated checkpoint payload in "
                                         "%s (expected %llu bytes)",
                                         path.c_str(),
                                         static_cast<unsigned long long>(
                                             paySize)));
        return false;
    }
    std::fclose(f);
    if (fnv1a(body) != payHash) {
        setErr(err, detail::formatString("checkpoint payload hash mismatch "
                                         "in %s (file corrupt)",
                                         path.c_str()));
        return false;
    }
    if (meta)
        *meta = m;
    if (payload)
        *payload = std::move(body);
    return true;
}

}  // namespace nord

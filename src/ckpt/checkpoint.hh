/**
 * @file
 * Versioned on-disk checkpoint container.
 *
 * A checkpoint file is a fixed header followed by the StateSerializer
 * payload:
 *
 *   magic    u32  "NRDC"
 *   version  u32  kCheckpointVersion (readers reject any other value)
 *   configFp u64  FNV-1a fingerprint of the producing NocConfig
 *   cycle    u64  simulation cycle the state was captured at
 *   user[4]  u64  campaign-defined metadata (phase, run index, ...)
 *   paySize  u64  payload length in bytes
 *   payHash  u64  FNV-1a of the payload bytes (detects truncation/rot)
 *   metaHash u64  FNV-1a of version..payHash (detects header bit rot)
 *   payload  u8[paySize]
 *
 * Files are written to "<path>.tmp" and atomically renamed into place, so
 * a crash mid-write can never destroy the previous good checkpoint -- the
 * invariant the resilient campaign runner's restore path depends on.
 * Readers validate magic, version, header digest, size and payload hash
 * before returning any bytes; a single flipped bit anywhere in the file
 * is rejected (the metaHash covers the fields -- cycle, user metadata,
 * paySize -- that the payload hash cannot see, and is checked before
 * paySize is trusted for an allocation). Every failure is reported as a
 * recoverable error string, never a panic.
 */

#ifndef NORD_CKPT_CHECKPOINT_HH
#define NORD_CKPT_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nord {

/**
 * Current checkpoint container format version
 * (2: header digest; 3: transition-based idle-run stats layout).
 */
inline constexpr std::uint32_t kCheckpointVersion = 3;

/** File magic ("NRDC" little-endian). */
inline constexpr std::uint32_t kCheckpointMagic = 0x4344524eu;

/** Header metadata of one checkpoint file (see file comment). */
struct CheckpointMeta
{
    std::uint32_t version = kCheckpointVersion;
    std::uint64_t configFingerprint = 0;
    Cycle cycle = 0;
    std::array<std::uint64_t, 4> user{};  ///< campaign-defined
};

/**
 * Atomically write @p payload under @p meta to @p path (via "<path>.tmp" +
 * rename). Returns false and sets @p err on I/O failure.
 */
bool writeCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                         const std::vector<std::uint8_t> &payload,
                         std::string *err = nullptr);

/**
 * Read and validate the checkpoint at @p path. On success fills @p meta and
 * @p payload; on any failure (missing file, bad magic, version mismatch,
 * truncation, payload-hash mismatch) returns false and sets @p err.
 */
bool readCheckpointFile(const std::string &path, CheckpointMeta *meta,
                        std::vector<std::uint8_t> *payload,
                        std::string *err = nullptr);

/**
 * fsync the directory containing @p path. An atomic temp+fsync+rename
 * sequence is only durable once the DIRECTORY entry itself is on disk:
 * the file's fsync persists the bytes, but the rename lives in the parent
 * directory's data, and a power loss right after rename() can otherwise
 * resurface the old name (or no name at all) on the next mount. Every
 * rename in the durability layers (checkpoints, campaign journals, lease
 * files) must be followed by this call; nord-lint's unchecked-io rule
 * enforces it for src/ckpt/ and src/campaign/.
 *
 * Returns false and sets @p err when the directory cannot be opened or
 * synced. A no-op (true) on platforms without directory fsync semantics.
 */
bool fsyncParentDir(const std::string &path, std::string *err = nullptr);

/** FNV-1a 64-bit digest of a byte buffer. */
std::uint64_t fnv1a(const std::vector<std::uint8_t> &bytes);

/** Fold @p n raw bytes at @p p into a running FNV-1a digest @p h. */
std::uint64_t fnv1aFold(std::uint64_t h, const void *p, std::size_t n);

}  // namespace nord

#endif  // NORD_CKPT_CHECKPOINT_HH

/**
 * @file
 * Bidirectional binary state serializer for checkpoint/restore.
 *
 * One visitor drives all three checkpoint operations: kSave appends every
 * visited field to a byte buffer, kLoad reads the same fields back in the
 * same order, and kHash folds them into an FNV-1a digest without storing
 * anything. Components implement a single serializeState(StateSerializer&)
 * method, so the save, load and hash walks can never disagree about field
 * order -- the classic source of checkpoint corruption.
 *
 * The stream is structured with 32-bit section tags: on save a tag is
 * written, on load it is checked, so a component that drifts out of sync
 * fails immediately with a precise diagnosis instead of silently loading
 * garbage into a neighbor's state. All multi-byte values use the host's
 * little-endian layout (checkpoints are host-local artifacts, not an
 * interchange format; the file header's magic detects an endianness
 * mismatch anyway).
 *
 * Load errors never panic: a truncated or corrupt checkpoint sets a sticky
 * error flag and every subsequent read yields zeros, so the caller can
 * reject the file and fall back to an older checkpoint -- exactly what the
 * resilient campaign runner needs.
 */

#ifndef NORD_CKPT_STATE_SERIALIZER_HH
#define NORD_CKPT_STATE_SERIALIZER_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace nord {

class Rng;
struct Flit;
struct PacketDescriptor;

/** What a serialization walk does with the visited fields. */
enum class SerialMode : std::int8_t
{
    kSave,  ///< append fields to the byte buffer
    kLoad,  ///< read fields back from the byte buffer
    kHash,  ///< fold fields into an FNV-1a digest (nothing stored)
};

/**
 * The visitor handed to every component's serializeState() (see file
 * comment).
 */
class StateSerializer
{
  public:
    /** FNV-1a 64-bit offset basis. */
    static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
    /** FNV-1a 64-bit prime. */
    static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

    /** Start a save or hash walk. */
    explicit StateSerializer(SerialMode mode);

    /** Start a load walk over @p payload. */
    explicit StateSerializer(std::vector<std::uint8_t> payload);

    SerialMode mode() const { return mode_; }
    bool saving() const { return mode_ == SerialMode::kSave; }
    bool loading() const { return mode_ == SerialMode::kLoad; }
    bool hashing() const { return mode_ == SerialMode::kHash; }

    /** False once any structural error occurred (sticky). */
    bool ok() const { return error_.empty(); }

    /** Description of the first structural error ("" when ok). */
    const std::string &error() const { return error_; }

    /** Record a structural error (first one wins). */
    void fail(const std::string &what);

    /**
     * Structure marker: saved as a 32-bit tag, checked on load. Use a
     * four-character constant per component/section.
     */
    void section(std::uint32_t tag);

    /** Four-character section tag, e.g. tag4("RTR "). */
    static constexpr std::uint32_t tag4(const char (&s)[5])
    {
        return static_cast<std::uint32_t>(
                   static_cast<unsigned char>(s[0])) |
               (static_cast<std::uint32_t>(
                    static_cast<unsigned char>(s[1])) << 8) |
               (static_cast<std::uint32_t>(
                    static_cast<unsigned char>(s[2])) << 16) |
               (static_cast<std::uint32_t>(
                    static_cast<unsigned char>(s[3])) << 24);
    }

    // --- Scalar fields -----------------------------------------------------
    /** Integral or enum field, stored at its native width. */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> ||
                                          std::is_enum_v<T>>>
    void io(T &v)
    {
        bytes(&v, sizeof(T));
    }

    /** Bools are stored as one byte (vector<bool> proxies need ioBool). */
    void io(bool &v)
    {
        std::uint8_t b = v ? 1 : 0;
        bytes(&b, 1);
        if (loading())
            v = b != 0;
    }

    /** Doubles are stored by bit pattern: restore is exact. */
    void io(double &v)
    {
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        bytes(&bits, sizeof(bits));
        if (loading())
            std::memcpy(&v, &bits, sizeof(bits));
    }

    void io(std::string &v);

    /** RNG engine state (via Rng's raw state accessors). */
    void io(Rng &rng);

    /** Every field of one flit. */
    void io(Flit &f);

    /** A workload packet descriptor. */
    void io(PacketDescriptor &d);

    // --- Containers --------------------------------------------------------
    /**
     * Size-prefixed sequence (vector/deque) of io()-able elements. On load
     * the container is cleared and refilled.
     */
    template <typename C>
    void ioSequence(C &c)
    {
        std::uint64_t n = c.size();
        io(n);
        if (loading()) {
            c.clear();
            for (std::uint64_t i = 0; i < n && ok(); ++i) {
                typename C::value_type v{};
                io(v);
                c.push_back(std::move(v));
            }
        } else {
            for (auto &v : c)
                io(v);
        }
    }

    /**
     * Sequence of aggregate elements serialized by @p fn(elem). Use for
     * structs private to one component.
     */
    template <typename C, typename Fn>
    void ioSequence(C &c, Fn &&fn)
    {
        std::uint64_t n = c.size();
        io(n);
        if (loading()) {
            c.clear();
            for (std::uint64_t i = 0; i < n && ok(); ++i) {
                typename C::value_type v{};
                fn(v);
                c.push_back(std::move(v));
            }
        } else {
            for (auto &v : c)
                fn(v);
        }
    }

    /** std::vector<bool> (proxy references prevent the generic path). */
    void io(std::vector<bool> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.assign(n, false);
        for (std::uint64_t i = 0; i < n && ok(); ++i) {
            bool b = loading() ? false : static_cast<bool>(v[i]);
            io(b);
            if (loading())
                v[i] = b;
        }
    }

    /**
     * Ordered map with io()-able keys and values serialized by
     * @p valueFn(value). Iteration order of std::map is already
     * deterministic.
     */
    template <typename K, typename V, typename Fn>
    void ioMap(std::map<K, V> &m, Fn &&valueFn)
    {
        std::uint64_t n = m.size();
        io(n);
        if (loading()) {
            m.clear();
            for (std::uint64_t i = 0; i < n && ok(); ++i) {
                K k{};
                io(k);
                V v{};
                valueFn(v);
                m.emplace(std::move(k), std::move(v));
            }
        } else {
            for (auto &kv : m) {
                K k = kv.first;
                io(k);
                valueFn(kv.second);
            }
        }
    }

    /** Ordered map with io()-able values. */
    template <typename K, typename V>
    void ioMap(std::map<K, V> &m)
    {
        ioMap(m, [this](V &v) { io(v); });
    }

    /**
     * Unordered set of integral keys. Saved/hashed in sorted-key order so
     * the walk is deterministic regardless of the set's bucket history.
     * Membership is the only operation the simulator performs on these
     * sets, so the rebuilt insertion order cannot change behavior.
     */
    template <typename K>
    void ioUnorderedSet(std::unordered_set<K> &s)
    {
        std::uint64_t n = s.size();
        io(n);
        if (loading()) {
            s.clear();
            for (std::uint64_t i = 0; i < n && ok(); ++i) {
                K k{};
                io(k);
                s.insert(k);
            }
        } else {
            std::vector<K> keys(s.begin(), s.end());
            std::sort(keys.begin(), keys.end());
            for (K k : keys)
                io(k);
        }
    }

    /** Unordered map, sorted-key order on save/hash (see ioUnorderedSet). */
    template <typename K, typename V, typename Fn>
    void ioUnorderedMap(std::unordered_map<K, V> &m, Fn &&valueFn)
    {
        std::uint64_t n = m.size();
        io(n);
        if (loading()) {
            m.clear();
            for (std::uint64_t i = 0; i < n && ok(); ++i) {
                K k{};
                io(k);
                V v{};
                valueFn(v);
                m.emplace(std::move(k), std::move(v));
            }
        } else {
            std::vector<K> keys;
            keys.reserve(m.size());
            for (auto &kv : m)
                keys.push_back(kv.first);
            std::sort(keys.begin(), keys.end());
            for (K k : keys) {
                io(k);
                valueFn(m.at(k));
            }
        }
    }

    // --- Results ------------------------------------------------------------
    /** Serialized bytes (kSave mode). */
    const std::vector<std::uint8_t> &buffer() const { return buf_; }

    /** Move the serialized bytes out (kSave mode). */
    std::vector<std::uint8_t> takeBuffer() { return std::move(buf_); }

    /** FNV-1a digest of every byte visited so far (kHash mode). */
    std::uint64_t hash() const { return hash_; }

    /** Bytes consumed so far (kLoad mode). */
    std::size_t cursor() const { return cursor_; }

    /** True when a load walk consumed the payload exactly. */
    bool exhausted() const
    {
        return loading() && cursor_ == buf_.size();
    }

  private:
    /** Core primitive: append, read or hash @p n raw bytes at @p p. */
    void bytes(void *p, std::size_t n);

    SerialMode mode_;
    std::vector<std::uint8_t> buf_;
    std::size_t cursor_ = 0;
    std::uint64_t hash_ = kFnvOffset;
    std::string error_;
};

}  // namespace nord

#endif  // NORD_CKPT_STATE_SERIALIZER_HH

/**
 * @file
 * Fundamental scalar types and enumerations shared by every NoRD module.
 *
 * The conventions follow the paper's terminology: a *node* is the bundle of
 * core + caches + network interface (NI) attached to one router; flits move
 * between routers over unidirectional links; each input port holds a set of
 * virtual channels split into an adaptive class and an escape class
 * (Duato's Protocol).
 */

#ifndef NORD_COMMON_TYPES_HH
#define NORD_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace nord {

/** Simulation time unit: one router clock cycle. */
using Cycle = std::uint64_t;

/** Flat node / router identifier (row-major in a mesh). */
using NodeId = std::int32_t;

/** Virtual-channel index within an input port. */
using VcId = std::int32_t;

/** Monotonically increasing packet identifier. */
using PacketId = std::uint64_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** Sentinel for "no VC". */
inline constexpr VcId kInvalidVc = -1;

/** Sentinel cycle meaning "never". */
inline constexpr Cycle kNeverCycle =
    std::numeric_limits<Cycle>::max();

/**
 * Router port direction in a 2-D mesh. kLocal is the NI port.
 * The numeric values are used to index port arrays.
 */
enum class Direction : std::int8_t {
    kNorth = 0,
    kEast = 1,
    kSouth = 2,
    kWest = 3,
    kLocal = 4,
};

/** Number of ports on a canonical 2-D mesh router (4 mesh + 1 local). */
inline constexpr int kNumPorts = 5;

/** Number of mesh (non-local) directions. */
inline constexpr int kNumMeshDirs = 4;

/** Convert a Direction to its array index. */
constexpr int
dirIndex(Direction d)
{
    return static_cast<int>(d);
}

/** Convert an array index back to a Direction. */
constexpr Direction
indexDir(int i)
{
    return static_cast<Direction>(i);
}

/** The mesh direction opposite to @p d (kLocal maps to itself). */
constexpr Direction
opposite(Direction d)
{
    switch (d) {
      case Direction::kNorth: return Direction::kSouth;
      case Direction::kEast: return Direction::kWest;
      case Direction::kSouth: return Direction::kNorth;
      case Direction::kWest: return Direction::kEast;
      default: return Direction::kLocal;
    }
}

/** Short human-readable name for a direction. */
const char *dirName(Direction d);

/**
 * Virtual-channel class under Duato's Protocol.
 *
 * Escape VCs are restricted to a deadlock-free sub-network (XY in the
 * conventional designs, the Bypass Ring in NoRD); adaptive VCs may route
 * fully adaptively.
 */
enum class VcClass : std::int8_t {
    kEscape = 0,
    kAdaptive = 1,
};

/** Name of a VC class. */
const char *vcClassName(VcClass c);

/** Flit position within its packet. */
enum class FlitType : std::int8_t {
    kHead = 0,
    kBody = 1,
    kTail = 2,
    kHeadTail = 3,  ///< single-flit packet
};

/** True for kHead and kHeadTail. */
constexpr bool
isHead(FlitType t)
{
    return t == FlitType::kHead || t == FlitType::kHeadTail;
}

/** True for kTail and kHeadTail. */
constexpr bool
isTail(FlitType t)
{
    return t == FlitType::kTail || t == FlitType::kHeadTail;
}

/**
 * Power-gating design under evaluation (Section 5.1 of the paper).
 */
enum class PgDesign : std::int8_t {
    kNoPg = 0,        ///< baseline, no power-gating
    kConvPg = 1,      ///< conventional power-gating of routers
    kConvPgOpt = 2,   ///< conventional + early wakeup optimization
    kNord = 3,        ///< node-router decoupling (this paper)
};

/** Name of a power-gating design, matching the paper's labels. */
const char *pgDesignName(PgDesign d);

/** Power state of a router. */
enum class PowerState : std::int8_t {
    kOn = 0,        ///< full Vdd, pipeline operational
    kOff = 1,       ///< gated off (NoRD: bypass active)
    kWakingUp = 2,  ///< sleep signal de-asserted, Vdd ramping
};

/** Name of a power state. */
const char *powerStateName(PowerState s);

}  // namespace nord

#endif  // NORD_COMMON_TYPES_HH

/**
 * @file
 * Packet tracing implementation.
 */

#include "common/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nord {

PacketId
tracedPacket()
{
    static const PacketId traced = [] {
        const char *env = std::getenv("NORD_TRACE_PACKET");
        return env ? static_cast<PacketId>(std::strtoull(env, nullptr, 10))
                   : 0;
    }();
    return traced;
}

void
tracePacket(PacketId id, Cycle now, const char *fmt, ...)
{
    if (id != tracedPacket() || id == 0)
        return;
    std::fprintf(stderr, "[pkt %llu @%llu] ",
                 static_cast<unsigned long long>(id),
                 static_cast<unsigned long long>(now));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

}  // namespace nord

/**
 * @file
 * Packet tracing implementation.
 */

#include "common/trace.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace nord {

namespace {

/** Sentinel: no selection made yet; seed from the environment. */
constexpr PacketId kUnset = ~static_cast<PacketId>(0);

std::atomic<PacketId> &
selection()
{
    // Whitelisted mutable static (see nord-lint): a single lock-free
    // atomic, resettable via TraceConfig, never a data race.
    static std::atomic<PacketId> selected{kUnset};
    return selected;
}

}  // namespace

void
TraceConfig::setPacket(PacketId id)
{
    selection().store(id, std::memory_order_relaxed);
}

void
TraceConfig::reset()
{
    selection().store(kUnset, std::memory_order_relaxed);
}

PacketId
tracedPacket()
{
    std::atomic<PacketId> &sel = selection();
    PacketId id = sel.load(std::memory_order_relaxed);
    if (id != kUnset)
        return id;
    const char *env = std::getenv("NORD_TRACE_PACKET");
    PacketId fromEnv =
        env ? static_cast<PacketId>(std::strtoull(env, nullptr, 10)) : 0;
    // Racing first queries agree on the environment value; CAS keeps a
    // concurrent setPacket() from being overwritten by the lazy seed.
    sel.compare_exchange_strong(id, fromEnv, std::memory_order_relaxed);
    return sel.load(std::memory_order_relaxed);
}

void
tracePacket(PacketId id, Cycle now, const char *fmt, ...)
{
    if (id == 0 || id != tracedPacket())
        return;
    std::fprintf(stderr, "[pkt %llu @%llu] ",
                 static_cast<unsigned long long>(id),
                 static_cast<unsigned long long>(now));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

}  // namespace nord

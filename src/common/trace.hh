/**
 * @file
 * Per-packet event tracing for debugging.
 *
 * Set NORD_TRACE_PACKET=<id> in the environment to print every traced
 * event of that packet to stderr. Zero overhead beyond one integer
 * compare when disabled.
 */

#ifndef NORD_COMMON_TRACE_HH
#define NORD_COMMON_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace nord {

/** The packet id selected via NORD_TRACE_PACKET (0 = tracing off). */
PacketId tracedPacket();

/** printf-style trace line for packet @p id (no-op unless selected). */
void tracePacket(PacketId id, Cycle now, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace nord

#endif  // NORD_COMMON_TRACE_HH

/**
 * @file
 * Per-packet event tracing for debugging.
 *
 * Set NORD_TRACE_PACKET=<id> in the environment (or call
 * TraceConfig::setPacket) to print every traced event of that packet to
 * stderr. Zero overhead beyond one atomic load and an integer compare
 * when disabled.
 */

#ifndef NORD_COMMON_TRACE_HH
#define NORD_COMMON_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace nord {

/**
 * Tracing selection. The selected packet id is process-global and
 * lock-free: one atomic that is lazily seeded from NORD_TRACE_PACKET on
 * first use and can be overridden or reset at any time (tests exercise
 * different trace targets in one process; the old once-latched env read
 * could not).
 */
namespace TraceConfig {

/** Select packet @p id for tracing (0 disables tracing). */
void setPacket(PacketId id);

/** Forget any selection; the next query re-reads NORD_TRACE_PACKET. */
void reset();

}  // namespace TraceConfig

/** The currently selected packet id (0 = tracing off). */
PacketId tracedPacket();

/** printf-style trace line for packet @p id (no-op unless selected). */
void tracePacket(PacketId id, Cycle now, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace nord

#endif  // NORD_COMMON_TRACE_HH

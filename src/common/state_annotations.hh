/**
 * @file
 * State-coverage annotations checked by nord-statecheck.
 *
 * Every non-static data member of a checkpointable class (anything that
 * derives from Clocked or declares serializeState) must either appear in
 * that class's serializeState() walk or carry an explicit exclusion:
 *
 * @code
 *   NORD_STATE_EXCLUDE(perf_counter,
 *       "diagnostics only; skip-on and skip-off kernels must hash equal")
 *   std::uint64_t tickedTotal_ = 0;
 * @endcode
 *
 * The macro expands to nothing -- it is a machine-readable marker for the
 * static analyzer (src/verify/statecheck/), which binds each annotation to
 * the NEXT member declaration that follows it. An annotation that binds to
 * nothing is itself a finding (dangling-exclude), so stale markers cannot
 * accumulate.
 *
 * Categories, each with its own statically-enforced legality rule:
 *
 *  - cache: derived state rebuilt from serialized state (memoized scans,
 *    free lists, active lists). Must be written somewhere in the class --
 *    a never-written "cache" is configuration and must say so.
 *  - stat: observational counters whose loss on restore is acceptable by
 *    design. Only legal in classes that do serialize the rest of their
 *    state (a class that serializes nothing is not a component keeping
 *    side statistics; exclude it as cache or config instead).
 *  - perf_counter: bookkeeping of the performance infrastructure itself
 *    (kernel skip counters, arena footprint stats). Only legal under
 *    src/sim/ and src/common/ -- anywhere else it is a smell that real
 *    component state is being waved through.
 *  - config: wiring and configuration fixed at construction time
 *    (component pointers, topology handles, toggles set between runs).
 *    Must never be mutated on the tick path; nord-statecheck cross-checks
 *    this against its mutation analysis of tick() and everything tick()
 *    calls.
 *
 * Every category is additionally proven at runtime by the annotation-
 * truthing differential tests (tests/test_statecheck.cc): each excluded
 * member is perturbed on a live NocSystem and stateHash() must not move,
 * and a save/load/re-save round trip must reproduce the checkpoint
 * payload byte-for-byte -- so the static model can never drift from
 * runtime reality.
 */

#ifndef NORD_COMMON_STATE_ANNOTATIONS_HH
#define NORD_COMMON_STATE_ANNOTATIONS_HH

/**
 * Mark the next data member as deliberately excluded from the
 * serializeState() walk. @p category is one of cache, stat, perf_counter,
 * config; @p reason is a string literal explaining why exclusion is safe.
 */
#define NORD_STATE_EXCLUDE(category, reason)

#endif  // NORD_COMMON_STATE_ANNOTATIONS_HH

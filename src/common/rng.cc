/**
 * @file
 * xoshiro256** implementation.
 */

#include "common/rng.hh"

#include <cmath>

namespace nord {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
streamSeed(std::uint64_t baseSeed, RngStream stream)
{
    const auto id = static_cast<std::uint64_t>(stream);
    if (id == 0)
        return baseSeed;  // kTraffic: legacy single-stream compatibility
    // Decorrelate the stream from the base seed with one SplitMix64 step
    // keyed by the stream id.
    std::uint64_t x = baseSeed ^ (id * 0xd1342543de82ef95ULL);
    return splitMix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

Rng::Rng(std::uint64_t baseSeed, RngStream stream)
    : Rng(streamSeed(baseSeed, stream))
{
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    // Modulo bias is negligible for the small bounds used in simulation.
    return next64() % bound;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    double u = uniform();
    // Inverse CDF of the geometric distribution on {0, 1, 2, ...}.
    double p = 1.0 / (mean + 1.0);
    return static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / std::log1p(-p)));
}

}  // namespace nord

/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A small xoshiro256** implementation is used instead of <random> engines so
 * that simulations are bit-identical across standard library versions --
 * important for reproducible experiments.
 */

#ifndef NORD_COMMON_RNG_HH
#define NORD_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace nord {

/**
 * Named sub-streams of the simulation-wide seed.
 *
 * Each consumer draws from its own stream so that enabling one consumer
 * cannot perturb another: a fault campaign (kFaults) must leave the traffic
 * replay (kTraffic) bit-identical, and randomized allocator tie-breaking
 * (kAllocator, reserved -- the shipped allocators are deterministic
 * round-robin) must not disturb either.
 */
enum class RngStream : std::uint64_t
{
    kTraffic = 0,
    kFaults = 1,
    kAllocator = 2,
};

/**
 * Derive the seed for a named sub-stream from the base simulation seed.
 *
 * kTraffic maps to the base seed unchanged, so pre-existing single-stream
 * simulations replay bit-identically; other streams are decorrelated with a
 * SplitMix64-style mix.
 */
std::uint64_t streamSeed(std::uint64_t baseSeed, RngStream stream);

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Construct the generator for a named sub-stream of @p baseSeed. */
    Rng(std::uint64_t baseSeed, RngStream stream);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with probability @p p. */
    bool bernoulli(double p);

    /**
     * Geometric number of idle cycles with mean @p mean (>= 0).
     * Returns 0 when mean <= 0.
     */
    std::uint64_t geometric(double mean);

    // --- Checkpointing ------------------------------------------------------
    /** Raw engine state, for checkpoint save. */
    std::array<std::uint64_t, 4> rawState() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Restore a raw engine state captured by rawState(). */
    void setRawState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    std::uint64_t s_[4];
};

}  // namespace nord

#endif  // NORD_COMMON_RNG_HH

/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A small xoshiro256** implementation is used instead of <random> engines so
 * that simulations are bit-identical across standard library versions --
 * important for reproducible experiments.
 */

#ifndef NORD_COMMON_RNG_HH
#define NORD_COMMON_RNG_HH

#include <cstdint>

namespace nord {

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with probability @p p. */
    bool bernoulli(double p);

    /**
     * Geometric number of idle cycles with mean @p mean (>= 0).
     * Returns 0 when mean <= 0.
     */
    std::uint64_t geometric(double mean);

  private:
    std::uint64_t s_[4];
};

}  // namespace nord

#endif  // NORD_COMMON_RNG_HH

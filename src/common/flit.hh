/**
 * @file
 * Packet and flit types for the wormhole-switched network.
 *
 * A packet is the unit of routing; it is serialized into flits (head /
 * body / tail, or a single head-tail flit). The paper's workloads use a
 * bimodal length distribution: 1-flit short packets (control) and 5-flit
 * long packets (data), cf. Section 5.2.
 */

#ifndef NORD_COMMON_FLIT_HH
#define NORD_COMMON_FLIT_HH

#include <cstdint>

#include "common/types.hh"

namespace nord {

/**
 * Per-packet metadata carried by every flit.
 *
 * Flits are small value types copied through buffers and links; keeping the
 * packet description inline (rather than behind a shared pointer) keeps the
 * simulator allocation-free on the fast path.
 */
struct Flit
{
    PacketId packet = 0;        ///< owning packet id
    NodeId src = kInvalidNode;  ///< source node
    NodeId dst = kInvalidNode;  ///< destination node
    FlitType type = FlitType::kHeadTail;
    std::int16_t length = 1;    ///< packet length in flits
    std::int16_t seq = 0;       ///< flit index within the packet

    Cycle createdAt = 0;        ///< cycle the packet was generated at the NI
    Cycle injectedAt = 0;       ///< cycle the head flit entered the network

    /** Hops traversed so far (incremented at each router/bypass). */
    std::int16_t hops = 0;

    /** Non-minimal hops taken so far (NoRD misroute accounting). */
    std::int16_t misroutes = 0;

    /**
     * Once true the packet is confined to escape resources until it reaches
     * its destination (Duato's Protocol / NoRD ring escape).
     */
    bool onEscape = false;

    /**
     * Escape VC level: 0 before crossing the Bypass Ring dateline, 1 after.
     * Two escape VCs with a dateline break the ring's cyclic channel
     * dependence (Section 4.2).
     */
    std::int8_t escLevel = 0;

    /** VC currently holding the flit (set by the receiving input unit). */
    VcId vc = kInvalidVc;

    /** Workload-defined tag (e.g. transaction id for request/reply). */
    std::uint64_t tag = 0;
};

/** True if this flit starts a packet. */
inline bool
flitIsHead(const Flit &f)
{
    return isHead(f.type);
}

/** True if this flit ends a packet. */
inline bool
flitIsTail(const Flit &f)
{
    return isTail(f.type);
}

/**
 * Description of a packet to be injected by a workload.
 */
struct PacketDescriptor
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    int length = 1;             ///< flits
    Cycle createdAt = 0;
    std::uint64_t tag = 0;
};

}  // namespace nord

#endif  // NORD_COMMON_FLIT_HH

/**
 * @file
 * Packet and flit types for the wormhole-switched network.
 *
 * A packet is the unit of routing; it is serialized into flits (head /
 * body / tail, or a single head-tail flit). The paper's workloads use a
 * bimodal length distribution: 1-flit short packets (control) and 5-flit
 * long packets (data), cf. Section 5.2.
 */

#ifndef NORD_COMMON_FLIT_HH
#define NORD_COMMON_FLIT_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace nord {

/** End-to-end packet kind: protected data vs. protocol control traffic. */
enum class E2eKind : std::uint8_t
{
    kData = 0,  ///< workload payload packet
    kAck = 1,   ///< standalone ACK/NACK control packet (single flit)
};

/** Fault-state flag bits carried by a flit (see src/fault/). */
enum FlitFaultFlag : std::uint8_t
{
    /**
     * A transient link fault destroyed this flit's framing: the physical
     * phit still arrives (wormhole flow control stays intact) but the
     * receiving NI cannot parse it and must discard it silently.
     */
    kFaultDropped = 1u << 0,
    /** This flit belongs to a retransmitted copy of a packet. */
    kFaultRetransmit = 1u << 1,
};

/** Number of hops of route history a flit records for diagnosis. */
inline constexpr int kRouteHistoryDepth = 16;

/**
 * Per-packet metadata carried by every flit.
 *
 * Flits are small value types copied through buffers and links; keeping the
 * packet description inline (rather than behind a shared pointer) keeps the
 * simulator allocation-free on the fast path.
 */
struct Flit
{
    PacketId packet = 0;        ///< owning packet id
    NodeId src = kInvalidNode;  ///< source node
    NodeId dst = kInvalidNode;  ///< destination node
    FlitType type = FlitType::kHeadTail;
    std::int16_t length = 1;    ///< packet length in flits
    std::int16_t seq = 0;       ///< flit index within the packet

    Cycle createdAt = 0;        ///< cycle the packet was generated at the NI
    Cycle injectedAt = 0;       ///< cycle the head flit entered the network

    /** Hops traversed so far (incremented at each router/bypass). */
    std::int16_t hops = 0;

    /** Non-minimal hops taken so far (NoRD misroute accounting). */
    std::int16_t misroutes = 0;

    /**
     * Once true the packet is confined to escape resources until it reaches
     * its destination (Duato's Protocol / NoRD ring escape).
     */
    bool onEscape = false;

    /**
     * Escape VC level: 0 before crossing the Bypass Ring dateline, 1 after.
     * Two escape VCs with a dateline break the ring's cyclic channel
     * dependence (Section 4.2).
     */
    std::int8_t escLevel = 0;

    /** VC currently holding the flit (set by the receiving input unit). */
    VcId vc = kInvalidVc;

    /** Workload-defined tag (e.g. transaction id for request/reply). */
    std::uint64_t tag = 0;

    /** Data/control discriminator for the end-to-end protocol. */
    E2eKind kind = E2eKind::kData;

    /** FlitFaultFlag bits set by fault injection. */
    std::uint8_t faultFlags = 0;

    /**
     * End-to-end sequence number within the (src, dst) flow, 1-based.
     * 0 means the packet is not protected by the E2E layer.
     */
    std::uint32_t e2eSeq = 0;

    /** Piggybacked ACK for flow dst->src (per-seq, 0 = none). */
    std::uint32_t ackSeq = 0;

    /** Piggybacked NACK for flow dst->src (per-seq, 0 = none). */
    std::uint32_t nackSeq = 0;

    /**
     * Payload surrogate: a deterministic function of the packet's logical
     * identity, set at creation. Transient corruption faults flip bits
     * here; the receiver detects the damage via #checksum.
     */
    std::uint64_t payload = 0;

    /** XOR-fold checksum of #payload computed at the sending NI. */
    std::uint16_t checksum = 0;

    /**
     * Route history: the last #kRouteHistoryDepth nodes this flit visited
     * (oldest first), recorded at every router/bypass acceptance for
     * liveness diagnosis.
     */
    std::array<std::int16_t, kRouteHistoryDepth> visited{};
    std::uint8_t visitedCount = 0;
};

/** XOR-fold of a 64-bit payload into the 16-bit flit checksum. */
inline std::uint16_t
flitChecksum(std::uint64_t payload)
{
    std::uint64_t x = payload;
    x ^= x >> 32;
    x ^= x >> 16;
    return static_cast<std::uint16_t>(x & 0xffffu);
}

/**
 * Deterministic payload surrogate from a packet's logical identity.
 * Retransmitted copies regenerate the identical payload, so a clean copy
 * always passes the checksum regardless of which physical copy arrives.
 */
inline std::uint64_t
flitPayload(NodeId src, NodeId dst, std::uint32_t e2eSeq, std::int16_t seq,
            std::uint64_t tag)
{
    std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           src * 0x1f123bb5u)) << 32) ^
                      static_cast<std::uint32_t>(dst * 0x27d4eb2fu);
    x ^= (static_cast<std::uint64_t>(e2eSeq) << 17) ^
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(seq)) ^
         (tag * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 29;
    return x;
}

/** Whether the flit's payload still matches its checksum. */
inline bool
flitIntact(const Flit &f)
{
    return flitChecksum(f.payload) == f.checksum;
}

/**
 * Append @p node to the flit's route history, shifting out the oldest
 * entry once the ring is full.
 */
inline void
recordVisit(Flit &f, NodeId node)
{
    if (f.visitedCount == kRouteHistoryDepth) {
        for (int i = 1; i < kRouteHistoryDepth; ++i)
            f.visited[i - 1] = f.visited[i];
        --f.visitedCount;
    }
    f.visited[f.visitedCount++] = static_cast<std::int16_t>(node);
}

/** True if this flit starts a packet. */
inline bool
flitIsHead(const Flit &f)
{
    return isHead(f.type);
}

/** True if this flit ends a packet. */
inline bool
flitIsTail(const Flit &f)
{
    return isTail(f.type);
}

/**
 * Description of a packet to be injected by a workload.
 */
struct PacketDescriptor
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    int length = 1;             ///< flits
    Cycle createdAt = 0;
    std::uint64_t tag = 0;
};

}  // namespace nord

#endif  // NORD_COMMON_FLIT_HH

/**
 * @file
 * String names for the shared enumerations.
 */

#include "common/types.hh"

namespace nord {

const char *
dirName(Direction d)
{
    switch (d) {
      case Direction::kNorth: return "N";
      case Direction::kEast: return "E";
      case Direction::kSouth: return "S";
      case Direction::kWest: return "W";
      case Direction::kLocal: return "L";
    }
    return "?";
}

const char *
vcClassName(VcClass c)
{
    return c == VcClass::kEscape ? "escape" : "adaptive";
}

const char *
pgDesignName(PgDesign d)
{
    switch (d) {
      case PgDesign::kNoPg: return "No_PG";
      case PgDesign::kConvPg: return "Conv_PG";
      case PgDesign::kConvPgOpt: return "Conv_PG_OPT";
      case PgDesign::kNord: return "NoRD";
    }
    return "?";
}

const char *
powerStateName(PowerState s)
{
    switch (s) {
      case PowerState::kOn: return "on";
      case PowerState::kOff: return "off";
      case PowerState::kWakingUp: return "waking";
    }
    return "?";
}

}  // namespace nord

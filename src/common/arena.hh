/**
 * @file
 * Pool arena for flit/packet buffers.
 *
 * Replaces per-flit heap churn on the hottest simulation path (VC buffer
 * and link-queue node allocation) with size-classed free lists carved out
 * of geometrically growing slabs. Design points:
 *
 *  - 16-byte size classes up to kMaxClassBytes; anything larger falls back
 *    to ::operator new (counted, so oversize traffic shows up in stats).
 *  - Every block carries a 16-byte header with a live/free magic, so a
 *    double free or a foreign pointer trips NORD_ASSERT instead of
 *    corrupting a free list.
 *  - Frees push onto the class free list; allocation pops before carving
 *    new slab space, so steady-state simulation reaches a fixed footprint
 *    and then recycles (Stats::reuses tracks this).
 *  - checkTeardown() reports leaked blocks at end of life; the destructor
 *    warns on stderr (src/common/ may use stdio) so a leak in a bench or
 *    tool is loud even without the unit test.
 *
 * ArenaAllocator<T> adapts a PoolArena to the std allocator interface.
 * A default-constructed (nullptr-arena) allocator degrades to plain
 * ::operator new/delete, so the same container type serves both the
 * arena and heap configurations -- bit-identical simulation either way,
 * proven by tests/test_perf_invariance.cc.
 */

#ifndef NORD_COMMON_ARENA_HH
#define NORD_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <new>
#include <vector>

#include "common/log.hh"
#include "common/state_annotations.hh"

namespace nord {

/**
 * Size-classed pool allocator with slab backing and free-list reuse.
 * Not thread-safe: one arena belongs to one NocSystem (one kernel
 * thread), like every other per-system object.
 */
class PoolArena
{
  public:
    /** Allocation/footprint counters (diagnostics + test hooks). */
    struct Stats
    {
        std::uint64_t allocCalls = 0;   ///< allocate() calls, any path
        std::uint64_t frees = 0;        ///< deallocate() calls
        std::uint64_t reuses = 0;       ///< allocations served from a free list
        std::uint64_t oversize = 0;     ///< fell back to ::operator new
        std::uint64_t liveBlocks = 0;   ///< currently outstanding blocks
        std::uint64_t liveBytes = 0;    ///< payload bytes outstanding
        std::uint64_t peakLiveBytes = 0;
        std::uint64_t slabBytes = 0;    ///< total slab capacity acquired
    };

    PoolArena() = default;
    ~PoolArena();

    PoolArena(const PoolArena &) = delete;
    PoolArena &operator=(const PoolArena &) = delete;

    /** Allocate @p bytes with alignment <= kAlign. Never returns null. */
    void *allocate(std::size_t bytes);

    /** Return a block obtained from allocate(). Null is a no-op. */
    void deallocate(void *p, std::size_t bytes);

    const Stats &stats() const { return stats_; }

    /**
     * Teardown accounting: returns the number of leaked (still-live)
     * blocks. Call when every container using the arena is gone; the
     * destructor performs the same check and warns on stderr.
     */
    std::uint64_t checkTeardown() const { return stats_.liveBlocks; }

    /** Block alignment guarantee (also the header size). */
    static constexpr std::size_t kAlign = 16;

    /** Largest pooled payload; bigger requests use ::operator new. */
    static constexpr std::size_t kMaxClassBytes = 4096;

  private:
    struct Header
    {
        std::uint32_t magic;      ///< kMagicLive / kMagicFree
        std::uint32_t sizeClass;  ///< class index, or kOversizeClass
        Header *next;             ///< free-list link while free
    };
    static_assert(sizeof(Header) <= kAlign, "header must fit the alignment");

    static constexpr std::uint32_t kMagicLive = 0x4c697645u;  // "LivE"
    static constexpr std::uint32_t kMagicFree = 0x46726565u;  // "Free"
    static constexpr std::uint32_t kOversizeClass = 0xffffffffu;

    static constexpr std::size_t kNumClasses = kMaxClassBytes / kAlign;
    static constexpr std::size_t kInitialSlabBytes = 16 * 1024;
    static constexpr std::size_t kMaxSlabBytes = 1024 * 1024;

    /** Carve a fresh block for @p cls from the current slab (grow it
        geometrically when exhausted). */
    Header *carve(std::uint32_t cls);

    NORD_STATE_EXCLUDE(cache,
        "slab storage regrows as deserialized containers reallocate")
    std::vector<char *> slabs_;          ///< owned slab storage
    NORD_STATE_EXCLUDE(cache, "bump offset into slabs_.back()")
    std::size_t slabNext_ = 0;           ///< bump offset in slabs_.back()
    NORD_STATE_EXCLUDE(cache, "capacity of slabs_.back()")
    std::size_t slabCap_ = 0;            ///< capacity of slabs_.back()
    NORD_STATE_EXCLUDE(cache, "geometric growth cursor")
    std::size_t nextSlabBytes_ = kInitialSlabBytes;
    NORD_STATE_EXCLUDE(cache,
        "free lists rebuilt by the allocate/deallocate traffic of the "
        "deserialized containers")
    Header *freeLists_[kNumClasses] = {};
    NORD_STATE_EXCLUDE(perf_counter, "footprint diagnostics and test hooks")
    Stats stats_;
};

/**
 * std-compatible allocator over a PoolArena. With arena == nullptr it is
 * a plain global-heap allocator: same type, same container layout, so a
 * config toggle (NocConfig::perf.arena) switches backing stores without
 * changing any simulation-visible behavior.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    static_assert(alignof(T) <= PoolArena::kAlign,
                  "arena alignment too small for T");

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(PoolArena *arena) noexcept : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr)
            return static_cast<T *>(arena_->allocate(bytes));
        return static_cast<T *>(::operator new(bytes));
    }

    void deallocate(T *p, std::size_t n) noexcept
    {
        if (arena_ != nullptr) {
            arena_->deallocate(p, n * sizeof(T));
            return;
        }
        ::operator delete(p);
    }

    PoolArena *arena() const noexcept { return arena_; }

    friend bool operator==(const ArenaAllocator &a,
                           const ArenaAllocator &b) noexcept
    {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const ArenaAllocator &a,
                           const ArenaAllocator &b) noexcept
    {
        return !(a == b);
    }

  private:
    PoolArena *arena_ = nullptr;
};

/** Deque whose nodes come from a PoolArena (or the heap when detached). */
template <typename T>
using ArenaDeque = std::deque<T, ArenaAllocator<T>>;

}  // namespace nord

#endif  // NORD_COMMON_ARENA_HH

/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/log.hh"

#include <cstdarg>
#include <vector>

namespace nord {

std::FILE *
diagStream()
{
    return stderr;
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0) {
        va_end(args);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

}  // namespace detail
}  // namespace nord

/**
 * @file
 * Pool arena implementation.
 */

#include "common/arena.hh"

#include <cstdio>

namespace nord {

PoolArena::~PoolArena()
{
    if (stats_.liveBlocks != 0) {
        std::fprintf(stderr,
                     "PoolArena: %llu block(s) / %llu byte(s) leaked at "
                     "teardown\n",
                     static_cast<unsigned long long>(stats_.liveBlocks),
                     static_cast<unsigned long long>(stats_.liveBytes));
    }
    for (char *slab : slabs_)
        ::operator delete(slab, std::align_val_t{kAlign});
}

PoolArena::Header *
PoolArena::carve(std::uint32_t cls)
{
    const std::size_t need = kAlign + (cls + 1) * kAlign;  // header+payload
    if (slabs_.empty() || slabCap_ - slabNext_ < need) {
        std::size_t bytes = nextSlabBytes_;
        if (bytes < need)
            bytes = need;
        slabs_.push_back(static_cast<char *>(
            ::operator new(bytes, std::align_val_t{kAlign})));
        slabNext_ = 0;
        slabCap_ = bytes;
        stats_.slabBytes += bytes;
        if (nextSlabBytes_ < kMaxSlabBytes)
            nextSlabBytes_ *= 2;
    }
    auto *h = reinterpret_cast<Header *>(slabs_.back() + slabNext_);
    slabNext_ += need;
    h->sizeClass = cls;
    return h;
}

void *
PoolArena::allocate(std::size_t bytes)
{
    ++stats_.allocCalls;
    if (bytes == 0)
        bytes = 1;
    if (bytes > kMaxClassBytes) {
        ++stats_.oversize;
        ++stats_.liveBlocks;
        stats_.liveBytes += bytes;
        if (stats_.liveBytes > stats_.peakLiveBytes)
            stats_.peakLiveBytes = stats_.liveBytes;
        auto *h = static_cast<Header *>(
            ::operator new(kAlign + bytes, std::align_val_t{kAlign}));
        h->magic = kMagicLive;
        h->sizeClass = kOversizeClass;
        return reinterpret_cast<char *>(h) + kAlign;
    }
    const auto cls = static_cast<std::uint32_t>((bytes - 1) / kAlign);
    Header *h = freeLists_[cls];
    if (h != nullptr) {
        NORD_ASSERT(h->magic == kMagicFree, "arena free list corrupted");
        freeLists_[cls] = h->next;
        ++stats_.reuses;
    } else {
        h = carve(cls);
    }
    h->magic = kMagicLive;
    ++stats_.liveBlocks;
    stats_.liveBytes += (cls + 1) * kAlign;
    if (stats_.liveBytes > stats_.peakLiveBytes)
        stats_.peakLiveBytes = stats_.liveBytes;
    return reinterpret_cast<char *>(h) + kAlign;
}

void
PoolArena::deallocate(void *p, std::size_t bytes)
{
    if (p == nullptr)
        return;
    auto *h = reinterpret_cast<Header *>(static_cast<char *>(p) - kAlign);
    NORD_ASSERT(h->magic != kMagicFree, "arena double free");
    NORD_ASSERT(h->magic == kMagicLive, "free of non-arena pointer");
    ++stats_.frees;
    --stats_.liveBlocks;
    if (h->sizeClass == kOversizeClass) {
        // Oversize blocks are not pooled; hand them straight back. The
        // allocator contract passes the original size, which is what was
        // accounted at allocation time.
        stats_.liveBytes -= bytes;
        h->magic = kMagicFree;
        ::operator delete(h, std::align_val_t{kAlign});
        return;
    }
    const std::uint32_t cls = h->sizeClass;
    NORD_ASSERT(cls < kNumClasses, "arena header corrupted");
    stats_.liveBytes -= (cls + 1) * kAlign;
    h->magic = kMagicFree;
    h->next = freeLists_[cls];
    freeLists_[cls] = h;
}

}  // namespace nord

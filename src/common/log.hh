/**
 * @file
 * Minimal logging / error-reporting helpers in the gem5 spirit.
 *
 * panic()  - a simulator bug: something that should never happen. Aborts.
 * fatal()  - a user error (bad configuration). Exits with status 1.
 * warn()   - questionable but survivable condition.
 * inform() - status message.
 */

#ifndef NORD_COMMON_LOG_HH
#define NORD_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace nord {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

/**
 * The stream diagnostics go to (stderr). Components outside common/ must
 * route ad-hoc diagnostic output through this accessor rather than
 * naming stderr directly, so every side channel is enumerable (nord-lint
 * enforces this).
 */
std::FILE *diagStream();

/** Abort on simulator-internal invariant violation. */
#define NORD_PANIC(...) \
    ::nord::detail::panicImpl(__FILE__, __LINE__, \
        ::nord::detail::formatString(__VA_ARGS__))

/** Exit on user configuration error. */
#define NORD_FATAL(...) \
    ::nord::detail::fatalImpl(__FILE__, __LINE__, \
        ::nord::detail::formatString(__VA_ARGS__))

/** Non-fatal warning. */
#define NORD_WARN(...) \
    ::nord::detail::warnImpl(::nord::detail::formatString(__VA_ARGS__))

/** Informational message. */
#define NORD_INFORM(...) \
    ::nord::detail::informImpl(::nord::detail::formatString(__VA_ARGS__))

/**
 * Assert an invariant, with formatted context on failure. Always on, in
 * every build type: use it for protocol-level properties whose violation
 * must never go unnoticed (flow-control overflow, power-gating safety).
 */
#define NORD_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            NORD_PANIC("assertion '%s' failed: %s", #cond, \
                ::nord::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)

/**
 * Debug-only assertion tier for dense hot-loop checks (per-flit bounds,
 * redundant state checks already covered by the InvariantAuditor). Compiles
 * to nothing under NDEBUG (Release) while still type-checking both the
 * condition and the message arguments.
 */
#ifdef NDEBUG
#define NORD_DCHECK(cond, ...) \
    do { \
        if (false && !(cond)) { \
            NORD_PANIC("dcheck '%s' failed: %s", #cond, \
                ::nord::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)
#else
#define NORD_DCHECK(cond, ...) NORD_ASSERT(cond, __VA_ARGS__)
#endif

}  // namespace nord

#endif  // NORD_COMMON_LOG_HH

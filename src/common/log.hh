/**
 * @file
 * Minimal logging / error-reporting helpers in the gem5 spirit.
 *
 * panic()  - a simulator bug: something that should never happen. Aborts.
 * fatal()  - a user error (bad configuration). Exits with status 1.
 * warn()   - questionable but survivable condition.
 * inform() - status message.
 */

#ifndef NORD_COMMON_LOG_HH
#define NORD_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace nord {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

/** Abort on simulator-internal invariant violation. */
#define NORD_PANIC(...) \
    ::nord::detail::panicImpl(__FILE__, __LINE__, \
        ::nord::detail::formatString(__VA_ARGS__))

/** Exit on user configuration error. */
#define NORD_FATAL(...) \
    ::nord::detail::fatalImpl(__FILE__, __LINE__, \
        ::nord::detail::formatString(__VA_ARGS__))

/** Non-fatal warning. */
#define NORD_WARN(...) \
    ::nord::detail::warnImpl(::nord::detail::formatString(__VA_ARGS__))

/** Informational message. */
#define NORD_INFORM(...) \
    ::nord::detail::informImpl(::nord::detail::formatString(__VA_ARGS__))

/** Assert an invariant, with formatted context on failure. */
#define NORD_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            NORD_PANIC("assertion '%s' failed: %s", #cond, \
                ::nord::detail::formatString(__VA_ARGS__).c_str()); \
        } \
    } while (0)

}  // namespace nord

#endif  // NORD_COMMON_LOG_HH

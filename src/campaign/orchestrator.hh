/**
 * @file
 * Fault-tolerant campaign orchestrator: crash-resumable work queue,
 * worker fleet supervision, poison-point quarantine.
 *
 * The orchestrator generalizes bench_util's single-child runSupervised
 * to a fleet: N forked workers run campaign points concurrently, each
 * heartbeating through its checkpoint file's mtime. The supervision
 * rules per worker:
 *
 *  - no heartbeat progress for hangTimeoutSec  -> SIGKILL, class "hang";
 *  - nonzero taxonomy exit                     -> classified per
 *    exit_codes.hh (deterministic failures quarantine immediately,
 *    transient ones retry with capped jittered backoff);
 *  - death by signal                           -> class "crash", retried;
 *  - chaos self-test kill (--chaos)            -> class "chaos", retried
 *    and NEVER counted toward the quarantine budget -- the kill was
 *    inflicted by the orchestrator itself and says nothing about the
 *    point. This is what keeps chaos runs' reports byte-identical to
 *    undisturbed runs'.
 *
 * After maxFailures counted failures a point is quarantined as poison
 * with diagnostics (class, exit code/signal, stderr tail, last
 * checkpoint path) instead of wedging the campaign.
 *
 * Every state transition is journaled (journal.hh) before the
 * orchestrator acts on it, so the orchestrator itself is crash-resumable:
 * SIGKILL it mid-campaign, re-exec it, and it resumes from the journal
 * and produces a byte-identical aggregate report. SIGINT/SIGTERM drain
 * the fleet (workers are killed -- their checkpoints ARE the resumable
 * state) and flush the journal; rerunning resumes.
 */

#ifndef NORD_CAMPAIGN_ORCHESTRATOR_HH
#define NORD_CAMPAIGN_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/backoff.hh"
#include "campaign/campaign_point.hh"
#include "campaign/journal.hh"

namespace nord {
namespace campaign {

/** Chaos self-test: kill random live workers on a seeded schedule. */
struct ChaosOptions
{
    bool enabled = false;
    std::uint64_t seed = 1;        ///< schedule + victim selection seed
    double meanIntervalSec = 0.5;  ///< mean time between kills
    int maxKills = 0;              ///< stop after this many (0 = no cap)

    // Partition chaos (multi-executor mode only): SIGSTOP the executor
    // itself for partitionDurationSec on a seeded schedule, simulating
    // a network partition -- lease expiry, takeover by another
    // executor, and a stale-writer resume, the full self-fencing path.
    double partitionMeanSec = 0.0;     ///< mean time between (0 = off)
    double partitionDurationSec = 0.0; ///< suspension length
    int maxPartitions = 1;             ///< stop after this many (floored
                                       ///< to 1; unbounded is never sane)
};

/** Orchestrator knobs. */
struct OrchestratorOptions
{
    std::string outDir;          ///< journal, checkpoints, reports
    int workers = 2;             ///< concurrent worker processes
    int maxFailures = 3;         ///< counted failures before quarantine
    double hangTimeoutSec = 30.0;
    double pollIntervalSec = 0.05;
    std::uint64_t rotateEvents = 4096;  ///< journal compaction threshold
    BackoffPolicy backoff;
    WorkerOptions worker;
    ChaosOptions chaos;
};

/** Final (or drained) campaign state. */
struct CampaignOutcome
{
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t missing = 0;     ///< not terminal (only after a drain)
    std::uint64_t launches = 0;    ///< worker forks this invocation
    std::uint64_t chaosKills = 0;  ///< chaos kills this invocation
    bool interrupted = false;      ///< drained by SIGINT/SIGTERM
    std::string reportJson;        ///< path, "" until written
    std::string reportCsv;
    std::string provenance;
};

/**
 * Run (or resume) the campaign defined by @p specs. Creates/reopens
 * "<outDir>/journal.jsonl", supervises up to opts.workers concurrent
 * workers until every point is terminal or a drain is requested, then
 * writes report.json / report.csv / provenance.json under outDir.
 *
 * The report files are a pure function of the grid: any sequence of
 * crashes, chaos kills, resumes and orchestrator re-execs yields the
 * same bytes. Provenance (attempt counts, checkpoint paths) is
 * deliberately segregated into provenance.json, which is NOT part of
 * that contract.
 *
 * Returns false (with @p err) only on orchestration failure -- journal
 * I/O trouble, fork exhaustion, a held journal lock. Quarantined points
 * and drains are reported through @p out, not as errors.
 */
bool runCampaign(const std::vector<PointSpec> &specs,
                 const OrchestratorOptions &opts, CampaignOutcome *out,
                 std::string *err);

/**
 * Ask a running campaign to drain: stop launching, kill and reap the
 * fleet, flush the journal, return with outcome.interrupted set.
 * Async-signal-safe; wired to SIGINT/SIGTERM by the CLI.
 */
void requestCampaignDrain();

/** Reset the drain latch (tests run several campaigns per process). */
void clearCampaignDrain();

/** Poll the drain latch (the multi-executor loop shares it). */
bool campaignDrainRequested();

// --- Report rendering (exposed for tests) -------------------------------

/**
 * Render the aggregate JSON report for @p specs from replayed journal
 * state @p state: one entry per point in id order, status
 * completed/quarantined/missing, completed metrics pasted verbatim from
 * the worker result lines. Deterministic by construction.
 */
std::string renderReportJson(const std::vector<PointSpec> &specs,
                             const ReplayState &state);

/** CSV twin of renderReportJson (one row per point, id order). */
std::string renderReportCsv(const std::vector<PointSpec> &specs,
                            const ReplayState &state);

/**
 * Render provenance.json: launches, counted failures, retry counts and
 * artifact paths per point. Carries everything nondeterministic that the
 * byte-identical report must exclude.
 */
std::string renderProvenanceJson(const std::vector<PointSpec> &specs,
                                 const ReplayState &state,
                                 const std::string &outDir);

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_ORCHESTRATOR_HH

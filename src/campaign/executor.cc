/**
 * @file
 * Multi-executor campaign engine implementation (see executor.hh for
 * the join protocol and merge.hh / lease.hh for the invariants).
 */

#include "campaign/executor.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "campaign/fleet.hh"
#include "campaign/lease.hh"
#include "campaign/merge.hh"
#include "ckpt/checkpoint.hh"
#include "common/log.hh"
#include "common/rng.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace nord {
namespace campaign {

#ifdef NORD_CAMPAIGN_POSIX

namespace {

void
setErr(std::string *err, std::string what)
{
    if (err)
        *err = std::move(what);
}

/** Campaign manifest: the frozen fleet-wide parameters. */
struct Manifest
{
    std::uint64_t points = 0;
    std::uint64_t gridFp = 0;
    std::uint64_t shards = 0;
    double graceSec = 0.0;
};

std::string
renderManifest(const Manifest &m)
{
    return detail::formatString(
        "{\"format\":%d,\"points\":%llu,\"gridFp\":%llu,"
        "\"shards\":%llu,\"leaseGraceSec\":%.17g}\n",
        kJournalFormat, static_cast<unsigned long long>(m.points),
        static_cast<unsigned long long>(m.gridFp),
        static_cast<unsigned long long>(m.shards), m.graceSec);
}

bool
parseManifest(const std::string &line, Manifest *out)
{
    Manifest m;
    std::string raw;
    if (!jsonFieldU64(line, "points", &m.points) ||
        !jsonFieldU64(line, "gridFp", &m.gridFp) ||
        !jsonFieldU64(line, "shards", &m.shards) ||
        !jsonFieldRaw(line, "leaseGraceSec", &raw))
        return false;
    m.graceSec = std::strtod(raw.c_str(), nullptr);
    if (m.shards == 0 || m.graceSec <= 0.0)
        return false;
    *out = m;
    return true;
}

/** Write @p bytes to @p path, fsync'd (for a subsequent link). */
bool
writeFileSynced(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    ok = (std::fflush(f) == 0) && ok;
    ok = (fsync(fileno(f)) == 0) && ok;
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

/**
 * Publish-or-adopt the campaign manifest: link(2) ours into place, and
 * on EEXIST read whoever won. Uniform (shards, grace) across the fleet
 * is REQUIRED for lease soundness, so the manifest, not the CLI, is
 * authoritative for every joiner after the first.
 */
bool
establishManifest(const std::string &outDir, const std::string &execId,
                  Manifest *m, std::string *err)
{
    const std::string path = outDir + "/campaign.json";
    std::string content = readWholeFile(path);
    if (content.empty()) {
        const std::string tmp = path + "." + execId + ".tmp";
        if (!writeFileSynced(tmp, renderManifest(*m))) {
            setErr(err, "cannot write manifest temp " + tmp);
            return false;
        }
        const bool linked = ::link(tmp.c_str(), path.c_str()) == 0;
        if (::unlink(tmp.c_str()) != 0) {
            // Stale temp is harmless.
        }
        if (linked) {
            if (!fsyncParentDir(path)) {
                // Manifest durability is best-effort at creation; every
                // later lease write fsyncs the same directory.
            }
            return true;
        }
        // Lost the creation race: adopt the winner's manifest.
        content = readWholeFile(path);
    }
    Manifest got;
    if (!parseManifest(content, &got)) {
        setErr(err, "unparseable campaign manifest " + path);
        return false;
    }
    if (got.points != m->points || got.gridFp != m->gridFp) {
        setErr(err, detail::formatString(
                        "campaign manifest %s belongs to a different "
                        "grid (points %llu fp %llu, expected %llu/%llu)",
                        path.c_str(),
                        static_cast<unsigned long long>(got.points),
                        static_cast<unsigned long long>(got.gridFp),
                        static_cast<unsigned long long>(m->points),
                        static_cast<unsigned long long>(m->gridFp)));
        return false;
    }
    *m = got;
    return true;
}

std::string
autoExecId()
{
    char host[128] = "host";
    if (gethostname(host, sizeof(host) - 1) != 0) {
        // Keep the placeholder.
    }
    host[sizeof(host) - 1] = '\0';
    std::string clean;
    for (const char *p = host; *p; ++p) {
        const char c = *p;
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-')
            clean += c;
    }
    if (clean.empty())
        clean = "host";
    return detail::formatString(
        "exec-%s-%ld-%llu", clean.c_str(), static_cast<long>(getpid()),
        static_cast<unsigned long long>(monotonicSec() * 1e9));
}

/** The other executors' journal files under @p outDir, sorted. */
std::vector<std::string>
peerJournals(const std::string &outDir, const std::string &ownName)
{
    std::vector<std::string> out;
    DIR *d = opendir(outDir.c_str());
    if (!d)
        return out;
    while (struct dirent *e = readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() < 15 || name.compare(0, 8, "journal-") != 0)
            continue;
        if (name.compare(name.size() - 6, 6, ".jsonl") != 0)
            continue;
        if (name == ownName)
            continue;
        out.push_back(outDir + "/" + name);
    }
    closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Fork a helper that SIGSTOPs THIS process for @p durationSec, then
 * SIGCONTs it: a self-inflicted partition. The helper re-checks its
 * parentage before every kill so it can never signal a recycled pid,
 * and dies with the executor (Linux PDEATHSIG).
 */
long
spawnPartitionHelper(double durationSec)
{
    const pid_t target = getpid();
    const pid_t pid = fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
#ifdef __linux__
        if (prctl(PR_SET_PDEATHSIG, SIGKILL) != 0) {
            // Reduced cleanup coverage only.
        }
#endif
        if (getppid() != target)
            _exit(0);
        if (kill(target, SIGSTOP) != 0)
            _exit(0);
        sleepSec(durationSec);
        if (getppid() == target) {
            if (kill(target, SIGCONT) != 0) {
                // Executor already gone.
            }
        }
        _exit(0);
    }
    return static_cast<long>(pid);
}

}  // namespace

bool
runExecutor(const std::vector<PointSpec> &specs,
            const ExecutorOptions &opts, ExecutorOutcome *out,
            std::string *err)
{
    ExecutorOutcome outcome;
    if (opts.outDir.empty()) {
        setErr(err, "campaign outDir must not be empty");
        return false;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].id != i) {
            setErr(err, "campaign point ids must be dense and ordered");
            return false;
        }
    }
    if (mkdir(opts.outDir.c_str(), 0755) != 0 && errno != EEXIST) {
        setErr(err, detail::formatString("cannot create %s: %s",
                                         opts.outDir.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    const bool hasManifest = fileExists(opts.outDir + "/campaign.json");
    if (!hasManifest && fileExists(opts.outDir + "/journal.jsonl")) {
        setErr(err, opts.outDir + " is a classic single-orchestrator "
                    "campaign directory; resume it without --join");
        return false;
    }

    const std::string execId =
        opts.execId.empty() ? autoExecId() : opts.execId;
    outcome.execId = execId;

    const std::uint64_t gridFp = gridFingerprint(specs);
    Manifest manifest;
    manifest.points = specs.size();
    manifest.gridFp = gridFp;
    manifest.shards =
        opts.shards > 0
            ? opts.shards
            : std::min<std::uint64_t>(
                  std::max<std::uint64_t>(1, specs.size()), 8);
    manifest.graceSec =
        opts.leaseGraceSec > 0.0 ? opts.leaseGraceSec : 2.0;
    if (!establishManifest(opts.outDir, execId, &manifest, err))
        return false;
    const std::uint64_t shards = manifest.shards;
    const auto shardOf = [shards](std::uint64_t id) {
        return id % shards;
    };

    LeaseOptions lopts;
    lopts.leaseDir = opts.outDir + "/leases";
    lopts.execId = execId;
    lopts.shards = shards;
    lopts.graceSec = manifest.graceSec;
    lopts.renewSec = opts.leaseRenewSec;
    LeaseManager leases;
    if (!leases.init(lopts, err))
        return false;

    // Per-executor artifact directory: no temp-file collisions between
    // executors' workers, ever.
    const std::string execDir = opts.outDir + "/" + execId;
    if (mkdir(execDir.c_str(), 0755) != 0 && errno != EEXIST) {
        setErr(err, detail::formatString("cannot create %s: %s",
                                         execDir.c_str(),
                                         std::strerror(errno)));
        return false;
    }

    const std::string ownJournalName = "journal-" + execId + ".jsonl";
    CampaignJournal journal;
    ReplayState mine;
    if (!journal.open(opts.outDir + "/" + ownJournalName, specs.size(),
                      gridFp, &mine, err))
        return false;
    mine.points = specs.size();
    mine.gridFp = gridFp;

    /** Merge our in-memory state with every peer journal on disk. */
    ReplayState merged;
    MergeStats mergeStats;
    bool mergeFailed = false;
    const auto refreshView = [&]() -> bool {
        std::vector<ReplayState> states;
        states.push_back(mine);
        for (const std::string &path :
             peerJournals(opts.outDir, ownJournalName)) {
            const std::string content = readWholeFile(path);
            if (content.empty())
                continue;  // a joiner that has not written its header yet
            ReplayState s;
            std::string perr;
            if (!CampaignJournal::replayContent(content, specs.size(),
                                                gridFp, &s, &perr)) {
                // A peer journal we cannot read can only delay
                // completion, never corrupt it: skip this tick.
                std::fprintf(diagStream(),
                             "[executor %s] skipping peer journal %s: "
                             "%s\n",
                             execId.c_str(), path.c_str(), perr.c_str());
                continue;
            }
            states.push_back(std::move(s));
        }
        std::string merr;
        if (!mergeReplayStates(states, &merged, &mergeStats, &merr)) {
            setErr(err, "journal merge failed: " + merr);
            mergeFailed = true;
            return false;
        }
        merged.points = specs.size();
        merged.gridFp = gridFp;
        return true;
    };

    std::vector<PointRuntime> runtime(specs.size());
    std::vector<WorkerSlot> fleet;
    Rng chaosRng(opts.chaos.seed);
    double nextChaosAt = monotonicSec();
    double nextPartitionAt = monotonicSec();
    if (opts.chaos.enabled) {
        nextChaosAt += opts.chaos.meanIntervalSec *
                       (0.5 + chaosRng.uniform());
        if (opts.chaos.partitionMeanSec > 0.0)
            nextPartitionAt += opts.chaos.partitionMeanSec *
                               (0.5 + chaosRng.uniform());
    }
    std::vector<long> helperPids;

    const int maxWorkers = std::max(1, opts.workers);
    const int maxFailures = std::max(1, opts.maxFailures);
    const int maxPartitions = std::max(1, opts.chaos.maxPartitions);
    bool orchestrationFailed = false;
    bool drainSelf = false;

    /** Commit the consequences of one reaped worker -- ONLY while the
     *  point's shard lease is provably ours (the fencing check at
     *  result-commit time). */
    const auto handleExit = [&](const WorkerSlot &slot, int wstatus) {
        const std::uint64_t id = slot.point;
        const std::uint64_t shard = shardOf(id);
        if (!leases.writable(shard, monotonicSec()))
            return;  // fence latched; the result is abandoned
        const ShardStamp stamp{shard, leases.token(shard)};
        const PointPaths paths = pointPaths(execDir, id);
        const bool exited = WIFEXITED(wstatus);
        const int exitCode = exited ? WEXITSTATUS(wstatus) : 0;
        const bool signaled = WIFSIGNALED(wstatus);
        const int sig = signaled ? WTERMSIG(wstatus) : 0;
        FailureClass cls =
            classifyExit(exited, exitCode, signaled, sig,
                         slot.killedForHang, slot.killedForChaos);

        if (cls == FailureClass::kNone) {
            std::string result;
            if (readResultLine(paths.result, &result)) {
                journal.appendDone(id, result, stamp);
                ReplayPoint &p = mine.perPoint[id];
                p.done = true;
                p.resultLine = std::move(result);
                p.token = std::max(p.token, stamp.token);
                runtime[id].phase = PointPhase::kDone;
                return;
            }
            cls = FailureClass::kInfra;
        }

        const bool counted = failureCountsTowardQuarantine(cls);
        const std::string tail = stderrTail(paths.stderrLog);
        const std::string ckpt =
            fileExists(paths.checkpoint) ? paths.checkpoint : "";
        journal.appendFail(id, cls, exited ? exitCode : 0, sig, counted,
                           tail, ckpt, stamp);
        ReplayPoint &p = mine.perPoint[id];
        if (counted)
            p.countedFailures += 1;

        // Quarantine on the MERGED count: failures charged by previous
        // shard owners count too (the point, not the owner, is poison).
        int mergedCount = p.countedFailures;
        const auto mit = merged.perPoint.find(id);
        if (mit != merged.perPoint.end())
            mergedCount = std::max(
                mergedCount, mit->second.countedFailures + (counted ? 1 : 0));
        if (isDeterministicFailure(cls) ||
            (counted && mergedCount >= maxFailures)) {
            QuarantineRecord rec;
            rec.cls = cls;
            rec.exitCode = exited ? exitCode : 0;
            rec.signal = sig;
            rec.stderrTail = tail;
            rec.ckptPath = ckpt;
            journal.appendQuarantine(id, rec, stamp);
            p.quarantined = true;
            p.quarantine = rec;
            p.token = std::max(p.token, stamp.token);
            runtime[id].phase = PointPhase::kQuarantined;
            std::fprintf(diagStream(),
                         "[executor %s] point %llu quarantined (%s) "
                         "after %d counted failure(s)\n",
                         execId.c_str(),
                         static_cast<unsigned long long>(id),
                         failureClassName(cls), mergedCount);
            return;
        }

        const int attempt = counted ? std::max(1, mergedCount) : 1;
        const std::uint64_t noise = gridFp ^ (id * 0x9e3779b97f4a7c15ULL);
        runtime[id].phase = PointPhase::kWaiting;
        runtime[id].readyAt =
            monotonicSec() + backoffDelaySec(opts.backoff, attempt, noise);
    };

    const auto spawn = [&](std::uint64_t id) -> bool {
        const std::uint64_t shard = shardOf(id);
        const ShardStamp stamp{shard, leases.token(shard)};
        const PointPaths paths = pointPaths(execDir, id);
        ReplayPoint &p = mine.perPoint[id];
        if (!journal.appendAttempt(id, p.launches + 1, stamp))
            return false;
        p.launches += 1;
        const long pid = spawnPointWorker(specs[id], paths, opts.worker);
        if (pid < 0)
            return false;
        WorkerSlot slot;
        slot.pid = pid;
        slot.point = id;
        slot.lastProgress = monotonicSec();
        slot.haveMtime = fileMtimeNs(paths.checkpoint, &slot.lastMtimeNs);
        fleet.push_back(slot);
        runtime[id].phase = PointPhase::kRunning;
        outcome.launches += 1;
        if (opts.drainAfterLaunches > 0 &&
            outcome.launches >= opts.drainAfterLaunches)
            drainSelf = true;
        return true;
    };

    const auto reapHelpers = [&](bool block) {
        for (std::size_t i = 0; i < helperPids.size();) {
            int st = 0;
            const pid_t r =
                waitpid(static_cast<pid_t>(helperPids[i]), &st,
                        block ? 0 : WNOHANG);
            if (r == static_cast<pid_t>(helperPids[i]) ||
                (r < 0 && errno == ECHILD)) {
                helperPids.erase(helperPids.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }
    };

    if (!refreshView()) {
        journal.close();
        if (out)
            *out = outcome;
        return false;
    }

    while (true) {
        if (campaignDrainRequested() || drainSelf) {
            outcome.interrupted = true;
            break;
        }

        // Fence check FIRST: an executor resumed from a partition must
        // classify itself dead BEFORE it reaps and commits anything its
        // workers finished while it was suspended.
        double now = monotonicSec();
        for (const std::uint64_t shard : leases.heldShards()) {
            if (!leases.writable(shard, now))
                break;  // writable() latches the fence
        }
        if (leases.fenced()) {
            outcome.fenced = true;
            outcome.fenceReason = leases.fenceReason();
            break;
        }
        if (!journal.ok()) {
            orchestrationFailed = true;
            setErr(err, journal.error());
            break;
        }

        // Reap.
        for (std::size_t i = 0; i < fleet.size();) {
            int wstatus = 0;
            const pid_t r = waitpid(static_cast<pid_t>(fleet[i].pid),
                                    &wstatus, WNOHANG);
            if (r == static_cast<pid_t>(fleet[i].pid)) {
                const WorkerSlot slot = fleet[i];
                fleet.erase(fleet.begin() +
                            static_cast<std::ptrdiff_t>(i));
                handleExit(slot, wstatus);
            } else {
                ++i;
            }
        }
        reapHelpers(false);
        if (leases.fenced()) {
            // handleExit's commit-time check tripped mid-reap.
            outcome.fenced = true;
            outcome.fenceReason = leases.fenceReason();
            break;
        }

        now = monotonicSec();

        // Heartbeats: a checkpoint mtime change is progress.
        for (WorkerSlot &slot : fleet) {
            const PointPaths paths = pointPaths(execDir, slot.point);
            std::uint64_t mt = 0;
            if (fileMtimeNs(paths.checkpoint, &mt) &&
                (!slot.haveMtime || mt != slot.lastMtimeNs)) {
                slot.haveMtime = true;
                slot.lastMtimeNs = mt;
                slot.lastProgress = now;
            }
            if (!slot.killedForHang && !slot.killedForChaos &&
                now - slot.lastProgress > opts.hangTimeoutSec) {
                slot.killedForHang = true;
                killWorkerGroup(slot.pid);
                std::fprintf(diagStream(),
                             "[executor %s] point %llu hung, killed "
                             "worker %ld\n",
                             execId.c_str(),
                             static_cast<unsigned long long>(slot.point),
                             slot.pid);
            }
        }

        // Chaos: worker kills, then self-partitions.
        if (opts.chaos.enabled && now >= nextChaosAt &&
            opts.chaos.meanIntervalSec > 0.0 &&
            (opts.chaos.maxKills <= 0 ||
             outcome.chaosKills <
                 static_cast<std::uint64_t>(opts.chaos.maxKills))) {
            nextChaosAt = now + opts.chaos.meanIntervalSec *
                                    (0.5 + chaosRng.uniform());
            std::vector<std::size_t> victims;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                if (!fleet[i].killedForHang && !fleet[i].killedForChaos)
                    victims.push_back(i);
            }
            if (!victims.empty()) {
                WorkerSlot &slot =
                    fleet[victims[chaosRng.uniformInt(victims.size())]];
                slot.killedForChaos = true;
                killWorkerGroup(slot.pid);
                outcome.chaosKills += 1;
                std::fprintf(diagStream(),
                             "[executor %s] chaos: killed worker %ld "
                             "(point %llu)\n",
                             execId.c_str(), slot.pid,
                             static_cast<unsigned long long>(slot.point));
            }
        }
        if (opts.chaos.enabled && opts.chaos.partitionMeanSec > 0.0 &&
            now >= nextPartitionAt &&
            outcome.partitions <
                static_cast<std::uint64_t>(maxPartitions)) {
            nextPartitionAt = now + opts.chaos.partitionMeanSec *
                                        (0.5 + chaosRng.uniform());
            const long helper =
                spawnPartitionHelper(opts.chaos.partitionDurationSec);
            if (helper > 0) {
                helperPids.push_back(helper);
                outcome.partitions += 1;
                std::fprintf(diagStream(),
                             "[executor %s] chaos: self-partition for "
                             "%.2fs (SIGSTOP)\n",
                             execId.c_str(),
                             opts.chaos.partitionDurationSec);
            }
        }

        // Refresh the merged view and fold it into local scheduling.
        if (!refreshView()) {
            orchestrationFailed = true;
            break;
        }
        bool allTerminal = true;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto it = merged.perPoint.find(specs[i].id);
            const bool terminal =
                it != merged.perPoint.end() &&
                (it->second.done || it->second.quarantined);
            if (!terminal) {
                allTerminal = false;
            } else if (runtime[i].phase != PointPhase::kRunning) {
                runtime[i].phase = it->second.done
                                       ? PointPhase::kDone
                                       : PointPhase::kQuarantined;
            }
        }
        if (allTerminal && fleet.empty())
            break;

        leases.renewDue(monotonicSec());
        if (leases.fenced()) {
            outcome.fenced = true;
            outcome.fenceReason = leases.fenceReason();
            break;
        }

        // Acquire another shard only when the held ones cannot feed the
        // worker slots -- the fleet load-shares instead of hoarding.
        now = monotonicSec();
        int runnableLocal = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (runtime[i].phase == PointPhase::kDone ||
                runtime[i].phase == PointPhase::kQuarantined)
                continue;
            if (leases.holds(shardOf(specs[i].id)))
                ++runnableLocal;
        }
        if (runnableLocal < maxWorkers) {
            for (std::uint64_t shard = 0; shard < shards; ++shard) {
                if (leases.holds(shard))
                    continue;
                bool shardHasWork = false;
                for (std::uint64_t id = shard; id < specs.size();
                     id += shards) {
                    const auto it = merged.perPoint.find(id);
                    if (it == merged.perPoint.end() ||
                        (!it->second.done && !it->second.quarantined)) {
                        shardHasWork = true;
                        break;
                    }
                }
                if (!shardHasWork)
                    continue;
                std::uint64_t token = 0;
                if (leases.tryAcquire(shard, now, &token)) {
                    journal.appendClaim(shard, token);
                    std::fprintf(
                        diagStream(),
                        "[executor %s] claimed shard %llu (token "
                        "%llu)\n",
                        execId.c_str(),
                        static_cast<unsigned long long>(shard),
                        static_cast<unsigned long long>(token));
                    break;  // at most one acquisition per tick
                }
            }
        }

        // Launch, id order, while slots are free.
        now = monotonicSec();
        for (std::size_t i = 0; i < specs.size(); ++i) {
            PointRuntime &rt = runtime[i];
            if (rt.phase == PointPhase::kDone ||
                rt.phase == PointPhase::kQuarantined ||
                rt.phase == PointPhase::kRunning)
                continue;
            if (static_cast<int>(fleet.size()) >= maxWorkers)
                break;
            const std::uint64_t shard = shardOf(specs[i].id);
            if (!leases.holds(shard) || !leases.writable(shard, now))
                continue;
            if (rt.phase == PointPhase::kPending ||
                (rt.phase == PointPhase::kWaiting && now >= rt.readyAt)) {
                if (!spawn(specs[i].id))
                    break;
            }
        }

        sleepSec(opts.pollIntervalSec);
    }

    killFleet(&fleet);
    reapHelpers(false);

    if (!orchestrationFailed && !journal.ok()) {
        orchestrationFailed = true;
        setErr(err, journal.error());
    }
    journal.close();

    if (outcome.fenced) {
        std::fprintf(diagStream(),
                     "[executor %s] self-fenced (%s): all further "
                     "writes aborted, exiting lease-lost\n",
                     execId.c_str(), outcome.fenceReason.c_str());
    }
    // No-op when fenced: a fenced executor never touches lease files.
    leases.releaseAll();

    // Final tallies (and, from the executor that sees full coverage,
    // the canonical journal + reports). A fenced executor must not
    // write ANY shared file, reports included.
    if (!orchestrationFailed && !outcome.fenced && !mergeFailed) {
        std::uint64_t terminal = 0;
        for (const PointSpec &spec : specs) {
            const auto it = merged.perPoint.find(spec.id);
            if (it != merged.perPoint.end() && it->second.done) {
                outcome.completed += 1;
                ++terminal;
            } else if (it != merged.perPoint.end() &&
                       it->second.quarantined) {
                outcome.quarantined += 1;
                ++terminal;
            } else {
                outcome.missing += 1;
            }
        }
        outcome.staleDropped = mergeStats.staleDropped;
        if (terminal == specs.size()) {
            const std::string suffix = "." + execId + ".tmp";
            std::string werr;
            outcome.reportJson = opts.outDir + "/report.json";
            outcome.reportCsv = opts.outDir + "/report.csv";
            outcome.provenance = opts.outDir + "/provenance.json";
            if (!atomicWriteFile(opts.outDir + "/journal.jsonl",
                                 renderCanonicalJournal(merged), &werr,
                                 suffix) ||
                !atomicWriteFile(outcome.reportJson,
                                 renderReportJson(specs, merged), &werr,
                                 suffix) ||
                !atomicWriteFile(outcome.reportCsv,
                                 renderReportCsv(specs, merged), &werr,
                                 suffix) ||
                !atomicWriteFile(outcome.provenance,
                                 renderProvenanceJson(specs, merged,
                                                      opts.outDir),
                                 &werr, suffix)) {
                orchestrationFailed = true;
                setErr(err, "report write failed: " + werr);
            } else {
                outcome.wroteReports = true;
            }
        }
    }

    if (out)
        *out = outcome;
    return !orchestrationFailed;
}

#else  // !NORD_CAMPAIGN_POSIX

bool
runExecutor(const std::vector<PointSpec> &specs,
            const ExecutorOptions &opts, ExecutorOutcome *out,
            std::string *err)
{
    (void)specs;
    (void)opts;
    (void)out;
    if (err)
        *err = "multi-executor campaigns require a POSIX host";
    return false;
}

#endif  // NORD_CAMPAIGN_POSIX

}  // namespace campaign
}  // namespace nord

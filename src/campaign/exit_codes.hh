/**
 * @file
 * Process exit-code taxonomy for campaign workers and benches.
 *
 * A supervisor deciding between *retry* and *quarantine* needs to know
 * whether a failure is deterministic (retrying reproduces it bit-exactly,
 * so retrying is a restart storm) or environmental (a retry may succeed).
 * Every campaign-facing binary -- the resilience_sweep bench, the
 * nord-campaign worker -- reports failures through these codes:
 *
 *   kExitOk           success
 *   kExitGateFailure  a simulation *result* failed an acceptance gate
 *                     (e.g. --min-delivered): deterministic, quarantine
 *   kExitBadConfig    the configuration itself is invalid or incompatible
 *                     (config lint failure, checkpoint fingerprint
 *                     mismatch): deterministic, quarantine
 *   kExitInfraFailure infrastructure trouble (ENOSPC on a checkpoint,
 *                     unreadable journal, fork failure): transient, retry
 *   kExitLeaseLost    the executor lost its shard lease (partition,
 *                     suspension, stolen after heartbeat starvation) and
 *                     self-fenced: the work is retried ELSEWHERE by the
 *                     lease's new owner and never counted against any
 *                     point -- lease loss describes the fleet, not the
 *                     simulation
 *
 * Codes start at 10 so they can never collide with the conventional 0/1/2
 * of asserts, sanitizers and argument parsers; anything outside the
 * taxonomy (including death by signal) classifies as kUnknown and is
 * retried with backoff until the attempt budget quarantines it.
 */

#ifndef NORD_CAMPAIGN_EXIT_CODES_HH
#define NORD_CAMPAIGN_EXIT_CODES_HH

namespace nord {
namespace campaign {

/** Exit codes with supervision semantics (see file comment). */
enum ExitCode : int
{
    kExitOk = 0,
    kExitGateFailure = 10,   ///< deterministic: result failed a gate
    kExitBadConfig = 11,     ///< deterministic: configuration invalid
    kExitInfraFailure = 12,  ///< transient: I/O / fork / disk trouble
    kExitInterrupted = 13,   ///< drained by SIGINT/SIGTERM, state flushed
    kExitLeaseLost = 14,     ///< executor self-fenced: lease stolen/expired
};

/** Why one worker attempt ended, as the supervisor classified it. */
enum class FailureClass : int
{
    kNone = 0,       ///< attempt succeeded
    kGate = 1,       ///< kExitGateFailure: poison, do not retry
    kBadConfig = 2,  ///< kExitBadConfig: poison, do not retry
    kInfra = 3,      ///< kExitInfraFailure: transient, retry
    kCrash = 4,      ///< died on a signal (not the supervisor's): retry
    kHang = 5,       ///< no heartbeat progress, supervisor SIGKILLed it
    kChaos = 6,      ///< chaos self-test kill: retry, never counted
    kLeaseLost = 7,  ///< kExitLeaseLost: retried elsewhere, never counted
    kUnknown = 8,    ///< unrecognized nonzero exit code: retry
};

/** Stable name for journal/report serialization. */
inline const char *
failureClassName(FailureClass c)
{
    switch (c) {
      case FailureClass::kNone: return "none";
      case FailureClass::kGate: return "gate";
      case FailureClass::kBadConfig: return "bad-config";
      case FailureClass::kInfra: return "infra";
      case FailureClass::kCrash: return "crash";
      case FailureClass::kHang: return "hang";
      case FailureClass::kChaos: return "chaos";
      case FailureClass::kLeaseLost: return "lease-lost";
      case FailureClass::kUnknown: return "unknown";
    }
    return "?";
}

/** Parse a failureClassName() string (kUnknown for anything else). */
inline FailureClass
failureClassFromName(const char *name)
{
    for (int i = 0; i <= static_cast<int>(FailureClass::kUnknown); ++i) {
        const FailureClass c = static_cast<FailureClass>(i);
        const char *n = failureClassName(c);
        const char *p = name;
        const char *q = n;
        while (*p && *q && *p == *q) {
            ++p;
            ++q;
        }
        if (*p == '\0' && *q == '\0')
            return c;
    }
    return FailureClass::kUnknown;
}

/**
 * Classify a worker's wait status, pre-decoded into (exited, exitCode,
 * signaled, signal). @p killedForHang marks a SIGKILL issued by the
 * supervisor itself after heartbeat starvation; @p killedForChaos marks a
 * chaos self-test kill.
 */
inline FailureClass
classifyExit(bool exited, int exitCode, bool signaled, int signal,
             bool killedForHang = false, bool killedForChaos = false)
{
    (void)signal;
    if (killedForChaos)
        return FailureClass::kChaos;
    if (killedForHang)
        return FailureClass::kHang;
    if (exited) {
        switch (exitCode) {
          case kExitOk: return FailureClass::kNone;
          case kExitGateFailure: return FailureClass::kGate;
          case kExitBadConfig: return FailureClass::kBadConfig;
          case kExitInfraFailure: return FailureClass::kInfra;
          case kExitLeaseLost: return FailureClass::kLeaseLost;
          default: return FailureClass::kUnknown;
        }
    }
    if (signaled)
        return FailureClass::kCrash;
    return FailureClass::kUnknown;
}

/**
 * True when retrying can never change the outcome: the failure is a
 * deterministic property of the (config, seed, workload) point, so the
 * supervisor must quarantine immediately instead of burning retries.
 */
inline bool
isDeterministicFailure(FailureClass c)
{
    return c == FailureClass::kGate || c == FailureClass::kBadConfig;
}

/**
 * True when the attempt consumes retry budget. Chaos kills are inflicted
 * by the supervisor's own self-test and say nothing about the point;
 * lease loss is an infrastructure event of the FLEET (a partitioned or
 * suspended executor self-fenced) -- the point is retried by the lease's
 * next owner and must never be charged for its old owner's misfortune.
 */
inline bool
failureCountsTowardQuarantine(FailureClass c)
{
    return c != FailureClass::kNone && c != FailureClass::kChaos &&
           c != FailureClass::kLeaseLost;
}

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_EXIT_CODES_HH

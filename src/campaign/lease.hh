/**
 * @file
 * Per-shard lease files with monotonic fencing tokens: the mutual
 * exclusion layer of the multi-executor campaign engine.
 *
 * Every shard of a campaign grid has one lease file,
 * "<leases>/shard-<k>.lease", holding a single JSON line:
 *
 *   {"shard":k,"token":T,"owner":"<execId>","beat":B}
 *
 * The protocol is built ONLY on atomic filesystem primitives that hold
 * across machines on a shared filesystem -- link(2) for the initial
 * exclusive claim and rename(2) for every update -- never on flock,
 * whose semantics over NFS and friends are exactly the kind of
 * dependency a fleet must not have.
 *
 *  - CLAIM (fresh): write a unique temp file, link(2) it to the lease
 *    name. link fails with EEXIST if anyone else got there first; on
 *    success the claimer owns token 1. No settle delay is needed --
 *    link is exclusive by construction.
 *  - RENEW (heartbeat): the owner re-reads the lease, verifies it still
 *    names (owner, token), then atomically renames an incremented beat
 *    over it. A renewal that observes a different owner or token means
 *    the lease was stolen: the executor FENCES.
 *  - STEAL: an observer watches (token, beat); only after the pair has
 *    been unchanged for graceSec of the OBSERVER'S monotonic clock (no
 *    cross-machine clock comparison anywhere) may it rename a
 *    token+1 lease over the file, wait settleSec, and read back. If the
 *    read-back shows its own id it holds the shard; otherwise it lost a
 *    steal race and simply resumes observing.
 *  - RELEASE: the owner renames the lease with owner "" -- a released
 *    lease is immediately stealable, no grace wait, and the token keeps
 *    counting from where it was.
 *
 * Lease files are never deleted: the token sequence on each shard is
 * monotonic for the lifetime of the campaign directory, which is what
 * makes the token usable as a fencing token at result-commit time.
 *
 * SELF-FENCING is deliberately more conservative than stealing: an
 * owner considers its lease lost as soon as it cannot prove a renewal
 * younger than graceSec/2 (writable() returns false and the manager
 * latches fenced()), while a thief must wait a full graceSec of
 * observed silence. The 2x margin means a suspended executor (SIGSTOP,
 * GC pause, NFS stall) always classifies itself dead BEFORE anyone
 * else may take the shard -- so by the time a new owner commits
 * results, the old one has stopped writing. Once fenced, a manager
 * never un-fences, and it never touches a lease file again (renaming
 * over a thief's fresh claim would usurp it).
 */

#ifndef NORD_CAMPAIGN_LEASE_HH
#define NORD_CAMPAIGN_LEASE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nord {
namespace campaign {

/** Decoded contents of one lease file. */
struct LeaseInfo
{
    std::uint64_t shard = 0;
    std::uint64_t token = 0;
    std::uint64_t beat = 0;
    std::string owner;  ///< executor id, "" when released
};

/** Path of shard @p shard's lease file under @p leaseDir. */
std::string leasePath(const std::string &leaseDir, std::uint64_t shard);

/** Render the single-line lease file body (with trailing newline). */
std::string renderLeaseLine(const LeaseInfo &info);

/**
 * Read and parse a lease file. Returns false when the file is missing
 * or unparseable (a torn write cannot happen -- updates are renames --
 * so unparseable means external interference).
 */
bool readLeaseFile(const std::string &path, LeaseInfo *out);

/** Lease-layer knobs. */
struct LeaseOptions
{
    std::string leaseDir;     ///< "<outDir>/leases"
    std::string execId;       ///< this executor's unique id
    std::uint64_t shards = 1;
    double graceSec = 2.0;    ///< observed silence before a steal
    double renewSec = 0.25;   ///< heartbeat period (<< graceSec/2)
    double settleSec = 0.05;  ///< post-steal read-back delay
};

/**
 * One executor's view of every shard lease (see file comment for the
 * protocol). All methods take the current monotonic time so tests can
 * drive the clock explicitly.
 */
class LeaseManager
{
  public:
    /** Create the lease directory; remembers the options. */
    bool init(const LeaseOptions &opts, std::string *err);

    /**
     * Try to take shard @p shard now: fresh claim when no lease file
     * exists, immediate steal when the lease is released (owner ""),
     * expiry steal when (token, beat) has been unchanged for graceSec.
     * Returns true with @p token set on success; false means "not now"
     * (held by a live owner, or a steal race was lost) -- never fatal.
     */
    bool tryAcquire(std::uint64_t shard, double now, std::uint64_t *token);

    /**
     * Renew every held lease whose heartbeat is due. Latches fenced()
     * when any held lease is too stale to prove (older than grace/2) or
     * a renewal observes another owner. Once fenced, no lease file is
     * ever written again.
     */
    void renewDue(double now);

    /** True while @p shard is held AND its last proven renewal is
     *  younger than graceSec/2: the commit-safety predicate. */
    bool writable(std::uint64_t shard, double now);

    bool holds(std::uint64_t shard) const;
    std::uint64_t token(std::uint64_t shard) const;
    std::vector<std::uint64_t> heldShards() const;

    /** Sticky: the executor must stop writing and exit kExitLeaseLost. */
    bool fenced() const { return fenced_; }
    const std::string &fenceReason() const { return fenceReason_; }

    /** Gracefully release every held lease (owner ""). No-op when
     *  fenced -- a fenced executor must not touch lease files. */
    void releaseAll();

  private:
    struct ShardView
    {
        bool held = false;
        std::uint64_t token = 0;  ///< ours while held
        std::uint64_t beat = 0;
        double lastRenewOk = 0.0;
        double nextRenewAt = 0.0;
        // Observation history for stealing:
        bool observed = false;
        std::uint64_t seenToken = 0;
        std::uint64_t seenBeat = 0;
        double seenSince = 0.0;  ///< when (seenToken, seenBeat) appeared
    };

    void fence(const std::string &why);
    bool writeLease(const LeaseInfo &info);
    void observe(std::uint64_t shard, const LeaseInfo &info, double now,
                 bool exists);

    LeaseOptions opts_;
    std::map<std::uint64_t, ShardView> shards_;
    bool fenced_ = false;
    std::string fenceReason_;
};

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_LEASE_HH

/**
 * @file
 * Worker-fleet primitives (see fleet.hh for the orphan-safety protocol).
 */

#include "campaign/fleet.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "campaign/exit_codes.hh"
#include "common/log.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#endif

#ifdef __linux__
#include <sys/prctl.h>
#endif

namespace nord {
namespace campaign {

double
monotonicSec()
{
#ifdef NORD_CAMPAIGN_POSIX
    struct timespec ts = {0, 0};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return 0.0;
#endif
}

void
sleepSec(double sec)
{
#ifdef NORD_CAMPAIGN_POSIX
    if (sec <= 0.0)
        return;
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(sec);
    ts.tv_nsec = static_cast<long>((sec - static_cast<double>(ts.tv_sec)) *
                                   1e9);
    nanosleep(&ts, nullptr);
#else
    (void)sec;
#endif
}

bool
fileMtimeNs(const std::string &path, std::uint64_t *out)
{
#ifdef NORD_CAMPAIGN_POSIX
    struct stat st;
    if (stat(path.c_str(), &st) != 0)
        return false;
#if defined(__APPLE__)
    *out = static_cast<std::uint64_t>(st.st_mtimespec.tv_sec) *
               1000000000ull +
           static_cast<std::uint64_t>(st.st_mtimespec.tv_nsec);
#else
    *out = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
#endif
    return true;
#else
    (void)path;
    (void)out;
    return false;
#endif
}

bool
fileExists(const std::string &path)
{
#ifdef NORD_CAMPAIGN_POSIX
    struct stat st;
    return stat(path.c_str(), &st) == 0;
#else
    std::ifstream in(path);
    return static_cast<bool>(in);
#endif
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in)
        return "";
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
stderrTail(const std::string &path, std::size_t maxBytes)
{
    std::string all = readWholeFile(path);
    while (!all.empty() && all.back() == '\n')
        all.pop_back();
    if (all.size() <= maxBytes)
        return all;
    std::string tail = all.substr(all.size() - maxBytes);
    const std::size_t nl = tail.find('\n');
    if (nl != std::string::npos && nl + 1 < tail.size())
        tail = tail.substr(nl + 1);
    return tail;
}

bool
readResultLine(const std::string &path, std::string *out)
{
    std::string content = readWholeFile(path);
    if (content.empty() || content.back() != '\n')
        return false;
    content.pop_back();
    if (content.empty() || content.find('\n') != std::string::npos)
        return false;
    *out = std::move(content);
    return true;
}

long
spawnPointWorker(const PointSpec &spec, const PointPaths &paths,
                 const WorkerOptions &opts)
{
#ifdef NORD_CAMPAIGN_POSIX
    const pid_t supervisor = getpid();
    const pid_t pid = fork();
    if (pid < 0) {
        std::fprintf(diagStream(), "[campaign] fork failed: %s\n",
                     std::strerror(errno));
        return -1;
    }
    if (pid == 0) {
        // Own process group so the supervisor can kill(-pid) this worker
        // together with anything it forks.
        if (setpgid(0, 0) != 0) {
            // Already a group leader or raced with the parent: harmless.
        }
#ifdef __linux__
        // Die with the supervisor: a SIGKILL'd supervisor runs no exit
        // path, so orphan reaping must be the kernel's job. The getppid
        // re-check closes the race where the supervisor died between
        // fork and prctl -- the death signal would never fire.
        if (prctl(PR_SET_PDEATHSIG, SIGKILL) != 0) {
            // Supervision still works; only SIGKILL-orphan coverage is
            // reduced.
        }
        if (getppid() != supervisor)
            _exit(kExitInfraFailure);
#else
        (void)supervisor;
#endif
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
        // Truncate, don't append: the quarantine stderr tail must
        // describe THIS attempt, not an accumulation of every prior
        // kill (which would vary with chaos timing).
        const int fd = ::open(paths.stderrLog.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd >= 0) {
            if (dup2(fd, 2) < 0) {
                // Diagnostics stay on the inherited fd 2; harmless.
            }
            ::close(fd);
        }
        _exit(runPointWorker(spec, paths, opts));
    }
    // The parent ALSO sets the group: whichever side runs first wins and
    // the group exists before any kill can target it. EACCES/ESRCH mean
    // the child already did it or already exited -- both fine.
    if (setpgid(pid, pid) != 0) {
        // See above.
    }
    return static_cast<long>(pid);
#else
    (void)spec;
    (void)paths;
    (void)opts;
    return -1;
#endif
}

void
killWorkerGroup(long pid)
{
#ifdef NORD_CAMPAIGN_POSIX
    if (pid <= 0)
        return;
    if (kill(static_cast<pid_t>(-pid), SIGKILL) != 0) {
        // The group may be gone while the leader is still a zombie (or
        // never existed on a setpgid race): fall back to the pid alone.
        if (kill(static_cast<pid_t>(pid), SIGKILL) != 0) {
            // Already fully reaped.
        }
    }
#else
    (void)pid;
#endif
}

void
killFleet(std::vector<WorkerSlot> *fleetSlots)
{
#ifdef NORD_CAMPAIGN_POSIX
    for (WorkerSlot &slot : *fleetSlots) {
        if (slot.pid > 0) {
            killWorkerGroup(slot.pid);
            int st = 0;
            waitpid(static_cast<pid_t>(slot.pid), &st, 0);
        }
    }
#endif
    fleetSlots->clear();
}

}  // namespace campaign
}  // namespace nord

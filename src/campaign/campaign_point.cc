/**
 * @file
 * Campaign point expansion and the supervised worker body.
 */

#include "campaign/campaign_point.hh"

#include <algorithm>

#include "campaign/exit_codes.hh"
#include "campaign/journal.hh"
#include "ckpt/checkpoint.hh"
#include "common/log.hh"
#include "network/noc_system.hh"
#include "power/power_model.hh"
#include "traffic/parsec_workload.hh"
#include "verify/static/config_lint.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace nord {
namespace campaign {

std::string
workloadName(const PointSpec &spec)
{
    if (spec.kind == WorkloadKind::kParsec)
        return "parsec:" + spec.parsec;
    return trafficPatternName(spec.pattern);
}

std::string
specJson(const PointSpec &spec)
{
    std::string s = detail::formatString(
        "{\"id\":%llu,\"design\":\"%s\",\"workload\":\"",
        static_cast<unsigned long long>(spec.id),
        pgDesignName(spec.design));
    s += jsonEscape(workloadName(spec));
    s += detail::formatString(
        "\",\"rate\":%g,\"seed\":%llu,\"rows\":%d,\"cols\":%d,"
        "\"cycles\":%llu,\"faultRate\":%g,\"minDelivered\":%g",
        spec.rate, static_cast<unsigned long long>(spec.seed), spec.rows,
        spec.cols, static_cast<unsigned long long>(spec.measure),
        spec.faultRate, spec.minDelivered);
    if (spec.selfTest != SelfTest::kNone)
        s += detail::formatString(
            ",\"selfTest\":\"%s\"",
            spec.selfTest == SelfTest::kPoison ? "poison" : "hang");
    s += "}";
    return s;
}

std::uint64_t
gridFingerprint(const std::vector<PointSpec> &specs)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const PointSpec &spec : specs) {
        for (char c : specJson(spec)) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
        h ^= 0x0a;  // line separator
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::vector<PointSpec>
expandGrid(const GridSpec &grid)
{
    std::vector<PointSpec> specs;
    std::uint64_t id = 0;
    auto base = [&](PgDesign d) {
        PointSpec s;
        s.design = d;
        s.rows = grid.rows;
        s.cols = grid.cols;
        s.measure = grid.measure;
        s.minDelivered = grid.minDelivered;
        return s;
    };
    for (PgDesign d : grid.designs) {
        for (TrafficPattern p : grid.patterns) {
            for (double rate : grid.rates) {
                for (double fr : grid.faultRates) {
                    for (std::uint64_t seed : grid.seeds) {
                        PointSpec s = base(d);
                        s.id = id++;
                        s.kind = WorkloadKind::kSynthetic;
                        s.pattern = p;
                        s.rate = rate;
                        s.faultRate = fr;
                        s.seed = seed;
                        specs.push_back(std::move(s));
                    }
                }
            }
        }
        for (const std::string &bench : grid.parsec) {
            for (double fr : grid.faultRates) {
                for (std::uint64_t seed : grid.seeds) {
                    PointSpec s = base(d);
                    s.id = id++;
                    s.kind = WorkloadKind::kParsec;
                    s.parsec = bench;
                    s.rate = 0.0;
                    s.faultRate = fr;
                    s.seed = seed;
                    specs.push_back(std::move(s));
                }
            }
        }
    }
    return specs;
}

PointPaths
pointPaths(const std::string &outDir, std::uint64_t id)
{
    const std::string stem = detail::formatString(
        "%s/point-%llu", outDir.c_str(),
        static_cast<unsigned long long>(id));
    PointPaths p;
    p.checkpoint = stem + ".ckpt";
    p.result = stem + ".result.json";
    p.stderrLog = stem + ".stderr";
    return p;
}

namespace {

/** Worker checkpoint phases, stored in CheckpointMeta::user[0]. */
enum : std::uint64_t
{
    kPhaseRunning = 0,  ///< workload attached
    kPhaseDrain = 1,    ///< workload detached, draining in flight
};

NocConfig
pointConfig(const PointSpec &spec)
{
    NocConfig cfg;
    cfg.rows = spec.rows;
    cfg.cols = spec.cols;
    cfg.design = spec.design;
    cfg.seed = spec.seed;
    if (spec.faultRate > 0.0) {
        cfg.fault.enabled = true;
        cfg.fault.e2e = true;
        cfg.fault.flitCorruptRate = spec.faultRate;
        cfg.fault.flitDropRate = spec.faultRate;
        cfg.verify.interval = 256;
        cfg.verify.policy = AuditPolicy::kRecover;
    }
    return cfg;
}

bool
saveWorkerCheckpoint(NocSystem &sys, const PointSpec &spec,
                     const std::string &path, std::uint64_t phase)
{
    std::string err;
    if (!sys.saveCheckpoint(path, {phase, spec.id, 0, 0}, &err)) {
        std::fprintf(diagStream(),
                     "[worker %llu] checkpoint write failed: %s\n",
                     static_cast<unsigned long long>(spec.id),
                     err.c_str());
        return false;
    }
    return true;
}

void
selfTestHangForever(const PointSpec &spec)
{
    std::fprintf(diagStream(),
                 "[worker %llu] self-test: entering deliberate hang\n",
                 static_cast<unsigned long long>(spec.id));
    if (std::fflush(diagStream()) != 0) {
        // Diagnostics are best-effort; the hang itself is the test.
    }
#if defined(__unix__) || defined(__APPLE__)
    for (;;) {
        struct timespec s = {3600, 0};
        nanosleep(&s, nullptr);
    }
#endif
}

}  // namespace

int
runPointWorker(const PointSpec &spec, const PointPaths &paths,
               const WorkerOptions &opts)
{
    const auto diagId = static_cast<unsigned long long>(spec.id);

    if (spec.selfTest == SelfTest::kPoison) {
        std::fprintf(diagStream(),
                     "[worker %llu] self-test poison point: failing the "
                     "delivery gate deterministically\n",
                     diagId);
        return kExitGateFailure;
    }

    const NocConfig cfg = pointConfig(spec);
    const LintResult lint = lintConfig(cfg);
    if (!lint.ok()) {
        for (const std::string &p : lint.problems)
            std::fprintf(diagStream(), "[worker %llu] bad config: %s\n",
                         diagId, p.c_str());
        return kExitBadConfig;
    }
    if (spec.kind == WorkloadKind::kParsec) {
        bool known = false;
        for (const ParsecParams &p : parsecSuite())
            known = known || p.name == spec.parsec;
        if (!known) {
            std::fprintf(diagStream(),
                         "[worker %llu] bad config: unknown PARSEC "
                         "benchmark '%s'\n",
                         diagId, spec.parsec.c_str());
            return kExitBadConfig;
        }
    }

    NocSystem sys(cfg);
    SyntheticTraffic synthetic(spec.pattern, spec.rate, spec.seed);
    std::unique_ptr<ParsecWorkload> parsec;
    if (spec.kind == WorkloadKind::kParsec)
        parsec = std::make_unique<ParsecWorkload>(
            parsecByName(spec.parsec), spec.seed);
    Workload *workload = parsec
        ? static_cast<Workload *>(parsec.get())
        : static_cast<Workload *>(&synthetic);

    // Resume from this point's checkpoint when one exists. A checkpoint
    // that cannot be restored (corrupt file, stale spec) is discarded and
    // the point restarts from scratch: a damaged artifact must degrade to
    // recomputation, never to a wedged point.
    std::uint64_t phase = kPhaseRunning;
    bool resumed = false;
    {
        CheckpointMeta meta;
        std::string err;
        if (readCheckpointFile(paths.checkpoint, &meta, nullptr, &err) &&
            meta.user[1] == spec.id) {
            const std::uint64_t ckptPhase = meta.user[0];
            if (ckptPhase == kPhaseRunning)
                sys.setWorkload(workload);
            std::array<std::uint64_t, 4> user{};
            if (sys.loadCheckpoint(paths.checkpoint, &user, &err)) {
                resumed = true;
                phase = ckptPhase;
                std::fprintf(diagStream(),
                             "[worker %llu] resumed from %s at cycle "
                             "%llu\n",
                             diagId, paths.checkpoint.c_str(),
                             static_cast<unsigned long long>(sys.now()));
            } else {
                // loadCheckpoint is transactional (it rolls the system
                // back on failure), so the point can restart from
                // scratch within this same attempt.
                std::fprintf(diagStream(),
                             "[worker %llu] discarding unusable "
                             "checkpoint %s (%s); restarting point\n",
                             diagId, paths.checkpoint.c_str(),
                             err.c_str());
                if (ckptPhase == kPhaseRunning)
                    sys.setWorkload(nullptr);
            }
        }
        if (!resumed) {
            if (std::remove(paths.checkpoint.c_str()) != 0) {
                // Fine: there was nothing to discard.
            }
            phase = kPhaseRunning;
            sys.setWorkload(workload);
        }
    }

    const Cycle every = std::max<Cycle>(opts.checkpointEvery, 1);
    const Cycle hangAt = spec.measure / 2;

    if (spec.kind == WorkloadKind::kSynthetic) {
        if (phase == kPhaseRunning) {
            while (sys.now() < spec.measure) {
                if (spec.selfTest == SelfTest::kHang &&
                    sys.now() >= hangAt)
                    selfTestHangForever(spec);
                const Cycle chunk =
                    std::min<Cycle>(every, spec.measure - sys.now());
                sys.run(chunk);
                if (!saveWorkerCheckpoint(sys, spec, paths.checkpoint,
                                          kPhaseRunning))
                    return kExitInfraFailure;
            }
            sys.setWorkload(nullptr);
            phase = kPhaseDrain;
            if (!saveWorkerCheckpoint(sys, spec, paths.checkpoint,
                                      kPhaseDrain))
                return kExitInfraFailure;
        }
        const Cycle limit = spec.measure + opts.drainBudget;
        bool done = sys.completionReached();
        while (!done && sys.now() < limit) {
            const Cycle chunk = std::min<Cycle>(every, limit - sys.now());
            done = sys.runTowardCompletion(chunk);
            if (!done &&
                !saveWorkerCheckpoint(sys, spec, paths.checkpoint,
                                      kPhaseDrain))
                return kExitInfraFailure;
        }
    } else {
        // Closed loop: the workload knows when it is finished.
        const Cycle limit = 30'000'000;
        bool done = sys.completionReached();
        while (!done && sys.now() < limit) {
            if (spec.selfTest == SelfTest::kHang && sys.now() >= hangAt)
                selfTestHangForever(spec);
            const Cycle chunk = std::min<Cycle>(every, limit - sys.now());
            done = sys.runTowardCompletion(chunk);
            if (!done &&
                !saveWorkerCheckpoint(sys, spec, paths.checkpoint,
                                      kPhaseRunning))
                return kExitInfraFailure;
        }
    }
    sys.finalizeStats();

    const NetworkStats &st = sys.stats();
    const ActivityCounters totals = st.totals();
    const int numLinks =
        2 * (sys.mesh().rows() * (sys.mesh().cols() - 1) +
             sys.mesh().cols() * (sys.mesh().rows() - 1));
    PowerModel pm;
    const EnergyBreakdown energy =
        pm.compute(st, sys.now(), numLinks, cfg.design, cfg.betCycles);
    const double stateCycles = static_cast<double>(
        totals.onCycles + totals.offCycles + totals.wakingCycles);
    const double offFraction = stateCycles > 0
        ? static_cast<double>(totals.offCycles) / stateCycles
        : 0.0;
    const std::uint64_t created = st.packetsCreated();
    const std::uint64_t delivered = st.packetsDelivered();
    const double fraction = created > 0
        ? static_cast<double>(delivered) / static_cast<double>(created)
        : 1.0;

    if (spec.minDelivered > 0.0 && fraction < spec.minDelivered) {
        std::fprintf(diagStream(),
                     "[worker %llu] delivery gate failed: %.6f < %.6f "
                     "(created %llu, delivered %llu)\n",
                     diagId, fraction, spec.minDelivered,
                     static_cast<unsigned long long>(created),
                     static_cast<unsigned long long>(delivered));
        return kExitGateFailure;
    }

    std::string result = specJson(spec);
    result.pop_back();  // reopen the spec object to append metrics
    result += detail::formatString(
        ",\"status\":\"ok\",\"endCycle\":%llu,\"created\":%llu,"
        "\"delivered\":%llu,\"failed\":%llu,\"deliveredFraction\":%.6f,"
        "\"avgLatency\":%.6f,\"p99Latency\":%.6f,\"avgHops\":%.6f,"
        "\"wakeups\":%llu,\"offFraction\":%.6f,\"energyJ\":%.6e,"
        "\"injectedFaults\":%llu,\"drained\":%s}",
        static_cast<unsigned long long>(sys.now()),
        static_cast<unsigned long long>(created),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(st.packetsFailed()), fraction,
        st.avgPacketLatency(), st.latencyPercentile(0.99), st.avgHops(),
        static_cast<unsigned long long>(st.totalWakeups()), offFraction,
        energy.total(),
        static_cast<unsigned long long>(
            sys.injector() ? sys.injector()->counts().total() : 0),
        sys.completionReached() ? "true" : "false");

    std::string err;
    if (!atomicWriteFile(paths.result, result + "\n", &err)) {
        std::fprintf(diagStream(),
                     "[worker %llu] result write failed: %s\n", diagId,
                     err.c_str());
        return kExitInfraFailure;
    }
    return kExitOk;
}

}  // namespace campaign
}  // namespace nord

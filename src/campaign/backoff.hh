/**
 * @file
 * Capped, jittered, resettable exponential backoff.
 *
 * Pure-exponential backoff has two failure modes at fleet scale. First,
 * workers that fail together retry together: after a shared-cause crash
 * (disk full, OOM kill) every worker sleeps the same 2^n seconds and the
 * whole fleet slams the machine again in lockstep -- a restart storm.
 * Deterministic per-point jitter decorrelates them without introducing
 * nondeterminism (the delay is a pure function of (noise, attempt), so a
 * replayed campaign schedules identically). Second, a delay that only
 * ever doubles punishes long-running campaigns whose rare crashes are
 * separated by hours of honest progress; callers reset the attempt
 * streak after sustained heartbeat progress (see runSupervised and the
 * campaign orchestrator).
 */

#ifndef NORD_CAMPAIGN_BACKOFF_HH
#define NORD_CAMPAIGN_BACKOFF_HH

#include <algorithm>
#include <cstdint>

namespace nord {
namespace campaign {

/** Shape of one backoff schedule. */
struct BackoffPolicy
{
    double initialSec = 0.25;    ///< delay before the first retry
    double maxSec = 30.0;        ///< hard cap; doubling stops here
    double jitterFraction = 0.5; ///< delay drawn from [(1-j)*d, d]
};

/** FNV-1a fold of one 64-bit word into a running hash. */
inline std::uint64_t
mixBackoffNoise(std::uint64_t h, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Delay in seconds before retry number @p attempt (1-based). The base
 * delay doubles per attempt up to policy.maxSec; the jitter multiplier is
 * a deterministic function of (@p noise, @p attempt), so distinct points
 * desynchronize while a resumed campaign reproduces its schedule.
 */
inline double
backoffDelaySec(const BackoffPolicy &policy, int attempt,
                std::uint64_t noise)
{
    double delay = policy.initialSec;
    for (int i = 1; i < attempt && delay < policy.maxSec; ++i)
        delay *= 2.0;
    delay = std::min(delay, policy.maxSec);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = mixBackoffNoise(h, noise);
    h = mixBackoffNoise(h, static_cast<std::uint64_t>(attempt));
    // 53 high-entropy bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) *
        (1.0 / 9007199254740992.0 /* 2^53 */);
    const double jitter =
        std::clamp(policy.jitterFraction, 0.0, 1.0) * u;
    return delay * (1.0 - jitter);
}

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_BACKOFF_HH

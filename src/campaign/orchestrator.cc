/**
 * @file
 * Campaign orchestrator implementation (see orchestrator.hh for the
 * supervision rules and the byte-identical-report contract).
 */

#include "campaign/orchestrator.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "campaign/fleet.hh"
#include "common/log.hh"
#include "common/rng.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace nord {
namespace campaign {

namespace {

// Drain latch set from the CLI's SIGINT/SIGTERM handlers; a
// sig_atomic_t is the only type that is safe to touch there.
// nord-lint-allow(mutable-static)
volatile std::sig_atomic_t g_drainRequested = 0;

}  // namespace

void
requestCampaignDrain()
{
    g_drainRequested = 1;
}

void
clearCampaignDrain()
{
    g_drainRequested = 0;
}

bool
campaignDrainRequested()
{
    return g_drainRequested != 0;
}

// --- Report rendering ---------------------------------------------------

std::string
renderReportJson(const std::vector<PointSpec> &specs,
                 const ReplayState &state)
{
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t missing = 0;
    std::string entries;
    for (const PointSpec &spec : specs) {
        const auto it = state.perPoint.find(spec.id);
        const ReplayPoint *p =
            it != state.perPoint.end() ? &it->second : nullptr;
        if (!entries.empty())
            entries += ",\n";
        entries += "{\"spec\":" + specJson(spec);
        if (p && p->done) {
            ++completed;
            entries += ",\"status\":\"completed\",\"result\":" +
                       p->resultLine + "}";
        } else if (p && p->quarantined) {
            ++quarantined;
            // Class / exit / signal are deterministic properties of the
            // point; the stderr tail and checkpoint path are not (resume
            // cycles vary with kill timing) and live in provenance.json.
            entries += detail::formatString(
                ",\"status\":\"quarantined\",\"class\":\"%s\","
                "\"exit\":%d,\"signal\":%d}",
                failureClassName(p->quarantine.cls),
                p->quarantine.exitCode, p->quarantine.signal);
        } else {
            ++missing;
            entries += ",\"status\":\"missing\"}";
        }
    }
    std::string out = detail::formatString(
        "{\n\"campaign\":{\"format\":%d,\"points\":%llu,"
        "\"gridFp\":%llu},\n"
        "\"summary\":{\"completed\":%llu,\"quarantined\":%llu,"
        "\"missing\":%llu},\n\"points\":[\n",
        kJournalFormat, static_cast<unsigned long long>(specs.size()),
        static_cast<unsigned long long>(state.gridFp),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(quarantined),
        static_cast<unsigned long long>(missing));
    out += entries;
    out += "\n]}\n";
    return out;
}

std::string
renderReportCsv(const std::vector<PointSpec> &specs,
                const ReplayState &state)
{
    std::string out =
        "id,design,workload,rate,seed,faultRate,status,class,endCycle,"
        "created,delivered,deliveredFraction,avgLatency,p99Latency,"
        "avgHops,wakeups,offFraction,energyJ,drained\n";
    static const char *kMetricCols[] = {
        "endCycle", "created", "delivered", "deliveredFraction",
        "avgLatency", "p99Latency", "avgHops", "wakeups", "offFraction",
        "energyJ", "drained"};
    for (const PointSpec &spec : specs) {
        const auto it = state.perPoint.find(spec.id);
        const ReplayPoint *p =
            it != state.perPoint.end() ? &it->second : nullptr;
        out += detail::formatString(
            "%llu,%s,%s,%g,%llu,%g,",
            static_cast<unsigned long long>(spec.id),
            pgDesignName(spec.design), workloadName(spec).c_str(),
            spec.rate, static_cast<unsigned long long>(spec.seed),
            spec.faultRate);
        if (p && p->done) {
            out += "completed,";
            for (const char *col : kMetricCols) {
                std::string raw;
                // Raw extraction keeps the worker's exact formatting, so
                // the CSV inherits the report's byte-identity.
                if (jsonFieldRaw(p->resultLine, col, &raw))
                    out += raw;
                out += ",";
            }
            out.pop_back();
            out += "\n";
        } else if (p && p->quarantined) {
            out += detail::formatString(
                "quarantined,%s,,,,,,,,,,,\n",
                failureClassName(p->quarantine.cls));
        } else {
            out += "missing,,,,,,,,,,,,\n";
        }
    }
    return out;
}

std::string
renderProvenanceJson(const std::vector<PointSpec> &specs,
                     const ReplayState &state, const std::string &outDir)
{
    std::string out = "{\n\"points\":[\n";
    bool first = true;
    for (const PointSpec &spec : specs) {
        const auto it = state.perPoint.find(spec.id);
        const ReplayPoint *p =
            it != state.perPoint.end() ? &it->second : nullptr;
        const PointPaths paths = pointPaths(outDir, spec.id);
        if (!first)
            out += ",\n";
        first = false;
        const char *status = "missing";
        if (p && p->done)
            status = "completed";
        else if (p && p->quarantined)
            status = "quarantined";
        out += detail::formatString(
            "{\"id\":%llu,\"status\":\"%s\",\"launches\":%d,"
            "\"countedFailures\":%d,\"retried\":%d",
            static_cast<unsigned long long>(spec.id), status,
            p ? p->launches : 0, p ? p->countedFailures : 0,
            p ? std::max(0, p->launches - 1) : 0);
        if (p && p->quarantined) {
            out += ",\"quarantine\":{\"class\":\"" +
                   std::string(failureClassName(p->quarantine.cls)) +
                   "\",\"stderrTail\":\"" +
                   jsonEscape(p->quarantine.stderrTail) +
                   "\",\"ckpt\":\"" +
                   jsonEscape(p->quarantine.ckptPath) + "\"}";
        }
        out += ",\"artifacts\":{\"result\":\"" + jsonEscape(paths.result) +
               "\",\"stderrLog\":\"" + jsonEscape(paths.stderrLog) +
               "\",\"checkpoint\":\"" + jsonEscape(paths.checkpoint) +
               "\"}}";
    }
    out += "\n]}\n";
    return out;
}

// --- The orchestrator loop ----------------------------------------------

bool
runCampaign(const std::vector<PointSpec> &specs,
            const OrchestratorOptions &opts, CampaignOutcome *out,
            std::string *err)
{
#ifndef NORD_CAMPAIGN_POSIX
    (void)specs;
    (void)opts;
    (void)out;
    if (err)
        *err = "campaign orchestration requires a POSIX host";
    return false;
#else
    CampaignOutcome outcome;
    if (opts.outDir.empty()) {
        if (err)
            *err = "campaign outDir must not be empty";
        return false;
    }
    // The scheduler indexes specs/runtime by point id; expandGrid's
    // sequential ids are part of the journal's resume contract.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].id != i) {
            if (err)
                *err = "campaign point ids must be dense and ordered";
            return false;
        }
    }
    if (mkdir(opts.outDir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (err)
            *err = detail::formatString("cannot create %s: %s",
                                        opts.outDir.c_str(),
                                        std::strerror(errno));
        return false;
    }
    if (fileExists(opts.outDir + "/campaign.json")) {
        // A manifest marks a multi-executor campaign: its journals are
        // per-executor and its shards are lease-protected. A classic
        // orchestrator would bypass both protocols.
        if (err)
            *err = opts.outDir + " is a multi-executor campaign "
                   "directory; drain it with --join";
        return false;
    }

    const std::uint64_t gridFp = gridFingerprint(specs);
    CampaignJournal journal;
    ReplayState state;
    if (!journal.open(opts.outDir + "/journal.jsonl", specs.size(), gridFp,
                      &state, err))
        return false;
    state.gridFp = gridFp;
    state.points = specs.size();

    std::vector<PointRuntime> runtime(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto it = state.perPoint.find(specs[i].id);
        if (it == state.perPoint.end())
            continue;
        if (it->second.done)
            runtime[i].phase = PointPhase::kDone;
        else if (it->second.quarantined)
            runtime[i].phase = PointPhase::kQuarantined;
    }

    std::vector<WorkerSlot> fleet;
    Rng chaosRng(opts.chaos.seed);
    double nextChaosAt = monotonicSec();
    if (opts.chaos.enabled)
        nextChaosAt += opts.chaos.meanIntervalSec *
                       (0.5 + chaosRng.uniform());

    const int maxWorkers = std::max(1, opts.workers);
    const int maxFailures = std::max(1, opts.maxFailures);
    bool orchestrationFailed = false;

    /** Journal + schedule the consequences of one reaped worker. */
    auto handleExit = [&](const WorkerSlot &slot, int wstatus) {
        const std::uint64_t id = slot.point;
        const PointPaths paths = pointPaths(opts.outDir, id);
        const bool exited = WIFEXITED(wstatus);
        const int exitCode = exited ? WEXITSTATUS(wstatus) : 0;
        const bool signaled = WIFSIGNALED(wstatus);
        const int sig = signaled ? WTERMSIG(wstatus) : 0;
        FailureClass cls =
            classifyExit(exited, exitCode, signaled, sig,
                         slot.killedForHang, slot.killedForChaos);

        if (cls == FailureClass::kNone) {
            std::string result;
            if (readResultLine(paths.result, &result)) {
                journal.appendDone(id, result);
                ReplayPoint &p = state.perPoint[id];
                p.done = true;
                p.resultLine = std::move(result);
                runtime[id].phase = PointPhase::kDone;
                return;
            }
            // Exit 0 without a result file: the worker lied, or the file
            // vanished. Infrastructure trouble either way.
            cls = FailureClass::kInfra;
        }

        const bool counted = failureCountsTowardQuarantine(cls);
        const std::string tail = stderrTail(paths.stderrLog);
        const std::string ckpt =
            fileExists(paths.checkpoint) ? paths.checkpoint : "";
        journal.appendFail(id, cls, exited ? exitCode : 0, sig, counted,
                           tail, ckpt);
        ReplayPoint &p = state.perPoint[id];
        if (counted)
            p.countedFailures += 1;

        if (isDeterministicFailure(cls) ||
            (counted && p.countedFailures >= maxFailures)) {
            QuarantineRecord rec;
            rec.cls = cls;
            rec.exitCode = exited ? exitCode : 0;
            rec.signal = sig;
            rec.stderrTail = tail;
            rec.ckptPath = ckpt;
            journal.appendQuarantine(id, rec);
            p.quarantined = true;
            p.quarantine = rec;
            runtime[id].phase = PointPhase::kQuarantined;
            std::fprintf(diagStream(),
                         "[campaign] point %llu quarantined (%s) after "
                         "%d counted failure(s)\n",
                         static_cast<unsigned long long>(id),
                         failureClassName(cls), p.countedFailures);
            return;
        }

        const int attempt = counted ? std::max(1, p.countedFailures) : 1;
        const std::uint64_t noise =
            gridFp ^ (id * 0x9e3779b97f4a7c15ULL);
        runtime[id].phase = PointPhase::kWaiting;
        runtime[id].readyAt =
            monotonicSec() + backoffDelaySec(opts.backoff, attempt, noise);
    };

    auto spawn = [&](std::uint64_t id) -> bool {
        const PointPaths paths = pointPaths(opts.outDir, id);
        ReplayPoint &p = state.perPoint[id];
        // Journal the attempt BEFORE forking: whatever the journal says
        // happened, happened -- an attempt that was never journaled must
        // never run.
        if (!journal.appendAttempt(id, p.launches + 1))
            return false;
        p.launches += 1;
        const long pid = spawnPointWorker(specs[id], paths, opts.worker);
        if (pid < 0)
            return false;  // transient: try again next tick
        WorkerSlot slot;
        slot.pid = pid;
        slot.point = id;
        slot.lastProgress = monotonicSec();
        slot.haveMtime = fileMtimeNs(paths.checkpoint, &slot.lastMtimeNs);
        fleet.push_back(slot);
        runtime[id].phase = PointPhase::kRunning;
        outcome.launches += 1;
        return true;
    };

    while (true) {
        if (g_drainRequested) {
            outcome.interrupted = true;
            break;
        }
        if (!journal.ok()) {
            orchestrationFailed = true;
            if (err)
                *err = journal.error();
            break;
        }

        // Reap.
        for (std::size_t i = 0; i < fleet.size();) {
            int wstatus = 0;
            const pid_t r = waitpid(static_cast<pid_t>(fleet[i].pid),
                                    &wstatus, WNOHANG);
            if (r == static_cast<pid_t>(fleet[i].pid)) {
                const WorkerSlot slot = fleet[i];
                fleet.erase(fleet.begin() +
                            static_cast<std::ptrdiff_t>(i));
                handleExit(slot, wstatus);
            } else {
                ++i;
            }
        }

        const double now = monotonicSec();

        // Heartbeats: a checkpoint mtime change is progress.
        for (WorkerSlot &slot : fleet) {
            const PointPaths paths = pointPaths(opts.outDir, slot.point);
            std::uint64_t mt = 0;
            if (fileMtimeNs(paths.checkpoint, &mt) &&
                (!slot.haveMtime || mt != slot.lastMtimeNs)) {
                slot.haveMtime = true;
                slot.lastMtimeNs = mt;
                slot.lastProgress = now;
            }
            if (!slot.killedForHang && !slot.killedForChaos &&
                now - slot.lastProgress > opts.hangTimeoutSec) {
                slot.killedForHang = true;
                killWorkerGroup(slot.pid);
                std::fprintf(diagStream(),
                             "[campaign] point %llu hung (no heartbeat "
                             "for %.1fs), killed worker %ld\n",
                             static_cast<unsigned long long>(slot.point),
                             opts.hangTimeoutSec, slot.pid);
            }
        }

        // Chaos: kill a random live worker on the seeded schedule.
        if (opts.chaos.enabled && now >= nextChaosAt &&
            (opts.chaos.maxKills <= 0 ||
             outcome.chaosKills <
                 static_cast<std::uint64_t>(opts.chaos.maxKills))) {
            nextChaosAt = now + opts.chaos.meanIntervalSec *
                                    (0.5 + chaosRng.uniform());
            std::vector<std::size_t> victims;
            for (std::size_t i = 0; i < fleet.size(); ++i) {
                if (!fleet[i].killedForHang && !fleet[i].killedForChaos)
                    victims.push_back(i);
            }
            if (!victims.empty()) {
                WorkerSlot &slot =
                    fleet[victims[chaosRng.uniformInt(victims.size())]];
                slot.killedForChaos = true;
                killWorkerGroup(slot.pid);
                outcome.chaosKills += 1;
                std::fprintf(diagStream(),
                             "[campaign] chaos: killed worker %ld "
                             "(point %llu)\n",
                             slot.pid,
                             static_cast<unsigned long long>(slot.point));
            }
        }

        // Launch, id order, while slots are free.
        bool allTerminal = true;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            PointRuntime &rt = runtime[i];
            if (rt.phase == PointPhase::kDone ||
                rt.phase == PointPhase::kQuarantined)
                continue;
            allTerminal = false;
            if (static_cast<int>(fleet.size()) >= maxWorkers)
                continue;
            if (rt.phase == PointPhase::kPending ||
                (rt.phase == PointPhase::kWaiting && now >= rt.readyAt)) {
                if (!spawn(specs[i].id))
                    break;
            }
        }
        if (allTerminal)
            break;

        // Journal compaction keeps resume cost bounded on retry-heavy
        // campaigns.
        if (opts.rotateEvents > 0 && journal.events() > opts.rotateEvents)
            journal.rotate(state);

        sleepSec(opts.pollIntervalSec);
    }

    killFleet(&fleet);

    if (!orchestrationFailed && !journal.ok()) {
        orchestrationFailed = true;
        if (err)
            *err = journal.error();
    }
    journal.close();

    for (const PointSpec &spec : specs) {
        const auto it = state.perPoint.find(spec.id);
        if (it != state.perPoint.end() && it->second.done)
            outcome.completed += 1;
        else if (it != state.perPoint.end() && it->second.quarantined)
            outcome.quarantined += 1;
        else
            outcome.missing += 1;
    }

    if (!orchestrationFailed) {
        std::string werr;
        outcome.reportJson = opts.outDir + "/report.json";
        outcome.reportCsv = opts.outDir + "/report.csv";
        outcome.provenance = opts.outDir + "/provenance.json";
        if (!atomicWriteFile(outcome.reportJson,
                             renderReportJson(specs, state), &werr) ||
            !atomicWriteFile(outcome.reportCsv,
                             renderReportCsv(specs, state), &werr) ||
            !atomicWriteFile(outcome.provenance,
                             renderProvenanceJson(specs, state,
                                                  opts.outDir),
                             &werr)) {
            orchestrationFailed = true;
            if (err)
                *err = "report write failed: " + werr;
        }
    }

    if (out)
        *out = outcome;
    return !orchestrationFailed;
#endif  // NORD_CAMPAIGN_POSIX
}

}  // namespace campaign
}  // namespace nord

/**
 * @file
 * One campaign point: a (design, config, seed, workload) simulation unit.
 *
 * A campaign is a grid of PointSpecs expanded in a fixed deterministic
 * order; the point id is the index in that order and is what the journal,
 * the checkpoint files and the report key on. Each point runs as its own
 * supervised worker process (runPointWorker), checkpointing periodically
 * so the orchestrator can read heartbeats from the checkpoint file's
 * mtime and so a killed attempt resumes bit-exactly instead of starting
 * over.
 *
 * The worker's contract with the supervisor:
 *  - exit codes follow the campaign taxonomy (exit_codes.hh);
 *  - the result file is written atomically, so it either holds one
 *    complete JSON line or does not exist;
 *  - the result is a pure function of the spec: however many times the
 *    attempt is killed and resumed, the bytes that eventually land in
 *    the result file are identical (this is what checkpoint bit-exactness
 *    buys, and what makes campaign reports chaos-invariant).
 */

#ifndef NORD_CAMPAIGN_CAMPAIGN_POINT_HH
#define NORD_CAMPAIGN_CAMPAIGN_POINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "traffic/synthetic_traffic.hh"

namespace nord {
namespace campaign {

/** Workload family of one point. */
enum class WorkloadKind : std::uint8_t
{
    kSynthetic = 0,  ///< open-loop synthetic pattern at a fixed rate
    kParsec = 1,     ///< closed-loop PARSEC benchmark model
};

/**
 * Self-test behavior injected into a worker, used by the chaos smoke
 * test and the unit tests to create deterministic poison and hang points
 * without hand-crafting a failing configuration.
 */
enum class SelfTest : std::uint8_t
{
    kNone = 0,
    kPoison = 1,  ///< fail the delivery gate deterministically
    kHang = 2,    ///< stop heartbeating forever mid-run
};

/** Full specification of one point (see file comment). */
struct PointSpec
{
    std::uint64_t id = 0;
    PgDesign design = PgDesign::kNoPg;
    int rows = 4;
    int cols = 4;
    WorkloadKind kind = WorkloadKind::kSynthetic;
    TrafficPattern pattern = TrafficPattern::kUniformRandom;
    double rate = 0.10;        ///< synthetic injection rate (flits/node/cy)
    std::string parsec;        ///< benchmark name when kind == kParsec
    std::uint64_t seed = 1;
    Cycle measure = 2000;      ///< synthetic measurement window
    double faultRate = 0.0;    ///< transient corrupt+drop rate (0 = off)
    double minDelivered = 0.0; ///< delivery gate (0 = no gate)
    SelfTest selfTest = SelfTest::kNone;
};

/** Human/report name of the point's workload. */
std::string workloadName(const PointSpec &spec);

/**
 * Canonical single-line JSON rendering of a spec. This is the unit the
 * grid fingerprint hashes and the report embeds, so its byte layout is
 * part of the resume contract.
 */
std::string specJson(const PointSpec &spec);

/** FNV-1a fingerprint over every spec's canonical JSON, in order. */
std::uint64_t gridFingerprint(const std::vector<PointSpec> &specs);

/** Cross-product description of a campaign grid. */
struct GridSpec
{
    std::vector<PgDesign> designs{PgDesign::kNord};
    std::vector<TrafficPattern> patterns{TrafficPattern::kUniformRandom};
    std::vector<std::string> parsec;  ///< benchmark names (may be empty)
    std::vector<double> rates{0.10};
    std::vector<double> faultRates{0.0};
    std::vector<std::uint64_t> seeds{1};
    int rows = 4;
    int cols = 4;
    Cycle measure = 2000;
    double minDelivered = 0.0;
};

/**
 * Expand a grid into its points in the canonical order:
 * design > workload (patterns then parsec) > rate > faultRate > seed.
 * Ids are assigned sequentially from 0. (PARSEC workloads are closed
 * loop, so the rate axis does not multiply them.)
 */
std::vector<PointSpec> expandGrid(const GridSpec &grid);

/** Where one point's artifacts live under the campaign out-dir. */
struct PointPaths
{
    std::string checkpoint;  ///< heartbeat + resume state
    std::string result;      ///< atomically-written result JSON line
    std::string stderrLog;   ///< worker stderr capture
};

/** Compose the artifact paths of point @p id under @p outDir. */
PointPaths pointPaths(const std::string &outDir, std::uint64_t id);

/** Worker knobs forwarded by the orchestrator. */
struct WorkerOptions
{
    Cycle checkpointEvery = 500;  ///< checkpoint/heartbeat period
    Cycle drainBudget = 500000;   ///< extra cycles allowed for draining
};

/**
 * The worker body: run @p spec to completion, checkpointing to
 * paths.checkpoint every opts.checkpointEvery cycles, and atomically
 * write the result line to paths.result. Resumes transparently from an
 * existing checkpoint; a corrupt or mismatched checkpoint is discarded
 * and the point restarts from scratch (diagnosed on the worker's
 * stderr). Returns a campaign taxonomy exit code.
 */
int runPointWorker(const PointSpec &spec, const PointPaths &paths,
                   const WorkerOptions &opts);

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_CAMPAIGN_POINT_HH

/**
 * @file
 * Worker-fleet primitives shared by the single-host orchestrator and the
 * multi-executor engine: monotonic time, artifact-file helpers, the
 * per-point scheduling state, and -- most importantly -- orphan-safe
 * worker spawning.
 *
 * Orphan safety: every forked worker is placed in its OWN process group
 * (setpgid in both child and parent, closing the fork race), and the
 * supervisor always kills the GROUP (kill(-pid)) so a worker that forked
 * helpers cannot leak them. On Linux the child additionally arms
 * PR_SET_PDEATHSIG with SIGKILL and re-checks its parent immediately
 * after, so even a SIGKILL'd supervisor -- which gets no chance to run
 * any exit path -- never leaves detached workers burning CPU.
 */

#ifndef NORD_CAMPAIGN_FLEET_HH
#define NORD_CAMPAIGN_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign_point.hh"

#if defined(__unix__) || defined(__APPLE__)
#define NORD_CAMPAIGN_POSIX 1
#endif

namespace nord {
namespace campaign {

/** Monotonic seconds: scheduling only, never simulation state. */
double monotonicSec();

/** Sleep for @p sec seconds (no-op for sec <= 0). */
void sleepSec(double sec);

/** Nanosecond mtime of @p path (false when it does not exist). */
bool fileMtimeNs(const std::string &path, std::uint64_t *out);

/** True when @p path exists (any file type). */
bool fileExists(const std::string &path);

/** Whole file as bytes ("" when unreadable). */
std::string readWholeFile(const std::string &path);

/**
 * Last lines of @p path, capped at @p maxBytes and trimmed to a line
 * boundary: the quarantine diagnostic a human reads first.
 */
std::string stderrTail(const std::string &path,
                       std::size_t maxBytes = 2000);

/**
 * The worker result file is written atomically, so it either holds one
 * complete JSON line or does not exist. Returns false on anything else.
 */
bool readResultLine(const std::string &path, std::string *out);

/** Scheduling state of one point inside a supervisor loop. */
enum class PointPhase : std::uint8_t
{
    kPending = 0,   ///< ready to launch
    kWaiting = 1,   ///< in backoff, launch when readyAt passes
    kRunning = 2,   ///< a live worker owns it
    kDone = 3,
    kQuarantined = 4,
};

struct PointRuntime
{
    PointPhase phase = PointPhase::kPending;
    double readyAt = 0.0;  ///< backoff deadline (monotonic)
};

/** One live worker process. */
struct WorkerSlot
{
    long pid = -1;
    std::uint64_t point = 0;
    double lastProgress = 0.0;   ///< spawn or last heartbeat (monotonic)
    std::uint64_t lastMtimeNs = 0;
    bool haveMtime = false;
    bool killedForHang = false;
    bool killedForChaos = false;
};

/**
 * Fork one point worker with the orphan-safety protocol from the file
 * comment: own process group, Linux parent-death signal, stderr
 * truncated and redirected to paths.stderrLog. Returns the child pid,
 * or -1 on fork failure (transient; the caller retries next tick).
 */
long spawnPointWorker(const PointSpec &spec, const PointPaths &paths,
                      const WorkerOptions &opts);

/**
 * SIGKILL the worker's process group (fallback: the pid alone when the
 * group is already gone).
 */
void killWorkerGroup(long pid);

/** Group-kill and reap every live worker, then clear @p fleetSlots. */
void killFleet(std::vector<WorkerSlot> *fleetSlots);

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_FLEET_HH

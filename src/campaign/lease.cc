/**
 * @file
 * Lease-file protocol implementation (see lease.hh for the rules and
 * the self-fencing soundness argument).
 */

#include "campaign/lease.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "campaign/fleet.hh"
#include "campaign/journal.hh"
#include "ckpt/checkpoint.hh"
#include "common/log.hh"

#ifdef NORD_CAMPAIGN_POSIX
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace nord {
namespace campaign {

std::string
leasePath(const std::string &leaseDir, std::uint64_t shard)
{
    return detail::formatString("%s/shard-%llu.lease", leaseDir.c_str(),
                                static_cast<unsigned long long>(shard));
}

std::string
renderLeaseLine(const LeaseInfo &info)
{
    return detail::formatString(
               "{\"shard\":%llu,\"token\":%llu,\"owner\":\"",
               static_cast<unsigned long long>(info.shard),
               static_cast<unsigned long long>(info.token)) +
           jsonEscape(info.owner) +
           detail::formatString(
               "\",\"beat\":%llu}\n",
               static_cast<unsigned long long>(info.beat));
}

bool
readLeaseFile(const std::string &path, LeaseInfo *out)
{
    const std::string line = readWholeFile(path);
    if (line.empty())
        return false;
    LeaseInfo info;
    if (!jsonFieldU64(line, "shard", &info.shard) ||
        !jsonFieldU64(line, "token", &info.token) ||
        !jsonFieldU64(line, "beat", &info.beat) ||
        !jsonFieldString(line, "owner", &info.owner))
        return false;
    *out = info;
    return true;
}

namespace {

/** Write @p bytes to @p path, fsync'd, for a subsequent link/rename. */
bool
writeTmpFile(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    ok = (std::fflush(f) == 0) && ok;
#ifdef NORD_CAMPAIGN_POSIX
    ok = (fsync(fileno(f)) == 0) && ok;
#endif
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

}  // namespace

bool
LeaseManager::init(const LeaseOptions &opts, std::string *err)
{
#ifdef NORD_CAMPAIGN_POSIX
    opts_ = opts;
    if (opts_.renewSec <= 0.0)
        opts_.renewSec = opts_.graceSec / 8.0;
    if (mkdir(opts_.leaseDir.c_str(), 0755) != 0 && errno != EEXIST) {
        if (err)
            *err = detail::formatString("cannot create %s: %s",
                                        opts_.leaseDir.c_str(),
                                        std::strerror(errno));
        return false;
    }
    return true;
#else
    (void)opts;
    if (err)
        *err = "lease management requires a POSIX host";
    return false;
#endif
}

void
LeaseManager::fence(const std::string &why)
{
    if (fenced_)
        return;
    fenced_ = true;
    fenceReason_ = why;
    for (auto &kv : shards_)
        kv.second.held = false;
    std::fprintf(diagStream(), "[lease] self-fence: %s\n", why.c_str());
}

bool
LeaseManager::writeLease(const LeaseInfo &info)
{
    // atomicWriteFile renames into place and fsyncs the parent
    // directory; the executor-unique temp suffix keeps concurrent
    // writers of the same lease from clobbering each other's temp.
    std::string err;
    return atomicWriteFile(leasePath(opts_.leaseDir, info.shard),
                           renderLeaseLine(info), &err,
                           "." + opts_.execId + ".tmp");
}

void
LeaseManager::observe(std::uint64_t shard, const LeaseInfo &info,
                      double now, bool exists)
{
    ShardView &v = shards_[shard];
    const std::uint64_t tok = exists ? info.token : 0;
    const std::uint64_t beat = exists ? info.beat : 0;
    if (!v.observed || v.seenToken != tok || v.seenBeat != beat) {
        v.observed = true;
        v.seenToken = tok;
        v.seenBeat = beat;
        v.seenSince = now;
    }
}

bool
LeaseManager::tryAcquire(std::uint64_t shard, double now,
                         std::uint64_t *token)
{
#ifdef NORD_CAMPAIGN_POSIX
    if (fenced_)
        return false;
    ShardView &v = shards_[shard];
    if (v.held)
        return false;

    const std::string path = leasePath(opts_.leaseDir, shard);
    LeaseInfo cur;
    const bool exists = readLeaseFile(path, &cur);

    if (!exists) {
        // Fresh claim: link(2) is exclusive, so success IS ownership.
        LeaseInfo mine;
        mine.shard = shard;
        mine.token = 1;
        mine.owner = opts_.execId;
        mine.beat = 1;
        const std::string tmp = path + "." + opts_.execId + ".tmp";
        if (!writeTmpFile(tmp, renderLeaseLine(mine)))
            return false;
        const bool linked = ::link(tmp.c_str(), path.c_str()) == 0;
        if (::unlink(tmp.c_str()) != 0) {
            // A stale temp is harmless; the next claim rewrites it.
        }
        if (!linked) {
            observe(shard, cur, now, false);
            return false;
        }
        if (!fsyncParentDir(path)) {
            // The claim stands (link succeeded); durability is degraded
            // until the next renewal's directory fsync.
        }
        v.held = true;
        v.token = mine.token;
        v.beat = mine.beat;
        v.lastRenewOk = now;
        v.nextRenewAt = now + opts_.renewSec;
        if (token)
            *token = v.token;
        return true;
    }

    observe(shard, cur, now, true);
    const bool released = cur.owner.empty();
    const bool expired =
        v.observed && now - v.seenSince >= opts_.graceSec;
    if (!released && !expired)
        return false;

    // Steal: rename token+1 over the file, settle, read back. rename is
    // atomic but not exclusive, so the read-back decides the race.
    LeaseInfo mine;
    mine.shard = shard;
    mine.token = cur.token + 1;
    mine.owner = opts_.execId;
    mine.beat = 1;
    if (!writeLease(mine))
        return false;
    sleepSec(opts_.settleSec);
    LeaseInfo after;
    if (!readLeaseFile(path, &after) || after.owner != opts_.execId ||
        after.token != mine.token) {
        // Lost a steal race; resume observing the winner.
        observe(shard, after, monotonicSec(), true);
        return false;
    }
    const double held = monotonicSec();
    v.held = true;
    v.token = mine.token;
    v.beat = mine.beat;
    v.lastRenewOk = held;
    v.nextRenewAt = held + opts_.renewSec;
    if (token)
        *token = v.token;
    return true;
#else
    (void)shard;
    (void)now;
    (void)token;
    return false;
#endif
}

void
LeaseManager::renewDue(double now)
{
    if (fenced_)
        return;
    for (auto &kv : shards_) {
        ShardView &v = kv.second;
        if (!v.held)
            continue;
        // Too stale to prove ownership: fence WITHOUT writing. A thief
        // waiting the full grace may be mid-takeover, and renaming our
        // beat over its fresh claim would usurp it.
        if (now - v.lastRenewOk > opts_.graceSec / 2.0) {
            fence(detail::formatString(
                "shard %llu renewal older than grace/2 (%.2fs > %.2fs)",
                static_cast<unsigned long long>(kv.first),
                now - v.lastRenewOk, opts_.graceSec / 2.0));
            return;
        }
        if (now < v.nextRenewAt)
            continue;

        const std::string path = leasePath(opts_.leaseDir, kv.first);
        LeaseInfo cur;
        if (!readLeaseFile(path, &cur) || cur.owner != opts_.execId ||
            cur.token != v.token) {
            fence(detail::formatString(
                "shard %llu lease no longer ours (owner \"%s\" token "
                "%llu, expected token %llu)",
                static_cast<unsigned long long>(kv.first),
                cur.owner.c_str(),
                static_cast<unsigned long long>(cur.token),
                static_cast<unsigned long long>(v.token)));
            return;
        }
        LeaseInfo next = cur;
        next.beat = v.beat + 1;
        if (!writeLease(next)) {
            // Transient I/O trouble: the lease is still provably ours
            // until lastRenewOk ages past grace/2; retry next tick.
            v.nextRenewAt = now + opts_.renewSec / 4.0;
            continue;
        }
        LeaseInfo after;
        if (!readLeaseFile(path, &after) ||
            after.owner != opts_.execId || after.token != v.token) {
            fence(detail::formatString(
                "shard %llu usurped during renewal",
                static_cast<unsigned long long>(kv.first)));
            return;
        }
        v.beat = next.beat;
        v.lastRenewOk = monotonicSec();
        v.nextRenewAt = v.lastRenewOk + opts_.renewSec;
    }
}

bool
LeaseManager::writable(std::uint64_t shard, double now)
{
    if (fenced_)
        return false;
    const auto it = shards_.find(shard);
    if (it == shards_.end() || !it->second.held)
        return false;
    if (now - it->second.lastRenewOk > opts_.graceSec / 2.0) {
        fence(detail::formatString(
            "shard %llu write blocked: renewal older than grace/2",
            static_cast<unsigned long long>(shard)));
        return false;
    }
    return true;
}

bool
LeaseManager::holds(std::uint64_t shard) const
{
    const auto it = shards_.find(shard);
    return it != shards_.end() && it->second.held;
}

std::uint64_t
LeaseManager::token(std::uint64_t shard) const
{
    const auto it = shards_.find(shard);
    return it != shards_.end() && it->second.held ? it->second.token : 0;
}

std::vector<std::uint64_t>
LeaseManager::heldShards() const
{
    std::vector<std::uint64_t> out;
    for (const auto &kv : shards_) {
        if (kv.second.held)
            out.push_back(kv.first);
    }
    return out;
}

void
LeaseManager::releaseAll()
{
    if (fenced_)
        return;
    for (auto &kv : shards_) {
        ShardView &v = kv.second;
        if (!v.held)
            continue;
        LeaseInfo rel;
        rel.shard = kv.first;
        rel.token = v.token;
        rel.owner = "";
        rel.beat = v.beat;
        if (!writeLease(rel)) {
            // The lease simply expires after graceSec instead.
        }
        v.held = false;
    }
}

}  // namespace campaign
}  // namespace nord

/**
 * @file
 * Deterministic fold of per-executor journals into one canonical
 * campaign state.
 *
 * Every executor in a multi-executor campaign appends to its own
 * journal; the canonical view is a pure, ORDER-INDEPENDENT function of
 * the set of journal contents. That is what keeps report.json /
 * report.csv byte-identical regardless of executor count, kill
 * schedule, or partition timing. The fold is commutative by
 * construction:
 *
 *  - launches and countedFailures are summed (addition commutes);
 *  - each point's terminal state is chosen by a total order on
 *    candidates: highest fencing token wins; at equal tokens a "done"
 *    beats a quarantine (success is definitive); equal-token
 *    quarantines tie-break on their rendered bytes. No rule consults
 *    the order journals were read in.
 *  - a stale writer's terminal event (lower token -- committed by an
 *    executor that had already lost the shard's lease when a new owner
 *    re-ran the point) loses by the token rule and is counted in
 *    MergeStats::staleDropped: this is the fencing-token check that
 *    rejects a resumed-after-partition executor's commits;
 *  - two "done" events with the SAME token but DIFFERENT result bytes
 *    cannot be ordered deterministically and are a hard error: workers
 *    are pure functions of their spec, so divergent bytes under one
 *    token mean the simulator itself is nondeterministic -- exactly the
 *    bug this engine exists to surface, never to paper over.
 *
 * renderCanonicalJournal emits the merged state in the classic
 * single-executor snapshot dialect (the same bytes journal rotation
 * writes, no shard/token stamps), so the canonical journal of a fully
 * drained fleet campaign is readable by any classic tool.
 */

#ifndef NORD_CAMPAIGN_MERGE_HH
#define NORD_CAMPAIGN_MERGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/journal.hh"

namespace nord {
namespace campaign {

/** Merge bookkeeping (diagnostics; not part of the canonical state). */
struct MergeStats
{
    std::uint64_t journals = 0;      ///< states folded in
    std::uint64_t staleDropped = 0;  ///< lower-token terminals rejected
    std::uint64_t duplicates = 0;    ///< equal terminals deduped
};

/**
 * Fold @p states (one per executor journal) into @p merged. Returns
 * false with @p err only on a same-token divergence (see file
 * comment). @p stats may be null.
 */
bool mergeReplayStates(const std::vector<ReplayState> &states,
                       ReplayState *merged, MergeStats *stats,
                       std::string *err);

/**
 * Convenience for tests and tools: replay each journal content against
 * the (points, gridFp) header and fold. Returns false on a replay
 * failure or a merge conflict.
 */
bool mergeJournals(std::uint64_t points, std::uint64_t gridFp,
                   const std::vector<std::string> &contents,
                   ReplayState *merged, MergeStats *stats,
                   std::string *err);

/**
 * Render @p merged as a classic snapshot journal (open header, then per
 * point in id order: counted-failure total, terminal event). Byte-equal
 * for byte-equal merged states.
 */
std::string renderCanonicalJournal(const ReplayState &merged);

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_MERGE_HH

/**
 * @file
 * Append-only campaign journal: the crash-resumable work-queue record.
 *
 * The journal is the single source of truth for a campaign's progress.
 * One JSON object per line (JSONL); every append is flushed and fsync'd
 * before the orchestrator acts on it, so the failure model is simple:
 * whatever the journal says happened, happened. Event vocabulary:
 *
 *   open       {"event":"open","format":1,"points":N,"gridFp":H}
 *   attempt    {"event":"attempt","point":i,"launch":n}
 *   done       {"event":"done","point":i,"result":{...verbatim worker
 *              result object...}}
 *   fail       {"event":"fail","point":i,"class":"infra","exit":12,
 *              "signal":0,"counted":true,"ckpt":"...","stderrTail":"..."}
 *   quarantine {"event":"quarantine","point":i,"class":"gate",...}
 *   fails      {"event":"fails","point":i,"counted":n}   (rotation
 *              summary of prior counted failures)
 *   claim      {"event":"claim","shard":k,"token":T}     (multi-executor
 *              mode: this journal's executor acquired shard k's lease
 *              with fencing token T)
 *
 * In multi-executor mode (lease.hh, executor.hh) each executor appends
 * to its OWN journal and stamps point events with the shard and fencing
 * token they were committed under ("shard":k,"token":T after the point
 * field). Single-executor journals omit the stamp (token 0); replayers
 * ignore unknown fields, so the two dialects interread freely. The
 * deterministic fold of N per-executor journals into one canonical
 * journal lives in merge.hh.
 *
 * Crash-safety rules:
 *  - appends go to the end of the file; a torn final line (crash or
 *    ENOSPC mid-append) is detected on replay by the missing newline and
 *    ignored -- the event simply never happened;
 *  - rotation (compaction of a long journal) writes a complete snapshot
 *    to "<path>.tmp", fsyncs it and atomically renames it over the
 *    journal, the same protocol as checkpoint files;
 *  - the journal is exclusively flock()ed for the orchestrator's
 *    lifetime, so two orchestrators can never interleave writes;
 *  - every fwrite/fflush/fsync/rename is checked (nord-lint's
 *    unchecked-io rule enforces this for src/campaign/ and src/ckpt/):
 *    an I/O error makes the journal sticky-failed rather than silently
 *    corrupting resumable state.
 *
 * The "done" event embeds the worker's result line *verbatim*; the
 * aggregate report pastes these bytes back out, which is what makes a
 * resumed or chaos-disturbed campaign's report byte-identical to an
 * undisturbed run's.
 */

#ifndef NORD_CAMPAIGN_JOURNAL_HH
#define NORD_CAMPAIGN_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "campaign/exit_codes.hh"

namespace nord {
namespace campaign {

/** Journal file format version. */
inline constexpr int kJournalFormat = 1;

// --- Minimal JSON helpers ----------------------------------------------
// The journal both writes and replays its own lines, so the parser only
// has to understand the writer's flat, known-key output -- but it must
// never crash on a torn or hand-edited line.

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Undo jsonEscape (tolerant: bad escapes pass through verbatim). */
std::string jsonUnescape(const std::string &s);

/** Extract "key":"string" (unescaped). False when absent/malformed. */
bool jsonFieldString(const std::string &line, const std::string &key,
                     std::string *out);

/** Extract an unsigned integer field. False when absent/malformed. */
bool jsonFieldU64(const std::string &line, const std::string &key,
                  std::uint64_t *out);

/** Extract a boolean field. False when absent/malformed. */
bool jsonFieldBool(const std::string &line, const std::string &key,
                   bool *out);

/**
 * Extract the raw text of "key":<value> where value is an object (brace
 * balanced), number, or bare literal -- verbatim, for byte-exact
 * re-emission. False when absent/malformed.
 */
bool jsonFieldRaw(const std::string &line, const std::string &key,
                  std::string *out);

/**
 * Atomically replace @p path with @p bytes: write "<path><tmpSuffix>",
 * fsync, rename, then fsync the parent directory so the rename itself is
 * durable. Returns false and sets @p err on any I/O failure; the previous
 * file, if any, is untouched in that case. Concurrent writers of the SAME
 * target (e.g. two executors both rendering the merged report) must pass
 * distinct @p tmpSuffix values so their temp files cannot collide.
 */
bool atomicWriteFile(const std::string &path, const std::string &bytes,
                     std::string *err,
                     const std::string &tmpSuffix = ".tmp");

// --- Replayed state -----------------------------------------------------

/**
 * Fencing stamp carried by point events in multi-executor journals: the
 * shard the point belongs to and the fencing token the writing executor
 * held when it committed the event. token 0 means "unstamped" -- the
 * single-executor dialect -- and is what the default-constructed stamp
 * encodes; stamped events always carry token >= 1 (the lease layer hands
 * out tokens starting at 1).
 */
struct ShardStamp
{
    std::uint64_t shard = 0;
    std::uint64_t token = 0;  ///< 0 = unstamped (classic single-executor)

    bool stamped() const { return token != 0; }
};

/** One quarantine record (diagnostics attached to a poison point). */
struct QuarantineRecord
{
    FailureClass cls = FailureClass::kUnknown;
    int exitCode = 0;
    int signal = 0;
    std::string stderrTail;  ///< last lines of the final attempt's stderr
    std::string ckptPath;    ///< last checkpoint written, "" if none
};

/** Per-point state reconstructed by replaying the journal. */
struct ReplayPoint
{
    int countedFailures = 0;  ///< failures charged against the budget
    int launches = 0;         ///< total attempts ever forked
    bool done = false;
    bool quarantined = false;
    std::string resultLine;   ///< verbatim worker result object when done
    QuarantineRecord quarantine;
    std::uint64_t token = 0;  ///< fencing token of the terminal event
                              ///< (0 = unstamped single-executor dialect)
};

/** Journal replay result. */
struct ReplayState
{
    bool opened = false;          ///< an "open" header was seen
    std::uint64_t points = 0;     ///< grid size from the header
    std::uint64_t gridFp = 0;     ///< grid fingerprint from the header
    std::uint64_t events = 0;     ///< complete events replayed
    bool tornTail = false;        ///< file ended mid-line (crash artifact)
    std::size_t completeBytes = 0;///< prefix covered by complete lines
    std::map<std::uint64_t, ReplayPoint> perPoint;
    /** Highest fencing token this journal claimed per shard. */
    std::map<std::uint64_t, std::uint64_t> shardTokens;
};

// --- The journal --------------------------------------------------------

/**
 * Append-only campaign journal (see file comment). All append methods
 * return false once the journal is sticky-failed; call error() for the
 * first failure's description.
 */
class CampaignJournal
{
  public:
    CampaignJournal() = default;
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /**
     * Open @p path for a campaign of @p points points with grid
     * fingerprint @p gridFp. When the file already holds a matching
     * campaign, its events are replayed into @p replay and appending
     * continues where it left off; a fresh file gets an "open" header.
     * Returns false (with @p err) on I/O failure, on a held lock
     * (another orchestrator is live) or on a header mismatch (the
     * journal belongs to a different grid).
     */
    bool open(const std::string &path, std::uint64_t points,
              std::uint64_t gridFp, ReplayState *replay,
              std::string *err);

    /** Sticky-failure state. */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    const std::string &path() const { return path_; }

    /** Complete events appended or replayed since open(). */
    std::uint64_t events() const { return events_; }

    // Point events. @p stamp carries the (shard, fencing-token) pair in
    // multi-executor mode; the default (token 0) emits the classic
    // unstamped single-executor dialect.
    bool appendAttempt(std::uint64_t point, int launch,
                       const ShardStamp &stamp = ShardStamp());
    bool appendDone(std::uint64_t point, const std::string &resultLine,
                    const ShardStamp &stamp = ShardStamp());
    bool appendFail(std::uint64_t point, FailureClass cls, int exitCode,
                    int signal, bool counted,
                    const std::string &stderrTail,
                    const std::string &ckptPath,
                    const ShardStamp &stamp = ShardStamp());
    bool appendQuarantine(std::uint64_t point,
                          const QuarantineRecord &rec,
                          const ShardStamp &stamp = ShardStamp());

    /** Record a shard-lease acquisition (multi-executor mode). */
    bool appendClaim(std::uint64_t shard, std::uint64_t token);

    /**
     * Compact the journal: atomically replace it with a snapshot headed
     * by "open" and carrying only each point's terminal state (done /
     * quarantine) and counted-failure totals. Bounds journal growth for
     * campaigns with heavy retry traffic.
     */
    bool rotate(const ReplayState &state);

    /** Close (drops the flock). Safe to call twice. */
    void close();

    /**
     * Parse the complete lines of @p content into @p replay. Exposed for
     * tests; open() uses it internally. Returns false when the first
     * line is not a matching "open" header for (@p points, @p gridFp).
     */
    static bool replayContent(const std::string &content,
                              std::uint64_t points, std::uint64_t gridFp,
                              ReplayState *replay, std::string *err);

    /** Render the "open" header line (without trailing newline). */
    static std::string openLine(std::uint64_t points,
                                std::uint64_t gridFp);

  private:
    bool fail(const std::string &what);
    bool appendLine(const std::string &line);

    std::FILE *file_ = nullptr;
    int lockFd_ = -1;
    std::string path_;
    std::string error_;
    std::uint64_t events_ = 0;
    std::uint64_t points_ = 0;
    std::uint64_t gridFp_ = 0;
};

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_JOURNAL_HH

/**
 * @file
 * Deterministic journal merge (see merge.hh for the commutativity
 * argument).
 */

#include "campaign/merge.hh"

#include <algorithm>

#include "common/log.hh"

namespace nord {
namespace campaign {

namespace {

void
setErr(std::string *err, std::string what)
{
    if (err)
        *err = std::move(what);
}

/** Snapshot-dialect "fails" line (byte-equal to journal rotation's). */
std::string
renderFailsLine(std::uint64_t id, int counted)
{
    return detail::formatString(
        "{\"event\":\"fails\",\"point\":%llu,\"counted\":%d}\n",
        static_cast<unsigned long long>(id), counted);
}

/** Snapshot-dialect "done" line (byte-equal to journal rotation's). */
std::string
renderDoneLine(std::uint64_t id, const std::string &resultLine)
{
    return detail::formatString(
               "{\"event\":\"done\",\"point\":%llu,\"result\":",
               static_cast<unsigned long long>(id)) +
           resultLine + "}\n";
}

/** Snapshot-dialect quarantine line (byte-equal to rotation's). */
std::string
renderQuarantineLine(std::uint64_t id, const QuarantineRecord &q)
{
    return detail::formatString(
               "{\"event\":\"quarantine\",\"point\":%llu,"
               "\"class\":\"%s\",\"exit\":%d,\"signal\":%d,"
               "\"ckpt\":\"",
               static_cast<unsigned long long>(id),
               failureClassName(q.cls), q.exitCode, q.signal) +
           jsonEscape(q.ckptPath) + "\",\"stderrTail\":\"" +
           jsonEscape(q.stderrTail) + "\"}\n";
}

/** Canonical bytes of a candidate's terminal event (tie-breaking key). */
std::string
terminalBytes(std::uint64_t id, const ReplayPoint &p)
{
    if (p.done)
        return renderDoneLine(id, p.resultLine);
    return renderQuarantineLine(id, p.quarantine);
}

/**
 * Fold the terminal state of candidate @p c into winner @p w (both for
 * point @p id). Returns false on a same-token done divergence.
 */
bool
foldTerminal(std::uint64_t id, const ReplayPoint &c, ReplayPoint *w,
             MergeStats *stats, std::string *err)
{
    if (!c.done && !c.quarantined)
        return true;
    if (!w->done && !w->quarantined) {
        w->done = c.done;
        w->quarantined = !c.done && c.quarantined;
        w->resultLine = c.resultLine;
        w->quarantine = c.quarantine;
        w->token = c.token;
        return true;
    }
    // Total order: token, then done-over-quarantine, then bytes.
    // (Same-token done divergence was already rejected by the caller's
    // cross-journal check, which is order-independent.)
    (void)err;
    bool cWins = false;
    if (c.token != w->token) {
        cWins = c.token > w->token;
    } else if (c.done != w->done) {
        cWins = c.done;
    } else {
        // Equal-token equal-kind: lexicographically smallest rendered
        // bytes win -- arbitrary but order-independent.
        const std::string cb = terminalBytes(id, c);
        const std::string wb = terminalBytes(id, *w);
        if (cb == wb) {
            if (stats)
                stats->duplicates += 1;
            return true;
        }
        cWins = cb < wb;
    }
    if (stats)
        stats->staleDropped += 1;
    if (cWins) {
        w->done = c.done;
        w->quarantined = !c.done && c.quarantined;
        w->resultLine = c.resultLine;
        w->quarantine = c.quarantine;
        w->token = c.token;
    }
    return true;
}

}  // namespace

bool
mergeReplayStates(const std::vector<ReplayState> &states,
                  ReplayState *merged, MergeStats *stats, std::string *err)
{
    *merged = ReplayState();
    if (stats)
        *stats = MergeStats();
    // Divergence detection must not depend on fold order, so every done
    // result is checked against every OTHER done result for its (point,
    // token) pair, not just against the current winner.
    std::map<std::uint64_t, std::map<std::uint64_t, std::string>> seen;
    for (const ReplayState &s : states) {
        if (stats)
            stats->journals += 1;
        if (!merged->opened) {
            merged->opened = true;
            merged->points = s.points;
            merged->gridFp = s.gridFp;
        }
        for (const auto &kv : s.shardTokens) {
            std::uint64_t &best = merged->shardTokens[kv.first];
            best = std::max(best, kv.second);
        }
        for (const auto &kv : s.perPoint) {
            const std::uint64_t id = kv.first;
            const ReplayPoint &c = kv.second;
            if (c.done) {
                auto &byToken = seen[id];
                const auto it = byToken.find(c.token);
                if (it == byToken.end()) {
                    byToken.emplace(c.token, c.resultLine);
                } else if (it->second != c.resultLine) {
                    setErr(err,
                           detail::formatString(
                               "point %llu has divergent results under "
                               "fencing token %llu: the worker is "
                               "nondeterministic",
                               static_cast<unsigned long long>(id),
                               static_cast<unsigned long long>(c.token)));
                    return false;
                }
            }
            ReplayPoint &m = merged->perPoint[id];
            m.launches += c.launches;
            m.countedFailures += c.countedFailures;
            if (!foldTerminal(id, c, &m, stats, err))
                return false;
        }
        merged->events += s.events;
    }
    return true;
}

bool
mergeJournals(std::uint64_t points, std::uint64_t gridFp,
              const std::vector<std::string> &contents,
              ReplayState *merged, MergeStats *stats, std::string *err)
{
    std::vector<ReplayState> states(contents.size());
    for (std::size_t i = 0; i < contents.size(); ++i) {
        if (!CampaignJournal::replayContent(contents[i], points, gridFp,
                                            &states[i], err))
            return false;
    }
    return mergeReplayStates(states, merged, stats, err);
}

std::string
renderCanonicalJournal(const ReplayState &merged)
{
    std::string out =
        CampaignJournal::openLine(merged.points, merged.gridFp) + "\n";
    for (const auto &kv : merged.perPoint) {
        const std::uint64_t id = kv.first;
        const ReplayPoint &p = kv.second;
        if (p.countedFailures > 0)
            out += renderFailsLine(id, p.countedFailures);
        if (p.done)
            out += renderDoneLine(id, p.resultLine);
        else if (p.quarantined)
            out += renderQuarantineLine(id, p.quarantine);
    }
    return out;
}

}  // namespace campaign
}  // namespace nord

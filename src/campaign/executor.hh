/**
 * @file
 * Multi-executor campaign engine: any number of executors cooperatively
 * drain one grid over a shared filesystem.
 *
 * An executor is the fleet-mode counterpart of runCampaign. Joining a
 * campaign directory:
 *
 *  1. MANIFEST -- the first joiner link(2)s "<outDir>/campaign.json"
 *     into existence, freezing the grid (points, fingerprint), the
 *     shard count and the lease grace period. Later joiners validate
 *     the grid against the manifest and ADOPT its shards and grace --
 *     the self-fencing soundness argument (lease.hh) requires every
 *     executor to use the same grace.
 *  2. SHARDS -- point ids are partitioned statically: shard(id) =
 *     id % shards. An executor may only launch and commit points of
 *     shards whose lease it currently holds (lease.hh), and it stamps
 *     every journal event with the shard's fencing token.
 *  3. JOURNALS -- each executor appends to its own
 *     "<outDir>/journal-<execId>.jsonl". Nobody ever writes another
 *     executor's journal; the canonical view is the deterministic merge
 *     (merge.hh) of all of them, re-read every scheduling tick.
 *  4. SELF-FENCE -- when the lease layer cannot prove ownership
 *     (partition, suspension, steal), the executor kills its worker
 *     fleet and exits kExitLeaseLost WITHOUT journaling anything
 *     further -- completed workers it had not yet committed are simply
 *     abandoned; the shard's next owner re-runs those points under a
 *     higher token, and the merge's token rule rejects any stale
 *     commit that did land.
 *  5. COMPLETION -- the executor that observes every point terminal in
 *     the merged view writes the canonical journal and the reports
 *     (byte-identical regardless of which executor writes them, or how
 *     many do).
 *
 * Worker artifacts (checkpoints, result files, stderr logs) live under
 * "<outDir>/<execId>/" so two executors' workers can never collide on
 * a temp file; results travel between executors through journal "done"
 * events, not artifact files.
 */

#ifndef NORD_CAMPAIGN_EXECUTOR_HH
#define NORD_CAMPAIGN_EXECUTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/orchestrator.hh"

namespace nord {
namespace campaign {

/** Executor knobs (the classic knobs plus the fleet layer's). */
struct ExecutorOptions
{
    std::string outDir;    ///< shared campaign directory
    std::string execId;    ///< unique executor id ("" = auto-generate)
    std::uint64_t shards = 0;    ///< 0 = auto (first joiner decides)
    double leaseGraceSec = 2.0;  ///< first joiner freezes this
    double leaseRenewSec = 0.0;  ///< 0 = grace/8
    int workers = 2;
    int maxFailures = 3;
    double hangTimeoutSec = 30.0;
    double pollIntervalSec = 0.05;
    BackoffPolicy backoff;
    WorkerOptions worker;
    ChaosOptions chaos;
    /** Test hook: request a drain after this many local launches
     *  (0 = off). Lets tests hand a campaign from one executor to the
     *  next deterministically. */
    std::uint64_t drainAfterLaunches = 0;
};

/** Final (or fenced / drained) executor state. */
struct ExecutorOutcome
{
    std::string execId;            ///< resolved id (after auto-generate)
    std::uint64_t completed = 0;   ///< merged-view terminal counts
    std::uint64_t quarantined = 0;
    std::uint64_t missing = 0;
    std::uint64_t launches = 0;    ///< this executor's forks
    std::uint64_t chaosKills = 0;
    std::uint64_t partitions = 0;  ///< self-inflicted SIGSTOPs
    std::uint64_t staleDropped = 0;///< stale commits the merge rejected
    bool interrupted = false;      ///< drained by SIGINT/SIGTERM
    bool fenced = false;           ///< lost a lease; exit kExitLeaseLost
    std::string fenceReason;
    bool wroteReports = false;     ///< this executor wrote the reports
    std::string reportJson;
    std::string reportCsv;
    std::string provenance;
};

/**
 * Join (or start) the multi-executor campaign for @p specs under
 * opts.outDir and work it until every point is terminal in the merged
 * view, a drain is requested, or this executor fences.
 *
 * Returns false with @p err only on orchestration failure (I/O, a grid
 * mismatch against the manifest, a classic campaign directory, a merge
 * conflict). Fencing is NOT an error: the function returns true with
 * outcome.fenced set and the caller exits kExitLeaseLost.
 */
bool runExecutor(const std::vector<PointSpec> &specs,
                 const ExecutorOptions &opts, ExecutorOutcome *out,
                 std::string *err);

}  // namespace campaign
}  // namespace nord

#endif  // NORD_CAMPAIGN_EXECUTOR_HH

/**
 * @file
 * Campaign journal implementation (see journal.hh for the format and the
 * crash-safety rules).
 */

#include "campaign/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/checkpoint.hh"
#include "common/log.hh"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace nord {
namespace campaign {

namespace {

void
setErr(std::string *err, std::string what)
{
    if (err)
        *err = std::move(what);
}

}  // namespace

// --- JSON helpers -------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        const char e = s[++i];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (i + 4 < s.size()) {
                unsigned v = 0;
                bool ok = true;
                for (int k = 1; k <= 4; ++k) {
                    const char h = s[i + static_cast<size_t>(k)];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        ok = false;
                }
                if (ok && v < 0x100) {
                    out += static_cast<char>(v);
                    i += 4;
                    break;
                }
            }
            out += "\\u";  // tolerate: pass through
            break;
          default:
            out += '\\';
            out += e;
        }
    }
    return out;
}

namespace {

/**
 * Offset of the value for "key": in @p line, or npos. Searching for the
 * quoted key is unambiguous in the journal's own output: string values
 * are escaped, so a literal  "key":  sequence cannot hide inside one.
 */
size_t
valueOffset(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const size_t at = line.find(needle);
    if (at == std::string::npos)
        return std::string::npos;
    return at + needle.size();
}

/** End of the raw value starting at @p from (brace/string aware). */
size_t
valueEnd(const std::string &line, size_t from)
{
    if (from >= line.size())
        return std::string::npos;
    if (line[from] == '"') {
        for (size_t i = from + 1; i < line.size(); ++i) {
            if (line[i] == '\\')
                ++i;
            else if (line[i] == '"')
                return i + 1;
        }
        return std::string::npos;
    }
    if (line[from] == '{' || line[from] == '[') {
        int depth = 0;
        bool inStr = false;
        for (size_t i = from; i < line.size(); ++i) {
            const char c = line[i];
            if (inStr) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    inStr = false;
            } else if (c == '"') {
                inStr = true;
            } else if (c == '{' || c == '[') {
                ++depth;
            } else if (c == '}' || c == ']') {
                if (--depth == 0)
                    return i + 1;
            }
        }
        return std::string::npos;
    }
    // Number / bare literal: up to the next comma or closing brace.
    size_t i = from;
    while (i < line.size() && line[i] != ',' && line[i] != '}' &&
           line[i] != ']')
        ++i;
    return i;
}

}  // namespace

bool
jsonFieldRaw(const std::string &line, const std::string &key,
             std::string *out)
{
    const size_t from = valueOffset(line, key);
    if (from == std::string::npos)
        return false;
    const size_t end = valueEnd(line, from);
    if (end == std::string::npos || end <= from)
        return false;
    *out = line.substr(from, end - from);
    return true;
}

bool
jsonFieldString(const std::string &line, const std::string &key,
                std::string *out)
{
    std::string raw;
    if (!jsonFieldRaw(line, key, &raw) || raw.size() < 2 ||
        raw.front() != '"' || raw.back() != '"')
        return false;
    *out = jsonUnescape(raw.substr(1, raw.size() - 2));
    return true;
}

bool
jsonFieldU64(const std::string &line, const std::string &key,
             std::uint64_t *out)
{
    std::string raw;
    if (!jsonFieldRaw(line, key, &raw) || raw.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : raw) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

bool
jsonFieldBool(const std::string &line, const std::string &key,
              bool *out)
{
    std::string raw;
    if (!jsonFieldRaw(line, key, &raw))
        return false;
    if (raw == "true") {
        *out = true;
        return true;
    }
    if (raw == "false") {
        *out = false;
        return true;
    }
    return false;
}

// --- Atomic file replacement --------------------------------------------

bool
atomicWriteFile(const std::string &path, const std::string &bytes,
                std::string *err, const std::string &tmpSuffix)
{
    const std::string tmp = path + tmpSuffix;
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        setErr(err, detail::formatString("cannot open %s: %s", tmp.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = (std::fflush(f) == 0) && ok;
#ifndef _WIN32
    ok = (fsync(fileno(f)) == 0) && ok;
#endif
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        setErr(err, detail::formatString("short write to %s: %s",
                                         tmp.c_str(),
                                         std::strerror(errno)));
        if (std::remove(tmp.c_str()) != 0) {
            // Best effort: the stale .tmp is harmless, the next write
            // truncates it.
        }
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, detail::formatString("rename %s -> %s failed: %s",
                                         tmp.c_str(), path.c_str(),
                                         std::strerror(errno)));
        if (std::remove(tmp.c_str()) != 0) {
            // Best effort (see above).
        }
        return false;
    }
    // The rename lives in the parent directory's data: without this a
    // power loss can resurface the pre-rotation file on the next mount.
    return fsyncParentDir(path, err);
}

// --- Journal ------------------------------------------------------------

CampaignJournal::~CampaignJournal()
{
    close();
}

std::string
CampaignJournal::openLine(std::uint64_t points, std::uint64_t gridFp)
{
    return detail::formatString(
        "{\"event\":\"open\",\"format\":%d,\"points\":%llu,"
        "\"gridFp\":%llu}",
        kJournalFormat, static_cast<unsigned long long>(points),
        static_cast<unsigned long long>(gridFp));
}

bool
CampaignJournal::replayContent(const std::string &content,
                               std::uint64_t points, std::uint64_t gridFp,
                               ReplayState *replay, std::string *err)
{
    replay->perPoint.clear();
    replay->shardTokens.clear();
    replay->opened = false;
    replay->events = 0;
    replay->tornTail = false;
    replay->completeBytes = 0;

    size_t from = 0;
    bool first = true;
    while (from < content.size()) {
        const size_t nl = content.find('\n', from);
        if (nl == std::string::npos) {
            // Torn final line: a crash or ENOSPC interrupted an append.
            // The event never took effect; resume as if it never ran.
            replay->tornTail = true;
            break;
        }
        const std::string line = content.substr(from, nl - from);
        from = nl + 1;
        replay->completeBytes = from;
        if (line.empty())
            continue;

        std::string event;
        if (!jsonFieldString(line, "event", &event)) {
            setErr(err, "journal line without an event field: " + line);
            return false;
        }
        if (first) {
            if (event != "open") {
                setErr(err, "journal does not start with an open header");
                return false;
            }
            std::uint64_t pts = 0;
            std::uint64_t fp = 0;
            std::uint64_t fmt = 0;
            if (!jsonFieldU64(line, "points", &pts) ||
                !jsonFieldU64(line, "gridFp", &fp) ||
                !jsonFieldU64(line, "format", &fmt)) {
                setErr(err, "malformed journal open header");
                return false;
            }
            if (fmt != static_cast<std::uint64_t>(kJournalFormat)) {
                setErr(err, detail::formatString(
                                "journal format %llu, this build reads %d",
                                static_cast<unsigned long long>(fmt),
                                kJournalFormat));
                return false;
            }
            if (pts != points || fp != gridFp) {
                setErr(err, detail::formatString(
                                "journal belongs to a different campaign "
                                "(points %llu fp %llu, expected %llu/%llu)",
                                static_cast<unsigned long long>(pts),
                                static_cast<unsigned long long>(fp),
                                static_cast<unsigned long long>(points),
                                static_cast<unsigned long long>(gridFp)));
                return false;
            }
            replay->opened = true;
            replay->points = pts;
            replay->gridFp = fp;
            replay->events += 1;
            first = false;
            continue;
        }

        std::uint64_t point = 0;
        const bool hasPoint = jsonFieldU64(line, "point", &point);
        if (event == "attempt" && hasPoint) {
            std::uint64_t launch = 0;
            ReplayPoint &p = replay->perPoint[point];
            if (jsonFieldU64(line, "launch", &launch))
                p.launches = std::max(p.launches,
                                      static_cast<int>(launch));
            else
                p.launches += 1;
        } else if (event == "done" && hasPoint) {
            ReplayPoint &p = replay->perPoint[point];
            std::string result;
            if (!jsonFieldRaw(line, "result", &result)) {
                setErr(err, "done event without a result: " + line);
                return false;
            }
            p.done = true;
            p.resultLine = std::move(result);
            std::uint64_t tok = 0;
            if (jsonFieldU64(line, "token", &tok))
                p.token = std::max(p.token, tok);
        } else if (event == "fail" && hasPoint) {
            ReplayPoint &p = replay->perPoint[point];
            bool counted = true;
            if (jsonFieldBool(line, "counted", &counted) && !counted) {
                // chaos kill / orchestrator-inflicted: not charged
            } else {
                p.countedFailures += 1;
            }
        } else if (event == "fails" && hasPoint) {
            std::uint64_t n = 0;
            if (jsonFieldU64(line, "counted", &n))
                replay->perPoint[point].countedFailures +=
                    static_cast<int>(n);
        } else if (event == "quarantine" && hasPoint) {
            ReplayPoint &p = replay->perPoint[point];
            p.quarantined = true;
            QuarantineRecord &q = p.quarantine;
            std::string cls;
            if (jsonFieldString(line, "class", &cls))
                q.cls = failureClassFromName(cls.c_str());
            std::uint64_t v = 0;
            if (jsonFieldU64(line, "exit", &v))
                q.exitCode = static_cast<int>(v);
            if (jsonFieldU64(line, "signal", &v))
                q.signal = static_cast<int>(v);
            std::string s;
            if (jsonFieldString(line, "stderrTail", &s))
                q.stderrTail = std::move(s);
            if (jsonFieldString(line, "ckpt", &s))
                q.ckptPath = std::move(s);
            if (jsonFieldU64(line, "token", &v))
                p.token = std::max(p.token, v);
        } else if (event == "claim") {
            std::uint64_t shard = 0;
            std::uint64_t tok = 0;
            if (jsonFieldU64(line, "shard", &shard) &&
                jsonFieldU64(line, "token", &tok)) {
                std::uint64_t &best = replay->shardTokens[shard];
                best = std::max(best, tok);
            }
        }
        // Unknown events are skipped: newer writers stay replayable.
        replay->events += 1;
    }
    if (first) {
        setErr(err, "journal is empty");
        return false;
    }
    return true;
}

bool
CampaignJournal::fail(const std::string &what)
{
    if (error_.empty())
        error_ = what;
    return false;
}

bool
CampaignJournal::appendLine(const std::string &line)
{
    if (!ok())
        return false;
    if (!file_)
        return fail("journal is not open");
    const std::string withNl = line + "\n";
    bool wrote = std::fwrite(withNl.data(), 1, withNl.size(), file_) ==
                 withNl.size();
    wrote = (std::fflush(file_) == 0) && wrote;
#ifndef _WIN32
    wrote = (fsync(fileno(file_)) == 0) && wrote;
#endif
    if (!wrote)
        return fail(detail::formatString("journal append to %s failed: %s",
                                         path_.c_str(),
                                         std::strerror(errno)));
    events_ += 1;
    return true;
}

bool
CampaignJournal::open(const std::string &path, std::uint64_t points,
                      std::uint64_t gridFp, ReplayState *replay,
                      std::string *err)
{
    close();
    path_ = path;
    points_ = points;
    gridFp_ = gridFp;
    error_.clear();
    events_ = 0;

#ifndef _WIN32
    lockFd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (lockFd_ < 0) {
        setErr(err, detail::formatString("cannot open journal %s: %s",
                                         path.c_str(),
                                         std::strerror(errno)));
        return false;
    }
    if (flock(lockFd_, LOCK_EX | LOCK_NB) != 0) {
        setErr(err, detail::formatString(
                        "journal %s is locked (another orchestrator is "
                        "running this campaign)",
                        path.c_str()));
        ::close(lockFd_);
        lockFd_ = -1;
        return false;
    }
#endif

    std::string content;
    {
        std::ifstream in(path, std::ios::in | std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            content = buf.str();
        }
    }

    if (!content.empty()) {
        if (!replayContent(content, points, gridFp, replay, err)) {
            close();
            return false;
        }
        events_ = replay->events;
        if (replay->tornTail) {
            // Chop the torn fragment: the interrupted append never took
            // effect, and leaving it would glue the next event onto a
            // garbage prefix.
#ifndef _WIN32
            if (ftruncate(lockFd_,
                          static_cast<off_t>(replay->completeBytes)) !=
                0) {
                setErr(err, detail::formatString(
                                "cannot truncate torn journal tail in "
                                "%s: %s",
                                path.c_str(), std::strerror(errno)));
                close();
                return false;
            }
#endif
        }
    } else {
        replay->perPoint.clear();
        replay->opened = false;
        replay->events = 0;
        replay->tornTail = false;
    }

    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) {
        setErr(err, detail::formatString("cannot append to journal %s: %s",
                                         path.c_str(),
                                         std::strerror(errno)));
        close();
        return false;
    }
    if (content.empty()) {
        if (!appendLine(openLine(points, gridFp))) {
            setErr(err, error_);
            close();
            return false;
        }
        replay->opened = true;
        replay->points = points;
        replay->gridFp = gridFp;
        replay->events = 1;
    }
    return true;
}

namespace {

/** Render the ",\"shard\":K,\"token\":T" stamp ("" when unstamped). */
std::string
stampFields(const ShardStamp &stamp)
{
    if (!stamp.stamped())
        return std::string();
    return detail::formatString(
        ",\"shard\":%llu,\"token\":%llu",
        static_cast<unsigned long long>(stamp.shard),
        static_cast<unsigned long long>(stamp.token));
}

}  // namespace

bool
CampaignJournal::appendAttempt(std::uint64_t point, int launch,
                               const ShardStamp &stamp)
{
    return appendLine(detail::formatString(
                          "{\"event\":\"attempt\",\"point\":%llu",
                          static_cast<unsigned long long>(point)) +
                      stampFields(stamp) +
                      detail::formatString(",\"launch\":%d}", launch));
}

bool
CampaignJournal::appendDone(std::uint64_t point,
                            const std::string &resultLine,
                            const ShardStamp &stamp)
{
    return appendLine(detail::formatString(
                          "{\"event\":\"done\",\"point\":%llu",
                          static_cast<unsigned long long>(point)) +
                      stampFields(stamp) + ",\"result\":" + resultLine +
                      "}");
}

bool
CampaignJournal::appendFail(std::uint64_t point, FailureClass cls,
                            int exitCode, int signal, bool counted,
                            const std::string &stderrTail,
                            const std::string &ckptPath,
                            const ShardStamp &stamp)
{
    return appendLine(detail::formatString(
                          "{\"event\":\"fail\",\"point\":%llu",
                          static_cast<unsigned long long>(point)) +
                      stampFields(stamp) +
                      detail::formatString(
                          ",\"class\":\"%s\",\"exit\":%d,\"signal\":%d,"
                          "\"counted\":%s,\"ckpt\":\"",
                          failureClassName(cls), exitCode, signal,
                          counted ? "true" : "false") +
                      jsonEscape(ckptPath) + "\",\"stderrTail\":\"" +
                      jsonEscape(stderrTail) + "\"}");
}

bool
CampaignJournal::appendQuarantine(std::uint64_t point,
                                  const QuarantineRecord &rec,
                                  const ShardStamp &stamp)
{
    return appendLine(detail::formatString(
                          "{\"event\":\"quarantine\",\"point\":%llu",
                          static_cast<unsigned long long>(point)) +
                      stampFields(stamp) +
                      detail::formatString(
                          ",\"class\":\"%s\",\"exit\":%d,\"signal\":%d,"
                          "\"ckpt\":\"",
                          failureClassName(rec.cls), rec.exitCode,
                          rec.signal) +
                      jsonEscape(rec.ckptPath) + "\",\"stderrTail\":\"" +
                      jsonEscape(rec.stderrTail) + "\"}");
}

bool
CampaignJournal::appendClaim(std::uint64_t shard, std::uint64_t token)
{
    return appendLine(detail::formatString(
        "{\"event\":\"claim\",\"shard\":%llu,\"token\":%llu}",
        static_cast<unsigned long long>(shard),
        static_cast<unsigned long long>(token)));
}

bool
CampaignJournal::rotate(const ReplayState &state)
{
    if (!ok())
        return false;
    std::string snapshot = openLine(points_, gridFp_) + "\n";
    std::uint64_t lines = 1;
    for (const auto &kv : state.perPoint) {
        const std::uint64_t id = kv.first;
        const ReplayPoint &p = kv.second;
        // Counted-failure totals are kept even for terminal points:
        // provenance reports them, and a quarantine decision must stay
        // explainable after compaction.
        if (p.countedFailures > 0) {
            snapshot += detail::formatString(
                "{\"event\":\"fails\",\"point\":%llu,\"counted\":%d}\n",
                static_cast<unsigned long long>(id), p.countedFailures);
            ++lines;
        }
        if (p.done) {
            snapshot += detail::formatString(
                            "{\"event\":\"done\",\"point\":%llu,"
                            "\"result\":",
                            static_cast<unsigned long long>(id)) +
                        p.resultLine + "}\n";
            ++lines;
        } else if (p.quarantined) {
            const QuarantineRecord &q = p.quarantine;
            snapshot += detail::formatString(
                            "{\"event\":\"quarantine\",\"point\":%llu,"
                            "\"class\":\"%s\",\"exit\":%d,\"signal\":%d,"
                            "\"ckpt\":\"",
                            static_cast<unsigned long long>(id),
                            failureClassName(q.cls), q.exitCode,
                            q.signal) +
                        jsonEscape(q.ckptPath) + "\",\"stderrTail\":\"" +
                        jsonEscape(q.stderrTail) + "\"}\n";
            ++lines;
        }
    }

    if (file_) {
        if (std::fclose(file_) != 0)
            return fail("journal close before rotation failed");
        file_ = nullptr;
    }
    std::string err;
    if (!atomicWriteFile(path_, snapshot, &err))
        return fail("journal rotation failed: " + err);
#ifndef _WIN32
    if (lockFd_ >= 0) {
        // The flock followed the old inode; re-acquire it on the new one.
        ::close(lockFd_);
        lockFd_ = ::open(path_.c_str(), O_RDWR, 0644);
        if (lockFd_ < 0 || flock(lockFd_, LOCK_EX | LOCK_NB) != 0)
            return fail("cannot re-lock rotated journal " + path_);
    }
#endif
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        return fail("cannot reopen rotated journal " + path_);
    events_ = lines;
    return true;
}

void
CampaignJournal::close()
{
    if (file_) {
        if (std::fclose(file_) != 0) {
            // Appends are individually flushed+fsync'd; a close failure
            // cannot lose an acknowledged event.
        }
        file_ = nullptr;
    }
#ifndef _WIN32
    if (lockFd_ >= 0) {
        ::close(lockFd_);
        lockFd_ = -1;
    }
#endif
}

}  // namespace campaign
}  // namespace nord

/**
 * @file
 * Wormhole VC router pipeline implementation.
 */

#include "router/router.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "ni/network_interface.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

Router::Router(NodeId id, const NocConfig &config, const MeshTopology &mesh,
               const BypassRing &ring, NetworkStats &stats, PoolArena *arena)
    : id_(id), config_(config), mesh_(mesh), ring_(ring), stats_(stats),
      counters_(stats.router(id))
{
    const ArenaAllocator<Flit> alloc(arena);
    for (auto &ip : inputs_)
        ip.vcs.assign(static_cast<size_t>(config_.numVcs),
                      VirtualChannel(alloc));
    for (auto &op : outputs_) {
        op.credits.assign(static_cast<size_t>(config_.numVcs),
                          config_.bufferDepth);
        op.outVcBusy.assign(static_cast<size_t>(config_.numVcs), false);
    }
    // The local "output" is the ejection path into the NI, which always
    // accepts one flit per cycle; model it as an infinite sink.
    outputs_[dirIndex(Direction::kLocal)].credits.assign(
        static_cast<size_t>(config_.numVcs), 1 << 20);
}

std::string
Router::name() const
{
    return "router" + std::to_string(id_);
}

void
Router::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("input VC buffers and FSMs, output credits and VC holds, "
           "allocator round-robin pointers, cached neighbor power views");
    for (int i = 0; i < kNumMeshDirs; ++i) {
        const OutputPort &op = outputs_[i];
        if (op.link != nullptr)
            d.writes(op.link, ChannelKind::kFlitPush, Visibility::kAny);
        if (op.neighbor != nullptr) {
            d.writes(&op.neighbor->controller(), ChannelKind::kWakeup,
                     Visibility::kSameCycle);
            d.reads(&op.neighbor->controller(), ChannelKind::kPowerObserve);
            d.reads(op.neighbor, ChannelKind::kRouterObserve);
        }
        const InputPort &ip = inputs_[i];
        if (ip.creditReturn != nullptr)
            d.writes(ip.creditReturn, ChannelKind::kCreditPush,
                     Visibility::kAny);
        if (ip.inLink != nullptr)
            d.reads(ip.inLink, ChannelKind::kRouterObserve);
    }
    d.writes(ni_, ChannelKind::kEjection, Visibility::kAny);
    d.writes(ni_, ChannelKind::kLocalCredit, Visibility::kSameCycle);
    d.reads(ni_, ChannelKind::kNiObserve);
    d.reads(controller_, ChannelKind::kPowerObserve);
    if (config_.design == PgDesign::kNord) {
        // Gated-off redirect into the NI latch (the flit never enters the
        // pipeline) and the sleep/wake-driven bypass enable/drain.
        d.writes(ni_, ChannelKind::kBypassLatch, Visibility::kSameCycle);
        d.writes(ni_, ChannelKind::kBypassControl, Visibility::kNextCycle);
    }
}

void
Router::connectOutput(Direction d, Router *neighbor, FlitLink *link)
{
    OutputPort &op = outputs_[dirIndex(d)];
    op.neighbor = neighbor;
    op.link = link;
}

void
Router::connectCreditReturn(Direction inPort, CreditLink *link)
{
    inputs_[dirIndex(inPort)].creditReturn = link;
}

void
Router::connectInput(Direction inPort, FlitLink *link)
{
    inputs_[dirIndex(inPort)].inLink = link;
}

void
Router::setController(PgController *controller)
{
    controller_ = controller;
}

bool
Router::datapathEmpty() const
{
    for (const auto &ip : inputs_) {
        for (const auto &vc : ip.vcs) {
            if (!vc.buffer.empty() ||
                vc.state != VcState::kIdle) {
                return false;
            }
        }
    }
    return true;
}

bool
Router::allCreditsHome(Direction d) const
{
    const OutputPort &op = outputs_[dirIndex(d)];
    if (!op.neighbor)
        return true;
    for (VcId v = 0; v < config_.numVcs; ++v) {
        if (op.credits[v] != config_.bufferDepth)
            return false;
    }
    return true;
}

bool
Router::icIncoming(Cycle now) const
{
    access::onRead(this, ChannelKind::kRouterObserve);
    access::Handoff handoff(this);
    for (int d = 0; d < kNumMeshDirs; ++d) {
        const Direction dir = indexDir(d);
        const Router *nb = outputs_[d].neighbor;
        if (nb)
            access::onRead(nb, ChannelKind::kRouterObserve);
        if (nb && nb->icUntil(opposite(dir)) >= now)
            return true;
        // A neighbor holding any credit of ours has committed (or may
        // still commit) flits towards us: stay awake until they are home.
        if (nb && !nb->allCreditsHome(opposite(dir)))
            return true;
        const FlitLink *inLink = inputs_[d].inLink;
        if (inLink)
            access::onRead(inLink, ChannelKind::kRouterObserve);
        if (inLink && !inLink->empty())
            return true;
    }
    return false;
}

int
Router::bufferedFlits() const
{
    int total = 0;
    for (const auto &ip : inputs_) {
        for (const auto &vc : ip.vcs)
            total += static_cast<int>(vc.buffer.size());
    }
    return total;
}

Router::VcProbe
Router::probeVc(Direction inPort, VcId vc) const
{
    const VirtualChannel &v = inputs_[dirIndex(inPort)].vcs[vc];
    VcProbe probe;
    probe.state = v.state;
    probe.occupancy = static_cast<int>(v.buffer.size());
    probe.outPort = v.outPort;
    probe.outVc = v.outVc;
    probe.sentAny = v.sentAny;
    probe.frontIsHead = !v.buffer.empty() && flitIsHead(v.buffer.front());
    return probe;
}

void
Router::forEachBufferedFlit(
    const std::function<void(Direction, VcId, const Flit &)> &fn) const
{
    for (int p = 0; p < kNumPorts; ++p) {
        for (VcId v = 0; v < config_.numVcs; ++v) {
            for (const Flit &f : inputs_[p].vcs[v].buffer)
                fn(indexDir(p), v, f);
        }
    }
}

void
Router::injectCreditLeak(Direction outPort, VcId vc)
{
    access::onWrite(this, ChannelKind::kFault);
    --outputs_[dirIndex(outPort)].credits[vc];
}

void
Router::repairCredits(Direction outPort, VcId vc, int count)
{
    access::onWrite(this, ChannelKind::kRepair);
    OutputPort &op = outputs_[dirIndex(outPort)];
    op.credits[vc] += count;
    NORD_ASSERT(op.credits[vc] <= config_.bufferDepth,
                "credit repair overflow at router %d port %s vc %d", id_,
                dirName(outPort), vc);
}

void
Router::eatFlit(Direction inPort, const Flit &flit, Cycle now)
{
    InputPort &ip = inputs_[dirIndex(inPort)];
    VirtualChannel &vc = ip.vcs[flit.vc];
    tracePacket(flit.packet, now, "eaten at dead router %d port %s seq %d",
                id_, dirName(inPort), flit.seq);
    if (flitIsHead(flit)) {
        vc.eating = true;
        // Without the E2E layer nobody else will account for the loss.
        if (!config_.fault.e2e && flit.kind == E2eKind::kData)
            stats_.packetFailed();
    }
    if (flitIsTail(flit))
        vc.eating = false;
    stats_.flitEaten(now);
    // Return the credit with normal buffer-read timing so the upstream
    // counter stays coherent.
    if (ip.creditReturn)
        ip.creditReturn->push(flit.vc, now + 1);
    else
        ni_->localCreditReturn(flit.vc);
}

void
Router::acceptFlit(Direction inPort, const Flit &arrived, Cycle now)
{
    access::onWrite(this, ChannelKind::kFlitDeliver);
    access::Handoff handoff(this);
    kernelWake();
    emptyAfterTick_ = false;
    Flit flit = arrived;
    recordVisit(flit, id_);

    // NoRD: ring traffic bound for the NI bypass latch while this router
    // is gated off (or still draining a bypass packet after waking).
    if (config_.design == PgDesign::kNord &&
        inPort == ring_.bypassInport(id_) &&
        ni_->claimForBypass(flit)) {
        tracePacket(flit.packet, now, "latch write at %d seq %d vc %d",
                    id_, flit.seq, flit.vc);
        ni_->bypassLatchWrite(flit, now);
        return;
    }

    // A permanently dead non-NoRD router is pinned on but untrusted: new
    // packets reaching its input stage are eaten (head and the body flits
    // that follow it), while wormholes accepted before the failure drain
    // through the still-running pipeline.
    if (controller_->dead() && config_.design != PgDesign::kNord) {
        const VirtualChannel &vc = inputs_[dirIndex(inPort)].vcs[flit.vc];
        if (flitIsHead(flit) || vc.eating) {
            eatFlit(inPort, flit, now);
            return;
        }
    }

    tracePacket(flit.packet, now, "buffer write at %d port %s seq %d vc %d",
                id_, dirName(inPort), flit.seq, flit.vc);

    NORD_ASSERT(powerState() == PowerState::kOn,
                "router %d received flit of packet %llu (type %d seq %d "
                "src %d dst %d vc %d) on port %s while %s",
                id_, static_cast<unsigned long long>(flit.packet),
                static_cast<int>(flit.type), flit.seq, flit.src, flit.dst,
                flit.vc, dirName(inPort), powerStateName(powerState()));
    InputPort &ip = inputs_[dirIndex(inPort)];
    NORD_DCHECK(flit.vc >= 0 && flit.vc < config_.numVcs, "bad vc %d",
                flit.vc);
    VirtualChannel &vc = ip.vcs[flit.vc];
    NORD_ASSERT(static_cast<int>(vc.buffer.size()) < config_.bufferDepth,
                "buffer overflow at router %d port %s vc %d", id_,
                dirName(inPort), flit.vc);
    vc.buffer.push_back(flit);
    ++counters_.bufferWrites;
}

void
Router::acceptCredit(Direction outPort, VcId vc, Cycle)
{
    access::onWrite(this, ChannelKind::kCreditDeliver);
    OutputPort &op = outputs_[dirIndex(outPort)];
    ++op.credits[vc];
    NORD_DCHECK(op.credits[vc] <= config_.bufferDepth,
                "credit overflow at router %d port %s vc %d", id_,
                dirName(outPort), vc);
}

void
Router::enqueueLocal(const Flit &flit, Cycle)
{
    access::onWrite(this, ChannelKind::kLocalInject);
    access::Handoff handoff(this);
    kernelWake();
    emptyAfterTick_ = false;
    NORD_ASSERT(powerState() == PowerState::kOn,
                "NI injected into gated router %d", id_);
    InputPort &ip = inputs_[dirIndex(Direction::kLocal)];
    VirtualChannel &vc = ip.vcs[flit.vc];
    NORD_ASSERT(static_cast<int>(vc.buffer.size()) < config_.bufferDepth,
                "local buffer overflow at router %d vc %d", id_, flit.vc);
    vc.buffer.push_back(flit);
    ++counters_.bufferWrites;
}

bool
Router::localVcIdle(VcId vc) const
{
    access::onRead(this, ChannelKind::kRouterObserve);
    const auto &v = inputs_[dirIndex(Direction::kLocal)].vcs[vc];
    return v.state == VcState::kIdle && v.buffer.empty();
}

void
Router::onSleep(Cycle now)
{
    access::onWrite(this, ChannelKind::kPowerSignal);
    access::Handoff handoff(this);
    NORD_ASSERT(datapathEmpty(), "router %d gated off while non-empty",
                id_);
    if (config_.design == PgDesign::kNord)
        ni_->enableBypass(now);
}

void
Router::onWake(Cycle now)
{
    access::onWrite(this, ChannelKind::kPowerSignal);
    access::Handoff handoff(this);
    if (config_.design == PgDesign::kNord)
        ni_->beginBypassDrain(now);
}

void
Router::observeNeighborPower(Cycle)
{
    const Direction ringOut = ring_.bypassOutport(id_);
    for (int d = 0; d < kNumMeshDirs; ++d) {
        OutputPort &op = outputs_[d];
        if (!op.neighbor)
            continue;
        access::onRead(&op.neighbor->controller(),
                       ChannelKind::kPowerObserve);
        const bool pg = op.neighbor->pgAsserted();
        if (pg == op.gatedView)
            continue;
        op.gatedView = pg;
        const bool isRingEdge = config_.design == PgDesign::kNord &&
                                indexDir(d) == ringOut;
        if (pg) {
            // Downstream gated off: heads committed to this output restart
            // from RC (Section 4.3); the ring predecessor drops its credit
            // view to the single NI bypass latch slot per VC.
            if (!isRingEdge)
                restartHeadsOn(indexDir(d));
            if (isRingEdge) {
                for (VcId v = 0; v < config_.numVcs; ++v) {
                    NORD_ASSERT(op.credits[v] == config_.bufferDepth,
                                "router %d: credits not home when %d gated",
                                id_, op.neighbor->id());
                    op.credits[v] = 1;
                }
            }
        } else {
            // Downstream woke up: restore the credit view.
            for (VcId v = 0; v < config_.numVcs; ++v) {
                if (isRingEdge) {
                    op.credits[v] += config_.bufferDepth - 1;
                    NORD_ASSERT(op.credits[v] <= config_.bufferDepth,
                                "credit overflow on wake at router %d", id_);
                } else {
                    op.credits[v] = config_.bufferDepth;
                }
            }
        }
    }
}

void
Router::restartHeadsOn(Direction d)
{
    for (auto &ip : inputs_) {
        for (auto &vc : ip.vcs) {
            if (vc.state == VcState::kActive &&
                vc.outPort == d) {
                NORD_ASSERT(!vc.sentAny,
                            "router %d: neighbor gated mid-packet", id_);
                outputs_[dirIndex(d)].outVcBusy[vc.outVc] = false;
                vc.outVc = kInvalidVc;
                vc.state = VcState::kVcAlloc;
            }
        }
    }
}

bool
Router::outputUsable(Direction d) const
{
    if (d == Direction::kLocal)
        return true;
    const OutputPort &op = outputs_[dirIndex(d)];
    if (!op.gatedView)
        return true;
    // Gated downstream: NoRD may still use the ring edge into the
    // neighbor's NI bypass latch; conventional designs must wait for it
    // to wake up.
    return config_.design == PgDesign::kNord &&
           d == ring_.bypassOutport(id_);
}

bool
Router::outputAllocatable(Direction) const
{
    // VA never needs to hold back: bypass-drain flits and pipeline flits
    // share the Bypass Outport cycle-by-cycle in SA (see outputUsable),
    // so allocation hoarding cannot deadlock the drain.
    return true;
}

VcId
Router::bypassAllocOutVc(VcClass cls, int escLevel)
{
    access::onWrite(this, ChannelKind::kBypassDrive);
    OutputPort &op = outputs_[dirIndex(ring_.bypassOutport(id_))];
    VcId first;
    VcId last;
    if (cls == VcClass::kEscape) {
        NORD_ASSERT(escLevel >= 0, "ring escape needs an explicit level");
        first = config_.firstVcOf(VcClass::kEscape) + escLevel;
        last = first;
    } else {
        first = config_.firstVcOf(VcClass::kAdaptive);
        last = first + config_.numVcsOf(VcClass::kAdaptive) - 1;
    }
    for (VcId v = first; v <= last; ++v) {
        if (!op.outVcBusy[v] && op.credits[v] > 0) {
            // Stage 2 allocates the VC and reserves the credit together
            // (Section 4.2 step 2), so a committed flit never blocks.
            op.outVcBusy[v] = true;
            --op.credits[v];
            return v;
        }
    }
    return kInvalidVc;
}

bool
Router::bypassCreditAvailable(VcId outVc) const
{
    access::onRead(this, ChannelKind::kRouterObserve);
    const OutputPort &op = outputs_[dirIndex(ring_.bypassOutport(id_))];
    return op.credits[outVc] > 0;
}

void
Router::bypassReserveCredit(VcId outVc)
{
    access::onWrite(this, ChannelKind::kBypassDrive);
    OutputPort &op = outputs_[dirIndex(ring_.bypassOutport(id_))];
    --op.credits[outVc];
    NORD_DCHECK(op.credits[outVc] >= 0, "negative bypass credits at %d",
                id_);
}

void
Router::bypassSendFlit(Flit flit, VcId outVc, Cycle now)
{
    access::onWrite(this, ChannelKind::kBypassDrive);
    access::Handoff handoff(this);
    OutputPort &op = outputs_[dirIndex(ring_.bypassOutport(id_))];
    // The credit was reserved in stage 2.
    flit.vc = outVc;
    flit.hops = static_cast<std::int16_t>(flit.hops + 1);
    tracePacket(flit.packet, now, "bypass send at %d seq %d outvc %d", id_,
                flit.seq, outVc);
    op.link->push(flit, now + 1);
    op.icUntil = std::max(op.icUntil, now + 1);
    ++counters_.bypassForwards;
    ++counters_.linkTraversals;
    if (flitIsTail(flit))
        op.outVcBusy[outVc] = false;
}

void
Router::bypassCreditReturn(VcId slot, Cycle now)
{
    access::onWrite(this, ChannelKind::kBypassDrive);
    access::Handoff handoff(this);
    CreditLink *cl =
        inputs_[dirIndex(ring_.bypassInport(id_))].creditReturn;
    NORD_ASSERT(cl != nullptr, "no credit return on bypass inport of %d",
                id_);
    cl->push(slot, now + 1);
}

bool
Router::tryAllocOutVc(VirtualChannel &vc, Direction outPort, VcClass cls,
                      int escLevel)
{
    OutputPort &op = outputs_[dirIndex(outPort)];
    VcId first;
    VcId last;  // inclusive
    if (cls == VcClass::kEscape) {
        if (escLevel >= 0) {
            first = config_.firstVcOf(VcClass::kEscape) + escLevel;
            last = first;
        } else {
            first = config_.firstVcOf(VcClass::kEscape);
            last = first + config_.numVcsOf(VcClass::kEscape) - 1;
        }
    } else {
        first = config_.firstVcOf(VcClass::kAdaptive);
        last = first + config_.numVcsOf(VcClass::kAdaptive) - 1;
    }
    for (VcId v = first; v <= last; ++v) {
        if (!op.outVcBusy[v]) {
            op.outVcBusy[v] = true;
            vc.outPort = outPort;
            vc.outVc = v;
            vc.state = VcState::kActive;
            return true;
        }
    }
    return false;
}

void
Router::vcAllocation(Cycle now)
{
    for (int p = 0; p < kNumPorts; ++p) {
        InputPort &ip = inputs_[p];
        const Direction inDir = indexDir(p);
        for (auto &vc : ip.vcs) {
            if (vc.state != VcState::kVcAlloc ||
                vc.vaEarliest > now) {
                continue;
            }
            NORD_DCHECK(!vc.buffer.empty() && flitIsHead(vc.buffer.front()),
                        "VcAlloc state without a head flit at router %d",
                        id_);
            Flit &head = vc.buffer.front();
            RouteRequest req = policy_->route(id_, head, inDir, *this);

            bool granted = false;
            RouteCandidate taken{};
            if (!req.mustEscape) {
                for (const RouteCandidate &cand : req.adaptive) {
                    if (!outputAllocatable(cand.dir))
                        continue;
                    if (tryAllocOutVc(vc, cand.dir, VcClass::kAdaptive,
                                      -1)) {
                        granted = true;
                        taken = cand;
                        break;
                    }
                }
            }
            if (granted) {
                if (taken.nonMinimal)
                    ++head.misroutes;
            } else {
                // Duato escape path: forced, or adaptive starved too long.
                ++vc.blockedCycles;
                const bool tryEscape = req.mustEscape ||
                    req.adaptive.empty() ||
                    vc.blockedCycles >= config_.escapeAfterBlockedCycles;
                if (tryEscape && outputAllocatable(req.escapeDir)) {
                    int level = policy_->escapeVcLevel(id_, req.escapeDir,
                                                       head);
                    if (tryAllocOutVc(vc, req.escapeDir, VcClass::kEscape,
                                      level)) {
                        granted = true;
                        head.onEscape = true;
                        if (level >= 0)
                            head.escLevel = static_cast<std::int8_t>(level);
                    }
                }
            }
            if (granted) {
                vc.saEarliest = now + 1;
                vc.blockedCycles = 0;
                ++counters_.vcAllocs;
            }
        }
    }
}

void
Router::switchAllocation(Cycle now)
{
    // Stage 1: each input port nominates one ready VC (round-robin).
    std::array<int, kNumPorts> nominee;
    nominee.fill(-1);
    for (int p = 0; p < kNumPorts; ++p) {
        InputPort &ip = inputs_[p];
        const int numVcs = config_.numVcs;
        for (int k = 0; k < numVcs; ++k) {
            const int v = (ip.rrVc + k) % numVcs;
            VirtualChannel &vc = ip.vcs[v];
            if (vc.state != VcState::kActive ||
                vc.buffer.empty() || vc.saEarliest > now) {
                continue;
            }
            const int op = dirIndex(vc.outPort);
            if (config_.design == PgDesign::kNord &&
                vc.outPort == ring_.bypassOutport(id_) &&
                ni_->stage3Pending(now)) {
                // The NI bypass re-injection owns the Bypass Outport mux
                // this cycle; retry next cycle.
                continue;
            }
            if (!outputUsable(vc.outPort)) {
                // Conventional designs: the SA request to a gated neighbor
                // raises the WU signal and the flit stalls (Section 3.1).
                if (outputs_[op].neighbor)
                    outputs_[op].neighbor->controller().requestWakeup(now);
                continue;
            }
            if (vc.outPort != Direction::kLocal &&
                outputs_[op].credits[vc.outVc] <= 0) {
                // Duato's escape guarantee requires a blocked head to be
                // able to reach escape resources: a head that committed
                // to an adaptive output VC but has not sent a flit yet
                // releases it after a while and re-routes (possibly onto
                // escape), breaking adaptive credit cycles.
                if (!vc.sentAny && flitIsHead(vc.buffer.front()) &&
                    ++vc.saBlocked >= config_.escapeAfterBlockedCycles) {
                    outputs_[op].outVcBusy[vc.outVc] = false;
                    vc.outVc = kInvalidVc;
                    vc.state = VcState::kVcAlloc;
                    vc.vaEarliest = now + 1;
                    vc.blockedCycles = config_.escapeAfterBlockedCycles;
                    vc.saBlocked = 0;
                }
                continue;
            }
            vc.saBlocked = 0;
            nominee[p] = v;
            break;
        }
    }

    // Stage 2: each output port grants one nominee (round-robin).
    for (int o = 0; o < kNumPorts; ++o) {
        OutputPort &op = outputs_[o];
        int winner = -1;
        for (int k = 0; k < kNumPorts; ++k) {
            const int p = (op.rrInput + k) % kNumPorts;
            if (nominee[p] < 0)
                continue;
            const VirtualChannel &vc = inputs_[p].vcs[nominee[p]];
            if (dirIndex(vc.outPort) == o) {
                winner = p;
                break;
            }
        }
        if (winner < 0)
            continue;
        op.rrInput = (winner + 1) % kNumPorts;
        InputPort &ip = inputs_[winner];
        VirtualChannel &vc = ip.vcs[nominee[winner]];
        ip.rrVc = (nominee[winner] + 1) % config_.numVcs;
        sendFlit(ip, winner, vc, now);
        nominee[winner] = -1;
    }
}

void
Router::sendFlit(InputPort &ip, int ipIdx, VirtualChannel &vc, Cycle now)
{
    Flit flit = vc.buffer.front();
    tracePacket(flit.packet, now, "SA at %d seq %d -> %s outvc %d", id_,
                flit.seq, dirName(vc.outPort), vc.outVc);
    const VcId inVc = flit.vc;
    vc.buffer.pop_front();
    ++counters_.bufferReads;
    ++counters_.swAllocs;
    ++counters_.xbarTraversals;

    flit.vc = vc.outVc;
    flit.hops = static_cast<std::int16_t>(flit.hops + 1);

    // Return the buffer credit upstream (1-cycle credit link).
    if (ip.creditReturn) {
        ip.creditReturn->push(inVc, now + 1);
    } else if (indexDir(ipIdx) == Direction::kLocal) {
        ni_->localCreditReturn(inVc);
    }

    const int o = dirIndex(vc.outPort);
    OutputPort &op = outputs_[o];
    if (vc.outPort == Direction::kLocal) {
        // ST this cycle, LT next; ejection reaches the NI two cycles on.
        ni_->acceptEjection(flit, now + 3);
    } else {
        --op.credits[flit.vc];
        NORD_DCHECK(op.credits[flit.vc] >= 0, "negative credits at %d",
                    id_);
        op.link->push(flit, now + 3);
        op.icUntil = std::max(op.icUntil, now + 3);
        ++counters_.linkTraversals;
    }

    if (flitIsTail(flit)) {
        op.outVcBusy[vc.outVc] = false;
        vc.state = VcState::kIdle;
        vc.outVc = kInvalidVc;
        vc.sentAny = false;
    } else {
        vc.sentAny = true;
    }
    vc.saEarliest = now + 1;
}

void
Router::routeNewHeads(Cycle now)
{
    for (int p = 0; p < kNumPorts; ++p) {
        InputPort &ip = inputs_[p];
        for (auto &vc : ip.vcs) {
            if (vc.state != VcState::kIdle ||
                vc.buffer.empty()) {
                continue;
            }
            NORD_DCHECK(flitIsHead(vc.buffer.front()),
                        "non-head flit at idle VC of router %d", id_);
            vc.state = VcState::kVcAlloc;
            vc.vaEarliest = now + 1;
            vc.blockedCycles = 0;

            if (config_.design == PgDesign::kConvPgOpt) {
                // Early wakeup: fire WU as soon as the output port is
                // computed (RC), ahead of the SA stall (Section 3.3).
                const Flit &head = vc.buffer.front();
                RouteRequest req =
                    policy_->route(id_, head, indexDir(p), *this);
                bool anyUsable = false;
                for (const RouteCandidate &cand : req.adaptive)
                    anyUsable |= outputUsable(cand.dir);
                if (!anyUsable) {
                    Direction target = req.adaptive.empty()
                        ? req.escapeDir : req.adaptive.front().dir;
                    Router *nb = outputs_[dirIndex(target)].neighbor;
                    if (nb)
                        access::onRead(&nb->controller(),
                                       ChannelKind::kPowerObserve);
                    if (nb && nb->pgAsserted())
                        nb->controller().requestWakeup(now);
                }
            }
        }
    }
}

void
Router::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("RTR "));
    std::int32_t id = id_;
    s.io(id);
    if (s.loading() && id != id_) {
        s.fail("checkpoint router id mismatch: expected " +
               std::to_string(id_) + ", found " + std::to_string(id));
        return;
    }
    for (InputPort &ip : inputs_) {
        s.io(ip.rrVc);
        s.ioSequence(ip.vcs, [&s](VirtualChannel &vc) {
            s.ioSequence(vc.buffer);
            s.io(vc.state);
            s.io(vc.outPort);
            s.io(vc.outVc);
            s.io(vc.vaEarliest);
            s.io(vc.saEarliest);
            s.io(vc.blockedCycles);
            s.io(vc.saBlocked);
            s.io(vc.sentAny);
            s.io(vc.eating);
        });
    }
    for (OutputPort &op : outputs_) {
        s.ioSequence(op.credits);
        s.io(op.outVcBusy);
        s.io(op.gatedView);
        s.io(op.icUntil);
        s.io(op.rrInput);
    }
}

void
Router::dumpState(std::FILE *out) const
{
    std::fprintf(out, "router %d state=%s empty=%d\n", id_,
                 powerStateName(powerState()), datapathEmpty() ? 1 : 0);
    for (int p = 0; p < kNumPorts; ++p) {
        for (int v = 0; v < config_.numVcs; ++v) {
            const VirtualChannel &vc = inputs_[p].vcs[v];
            if (vc.state == VcState::kIdle &&
                vc.buffer.empty()) {
                continue;
            }
            std::fprintf(out,
                "  in %s vc%d state=%d buf=%zu out=%s outvc=%d sent=%d",
                dirName(indexDir(p)), v, static_cast<int>(vc.state),
                vc.buffer.size(), dirName(vc.outPort), vc.outVc,
                vc.sentAny ? 1 : 0);
            if (!vc.buffer.empty()) {
                const Flit &f = vc.buffer.front();
                std::fprintf(out,
                    " | front pkt=%llu t=%d seq=%d dst=%d esc=%d mis=%d",
                    static_cast<unsigned long long>(f.packet),
                    static_cast<int>(f.type), f.seq, f.dst,
                    f.onEscape ? 1 : 0, f.misroutes);
            }
            std::fprintf(out, "\n");
        }
    }
    for (int o = 0; o < kNumPorts; ++o) {
        const OutputPort &op = outputs_[o];
        std::fprintf(out, "  out %s gated=%d credits", dirName(indexDir(o)),
                     op.gatedView ? 1 : 0);
        for (int v = 0; v < config_.numVcs; ++v)
            std::fprintf(out, " %d%s", op.credits[v],
                         op.outVcBusy[v] ? "B" : "");
        std::fprintf(out, "\n");
    }
}

void
Router::checkQuiescent() const
{
    for (int p = 0; p < kNumPorts; ++p) {
        for (int v = 0; v < config_.numVcs; ++v) {
            const VirtualChannel &vc = inputs_[p].vcs[v];
            NORD_ASSERT(vc.buffer.empty() &&
                            vc.state == VcState::kIdle,
                        "router %d port %s vc %d not idle after drain",
                        id_, dirName(indexDir(p)), v);
        }
    }
    for (int o = 0; o < kNumMeshDirs; ++o) {
        const OutputPort &op = outputs_[o];
        if (!op.neighbor)
            continue;
        for (int v = 0; v < config_.numVcs; ++v) {
            NORD_ASSERT(!op.outVcBusy[v],
                        "router %d leaked output VC %s/%d", id_,
                        dirName(indexDir(o)), v);
            // A gated downstream shrinks the ring predecessor's credit
            // view to the single latch slot; otherwise all buffer
            // credits must be home.
            const int expect = op.gatedView &&
                config_.design == PgDesign::kNord &&
                indexDir(o) == ring_.bypassOutport(id_)
                ? 1 : config_.bufferDepth;
            if (!op.gatedView || expect == 1) {
                NORD_ASSERT(op.credits[v] == expect,
                            "router %d credits %s/%d = %d (expect %d)",
                            id_, dirName(indexDir(o)), v, op.credits[v],
                            expect);
            }
        }
    }
}

bool
Router::quiescent() const
{
    if (!emptyAfterTick_)
        return false;
    // A stale neighbor power view means the next tick does real work
    // (credit-view adjustment, head restarts) -- stay on the active list
    // until observeNeighborPower has caught up.
    for (int d = 0; d < kNumMeshDirs; ++d) {
        const OutputPort &op = outputs_[d];
        if (op.neighbor != nullptr &&
            op.gatedView != op.neighbor->pgAsserted()) {
            return false;
        }
    }
    return true;
}

void
Router::tick(Cycle now)
{
    observeNeighborPower(now);
    if (powerState() == PowerState::kOn) {
        switchAllocation(now);
        vcAllocation(now);
        routeNewHeads(now);
    } else {
        NORD_DCHECK(datapathEmpty(),
                    "router %d has buffered flits while %s", id_,
                    powerStateName(powerState()));
    }
    const bool empty = datapathEmpty();
    stats_.routerIdleSample(id_, empty, now);
    emptyAfterTick_ = empty;
}

}  // namespace nord

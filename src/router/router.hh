/**
 * @file
 * Canonical 4-stage wormhole virtual-channel router (Section 3.1).
 *
 * Pipeline: RC (routing computation), VA (VC allocation), SA (switch
 * allocation), ST (switch traversal), followed by LT (link traversal and
 * buffer write at the downstream router). Head flits traverse all stages;
 * body/tail flits inherit the VC's route and use SA/ST only. Per-hop
 * latency at zero load is therefore 5 cycles; the NoRD bypass pipeline is
 * 3 (Section 6.8).
 *
 * Flow control is credit-based wormhole with private per-VC buffers.
 * The VC set is split into an escape class and an adaptive class
 * (Duato's Protocol).
 *
 * Power-gating integration: a small always-on controller (PgController)
 * monitors emptiness and the PG/WU/IC handshake. When a neighbor is gated
 * the corresponding output is tagged unavailable in SA (conventional
 * designs) or reachable only via the Bypass Ring edge (NoRD), and credits
 * are adjusted per Section 4.3.
 */

#ifndef NORD_ROUTER_ROUTER_HH
#define NORD_ROUTER_ROUTER_HH

#include <array>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "network/link.hh"
#include "network/noc_config.hh"
#include "powergate/pg_controller.hh"
#include "routing/routing_policy.hh"
#include "sim/clocked.hh"
#include "stats/network_stats.hh"
#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {

class NetworkInterface;
class StateSerializer;

/**
 * One mesh router with its input-buffered VC pipeline.
 */
class Router : public Clocked
{
  public:
    /** Per-VC state machine phase (public for the InvariantAuditor). */
    enum class VcState : std::int8_t
    {
        kIdle,     ///< no packet
        kRouting,  ///< head buffered, RC this cycle
        kVcAlloc,  ///< requesting an output VC
        kActive,   ///< output VC held, flits stream through SA
    };

    /** Read-only snapshot of one input VC (introspection). */
    struct VcProbe
    {
        VcState state = VcState::kIdle;
        int occupancy = 0;            ///< buffered flits
        Direction outPort = Direction::kLocal;
        VcId outVc = kInvalidVc;
        bool sentAny = false;         ///< a flit of the packet already left
        bool frontIsHead = false;     ///< front buffered flit is a head
    };

    /**
     * @param arena optional pool backing the VC buffers (null = heap);
     *        semantics are identical either way.
     */
    Router(NodeId id, const NocConfig &config, const MeshTopology &mesh,
           const BypassRing &ring, NetworkStats &stats,
           PoolArena *arena = nullptr);

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    // --- Wiring (done once by NocSystem) ---------------------------------
    /** Connect mesh output @p d to @p neighbor through @p link. */
    void connectOutput(Direction d, Router *neighbor, FlitLink *link);

    /** Connect the credit-return path for flits received on @p inPort. */
    void connectCreditReturn(Direction inPort, CreditLink *link);

    /** Input flit link feeding @p inPort (for in-flight checks). */
    void connectInput(Direction inPort, FlitLink *link);

    /** Attach the node's network interface. */
    void setNi(NetworkInterface *ni) { ni_ = ni; }

    /** Attach the power-gating controller (owned by the caller). */
    void setController(PgController *controller);

    /** Attach the routing policy (shared across routers). */
    void setRoutingPolicy(const RoutingPolicy *policy) { policy_ = policy; }

    // --- Identity ----------------------------------------------------------
    NodeId id() const { return id_; }
    std::string name() const override;

    // --- Simulation ---------------------------------------------------------
    void tick(Cycle now) override;

    /**
     * Idle-skipping predicate: an empty datapath whose cached neighbor
     * power views are in sync has a provably no-op tick (SA/VA/RC all
     * skip empty VCs and the round-robin pointers only advance on
     * grants). Any event that could give this router work wakes it:
     * flit arrival, local injection, and power transitions of itself or
     * a mesh neighbor (wired in NocSystem).
     */
    bool quiescent() const override;

    const char *kindName() const override { return "router"; }

    // --- Link-facing interface ----------------------------------------------
    /**
     * A flit finished LT into @p inPort. When the router is bypassing
     * (NoRD, gated off) and @p inPort is the Bypass Inport, the flit is
     * redirected into the NI bypass latch.
     */
    void acceptFlit(Direction inPort, const Flit &flit, Cycle now);

    /** A credit returned for VC @p vc of output port @p outPort. */
    void acceptCredit(Direction outPort, VcId vc, Cycle now);

    // --- NI-facing interface -------------------------------------------------
    /**
     * Enqueue a flit from the NI into the local input port (router must
     * be powered on; the NI performs VC allocation and credit checks).
     */
    void enqueueLocal(const Flit &flit, Cycle now);

    /** True if local input VC @p vc has no packet assigned (NI-side VA). */
    bool localVcIdle(VcId vc) const;

    // --- Power-gating handshake ----------------------------------------------
    PowerState powerState() const { return controller_->state(); }
    bool pgAsserted() const { return controller_->pgAsserted(); }
    PgController &controller() { return *controller_; }

    /** True when every input VC is empty and idle. */
    bool datapathEmpty() const;

    /**
     * IC signal: true when some neighbor (or a bypassing neighbor NI) has
     * a flit in flight towards this router.
     */
    bool icIncoming(Cycle now) const;

    /**
     * Cycle until which this router's output @p d carries in-flight flits
     * (the outgoing IC signal seen by the downstream router).
     */
    Cycle icUntil(Direction d) const
    {
        return outputs_[dirIndex(d)].icUntil;
    }

    /**
     * True when every credit of output @p d is home (no flit in flight,
     * buffered downstream, or committed by the NI bypass). Used by the
     * downstream router's sleep check.
     */
    bool allCreditsHome(Direction d) const;

    /** This router's cached view of the downstream PG signal on @p d. */
    bool outputGatedView(Direction d) const
    {
        return outputs_[dirIndex(d)].gatedView;
    }

    /**
     * Offline-analysis hook (nord-verify CDG pass): force the cached
     * downstream-PG view of output @p d so a probe router can present any
     * neighbor power-state mask to RoutingPolicy::route(). Never called
     * during simulation -- the wiring in NocSystem keeps gatedView in sync
     * with the real neighbor controllers.
     */
    void forceGatedView(Direction d, bool gated)
    {
        outputs_[dirIndex(d)].gatedView = gated;
    }

    /** Controller callbacks. */
    void onSleep(Cycle now);
    void onWake(Cycle now);

    // --- NoRD bypass re-injection (driven by the NI, Section 4.2) -----------
    /**
     * Try to allocate an output VC of class @p cls (escape level
     * @p escLevel) on the Bypass Outport. Returns kInvalidVc on failure.
     */
    VcId bypassAllocOutVc(VcClass cls, int escLevel);

    /** Credits available for @p outVc on the Bypass Outport? */
    bool bypassCreditAvailable(VcId outVc) const;

    /**
     * Reserve one credit of @p outVc on the Bypass Outport (stage 2 of
     * the bypass pipeline checks credits before committing the flit, so
     * stage 3 can never head-of-line block the escape sub-network).
     */
    void bypassReserveCredit(VcId outVc);

    /**
     * Return a buffer credit for bypass-latch slot @p slot to the ring
     * predecessor (the upstream of the Bypass Inport).
     */
    void bypassCreditReturn(VcId slot, Cycle now);

    /**
     * Re-inject @p flit on the Bypass Outport using @p outVc (stage 3 of
     * the bypass pipeline). Consumes one credit; frees the output VC on
     * tail flits.
     */
    void bypassSendFlit(Flit flit, VcId outVc, Cycle now);

    /** Access shared structures. */
    const NocConfig &config() const { return config_; }
    const MeshTopology &mesh() const { return mesh_; }
    const BypassRing &ring() const { return ring_; }
    const RoutingPolicy &policy() const { return *policy_; }
    NetworkInterface &ni() { return *ni_; }

    /** Total buffered flits (diagnostics). */
    int bufferedFlits() const;

    // --- Introspection (InvariantAuditor; cheap, non-intrusive) -----------
    /** Snapshot of input VC @p vc on port @p inPort. */
    VcProbe probeVc(Direction inPort, VcId vc) const;

    /** Current credit count of (@p outPort, @p vc). */
    int creditCount(Direction outPort, VcId vc) const
    {
        return outputs_[dirIndex(outPort)].credits[vc];
    }

    /** True when output VC (@p outPort, @p vc) is held by some packet. */
    bool outVcBusy(Direction outPort, VcId vc) const
    {
        return outputs_[dirIndex(outPort)].outVcBusy[vc];
    }

    /** Outgoing flit link on @p d (null for local / mesh edge). */
    const FlitLink *outputLink(Direction d) const
    {
        return outputs_[dirIndex(d)].link;
    }

    /** Downstream router on @p d (null for local / mesh edge). */
    const Router *neighborRouter(Direction d) const
    {
        return outputs_[dirIndex(d)].neighbor;
    }

    /** Credit-return link of input @p inPort (null for the local port). */
    const CreditLink *creditReturnLink(Direction inPort) const
    {
        return inputs_[dirIndex(inPort)].creditReturn;
    }

    /** Visit every flit buffered in this router's input VCs. */
    void forEachBufferedFlit(
        const std::function<void(Direction, VcId, const Flit &)> &fn) const;

    /**
     * Fault injection (testing only): silently lose one credit of
     * (@p outPort, @p vc), as a buggy credit path would.
     */
    void injectCreditLeak(Direction outPort, VcId vc);

    /**
     * Restore @p count credits of (@p outPort, @p vc). Maintenance path
     * used by the InvariantAuditor's recover policy to repair credit
     * counters deflated by injected credit-leak faults.
     */
    void repairCredits(Direction outPort, VcId vc, int count);

    /** Mutable outgoing link on @p d (FaultInjector only). */
    FlitLink *outputLinkMut(Direction d)
    {
        return outputs_[dirIndex(d)].link;
    }

    /** Dump all non-idle pipeline state to @p out (diagnostics). */
    void dumpState(std::FILE *out) const;

    /**
     * Checkpoint hook: every input VC FSM and buffer, allocator round-robin
     * pointers, output credit counters / VC holds / cached neighbor views.
     */
    void serializeState(StateSerializer &s);

    /**
     * Shard-safety contract: the channels this router writes/reads on its
     * links, neighbors, NI and power controller (see verify/access/).
     */
    void declareOwnership(OwnershipDeclarator &d) const override;

    /**
     * Verify resource-conservation invariants for a drained network:
     * every credit home (modulo gated-neighbor views), no output VC
     * held, every input VC idle. Panics with a description on
     * violation; call only when the network is drained.
     */
    void checkQuiescent() const;

  private:
    /** Per-VC state machine. */
    struct VirtualChannel
    {
        explicit VirtualChannel(const ArenaAllocator<Flit> &a = {})
            : buffer(a)
        {
        }

        ArenaDeque<Flit> buffer;
        VcState state = VcState::kIdle;
        Direction outPort = Direction::kLocal;
        VcId outVc = kInvalidVc;
        Cycle vaEarliest = 0;    ///< earliest cycle VA may be attempted
        Cycle saEarliest = 0;    ///< earliest cycle SA may be attempted
        int blockedCycles = 0;   ///< consecutive failed VA attempts
        int saBlocked = 0;       ///< consecutive credit-blocked SA tries
        bool sentAny = false;    ///< a flit of this packet already left
        bool eating = false;     ///< dead router: discarding this packet
    };

    struct InputPort
    {
        std::vector<VirtualChannel> vcs;
        NORD_STATE_EXCLUDE(config, "wiring; rebuilt by NocSystem::buildLinks")
        CreditLink *creditReturn = nullptr;  ///< null for the local port
        NORD_STATE_EXCLUDE(config, "wiring; rebuilt by NocSystem::buildLinks")
        FlitLink *inLink = nullptr;
        int rrVc = 0;                        ///< SA round-robin pointer
    };

    struct OutputPort
    {
        NORD_STATE_EXCLUDE(config, "wiring; rebuilt by NocSystem::buildLinks")
        Router *neighbor = nullptr;   ///< null for local / mesh edge
        NORD_STATE_EXCLUDE(config, "wiring; rebuilt by NocSystem::buildLinks")
        FlitLink *link = nullptr;     ///< null for the local port
        std::vector<int> credits;
        std::vector<bool> outVcBusy;
        bool gatedView = false;       ///< cached downstream PG signal
        Cycle icUntil = 0;            ///< outgoing IC coverage
        int rrInput = 0;              ///< SA round-robin pointer
    };

    // Pipeline phases (called in reverse order each tick).
    void observeNeighborPower(Cycle now);
    void switchAllocation(Cycle now);
    void vcAllocation(Cycle now);
    void routeNewHeads(Cycle now);

    /** Send @p flit out of @p outPort / @p outVc (ST + LT). */
    void sendFlit(InputPort &ip, int ipIdx, VirtualChannel &vc, Cycle now);

    /**
     * Dead-router graceful degradation ("fail active eating"): discard an
     * arriving flit of a newly-started packet at the input stage while
     * returning its credit upstream, so the fabric neither hangs nor
     * leaks flow control. In-progress wormholes complete normally.
     */
    void eatFlit(Direction inPort, const Flit &flit, Cycle now);

    /** Restart heads whose chosen output just became unavailable. */
    void restartHeadsOn(Direction d);

    /**
     * Try to grant an output VC on (@p outPort, class/level) for the head
     * of @p vc. Returns true on success.
     */
    bool tryAllocOutVc(VirtualChannel &vc, Direction outPort, VcClass cls,
                       int escLevel);

    /** True when output @p d may be requested in SA by this design. */
    bool outputUsable(Direction d) const;

    /**
     * True when VA may allocate new output VCs on @p d. The Bypass
     * Outport is held back while the NI is still draining bypass flows
     * after a wakeup (prevents pipeline/bypass crossbar conflicts).
     */
    bool outputAllocatable(Direction d) const;

    NodeId id_;
    const NocConfig &config_;
    const MeshTopology &mesh_;
    const BypassRing &ring_;
    NetworkStats &stats_;
    ActivityCounters &counters_;
    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildControllers")
    NetworkInterface *ni_ = nullptr;
    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildControllers")
    PgController *controller_ = nullptr;
    const RoutingPolicy *policy_ = nullptr;

    std::array<InputPort, kNumPorts> inputs_;
    std::array<OutputPort, kNumPorts> outputs_;

    /**
     * datapathEmpty() as computed by the last tick, invalidated (set
     * false) by every flit arrival. Lets quiescent() -- which the kernel
     * consults right after each tick -- reuse the scan the idle-stats
     * sample already paid for.
     */
    NORD_STATE_EXCLUDE(cache,
        "loadCheckpoint wakes all components; the next tick recomputes it")
    bool emptyAfterTick_ = false;
};

}  // namespace nord

#endif  // NORD_ROUTER_ROUTER_HH

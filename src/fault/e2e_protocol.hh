/**
 * @file
 * End-to-end reliability protocol endpoint (one per NI).
 *
 * Sender side: every data packet to a remote node gets a per-flow sequence
 * number and a checksum over its payload surrogate. A copy of the packet
 * descriptor stays in a retransmission buffer until the matching ACK
 * arrives; a lost or damaged packet is retransmitted on NACK (fast path)
 * or on timeout with exponential backoff (slow path), up to a bounded
 * retry budget after which the packet is declared failed.
 *
 * Receiver side: arriving packets are checksum-verified, deduplicated and
 * reordered so the node observes each packet exactly once, in flow order.
 * ACK/NACKs piggyback on the head flits of reverse-direction data packets
 * when possible and travel as standalone single-flit control packets after
 * a short coalescing window otherwise.
 *
 * The endpoint is pure bookkeeping: it never touches the network directly.
 * The NI feeds it arriving flits and executes the sends it requests, so
 * protocol traffic flows through the exact same injection paths (and, for
 * NoRD, the bypass ring) as ordinary traffic.
 */

#ifndef NORD_FAULT_E2E_PROTOCOL_HH
#define NORD_FAULT_E2E_PROTOCOL_HH

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "network/noc_config.hh"
#include "stats/network_stats.hh"

namespace nord {

class StateSerializer;

/**
 * Per-node endpoint of the end-to-end reliability protocol.
 */
class E2eEndpoint
{
  public:
    /** A retransmission the NI should inject. */
    struct Resend
    {
        PacketDescriptor desc;
        std::uint32_t seq;
    };

    /** A standalone ACK/NACK control packet the NI should inject. */
    struct AckSend
    {
        NodeId dst = kInvalidNode;
        std::uint32_t ackSeq = 0;
        std::uint32_t nackSeq = 0;
    };

    E2eEndpoint(NodeId id, const NocConfig &config, NetworkStats &stats);

    /**
     * Sender: allocate the next sequence number of flow id -> desc.dst
     * and arm the retransmission timer. Call once per new data packet
     * (not for retransmitted copies).
     */
    std::uint32_t registerSend(const PacketDescriptor &desc);

    /**
     * Sender: piggyback the oldest pending ACK/NACK for @p head.dst onto
     * an outgoing data head flit, if one is queued.
     */
    void attachPiggyback(Flit &head);

    /**
     * Process one physically arriving flit (receiver data tracking plus
     * sender ACK/NACK absorption). Tails of packets that become logically
     * deliverable -- intact, deduplicated, in flow order -- are appended
     * to @p deliverTails.
     */
    void onFlitArrived(const Flit &flit, Cycle now,
                       std::vector<Flit> &deliverTails);

    /**
     * Expire retransmission timers and the ACK coalescing window.
     * Requested retransmissions and standalone ACK packets are appended
     * for the NI to inject.
     */
    void service(Cycle now, std::vector<Resend> &resends,
                 std::vector<AckSend> &acks);

    /** No unacked sends and no protocol traffic waiting to be emitted. */
    bool quiescent() const;

    /** Unacked data packets currently awaiting ACK or retransmission. */
    size_t pendingSends() const;

    /**
     * Checkpoint hook: retransmission buffers, flow sequence state,
     * receiver reorder/dedup tracking and pending ACK/NACK queues.
     */
    void serializeState(StateSerializer &s);

  private:
    /** One unacked packet in the retransmission buffer. */
    struct TxEntry
    {
        PacketDescriptor desc;
        Cycle firstSent = 0;
        Cycle deadline = 0;
        int retries = 0;
        bool retransmitted = false;
    };

    /** Sender state for flow id_ -> dst. */
    struct TxFlow
    {
        std::uint32_t nextSeq = 1;
        std::map<std::uint32_t, TxEntry> pending;
    };

    /** Receiver state for flow src -> id_. */
    struct RxFlow
    {
        std::uint32_t expected = 1;         ///< next in-order sequence
        std::map<std::uint32_t, Flit> reorder;  ///< held intact tails
    };

    /** Damage accumulated by the in-flight copy with one physical id. */
    struct RxPacketState
    {
        bool headUnparseable = false;
        bool damaged = false;
    };

    /** Pending ACK/NACK awaiting piggyback or standalone emission. */
    struct AckItem
    {
        NodeId dst = kInvalidNode;
        std::uint32_t ackSeq = 0;
        std::uint32_t nackSeq = 0;
        Cycle due = 0;  ///< standalone emission deadline
    };

    void queueAck(NodeId dst, std::uint32_t ackSeq, std::uint32_t nackSeq,
                  Cycle now);
    void onAck(NodeId from, std::uint32_t seq, Cycle now);
    void onNack(NodeId from, std::uint32_t seq, Cycle now);
    void finalizeData(const Flit &tail, bool headUnparseable, bool damaged,
                      Cycle now, std::vector<Flit> &deliverTails);

    /** Timeout for the (retries)-th retransmission, with backoff. */
    Cycle backoffTimeout(int retries) const;

    NORD_STATE_EXCLUDE(config, "endpoint identity fixed at construction")
    NodeId id_;
    const NocConfig &config_;
    NetworkStats &stats_;

    std::map<NodeId, TxFlow> tx_;
    std::map<NodeId, RxFlow> rx_;
    std::unordered_map<PacketId, RxPacketState> inFlightRx_;
    std::deque<AckItem> ackQueue_;
    std::deque<Resend> nackResends_;  ///< fast retransmits awaiting service
};

}  // namespace nord

#endif  // NORD_FAULT_E2E_PROTOCOL_HH

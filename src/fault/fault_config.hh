/**
 * @file
 * Fault-campaign configuration: the fault taxonomy, scheduled fault events
 * and the knobs of the end-to-end resilience layer.
 *
 * Faults come in two flavors:
 *  - Bernoulli transients, drawn every cycle from the dedicated kFaults RNG
 *    stream (flit corruption/drop on links, credit leaks, lost wakeups).
 *    Traffic replay stays bit-identical with the campaign on or off because
 *    the traffic generator draws from its own stream.
 *  - Scheduled events at fixed cycles (permanently dead router, stuck-at
 *    PG controller), for reproducible single-fault experiments.
 */

#ifndef NORD_FAULT_FAULT_CONFIG_HH
#define NORD_FAULT_FAULT_CONFIG_HH

#include <vector>

#include "common/types.hh"

namespace nord {

/** The classes of fault the injector can produce. */
enum class FaultClass
{
    /** Transient bit flips in an in-flight flit's payload (checksum catches
        it at the receiver, which NACKs for a fast retransmit). */
    kFlitCorrupt,
    /** Transient framing loss of an in-flight flit: the phit still arrives
        (flow control intact) but is unparseable and silently discarded, so
        recovery relies on the sender's retransmission timeout. */
    kFlitDrop,
    /** A credit message is lost, permanently deflating an upstream credit
        counter until the auditor's recover mode repairs it. */
    kCreditLeak,
    /** A gated PG controller ignores wakeup commands for a while
        (stuck-at-off); the wakeup watchdog eventually force-wakes it. */
    kStuckPg,
    /** One wakeup command is lost in flight; modeled as a short stuck-at
        window around the loss. */
    kLostWakeup,
    /** The router fails permanently. NoRD demotes it to always-gated and
        serves its node over the bypass ring; baselines pin it on and eat
        (drop + account) packets that route into it. */
    kDeadRouter,
};

/** Name string for a fault class. */
const char *faultClassName(FaultClass cls);

/** A fault scheduled at a fixed cycle (kDeadRouter / kStuckPg). */
struct FaultEvent
{
    Cycle at = 0;               ///< injection cycle
    FaultClass cls = FaultClass::kDeadRouter;
    NodeId node = kInvalidNode; ///< afflicted router
    Cycle duration = 0;         ///< kStuckPg: suppression window length
};

/**
 * Campaign + resilience-layer configuration, embedded in NocConfig.
 *
 * All rates are per-candidate-component per-cycle probabilities; with
 * every rate zero and no schedule the injector never perturbs anything
 * (and with enabled=false it is not even constructed).
 */
struct FaultConfig
{
    /** Master switch: construct and register the FaultInjector. */
    bool enabled = false;

    /** Per non-empty link per cycle: corrupt the oldest in-flight flit. */
    double flitCorruptRate = 0.0;

    /** Per non-empty link per cycle: destroy the oldest flit's framing. */
    double flitDropRate = 0.0;

    /** Per router per cycle: leak one credit on a random output VC. */
    double creditLeakRate = 0.0;

    /** Per gated controller per cycle: lose its wakeup commands. */
    double lostWakeupRate = 0.0;

    /** Length of the wakeup-suppression window a lost wakeup causes. */
    Cycle lostWakeupStall = 64;

    /** Scheduled deterministic events (sorted by the injector). */
    std::vector<FaultEvent> schedule;

    // --- End-to-end resilience layer (NI) ---

    /** Enable sequence numbers, checksums, ACK/NACK and retransmission. */
    bool e2e = false;

    /** Cycles to wait for an ACK before the first retransmission. */
    Cycle retransTimeout = 256;

    /** Timeout multiplier per retry (exponential backoff). */
    int retransBackoff = 2;

    /** Retransmissions per packet before declaring it failed. */
    int retryLimit = 8;

    /** Cycles an ACK waits for a piggyback ride before going standalone. */
    Cycle ackCoalesce = 8;

    /**
     * Wakeup watchdog: a gated router whose latched wakeup request has
     * been pending this long is force-woken by an independent supervisor,
     * recovering lost/stuck wakeups. 0 disables the watchdog. Never fires
     * in a fault-free run (a healthy controller wakes immediately).
     */
    Cycle wakeupWatchdog = 128;
};

}  // namespace nord

#endif  // NORD_FAULT_FAULT_CONFIG_HH

/**
 * @file
 * Fault-injection campaign engine implementation.
 */

#include "fault/fault_injector.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "network/noc_system.hh"
#include "verify/access/access_tracker.hh"
#include "verify/invariant_auditor.hh"

namespace nord {

FaultInjector::FaultInjector(NocSystem &sys, const NocConfig &config)
    : sys_(sys),
      config_(config),
      rng_(config.seed, RngStream::kFaults),
      schedule_(config.fault.schedule)
{
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
}

void
FaultInjector::dispatchScheduled(Cycle now)
{
    while (scheduleIdx_ < schedule_.size() &&
           schedule_[scheduleIdx_].at <= now) {
        const FaultEvent &ev = schedule_[scheduleIdx_++];
        PgController &ctl = sys_.controller(ev.node);
        switch (ev.cls) {
          case FaultClass::kDeadRouter:
            ctl.markDead(now);
            ++counts_.dead;
            break;
          case FaultClass::kStuckPg:
            ctl.injectWakeupSuppression(now + ev.duration);
            ++counts_.stuck;
            break;
          case FaultClass::kLostWakeup:
            ctl.injectWakeupSuppression(
                now + (ev.duration > 0 ? ev.duration
                                       : config_.fault.lostWakeupStall));
            ++counts_.lostWakeup;
            break;
          default:
            NORD_PANIC("fault class %s cannot be scheduled",
                       faultClassName(ev.cls));
        }
    }
}

void
FaultInjector::injectTransients(Cycle now)
{
    const FaultConfig &fc = config_.fault;
    const int n = config_.numNodes();

    // Fixed component order (router id, then direction) keeps a campaign
    // reproducible for a given seed and network evolution.
    for (NodeId id = 0; id < n; ++id) {
        Router &r = sys_.router(id);

        if (fc.flitCorruptRate > 0 || fc.flitDropRate > 0) {
            for (int d = 0; d < kNumMeshDirs; ++d) {
                FlitLink *link = r.outputLinkMut(indexDir(d));
                if (!link || link->empty())
                    continue;
                if (fc.flitCorruptRate > 0 &&
                    rng_.bernoulli(fc.flitCorruptRate)) {
                    if (link->injectTransientFault(false, rng_.next64()))
                        ++counts_.corrupt;
                }
                if (fc.flitDropRate > 0 &&
                    rng_.bernoulli(fc.flitDropRate)) {
                    if (link->injectTransientFault(true, 0))
                        ++counts_.drop;
                }
            }
        }

        if (fc.creditLeakRate > 0 && rng_.bernoulli(fc.creditLeakRate)) {
            const Direction dir =
                indexDir(static_cast<int>(rng_.uniformInt(kNumMeshDirs)));
            const VcId vc = static_cast<VcId>(
                rng_.uniformInt(static_cast<std::uint64_t>(config_.numVcs)));
            // Only a held credit can be lost in flight.
            if (r.neighborRouter(dir) && r.creditCount(dir, vc) > 0) {
                r.injectCreditLeak(dir, vc);
                if (auditor_)
                    auditor_->expectCreditDeficit(id, dir, vc);
                ++counts_.creditLeak;
            }
        }

        if (fc.lostWakeupRate > 0) {
            PgController &ctl = sys_.controller(id);
            if (ctl.state() == PowerState::kOff && !ctl.dead() &&
                rng_.bernoulli(fc.lostWakeupRate)) {
                ctl.injectWakeupSuppression(now + fc.lostWakeupStall);
                ++counts_.lostWakeup;
            }
        }
    }
}

void
FaultInjector::tick(Cycle now)
{
    dispatchScheduled(now);
    injectTransients(now);
}

void
FaultInjector::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("FINJ"));
    s.io(rng_);
    std::uint64_t idx = scheduleIdx_;
    s.io(idx);
    scheduleIdx_ = static_cast<size_t>(idx);
    s.io(counts_.corrupt);
    s.io(counts_.drop);
    s.io(counts_.creditLeak);
    s.io(counts_.lostWakeup);
    s.io(counts_.stuck);
    s.io(counts_.dead);
}

void
FaultInjector::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("fault schedule cursor, transient RNG stream, tallies");
    d.writesAny();
    d.readsAny();
}

}  // namespace nord

/**
 * @file
 * Fault-injection campaign engine.
 *
 * A Clocked component registered *before* every other component, so the
 * faults of cycle N perturb the network state that cycle-N evaluation then
 * observes -- exactly like a glitch on the wire.
 *
 * Two injection modes run side by side:
 *  - Scheduled events (dead router, stuck-at PG controller, lost wakeup)
 *    fire at fixed cycles for reproducible single-fault experiments.
 *  - Bernoulli transients (flit corruption/drop, credit leaks, lost
 *    wakeups) are drawn each cycle from the dedicated kFaults RNG stream,
 *    so traffic replay stays bit-identical with the campaign on or off.
 *
 * Every leaked credit is announced to the InvariantAuditor via
 * expectCreditDeficit(), which lets its recover mode repair the counter
 * while still flagging any *unexpected* deficit as a real bug.
 */

#ifndef NORD_FAULT_FAULT_INJECTOR_HH
#define NORD_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "fault/fault_config.hh"
#include "sim/clocked.hh"

namespace nord {

class NocSystem;
class InvariantAuditor;
class StateSerializer;
struct NocConfig;

/**
 * Drives the configured fault campaign against one NocSystem.
 */
class FaultInjector : public Clocked
{
  public:
    /** Injected-fault tallies, by class. */
    struct Counts
    {
        std::uint64_t corrupt = 0;
        std::uint64_t drop = 0;
        std::uint64_t creditLeak = 0;
        std::uint64_t lostWakeup = 0;
        std::uint64_t stuck = 0;
        std::uint64_t dead = 0;

        std::uint64_t total() const
        {
            return corrupt + drop + creditLeak + lostWakeup + stuck + dead;
        }
    };

    FaultInjector(NocSystem &sys, const NocConfig &config);

    void tick(Cycle now) override;

    std::string name() const override { return "faults"; }

    /** Wire the auditor that gets notified of expected credit deficits. */
    void setAuditor(InvariantAuditor *auditor) { auditor_ = auditor; }

    /** Faults injected so far. */
    const Counts &counts() const { return counts_; }

    /**
     * Checkpoint hook: RNG position, schedule cursor and tallies. The
     * schedule itself is rebuilt from config at construction and therefore
     * not serialized.
     */
    void serializeState(StateSerializer &s);

    /**
     * Shard-safety contract: fault injection deliberately reaches into any
     * component ("a glitch on the wire"), so the injector is a declared
     * wildcard writer -- the one component a per-shard kernel would have
     * to serialize against everything else.
     */
    void declareOwnership(OwnershipDeclarator &d) const override;

  private:
    void dispatchScheduled(Cycle now);
    void injectTransients(Cycle now);

    NocSystem &sys_;
    const NocConfig &config_;
    NORD_STATE_EXCLUDE(config, "auditor wiring attached by NocSystem")
    InvariantAuditor *auditor_ = nullptr;
    Rng rng_;
    NORD_STATE_EXCLUDE(config,
        "fault schedule derived from config at construction; the cursor "
        "scheduleIdx_ is the live state")
    std::vector<FaultEvent> schedule_;  ///< sorted by cycle
    size_t scheduleIdx_ = 0;
    Counts counts_;
};

}  // namespace nord

#endif  // NORD_FAULT_FAULT_INJECTOR_HH

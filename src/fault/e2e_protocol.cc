/**
 * @file
 * End-to-end reliability protocol implementation.
 */

#include "fault/e2e_protocol.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"

namespace nord {

E2eEndpoint::E2eEndpoint(NodeId id, const NocConfig &config,
                         NetworkStats &stats)
    : id_(id), config_(config), stats_(stats)
{
}

std::uint32_t
E2eEndpoint::registerSend(const PacketDescriptor &desc)
{
    NORD_ASSERT(desc.dst != id_, "E2E protection of a self-addressed "
                "packet at node %d", id_);
    TxFlow &flow = tx_[desc.dst];
    const std::uint32_t seq = flow.nextSeq++;
    TxEntry entry;
    entry.desc = desc;
    entry.firstSent = desc.createdAt;
    entry.deadline = desc.createdAt + config_.fault.retransTimeout;
    flow.pending.emplace(seq, entry);
    return seq;
}

void
E2eEndpoint::attachPiggyback(Flit &head)
{
    for (auto it = ackQueue_.begin(); it != ackQueue_.end(); ++it) {
        if (it->dst != head.dst)
            continue;
        head.ackSeq = it->ackSeq;
        head.nackSeq = it->nackSeq;
        ackQueue_.erase(it);
        return;
    }
}

Cycle
E2eEndpoint::backoffTimeout(int retries) const
{
    Cycle timeout = config_.fault.retransTimeout;
    // Cap the exponent so a deep retry chain cannot overflow or stall the
    // drain phase for an absurd number of cycles.
    const int exponent = std::min(retries, 6);
    for (int i = 0; i < exponent; ++i)
        timeout *= static_cast<Cycle>(config_.fault.retransBackoff);
    return timeout;
}

void
E2eEndpoint::queueAck(NodeId dst, std::uint32_t ackSeq,
                      std::uint32_t nackSeq, Cycle now)
{
    ackQueue_.push_back({dst, ackSeq, nackSeq,
                         now + config_.fault.ackCoalesce});
}

void
E2eEndpoint::onAck(NodeId from, std::uint32_t seq, Cycle now)
{
    auto flowIt = tx_.find(from);
    if (flowIt == tx_.end())
        return;
    auto it = flowIt->second.pending.find(seq);
    if (it == flowIt->second.pending.end())
        return;  // already acked (duplicate ACK) or already given up
    FlowStats &fs = stats_.flow(id_, from);
    if (it->second.retransmitted) {
        ++fs.recovered;
        fs.recoveryLatencySum += now - it->second.firstSent;
    }
    flowIt->second.pending.erase(it);
}

void
E2eEndpoint::onNack(NodeId from, std::uint32_t seq, Cycle now)
{
    auto flowIt = tx_.find(from);
    if (flowIt == tx_.end())
        return;
    auto it = flowIt->second.pending.find(seq);
    if (it == flowIt->second.pending.end())
        return;
    TxEntry &entry = it->second;
    if (entry.retries >= config_.fault.retryLimit)
        return;  // the timeout path will declare failure
    ++entry.retries;
    entry.retransmitted = true;
    entry.deadline = now + backoffTimeout(entry.retries);
    ++stats_.flow(id_, from).retransmits;
    nackResends_.push_back({entry.desc, seq});
}

void
E2eEndpoint::finalizeData(const Flit &tail, bool headUnparseable,
                          bool damaged, Cycle now,
                          std::vector<Flit> &deliverTails)
{
    if (tail.e2eSeq == 0) {
        // Unprotected packet (E2E layer off for this traffic class):
        // deliver as-is, exactly like the legacy path.
        deliverTails.push_back(tail);
        return;
    }
    FlowStats &fs = stats_.flow(tail.src, tail.dst);
    if (headUnparseable) {
        // The receiver never even saw a valid header: silent loss, the
        // sender's timeout recovers it.
        ++fs.damaged;
        return;
    }
    if (damaged) {
        // Header intact, content damaged: NACK for a fast retransmit.
        ++fs.damaged;
        ++fs.nacks;
        queueAck(tail.src, 0, tail.e2eSeq, now);
        return;
    }
    RxFlow &flow = rx_[tail.src];
    if (tail.e2eSeq < flow.expected ||
        flow.reorder.count(tail.e2eSeq) != 0) {
        // Duplicate copy (e.g. the original and a timeout retransmission
        // both arrived): discard, but re-ACK so the sender stops.
        ++fs.duplicates;
        queueAck(tail.src, tail.e2eSeq, 0, now);
        return;
    }
    queueAck(tail.src, tail.e2eSeq, 0, now);
    flow.reorder.emplace(tail.e2eSeq, tail);
    // Release the in-order prefix to the node.
    auto it = flow.reorder.find(flow.expected);
    while (it != flow.reorder.end()) {
        deliverTails.push_back(it->second);
        ++fs.delivered;
        flow.reorder.erase(it);
        ++flow.expected;
        it = flow.reorder.find(flow.expected);
    }
}

void
E2eEndpoint::onFlitArrived(const Flit &flit, Cycle now,
                           std::vector<Flit> &deliverTails)
{
    const bool unparseable = (flit.faultFlags & kFaultDropped) != 0;

    // Standalone control packet: absorb and discard (never delivered to
    // the node, never ACKed itself).
    if (flit.kind == E2eKind::kAck) {
        if (unparseable || !flitIntact(flit))
            return;  // a lost ACK just means the sender retries
        if (flit.ackSeq != 0)
            onAck(flit.src, flit.ackSeq, now);
        if (flit.nackSeq != 0)
            onNack(flit.src, flit.nackSeq, now);
        stats_.controlPacketDelivered();
        return;
    }

    // Piggybacked ACK/NACK on a data head: the header is trustworthy
    // unless the framing itself was destroyed.
    if (flitIsHead(flit) && !unparseable) {
        if (flit.ackSeq != 0)
            onAck(flit.src, flit.ackSeq, now);
        if (flit.nackSeq != 0)
            onNack(flit.src, flit.nackSeq, now);
    }

    // Accumulate per-copy damage; decide the packet's fate at the tail.
    RxPacketState state;
    if (flit.length > 1) {
        RxPacketState &tracked = inFlightRx_[flit.packet];
        if (flitIsHead(flit) && unparseable)
            tracked.headUnparseable = true;
        if (unparseable || !flitIntact(flit))
            tracked.damaged = true;
        if (!flitIsTail(flit))
            return;
        state = tracked;
        inFlightRx_.erase(flit.packet);
    } else {
        state.headUnparseable = unparseable;
        state.damaged = unparseable || !flitIntact(flit);
    }
    finalizeData(flit, state.headUnparseable, state.damaged, now,
                 deliverTails);
}

void
E2eEndpoint::service(Cycle now, std::vector<Resend> &resends,
                     std::vector<AckSend> &acks)
{
    // Fast retransmits requested by NACKs.
    while (!nackResends_.empty()) {
        resends.push_back(nackResends_.front());
        nackResends_.pop_front();
    }

    // Retransmission timeouts (deterministic order: flows by node id,
    // entries by sequence number).
    for (auto &[dst, flow] : tx_) {
        for (auto it = flow.pending.begin(); it != flow.pending.end();) {
            TxEntry &entry = it->second;
            if (entry.deadline > now) {
                ++it;
                continue;
            }
            FlowStats &fs = stats_.flow(id_, dst);
            if (entry.retries >= config_.fault.retryLimit) {
                // Retry budget exhausted: give up and account the loss.
                ++fs.failed;
                stats_.packetFailed();
                it = flow.pending.erase(it);
                continue;
            }
            ++entry.retries;
            entry.retransmitted = true;
            entry.deadline = now + backoffTimeout(entry.retries);
            ++fs.retransmits;
            ++fs.timeouts;
            resends.push_back({entry.desc, it->first});
            ++it;
        }
    }

    // ACKs whose piggyback window expired go standalone.
    while (!ackQueue_.empty() && ackQueue_.front().due <= now) {
        const AckItem &item = ackQueue_.front();
        acks.push_back({item.dst, item.ackSeq, item.nackSeq});
        ackQueue_.pop_front();
    }
}

bool
E2eEndpoint::quiescent() const
{
    if (!ackQueue_.empty() || !nackResends_.empty())
        return false;
    for (const auto &[dst, flow] : tx_) {
        (void)dst;
        if (!flow.pending.empty())
            return false;
    }
    return true;
}

size_t
E2eEndpoint::pendingSends() const
{
    size_t count = 0;
    for (const auto &[dst, flow] : tx_) {
        (void)dst;
        count += flow.pending.size();
    }
    return count;
}

void
E2eEndpoint::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("E2E "));
    s.ioMap(tx_, [&s](TxFlow &f) {
        s.io(f.nextSeq);
        s.ioMap(f.pending, [&s](TxEntry &e) {
            s.io(e.desc);
            s.io(e.firstSent);
            s.io(e.deadline);
            s.io(e.retries);
            s.io(e.retransmitted);
        });
    });
    s.ioMap(rx_, [&s](RxFlow &f) {
        s.io(f.expected);
        s.ioMap(f.reorder);
    });
    s.ioUnorderedMap(inFlightRx_, [&s](RxPacketState &p) {
        s.io(p.headUnparseable);
        s.io(p.damaged);
    });
    s.ioSequence(ackQueue_, [&s](AckItem &a) {
        s.io(a.dst);
        s.io(a.ackSeq);
        s.io(a.nackSeq);
        s.io(a.due);
    });
    s.ioSequence(nackResends_, [&s](Resend &r) {
        s.io(r.desc);
        s.io(r.seq);
    });
}

}  // namespace nord

/**
 * @file
 * Simulation statistics: packet latency, router activity counters,
 * power-state residency, and idle-period histograms.
 *
 * The counters double as the input to the power model: every dynamic
 * energy event (buffer write/read, VA, SA, crossbar, link, NI bypass) is
 * counted here and converted to Joules after the run.
 */

#ifndef NORD_STATS_NETWORK_STATS_HH
#define NORD_STATS_NETWORK_STATS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"

namespace nord {

class StateSerializer;

/**
 * End-to-end resilience statistics for one (src, dst) flow.
 */
struct FlowStats
{
    std::uint64_t delivered = 0;     ///< packets logically delivered in order
    std::uint64_t retransmits = 0;   ///< retransmitted copies sent
    std::uint64_t timeouts = 0;      ///< retransmissions due to ACK timeout
    std::uint64_t nacks = 0;         ///< NACKs issued by the receiver
    std::uint64_t duplicates = 0;    ///< duplicate copies discarded
    std::uint64_t damaged = 0;       ///< copies discarded for damage
    std::uint64_t failed = 0;        ///< packets abandoned (retry budget)
    std::uint64_t recovered = 0;     ///< packets acked after >= 1 retransmit
    std::uint64_t recoveryLatencySum = 0;  ///< first-send-to-ACK cycles of
                                           ///< recovered packets
};

/**
 * Dynamic-event and power-state counters for one router (including its NI
 * and outgoing links).
 */
struct ActivityCounters
{
    // Dynamic events.
    std::uint64_t bufferWrites = 0;
    std::uint64_t bufferReads = 0;
    std::uint64_t vcAllocs = 0;       ///< VA grants
    std::uint64_t swAllocs = 0;       ///< SA grants
    std::uint64_t xbarTraversals = 0;
    std::uint64_t linkTraversals = 0;
    std::uint64_t bypassLatchWrites = 0;  ///< NoRD: flits written to NI latch
    std::uint64_t bypassForwards = 0;     ///< NoRD: flits re-injected by NI

    // Power-state residency (cycles).
    std::uint64_t onCycles = 0;
    std::uint64_t offCycles = 0;
    std::uint64_t wakingCycles = 0;

    // Power-gating state transitions.
    std::uint64_t wakeups = 0;
    std::uint64_t sleeps = 0;

    // Datapath occupancy (independent of gating; drives the Section 3
    // idleness study).
    std::uint64_t emptyCycles = 0;
    std::uint64_t busyCycles = 0;
};

/**
 * Histogram of router idle-period lengths.
 *
 * Buckets are 1-cycle wide up to @p maxBucket; longer periods land in the
 * overflow bucket but their exact lengths still contribute to the sums.
 */
class IdlePeriodHistogram
{
  public:
    explicit IdlePeriodHistogram(int maxBucket = 64);

    /** Record one idle period of @p length cycles. */
    void record(Cycle length);

    /** Number of idle periods recorded. */
    std::uint64_t count() const { return count_; }

    /** Total idle cycles across all periods. */
    std::uint64_t totalCycles() const { return totalCycles_; }

    /** Periods with length <= @p limit. */
    std::uint64_t countAtOrBelow(Cycle limit) const;

    /** Fraction of periods with length <= @p limit (0 when empty). */
    double fractionAtOrBelow(Cycle limit) const;

    /** Mean period length (0 when empty). */
    double mean() const;

    /** Raw bucket counts; index i holds periods of length i. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Checkpoint hook. */
    void serializeState(StateSerializer &s);

  private:
    std::vector<std::uint64_t> buckets_;  ///< [0, maxBucket]; last=overflow
    std::uint64_t count_ = 0;
    std::uint64_t totalCycles_ = 0;
};

/**
 * Whole-network statistics collected during one simulation.
 */
class NetworkStats
{
  public:
    NetworkStats(int numRouters, Cycle warmup);

    /**
     * Allocate the next network-unique packet id. Lives here -- the one
     * object every NI already shares -- so packet numbering is per-system
     * (two simulations in one process replay identically) and restores
     * with the rest of the run state on checkpoint load.
     */
    PacketId allocPacketId() { return nextPacketId_++; }

    // --- Packet bookkeeping ---------------------------------------------
    /** A packet's flits entered the NI injection queue. */
    void packetCreated(const PacketDescriptor &desc);

    /** The tail flit of a packet was ejected at its destination NI. */
    void packetDelivered(const Flit &tail, Cycle now);

    /** A flit entered the network fabric (left the NI). */
    void flitInjected(Cycle now);

    /**
     * A flit left the network fabric (delivered to its node, whether via
     * the ejection queue or the NoRD bypass sink). Together with
     * flitInjected() this gives the exact in-network flit population the
     * InvariantAuditor checks conservation against.
     */
    void flitEjected(Cycle now);

    // --- Fault / resilience bookkeeping ------------------------------------
    /**
     * A flit was discarded ("eaten") at the input stage of a permanently
     * dead router, its credit returned upstream. Eaten flits left the
     * fabric without reaching a node.
     */
    void flitEaten(Cycle now);

    /** A packet was abandoned: dropped at a dead router (no E2E layer) or
        its retransmission budget was exhausted. */
    void packetFailed();

    /** A standalone ACK/NACK control packet was created. */
    void controlPacketCreated();

    /** A standalone ACK/NACK control packet reached its destination. */
    void controlPacketDelivered();

    /** Mutable per-flow resilience stats for flow src -> dst. */
    FlowStats &flow(NodeId src, NodeId dst);

    // --- Router activity ---------------------------------------------------
    ActivityCounters &router(NodeId id) { return routers_[id]; }
    const ActivityCounters &router(NodeId id) const { return routers_[id]; }

    /**
     * Router @p id observed its datapath empty (or not) at cycle @p now.
     *
     * Accounting is transition-based: a sample in the same mode as the
     * open run is a state no-op, so a router that skips cycles while
     * quiescent (sim/kernel.hh idle skipping) produces bit-identical
     * stats to one sampling every cycle. Runs are closed (length added
     * to emptyCycles/busyCycles, idle runs recorded in the histogram)
     * only on a mode change or at finalize().
     */
    void routerIdleSample(NodeId id, bool empty, Cycle now);

    /** Close open empty/busy runs at end of simulation (idempotent). */
    void finalize(Cycle now);

    // --- Results ------------------------------------------------------------
    std::uint64_t packetsCreated() const { return packetsCreated_; }
    std::uint64_t packetsDelivered() const { return packetsDelivered_; }
    std::uint64_t packetsFailed() const { return packetsFailed_; }
    std::uint64_t flitsInjected() const { return flitsInjected_; }
    std::uint64_t flitsDelivered() const { return flitsDelivered_; }
    std::uint64_t flitsEjected() const { return flitsEjected_; }
    std::uint64_t flitsEaten() const { return flitsEaten_; }
    std::uint64_t controlPacketsCreated() const
    {
        return controlPacketsCreated_;
    }
    std::uint64_t controlPacketsDelivered() const
    {
        return controlPacketsDelivered_;
    }

    /** Read-only per-flow resilience stats. */
    const std::map<std::uint64_t, FlowStats> &flows() const { return flows_; }

    /** Sum of all per-flow resilience stats. */
    FlowStats flowTotals() const;

    /** Mean packet latency in cycles (creation to tail ejection). */
    double avgPacketLatency() const;

    /**
     * Latency percentile @p p in [0, 1] over measured packets, from a
     * 1-cycle-bucket histogram (exact below the overflow bucket).
     */
    double latencyPercentile(double p) const;

    /** Mean hop count of delivered packets. */
    double avgHops() const;

    /** Aggregate counters over all routers. */
    ActivityCounters totals() const;

    /** Mean fraction of cycles the router datapaths were empty. */
    double avgIdleFraction() const;

    /** Total router wakeups across the network. */
    std::uint64_t totalWakeups() const;

    /** Per-router idle-period histogram. */
    const IdlePeriodHistogram &idleHistogram(NodeId id) const
    {
        return idleHists_[id];
    }

    /** Combined idle-period histogram over all routers. */
    IdlePeriodHistogram combinedIdleHistogram() const;

    int numRouters() const { return static_cast<int>(routers_.size()); }

    /** Checkpoint hook: every counter, histogram and flow record. */
    void serializeState(StateSerializer &s);

  private:
    std::vector<ActivityCounters> routers_;
    std::vector<IdlePeriodHistogram> idleHists_;
    // Open empty/busy run per router: mode flag + start cycle
    // (kNeverCycle = no run opened yet).
    std::vector<std::uint8_t> runEmpty_;
    std::vector<Cycle> runStart_;

    NORD_STATE_EXCLUDE(config, "warmup horizon fixed at construction")
    Cycle warmup_;
    std::uint64_t packetsCreated_ = 0;
    std::uint64_t packetsDelivered_ = 0;
    std::uint64_t packetsFailed_ = 0;
    std::uint64_t flitsInjected_ = 0;
    std::uint64_t flitsDelivered_ = 0;
    std::uint64_t flitsEjected_ = 0;
    std::uint64_t flitsEaten_ = 0;
    std::uint64_t controlPacketsCreated_ = 0;
    std::uint64_t controlPacketsDelivered_ = 0;
    std::uint64_t latencySum_ = 0;
    std::uint64_t hopSum_ = 0;
    std::uint64_t measuredPackets_ = 0;
    std::vector<std::uint64_t> latencyHist_;  ///< 1-cycle buckets + overflow
    std::map<std::uint64_t, FlowStats> flows_;  ///< key (src << 32) | dst
    PacketId nextPacketId_ = 1;
};

}  // namespace nord

#endif  // NORD_STATS_NETWORK_STATS_HH

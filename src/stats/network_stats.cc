/**
 * @file
 * Statistics implementation.
 */

#include "stats/network_stats.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"

namespace nord {

IdlePeriodHistogram::IdlePeriodHistogram(int maxBucket)
    : buckets_(static_cast<size_t>(maxBucket) + 2, 0)
{
}

void
IdlePeriodHistogram::record(Cycle length)
{
    size_t idx = static_cast<size_t>(length);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++count_;
    totalCycles_ += length;
}

std::uint64_t
IdlePeriodHistogram::countAtOrBelow(Cycle limit) const
{
    std::uint64_t total = 0;
    size_t top = static_cast<size_t>(limit);
    if (top >= buckets_.size() - 1)
        top = buckets_.size() - 2;
    for (size_t i = 0; i <= top; ++i)
        total += buckets_[i];
    return total;
}

double
IdlePeriodHistogram::fractionAtOrBelow(Cycle limit) const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(countAtOrBelow(limit)) /
           static_cast<double>(count_);
}

double
IdlePeriodHistogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(totalCycles_) / static_cast<double>(count_);
}

namespace {

/// Latency histogram: exact 1-cycle buckets up to this bound, then overflow.
constexpr size_t kLatencyBuckets = 8192;

}  // namespace

NetworkStats::NetworkStats(int numRouters, Cycle warmup)
    : routers_(numRouters),
      idleHists_(numRouters),
      runEmpty_(numRouters, 0),
      runStart_(numRouters, kNeverCycle),
      warmup_(warmup),
      latencyHist_(kLatencyBuckets + 1, 0)
{
}

void
NetworkStats::packetCreated(const PacketDescriptor &)
{
    ++packetsCreated_;
}

void
NetworkStats::packetDelivered(const Flit &tail, Cycle now)
{
    ++packetsDelivered_;
    flitsDelivered_ += tail.length;
    if (tail.createdAt >= warmup_) {
        NORD_ASSERT(now >= tail.createdAt,
                    "packet delivered before creation");
        const Cycle latency = now - tail.createdAt;
        latencySum_ += latency;
        hopSum_ += static_cast<std::uint64_t>(tail.hops);
        ++measuredPackets_;
        size_t bucket = static_cast<size_t>(latency);
        if (bucket >= latencyHist_.size())
            bucket = latencyHist_.size() - 1;
        ++latencyHist_[bucket];
    }
}

void
NetworkStats::flitEaten(Cycle)
{
    ++flitsEaten_;
}

void
NetworkStats::packetFailed()
{
    ++packetsFailed_;
}

void
NetworkStats::controlPacketCreated()
{
    ++controlPacketsCreated_;
}

void
NetworkStats::controlPacketDelivered()
{
    ++controlPacketsDelivered_;
}

FlowStats &
NetworkStats::flow(NodeId src, NodeId dst)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
        static_cast<std::uint32_t>(dst);
    return flows_[key];
}

FlowStats
NetworkStats::flowTotals() const
{
    FlowStats t;
    for (const auto &[key, f] : flows_) {
        (void)key;
        t.delivered += f.delivered;
        t.retransmits += f.retransmits;
        t.timeouts += f.timeouts;
        t.nacks += f.nacks;
        t.duplicates += f.duplicates;
        t.damaged += f.damaged;
        t.failed += f.failed;
        t.recovered += f.recovered;
        t.recoveryLatencySum += f.recoveryLatencySum;
    }
    return t;
}

double
NetworkStats::latencyPercentile(double p) const
{
    if (measuredPackets_ == 0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(measuredPackets_ - 1));
    std::uint64_t seen = 0;
    for (size_t i = 0; i < latencyHist_.size(); ++i) {
        seen += latencyHist_[i];
        if (seen > rank)
            return static_cast<double>(i);
    }
    return static_cast<double>(latencyHist_.size() - 1);
}

void
NetworkStats::flitInjected(Cycle)
{
    ++flitsInjected_;
}

void
NetworkStats::flitEjected(Cycle)
{
    ++flitsEjected_;
}

void
NetworkStats::routerIdleSample(NodeId id, bool empty, Cycle now)
{
    if (runStart_[id] == kNeverCycle) {
        // First sample ever: open a run.
        runStart_[id] = now;
        runEmpty_[id] = empty ? 1 : 0;
        return;
    }
    if ((runEmpty_[id] != 0) == empty)
        return;  // same mode -- exactly the no-op a skipped cycle gets
    // Mode change: close the run [runStart_, now) and open a new one.
    const Cycle len = now - runStart_[id];
    ActivityCounters &c = routers_[id];
    if (runEmpty_[id] != 0) {
        c.emptyCycles += len;
        idleHists_[id].record(len);
    } else {
        c.busyCycles += len;
    }
    runStart_[id] = now;
    runEmpty_[id] = empty ? 1 : 0;
}

void
NetworkStats::finalize(Cycle now)
{
    for (NodeId id = 0; id < numRouters(); ++id) {
        if (runStart_[id] == kNeverCycle || now <= runStart_[id])
            continue;
        const Cycle len = now - runStart_[id];
        ActivityCounters &c = routers_[id];
        if (runEmpty_[id] != 0) {
            c.emptyCycles += len;
            idleHists_[id].record(len);
        } else {
            c.busyCycles += len;
        }
        // Keep the mode, restart the run at `now`: finalize is
        // idempotent and a resumed simulation keeps accounting.
        runStart_[id] = now;
    }
}

double
NetworkStats::avgPacketLatency() const
{
    if (measuredPackets_ == 0)
        return 0.0;
    return static_cast<double>(latencySum_) /
           static_cast<double>(measuredPackets_);
}

double
NetworkStats::avgHops() const
{
    if (measuredPackets_ == 0)
        return 0.0;
    return static_cast<double>(hopSum_) /
           static_cast<double>(measuredPackets_);
}

ActivityCounters
NetworkStats::totals() const
{
    ActivityCounters t;
    for (const ActivityCounters &c : routers_) {
        t.bufferWrites += c.bufferWrites;
        t.bufferReads += c.bufferReads;
        t.vcAllocs += c.vcAllocs;
        t.swAllocs += c.swAllocs;
        t.xbarTraversals += c.xbarTraversals;
        t.linkTraversals += c.linkTraversals;
        t.bypassLatchWrites += c.bypassLatchWrites;
        t.bypassForwards += c.bypassForwards;
        t.onCycles += c.onCycles;
        t.offCycles += c.offCycles;
        t.wakingCycles += c.wakingCycles;
        t.wakeups += c.wakeups;
        t.sleeps += c.sleeps;
        t.emptyCycles += c.emptyCycles;
        t.busyCycles += c.busyCycles;
    }
    return t;
}

double
NetworkStats::avgIdleFraction() const
{
    ActivityCounters t = totals();
    std::uint64_t denom = t.emptyCycles + t.busyCycles;
    if (denom == 0)
        return 0.0;
    return static_cast<double>(t.emptyCycles) / static_cast<double>(denom);
}

std::uint64_t
NetworkStats::totalWakeups() const
{
    return totals().wakeups;
}

IdlePeriodHistogram
NetworkStats::combinedIdleHistogram() const
{
    IdlePeriodHistogram combined;
    for (const IdlePeriodHistogram &h : idleHists_) {
        const auto &b = h.buckets();
        for (size_t len = 0; len < b.size(); ++len) {
            for (std::uint64_t i = 0; i < b[len]; ++i)
                combined.record(len);
        }
    }
    return combined;
}

void
IdlePeriodHistogram::serializeState(StateSerializer &s)
{
    s.ioSequence(buckets_);
    s.io(count_);
    s.io(totalCycles_);
}

namespace {

void
serializeCounters(StateSerializer &s, ActivityCounters &c)
{
    s.io(c.bufferWrites);
    s.io(c.bufferReads);
    s.io(c.vcAllocs);
    s.io(c.swAllocs);
    s.io(c.xbarTraversals);
    s.io(c.linkTraversals);
    s.io(c.bypassLatchWrites);
    s.io(c.bypassForwards);
    s.io(c.onCycles);
    s.io(c.offCycles);
    s.io(c.wakingCycles);
    s.io(c.wakeups);
    s.io(c.sleeps);
    s.io(c.emptyCycles);
    s.io(c.busyCycles);
}

void
serializeFlow(StateSerializer &s, FlowStats &f)
{
    s.io(f.delivered);
    s.io(f.retransmits);
    s.io(f.timeouts);
    s.io(f.nacks);
    s.io(f.duplicates);
    s.io(f.damaged);
    s.io(f.failed);
    s.io(f.recovered);
    s.io(f.recoveryLatencySum);
}

}  // namespace

void
NetworkStats::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("STAT"));
    s.ioSequence(routers_,
                 [&s](ActivityCounters &c) { serializeCounters(s, c); });
    s.ioSequence(idleHists_,
                 [&s](IdlePeriodHistogram &h) { h.serializeState(s); });
    s.ioSequence(runEmpty_);
    s.ioSequence(runStart_);
    s.io(packetsCreated_);
    s.io(packetsDelivered_);
    s.io(packetsFailed_);
    s.io(flitsInjected_);
    s.io(flitsDelivered_);
    s.io(flitsEjected_);
    s.io(flitsEaten_);
    s.io(controlPacketsCreated_);
    s.io(controlPacketsDelivered_);
    s.io(latencySum_);
    s.io(hopSum_);
    s.io(measuredPackets_);
    s.ioSequence(latencyHist_);
    s.ioMap(flows_, [&s](FlowStats &f) { serializeFlow(s, f); });
    s.io(nextPacketId_);
}

}  // namespace nord

/**
 * @file
 * NoRD controller implementation.
 */

#include "core/nord_controller.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "ni/network_interface.hh"
#include "router/router.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

NordController::NordController(Router &router, const NocConfig &config,
                               ActivityCounters &counters,
                               NetworkInterface &ni, int wakeupThreshold,
                               int sleepGuard)
    : PgController(router, config, counters),
      ni_(ni),
      threshold_(wakeupThreshold),
      sleepGuard_(sleepGuard),
      window_(static_cast<size_t>(config.nordWakeupWindow), 0)
{
}

void
NordController::requestWakeup(Cycle)
{
    // Decoupling bypass transports the packet instead; no wakeup needed,
    // but the requester still touched the WU wire.
    access::onWrite(this, ChannelKind::kWakeup);
}

void
NordController::declareOwnership(OwnershipDeclarator &d) const
{
    PgController::declareOwnership(d);
    d.reads(&ni_, ChannelKind::kNiObserve);
}

int
NordController::windowSum() const
{
    return windowSum_;
}

void
NordController::pushSample(int count)
{
    windowSum_ += count - window_[windowPos_];
    window_[windowPos_] = count;
    windowPos_ = (windowPos_ + 1) % window_.size();
}

void
NordController::policy(Cycle now)
{
    switch (state_) {
      case PowerState::kOn:
        // The gated-on -> gated-off transition is only complete once the
        // bypass datapath has drained (Section 4.3); do not re-gate while
        // flows are still live there. The sleep guard is asymmetric like
        // the wakeup threshold: power-centric routers gate almost
        // immediately, performance-centric routers linger.
        access::onRead(&ni_, ChannelKind::kNiObserve);
        if (sleepAllowed(now) && ni_.bypassQuiescent() && wasEmpty_ &&
            now - emptySince_ >= static_cast<Cycle>(sleepGuard_)) {
            beginSleep(now);
            // A stale window must not trigger an immediate re-wake.
            std::fill(window_.begin(), window_.end(), 0);
            windowSum_ = 0;
        }
        break;
      case PowerState::kOff:
        access::onRead(&ni_, ChannelKind::kNiObserve);
        pushSample(ni_.vcRequestsThisCycle());
        if (windowSum_ >= threshold_)
            tryBeginWakeup(now);
        break;
      case PowerState::kWakingUp:
        break;
    }
}

void
NordController::serializeState(StateSerializer &s)
{
    PgController::serializeState(s);
    s.section(StateSerializer::tag4("NRDC"));
    s.ioSequence(window_);
    std::uint64_t pos = windowPos_;
    s.io(pos);
    windowPos_ = static_cast<size_t>(pos);
    s.io(windowSum_);
}

void
NordController::deadPolicy(Cycle now)
{
    // Gate off as soon as the datapath and bypass have drained; once off,
    // never wake again. The bypass ring keeps the node reachable.
    access::onRead(&ni_, ChannelKind::kNiObserve);
    if (state_ == PowerState::kOn && sleepAllowed(now) &&
        ni_.bypassQuiescent()) {
        beginSleep(now);
        std::fill(window_.begin(), window_.end(), 0);
        windowSum_ = 0;
    }
}

}  // namespace nord

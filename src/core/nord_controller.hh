/**
 * @file
 * NoRD power-gating controller (Sections 4.3 and 4.4).
 *
 * Under node-router decoupling the router never needs to wake for a single
 * packet: the NI bypass transports traffic while the router sleeps. The
 * controller instead watches the *load* through the NI -- the number of VC
 * requests at the local NI over a sliding window (10 cycles) -- and wakes
 * the router only when that count reaches the router's wakeup threshold.
 * Performance-centric routers get a low threshold (1), power-centric
 * routers a high one (3), implementing asymmetric wakeup thresholds.
 */

#ifndef NORD_CORE_NORD_CONTROLLER_HH
#define NORD_CORE_NORD_CONTROLLER_HH

#include <vector>

#include "common/state_annotations.hh"
#include "powergate/pg_controller.hh"

namespace nord {

class NetworkInterface;

/**
 * NoRD controller: sleep on emptiness, wake on the NI VC-request metric.
 */
class NordController : public PgController
{
  public:
    /**
     * @param wakeupThreshold VC requests within the window that trigger
     *        wakeup (1 = performance-centric, 3 = power-centric)
     */
    NordController(Router &router, const NocConfig &config,
                   ActivityCounters &counters, NetworkInterface &ni,
                   int wakeupThreshold, int sleepGuard);

    /**
     * Neighbors never need to wake a NoRD router (the bypass forwards for
     * them); only the local metric does. Requests are ignored.
     */
    void requestWakeup(Cycle now) override;

    /** The configured wakeup threshold. */
    int wakeupThreshold() const { return threshold_; }

    /** The configured sleep guard (empty cycles before re-gating). */
    int sleepGuard() const { return sleepGuard_; }

    /** Current VC requests summed over the window (for tests). */
    int windowSum() const;

    /** Checkpoint hook: base FSM plus the sliding VC-request window. */
    void serializeState(StateSerializer &s) override;

    /** Shard-safety contract: base plus the NI wakeup-metric reads. */
    void declareOwnership(OwnershipDeclarator &d) const override;

  protected:
    void policy(Cycle now) override;

    /**
     * Fail gated: a dead NoRD router is just a router that can never wake
     * (Section 4.1's reachability argument doubles as fault tolerance).
     * Drain, gate off, and let the bypass ring serve the node forever.
     */
    void deadPolicy(Cycle now) override;

  private:
    /** Shift the sliding window by one cycle with this cycle's count. */
    void pushSample(int count);

    NetworkInterface &ni_;
    NORD_STATE_EXCLUDE(config, "wakeup threshold fixed at construction")
    int threshold_;
    NORD_STATE_EXCLUDE(config, "sleep guard interval fixed at construction")
    int sleepGuard_;
    std::vector<int> window_;  ///< circular buffer of per-cycle counts
    size_t windowPos_ = 0;
    int windowSum_ = 0;
};

}  // namespace nord

#endif  // NORD_CORE_NORD_CONTROLLER_HH

/**
 * @file
 * Abstract workload driving a simulated network.
 *
 * A workload is ticked once per cycle (after routers, before NIs) and may
 * inject packets through the NocSystem. Closed-loop workloads react to
 * packet deliveries (request/reply transactions); open-loop synthetic
 * workloads ignore them.
 */

#ifndef NORD_TRAFFIC_WORKLOAD_HH
#define NORD_TRAFFIC_WORKLOAD_HH

#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"

namespace nord {

class NocSystem;
class StateSerializer;

/**
 * Traffic source interface.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Called once when attached to @p system. */
    virtual void bind(NocSystem &system) { system_ = &system; }

    /** Generate this cycle's traffic. */
    virtual void tick(Cycle now) = 0;

    /**
     * Checkpoint hook: serialize whatever the workload needs to resume
     * bit-exactly (RNG positions, scripts in flight). Stateless workloads
     * keep the default no-op.
     */
    virtual void serializeState(StateSerializer &s) { (void)s; }

    /** A packet's tail flit reached its destination node. */
    virtual void onDelivery(const Flit &tail, Cycle now)
    {
        (void)tail;
        (void)now;
    }

    /** Closed-loop workloads: all scripted work completed. */
    virtual bool done() const { return false; }

  protected:
    NORD_STATE_EXCLUDE(config, "wiring; attached by NocSystem::setWorkload")
    NocSystem *system_ = nullptr;
};

}  // namespace nord

#endif  // NORD_TRAFFIC_WORKLOAD_HH

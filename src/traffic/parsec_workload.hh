/**
 * @file
 * Closed-loop PARSEC-like workload models (Section 5.2 substitution).
 *
 * The paper drives its network from full-system Simics/GEMS runs of the
 * ten PARSEC 2.0 benchmarks. That stack is replaced here by a closed-loop
 * memory-transaction model per core: each core alternates compute gaps
 * and memory transactions (request to an L2 bank or memory controller,
 * reply back), with a bounded number of outstanding misses. Because the
 * loop is closed, network latency feeds back into issue timing, so the
 * measured "execution time" (cycle at which every core finishes its
 * transaction script) degrades with packet latency exactly as in the
 * paper's Figure 12.
 *
 * Per-benchmark parameters are calibrated so the router idleness spectrum
 * matches Section 3.1 (x264 busiest at ~30% idle, blackscholes lightest
 * at ~71% idle, >61% of idle periods at or below the breakeven time).
 */

#ifndef NORD_TRAFFIC_PARSEC_WORKLOAD_HH
#define NORD_TRAFFIC_PARSEC_WORKLOAD_HH

#include <deque>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "traffic/workload.hh"

namespace nord {

/**
 * Tuning knobs of one benchmark model.
 */
struct ParsecParams
{
    std::string name;
    double computeGapMean;   ///< mean cycles between issues in a burst
    int maxOutstanding;      ///< MLP: concurrent outstanding transactions
    double writeFraction;    ///< writes (5-flit request, 1-flit ack)
    double memFraction;      ///< transactions that miss to memory
    double activeMean;       ///< mean cycles of a (barrier-synchronized)
                             ///< active phase in which cores miss
    double quietMean;        ///< mean cycles of the compute-bound quiet
                             ///< phase between active phases
    double noiseRate;        ///< per-core/cycle probability of background
                             ///< traffic (coherence, OS, prefetch) that
                             ///< trickles through even in quiet phases --
                             ///< the intermittent arrivals of Figure 3
    int transactionsPerCore; ///< script length
};

/** The ten PARSEC 2.0 benchmarks used in the paper. */
const std::vector<ParsecParams> &parsecSuite();

/** Look up one benchmark model by name (fatal if unknown). */
const ParsecParams &parsecByName(const std::string &name);

/**
 * Closed-loop request/reply workload.
 *
 * Transactions: a core issues a read (1-flit request, 5-flit data reply)
 * or a write (5-flit data request, 1-flit ack). The home node is an L2
 * bank chosen by address hash; a memFraction of transactions instead go
 * to one of the four corner memory controllers with an extra service
 * latency (Table 1: 128 cycles memory, 6 cycles L2 bank).
 */
class ParsecWorkload : public Workload
{
  public:
    ParsecWorkload(const ParsecParams &params, std::uint64_t seed = 1);

    void bind(NocSystem &system) override;
    void tick(Cycle now) override;
    void onDelivery(const Flit &tail, Cycle now) override;
    bool done() const override;

    /** Transactions completed so far (all cores). */
    std::uint64_t completedTransactions() const { return completed_; }

    /** Total transactions scripted (all cores). */
    std::uint64_t totalTransactions() const { return total_; }

    const ParsecParams &params() const { return params_; }

    /**
     * Checkpoint hook: phase schedule, per-core scripts and RNGs, pending
     * replies and completion tallies.
     */
    void serializeState(StateSerializer &s) override;

  private:
    struct Core
    {
        int remaining = 0;     ///< transactions not yet issued
        int outstanding = 0;   ///< issued, reply not yet received
        Cycle nextIssue = 0;   ///< earliest cycle of the next issue
        Rng rng{1};            ///< private stream: draw order depends only
                               ///< on this core's issue count, so traffic
                               ///< is identical across compared designs
    };

    /** A request that arrived at its home node and awaits service. */
    struct PendingReply
    {
        NodeId home;
        NodeId requester;
        Cycle due;
        bool isWrite;
        bool isNoise = false;
    };

    void issueTransaction(NodeId core, Cycle now);

    NORD_STATE_EXCLUDE(config, "workload shape fixed at construction")
    ParsecParams params_;
    Rng phaseRng_;             ///< phase schedule (identical across runs)
    bool phaseActive_ = false;
    Cycle phaseEnd_ = 0;
    std::vector<Core> cores_;
    std::deque<PendingReply> replies_;  ///< sorted by insertion; due times
                                        ///< checked each tick
    std::uint64_t completed_ = 0;
    std::uint64_t total_ = 0;
    NORD_STATE_EXCLUDE(config, "mesh size fixed at construction")
    int numNodes_ = 0;

    static constexpr Cycle kL2Latency = 6;
    static constexpr Cycle kMemLatency = 128;
    static constexpr std::uint64_t kReplyBit = 1ULL << 63;
    static constexpr std::uint64_t kWriteBit = 1ULL << 62;
    static constexpr std::uint64_t kNoiseBit = 1ULL << 61;

    std::uint64_t noiseOutstanding_ = 0;
    Rng noiseRng_{7777};
};

}  // namespace nord

#endif  // NORD_TRAFFIC_PARSEC_WORKLOAD_HH

/**
 * @file
 * PARSEC-like closed-loop workload implementation.
 *
 * Parameter calibration targets (per Sections 3.1, 3.2 and 6):
 *   - per-node injection between ~0.01 (blackscholes) and ~0.11 (x264)
 *     flits/node/cycle, averaging near the paper's 0.1 flits/cycle router
 *     load figure;
 *   - router idleness between ~30% and ~70%;
 *   - heavily fragmented idle periods (most at or below the 10-cycle
 *     breakeven time).
 */

#include "traffic/parsec_workload.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "network/noc_system.hh"

namespace nord {

const std::vector<ParsecParams> &
parsecSuite()
{
    // gap/mlp set the intra-phase miss rate; active/quiet set the
    // barrier-synchronized phase structure (cores miss together, then
    // compute quietly), producing both the fragmented short idle periods
    // of Figure 3 and the long gating opportunities of Section 3.1.
    static const std::vector<ParsecParams> suite = {
        //  name           gap  mlp  write  mem  active  quiet   noise    txns
        {"blackscholes",   11.0, 6,  0.20, 0.08,  750.0, 1900.0, 0.0008,  700},
        {"bodytrack",      13.0, 6,  0.30, 0.12,  600.0, 1500.0, 0.0010,  700},
        {"canneal",         9.0, 6,  0.40, 0.30,  900.0,  850.0, 0.0012, 1000},
        {"dedup",          10.0, 6,  0.45, 0.18,  900.0,  850.0, 0.0012, 1000},
        {"ferret",         12.0, 6,  0.35, 0.20,  800.0, 1000.0, 0.0010, 1000},
        {"fluidanimate",   14.0, 6,  0.35, 0.12,  750.0, 1800.0, 0.0008,  700},
        {"raytrace",       11.0, 5,  0.25, 0.10,  800.0, 1400.0, 0.0008,  600},
        {"swaptions",      13.0, 5,  0.20, 0.05,  750.0, 1600.0, 0.0006,  500},
        {"vips",            8.0, 6,  0.40, 0.20,  900.0,  700.0, 0.0012, 1000},
        {"x264",            8.0, 8,  0.50, 0.25, 1000.0,  600.0, 0.0015, 1100},
    };
    return suite;
}

const ParsecParams &
parsecByName(const std::string &name)
{
    for (const ParsecParams &p : parsecSuite()) {
        if (p.name == name)
            return p;
    }
    NORD_FATAL("unknown PARSEC benchmark '%s'", name.c_str());
}

ParsecWorkload::ParsecWorkload(const ParsecParams &params,
                               std::uint64_t seed)
    : params_(params), phaseRng_(seed ^ 0x5eedf00dULL)
{
}

void
ParsecWorkload::bind(NocSystem &system)
{
    Workload::bind(system);
    numNodes_ = system.config().numNodes();
    cores_.assign(static_cast<size_t>(numNodes_), Core{});
    total_ = 0;
    std::uint64_t coreSeed = phaseRng_.next64();
    for (auto &core : cores_) {
        core.remaining = params_.transactionsPerCore;
        core.rng = Rng(coreSeed++);
        core.nextIssue = core.rng.uniformInt(16);
        total_ += static_cast<std::uint64_t>(core.remaining);
    }
    phaseActive_ = true;
    phaseEnd_ = 1 + phaseRng_.geometric(params_.activeMean);
}

void
ParsecWorkload::issueTransaction(NodeId core, Cycle now)
{
    Core &c = cores_[core];
    const bool isWrite = c.rng.bernoulli(params_.writeFraction);
    const bool toMemory = c.rng.bernoulli(params_.memFraction);

    NodeId home;
    if (toMemory) {
        // Table 1: four memory controllers, one at each corner. Physical
        // pages are mapped to the nearest controller.
        const auto &mesh = system_->mesh();
        const NodeId corners[4] = {
            0, mesh.nodeAt(0, mesh.cols() - 1),
            mesh.nodeAt(mesh.rows() - 1, 0),
            mesh.nodeAt(mesh.rows() - 1, mesh.cols() - 1)};
        home = corners[0];
        for (NodeId c : corners) {
            if (mesh.manhattan(core, c) < mesh.manhattan(core, home))
                home = c;
        }
    } else if (c.rng.bernoulli(0.75)) {
        // Shared L2 with page-colored locality: most accesses hit a bank
        // near the requester, concentrating traffic spatially so edge
        // routers see long idle stretches (Section 3.1's location-
        // dependent idleness).
        const auto &mesh = system_->mesh();
        std::vector<NodeId> near;
        for (NodeId n = 0; n < numNodes_; ++n) {
            if (mesh.manhattan(core, n) <= 2)
                near.push_back(n);
        }
        home = near[c.rng.uniformInt(near.size())];
    } else {
        // Remaining accesses hash uniformly over all banks.
        home = static_cast<NodeId>(
            c.rng.uniformInt(static_cast<std::uint64_t>(numNodes_)));
    }

    std::uint64_t tag = static_cast<std::uint64_t>(core) |
                        (toMemory ? (1ULL << 32) : 0) |
                        (isWrite ? kWriteBit : 0);
    const int reqLen = isWrite ? 5 : 1;  // write data vs. read request
    system_->inject(core, home, reqLen, tag);

    --c.remaining;
    ++c.outstanding;
    c.nextIssue = now + 1 + c.rng.geometric(params_.computeGapMean);
}

void
ParsecWorkload::tick(Cycle now)
{
    // Service requests that reached their home node.
    for (size_t i = 0; i < replies_.size();) {
        if (replies_[i].due <= now) {
            const PendingReply r = replies_[i];
            replies_[i] = replies_.back();
            replies_.pop_back();
            const int replyLen = r.isWrite ? 1 : 5;  // ack vs. data
            std::uint64_t tag =
                static_cast<std::uint64_t>(r.requester) | kReplyBit |
                (r.isNoise ? kNoiseBit : 0);
            system_->inject(r.home, r.requester, replyLen, tag);
        } else {
            ++i;
        }
    }

    // Barrier-synchronized phase clock.
    if (now >= phaseEnd_) {
        phaseActive_ = !phaseActive_;
        const double mean = phaseActive_ ? params_.activeMean
                                         : params_.quietMean;
        phaseEnd_ = now + 1 + phaseRng_.geometric(mean);
        if (phaseActive_) {
            // Cores resume with a little skew.
            for (auto &core : cores_)
                core.nextIssue = now + core.rng.uniformInt(16);
        }
    }

    // Issue new transactions (only while the phase is active).
    if (phaseActive_) {
        for (NodeId id = 0; id < numNodes_; ++id) {
            Core &c = cores_[id];
            if (c.remaining > 0 &&
                c.outstanding < params_.maxOutstanding &&
                c.nextIssue <= now) {
                issueTransaction(id, now);
            }
        }
    }

    // Background trickle (coherence / OS / prefetch): intermittent
    // single-flit requests that arrive even during quiet phases and
    // fragment router idle periods (Section 3.2, Figure 3).
    bool scriptLive = false;
    for (const Core &c : cores_)
        scriptLive |= c.remaining > 0;
    if (scriptLive && params_.noiseRate > 0.0) {
        for (NodeId id = 0; id < numNodes_; ++id) {
            if (!noiseRng_.bernoulli(params_.noiseRate))
                continue;
            NodeId dst = static_cast<NodeId>(noiseRng_.uniformInt(
                static_cast<std::uint64_t>(numNodes_)));
            std::uint64_t tag =
                static_cast<std::uint64_t>(id) | kNoiseBit;
            system_->inject(id, dst, 1, tag);
            ++noiseOutstanding_;
        }
    }
}

void
ParsecWorkload::onDelivery(const Flit &tail, Cycle now)
{
    if (tail.tag & kNoiseBit) {
        if (tail.tag & kReplyBit) {
            --noiseOutstanding_;
        } else {
            // Serve the noise request with a single-flit reply.
            PendingReply r;
            r.home = tail.dst;
            r.requester = static_cast<NodeId>(tail.tag & 0xffffffffULL);
            r.due = now + kL2Latency;
            r.isWrite = true;  // 1-flit reply
            r.isNoise = true;
            replies_.push_back(r);
        }
        return;
    }
    if (tail.tag & kReplyBit) {
        // Reply back at the requesting core.
        const NodeId core =
            static_cast<NodeId>(tail.tag & 0xffffffffULL);
        NORD_ASSERT(core == tail.dst, "reply delivered to wrong node");
        Core &c = cores_[core];
        NORD_ASSERT(c.outstanding > 0, "reply without outstanding txn");
        --c.outstanding;
        ++completed_;
        return;
    }
    // Request arrived at its home node: schedule the reply.
    const bool toMemory = (tail.tag & (1ULL << 32)) != 0;
    PendingReply r;
    r.home = tail.dst;
    r.requester = static_cast<NodeId>(tail.tag & 0xffffffffULL);
    r.due = now + (toMemory ? kMemLatency : kL2Latency);
    r.isWrite = (tail.tag & kWriteBit) != 0;
    replies_.push_back(r);
}

bool
ParsecWorkload::done() const
{
    if (!replies_.empty() || noiseOutstanding_ > 0)
        return false;
    for (const Core &c : cores_) {
        if (c.remaining > 0 || c.outstanding > 0)
            return false;
    }
    return true;
}

void
ParsecWorkload::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("PSEC"));
    s.io(phaseRng_);
    s.io(phaseActive_);
    s.io(phaseEnd_);
    s.ioSequence(cores_, [&s](Core &c) {
        s.io(c.remaining);
        s.io(c.outstanding);
        s.io(c.nextIssue);
        s.io(c.rng);
    });
    s.ioSequence(replies_, [&s](PendingReply &r) {
        s.io(r.home);
        s.io(r.requester);
        s.io(r.due);
        s.io(r.isWrite);
        s.io(r.isNoise);
    });
    s.io(completed_);
    s.io(total_);
    s.io(noiseOutstanding_);
    s.io(noiseRng_);
}

}  // namespace nord

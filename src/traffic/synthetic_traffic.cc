/**
 * @file
 * Synthetic traffic implementation.
 */

#include "traffic/synthetic_traffic.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "network/noc_system.hh"

namespace nord {

const char *
trafficPatternName(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::kUniformRandom: return "uniform_random";
      case TrafficPattern::kBitComplement: return "bit_complement";
      case TrafficPattern::kTranspose: return "transpose";
      case TrafficPattern::kHotspot: return "hotspot";
    }
    return "?";
}

SyntheticTraffic::SyntheticTraffic(TrafficPattern pattern,
                                   double flitsPerNodeCycle,
                                   std::uint64_t seed, int shortLen,
                                   int longLen, double longFraction)
    : pattern_(pattern), flitRate_(flitsPerNodeCycle), shortLen_(shortLen),
      longLen_(longLen), longFraction_(longFraction),
      rng_(seed, RngStream::kTraffic)
{
}

void
SyntheticTraffic::bind(NocSystem &system)
{
    Workload::bind(system);
    numNodes_ = system.config().numNodes();
    setRate(flitRate_);
}

void
SyntheticTraffic::setRate(double flitsPerNodeCycle)
{
    flitRate_ = flitsPerNodeCycle;
    const double avgLen = longFraction_ * longLen_ +
                          (1.0 - longFraction_) * shortLen_;
    packetRate_ = flitRate_ / avgLen;
    NORD_ASSERT(packetRate_ <= 1.0, "injection rate %.3f too high",
                flitRate_);
}

NodeId
SyntheticTraffic::pickDestination(NodeId src)
{
    const auto &mesh = system_->mesh();
    switch (pattern_) {
      case TrafficPattern::kUniformRandom: {
        NodeId dst = static_cast<NodeId>(
            rng_.uniformInt(static_cast<std::uint64_t>(numNodes_ - 1)));
        if (dst >= src)
            ++dst;  // uniform over all nodes except src
        return dst;
      }
      case TrafficPattern::kBitComplement: {
        // Complement both coordinates: (x, y) -> (X-1-x, Y-1-y).
        const int r = mesh.rows() - 1 - mesh.rowOf(src);
        const int c = mesh.cols() - 1 - mesh.colOf(src);
        return mesh.nodeAt(r, c);
      }
      case TrafficPattern::kTranspose: {
        const int r = mesh.rowOf(src);
        const int c = mesh.colOf(src);
        const int rows = mesh.rows();
        const int cols = mesh.cols();
        // Transpose within the smaller square; off-square nodes mirror.
        return mesh.nodeAt(c % rows, r % cols);
      }
      case TrafficPattern::kHotspot: {
        // 25% of the traffic targets node 0, the rest is uniform.
        if (rng_.bernoulli(0.25) && src != 0)
            return 0;
        NodeId dst = static_cast<NodeId>(
            rng_.uniformInt(static_cast<std::uint64_t>(numNodes_ - 1)));
        if (dst >= src)
            ++dst;
        return dst;
      }
    }
    return 0;
}

void
SyntheticTraffic::tick(Cycle)
{
    for (NodeId src = 0; src < numNodes_; ++src) {
        if (!rng_.bernoulli(packetRate_))
            continue;
        NodeId dst = pickDestination(src);
        if (dst == src)
            continue;
        const int len = rng_.bernoulli(longFraction_) ? longLen_
                                                      : shortLen_;
        system_->inject(src, dst, len);
    }
}

void
SyntheticTraffic::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("SYNT"));
    s.io(rng_);
    s.io(flitRate_);
    s.io(packetRate_);
}

}  // namespace nord

/**
 * @file
 * Open-loop synthetic traffic generators (Section 5.2).
 *
 * Per-node Bernoulli injection processes with bimodal packet lengths:
 * short single-flit packets and long 5-flit packets, assigned uniformly.
 * Destination patterns: uniform random, bit-complement, transpose and
 * hotspot.
 */

#ifndef NORD_TRAFFIC_SYNTHETIC_TRAFFIC_HH
#define NORD_TRAFFIC_SYNTHETIC_TRAFFIC_HH

#include <vector>

#include "common/rng.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "traffic/workload.hh"

namespace nord {

/** Destination selection pattern. */
enum class TrafficPattern
{
    kUniformRandom,
    kBitComplement,
    kTranspose,
    kHotspot,
};

/** Name string for a pattern. */
const char *trafficPatternName(TrafficPattern p);

/**
 * Open-loop injector: each node independently generates packets at a
 * configured flit rate.
 */
class SyntheticTraffic : public Workload
{
  public:
    /**
     * @param pattern destination pattern
     * @param flitsPerNodeCycle injection rate (flits/node/cycle)
     * @param seed RNG seed
     * @param shortLen short packet length (flits)
     * @param longLen long packet length (flits)
     * @param longFraction fraction of packets that are long (0.5 =
     *        "uniformly assigned two lengths")
     */
    SyntheticTraffic(TrafficPattern pattern, double flitsPerNodeCycle,
                     std::uint64_t seed = 1, int shortLen = 1,
                     int longLen = 5, double longFraction = 0.5);

    void bind(NocSystem &system) override;
    void tick(Cycle now) override;

    /** Change the injection rate mid-run (for sweeps). */
    void setRate(double flitsPerNodeCycle);

    double packetsPerNodeCycle() const { return packetRate_; }

    /** Checkpoint hook: RNG position and the (mutable) injection rate. */
    void serializeState(StateSerializer &s) override;

  private:
    NodeId pickDestination(NodeId src);

    NORD_STATE_EXCLUDE(config, "traffic pattern fixed at construction")
    TrafficPattern pattern_;
    double flitRate_;
    double packetRate_ = 0.0;
    NORD_STATE_EXCLUDE(config, "packet geometry fixed at construction")
    int shortLen_;
    NORD_STATE_EXCLUDE(config, "packet geometry fixed at construction")
    int longLen_;
    NORD_STATE_EXCLUDE(config, "packet geometry fixed at construction")
    double longFraction_;
    Rng rng_;
    NORD_STATE_EXCLUDE(config, "mesh size fixed at construction")
    int numNodes_ = 0;
};

}  // namespace nord

#endif  // NORD_TRAFFIC_SYNTHETIC_TRAFFIC_HH

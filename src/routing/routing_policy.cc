/**
 * @file
 * Routing policy implementation.
 */

#include "routing/routing_policy.hh"

#include <algorithm>

#include "common/log.hh"
#include "router/router.hh"

namespace nord {

RoutingPolicy::RoutingPolicy(const NocConfig &config,
                             const MeshTopology &mesh,
                             const BypassRing &ring)
    : config_(config), mesh_(mesh), ring_(ring)
{
}

void
RoutingPolicy::setSteeringTable(std::vector<double> table)
{
    NORD_ASSERT(static_cast<int>(table.size()) ==
                    mesh_.numNodes() * mesh_.numNodes(),
                "steering table has wrong size");
    steer_ = std::move(table);
}

RouteRequest
RoutingPolicy::route(NodeId here, const Flit &head, Direction inPort,
                     const Router &router) const
{
    RouteRequest req;

    if (head.dst == here) {
        req.adaptive.push_back({Direction::kLocal, false});
        req.escapeDir = Direction::kLocal;
        req.mustEscape = head.onEscape;
        return req;
    }

    if (isNord()) {
        const Direction ringOut = ring_.bypassOutport(here);
        req.escapeDir = ringOut;
        req.escapeNonMinimal =
            mesh_.manhattan(ring_.successor(here), head.dst) >=
            mesh_.manhattan(here, head.dst);

        if (head.onEscape) {
            req.mustEscape = true;
            return req;
        }

        // Adaptive candidates over the mixed on/off graph: an output is
        // usable if the downstream router is not gated, or if it is this
        // router's ring successor (entry via its Bypass Inport). With a
        // steering table, candidates are ranked by the worst-case-graph
        // cost through the downstream node, which routes packets via the
        // performance-centric shortcuts of Figure 6; otherwise minimal
        // directions are used with a ring fallback.
        struct Scored
        {
            RouteCandidate cand;
            double score;
        };
        std::vector<Scored> scored;
        const int hereDist = mesh_.manhattan(here, head.dst);
        for (int di = 0; di < kNumMeshDirs; ++di) {
            const Direction d = indexDir(di);
            if (d == inPort)
                continue;  // no U-turns (back out the arrival side)
            const NodeId nb = mesh_.neighbor(here, d);
            if (nb == kInvalidNode)
                continue;
            const bool gated = router.outputGatedView(d);
            if (gated && d != ringOut)
                continue;
            const bool nonMinimal =
                mesh_.manhattan(nb, head.dst) >= hereDist;
            double score;
            if (hasSteering()) {
                // Onward estimate: through a gated neighbor the packet is
                // committed to the worst-case (steering) graph; through a
                // powered-on neighbor it may also find an all-on minimal
                // path, so take the optimistic minimum.
                const double steer = steerCost(nb, head.dst);
                const double allOn = 5.0 * mesh_.manhattan(nb, head.dst);
                score = gated ? (3.0 + steer)
                              : (5.0 + std::min(steer, allOn));
            } else {
                score = nonMinimal ? 1e6 : (gated ? 3.0 : 5.0);
                score += mesh_.manhattan(nb, head.dst);
            }
            scored.push_back({{d, nonMinimal}, score});
        }
        std::stable_sort(scored.begin(), scored.end(),
            [](const Scored &a, const Scored &b) {
                return a.score < b.score;
            });
        const bool capped = head.misroutes >= config_.nordMisrouteCap;
        for (const Scored &sc : scored) {
            // Once the misroute cap is reached only minimal progress may
            // stay on adaptive resources (Section 4.2).
            if (capped && sc.cand.nonMinimal)
                continue;
            // Without steering, a non-minimal hop is only the ring
            // fallback of last resort.
            if (!hasSteering() && sc.cand.nonMinimal &&
                sc.cand.dir != ringOut) {
                continue;
            }
            req.adaptive.push_back(sc.cand);
        }
        if (req.adaptive.empty())
            req.mustEscape = true;
        return req;
    }

    // Conventional designs: minimal adaptive + XY escape. Power state does
    // not restrict candidates (a gated downstream router is simply woken),
    // but powered-on neighbors are preferred to avoid needless wakeups.
    for (Direction d : mesh_.minimalDirections(here, head.dst)) {
        if (d == inPort)
            continue;  // no U-turns
        req.adaptive.push_back({d, false});
    }
    std::stable_sort(req.adaptive.begin(), req.adaptive.end(),
        [&](const RouteCandidate &a, const RouteCandidate &b) {
            return !router.outputGatedView(a.dir) &&
                   router.outputGatedView(b.dir);
        });
    req.escapeDir = mesh_.xyDirection(here, head.dst);
    req.mustEscape = head.onEscape || req.adaptive.empty();
    return req;
}

RouteRequest
RoutingPolicy::routeAtBypass(NodeId here, const Flit &head) const
{
    NORD_ASSERT(isNord(), "bypass routing only exists under NoRD");
    RouteRequest req;
    if (head.dst == here) {
        req.adaptive.push_back({Direction::kLocal, false});
        req.escapeDir = Direction::kLocal;
        return req;
    }
    const Direction ringOut = ring_.bypassOutport(here);
    const bool nonMinimal =
        mesh_.manhattan(ring_.successor(here), head.dst) >=
        mesh_.manhattan(here, head.dst);
    req.escapeDir = ringOut;
    req.escapeNonMinimal = nonMinimal;
    if (head.onEscape ||
        (nonMinimal && head.misroutes >= config_.nordMisrouteCap)) {
        req.mustEscape = true;
    } else {
        req.adaptive.push_back({ringOut, nonMinimal});
    }
    return req;
}

int
RoutingPolicy::escapeVcLevel(NodeId here, Direction dir,
                             const Flit &head) const
{
    if (!isNord())
        return 0;
    int level = head.escLevel;
    if (crossesDateline(here, dir))
        level = 1;
    return level;
}

bool
RoutingPolicy::crossesDateline(NodeId here, Direction dir) const
{
    return isNord() && dir == ring_.bypassOutport(here) &&
           ring_.crossesDateline(here);
}

}  // namespace nord

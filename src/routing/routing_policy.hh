/**
 * @file
 * Routing policies under Duato's Protocol (Section 4.2 / Section 5.1).
 *
 * All four designs use adaptive routing in the adaptive VC class plus a
 * deadlock-free escape class:
 *  - No_PG / Conv_PG / Conv_PG_OPT: minimal adaptive + XY escape;
 *  - NoRD: minimal adaptive over powered-on routers and the Bypass Ring,
 *    with the unidirectional ring as the escape sub-network (two escape
 *    VCs and a dateline break the ring's cyclic dependence).
 */

#ifndef NORD_ROUTING_ROUTING_POLICY_HH
#define NORD_ROUTING_ROUTING_POLICY_HH

#include <vector>

#include "common/flit.hh"
#include "common/types.hh"
#include "network/noc_config.hh"
#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {

class Router;

/** One candidate output direction for a head flit. */
struct RouteCandidate
{
    Direction dir = Direction::kLocal;
    bool nonMinimal = false;  ///< taking it counts as a misroute
};

/** Outcome of routing a head flit at one router. */
struct RouteRequest
{
    /** Adaptive-class candidates, preference-ordered. May be empty. */
    std::vector<RouteCandidate> adaptive;

    /** Escape-class direction (always valid; kLocal when dst == here). */
    Direction escapeDir = Direction::kLocal;

    /** Escape hop is non-minimal (counts as misroute bookkeeping only). */
    bool escapeNonMinimal = false;

    /**
     * The packet must use the escape class at this hop (it is already
     * confined to escape, or adaptive progress is impossible).
     */
    bool mustEscape = false;
};

/**
 * Stateless routing policy; all dynamic inputs (power states) are read
 * through the router at call time so decisions always reflect the current
 * cycle ("pipeline restart from RC" comes for free).
 */
class RoutingPolicy
{
  public:
    RoutingPolicy(const NocConfig &config, const MeshTopology &mesh,
                  const BypassRing &ring);

    /**
     * Install the static steering table for NoRD adaptive routing: the
     * all-pairs distances (cycles) of the worst-case graph in which only
     * the performance-centric routers are powered on. Adaptive candidates
     * are ranked by this cost, steering packets towards the Figure 6
     * shortcut routers without any global power-state knowledge.
     */
    void setSteeringTable(std::vector<double> table);

    /** True once a steering table is installed. */
    bool hasSteering() const { return !steer_.empty(); }

    /**
     * Route a head flit buffered at powered-on router @p here.
     *
     * @param here   the routing router
     * @param head   the head flit (class, misroutes, escape status)
     * @param inPort the input port holding the flit (U-turns forbidden)
     * @param router access to neighbor power states
     */
    RouteRequest route(NodeId here, const Flit &head, Direction inPort,
                       const Router &router) const;

    /**
     * Route a head flit sitting in the NI bypass latch of gated-off router
     * @p here. The only output is the Bypass Outport; the returned request
     * says whether the hop is a misroute and whether escape is forced.
     */
    RouteRequest routeAtBypass(NodeId here, const Flit &head) const;

    /**
     * Escape-VC index (relative to the escape class base) a head must
     * allocate when taking @p dir out of @p here. Implements the ring
     * dateline for NoRD; returns the flit's current level for XY escape.
     */
    int escapeVcLevel(NodeId here, Direction dir, const Flit &head) const;

    /**
     * True when sending @p head from @p here via @p dir crosses the ring
     * dateline (the flit's escLevel must be bumped to 1).
     */
    bool crossesDateline(NodeId here, Direction dir) const;

    const BypassRing &ring() const { return ring_; }
    const MeshTopology &mesh() const { return mesh_; }

  private:
    bool isNord() const { return config_.design == PgDesign::kNord; }

    /** Steering cost from @p from to @p to (worst-case graph). */
    double steerCost(NodeId from, NodeId to) const
    {
        return steer_[static_cast<size_t>(from) * mesh_.numNodes() + to];
    }

    std::vector<double> steer_;
    const NocConfig &config_;
    const MeshTopology &mesh_;
    const BypassRing &ring_;
};

}  // namespace nord

#endif  // NORD_ROUTING_ROUTING_POLICY_HH

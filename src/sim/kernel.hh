/**
 * @file
 * Cycle-driven simulation kernel.
 */

#ifndef NORD_SIM_KERNEL_HH
#define NORD_SIM_KERNEL_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/clocked.hh"

namespace nord {

class AccessTracker;
class StateSerializer;

/**
 * Drives all registered Clocked objects, one pass per cycle, in
 * registration order. Does not own the objects.
 */
class SimKernel
{
  public:
    SimKernel() = default;

    SimKernel(const SimKernel &) = delete;
    SimKernel &operator=(const SimKernel &) = delete;

    /** Register a component; evaluation follows registration order. */
    void add(Clocked *obj);

    /**
     * Attach a cross-component access tracker (verify/access/). Must be
     * set before components are registered so the tracker sees them in
     * kernel order; pass nullptr to detach. The tracker is observational:
     * it never changes evaluation order or timing.
     */
    void setAccessTracker(AccessTracker *tracker);

    /** Current cycle (the cycle being, or about to be, evaluated). */
    Cycle now() const { return now_; }

    /** Advance the simulation by @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Advance until @p done returns true (checked after each cycle) or
     * @p maxCycles have elapsed.
     *
     * @return true if @p done fired, false if the cycle limit was hit.
     */
    bool runUntil(const std::function<bool()> &done, Cycle maxCycles);

    /** Number of registered components. */
    size_t numComponents() const { return objects_.size(); }

    /** Checkpoint hook: the clock is the kernel's only state. */
    void serializeState(StateSerializer &s);

  private:
    void stepOne();

    std::vector<Clocked *> objects_;
    AccessTracker *tracker_ = nullptr;
    Cycle now_ = 0;
};

}  // namespace nord

#endif  // NORD_SIM_KERNEL_HH

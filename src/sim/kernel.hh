/**
 * @file
 * Cycle-driven simulation kernel.
 */

#ifndef NORD_SIM_KERNEL_HH
#define NORD_SIM_KERNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/state_annotations.hh"
#include "common/types.hh"
#include "sim/clocked.hh"

namespace nord {

class AccessTracker;
class StateSerializer;

/**
 * Drives all registered Clocked objects, one pass per cycle, in
 * registration order. Does not own the objects.
 *
 * Idle skipping: the kernel keeps a sorted active list of component
 * slots. After ticking a component that reports quiescent(), the slot is
 * dropped from the list; subsequent cycles cost O(1) for it. Producers
 * re-arm consumers via Clocked::kernelWake(), which tolerates calls in
 * the middle of the current pass: a wake for a slot at or before the
 * cursor lands next cycle (a serial tick this cycle would have been a
 * no-op -- the component was quiescent before the event), a wake for a
 * later slot is ticked this same cycle, exactly as the serial kernel
 * would. Skipping is disabled while an AccessTracker is attached so the
 * ownership audit always sees the full per-cycle walk.
 */
class SimKernel
{
  public:
    SimKernel() = default;

    SimKernel(const SimKernel &) = delete;
    SimKernel &operator=(const SimKernel &) = delete;

    /** Register a component; evaluation follows registration order. */
    void add(Clocked *obj);

    /**
     * Attach a cross-component access tracker (verify/access/). Must be
     * set before components are registered so the tracker sees them in
     * kernel order; pass nullptr to detach. The tracker is observational:
     * it never changes evaluation order or timing.
     */
    void setAccessTracker(AccessTracker *tracker);

    /** Current cycle (the cycle being, or about to be, evaluated). */
    Cycle now() const { return now_; }

    /** Advance the simulation by @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Advance until @p done returns true (checked after each cycle) or
     * @p maxCycles have elapsed.
     *
     * @return true if @p done fired, false if the cycle limit was hit.
     */
    bool runUntil(const std::function<bool()> &done, Cycle maxCycles);

    /** Number of registered components. */
    size_t numComponents() const { return objects_.size(); }

    /**
     * Enable/disable idle-component skipping. Disabling (or enabling)
     * re-activates everything so no pending work is stranded. Skipping
     * is further suppressed while an AccessTracker is attached.
     */
    void setSkipEnabled(bool enabled);
    bool skipEnabled() const { return skipEnabled_; }

    /** Re-activate every registered component (e.g. after a restore). */
    void wakeAll();

    /** True if @p obj is currently on the active list. */
    bool isActive(const Clocked *obj) const;

    // Perf counters (diagnostics only -- deliberately NOT serialized, so
    // skip-on and skip-off kernels stay bit-identical under stateHash()).
    std::uint64_t tickedLastCycle() const { return tickedLast_; }
    std::uint64_t skippedLastCycle() const { return skippedLast_; }
    std::uint64_t tickedTotal() const { return tickedTotal_; }
    std::uint64_t skippedTotal() const { return skippedTotal_; }

    /** Checkpoint hook: the clock is the kernel's only state. */
    void serializeState(StateSerializer &s);

  private:
    friend class Clocked;

    void stepOne();
    void wake(std::size_t slot);
    bool skippingNow() const { return skipEnabled_ && tracker_ == nullptr; }

    NORD_STATE_EXCLUDE(config,
        "component registry; rebuilt by NocSystem::registerAll")
    std::vector<Clocked *> objects_;
    NORD_STATE_EXCLUDE(config,
        "shard-safety instrumentation wired in between runs")
    AccessTracker *tracker_ = nullptr;
    Cycle now_ = 0;

    // Active list: sorted slot indices + per-slot flags. cursor_ indexes
    // activeIdx_ during stepOne so mid-pass wakes can keep iteration
    // valid (an insert at or before the cursor bumps it).
    NORD_STATE_EXCLUDE(cache,
        "derived scheduling state; loadCheckpoint wakes every component")
    std::vector<std::size_t> activeIdx_;
    NORD_STATE_EXCLUDE(cache,
        "per-slot active flags mirroring activeIdx_")
    std::vector<std::uint8_t> active_;
    NORD_STATE_EXCLUDE(cache,
        "mid-pass iteration point; live only inside stepOne")
    std::size_t cursor_ = 0;
    NORD_STATE_EXCLUDE(cache,
        "re-entrancy flag; live only inside stepOne")
    bool inTick_ = false;
    NORD_STATE_EXCLUDE(config,
        "skip-on and skip-off kernels must hash and restore identically")
    bool skipEnabled_ = true;

    NORD_STATE_EXCLUDE(perf_counter,
        "diagnostics; including them would split hashes by skip mode")
    std::uint64_t tickedLast_ = 0;
    NORD_STATE_EXCLUDE(perf_counter,
        "diagnostics; including them would split hashes by skip mode")
    std::uint64_t skippedLast_ = 0;
    NORD_STATE_EXCLUDE(perf_counter,
        "diagnostics; including them would split hashes by skip mode")
    std::uint64_t tickedTotal_ = 0;
    NORD_STATE_EXCLUDE(perf_counter,
        "diagnostics; including them would split hashes by skip mode")
    std::uint64_t skippedTotal_ = 0;
};

}  // namespace nord

#endif  // NORD_SIM_KERNEL_HH

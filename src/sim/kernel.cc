/**
 * @file
 * Simulation kernel implementation.
 */

#include "sim/kernel.hh"

#include <algorithm>

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

void
Clocked::kernelWake()
{
    if (kernel_ != nullptr)
        kernel_->wake(kernelSlot_);
}

void
SimKernel::add(Clocked *obj)
{
    NORD_ASSERT(obj != nullptr, "null component");
    NORD_ASSERT(!inTick_, "component registered mid-cycle");
    obj->kernel_ = this;
    obj->kernelSlot_ = objects_.size();
    objects_.push_back(obj);
    active_.push_back(1);
    activeIdx_.push_back(objects_.size() - 1);
    if (tracker_ != nullptr)
        tracker_->registerComponent(obj);
}

void
SimKernel::setAccessTracker(AccessTracker *tracker)
{
    tracker_ = tracker;
    if (tracker_ != nullptr) {
        for (Clocked *obj : objects_)
            tracker_->registerComponent(obj);
    }
    // Attachment toggles effective skipping either way; make sure no
    // component is stranded off the list with pending work.
    wakeAll();
}

void
SimKernel::setSkipEnabled(bool enabled)
{
    skipEnabled_ = enabled;
    wakeAll();
}

void
SimKernel::wakeAll()
{
    NORD_ASSERT(!inTick_, "wakeAll mid-cycle");
    activeIdx_.resize(objects_.size());
    for (std::size_t i = 0; i < objects_.size(); ++i) {
        activeIdx_[i] = i;
        active_[i] = 1;
    }
}

void
SimKernel::wake(std::size_t slot)
{
    NORD_ASSERT(slot < objects_.size(), "wake of unregistered slot");
    if (active_[slot])
        return;
    active_[slot] = 1;
    auto it = std::lower_bound(activeIdx_.begin(), activeIdx_.end(), slot);
    const auto idx = static_cast<std::size_t>(it - activeIdx_.begin());
    activeIdx_.insert(it, slot);
    // Mid-pass insert at or before the cursor: bump it so the component
    // currently being ticked is not re-visited and later components are
    // not skipped. The woken slot itself runs next cycle -- identical to
    // the serial kernel, where its tick this cycle already happened (as
    // a no-op, since it was quiescent before the waking event).
    if (inTick_ && idx <= cursor_)
        ++cursor_;
}

bool
SimKernel::isActive(const Clocked *obj) const
{
    NORD_ASSERT(obj != nullptr && obj->kernel_ == this,
                "isActive on foreign component");
    return active_[obj->kernelSlot_] != 0;
}

void
SimKernel::stepOne()
{
    if (tracker_ != nullptr) {
        // Audited walk: full pass, no skipping, bracketed per component.
        for (Clocked *obj : objects_) {
            tracker_->beginTick(obj, now_);
            obj->tick(now_);
            tracker_->endTick();
        }
        tickedLast_ = objects_.size();
        skippedLast_ = 0;
        tickedTotal_ += tickedLast_;
    } else if (!skipEnabled_) {
        for (Clocked *obj : objects_)
            obj->tick(now_);
        tickedLast_ = objects_.size();
        skippedLast_ = 0;
        tickedTotal_ += tickedLast_;
    } else {
        inTick_ = true;
        std::uint64_t ticked = 0;
        for (cursor_ = 0; cursor_ < activeIdx_.size();) {
            const std::size_t slot = activeIdx_[cursor_];
            Clocked *obj = objects_[slot];
            obj->tick(now_);
            ++ticked;
            if (obj->quiescent()) {
                // Lazy deactivation: drop the slot now that its tick is
                // committed. erase() keeps the list sorted.
                active_[slot] = 0;
                activeIdx_.erase(activeIdx_.begin() +
                                 static_cast<std::ptrdiff_t>(cursor_));
            } else {
                ++cursor_;
            }
        }
        inTick_ = false;
        tickedLast_ = ticked;
        skippedLast_ = objects_.size() - ticked;
        tickedTotal_ += tickedLast_;
        skippedTotal_ += skippedLast_;
    }
    ++now_;
}

void
SimKernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        stepOne();
}

void
SimKernel::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("KERN"));
    s.io(now_);
    // Every other member carries a NORD_STATE_EXCLUDE annotation in
    // kernel.hh; nord-statecheck enforces that the two stay in sync.
}

bool
SimKernel::runUntil(const std::function<bool()> &done, Cycle maxCycles)
{
    for (Cycle i = 0; i < maxCycles; ++i) {
        stepOne();
        if (done())
            return true;
    }
    return done();
}

}  // namespace nord

/**
 * @file
 * Simulation kernel implementation.
 */

#include "sim/kernel.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

void
SimKernel::add(Clocked *obj)
{
    NORD_ASSERT(obj != nullptr, "null component");
    objects_.push_back(obj);
    if (tracker_ != nullptr)
        tracker_->registerComponent(obj);
}

void
SimKernel::setAccessTracker(AccessTracker *tracker)
{
    tracker_ = tracker;
    if (tracker_ != nullptr) {
        for (Clocked *obj : objects_)
            tracker_->registerComponent(obj);
    }
}

void
SimKernel::stepOne()
{
    if (tracker_ != nullptr) {
        for (Clocked *obj : objects_) {
            tracker_->beginTick(obj, now_);
            obj->tick(now_);
            tracker_->endTick();
        }
    } else {
        for (Clocked *obj : objects_)
            obj->tick(now_);
    }
    ++now_;
}

void
SimKernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        stepOne();
}

void
SimKernel::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("KERN"));
    s.io(now_);
}

bool
SimKernel::runUntil(const std::function<bool()> &done, Cycle maxCycles)
{
    for (Cycle i = 0; i < maxCycles; ++i) {
        stepOne();
        if (done())
            return true;
    }
    return done();
}

}  // namespace nord

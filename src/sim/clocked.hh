/**
 * @file
 * Interface for objects driven by the cycle-based simulation kernel.
 */

#ifndef NORD_SIM_CLOCKED_HH
#define NORD_SIM_CLOCKED_HH

#include <cstddef>
#include <string>

#include "common/state_annotations.hh"
#include "common/types.hh"

namespace nord {

class OwnershipDeclarator;
class SimKernel;

/**
 * A component evaluated once per cycle.
 *
 * The kernel calls tick() on all registered objects in registration order;
 * the network assembles components in dataflow order (links, routers, NIs,
 * power-gating controllers, statistics) so that one pass per cycle gives
 * correct pipelined behavior.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Evaluate this component for cycle @p now. */
    virtual void tick(Cycle now) = 0;

    /** Component name for diagnostics. */
    virtual std::string name() const = 0;

    /**
     * Declare the state domain this component owns and the channels it
     * uses to touch other components (see verify/access/). The default
     * declares nothing: fine for self-contained components (test probes),
     * required reading for anything that participates in the network
     * dataflow -- undeclared cross-component writes fail the shard-safety
     * audit.
     */
    virtual void declareOwnership(OwnershipDeclarator &) const {}

    /**
     * True when ticking this component right now would be a provable
     * no-op: no buffered work, no pending protocol obligations, nothing
     * that advances on an empty cycle. A quiescent component may be
     * dropped from the kernel's active list after a tick; any external
     * event that could give it work again MUST call kernelWake() (the
     * producers do: links wake on push, routers wake on flit/local
     * injection, power transitions wake the router and its neighbors).
     * The default is "never quiescent" so components that predate the
     * skip list keep their per-cycle tick unchanged.
     */
    virtual bool quiescent() const { return false; }

    /**
     * Coarse component kind for per-subsystem perf attribution
     * ("router", "ni", "link", "controller", "other").
     */
    virtual const char *kindName() const { return "other"; }

    /**
     * Re-arm this component in its kernel's active list. Safe to call at
     * any time (including mid-cycle from another component's tick, and on
     * a component never registered with a kernel); idempotent when
     * already active. Defined in kernel.cc.
     */
    void kernelWake();

  private:
    friend class SimKernel;

    // Back-pointer + slot bound by SimKernel::add().
    NORD_STATE_EXCLUDE(config,
        "re-established on construction, identical across save/load")
    SimKernel *kernel_ = nullptr;
    NORD_STATE_EXCLUDE(config,
        "re-established on construction, identical across save/load")
    std::size_t kernelSlot_ = 0;
};

}  // namespace nord

#endif  // NORD_SIM_CLOCKED_HH

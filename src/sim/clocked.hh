/**
 * @file
 * Interface for objects driven by the cycle-based simulation kernel.
 */

#ifndef NORD_SIM_CLOCKED_HH
#define NORD_SIM_CLOCKED_HH

#include <string>

#include "common/types.hh"

namespace nord {

class OwnershipDeclarator;

/**
 * A component evaluated once per cycle.
 *
 * The kernel calls tick() on all registered objects in registration order;
 * the network assembles components in dataflow order (links, routers, NIs,
 * power-gating controllers, statistics) so that one pass per cycle gives
 * correct pipelined behavior.
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Evaluate this component for cycle @p now. */
    virtual void tick(Cycle now) = 0;

    /** Component name for diagnostics. */
    virtual std::string name() const = 0;

    /**
     * Declare the state domain this component owns and the channels it
     * uses to touch other components (see verify/access/). The default
     * declares nothing: fine for self-contained components (test probes),
     * required reading for anything that participates in the network
     * dataflow -- undeclared cross-component writes fail the shard-safety
     * audit.
     */
    virtual void declareOwnership(OwnershipDeclarator &) const {}
};

}  // namespace nord

#endif  // NORD_SIM_CLOCKED_HH

/**
 * @file
 * Unidirectional flit and credit links.
 *
 * A link is a fixed-latency delay line: the sender pushes a payload with a
 * due cycle, and during the network's delivery phase the link hands every
 * due payload to its sink. Flit links point at a router input port (which
 * may redirect into the NI bypass latch when the router is gated off);
 * credit links point back at the upstream router's output port.
 */

#ifndef NORD_NETWORK_LINK_HH
#define NORD_NETWORK_LINK_HH

#include <functional>
#include <string>

#include "common/arena.hh"
#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "sim/clocked.hh"

namespace nord {

class Router;
class StateSerializer;

/**
 * Delay line carrying flits from an upstream router/NI to a downstream
 * router input port.
 */
class FlitLink : public Clocked
{
  public:
    /**
     * @param dst downstream router
     * @param inPort input port of @p dst this link feeds
     * @param arena optional pool for the in-flight queue (null = heap)
     */
    FlitLink(Router *dst, Direction inPort, PoolArena *arena = nullptr);

    /** Schedule @p flit for delivery at cycle @p due (wakes the link). */
    void push(const Flit &flit, Cycle due);

    /** Deliver all due flits into the downstream router. */
    void tick(Cycle now) override;

    /** An empty delay line has nothing to deliver. */
    bool quiescent() const override { return queue_.empty(); }

    const char *kindName() const override { return "link"; }

    /** True when no flit is in flight. */
    bool empty() const { return queue_.empty(); }

    /** Number of in-flight flits. */
    size_t inFlight() const { return queue_.size(); }

    /** Total flit traversals since construction (for link energy). */
    std::uint64_t traversals() const { return traversals_; }

    // --- Introspection (InvariantAuditor) ---------------------------------
    /** Downstream router this link feeds. */
    const Router *dst() const { return dst_; }

    /** Input port of the downstream router this link feeds. */
    Direction inPort() const { return inPort_; }

    /** Number of in-flight flits currently travelling on VC @p vc. */
    int inFlightForVc(VcId vc) const;

    /** Visit every in-flight flit (oldest first). */
    void forEachInFlight(const std::function<void(const Flit &)> &fn) const;

    /**
     * Fault injection (testing only): silently drop the oldest in-flight
     * flit, as a buggy link or router would. Returns false when empty.
     *
     * Note this physically removes the flit, breaking conservation -- it
     * exists to prove the auditor detects such bugs. Modeled transient
     * faults use injectTransientFault() instead, which keeps the phit in
     * flight so flow control stays coherent.
     */
    bool injectFlitDrop();

    /**
     * Transient link fault on the oldest in-flight flit. The phit still
     * arrives (wormhole flow control and conservation stay intact) but its
     * content is damaged: with @p destroyFraming the receiving NI cannot
     * parse it and discards it silently (timeout recovery); otherwise
     * @p xorMask is XORed into the payload so the checksum fails at the
     * receiver (NACK / fast-retransmit recovery). Returns false when the
     * link is empty.
     */
    bool injectTransientFault(bool destroyFraming, std::uint64_t xorMask);

    /** Checkpoint hook: in-flight flits and the traversal counter. */
    void serializeState(StateSerializer &s);

    /** Shard-safety contract: delay line feeding one router input port. */
    void declareOwnership(OwnershipDeclarator &d) const override;

    std::string name() const override;

  private:
    struct Entry
    {
        Flit flit;
        Cycle due;
    };

    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildLinks")
    Router *dst_;
    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildLinks")
    Direction inPort_;
    ArenaDeque<Entry> queue_;
    std::uint64_t traversals_ = 0;
};

/**
 * Delay line carrying credits from a downstream input port back to the
 * upstream router's output port.
 */
class CreditLink : public Clocked
{
  public:
    /**
     * @param dst upstream router receiving the credits
     * @param outPort output port of @p dst the credits replenish
     * @param arena optional pool for the in-flight queue (null = heap)
     */
    CreditLink(Router *dst, Direction outPort, PoolArena *arena = nullptr);

    /** Schedule a credit for VC @p vc at cycle @p due (wakes the link). */
    void push(VcId vc, Cycle due);

    /** Deliver all due credits to the upstream router. */
    void tick(Cycle now) override;

    /** An empty delay line has nothing to deliver. */
    bool quiescent() const override { return queue_.empty(); }

    const char *kindName() const override { return "link"; }

    /** True when no credit is in flight. */
    bool empty() const { return queue_.empty(); }

    // --- Introspection (InvariantAuditor) ---------------------------------
    /** Upstream router receiving these credits. */
    const Router *dst() const { return dst_; }

    /** Output port of the upstream router the credits replenish. */
    Direction outPort() const { return outPort_; }

    /** Number of in-flight credits for VC @p vc. */
    int inFlightForVc(VcId vc) const;

    /** Checkpoint hook: in-flight credits. */
    void serializeState(StateSerializer &s);

    /** Shard-safety contract: delay line feeding one output port. */
    void declareOwnership(OwnershipDeclarator &d) const override;

    std::string name() const override;

  private:
    struct Entry
    {
        VcId vc;
        Cycle due;
    };

    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildLinks")
    Router *dst_;
    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildLinks")
    Direction outPort_;
    ArenaDeque<Entry> queue_;
};

}  // namespace nord

#endif  // NORD_NETWORK_LINK_HH

/**
 * @file
 * Configuration for a NoRD network instance.
 *
 * Defaults reproduce Table 1 of the paper: 4x4 mesh, 4-stage 3 GHz routers,
 * 4 VCs per class, 5-flit input buffers, 128-bit links, 12-cycle wakeup
 * latency, breakeven time of 10 cycles.
 */

#ifndef NORD_NETWORK_NOC_CONFIG_HH
#define NORD_NETWORK_NOC_CONFIG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "fault/fault_config.hh"

namespace nord {

/**
 * What the auditor does when a kernel-driven sweep finds new violations.
 */
enum class AuditPolicy : std::int8_t
{
    /** Dump state and panic on the first unexpected violation. */
    kAbort,
    /** Print a diagnosis and keep running; violations accumulate. */
    kDiagnose,
    /**
     * Like kDiagnose, but additionally repair what can be repaired (e.g.
     * restore credits leaked by an injected fault) and treat violations
     * announced by the fault injector as expected, so campaigns measure
     * recovery instead of dying on the first transient.
     */
    kRecover,
};

/** Name string for an audit policy. */
const char *auditPolicyName(AuditPolicy p);

/**
 * Runtime invariant-audit settings (see src/verify/).
 *
 * The InvariantAuditor sweeps the whole network checking flit/credit
 * conservation, VC state-machine legality, power-gating handshake safety
 * and liveness. It is off by default (interval = 0) so benches pay only a
 * single branch per cycle; tests enable it with interval = 1.
 */
struct VerifyConfig
{
    /**
     * Sweep period in cycles; 0 disables the auditor entirely. With the
     * auditor enabled the liveness watchdog runs every cycle regardless of
     * the sweep period.
     */
    Cycle interval = 0;

    /** Also sweep immediately on every router power-state transition. */
    bool sweepOnTransition = true;

    /**
     * Reaction to violations found by kernel-driven sweeps: abort (dump
     * state + panic, the default), diagnose (print + accumulate, used by
     * fault-injection tests), or recover (repair + tolerate expected
     * fault transients, used by fault campaigns).
     */
    AuditPolicy policy = AuditPolicy::kAbort;

    /**
     * Liveness watchdog: cycles without any network-wide forward progress
     * (while flits are in flight) before declaring deadlock.
     */
    Cycle stallThreshold = 20000;

    /**
     * Liveness watchdog: maximum age (cycles since injection) of any
     * in-network flit before declaring livelock. Catches packets that keep
     * moving without delivering, e.g. lapping the bypass ring forever.
     */
    Cycle maxFlitAge = 50000;

    /**
     * Record every cross-component access into an AccessTracker (see
     * verify/access/): the shard-safety analysis behind the planned
     * parallel kernel. Observational only -- the tracker never perturbs
     * simulation state and is excluded from checkpoints and the config
     * fingerprint, so tracked and untracked runs are bit-identical and
     * checkpoint-compatible.
     */
    bool trackAccess = false;
};

/**
 * Performance knobs (see bench/perf_* and DESIGN.md section 5.11).
 *
 * Both are semantics-preserving: tests/test_perf_invariance.cc proves
 * per-cycle stateHash() bit-identity across every setting, and neither
 * enters the config fingerprint, so checkpoints move freely between
 * perf configurations.
 */
struct PerfConfig
{
    /**
     * Idle-component event skipping: quiescent routers/links drop off the
     * kernel's active list and advance in O(1) until a producer wakes
     * them (Clocked::kernelWake). Ignored while an AccessTracker is
     * attached.
     */
    bool skipIdle = true;

    /**
     * Pool-arena allocation for flit/packet buffers (src/common/arena.hh)
     * instead of per-flit heap churn. Off = plain operator new/delete
     * through the same allocator type.
     */
    bool arena = true;
};

/**
 * All tunables of one simulated network.
 *
 * Plain aggregate so experiments can brace-initialize or tweak fields
 * directly; validate() catches inconsistent settings.
 */
struct NocConfig
{
    // --- Topology -------------------------------------------------------
    int rows = 4;                 ///< mesh rows
    int cols = 4;                 ///< mesh columns

    // --- Router microarchitecture (Table 1) ------------------------------
    /**
     * VCs per input port. The first numEscapeVcs are the escape class
     * (Duato's Protocol); the rest are fully adaptive.
     */
    int numVcs = 4;
    int numEscapeVcs = 2;         ///< escape VCs (ring or XY sub-network)
    int bufferDepth = 5;          ///< flits per VC buffer

    // --- Power-gating design --------------------------------------------
    PgDesign design = PgDesign::kNord;

    /** Wakeup (Vdd ramp) latency in cycles: 4 ns at 3 GHz = 12. */
    int wakeupLatency = 12;

    /** Breakeven time in cycles (Section 2.2). */
    int betCycles = 10;

    /**
     * Conv_PG_OPT: cycles of consecutive emptiness required before gating.
     * Early wakeup lets the router skip gating for idle periods shorter
     * than ~4 cycles (Section 6.2).
     */
    int convOptSleepGuard = 4;

    /**
     * Conv_PG_OPT: how many cycles before the SA stall point the early
     * wakeup signal fires (3 for a 4-stage pipeline, Section 3.3).
     */
    int earlyWakeupHide = 3;

    // --- NoRD parameters --------------------------------------------------
    /** VC-request window for the wakeup metric (Section 4.3). */
    int nordWakeupWindow = 10;

    /** Wakeup threshold for performance-centric routers (Section 6.1). */
    int nordPerfThreshold = 1;

    /**
     * Wakeup threshold for power-centric routers. The paper selects 3
     * with its event-based VC-request counting; our NI counts every
     * waiting head every cycle (a stalled head re-asserts its request
     * line), which accumulates faster, so the equivalent operating point
     * is 2. Figure 7's bench sweeps this knob.
     */
    int nordPowerThreshold = 2;

    /**
     * Number of performance-centric routers. Negative means "use the
     * Floyd-Warshall knee" (6 for the paper's 4x4 mesh).
     */
    int nordPerfCentricCount = -1;

    /** Misrouted hops allowed before forcing escape VCs (Section 4.2). */
    int nordMisrouteCap = 4;

    /**
     * Consecutive empty cycles before a power-centric NoRD router
     * re-gates. Small (well below the breakeven time): NoRD's decoupling
     * bypass lets these routers exploit even sub-BET idle periods
     * (Section 4.5), while a few cycles of hold-off avoid re-gating
     * between the flits of one burst.
     */
    int nordPowerSleepGuard = 6;

    /**
     * Consecutive empty cycles before a performance-centric NoRD router
     * re-gates. Large: the complement of the low wakeup threshold --
     * wake early, sleep late -- keeps the Figure 6 shortcut routers
     * available through a traffic phase.
     */
    int nordPerfSleepGuard = 64;

    /**
     * NI starvation limit: bypass traffic yields to the local node after
     * this many consecutive unserved cycles (Section 4.2).
     */
    int niStarvationLimit = 8;

    /**
     * Aggressive bypass (Section 6.8): when the latch, the staging
     * register and the local injection path are all free, a flit cuts
     * from the Bypass Inport to the Bypass Outport in a single cycle,
     * "optimistically assuming there is no local flit to inject"; any
     * conflict falls back to the 2-cycle bypass pipeline.
     */
    bool nordAggressiveBypass = false;

    // --- Generic routing --------------------------------------------------
    /**
     * Adaptive heads that fail VC allocation this many consecutive cycles
     * request an escape VC as well (guarantees Duato forward progress).
     */
    int escapeAfterBlockedCycles = 8;

    // --- Simulation -------------------------------------------------------
    std::uint64_t seed = 1;
    Cycle statsWarmup = 0;        ///< packets created before this are not
                                  ///< counted in latency statistics

    // --- Verification ------------------------------------------------------
    VerifyConfig verify;          ///< runtime invariant-audit settings

    // --- Fault campaign ----------------------------------------------------
    FaultConfig fault;            ///< fault injection + resilience layer

    // --- Performance -------------------------------------------------------
    /**
     * Non-semantic perf settings; excluded from configFingerprint() (a
     * checkpoint taken with skipping/arena on restores fine with them
     * off, and vice versa).
     */
    PerfConfig perf;

    // --- Derived helpers --------------------------------------------------
    int numNodes() const { return rows * cols; }

    /** Class of VC index @p vc. */
    VcClass vcClassOf(VcId vc) const
    {
        return vc < numEscapeVcs ? VcClass::kEscape : VcClass::kAdaptive;
    }

    /** First VC index of @p c. */
    VcId firstVcOf(VcClass c) const
    {
        return c == VcClass::kEscape ? 0 : numEscapeVcs;
    }

    /** Number of VCs in class @p c. */
    int numVcsOf(VcClass c) const
    {
        return c == VcClass::kEscape ? numEscapeVcs
                                     : numVcs - numEscapeVcs;
    }

    /** True when this design power-gates routers at all. */
    bool gatingEnabled() const { return design != PgDesign::kNoPg; }

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;
};

}  // namespace nord

#endif  // NORD_NETWORK_NOC_CONFIG_HH

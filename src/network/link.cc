/**
 * @file
 * Flit and credit link implementation.
 */

#include "network/link.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "router/router.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

FlitLink::FlitLink(Router *dst, Direction inPort, PoolArena *arena)
    : dst_(dst), inPort_(inPort), queue_(ArenaAllocator<Entry>(arena))
{
    NORD_ASSERT(dst != nullptr, "flit link without a sink");
}

void
FlitLink::push(const Flit &flit, Cycle due)
{
    access::onWrite(this, ChannelKind::kFlitPush);
    // A link is one flit wide: serialize in push order. This also keeps
    // FIFO when a fast bypass re-injection follows a slower pipeline
    // traversal onto the same wire around a power-state transition.
    if (!queue_.empty() && queue_.back().due >= due)
        due = queue_.back().due + 1;
    queue_.push_back({flit, due});
    ++traversals_;
    kernelWake();
}

void
FlitLink::tick(Cycle now)
{
    while (!queue_.empty() && queue_.front().due <= now) {
        dst_->acceptFlit(inPort_, queue_.front().flit, now);
        queue_.pop_front();
    }
}

int
FlitLink::inFlightForVc(VcId vc) const
{
    int count = 0;
    for (const Entry &e : queue_) {
        if (e.flit.vc == vc)
            ++count;
    }
    return count;
}

void
FlitLink::forEachInFlight(const std::function<void(const Flit &)> &fn) const
{
    for (const Entry &e : queue_)
        fn(e.flit);
}

bool
FlitLink::injectFlitDrop()
{
    access::onWrite(this, ChannelKind::kFault);
    if (queue_.empty())
        return false;
    queue_.pop_front();
    return true;
}

bool
FlitLink::injectTransientFault(bool destroyFraming, std::uint64_t xorMask)
{
    access::onWrite(this, ChannelKind::kFault);
    if (queue_.empty())
        return false;
    Flit &f = queue_.front().flit;
    if (destroyFraming) {
        f.faultFlags |= kFaultDropped;
    } else {
        // Any non-zero mask flips at least one checksum bit, since the
        // checksum is a plain XOR fold of the payload.
        f.payload ^= (xorMask != 0 ? xorMask : 1);
    }
    return true;
}

void
FlitLink::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("FLNK"));
    s.ioSequence(queue_, [&s](Entry &e) {
        s.io(e.flit);
        s.io(e.due);
    });
    s.io(traversals_);
}

void
FlitLink::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("in-flight flit delay line");
    d.writes(dst_, ChannelKind::kFlitDeliver, Visibility::kSameCycle);
}

std::string
FlitLink::name() const
{
    return "flink->" + std::to_string(dst_->id()) + dirName(inPort_);
}

CreditLink::CreditLink(Router *dst, Direction outPort, PoolArena *arena)
    : dst_(dst), outPort_(outPort), queue_(ArenaAllocator<Entry>(arena))
{
    NORD_ASSERT(dst != nullptr, "credit link without a sink");
}

void
CreditLink::push(VcId vc, Cycle due)
{
    access::onWrite(this, ChannelKind::kCreditPush);
    NORD_ASSERT(queue_.empty() || queue_.back().due <= due,
                "credit link reordering");
    queue_.push_back({vc, due});
    kernelWake();
}

void
CreditLink::tick(Cycle now)
{
    while (!queue_.empty() && queue_.front().due <= now) {
        dst_->acceptCredit(outPort_, queue_.front().vc, now);
        queue_.pop_front();
    }
}

int
CreditLink::inFlightForVc(VcId vc) const
{
    int count = 0;
    for (const Entry &e : queue_) {
        if (e.vc == vc)
            ++count;
    }
    return count;
}

void
CreditLink::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("CLNK"));
    s.ioSequence(queue_, [&s](Entry &e) {
        s.io(e.vc);
        s.io(e.due);
    });
}

void
CreditLink::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("in-flight credit delay line");
    d.writes(dst_, ChannelKind::kCreditDeliver, Visibility::kSameCycle);
}

std::string
CreditLink::name() const
{
    return "clink->" + std::to_string(dst_->id()) + dirName(outPort_);
}

}  // namespace nord

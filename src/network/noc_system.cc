/**
 * @file
 * Network assembly and run loop.
 */

#include "network/noc_system.hh"

#include <algorithm>
#include <cstdio>

#include "ckpt/checkpoint.hh"
#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "core/nord_controller.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

NocSystem::NocSystem(const NocConfig &config)
    : config_(config),
      mesh_(config.rows, config.cols),
      ring_(mesh_),
      stats_(config.numNodes(), config.statsWarmup),
      policy_(config_, mesh_, ring_),
      ticker_(*this)
{
    config_.validate();
    buildRouters();
    buildLinks();
    buildControllers();
    auditor_ = std::make_unique<InvariantAuditor>(*this, config_.verify);
    auditor_->setRecoveryTarget(this);
    if (config_.fault.enabled) {
        injector_ = std::make_unique<FaultInjector>(*this, config_);
        injector_->setAuditor(auditor_.get());
    }
    // Every power transition re-arms the transitioning router and its
    // mesh neighbors in the kernel's active list (their next tick adjusts
    // credit views / restarts heads -- see Router::quiescent), and, when
    // the auditor sweeps on transitions, fires that sweep.
    const bool sweep =
        auditor_->enabled() && config_.verify.sweepOnTransition;
    for (NodeId id = 0; id < config_.numNodes(); ++id) {
        Router *r = routers_[id].get();
        controllers_[id]->setTransitionListener(
            [this, r, sweep](Cycle now, PowerState from, PowerState to) {
                r->kernelWake();
                for (int d = 0; d < kNumMeshDirs; ++d) {
                    const NodeId nb = mesh_.neighbor(r->id(), indexDir(d));
                    if (nb != kInvalidNode)
                        routers_[nb]->kernelWake();
                }
                if (sweep) {
                    // A transition-triggered sweep reads (and under
                    // kRecover repairs) arbitrary components; attribute
                    // those accesses to the wildcard auditor, not to the
                    // controller whose transition fired the sweep.
                    access::onWrite(auditor_.get(), ChannelKind::kAudit);
                    access::Handoff handoff(auditor_.get());
                    auditor_->onPowerTransition(now, from, to);
                }
            });
    }
    kernel_.setSkipEnabled(config_.perf.skipIdle);
    if (config_.verify.trackAccess) {
        accessTracker_ = std::make_unique<AccessTracker>();
        kernel_.setAccessTracker(accessTracker_.get());
    }
    registerAll();
    if (accessTracker_) {
        accessTracker_->collectDeclarations();
        // System-level channels the components cannot name themselves:
        // the workload ticker injects into any NI (delivery-triggered
        // injections make the ordering root-dependent, hence kAny), NIs
        // report deliveries back to the ticker's workload, and any
        // controller transition may fire an auditor sweep.
        for (auto &ni : nis_) {
            accessTracker_->declareChannel(&ticker_, ni.get(),
                                           ChannelKind::kInjection,
                                           AccessMode::kWrite,
                                           Visibility::kAny);
            accessTracker_->declareChannel(ni.get(), &ticker_,
                                           ChannelKind::kDelivery,
                                           AccessMode::kWrite,
                                           Visibility::kNextCycle);
        }
        for (auto &c : controllers_) {
            accessTracker_->declareChannel(c.get(), auditor_.get(),
                                           ChannelKind::kAudit,
                                           AccessMode::kWrite,
                                           Visibility::kAny);
        }
    }
}

NocSystem::~NocSystem() = default;

void
NocSystem::WorkloadTicker::declareOwnership(OwnershipDeclarator &d) const
{
    // Injection into NIs and the delivery channel back are declared by
    // NocSystem via declareChannel (the ticker cannot name the NIs here).
    d.owns("attached workload state and cursor");
}

void
NocSystem::buildRouters()
{
    const int n = config_.numNodes();
    routers_.reserve(n);
    nis_.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
        routers_.push_back(std::make_unique<Router>(
            id, config_, mesh_, ring_, stats_, perfArena()));
        nis_.push_back(std::make_unique<NetworkInterface>(
            id, config_, stats_, perfArena()));
    }
    for (NodeId id = 0; id < n; ++id) {
        routers_[id]->setNi(nis_[id].get());
        routers_[id]->setRoutingPolicy(&policy_);
        nis_[id]->setRouter(routers_[id].get());
        nis_[id]->setPolicy(&policy_);
        nis_[id]->setDeliveryCallback(
            [this](const Flit &tail, Cycle now) {
                if (workload_) {
                    // The workload runs in the ticker's domain; a
                    // closed-loop reaction (e.g. an immediate reply
                    // injection) must not be attributed to the
                    // delivering NI.
                    access::onWrite(&ticker_, ChannelKind::kDelivery);
                    access::Handoff handoff(&ticker_);
                    workload_->onDelivery(tail, now);
                }
            });
    }
}

void
NocSystem::buildLinks()
{
    const int n = config_.numNodes();
    for (NodeId id = 0; id < n; ++id) {
        for (int d = 0; d < kNumMeshDirs; ++d) {
            const Direction dir = indexDir(d);
            const NodeId nb = mesh_.neighbor(id, dir);
            if (nb == kInvalidNode)
                continue;
            // Flit link: router id, output dir -> router nb, input port
            // opposite(dir). Credit link: flows back to id's output dir.
            auto flink = std::make_unique<FlitLink>(
                routers_[nb].get(), opposite(dir), perfArena());
            auto clink = std::make_unique<CreditLink>(
                routers_[id].get(), dir, perfArena());
            routers_[id]->connectOutput(dir, routers_[nb].get(),
                                        flink.get());
            routers_[nb]->connectInput(opposite(dir), flink.get());
            routers_[nb]->connectCreditReturn(opposite(dir), clink.get());
            flitLinks_.push_back(std::move(flink));
            creditLinks_.push_back(std::move(clink));
        }
    }
}

void
NocSystem::buildControllers()
{
    const int n = config_.numNodes();
    if (config_.design == PgDesign::kNord) {
        // The greedy Floyd-Warshall sweep is deterministic per mesh
        // shape; the process-wide CriticalityCache shares it across
        // NocSystem instances (benches construct many networks).
        CriticalityCache &cache = CriticalityCache::instance();
        int count = config_.nordPerfCentricCount;
        if (count < 0)
            count = cache.knee(mesh_, ring_);
        perfCentric_ = cache.perfSet(mesh_, ring_, count);
        policy_.setSteeringTable(
            cache.steering(mesh_, ring_, perfCentric_));
    }
    controllers_.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
        Router &r = *routers_[id];
        ActivityCounters &c = stats_.router(id);
        switch (config_.design) {
          case PgDesign::kNoPg:
            controllers_.push_back(
                std::make_unique<NoPgController>(r, config_, c));
            break;
          case PgDesign::kConvPg:
            controllers_.push_back(
                std::make_unique<ConvPgController>(r, config_, c, 0));
            break;
          case PgDesign::kConvPgOpt:
            controllers_.push_back(std::make_unique<ConvPgController>(
                r, config_, c, config_.convOptSleepGuard));
            break;
          case PgDesign::kNord: {
            const bool perf =
                std::find(perfCentric_.begin(), perfCentric_.end(), id) !=
                perfCentric_.end();
            const int threshold = perf ? config_.nordPerfThreshold
                                       : config_.nordPowerThreshold;
            const int guard = perf ? config_.nordPerfSleepGuard
                                   : config_.nordPowerSleepGuard;
            controllers_.push_back(std::make_unique<NordController>(
                r, config_, c, *nis_[id], threshold, guard));
            break;
          }
        }
        routers_[id]->setController(controllers_.back().get());
    }
}

void
NocSystem::registerAll()
{
    // Per-cycle evaluation order: inject faults (so the glitched state is
    // what this cycle observes), deliver link payloads, run router
    // pipelines, generate workload traffic, run NIs (injection/ejection/
    // bypass), then power-gating controllers (which therefore see WU
    // requests raised this cycle, while their state changes are observed
    // by neighbors next cycle).
    if (injector_)
        kernel_.add(injector_.get());
    for (auto &l : flitLinks_)
        kernel_.add(l.get());
    for (auto &l : creditLinks_)
        kernel_.add(l.get());
    for (auto &r : routers_)
        kernel_.add(r.get());
    kernel_.add(&ticker_);
    for (auto &ni : nis_)
        kernel_.add(ni.get());
    for (auto &c : controllers_)
        kernel_.add(c.get());
    // The auditor must run last so its end-of-cycle sweeps observe a fully
    // settled network state.
    kernel_.add(auditor_.get());
}

void
NocSystem::setWorkload(Workload *workload)
{
    workload_ = workload;
    if (workload_)
        workload_->bind(*this);
}

void
NocSystem::inject(NodeId src, NodeId dst, int length, std::uint64_t tag)
{
    NORD_ASSERT(mesh_.valid(src) && mesh_.valid(dst),
                "bad packet endpoints %d -> %d", src, dst);
    PacketDescriptor desc;
    desc.src = src;
    desc.dst = dst;
    desc.length = length;
    desc.createdAt = kernel_.now();
    desc.tag = tag;
    nis_[src]->enqueuePacket(desc);
}

void
NocSystem::run(Cycle cycles)
{
    kernel_.run(cycles);
}

bool
NocSystem::runTowardCompletion(Cycle maxCycles)
{
    return kernel_.runUntil([this] { return completionReached(); },
                            maxCycles);
}

bool
NocSystem::runToCompletion(Cycle maxCycles)
{
    bool ok = runTowardCompletion(maxCycles);
    finalizeStats();
    return ok;
}

bool
NocSystem::drained() const
{
    for (const auto &ni : nis_) {
        if (!ni->idle())
            return false;
    }
    for (const auto &r : routers_) {
        if (!r->datapathEmpty())
            return false;
    }
    for (const auto &l : flitLinks_) {
        if (!l->empty())
            return false;
    }
    // Credits still in flight mean upstream state is not settled.
    for (const auto &l : creditLinks_) {
        if (!l->empty())
            return false;
    }
    return true;
}

int
NocSystem::countInState(PowerState s) const
{
    int count = 0;
    for (const auto &c : controllers_) {
        if (c->state() == s)
            ++count;
    }
    return count;
}

void
NocSystem::dumpState(std::FILE *out) const
{
    std::fprintf(out, "=== NocSystem state at cycle %llu ===\n",
                 static_cast<unsigned long long>(kernel_.now()));
    for (const auto &r : routers_) {
        if (!r->datapathEmpty() || r->powerState() != PowerState::kOn)
            r->dumpState(out);
    }
    for (const auto &ni : nis_)
        ni->dumpState(out);
    for (const auto &l : flitLinks_) {
        if (!l->empty())
            std::fprintf(out, "link %s inflight=%zu\n", l->name().c_str(),
                         l->inFlight());
    }
}

void
NocSystem::killRouter(NodeId id)
{
    NORD_ASSERT(mesh_.valid(id), "killRouter: bad node %d", id);
    controllers_[id]->markDead(kernel_.now());
}

void
NocSystem::checkInvariants() const
{
    NORD_ASSERT(drained(), "checkInvariants requires a drained network");
    // A credit leaked after the last periodic sweep would still be
    // unrepaired; give the recover policy one final pass before asserting
    // quiescence.
    if (config_.verify.policy == AuditPolicy::kRecover)
        auditor_->sweep(kernel_.now());
    bool anyDead = false;
    for (const auto &c : controllers_)
        anyDead = anyDead || c->dead();
    if (!config_.fault.enabled && !config_.fault.e2e && !anyDead) {
        // Fault-free run: every packet arrives, exactly once.
        NORD_ASSERT(stats_.packetsDelivered() == stats_.packetsCreated(),
                    "packets lost: %llu created, %llu delivered",
                    static_cast<unsigned long long>(
                        stats_.packetsCreated()),
                    static_cast<unsigned long long>(
                        stats_.packetsDelivered()));
        NORD_ASSERT(stats_.flitsInjected() == stats_.flitsDelivered(),
                    "flits lost: %llu injected, %llu delivered",
                    static_cast<unsigned long long>(
                        stats_.flitsInjected()),
                    static_cast<unsigned long long>(
                        stats_.flitsDelivered()));
    } else {
        // Fault campaign: losses are legal but must be accounted -- no
        // packet vanishes without a matching failure record, duplicates
        // are filtered before delivery, and every physically injected
        // flit is either ejected or deliberately eaten.
        NORD_ASSERT(stats_.packetsDelivered() <= stats_.packetsCreated(),
                    "over-delivery: %llu created, %llu delivered",
                    static_cast<unsigned long long>(
                        stats_.packetsCreated()),
                    static_cast<unsigned long long>(
                        stats_.packetsDelivered()));
        NORD_ASSERT(stats_.packetsDelivered() + stats_.packetsFailed() >=
                        stats_.packetsCreated(),
                    "unaccounted loss: %llu created, %llu delivered, "
                    "%llu failed",
                    static_cast<unsigned long long>(
                        stats_.packetsCreated()),
                    static_cast<unsigned long long>(
                        stats_.packetsDelivered()),
                    static_cast<unsigned long long>(
                        stats_.packetsFailed()));
        NORD_ASSERT(stats_.flitsInjected() ==
                        stats_.flitsEjected() + stats_.flitsEaten(),
                    "flit leak: %llu injected, %llu ejected, %llu eaten",
                    static_cast<unsigned long long>(
                        stats_.flitsInjected()),
                    static_cast<unsigned long long>(
                        stats_.flitsEjected()),
                    static_cast<unsigned long long>(stats_.flitsEaten()));
    }
    for (const auto &r : routers_)
        r->checkQuiescent();
    for (const auto &l : creditLinks_) {
        NORD_ASSERT(l->empty(), "credit link %s still carrying credits",
                    l->name().c_str());
    }
}

void
NocSystem::finalizeStats()
{
    stats_.finalize(kernel_.now());
}

void
NocSystem::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("SYS "));
    kernel_.serializeState(s);
    stats_.serializeState(s);
    for (auto &r : routers_)
        r->serializeState(s);
    for (auto &ni : nis_)
        ni->serializeState(s);
    for (auto &l : flitLinks_)
        l->serializeState(s);
    for (auto &l : creditLinks_)
        l->serializeState(s);
    for (auto &c : controllers_)
        c->serializeState(s);
    auditor_->serializeState(s);
    bool hasInjector = injector_ != nullptr;
    s.io(hasInjector);
    if (s.loading() && hasInjector != (injector_ != nullptr)) {
        s.fail("checkpoint and system disagree on fault injector "
               "presence");
        return;
    }
    if (injector_)
        injector_->serializeState(s);
    bool hasWorkload = workload_ != nullptr;
    s.io(hasWorkload);
    if (s.loading() && hasWorkload != (workload_ != nullptr)) {
        s.fail("checkpoint and system disagree on workload presence");
        return;
    }
    if (workload_)
        workload_->serializeState(s);
}

std::uint64_t
NocSystem::stateHash() const
{
    StateSerializer s(SerialMode::kHash);
    // The hash walk reads every field without mutating anything; the
    // const_cast only satisfies the shared save/load/hash signature.
    const_cast<NocSystem *>(this)->serializeState(s);
    return s.hash();
}

std::uint64_t
NocSystem::configFingerprint() const
{
    StateSerializer s(SerialMode::kHash);
    NocConfig c = config_;
    s.io(c.rows);
    s.io(c.cols);
    s.io(c.numVcs);
    s.io(c.numEscapeVcs);
    s.io(c.bufferDepth);
    s.io(c.design);
    s.io(c.wakeupLatency);
    s.io(c.betCycles);
    s.io(c.convOptSleepGuard);
    s.io(c.earlyWakeupHide);
    s.io(c.nordWakeupWindow);
    s.io(c.nordPerfThreshold);
    s.io(c.nordPowerThreshold);
    s.io(c.nordPerfCentricCount);
    s.io(c.nordMisrouteCap);
    s.io(c.nordPowerSleepGuard);
    s.io(c.nordPerfSleepGuard);
    s.io(c.niStarvationLimit);
    s.io(c.nordAggressiveBypass);
    s.io(c.escapeAfterBlockedCycles);
    s.io(c.seed);
    s.io(c.statsWarmup);
    s.io(c.verify.interval);
    s.io(c.verify.sweepOnTransition);
    s.io(c.verify.policy);
    s.io(c.verify.stallThreshold);
    s.io(c.verify.maxFlitAge);
    FaultConfig &f = c.fault;
    s.io(f.enabled);
    s.io(f.flitCorruptRate);
    s.io(f.flitDropRate);
    s.io(f.creditLeakRate);
    s.io(f.lostWakeupRate);
    s.io(f.lostWakeupStall);
    s.ioSequence(f.schedule, [&s](FaultEvent &e) {
        s.io(e.at);
        s.io(e.cls);
        s.io(e.node);
        s.io(e.duration);
    });
    s.io(f.e2e);
    s.io(f.retransTimeout);
    s.io(f.retransBackoff);
    s.io(f.retryLimit);
    s.io(f.ackCoalesce);
    s.io(f.wakeupWatchdog);
    return s.hash();
}

bool
NocSystem::saveCheckpoint(const std::string &path,
                          const std::array<std::uint64_t, 4> &user,
                          std::string *err)
{
    StateSerializer s(SerialMode::kSave);
    serializeState(s);
    if (!s.ok()) {
        if (err)
            *err = s.error();
        return false;
    }
    CheckpointMeta meta;
    meta.version = kCheckpointVersion;
    meta.configFingerprint = configFingerprint();
    meta.cycle = kernel_.now();
    meta.user = user;
    return writeCheckpointFile(path, meta, s.buffer(), err);
}

bool
NocSystem::loadCheckpoint(const std::string &path,
                          std::array<std::uint64_t, 4> *user,
                          std::string *err)
{
    CheckpointMeta meta;
    std::vector<std::uint8_t> payload;
    if (!readCheckpointFile(path, &meta, &payload, err))
        return false;
    if (meta.configFingerprint != configFingerprint()) {
        if (err)
            *err = "checkpoint configuration fingerprint mismatch "
                   "(different topology/design/seed/fault settings)";
        return false;
    }
    // Snapshot the live state before the load walk so a payload that
    // passes the container hashes but fails mid-walk (format drift,
    // trailing bytes, clock disagreement) cannot leave the system half
    // overwritten: the load is transactional, callers may retry or
    // restart from scratch on the same object.
    StateSerializer snap(SerialMode::kSave);
    serializeState(snap);
    if (!snap.ok()) {
        if (err)
            *err = snap.error();
        return false;
    }
    auto rollback = [this, &snap]() {
        StateSerializer undo(snap.takeBuffer());
        serializeState(undo);
        kernel_.wakeAll();
    };
    StateSerializer s(std::move(payload));
    serializeState(s);
    if (!s.ok()) {
        if (err)
            *err = s.error();
        rollback();
        return false;
    }
    if (!s.exhausted()) {
        if (err)
            *err = "checkpoint payload has trailing bytes (format drift)";
        rollback();
        return false;
    }
    if (meta.cycle != kernel_.now()) {
        if (err)
            *err = "checkpoint header cycle disagrees with restored "
                   "kernel clock";
        rollback();
        return false;
    }
    if (user)
        *user = meta.user;
    // The restored state may hold work for components the skip list had
    // retired (or vice versa): re-arm everything, exactly like a freshly
    // built system. No-op ticks keep bit-identity.
    kernel_.wakeAll();
    return true;
}

}  // namespace nord

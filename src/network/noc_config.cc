/**
 * @file
 * Configuration validation.
 */

#include "network/noc_config.hh"

#include "common/log.hh"

namespace nord {

const char *
auditPolicyName(AuditPolicy p)
{
    switch (p) {
      case AuditPolicy::kAbort: return "abort";
      case AuditPolicy::kDiagnose: return "diagnose";
      case AuditPolicy::kRecover: return "recover";
    }
    return "?";
}

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::kFlitCorrupt: return "flit-corrupt";
      case FaultClass::kFlitDrop: return "flit-drop";
      case FaultClass::kCreditLeak: return "credit-leak";
      case FaultClass::kStuckPg: return "stuck-pg";
      case FaultClass::kLostWakeup: return "lost-wakeup";
      case FaultClass::kDeadRouter: return "dead-router";
    }
    return "?";
}

void
NocConfig::validate() const
{
    if (rows < 2 || cols < 2)
        NORD_FATAL("mesh must be at least 2x2 (got %dx%d)", rows, cols);
    if (rows % 2 != 0)
        NORD_FATAL("bypass ring construction requires an even row count");
    if (numVcs < 2)
        NORD_FATAL("need at least 2 VCs (1 escape + 1 adaptive)");
    if (numEscapeVcs < 1 || numEscapeVcs >= numVcs)
        NORD_FATAL("numEscapeVcs (%d) must be in [1, numVcs)", numEscapeVcs);
    if (design == PgDesign::kNord && numEscapeVcs < 2) {
        NORD_FATAL("NoRD's ring escape needs 2 escape VCs to break the "
                   "cyclic dependence");
    }
    if (bufferDepth < 1)
        NORD_FATAL("bufferDepth must be >= 1");
    if (wakeupLatency < 1)
        NORD_FATAL("wakeupLatency must be >= 1");
    if (nordWakeupWindow < 1)
        NORD_FATAL("nordWakeupWindow must be >= 1");
    if (nordPerfThreshold < 1 || nordPowerThreshold < 1)
        NORD_FATAL("wakeup thresholds must be >= 1");
    if (nordMisrouteCap < 0)
        NORD_FATAL("nordMisrouteCap must be >= 0");
    if (verify.interval > 0) {
        if (verify.stallThreshold < 1)
            NORD_FATAL("verify.stallThreshold must be >= 1");
        if (verify.maxFlitAge < 1)
            NORD_FATAL("verify.maxFlitAge must be >= 1");
    }
    if (fault.enabled) {
        for (double rate : {fault.flitCorruptRate, fault.flitDropRate,
                            fault.creditLeakRate, fault.lostWakeupRate}) {
            if (rate < 0.0 || rate > 1.0)
                NORD_FATAL("fault rates must be probabilities in [0, 1]");
        }
        for (const FaultEvent &ev : fault.schedule) {
            if (ev.node < 0 || ev.node >= numNodes()) {
                NORD_FATAL("scheduled fault targets node %d outside the "
                           "%dx%d mesh", ev.node, rows, cols);
            }
            if (ev.cls != FaultClass::kDeadRouter &&
                ev.cls != FaultClass::kStuckPg &&
                ev.cls != FaultClass::kLostWakeup) {
                NORD_FATAL("only dead-router / stuck-pg / lost-wakeup "
                           "faults can be scheduled; transient classes "
                           "are rate-driven");
            }
        }
    }
    if (fault.e2e) {
        if (fault.retransTimeout < 1)
            NORD_FATAL("fault.retransTimeout must be >= 1");
        if (fault.retransBackoff < 1)
            NORD_FATAL("fault.retransBackoff must be >= 1");
        if (fault.retryLimit < 0)
            NORD_FATAL("fault.retryLimit must be >= 0");
    }
}

}  // namespace nord

/**
 * @file
 * Configuration validation.
 */

#include "network/noc_config.hh"

#include "common/log.hh"

namespace nord {

void
NocConfig::validate() const
{
    if (rows < 2 || cols < 2)
        NORD_FATAL("mesh must be at least 2x2 (got %dx%d)", rows, cols);
    if (rows % 2 != 0)
        NORD_FATAL("bypass ring construction requires an even row count");
    if (numVcs < 2)
        NORD_FATAL("need at least 2 VCs (1 escape + 1 adaptive)");
    if (numEscapeVcs < 1 || numEscapeVcs >= numVcs)
        NORD_FATAL("numEscapeVcs (%d) must be in [1, numVcs)", numEscapeVcs);
    if (design == PgDesign::kNord && numEscapeVcs < 2) {
        NORD_FATAL("NoRD's ring escape needs 2 escape VCs to break the "
                   "cyclic dependence");
    }
    if (bufferDepth < 1)
        NORD_FATAL("bufferDepth must be >= 1");
    if (wakeupLatency < 1)
        NORD_FATAL("wakeupLatency must be >= 1");
    if (nordWakeupWindow < 1)
        NORD_FATAL("nordWakeupWindow must be >= 1");
    if (nordPerfThreshold < 1 || nordPowerThreshold < 1)
        NORD_FATAL("wakeup thresholds must be >= 1");
    if (nordMisrouteCap < 0)
        NORD_FATAL("nordMisrouteCap must be >= 0");
    if (verify.interval > 0) {
        if (verify.stallThreshold < 1)
            NORD_FATAL("verify.stallThreshold must be >= 1");
        if (verify.maxFlitAge < 1)
            NORD_FATAL("verify.maxFlitAge must be >= 1");
    }
}

}  // namespace nord

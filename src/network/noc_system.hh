/**
 * @file
 * Top-level facade: builds and runs one simulated on-chip network.
 *
 * A NocSystem assembles the mesh topology, the Bypass Ring, routers, NIs,
 * links, per-design power-gating controllers and statistics, then drives
 * them with a cycle-based kernel. This is the primary public entry point
 * of the library:
 *
 * @code
 *   NocConfig cfg;
 *   cfg.design = PgDesign::kNord;
 *   NocSystem sys(cfg);
 *   UniformRandomTraffic traffic(cfg.numNodes(), 0.05, 42);
 *   sys.setWorkload(&traffic);
 *   sys.run(100000);
 *   double lat = sys.stats().avgPacketLatency();
 * @endcode
 */

#ifndef NORD_NETWORK_NOC_SYSTEM_HH
#define NORD_NETWORK_NOC_SYSTEM_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "fault/fault_injector.hh"
#include "network/link.hh"
#include "network/noc_config.hh"
#include "ni/network_interface.hh"
#include "powergate/pg_controller.hh"
#include "router/router.hh"
#include "routing/routing_policy.hh"
#include "sim/kernel.hh"
#include "stats/network_stats.hh"
#include "topology/bypass_ring.hh"
#include "topology/criticality.hh"
#include "topology/mesh.hh"
#include "traffic/workload.hh"
#include "verify/invariant_auditor.hh"

namespace nord {

class AccessTracker;
class StateSerializer;

/**
 * One fully-wired simulated network.
 */
class NocSystem
{
  public:
    explicit NocSystem(const NocConfig &config);
    ~NocSystem();

    NocSystem(const NocSystem &) = delete;
    NocSystem &operator=(const NocSystem &) = delete;

    /** Attach a traffic workload (not owned). */
    void setWorkload(Workload *workload);

    /** Run @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * Run until the workload reports done and the network has drained, or
     * @p maxCycles elapse. Returns true on clean completion.
     */
    bool runToCompletion(Cycle maxCycles);

    /**
     * Chunked/checkpointed equivalent of runToCompletion(): advance at
     * most @p maxCycles further, stopping the cycle completion is
     * reached, WITHOUT finalizing statistics. The completion predicate is
     * evaluated after every cycle, so splitting one runToCompletion()
     * budget across several calls stops at the identical cycle.
     */
    bool runTowardCompletion(Cycle maxCycles);

    /** True when the workload (if any) is done and the network drained. */
    bool completionReached() const
    {
        return (!workload_ || workload_->done()) && drained();
    }

    /** Current simulation cycle. */
    Cycle now() const { return kernel_.now(); }

    /** The driving kernel (perf counters, skip toggles, wakeAll). */
    SimKernel &kernel() { return kernel_; }
    const SimKernel &kernel() const { return kernel_; }

    /** Flit/packet pool (allocation stats; used even when perf.arena is
     *  off, in which case it simply stays empty). */
    const PoolArena &arena() const { return arena_; }

    /** Inject one packet from @p src to @p dst (used by workloads). */
    void inject(NodeId src, NodeId dst, int length, std::uint64_t tag = 0);

    /** True when every queue, buffer, link and bypass latch is empty. */
    bool drained() const;

    // --- Component access ----------------------------------------------
    const NocConfig &config() const { return config_; }
    const MeshTopology &mesh() const { return mesh_; }
    const BypassRing &ring() const { return ring_; }
    NetworkStats &stats() { return stats_; }
    const NetworkStats &stats() const { return stats_; }
    Router &router(NodeId id) { return *routers_[id]; }
    const Router &router(NodeId id) const { return *routers_[id]; }
    NetworkInterface &ni(NodeId id) { return *nis_[id]; }
    const NetworkInterface &ni(NodeId id) const { return *nis_[id]; }
    PgController &controller(NodeId id) { return *controllers_[id]; }
    const PgController &controller(NodeId id) const
    {
        return *controllers_[id];
    }

    /** Runtime invariant auditor (always constructed; enabled when
     *  config.verify.interval > 0). */
    InvariantAuditor &auditor() { return *auditor_; }
    const InvariantAuditor &auditor() const { return *auditor_; }

    /** Fault-campaign engine (null unless config.fault.enabled). */
    const FaultInjector *injector() const { return injector_.get(); }

    /**
     * Cross-component access tracker (null unless
     * config.verify.trackAccess). Records every component-boundary
     * read/write per cycle; AccessTracker::verify() then proves the
     * observed dataflow against the declared ownership contracts -- the
     * shard-safety analysis for the planned parallel kernel.
     */
    AccessTracker *accessTracker() { return accessTracker_.get(); }
    const AccessTracker *accessTracker() const
    {
        return accessTracker_.get();
    }

    /**
     * Permanently fail router @p id right now (same effect as a scheduled
     * kDeadRouter event). NoRD demotes it to always-gated and serves its
     * node over the bypass ring; baselines pin it on and eat what routes
     * into it.
     */
    void killRouter(NodeId id);

    /** Performance-centric router set used for asymmetric thresholds. */
    const std::vector<NodeId> &perfCentricRouters() const
    {
        return perfCentric_;
    }

    /** Number of routers currently in each power state. */
    int countInState(PowerState s) const;

    /** Finalize statistics (flush idle periods). Safe to call repeatedly. */
    void finalizeStats();

    /** Dump every non-idle component's state (diagnostics). */
    void dumpState(std::FILE *out) const;

    /**
     * Verify whole-network conservation invariants on a drained network:
     * every packet delivered, all credits home, no leaked VC or bypass
     * state. Panics with a description on violation.
     */
    void checkInvariants() const;

    // --- Checkpoint / restore -------------------------------------------

    /**
     * Walk every component's serializeState hook in a fixed order:
     * kernel, stats, routers, NIs, flit links, credit links, controllers,
     * auditor, injector, workload. One function serves save, load and
     * hash, so the three walks can never disagree on field order.
     */
    void serializeState(StateSerializer &s);

    /** Save the complete dynamic state into @p s (kSave mode). */
    void saveState(StateSerializer &s) { serializeState(s); }

    /** Restore the complete dynamic state from @p s (kLoad mode). */
    void loadState(StateSerializer &s) { serializeState(s); }

    /**
     * FNV-1a hash over the complete dynamic network state. Two runs of
     * the same configuration are bit-exact iff their per-cycle hashes
     * agree; divergence after a restore pinpoints the first broken
     * component hook.
     */
    std::uint64_t stateHash() const;

    /**
     * FNV-1a hash over every configuration field (topology, design,
     * verify and fault settings, seed). A checkpoint only restores into a
     * system built from the identical configuration.
     */
    std::uint64_t configFingerprint() const;

    /**
     * Write a checkpoint of the full dynamic state to @p path (atomic:
     * temp file + rename). @p user carries caller metadata (e.g. campaign
     * progress) restored verbatim by loadCheckpoint().
     * Returns false with *err set on failure.
     */
    bool saveCheckpoint(const std::string &path,
                        const std::array<std::uint64_t, 4> &user = {},
                        std::string *err = nullptr);

    /**
     * Restore the full dynamic state from @p path. Rejects checkpoints
     * with a different format version or configuration fingerprint and
     * never panics on corrupt input -- the caller can fall back to an
     * older checkpoint. Returns false with *err set on failure; the
     * system state is unspecified after a failed load (rebuild it).
     */
    bool loadCheckpoint(const std::string &path,
                        std::array<std::uint64_t, 4> *user = nullptr,
                        std::string *err = nullptr);

  private:
    /** Cycle hook that forwards to the attached workload. Workload state
     *  is checkpointed by NocSystem::serializeState, not here.
     *  nord-lint-allow(clocked-serialize) */
    class WorkloadTicker : public Clocked
    {
      public:
        explicit WorkloadTicker(NocSystem &sys) : sys_(sys) {}
        void tick(Cycle now) override
        {
            if (sys_.workload_)
                sys_.workload_->tick(now);
        }
        std::string name() const override { return "workload"; }
        void declareOwnership(OwnershipDeclarator &d) const override;

      private:
        NocSystem &sys_;
    };

    void buildRouters();
    void buildLinks();
    void buildControllers();
    void registerAll();

    /** Pool handed to component constructors: null = heap mode. */
    PoolArena *perfArena()
    {
        return config_.perf.arena ? &arena_ : nullptr;
    }

    NORD_STATE_EXCLUDE(config, "the run configuration itself; fixed at build")
    NocConfig config_;
    // Declared right after config_ so it outlives (is destroyed after)
    // every container that allocates from it.
    NORD_STATE_EXCLUDE(config,
        "flit pool; storage is re-established by the deserialized "
        "arena-backed containers")
    PoolArena arena_;
    NORD_STATE_EXCLUDE(config, "topology derived from config at build")
    MeshTopology mesh_;
    NORD_STATE_EXCLUDE(config, "topology derived from config at build")
    BypassRing ring_;
    NetworkStats stats_;
    NORD_STATE_EXCLUDE(config, "routing tables derived from config at build")
    RoutingPolicy policy_;
    SimKernel kernel_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<PgController>> controllers_;
    std::vector<std::unique_ptr<FlitLink>> flitLinks_;
    std::vector<std::unique_ptr<CreditLink>> creditLinks_;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<FaultInjector> injector_;
    NORD_STATE_EXCLUDE(config,
        "shard-safety instrumentation attached between runs")
    std::unique_ptr<AccessTracker> accessTracker_;
    NORD_STATE_EXCLUDE(config, "perf-centric node set derived from config")
    std::vector<NodeId> perfCentric_;
    NORD_STATE_EXCLUDE(config,
        "stateless tick driver; the workload it drives serializes itself")
    WorkloadTicker ticker_;
    Workload *workload_ = nullptr;
};

}  // namespace nord

#endif  // NORD_NETWORK_NOC_SYSTEM_HH

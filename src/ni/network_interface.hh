/**
 * @file
 * Network interface (NI) with the NoRD decoupling-bypass datapath
 * (Section 4.2, Figure 4c).
 *
 * Normal duties: packetize node traffic into flits, allocate a VC and
 * check credits on the router's local input port, inject one flit per
 * cycle, and eject arriving flits to the node.
 *
 * NoRD additions (all always-on): a bypass latch with one slot per VC fed
 * by the router's Bypass Inport, a demultiplexer that either sinks a
 * latched flit locally or forwards it, and a multiplexer that re-injects
 * forwarded flits (and local traffic, while the router is gated off) into
 * the router's Bypass Outport. The three-stage bypass pipeline is:
 *   (1) LT writes the flit into the bypass latch;
 *   (2) the NI sinks it or allocates an output VC (checking credits);
 *   (3) the flit is re-injected through the Bypass Outport (ST), then LT.
 *
 * The number of VC-allocation requests seen here per cycle is the NoRD
 * wakeup metric (Section 4.3).
 */

#ifndef NORD_NI_NETWORK_INTERFACE_HH
#define NORD_NI_NETWORK_INTERFACE_HH

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/arena.hh"
#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "fault/e2e_protocol.hh"
#include "network/noc_config.hh"
#include "sim/clocked.hh"
#include "stats/network_stats.hh"

namespace nord {

class Router;
class RoutingPolicy;
class StateSerializer;

/**
 * One node's network interface.
 */
class NetworkInterface : public Clocked
{
  public:
    /** Callback invoked when a packet's tail flit reaches the node. */
    using DeliveryCallback = std::function<void(const Flit &, Cycle)>;

    /** @p arena optionally backs the flit queues (null = heap). */
    NetworkInterface(NodeId id, const NocConfig &config,
                     NetworkStats &stats, PoolArena *arena = nullptr);

    void setRouter(Router *router) { router_ = router; }
    void setPolicy(const RoutingPolicy *policy) { policy_ = policy; }
    void setDeliveryCallback(DeliveryCallback cb) { onDelivery_ = std::move(cb); }

    NodeId id() const { return id_; }
    std::string name() const override;

    void tick(Cycle now) override;

    /**
     * NIs are never skipped: vcRequestsThisCycle() is a per-cycle signal
     * the NordController samples, and the E2E endpoint runs retransmit
     * timers. Clocked's default (never quiescent) stands; this kindName
     * is for perf attribution only.
     */
    const char *kindName() const override { return "ni"; }

    // --- Node-facing interface --------------------------------------------
    /** Packetize and queue a new packet for injection. */
    void enqueuePacket(const PacketDescriptor &desc);

    /** Flits waiting to enter the network. */
    size_t injectionBacklog() const { return injectQ_.size(); }

    /**
     * True when no flit is queued, in flight to the node, or bypassing,
     * and (with the E2E layer on) no send is awaiting acknowledgement.
     */
    bool idle() const
    {
        return injectQ_.empty() && ejectQ_.empty() && bypassQuiescent() &&
               (!e2e_ || e2e_->quiescent());
    }

    /** End-to-end protocol endpoint (null unless config.fault.e2e). */
    const E2eEndpoint *e2e() const { return e2e_.get(); }

    // --- Router-facing interface -------------------------------------------
    /** A flit left the router's local output port; arrives at @p due. */
    void acceptEjection(const Flit &flit, Cycle due);

    /** Credit return for the router's local input port. */
    void localCreditReturn(VcId vc);

    // --- NoRD bypass --------------------------------------------------------
    /**
     * Decide whether a flit arriving on the Bypass Inport belongs to the
     * bypass datapath (head: router not fully on; body/tail: follows its
     * head). Registers/unregisters the packet as a bypass flow.
     */
    bool claimForBypass(const Flit &flit);

    /** Stage 1: the link wrote @p flit into the bypass latch. */
    void bypassLatchWrite(const Flit &flit, Cycle now);

    /** Flits forwarded through the single-cycle aggressive cut-through. */
    std::uint64_t aggressiveForwards() const { return aggressiveFwds_; }

    /** Router gated off: the bypass datapath is now the only path. */
    void enableBypass(Cycle now);

    /** Router woke up: drain remaining bypass flows, then hand over. */
    void beginBypassDrain(Cycle now);

    /**
     * True when no bypass state is live (latch empty, no staged flits, no
     * claimed packets, no local packet mid-bypass). Conventional designs
     * are always quiescent.
     */
    bool bypassQuiescent() const;

    /** NoRD wakeup metric input: VC requests observed this cycle. */
    int vcRequestsThisCycle() const { return vcRequests_; }

    /**
     * True when the bypass re-injection stage will drive the Bypass
     * Outport this cycle; the router pipeline yields the port for one
     * cycle (the physical mux in Figure 4b).
     */
    bool stage3Pending(Cycle now) const;

    /** Packets whose tail reached this node (convenience for tests). */
    std::uint64_t packetsReceived() const { return packetsReceived_; }

    // --- Introspection (InvariantAuditor; cheap, non-intrusive) -----------
    /** Flits ejected from the router but not yet delivered to the node. */
    size_t ejectQueueDepth() const { return ejectQ_.size(); }

    /** Total flits held in the bypass latch (all slots). */
    int latchOccupancy() const { return latchOccupancy_; }

    /** Flits held in bypass latch slot @p slot. */
    size_t latchSlotDepth(VcId slot) const { return latch_[slot].size(); }

    /** Flits staged for bypass re-injection (stage 3). */
    size_t stage3Depth() const { return stage3_.size(); }

    /** Staged bypass flits whose reserved output VC is @p outVc. */
    int stage3CountForVc(VcId outVc) const;

    /** Credits this NI holds for VC @p vc of the router's local port. */
    int localCredit(VcId vc) const { return localCredits_[vc]; }

    /**
     * True when the bypass datapath holds output VC @p outVc of the
     * router's Bypass Outport (mid-packet forward, local bypass packet,
     * or a staged flit that reserved it).
     */
    bool holdsBypassOutVc(VcId outVc) const;

    /** Visit every in-NI flit that counts as in-network (ejection queue,
     *  bypass latch, stage 3) for conservation and age sweeps. */
    void forEachPendingFlit(
        const std::function<void(const Flit &)> &fn) const;

    /** Dump bypass/injection state to @p out (diagnostics). */
    void dumpState(std::FILE *out) const;

    /**
     * Checkpoint hook: injection/ejection queues, local credits, the whole
     * bypass datapath (latch, stage-2 decisions, stage 3, claimed flows)
     * and the E2E protocol endpoint when present.
     */
    void serializeState(StateSerializer &s);

    /**
     * Shard-safety contract: local injection, wakeup requests and the
     * bypass drive into the attached router (see verify/access/).
     */
    void declareOwnership(OwnershipDeclarator &d) const override;

  private:
    struct LatchEntry
    {
        Flit flit;
        Cycle allocReady;  ///< earliest cycle for stage 2
    };

    /** Stage-2 decision for the packet occupying one latch slot. */
    struct ForwardState
    {
        bool active = false;
        bool sink = false;
        VcId outVc = kInvalidVc;
    };

    struct StagedFlit
    {
        Flit flit;
        VcId outVc;
        Cycle forwardReady;  ///< earliest cycle for stage 3
    };

    void processEjection(Cycle now);
    void bypassStage3(Cycle now);
    void bypassStage2(Cycle now);
    void normalInjection(Cycle now);
    void deliverFlit(const Flit &flit, Cycle now);

    /**
     * Packetize @p desc into the injection queue. @p e2eSeq stamps the
     * flow sequence number (0 = unprotected), @p kind distinguishes data
     * from control packets, @p faultFlags marks retransmitted copies.
     */
    void packetize(const PacketDescriptor &desc, std::uint32_t e2eSeq,
                   E2eKind kind, std::uint8_t faultFlags);

    /** Run the E2E protocol timers and emit requested sends. */
    void e2eService(Cycle now);

    /** Stage-2 service of the flit at the front of latch slot @p slot. */
    bool serveLatchSlot(int slot, Cycle now);

    /** Stage-2 service of the local injection queue via the bypass. */
    bool serveLocalBypass(Cycle now);

    /** Bypass flow identity: one packet traversal on one input VC. */
    static std::uint64_t flowKey(const Flit &flit)
    {
        return (flit.packet << 4) | static_cast<std::uint64_t>(flit.vc);
    }

    bool isNord() const { return config_.design == PgDesign::kNord; }

    NodeId id_;
    const NocConfig &config_;
    NetworkStats &stats_;
    ActivityCounters &counters_;
    NORD_STATE_EXCLUDE(config, "wiring; set once by NocSystem::buildControllers")
    Router *router_ = nullptr;
    const RoutingPolicy *policy_ = nullptr;
    NORD_STATE_EXCLUDE(config, "delivery callback wired by the test/workload")
    DeliveryCallback onDelivery_;

    // Injection.
    ArenaDeque<Flit> injectQ_;
    std::vector<int> localCredits_;   ///< router local-port buffer credits
    VcId injectVc_ = kInvalidVc;      ///< VC of the packet being injected

    // Ejection.
    ArenaDeque<std::pair<Flit, Cycle>> ejectQ_;
    std::uint64_t packetsReceived_ = 0;

    // Bypass.
    std::vector<ArenaDeque<LatchEntry>> latch_;  ///< one slot per VC
    std::vector<ForwardState> fwd_;              ///< per latch slot
    ArenaDeque<StagedFlit> stage3_;
    std::unordered_set<std::uint64_t> claimed_;  ///< live bypass flows
    bool localBypassActive_ = false;  ///< local packet mid-bypass
    VcId localBypassVc_ = kInvalidVc; ///< outVc held by that packet
    int latchRr_ = 0;
    int localStarve_ = 0;
    int vcRequests_ = 0;
    int latchOccupancy_ = 0;
    bool ringOutBusy_ = false;  ///< Bypass Outport driven this cycle
    std::uint64_t aggressiveFwds_ = 0;

    // End-to-end reliability (null unless config.fault.e2e).
    std::unique_ptr<E2eEndpoint> e2e_;
    NORD_STATE_EXCLUDE(cache, "scratch; cleared and refilled within one tick")
    std::vector<Flit> deliverBuf_;                 ///< scratch
    NORD_STATE_EXCLUDE(cache, "scratch; cleared and refilled within one tick")
    std::vector<E2eEndpoint::Resend> resendBuf_;   ///< scratch
    NORD_STATE_EXCLUDE(cache, "scratch; cleared and refilled within one tick")
    std::vector<E2eEndpoint::AckSend> ackBuf_;     ///< scratch
};

}  // namespace nord

#endif  // NORD_NI_NETWORK_INTERFACE_HH

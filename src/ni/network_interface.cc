/**
 * @file
 * Network interface implementation.
 */

#include "ni/network_interface.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "common/trace.hh"
#include "router/router.hh"
#include "routing/routing_policy.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

NetworkInterface::NetworkInterface(NodeId id, const NocConfig &config,
                                   NetworkStats &stats, PoolArena *arena)
    : id_(id), config_(config), stats_(stats), counters_(stats.router(id)),
      injectQ_(ArenaAllocator<Flit>(arena)),
      localCredits_(static_cast<size_t>(config.numVcs), config.bufferDepth),
      ejectQ_(ArenaAllocator<std::pair<Flit, Cycle>>(arena)),
      latch_(static_cast<size_t>(config.numVcs),
             ArenaDeque<LatchEntry>(ArenaAllocator<LatchEntry>(arena))),
      fwd_(static_cast<size_t>(config.numVcs)),
      stage3_(ArenaAllocator<StagedFlit>(arena))
{
    if (config.fault.e2e)
        e2e_ = std::make_unique<E2eEndpoint>(id, config, stats);
}

std::string
NetworkInterface::name() const
{
    return "ni" + std::to_string(id_);
}

void
NetworkInterface::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("injection/ejection queues, local-port credits, bypass latch "
           "and stage-2/3 datapath, claimed bypass flows, E2E endpoint");
    d.writes(router_, ChannelKind::kLocalInject, Visibility::kNextCycle);
    d.writes(&router_->controller(), ChannelKind::kWakeup,
             Visibility::kSameCycle);
    d.reads(router_, ChannelKind::kRouterObserve);
    d.reads(&router_->controller(), ChannelKind::kPowerObserve);
    if (isNord())
        d.writes(router_, ChannelKind::kBypassDrive,
                 Visibility::kNextCycle);
}

void
NetworkInterface::packetize(const PacketDescriptor &desc,
                            std::uint32_t e2eSeq, E2eKind kind,
                            std::uint8_t faultFlags)
{
    const PacketId pid = stats_.allocPacketId();
    for (int i = 0; i < desc.length; ++i) {
        Flit f;
        f.packet = pid;
        f.src = desc.src;
        f.dst = desc.dst;
        f.length = static_cast<std::int16_t>(desc.length);
        f.seq = static_cast<std::int16_t>(i);
        f.createdAt = desc.createdAt;
        f.tag = desc.tag;
        f.kind = kind;
        f.faultFlags = faultFlags;
        f.e2eSeq = e2eSeq;
        f.payload = flitPayload(desc.src, desc.dst, e2eSeq, f.seq,
                                desc.tag);
        f.checksum = flitChecksum(f.payload);
        recordVisit(f, id_);
        if (desc.length == 1) {
            f.type = FlitType::kHeadTail;
        } else if (i == 0) {
            f.type = FlitType::kHead;
        } else if (i == desc.length - 1) {
            f.type = FlitType::kTail;
        } else {
            f.type = FlitType::kBody;
        }
        if (e2e_ && kind == E2eKind::kData && i == 0 && desc.dst != id_)
            e2e_->attachPiggyback(f);
        injectQ_.push_back(f);
    }
}

void
NetworkInterface::enqueuePacket(const PacketDescriptor &desc)
{
    access::onWrite(this, ChannelKind::kInjection);
    access::Handoff handoff(this);
    NORD_ASSERT(desc.length >= 1, "packet with %d flits", desc.length);
    NORD_ASSERT(desc.src == id_, "packet source %d enqueued at NI %d",
                desc.src, id_);
    std::uint32_t e2eSeq = 0;
    if (e2e_ && desc.dst != id_)
        e2eSeq = e2e_->registerSend(desc);
    packetize(desc, e2eSeq, E2eKind::kData, 0);
    stats_.packetCreated(desc);
}

void
NetworkInterface::acceptEjection(const Flit &flit, Cycle due)
{
    access::onWrite(this, ChannelKind::kEjection);
    ejectQ_.emplace_back(flit, due);
}

void
NetworkInterface::localCreditReturn(VcId vc)
{
    access::onWrite(this, ChannelKind::kLocalCredit);
    ++localCredits_[vc];
    NORD_DCHECK(localCredits_[vc] <= config_.bufferDepth,
                "local credit overflow at NI %d vc %d", id_, vc);
}

void
NetworkInterface::deliverFlit(const Flit &flit, Cycle now)
{
    stats_.flitEjected(now);
    if (e2e_) {
        // The protocol layer filters damaged, duplicate and out-of-order
        // copies; only tails it releases count as logical deliveries.
        deliverBuf_.clear();
        e2e_->onFlitArrived(flit, now, deliverBuf_);
        for (const Flit &tail : deliverBuf_) {
            ++packetsReceived_;
            stats_.packetDelivered(tail, now);
            if (onDelivery_)
                onDelivery_(tail, now);
        }
        return;
    }
    if (flitIsTail(flit)) {
        ++packetsReceived_;
        stats_.packetDelivered(flit, now);
        if (onDelivery_)
            onDelivery_(flit, now);
    }
}

void
NetworkInterface::e2eService(Cycle now)
{
    resendBuf_.clear();
    ackBuf_.clear();
    e2e_->service(now, resendBuf_, ackBuf_);
    for (const E2eEndpoint::Resend &r : resendBuf_) {
        // A retransmitted copy keeps its logical identity (sequence
        // number, creation time -- so latency includes recovery) but is a
        // fresh physical packet.
        packetize(r.desc, r.seq, E2eKind::kData, kFaultRetransmit);
    }
    for (const E2eEndpoint::AckSend &a : ackBuf_) {
        PacketDescriptor ack;
        ack.src = id_;
        ack.dst = a.dst;
        ack.length = 1;
        ack.createdAt = now;
        packetize(ack, 0, E2eKind::kAck, 0);
        // Stamp the protocol fields onto the single flit just queued.
        Flit &f = injectQ_.back();
        f.ackSeq = a.ackSeq;
        f.nackSeq = a.nackSeq;
        stats_.controlPacketCreated();
    }
}

void
NetworkInterface::processEjection(Cycle now)
{
    while (!ejectQ_.empty() && ejectQ_.front().second <= now) {
        deliverFlit(ejectQ_.front().first, now);
        ejectQ_.pop_front();
    }
}

// --- NoRD bypass ----------------------------------------------------------

bool
NetworkInterface::claimForBypass(const Flit &flit)
{
    if (!isNord())
        return false;
    access::onWrite(this, ChannelKind::kBypassLatch);
    access::Handoff handoff(this);
    // A bypass flow is one packet traversal on one input VC: a misrouted
    // packet may lap the ring and revisit this router on another VC while
    // flits of the earlier visit are still draining, so the packet id
    // alone would be ambiguous.
    const std::uint64_t key = flowKey(flit);
    if (flitIsHead(flit)) {
        access::onRead(&router_->controller(),
                       ChannelKind::kPowerObserve);
        const bool claim = router_->powerState() != PowerState::kOn;
        if (claim && !flitIsTail(flit))
            claimed_.insert(key);
        tracePacket(flit.packet, 0, "claim head at NI %d vc %d -> %d", id_,
                    flit.vc, claim ? 1 : 0);
        return claim;
    }
    const bool mine = claimed_.count(key) > 0;
    tracePacket(flit.packet, 0, "claim body seq %d at NI %d vc %d -> %d",
                flit.seq, id_, flit.vc, mine ? 1 : 0);
    if (mine && flitIsTail(flit))
        claimed_.erase(key);
    return mine;
}

void
NetworkInterface::bypassLatchWrite(const Flit &flit, Cycle now)
{
    access::onWrite(this, ChannelKind::kBypassLatch);
    access::Handoff handoff(this);
    const int slot = flit.vc;
    NORD_DCHECK(slot >= 0 && slot < config_.numVcs, "bad latch slot %d",
                slot);
    // While the router is gated off the upstream credit of 1 bounds the
    // slot to a single flit. During the post-wakeup drain the upstream
    // holds full credits again, so flits of a still-claimed packet may
    // accumulate here -- they conceptually occupy the input buffer the
    // credits were granted against (Section 4.3), bounded by its depth.
    NORD_ASSERT(static_cast<int>(latch_[slot].size()) <
                    config_.bufferDepth,
                "bypass latch slot %d overflow at NI %d", slot, id_);
    // Aggressive bypass (Section 6.8): with an empty datapath the flit
    // may be served in the same cycle it is latched (the NI evaluates
    // after link delivery), cutting the bypass to a single cycle.
    access::onRead(&router_->controller(), ChannelKind::kPowerObserve);
    const bool aggressive = config_.nordAggressiveBypass &&
        latchOccupancy_ == 0 && stage3_.empty() && injectQ_.empty() &&
        router_->powerState() != PowerState::kOn;
    latch_[slot].push_back({flit, aggressive ? now : now + 1});
    ++latchOccupancy_;
    ++counters_.bypassLatchWrites;
}

void
NetworkInterface::enableBypass(Cycle)
{
    access::onWrite(this, ChannelKind::kBypassControl);
    NORD_ASSERT(bypassQuiescent(),
                "NI %d: bypass enabled while previous flows live", id_);
}

void
NetworkInterface::beginBypassDrain(Cycle)
{
    access::onWrite(this, ChannelKind::kBypassControl);
    // Remaining bypass flows finish through the bypass datapath; the
    // router pipeline stays off the Bypass Outport until quiescent.
}

bool
NetworkInterface::bypassQuiescent() const
{
    if (!isNord())
        return true;
    return latchOccupancy_ == 0 && stage3_.empty() && claimed_.empty() &&
           !localBypassActive_;
}

int
NetworkInterface::stage3CountForVc(VcId outVc) const
{
    int count = 0;
    for (const StagedFlit &s : stage3_) {
        if (s.outVc == outVc)
            ++count;
    }
    return count;
}

bool
NetworkInterface::holdsBypassOutVc(VcId outVc) const
{
    if (localBypassActive_ && localBypassVc_ == outVc)
        return true;
    for (const ForwardState &f : fwd_) {
        if (f.active && !f.sink && f.outVc == outVc)
            return true;
    }
    return stage3CountForVc(outVc) > 0;
}

void
NetworkInterface::forEachPendingFlit(
    const std::function<void(const Flit &)> &fn) const
{
    for (const auto &entry : ejectQ_)
        fn(entry.first);
    for (const auto &slot : latch_) {
        for (const LatchEntry &e : slot)
            fn(e.flit);
    }
    for (const StagedFlit &s : stage3_)
        fn(s.flit);
}

bool
NetworkInterface::stage3Pending(Cycle now) const
{
    access::onRead(this, ChannelKind::kNiObserve);
    // Credits were reserved in stage 2, so a staged flit always sends.
    return !stage3_.empty() && stage3_.front().forwardReady <= now;
}

void
NetworkInterface::bypassStage3(Cycle now)
{
    if (stage3_.empty())
        return;
    StagedFlit &s = stage3_.front();
    if (s.forwardReady > now)
        return;
    router_->bypassSendFlit(s.flit, s.outVc, now);
    ringOutBusy_ = true;
    stage3_.pop_front();
}

bool
NetworkInterface::serveLatchSlot(int slot, Cycle now)
{
    if (latch_[slot].empty() || latch_[slot].front().allocReady > now)
        return false;
    Flit flit = latch_[slot].front().flit;
    ForwardState &f = fwd_[slot];

    if (f.active) {
        NORD_DCHECK(!flitIsHead(flit), "head flit on active bypass flow");
        if (f.sink) {
            flit.hops = static_cast<std::int16_t>(flit.hops + 1);
            deliverFlit(flit, now);
        } else {
            if (!router_->bypassCreditAvailable(f.outVc))
                return false;  // wait for downstream space
            router_->bypassReserveCredit(f.outVc);
            if (config_.nordAggressiveBypass && !ringOutBusy_ &&
                latch_[slot].front().allocReady == now) {
                router_->bypassSendFlit(flit, f.outVc, now);
                ringOutBusy_ = true;
                ++aggressiveFwds_;
                if (flitIsTail(flit))
                    f = ForwardState{};
                latch_[slot].pop_front();
                --latchOccupancy_;
                router_->bypassCreditReturn(slot, now);
                return true;
            }
            stage3_.push_back({flit, f.outVc, now + 1});
        }
        if (flitIsTail(flit))
            f = ForwardState{};
        latch_[slot].pop_front();
        --latchOccupancy_;
        router_->bypassCreditReturn(slot, now);
        return true;
    }

    NORD_DCHECK(flitIsHead(flit), "body flit without bypass flow state");
    if (flit.dst == id_) {
        // Demux ahead of the ejection queue: sink locally (Figure 4c).
        flit.hops = static_cast<std::int16_t>(flit.hops + 1);
        deliverFlit(flit, now);
        if (!flitIsTail(flit)) {
            f.active = true;
            f.sink = true;
        }
        latch_[slot].pop_front();
        --latchOccupancy_;
        router_->bypassCreditReturn(slot, now);
        return true;
    }

    // Forward: allocate a VC on the Bypass Outport and check credits.
    RouteRequest req = policy_->routeAtBypass(id_, flit);
    VcClass cls = (req.mustEscape || flit.onEscape) ? VcClass::kEscape
                                                    : VcClass::kAdaptive;
    int level = -1;
    if (cls == VcClass::kEscape)
        level = policy_->escapeVcLevel(id_, req.escapeDir, flit);
    VcId outVc = router_->bypassAllocOutVc(cls, level);
    if (outVc == kInvalidVc && cls == VcClass::kAdaptive) {
        // Duato: escape resources must stay reachable from any state.
        level = policy_->escapeVcLevel(id_, req.escapeDir, flit);
        outVc = router_->bypassAllocOutVc(VcClass::kEscape, level);
        if (outVc != kInvalidVc)
            cls = VcClass::kEscape;
    }
    if (outVc == kInvalidVc)
        return false;

    if (cls == VcClass::kEscape) {
        flit.onEscape = true;
        flit.escLevel = static_cast<std::int8_t>(level);
    } else if (!req.adaptive.empty() && req.adaptive.front().nonMinimal) {
        flit.misroutes = static_cast<std::int16_t>(flit.misroutes + 1);
    }
    if (config_.nordAggressiveBypass && !ringOutBusy_ &&
        latch_[slot].front().allocReady == now) {
        // Single-cycle cut-through: drive the Bypass Outport directly.
        router_->bypassSendFlit(flit, outVc, now);
        ringOutBusy_ = true;
        ++aggressiveFwds_;
        if (flitIsTail(flit)) {
            // bypassSendFlit released the output VC on the tail.
        } else {
            f.active = true;
            f.sink = false;
            f.outVc = outVc;
        }
        latch_[slot].pop_front();
        --latchOccupancy_;
        router_->bypassCreditReturn(slot, now);
        return true;
    }
    stage3_.push_back({flit, outVc, now + 1});
    if (!flitIsTail(flit)) {
        f.active = true;
        f.sink = false;
        f.outVc = outVc;
    }
    latch_[slot].pop_front();
    --latchOccupancy_;
    router_->bypassCreditReturn(slot, now);
    return true;
}

bool
NetworkInterface::serveLocalBypass(Cycle now)
{
    if (injectQ_.empty())
        return false;

    if (localBypassActive_) {
        Flit flit = injectQ_.front();
        NORD_DCHECK(!flitIsHead(flit), "head while local bypass active");
        if (!router_->bypassCreditAvailable(localBypassVc_))
            return false;
        router_->bypassReserveCredit(localBypassVc_);
        stage3_.push_back({flit, localBypassVc_, now + 1});
        tracePacket(flit.packet, now, "local bypass body seq %d at NI %d",
                    flit.seq, id_);
        stats_.flitInjected(now);
        if (flitIsTail(flit))
            localBypassActive_ = false;
        injectQ_.pop_front();
        return true;
    }

    access::onRead(&router_->controller(), ChannelKind::kPowerObserve);
    if (router_->powerState() == PowerState::kOn)
        return false;  // use the normal injection path

    Flit flit = injectQ_.front();
    NORD_DCHECK(flitIsHead(flit), "mid-packet at bypass injection");
    if (flit.dst == id_) {
        // Self-addressed packet: loop straight back to the node.
        while (!injectQ_.empty()) {
            Flit f = injectQ_.front();
            if (flitIsHead(f) && f.packet != flit.packet)
                break;
            f.injectedAt = now;
            stats_.flitInjected(now);
            deliverFlit(f, now);
            injectQ_.pop_front();
        }
        return true;
    }

    RouteRequest req = policy_->routeAtBypass(id_, flit);
    VcClass cls = (req.mustEscape || flit.onEscape) ? VcClass::kEscape
                                                    : VcClass::kAdaptive;
    int level = -1;
    if (cls == VcClass::kEscape)
        level = policy_->escapeVcLevel(id_, req.escapeDir, flit);
    VcId outVc = router_->bypassAllocOutVc(cls, level);
    if (outVc == kInvalidVc && cls == VcClass::kAdaptive) {
        level = policy_->escapeVcLevel(id_, req.escapeDir, flit);
        outVc = router_->bypassAllocOutVc(VcClass::kEscape, level);
        if (outVc != kInvalidVc)
            cls = VcClass::kEscape;
    }
    if (outVc == kInvalidVc)
        return false;

    if (cls == VcClass::kEscape) {
        flit.onEscape = true;
        flit.escLevel = static_cast<std::int8_t>(level);
    } else if (!req.adaptive.empty() && req.adaptive.front().nonMinimal) {
        flit.misroutes = static_cast<std::int16_t>(flit.misroutes + 1);
    }
    flit.injectedAt = now;
    stats_.flitInjected(now);
    tracePacket(flit.packet, now, "local bypass head inject at NI %d outvc %d",
                id_, outVc);
    stage3_.push_back({flit, outVc, now + 1});
    if (!flitIsTail(flit)) {
        localBypassActive_ = true;
        localBypassVc_ = outVc;
    }
    injectQ_.pop_front();
    return true;
}

void
NetworkInterface::bypassStage2(Cycle now)
{
    // Count this cycle's VC requests (the wakeup metric, Section 4.3).
    // Every flit pending at stage 2 that needs forwarding re-asserts its
    // request each cycle -- "the number of VC requests goes up even if
    // the flits are stalled" -- so congestion raises the count even when
    // nothing moves. Flits sinking locally request no VC.
    for (int slot = 0; slot < config_.numVcs; ++slot) {
        if (latch_[slot].empty() ||
            latch_[slot].front().allocReady > now) {
            continue;
        }
        const bool sinks = fwd_[slot].active
            ? fwd_[slot].sink
            : latch_[slot].front().flit.dst == id_;
        if (!sinks)
            ++vcRequests_;
    }
    if (!injectQ_.empty())
        access::onRead(&router_->controller(),
                       ChannelKind::kPowerObserve);
    const bool localWants = !injectQ_.empty() &&
        (localBypassActive_ || router_->powerState() != PowerState::kOn);
    if (localWants && injectQ_.front().dst != id_)
        ++vcRequests_;

    // Single stage-2 datapath: bypass traffic has priority unless the
    // local node has starved too long (Section 4.2).
    bool localServed = false;
    bool served = false;
    if (localWants && localStarve_ >= config_.niStarvationLimit) {
        localServed = serveLocalBypass(now);
        served = localServed;
    }
    if (!served) {
        for (int k = 0; k < config_.numVcs; ++k) {
            const int slot = (latchRr_ + k) % config_.numVcs;
            if (serveLatchSlot(slot, now)) {
                latchRr_ = (slot + 1) % config_.numVcs;
                served = true;
                break;
            }
        }
    }
    if (!served && localWants) {
        localServed = serveLocalBypass(now);
        served = localServed;
    }
    if (localWants && !localServed)
        ++localStarve_;
    else if (localServed)
        localStarve_ = 0;
}

void
NetworkInterface::normalInjection(Cycle now)
{
    if (injectQ_.empty())
        return;
    access::onRead(&router_->controller(), ChannelKind::kPowerObserve);
    if (isNord()) {
        if (router_->powerState() != PowerState::kOn || localBypassActive_)
            return;  // handled by the bypass datapath
    } else if (config_.gatingEnabled() &&
               router_->powerState() != PowerState::kOn) {
        // Node-router dependence: the node cannot inject until its router
        // wakes up (Section 3.4).
        router_->controller().requestWakeup(now);
        return;
    }

    // Node-router dependence cuts the other way too: when the local
    // router is permanently dead (non-NoRD), new packets have no path
    // into the network. Drop them at the source and account the loss;
    // wormholes already partially injected are completed so the dead
    // router's (still running) pipeline is not left with a headless tail.
    if (!isNord() && router_->controller().dead() &&
        injectVc_ == kInvalidVc) {
        const Flit head = injectQ_.front();
        NORD_DCHECK(flitIsHead(head), "mid-packet without an inject VC");
        while (!injectQ_.empty()) {
            const Flit &f = injectQ_.front();
            if (flitIsHead(f) && f.packet != head.packet)
                break;
            injectQ_.pop_front();
        }
        if (!e2e_ && head.kind == E2eKind::kData)
            stats_.packetFailed();
        return;
    }

    Flit flit = injectQ_.front();
    if (flit.dst == id_) {
        // Self-addressed packet: deliver without touching the network.
        while (!injectQ_.empty()) {
            Flit f = injectQ_.front();
            if (flitIsHead(f) && f.packet != flit.packet)
                break;
            f.injectedAt = now;
            stats_.flitInjected(now);
            deliverFlit(f, now);
            injectQ_.pop_front();
        }
        return;
    }

    if (injectVc_ == kInvalidVc) {
        NORD_DCHECK(flitIsHead(flit), "mid-packet without an inject VC");
        const VcId first = config_.firstVcOf(VcClass::kAdaptive);
        for (VcId v = first; v < config_.numVcs; ++v) {
            if (localCredits_[v] > 0 && router_->localVcIdle(v)) {
                injectVc_ = v;
                break;
            }
        }
        if (injectVc_ == kInvalidVc)
            return;
    }
    if (localCredits_[injectVc_] <= 0)
        return;

    flit.vc = injectVc_;
    flit.injectedAt = now;
    tracePacket(flit.packet, now, "normal inject at NI %d seq %d vc %d",
                id_, flit.seq, injectVc_);
    router_->enqueueLocal(flit, now);
    --localCredits_[injectVc_];
    stats_.flitInjected(now);
    injectQ_.pop_front();
    if (flitIsTail(flit))
        injectVc_ = kInvalidVc;
}

void
NetworkInterface::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("NI  "));
    s.ioSequence(injectQ_);
    s.ioSequence(localCredits_);
    s.io(injectVc_);
    s.ioSequence(ejectQ_, [&s](std::pair<Flit, Cycle> &e) {
        s.io(e.first);
        s.io(e.second);
    });
    s.io(packetsReceived_);
    // The latch has one slot per VC, fixed at construction; serializing
    // slot-by-slot in place (instead of the generic clear-and-refill
    // ioSequence) keeps each deque's arena allocator across a load.
    std::uint64_t latchSlots = latch_.size();
    s.io(latchSlots);
    if (s.loading() && latchSlots != latch_.size()) {
        s.fail("checkpoint latch slot count mismatch at NI " +
               std::to_string(id_));
        return;
    }
    for (auto &slot : latch_) {
        s.ioSequence(slot, [&s](LatchEntry &e) {
            s.io(e.flit);
            s.io(e.allocReady);
        });
    }
    s.ioSequence(fwd_, [&s](ForwardState &f) {
        s.io(f.active);
        s.io(f.sink);
        s.io(f.outVc);
    });
    s.ioSequence(stage3_, [&s](StagedFlit &e) {
        s.io(e.flit);
        s.io(e.outVc);
        s.io(e.forwardReady);
    });
    s.ioUnorderedSet(claimed_);
    s.io(localBypassActive_);
    s.io(localBypassVc_);
    s.io(latchRr_);
    s.io(localStarve_);
    s.io(vcRequests_);
    s.io(latchOccupancy_);
    s.io(ringOutBusy_);
    s.io(aggressiveFwds_);
    bool hasE2e = e2e_ != nullptr;
    s.io(hasE2e);
    if (s.loading() && hasE2e != (e2e_ != nullptr)) {
        s.fail("checkpoint E2E presence mismatch at NI " +
               std::to_string(id_));
        return;
    }
    if (e2e_)
        e2e_->serializeState(s);
}

void
NetworkInterface::dumpState(std::FILE *out) const
{
    if (idle())
        return;
    std::fprintf(out,
        "ni %d injQ=%zu ejQ=%zu latch=%d stage3=%zu claimed=%zu "
        "localBypass=%d starve=%d\n",
        id_, injectQ_.size(), ejectQ_.size(), latchOccupancy_,
        stage3_.size(), claimed_.size(), localBypassActive_ ? 1 : 0,
        localStarve_);
    for (int v = 0; v < config_.numVcs; ++v) {
        if (latch_[v].empty() && !fwd_[v].active)
            continue;
        std::fprintf(out, "  latch vc%d size=%zu fwd(active=%d sink=%d "
                     "outvc=%d)", v, latch_[v].size(),
                     fwd_[v].active ? 1 : 0, fwd_[v].sink ? 1 : 0,
                     fwd_[v].outVc);
        if (!latch_[v].empty()) {
            const Flit &f = latch_[v].front().flit;
            std::fprintf(out, " | front pkt=%llu t=%d seq=%d dst=%d",
                         static_cast<unsigned long long>(f.packet),
                         static_cast<int>(f.type), f.seq, f.dst);
        }
        std::fprintf(out, "\n");
    }
    if (!stage3_.empty()) {
        const StagedFlit &s3 = stage3_.front();
        std::fprintf(out, "  stage3 front pkt=%llu seq=%d outvc=%d rdy=%llu\n",
                     static_cast<unsigned long long>(s3.flit.packet),
                     s3.flit.seq, s3.outVc,
                     static_cast<unsigned long long>(s3.forwardReady));
    }
    if (!injectQ_.empty()) {
        const Flit &f = injectQ_.front();
        std::fprintf(out, "  injQ front pkt=%llu t=%d seq=%d dst=%d vc=%d\n",
                     static_cast<unsigned long long>(f.packet),
                     static_cast<int>(f.type), f.seq, f.dst, injectVc_);
    }
}

void
NetworkInterface::tick(Cycle now)
{
    vcRequests_ = 0;
    ringOutBusy_ = false;
    processEjection(now);
    if (e2e_)
        e2eService(now);
    if (isNord()) {
        bypassStage3(now);
        bypassStage2(now);
    }
    normalInjection(now);
}

}  // namespace nord

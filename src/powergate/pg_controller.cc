/**
 * @file
 * Power-gating controller FSM implementation.
 */

#include "powergate/pg_controller.hh"

#include "ckpt/state_serializer.hh"
#include "common/log.hh"
#include "router/router.hh"
#include "stats/network_stats.hh"
#include "verify/access/access_tracker.hh"

namespace nord {

PgController::PgController(Router &router, const NocConfig &config,
                           ActivityCounters &counters)
    : router_(router), config_(config), counters_(counters)
{
}

std::string
PgController::name() const
{
    return "pg" + std::to_string(router_.id());
}

void
PgController::declareOwnership(OwnershipDeclarator &d) const
{
    d.owns("power-state FSM, residency counters, wakeup bookkeeping");
    d.writes(&router_, ChannelKind::kPowerSignal, Visibility::kNextCycle);
    d.reads(&router_, ChannelKind::kRouterObserve);
}

void
PgController::requestWakeup(Cycle now)
{
    access::onWrite(this, ChannelKind::kWakeup);
    if (state_ != PowerState::kOn) {
        if (!wakeRequested_)
            wakePendingSince_ = now;
        wakeRequested_ = true;
    }
}

void
PgController::injectForcedOff(Cycle now)
{
    access::onWrite(this, ChannelKind::kFault);
    access::Handoff handoff(this);
    if (state_ == PowerState::kOff)
        return;
    const PowerState from = state_;
    state_ = PowerState::kOff;
    wakeDone_ = kNeverCycle;
    ++counters_.sleeps;
    // A healthy transition drains first. When the forced transition finds
    // an empty datapath, run the router's sleep hook so downstream state
    // (NoRD bypass enable, quiescence checks) stays coherent; when it
    // does not, the missing drain IS the injected bug -- leave the stale
    // datapath in place for the auditor to flag rather than crash on the
    // hook's precondition.
    if (router_.datapathEmpty())
        router_.onSleep(now);
    notifyTransition(now, from, PowerState::kOff);
}

void
PgController::markDead(Cycle now)
{
    if (dead_)
        return;
    dead_ = true;
    deadPolicy(now);
}

bool
PgController::tryBeginWakeup(Cycle now)
{
    if (dead_)
        return false;
    if (wakeupSuppressed(now))
        return false;  // the command is silently lost in the faulty input
    beginWakeup(now);
    return true;
}

void
PgController::deadPolicy(Cycle now)
{
    // Fail active: pin the router on. Packets that still route into it
    // are eaten at its input stage (Router::acceptFlit).
    if (state_ == PowerState::kOff) {
        // Bypass the (also dead) command path: this models the supervisor
        // forcing the rail on, not a normal WU handshake.
        beginWakeup(now);
    }
}

bool
PgController::sleepAllowed(Cycle now) const
{
    return router_.datapathEmpty() && !router_.icIncoming(now) &&
           !wakeRequested_;
}

void
PgController::notifyTransition(Cycle now, PowerState from, PowerState to)
{
    if (listener_)
        listener_(now, from, to);
}

void
PgController::beginSleep(Cycle now)
{
    NORD_ASSERT(state_ == PowerState::kOn, "sleep from state %s",
                powerStateName(state_));
    state_ = PowerState::kOff;
    ++counters_.sleeps;
    router_.onSleep(now);
    notifyTransition(now, PowerState::kOn, PowerState::kOff);
}

void
PgController::beginWakeup(Cycle now)
{
    NORD_ASSERT(state_ == PowerState::kOff, "wakeup from state %s",
                powerStateName(state_));
    state_ = PowerState::kWakingUp;
    wakeDone_ = now + config_.wakeupLatency;
    ++counters_.wakeups;
    notifyTransition(now, PowerState::kOff, PowerState::kWakingUp);
}

void
PgController::tick(Cycle now)
{
    // Track the length of the current empty run for sleep-guard policies.
    access::onRead(&router_, ChannelKind::kRouterObserve);
    bool empty = router_.datapathEmpty();
    if (empty && !wasEmpty_)
        emptySince_ = now;
    wasEmpty_ = empty;

    // Complete an in-flight Vdd ramp. The WU level stays asserted through
    // the completion cycle so the sleep policy cannot re-gate before the
    // requester has had a cycle to use the router.
    if (state_ == PowerState::kWakingUp && now >= wakeDone_) {
        state_ = PowerState::kOn;
        wakeDone_ = kNeverCycle;
        router_.onWake(now);
        notifyTransition(now, PowerState::kWakingUp, PowerState::kOn);
    }

    if (dead_)
        deadPolicy(now);
    else
        policy(now);

    // Wakeup watchdog: an independent always-on supervisor that notices a
    // latched wakeup request going unserved far longer than a healthy
    // handshake ever takes (the policy wakes within a cycle) and forces
    // the ramp, recovering lost/stuck wakeup commands. Never fires in a
    // fault-free run.
    if (!dead_ && state_ == PowerState::kOff && wakeRequested_ &&
        config_.fault.wakeupWatchdog > 0 &&
        wakePendingSince_ != kNeverCycle &&
        now - wakePendingSince_ >= config_.fault.wakeupWatchdog) {
        suppressWakeUntil_ = 0;  // the watchdog path is not suppressible
        beginWakeup(now);
        ++watchdogWakes_;
    }

    // WU is a level signal: requesters re-assert it every cycle they
    // still need the router, so consume it once evaluated while on.
    if (state_ == PowerState::kOn) {
        wakeRequested_ = false;
        wakePendingSince_ = kNeverCycle;
    }

    switch (state_) {
      case PowerState::kOn: ++counters_.onCycles; break;
      case PowerState::kOff: ++counters_.offCycles; break;
      case PowerState::kWakingUp: ++counters_.wakingCycles; break;
    }
}

void
PgController::serializeState(StateSerializer &s)
{
    s.section(StateSerializer::tag4("PGC "));
    s.io(state_);
    s.io(wakeRequested_);
    s.io(wakeDone_);
    s.io(emptySince_);
    s.io(wasEmpty_);
    s.io(dead_);
    s.io(suppressWakeUntil_);
    s.io(wakePendingSince_);
    s.io(watchdogWakes_);
}

void
NoPgController::requestWakeup(Cycle)
{
    // Requesters still drive the WU wire; it just has no effect here.
    access::onWrite(this, ChannelKind::kWakeup);
}

ConvPgController::ConvPgController(Router &router, const NocConfig &config,
                                   ActivityCounters &counters,
                                   int sleepGuard)
    : PgController(router, config, counters), sleepGuard_(sleepGuard)
{
}

void
ConvPgController::policy(Cycle now)
{
    switch (state_) {
      case PowerState::kOn:
        if (sleepAllowed(now) && wasEmpty_ &&
            now - emptySince_ >= static_cast<Cycle>(sleepGuard_)) {
            beginSleep(now);
        }
        break;
      case PowerState::kOff:
        if (wakeRequested_)
            tryBeginWakeup(now);
        break;
      case PowerState::kWakingUp:
        break;
    }
}

}  // namespace nord

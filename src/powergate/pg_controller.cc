/**
 * @file
 * Power-gating controller FSM implementation.
 */

#include "powergate/pg_controller.hh"

#include "common/log.hh"
#include "router/router.hh"
#include "stats/network_stats.hh"

namespace nord {

PgController::PgController(Router &router, const NocConfig &config,
                           ActivityCounters &counters)
    : router_(router), config_(config), counters_(counters)
{
}

std::string
PgController::name() const
{
    return "pg" + std::to_string(router_.id());
}

void
PgController::requestWakeup(Cycle)
{
    if (state_ != PowerState::kOn)
        wakeRequested_ = true;
}

bool
PgController::sleepAllowed(Cycle now) const
{
    return router_.datapathEmpty() && !router_.icIncoming(now) &&
           !wakeRequested_;
}

void
PgController::notifyTransition(Cycle now, PowerState from, PowerState to)
{
    if (listener_)
        listener_(now, from, to);
}

void
PgController::beginSleep(Cycle now)
{
    NORD_ASSERT(state_ == PowerState::kOn, "sleep from state %s",
                powerStateName(state_));
    state_ = PowerState::kOff;
    ++counters_.sleeps;
    router_.onSleep(now);
    notifyTransition(now, PowerState::kOn, PowerState::kOff);
}

void
PgController::beginWakeup(Cycle now)
{
    NORD_ASSERT(state_ == PowerState::kOff, "wakeup from state %s",
                powerStateName(state_));
    state_ = PowerState::kWakingUp;
    wakeDone_ = now + config_.wakeupLatency;
    ++counters_.wakeups;
    notifyTransition(now, PowerState::kOff, PowerState::kWakingUp);
}

void
PgController::tick(Cycle now)
{
    // Track the length of the current empty run for sleep-guard policies.
    bool empty = router_.datapathEmpty();
    if (empty && !wasEmpty_)
        emptySince_ = now;
    wasEmpty_ = empty;

    // Complete an in-flight Vdd ramp. The WU level stays asserted through
    // the completion cycle so the sleep policy cannot re-gate before the
    // requester has had a cycle to use the router.
    if (state_ == PowerState::kWakingUp && now >= wakeDone_) {
        state_ = PowerState::kOn;
        wakeDone_ = kNeverCycle;
        router_.onWake(now);
        notifyTransition(now, PowerState::kWakingUp, PowerState::kOn);
    }

    policy(now);

    // WU is a level signal: requesters re-assert it every cycle they
    // still need the router, so consume it once evaluated while on.
    if (state_ == PowerState::kOn)
        wakeRequested_ = false;

    switch (state_) {
      case PowerState::kOn: ++counters_.onCycles; break;
      case PowerState::kOff: ++counters_.offCycles; break;
      case PowerState::kWakingUp: ++counters_.wakingCycles; break;
    }
}

void
NoPgController::requestWakeup(Cycle)
{
    // Never gated, so nothing to wake.
}

ConvPgController::ConvPgController(Router &router, const NocConfig &config,
                                   ActivityCounters &counters,
                                   int sleepGuard)
    : PgController(router, config, counters), sleepGuard_(sleepGuard)
{
}

void
ConvPgController::policy(Cycle now)
{
    switch (state_) {
      case PowerState::kOn:
        if (sleepAllowed(now) && wasEmpty_ &&
            now - emptySince_ >= static_cast<Cycle>(sleepGuard_)) {
            beginSleep(now);
        }
        break;
      case PowerState::kOff:
        if (wakeRequested_)
            beginWakeup(now);
        break;
      case PowerState::kWakingUp:
        break;
    }
}

}  // namespace nord

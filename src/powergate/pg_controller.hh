/**
 * @file
 * Power-gating controller interface and the shared gated-on/off FSM.
 *
 * Every router owns one controller -- a small always-on circuit block that
 * monitors datapath emptiness and the PG/WU/IC handshake signals
 * (Sections 3.1 and 4.3) and drives the sleep signal. The controller is
 * ticked after routers and NIs each cycle, so wakeup requests raised during
 * the current cycle are seen the same cycle, while a state change becomes
 * visible to neighbors at the next cycle (one cycle of signal propagation).
 */

#ifndef NORD_POWERGATE_PG_CONTROLLER_HH
#define NORD_POWERGATE_PG_CONTROLLER_HH

#include <functional>
#include <string>
#include <utility>

#include "common/state_annotations.hh"
#include "common/types.hh"
#include "network/noc_config.hh"
#include "sim/clocked.hh"

namespace nord {

class Router;
class StateSerializer;
struct ActivityCounters;

/**
 * Base power-gating controller: holds the power-state FSM, residency
 * counters and wakeup bookkeeping. Subclasses implement the sleep and
 * wake policies.
 */
class PgController : public Clocked
{
  public:
    /**
     * Observer of power-state transitions (InvariantAuditor sweeps on
     * every transition). Arguments: cycle, old state, new state.
     */
    using TransitionListener =
        std::function<void(Cycle, PowerState, PowerState)>;

    PgController(Router &router, const NocConfig &config,
                 ActivityCounters &counters);

    /** Current power state of the controlled router. */
    PowerState state() const { return state_; }

    /** PG handshake signal: asserted whenever the router is not fully on. */
    bool pgAsserted() const { return state_ != PowerState::kOn; }

    /** A wakeup request is latched but not yet served. */
    bool wakeRequestPending() const { return wakeRequested_; }

    /** Install the transition observer (one per controller). */
    void setTransitionListener(TransitionListener listener)
    {
        listener_ = std::move(listener);
    }

    /**
     * Fault injection (testing only): force the state to Off regardless of
     * what the policy would decide. Unlike a raw state write, this goes
     * through the controller's transition path -- the listener fires, the
     * sleep counter advances and the router's sleep hook runs when its
     * drain precondition holds -- so neighbors and the auditor observe a
     * coherent (if premature) transition. Forcing off a non-empty router
     * still models the "buggy sleep policy" the auditor must flag.
     */
    void injectForcedOff(Cycle now);

    /**
     * Fault injection: the controller's wakeup command input is stuck
     * until cycle @p until -- wakeup attempts are lost. Models both a
     * stuck-at-off controller and a lost WU signal.
     */
    void injectWakeupSuppression(Cycle until)
    {
        suppressWakeUntil_ = until;
    }

    /** True while an injected fault is eating wakeup commands. */
    bool wakeupSuppressed(Cycle now) const
    {
        return now < suppressWakeUntil_;
    }

    /**
     * Permanently fail this router. From now on deadPolicy() replaces the
     * normal policy: NoRD demotes the router to always-gated (its node
     * falls back to the bypass ring); baselines pin it on and its input
     * stage eats new packets.
     */
    void markDead(Cycle now);

    /** True once markDead() was called. */
    bool dead() const { return dead_; }

    /** Times the wakeup watchdog had to force a wakeup. */
    std::uint64_t watchdogWakes() const { return watchdogWakes_; }

    /**
     * Wakeup (WU) request from a neighbor's allocation stage or the local
     * NI. Ignored while already on or waking.
     */
    virtual void requestWakeup(Cycle now);

    /** Residency accounting plus the subclass policy. */
    void tick(Cycle now) override;

    std::string name() const override;

    /** Controllers are always-on hardware: never skipped. */
    const char *kindName() const override { return "controller"; }

    /**
     * Checkpoint hook: the power FSM and wakeup bookkeeping. Subclasses
     * with policy state (NordController's sliding window) extend it.
     */
    virtual void serializeState(StateSerializer &s);

    /**
     * Shard-safety contract: the sleep signal into the router plus the
     * emptiness observation it is derived from (see verify/access/).
     */
    void declareOwnership(OwnershipDeclarator &d) const override;

  protected:
    /** Policy hook, called once per cycle after residency accounting. */
    virtual void policy(Cycle now) = 0;

    /**
     * Policy replacement once the router is dead. The default ("fail
     * active") pins the router on: a failed router cannot be trusted to
     * execute the wakeup handshake on demand, so baselines keep it
     * powered and discard what routes into it. NordController overrides
     * this with "fail gated".
     */
    virtual void deadPolicy(Cycle now);

    /**
     * Issue the wakeup command through the (possibly faulty) command
     * path: lost while suppressed, refused once dead. Returns whether the
     * ramp actually started.
     */
    bool tryBeginWakeup(Cycle now);

    /**
     * True when the router may be gated off this cycle: datapath empty,
     * no incoming (IC) flits in flight, no pending wakeup request.
     */
    bool sleepAllowed(Cycle now) const;

    /** Assert the sleep signal: transition On -> Off. */
    void beginSleep(Cycle now);

    /** De-assert the sleep signal: transition Off -> WakingUp. */
    void beginWakeup(Cycle now);

    /** Notify the transition listener (if any). */
    void notifyTransition(Cycle now, PowerState from, PowerState to);

    Router &router_;
    const NocConfig &config_;
    ActivityCounters &counters_;

    PowerState state_ = PowerState::kOn;
    NORD_STATE_EXCLUDE(config, "transition callback wired by NocSystem")
    TransitionListener listener_;
    bool wakeRequested_ = false;
    Cycle wakeDone_ = kNeverCycle;   ///< cycle the Vdd ramp completes
    Cycle emptySince_ = 0;           ///< first cycle of the current empty run
    bool wasEmpty_ = false;

    bool dead_ = false;              ///< permanently failed router
    Cycle suppressWakeUntil_ = 0;    ///< wakeup commands lost before this
    Cycle wakePendingSince_ = kNeverCycle;  ///< first cycle of the current
                                            ///< unserved wakeup request
    std::uint64_t watchdogWakes_ = 0;
};

/** Always-on controller for the No_PG baseline. */
class NoPgController : public PgController
{
  public:
    using PgController::PgController;
    void requestWakeup(Cycle now) override;

  protected:
    void policy(Cycle) override {}
};

/**
 * Conventional power-gating (Conv_PG / Conv_PG_OPT, Section 3.1).
 *
 * Gates off as soon as the router datapath is empty (after @p sleepGuard
 * consecutive empty cycles for the OPT variant) and wakes on a WU request
 * from a neighbor's pipeline or the local NI.
 */
class ConvPgController : public PgController
{
  public:
    /**
     * @param sleepGuard consecutive empty cycles required before gating
     *        (0 for Conv_PG, convOptSleepGuard for Conv_PG_OPT)
     */
    ConvPgController(Router &router, const NocConfig &config,
                     ActivityCounters &counters, int sleepGuard);

  protected:
    void policy(Cycle now) override;

  private:
    int sleepGuard_;
};

}  // namespace nord

#endif  // NORD_POWERGATE_PG_CONTROLLER_HH

/**
 * @file
 * Area model implementation.
 *
 * Unit constants (normalized gate equivalents per bit):
 *   SRAM cell 1.0, transparent latch 0.9, 2:1 mux 0.3,
 *   crossbar crosspoint 0.08.
 * Control blocks are lumped per port / per VC. With the Table 1
 * configuration this yields a NoRD bypass overhead of ~3% over a router
 * that already pays for power-gating switches, matching Section 6.8.
 */

#include "power/area_model.hh"

namespace nord {

namespace {
constexpr double kSramCell = 1.0;
constexpr double kLatchPerBit = 0.9;  ///< transparent latch, < a full FF
constexpr double kMuxPerBit = 0.3;
constexpr double kXpointPerBit = 0.08;
constexpr double kAllocLogicPerVc = 220.0;
constexpr double kRouteLogicPerPort = 350.0;
constexpr double kClockTreePerPort = 260.0;
constexpr double kPgSwitchFraction = 0.08;   ///< of the gated area
constexpr double kBypassCtrl = 130.0;        ///< always-on forwarding ctrl
}  // namespace

AreaModel::AreaModel(const NocConfig &config, int flitBits)
    : config_(config), flitBits_(flitBits)
{
}

double
AreaModel::bufferArea() const
{
    return static_cast<double>(kNumPorts) * config_.numVcs *
           config_.bufferDepth * flitBits_ * kSramCell;
}

double
AreaModel::controlArea() const
{
    return static_cast<double>(kNumPorts) * config_.numVcs *
               kAllocLogicPerVc +
           static_cast<double>(kNumPorts) *
               (kRouteLogicPerPort + kClockTreePerPort);
}

double
AreaModel::crossbarArea() const
{
    return static_cast<double>(kNumPorts) * kNumPorts * flitBits_ *
           kXpointPerBit;
}

double
AreaModel::baseRouterArea() const
{
    return bufferArea() + controlArea() + crossbarArea();
}

double
AreaModel::pgSwitchArea() const
{
    return baseRouterArea() * kPgSwitchFraction;
}

double
AreaModel::nordBypassArea() const
{
    // One latch slot per VC, the ejection-side demux and injection-side
    // mux (Figure 4c), and the always-on forwarding control.
    const double latches = static_cast<double>(config_.numVcs) *
                           flitBits_ * kLatchPerBit;
    const double muxes = 2.0 * flitBits_ * kMuxPerBit;
    return latches + muxes + kBypassCtrl;
}

double
AreaModel::totalArea(PgDesign design) const
{
    double area = baseRouterArea();
    if (design != PgDesign::kNoPg)
        area += pgSwitchArea();
    if (design == PgDesign::kNord)
        area += nordBypassArea();
    return area;
}

double
AreaModel::overheadVs(PgDesign design, PgDesign baseline) const
{
    return totalArea(design) / totalArea(baseline) - 1.0;
}

}  // namespace nord

/**
 * @file
 * Router / link / NI-bypass power model and energy accounting.
 *
 * Per-event dynamic energies and per-component static powers in the style
 * of Orion 2.0, converted to Joules from the counters in NetworkStats.
 * Absolute magnitudes are calibrated to the paper's anchors (see
 * tech_params.hh); relative comparisons across the four designs are the
 * quantity of interest.
 */

#ifndef NORD_POWER_POWER_MODEL_HH
#define NORD_POWER_POWER_MODEL_HH

#include "common/types.hh"
#include "network/noc_config.hh"
#include "power/tech_params.hh"
#include "stats/network_stats.hh"

namespace nord {

/**
 * Energy totals for one simulation, in Joules (Figure 10's categories).
 */
struct EnergyBreakdown
{
    double routerStatic = 0.0;   ///< leakage of routers (on + waking +
                                 ///< always-on residue while off)
    double routerDynamic = 0.0;  ///< switching energy incl. NI bypass
    double linkStatic = 0.0;
    double linkDynamic = 0.0;
    double pgOverhead = 0.0;     ///< sleep-signal distribution + wakeup

    double total() const
    {
        return routerStatic + routerDynamic + linkStatic + linkDynamic +
               pgOverhead;
    }

    /** Average power in watts over @p cycles at @p cycleTime seconds. */
    double averagePowerW(Cycle cycles, double cycleTime) const
    {
        if (cycles == 0)
            return 0.0;
        return total() / (static_cast<double>(cycles) * cycleTime);
    }
};

/**
 * The power model proper.
 */
class PowerModel
{
  public:
    explicit PowerModel(const TechParams &tech = TechParams::paperDefault());

    // --- Static power (W) --------------------------------------------------
    /** Full router leakage (buffers + VA + SA + crossbar + clock). */
    double routerStaticPower() const;

    /**
     * Leakage that survives gating: the PG controller (all designs) plus
     * the NI bypass latches/muxes and output latch (NoRD).
     */
    double gatedResidualPower(PgDesign design) const;

    /** Per-link leakage (links are never gated in this study). */
    double linkStaticPower() const;

    // Static component shares of routerStaticPower() (Figure 1b):
    static constexpr double kBufferStaticShare = 0.55;
    static constexpr double kVaStaticShare = 0.18;
    static constexpr double kSaStaticShare = 0.05;
    static constexpr double kXbarStaticShare = 0.13;
    static constexpr double kClockStaticShare = 0.09;

    // --- Dynamic energy (J per event) ---------------------------------------
    double bufferWriteEnergy() const;
    double bufferReadEnergy() const;
    double vcAllocEnergy() const;
    double swAllocEnergy() const;
    double xbarEnergy() const;
    double linkTraversalEnergy() const;
    double bypassLatchEnergy() const;    ///< NI bypass latch write
    double bypassForwardEnergy() const;  ///< NI demux/mux + re-drive

    /** Dynamic energy of one flit-hop through a full router (no link). */
    double routerHopEnergy() const;

    // --- Power gating --------------------------------------------------------
    /**
     * Energy overhead of one sleep/wake round trip: distributing the
     * sleep signal and restoring virtual Vdd. Defined so the breakeven
     * time is @p betCycles cycles of full router leakage.
     */
    double wakeupOverheadEnergy(int betCycles) const;

    /** Breakeven time implied by an overhead of @p overheadJ. */
    double breakEvenCycles(double overheadJ) const;

    /**
     * Reference activity (router flit-hops per cycle) at which the
     * Figure 1 static/dynamic shares are evaluated.
     */
    static constexpr double kReferenceActivity = 0.84;

    /** Static share of router power at the reference activity (Fig. 1a). */
    double staticShareAtReference() const;

    // --- Energy accounting ----------------------------------------------------
    /**
     * Convert simulation counters to Joules.
     *
     * @param stats the finished run's statistics
     * @param cycles simulated cycles
     * @param numLinks number of (unidirectional) mesh links
     * @param design which design ran (selects the gated residual and
     *        whether off-cycles leak)
     */
    EnergyBreakdown compute(const NetworkStats &stats, Cycle cycles,
                            int numLinks, PgDesign design,
                            int betCycles = 10) const;

    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
};

}  // namespace nord

#endif  // NORD_POWER_POWER_MODEL_HH

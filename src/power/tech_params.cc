/**
 * @file
 * Technology scaling tables.
 */

#include "power/tech_params.hh"

namespace nord {

const char *
techNodeName(TechNode node)
{
    switch (node) {
      case TechNode::k65nm: return "65nm";
      case TechNode::k45nm: return "45nm";
      case TechNode::k32nm: return "32nm";
    }
    return "?";
}

TechParams
TechParams::paperDefault()
{
    return TechParams{TechNode::k45nm, 1.1, 3.0};
}

double
TechParams::capacitanceRatio() const
{
    // Effective switched capacitance shrinks with feature size.
    switch (node) {
      case TechNode::k65nm: return 1.0 / 0.55;
      case TechNode::k45nm: return 1.0;
      case TechNode::k32nm: return 0.35 / 0.55;
    }
    return 1.0;
}

double
TechParams::staticAnchorWatts() const
{
    // Calibrated so the static share of router power at the reference
    // activity hits the paper's 17.9% / 35.4% / 47.7% at each node's
    // anchor voltage (see Figure 1a).
    switch (node) {
      case TechNode::k65nm: return 0.127;
      case TechNode::k45nm: return 0.150;
      case TechNode::k32nm: return 0.129;
    }
    return 0.150;
}

double
TechParams::anchorVoltage() const
{
    switch (node) {
      case TechNode::k65nm: return 1.2;
      case TechNode::k45nm: return 1.1;
      case TechNode::k32nm: return 1.0;
    }
    return 1.1;
}

double
TechParams::staticScale() const
{
    const double anchor45 = 0.150;
    return (staticAnchorWatts() / anchor45) * (voltage / anchorVoltage());
}

double
TechParams::dynamicScale() const
{
    const double v = voltage / 1.1;
    return capacitanceRatio() * v * v;
}

}  // namespace nord

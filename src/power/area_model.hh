/**
 * @file
 * Router area model (Section 6.8).
 *
 * Component areas are expressed in normalized gate-equivalent units at
 * 45 nm: SRAM buffer cells, allocator/control logic, the crossbar, the
 * power-gating sleep switches plus sleep-signal distribution, and NoRD's
 * bypass hardware (per-VC latches, the ejection demux and injection mux,
 * and the always-on forwarding control). The paper reports the NoRD
 * additions at 3.1% over Conv_PG_OPT.
 */

#ifndef NORD_POWER_AREA_MODEL_HH
#define NORD_POWER_AREA_MODEL_HH

#include "common/types.hh"
#include "network/noc_config.hh"

namespace nord {

/**
 * Per-router area accounting (normalized units).
 */
class AreaModel
{
  public:
    /**
     * @param config network configuration (ports, VCs, buffer depth)
     * @param flitBits link / flit width in bits (Table 1: 128)
     */
    explicit AreaModel(const NocConfig &config, int flitBits = 128);

    /** Input buffer SRAM area. */
    double bufferArea() const;

    /** Allocators, routing logic, and clocking. */
    double controlArea() const;

    /** Crossbar area. */
    double crossbarArea() const;

    /** Baseline router area (no power-gating hardware). */
    double baseRouterArea() const;

    /** Sleep switches + sleep-signal distribution (any gated design). */
    double pgSwitchArea() const;

    /** NoRD: bypass latches, demux/mux, forwarding control. */
    double nordBypassArea() const;

    /** Total router area for a given design. */
    double totalArea(PgDesign design) const;

    /** Area overhead of @p design relative to @p baseline (e.g. 0.031). */
    double overheadVs(PgDesign design, PgDesign baseline) const;

  private:
    const NocConfig &config_;
    int flitBits_;
};

}  // namespace nord

#endif  // NORD_POWER_AREA_MODEL_HH

/**
 * @file
 * Power model implementation.
 *
 * Base (45 nm, 1.1 V) per-event energies, picojoules:
 *   buffer write 30, buffer read 22, VA 6, SA 4, crossbar 45
 *   (router hop total 107), link traversal 30,
 *   NI bypass latch 10, NI bypass forward 12.
 * The bypass hop (latch + forward + link = 52 pJ) is markedly cheaper
 * than a full router hop (137 pJ incl. link), matching the paper's
 * "reduced per hop latency [and energy] of the bypass path".
 */

#include "power/power_model.hh"

namespace nord {

namespace {
constexpr double kPj = 1e-12;

constexpr double kBufferWritePj = 30.0;
constexpr double kBufferReadPj = 22.0;
constexpr double kVcAllocPj = 6.0;
constexpr double kSwAllocPj = 4.0;
constexpr double kXbarPj = 45.0;
constexpr double kLinkPj = 30.0;
constexpr double kBypassLatchPj = 10.0;
constexpr double kBypassForwardPj = 12.0;

/** Per-link leakage at the 45 nm / 1.1 V anchor (W). */
constexpr double kLinkStaticAnchorW = 0.010;

/** Residual (non-gated) fraction of router leakage. */
constexpr double kControllerResidual = 0.015;  ///< PG controller alone
constexpr double kNordResidual = 0.040;        ///< + bypass latches/muxes
}  // namespace

PowerModel::PowerModel(const TechParams &tech) : tech_(tech) {}

double
PowerModel::routerStaticPower() const
{
    return 0.150 * tech_.staticScale();
}

double
PowerModel::gatedResidualPower(PgDesign design) const
{
    const double frac = design == PgDesign::kNord ? kNordResidual
                                                  : kControllerResidual;
    return routerStaticPower() * frac;
}

double
PowerModel::linkStaticPower() const
{
    return kLinkStaticAnchorW * tech_.staticScale();
}

double
PowerModel::bufferWriteEnergy() const
{
    return kBufferWritePj * kPj * tech_.dynamicScale();
}

double
PowerModel::bufferReadEnergy() const
{
    return kBufferReadPj * kPj * tech_.dynamicScale();
}

double
PowerModel::vcAllocEnergy() const
{
    return kVcAllocPj * kPj * tech_.dynamicScale();
}

double
PowerModel::swAllocEnergy() const
{
    return kSwAllocPj * kPj * tech_.dynamicScale();
}

double
PowerModel::xbarEnergy() const
{
    return kXbarPj * kPj * tech_.dynamicScale();
}

double
PowerModel::linkTraversalEnergy() const
{
    return kLinkPj * kPj * tech_.dynamicScale();
}

double
PowerModel::bypassLatchEnergy() const
{
    return kBypassLatchPj * kPj * tech_.dynamicScale();
}

double
PowerModel::bypassForwardEnergy() const
{
    return kBypassForwardPj * kPj * tech_.dynamicScale();
}

double
PowerModel::routerHopEnergy() const
{
    return bufferWriteEnergy() + bufferReadEnergy() + vcAllocEnergy() +
           swAllocEnergy() + xbarEnergy();
}

double
PowerModel::wakeupOverheadEnergy(int betCycles) const
{
    return static_cast<double>(betCycles) * routerStaticPower() *
           tech_.cycleTime();
}

double
PowerModel::breakEvenCycles(double overheadJ) const
{
    return overheadJ / (routerStaticPower() * tech_.cycleTime());
}

double
PowerModel::staticShareAtReference() const
{
    const double staticW = routerStaticPower();
    const double dynamicW = kReferenceActivity * routerHopEnergy() /
                            tech_.cycleTime();
    return staticW / (staticW + dynamicW);
}

EnergyBreakdown
PowerModel::compute(const NetworkStats &stats, Cycle cycles, int numLinks,
                    PgDesign design, int betCycles) const
{
    const ActivityCounters t = stats.totals();
    const double tc = tech_.cycleTime();

    EnergyBreakdown e;
    // Leakage while on or ramping is full; while gated only the always-on
    // residue (controller, and for NoRD the bypass datapath) leaks.
    e.routerStatic =
        (static_cast<double>(t.onCycles) +
         static_cast<double>(t.wakingCycles)) * routerStaticPower() * tc +
        static_cast<double>(t.offCycles) * gatedResidualPower(design) * tc;

    e.routerDynamic =
        static_cast<double>(t.bufferWrites) * bufferWriteEnergy() +
        static_cast<double>(t.bufferReads) * bufferReadEnergy() +
        static_cast<double>(t.vcAllocs) * vcAllocEnergy() +
        static_cast<double>(t.swAllocs) * swAllocEnergy() +
        static_cast<double>(t.xbarTraversals) * xbarEnergy() +
        static_cast<double>(t.bypassLatchWrites) * bypassLatchEnergy() +
        static_cast<double>(t.bypassForwards) * bypassForwardEnergy();

    e.linkDynamic =
        static_cast<double>(t.linkTraversals) * linkTraversalEnergy();
    e.linkStatic = static_cast<double>(numLinks) * linkStaticPower() *
                   static_cast<double>(cycles) * tc;

    e.pgOverhead = static_cast<double>(t.wakeups) *
                   wakeupOverheadEnergy(betCycles);
    return e;
}

}  // namespace nord

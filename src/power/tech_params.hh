/**
 * @file
 * Technology scaling parameters (Section 2.1, Figure 1).
 *
 * The model follows Orion 2.0's structure -- per-component static power
 * plus per-event dynamic energy -- with scaling anchors calibrated to the
 * paper's published aggregates:
 *   - router static share of 17.9% at 65 nm / 1.2 V,
 *     35.4% at 45 nm / 1.1 V and 47.7% at 32 nm / 1.0 V at the PARSEC
 *     reference activity;
 *   - at 45 nm / 1.0 V, dynamic = 62% of router power and buffers = 55%
 *     of the static power (Figure 1b);
 *   - breakeven time ~= 10 cycles and wakeup latency 12 cycles at 3 GHz.
 *
 * Static power scales ~ V (subthreshold leakage current at fixed
 * temperature), dynamic energy ~ C(node) * V^2.
 */

#ifndef NORD_POWER_TECH_PARAMS_HH
#define NORD_POWER_TECH_PARAMS_HH

namespace nord {

/** Manufacturing process node. */
enum class TechNode
{
    k65nm,
    k45nm,
    k32nm,
};

/** Name string ("65nm", ...). */
const char *techNodeName(TechNode node);

/**
 * One (process node, operating voltage, frequency) operating point.
 */
struct TechParams
{
    TechNode node = TechNode::k45nm;
    double voltage = 1.1;        ///< V
    double frequencyGHz = 3.0;   ///< router clock

    /** The paper's operating point: 45 nm, 1.1 V, 3 GHz. */
    static TechParams paperDefault();

    /** Clock period in seconds. */
    double cycleTime() const { return 1e-9 / frequencyGHz; }

    /**
     * Static-power scale factor relative to the 45 nm / 1.1 V anchor.
     * Captures both the per-node leakage magnitude and ~V dependence.
     */
    double staticScale() const;

    /**
     * Dynamic-energy scale factor relative to the 45 nm / 1.1 V anchor
     * (effective capacitance ratio times (V/1.1)^2).
     */
    double dynamicScale() const;

    /** Per-node effective-capacitance ratio relative to 45 nm. */
    double capacitanceRatio() const;

    /** Per-node leakage anchor (W per router at the node's paper V). */
    double staticAnchorWatts() const;

    /** The voltage each node is paired with in the paper's headline. */
    double anchorVoltage() const;
};

}  // namespace nord

#endif  // NORD_POWER_TECH_PARAMS_HH

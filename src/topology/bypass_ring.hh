/**
 * @file
 * Chip-level Bypass Ring construction (Section 4.2 of the paper).
 *
 * One input port (the Bypass Inport) and one output port (the Bypass
 * Outport) are chosen at every router such that, collectively, the
 * (inport, outport) pairs form a unidirectional Hamiltonian ring connecting
 * all nodes. Even when every router is gated off, packets can traverse the
 * ring through the NI bypass datapaths, so all NIs stay connected.
 */

#ifndef NORD_TOPOLOGY_BYPASS_RING_HH
#define NORD_TOPOLOGY_BYPASS_RING_HH

#include <vector>

#include "common/types.hh"
#include "topology/mesh.hh"

namespace nord {

/**
 * A unidirectional Hamiltonian cycle over a 2-D mesh.
 *
 * Construction (for an even number of rows): head east along row 0,
 * serpentine through rows 1..rows-1 between columns 1..cols-1, then return
 * north along column 0. This touches every node exactly once using only
 * mesh links.
 */
class BypassRing
{
  public:
    /** Build the canonical ring for @p mesh. Rows must be even. */
    explicit BypassRing(const MeshTopology &mesh);

    /** Build a ring from an explicit node order (must be a valid cycle). */
    BypassRing(const MeshTopology &mesh, std::vector<NodeId> order);

    /** Next node downstream on the ring. */
    NodeId successor(NodeId node) const { return succ_[node]; }

    /** Previous node upstream on the ring. */
    NodeId predecessor(NodeId node) const { return pred_[node]; }

    /**
     * The Bypass Outport of @p node: the mesh output direction that leads
     * to its ring successor.
     */
    Direction bypassOutport(NodeId node) const { return outport_[node]; }

    /**
     * The Bypass Inport of @p node: the mesh input direction on which ring
     * traffic from its predecessor arrives.
     */
    Direction bypassInport(NodeId node) const { return inport_[node]; }

    /** Ring hop distance from @p from to @p to (0 when equal). */
    int ringDistance(NodeId from, NodeId to) const;

    /** Position of @p node along the ring, starting from node 0. */
    int ringPosition(NodeId node) const { return pos_[node]; }

    /** The node order of the cycle starting at node 0. */
    const std::vector<NodeId> &order() const { return order_; }

    /**
     * True if the directed ring edge from @p node crosses the dateline
     * (the edge leaving the last node in the order back to the first).
     * Escape VC selection uses this to break the ring's cyclic channel
     * dependence with two VCs.
     */
    bool crossesDateline(NodeId node) const
    {
        return pos_[node] == static_cast<int>(order_.size()) - 1;
    }

  private:
    void buildTables(const MeshTopology &mesh);

    std::vector<NodeId> order_;
    std::vector<NodeId> succ_;
    std::vector<NodeId> pred_;
    std::vector<Direction> outport_;
    std::vector<Direction> inport_;
    std::vector<int> pos_;
};

}  // namespace nord

#endif  // NORD_TOPOLOGY_BYPASS_RING_HH

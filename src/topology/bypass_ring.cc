/**
 * @file
 * Bypass Ring construction.
 */

#include "topology/bypass_ring.hh"

#include <algorithm>

#include "common/log.hh"

namespace nord {

namespace {

/**
 * Canonical Hamiltonian cycle for a mesh with an even number of rows:
 * east along row 0 (cols 0..C-1), serpentine rows 1..R-1 between columns
 * 1 and C-1, then north up column 0.
 */
std::vector<NodeId>
canonicalCycle(const MeshTopology &mesh)
{
    const int rows = mesh.rows();
    const int cols = mesh.cols();
    if (rows % 2 != 0) {
        NORD_FATAL("canonical bypass ring needs an even row count, got %d",
                   rows);
    }
    std::vector<NodeId> order;
    order.reserve(mesh.numNodes());
    // Row 0, west to east.
    for (int c = 0; c < cols; ++c)
        order.push_back(mesh.nodeAt(0, c));
    // Serpentine rows 1..rows-1 over columns 1..cols-1.
    for (int r = 1; r < rows; ++r) {
        if (r % 2 == 1) {
            for (int c = cols - 1; c >= 1; --c)
                order.push_back(mesh.nodeAt(r, c));
        } else {
            for (int c = 1; c <= cols - 1; ++c)
                order.push_back(mesh.nodeAt(r, c));
        }
    }
    // Column 0, south to north (rows rows-1 .. 1).
    for (int r = rows - 1; r >= 1; --r)
        order.push_back(mesh.nodeAt(r, 0));
    return order;
}

}  // namespace

BypassRing::BypassRing(const MeshTopology &mesh)
    : BypassRing(mesh, canonicalCycle(mesh))
{
}

BypassRing::BypassRing(const MeshTopology &mesh, std::vector<NodeId> order)
    : order_(std::move(order))
{
    const int n = mesh.numNodes();
    if (static_cast<int>(order_.size()) != n)
        NORD_FATAL("ring order has %zu nodes, mesh has %d",
                   order_.size(), n);
    succ_.assign(n, kInvalidNode);
    pred_.assign(n, kInvalidNode);
    outport_.assign(n, Direction::kLocal);
    inport_.assign(n, Direction::kLocal);
    pos_.assign(n, -1);

    for (int i = 0; i < n; ++i) {
        NodeId cur = order_[i];
        NodeId nxt = order_[(i + 1) % n];
        if (!mesh.valid(cur) || pos_[cur] != -1)
            NORD_FATAL("ring order is not a permutation of the mesh nodes");
        if (!mesh.adjacent(cur, nxt))
            NORD_FATAL("ring edge %d -> %d is not a mesh link", cur, nxt);
        pos_[cur] = i;
        succ_[cur] = nxt;
        pred_[nxt] = cur;
        outport_[cur] = mesh.directionTo(cur, nxt);
    }
    for (int i = 0; i < n; ++i) {
        NodeId cur = order_[i];
        inport_[cur] = opposite(mesh.directionTo(pred_[cur], cur));
    }
}

int
BypassRing::ringDistance(NodeId from, NodeId to) const
{
    const int n = static_cast<int>(order_.size());
    int d = pos_[to] - pos_[from];
    if (d < 0)
        d += n;
    return d;
}

}  // namespace nord

/**
 * @file
 * Floyd-Warshall router-criticality analysis.
 */

#include "topology/criticality.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace nord {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

CriticalityAnalyzer::CriticalityAnalyzer(const MeshTopology &mesh,
                                         const BypassRing &ring,
                                         int onRouterHopCycles,
                                         int offRouterHopCycles)
    : mesh_(mesh), ring_(ring),
      onHopCycles_(onRouterHopCycles),
      offHopCycles_(offRouterHopCycles)
{
}

void
CriticalityAnalyzer::shortestPaths(const std::vector<bool> &poweredOn,
                                   std::vector<double> &distHops,
                                   std::vector<double> &distCycles) const
{
    const int n = mesh_.numNodes();
    NORD_ASSERT(static_cast<int>(poweredOn.size()) == n,
                "poweredOn size %zu != %d", poweredOn.size(), n);
    distHops.assign(static_cast<size_t>(n) * n, kInf);
    distCycles.assign(static_cast<size_t>(n) * n, kInf);
    for (int i = 0; i < n; ++i) {
        distHops[static_cast<size_t>(i) * n + i] = 0.0;
        distCycles[static_cast<size_t>(i) * n + i] = 0.0;
    }

    // Edge x -> y exists when x can hand a flit to y. Cost is charged for
    // traversing y (the hop's pipeline) -- consistent for whole paths since
    // the source NI injects directly into x's pipeline.
    auto addEdge = [&](NodeId x, NodeId y) {
        double hopCost = poweredOn[y] ? onHopCycles_ : offHopCycles_;
        distHops[static_cast<size_t>(x) * n + y] = 1.0;
        distCycles[static_cast<size_t>(x) * n + y] = hopCost;
    };

    for (NodeId x = 0; x < n; ++x) {
        if (!poweredOn[x]) {
            // Gated-off: only the ring edge out of the NI bypass.
            addEdge(x, ring_.successor(x));
            continue;
        }
        for (int d = 0; d < kNumMeshDirs; ++d) {
            NodeId y = mesh_.neighbor(x, indexDir(d));
            if (y == kInvalidNode)
                continue;
            if (poweredOn[y] || ring_.predecessor(y) == x) {
                // Into an on router: always allowed. Into an off router:
                // only via its Bypass Inport (we must be its ring
                // predecessor).
                addEdge(x, y);
            }
        }
    }

    // Floyd-Warshall on cycles; hops follow the same relaxations.
    for (int k = 0; k < n; ++k) {
        for (int i = 0; i < n; ++i) {
            const size_t ik = static_cast<size_t>(i) * n + k;
            if (distCycles[ik] == kInf)
                continue;
            for (int j = 0; j < n; ++j) {
                const size_t kj = static_cast<size_t>(k) * n + j;
                const size_t ij = static_cast<size_t>(i) * n + j;
                double cand = distCycles[ik] + distCycles[kj];
                if (cand < distCycles[ij]) {
                    distCycles[ij] = cand;
                    distHops[ij] = distHops[ik] + distHops[kj];
                }
            }
        }
    }
}

std::vector<double>
CriticalityAnalyzer::distanceMatrixCycles(
    const std::vector<bool> &poweredOn) const
{
    std::vector<double> hops;
    std::vector<double> cycles;
    shortestPaths(poweredOn, hops, cycles);
    return cycles;
}

CriticalityPoint
CriticalityAnalyzer::analyze(const std::vector<bool> &poweredOn) const
{
    const int n = mesh_.numNodes();
    std::vector<double> hops;
    std::vector<double> cycles;
    shortestPaths(poweredOn, hops, cycles);

    double sumHops = 0.0;
    double sumCycles = 0.0;
    int pairs = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const size_t ij = static_cast<size_t>(i) * n + j;
            NORD_ASSERT(cycles[ij] != kInf,
                        "network disconnected between %d and %d", i, j);
            sumHops += hops[ij];
            sumCycles += cycles[ij];
            ++pairs;
        }
    }

    CriticalityPoint pt;
    pt.numPoweredOn = static_cast<int>(
        std::count(poweredOn.begin(), poweredOn.end(), true));
    pt.avgDistanceHops = sumHops / pairs;
    pt.avgPerHopLatency = sumCycles / sumHops;
    for (NodeId x = 0; x < n; ++x) {
        if (poweredOn[x])
            pt.poweredOn.push_back(x);
    }
    return pt;
}

std::vector<CriticalityPoint>
CriticalityAnalyzer::greedySweep() const
{
    const int n = mesh_.numNodes();
    std::vector<bool> on(n, false);
    std::vector<CriticalityPoint> sweep;
    sweep.push_back(analyze(on));

    for (int k = 1; k <= n; ++k) {
        int best = -1;
        double bestDist = kInf;
        double bestLat = kInf;
        for (NodeId cand = 0; cand < n; ++cand) {
            if (on[cand])
                continue;
            on[cand] = true;
            CriticalityPoint pt = analyze(on);
            on[cand] = false;
            if (pt.avgDistanceHops < bestDist ||
                (pt.avgDistanceHops == bestDist &&
                 pt.avgPerHopLatency < bestLat)) {
                best = cand;
                bestDist = pt.avgDistanceHops;
                bestLat = pt.avgPerHopLatency;
            }
        }
        NORD_ASSERT(best >= 0, "greedy sweep found no candidate at k=%d", k);
        on[best] = true;
        sweep.push_back(analyze(on));
    }
    return sweep;
}

std::vector<NodeId>
CriticalityAnalyzer::performanceCentricSet(int count) const
{
    NORD_ASSERT(count >= 0 && count <= mesh_.numNodes(),
                "bad performance-centric count %d", count);
    auto sweep = greedySweep();
    std::vector<NodeId> set = sweep[count].poweredOn;
    std::sort(set.begin(), set.end());
    return set;
}

int
CriticalityAnalyzer::kneePoint(const std::vector<CriticalityPoint> &sweep,
                               double slackHops)
{
    NORD_ASSERT(!sweep.empty(), "empty sweep");
    // Diminishing-returns knee: the smallest k after which no single
    // additional router improves the average distance by slackHops or
    // more. For the paper's 4x4 mesh this lands at 6 routers (Fig. 6).
    for (size_t k = 0; k + 1 < sweep.size(); ++k) {
        bool flat = true;
        for (size_t j = k; j + 1 < sweep.size(); ++j) {
            if (sweep[j].avgDistanceHops - sweep[j + 1].avgDistanceHops >=
                slackHops) {
                flat = false;
                break;
            }
        }
        if (flat)
            return static_cast<int>(k);
    }
    return static_cast<int>(sweep.size()) - 1;
}

CriticalityCache &
CriticalityCache::instance()
{
    // The one whitelisted mutable static in the library: a named,
    // mutex-guarded cache (see nord-lint's whitelist).
    static CriticalityCache cache;
    return cache;
}

int
CriticalityCache::knee(const MeshTopology &mesh, const BypassRing &ring)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto key = std::make_pair(mesh.rows(), mesh.cols());
    auto it = knee_.find(key);
    if (it == knee_.end()) {
        CriticalityAnalyzer analyzer(mesh, ring);
        int knee = CriticalityAnalyzer::kneePoint(analyzer.greedySweep());
        it = knee_.emplace(key, knee).first;
    }
    return it->second;
}

const std::vector<NodeId> &
CriticalityCache::perfSet(const MeshTopology &mesh, const BypassRing &ring,
                          int count)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto key = std::make_tuple(mesh.rows(), mesh.cols(), count);
    auto it = perfSet_.find(key);
    if (it == perfSet_.end()) {
        CriticalityAnalyzer analyzer(mesh, ring);
        it = perfSet_.emplace(key,
                              analyzer.performanceCentricSet(count)).first;
    }
    return it->second;
}

const std::vector<double> &
CriticalityCache::steering(const MeshTopology &mesh, const BypassRing &ring,
                           const std::vector<NodeId> &perf)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto key = std::make_tuple(mesh.rows(), mesh.cols(),
                               static_cast<int>(perf.size()));
    auto it = steering_.find(key);
    if (it == steering_.end()) {
        CriticalityAnalyzer analyzer(mesh, ring);
        std::vector<bool> on(static_cast<size_t>(mesh.numNodes()), false);
        for (NodeId r : perf)
            on[r] = true;
        it = steering_.emplace(key,
                               analyzer.distanceMatrixCycles(on)).first;
    }
    return it->second;
}

void
CriticalityCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    knee_.clear();
    perfSet_.clear();
    steering_.clear();
}

std::size_t
CriticalityCache::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return knee_.size() + perfSet_.size() + steering_.size();
}

}  // namespace nord

/**
 * @file
 * 2-D mesh topology implementation.
 */

#include "topology/mesh.hh"

#include <cstdlib>

#include "common/log.hh"

namespace nord {

MeshTopology::MeshTopology(int rows, int cols)
    : rows_(rows), cols_(cols)
{
    if (rows < 2 || cols < 2)
        NORD_FATAL("mesh must be at least 2x2, got %dx%d", rows, cols);
}

NodeId
MeshTopology::neighbor(NodeId node, Direction d) const
{
    NORD_ASSERT(valid(node), "node %d out of range", node);
    int r = rowOf(node);
    int c = colOf(node);
    switch (d) {
      case Direction::kNorth: r -= 1; break;
      case Direction::kSouth: r += 1; break;
      case Direction::kEast: c += 1; break;
      case Direction::kWest: c -= 1; break;
      case Direction::kLocal: return kInvalidNode;
    }
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
        return kInvalidNode;
    return nodeAt(r, c);
}

Direction
MeshTopology::directionTo(NodeId from, NodeId to) const
{
    int dr = rowOf(to) - rowOf(from);
    int dc = colOf(to) - colOf(from);
    if (dr == -1 && dc == 0)
        return Direction::kNorth;
    if (dr == 1 && dc == 0)
        return Direction::kSouth;
    if (dr == 0 && dc == 1)
        return Direction::kEast;
    if (dr == 0 && dc == -1)
        return Direction::kWest;
    NORD_PANIC("nodes %d and %d are not adjacent", from, to);
}

bool
MeshTopology::adjacent(NodeId a, NodeId b) const
{
    if (!valid(a) || !valid(b))
        return false;
    int dr = std::abs(rowOf(a) - rowOf(b));
    int dc = std::abs(colOf(a) - colOf(b));
    return dr + dc == 1;
}

int
MeshTopology::manhattan(NodeId a, NodeId b) const
{
    return std::abs(rowOf(a) - rowOf(b)) + std::abs(colOf(a) - colOf(b));
}

std::vector<Direction>
MeshTopology::minimalDirections(NodeId from, NodeId to) const
{
    std::vector<Direction> dirs;
    int dr = rowOf(to) - rowOf(from);
    int dc = colOf(to) - colOf(from);
    if (dc > 0)
        dirs.push_back(Direction::kEast);
    else if (dc < 0)
        dirs.push_back(Direction::kWest);
    if (dr > 0)
        dirs.push_back(Direction::kSouth);
    else if (dr < 0)
        dirs.push_back(Direction::kNorth);
    return dirs;
}

Direction
MeshTopology::xyDirection(NodeId from, NodeId to) const
{
    int dc = colOf(to) - colOf(from);
    if (dc > 0)
        return Direction::kEast;
    if (dc < 0)
        return Direction::kWest;
    int dr = rowOf(to) - rowOf(from);
    if (dr > 0)
        return Direction::kSouth;
    if (dr < 0)
        return Direction::kNorth;
    return Direction::kLocal;
}

}  // namespace nord

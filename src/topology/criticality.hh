/**
 * @file
 * Off-line router-criticality analysis (Section 4.4 / Figure 6).
 *
 * The paper selects performance-centric routers with "a short off-line
 * program based on the Floyd-Warshall all-pair shortest path algorithm".
 * Given a set of powered-on routers, the reachability graph is:
 *
 *  - a powered-off router X contributes only its ring edge
 *    X -> ringSuccessor(X) (traffic traverses X through the NI bypass);
 *  - a powered-on router X contributes edges to every mesh neighbor Y that
 *    is powered on, plus the edge to Y when X is Y's ring predecessor
 *    (the only way into a gated-off router is its Bypass Inport).
 *
 * Hop costs model latency: a hop into a powered-on router costs the full
 * pipeline (4 stages + LT), a hop into a gated-off router costs the bypass
 * pipeline (2 stages + LT).
 */

#ifndef NORD_TOPOLOGY_CRITICALITY_HH
#define NORD_TOPOLOGY_CRITICALITY_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/state_annotations.hh"
#include "common/types.hh"
#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {

/** Result of analyzing one powered-on set. */
struct CriticalityPoint
{
    int numPoweredOn = 0;
    double avgDistanceHops = 0.0;   ///< mean node-to-node distance (hops)
    double avgPerHopLatency = 0.0;  ///< mean per-hop latency (cycles)
    std::vector<NodeId> poweredOn;  ///< the router set analyzed
};

/**
 * Analyzer producing Figure 6 and the performance-centric router set.
 */
class CriticalityAnalyzer
{
  public:
    /**
     * @param mesh the mesh topology
     * @param ring the bypass ring over that mesh
     * @param onRouterHopCycles per-hop latency through a powered-on router
     *        (default 5: 4-stage pipeline + LT)
     * @param offRouterHopCycles per-hop latency through a bypassed router
     *        (default 3: 2-cycle bypass + LT)
     */
    CriticalityAnalyzer(const MeshTopology &mesh, const BypassRing &ring,
                        int onRouterHopCycles = 5,
                        int offRouterHopCycles = 3);

    /**
     * Average node-to-node distance (hops) and per-hop latency for a given
     * powered-on set, via Floyd-Warshall over the mixed graph.
     */
    CriticalityPoint analyze(const std::vector<bool> &poweredOn) const;

    /**
     * All-pairs shortest distances in cycles over the mixed graph
     * (row-major n*n). Used as the static steering table for NoRD's
     * adaptive routing: entry [i*n+j] is the cost from i to j assuming
     * exactly @p poweredOn routers are on.
     */
    std::vector<double>
    distanceMatrixCycles(const std::vector<bool> &poweredOn) const;

    /**
     * Greedy sweep: starting from all routers off, repeatedly power on the
     * router that minimizes average node-to-node distance (per-hop latency
     * as tie-break). Returns numNodes()+1 points (k = 0 .. numNodes).
     */
    std::vector<CriticalityPoint> greedySweep() const;

    /**
     * The performance-centric router set of size @p count: the first
     * @p count routers chosen by the greedy sweep.
     */
    std::vector<NodeId> performanceCentricSet(int count) const;

    /**
     * Pick a knee point from a greedy sweep: the smallest k after which
     * no single additional router reduces the average distance by
     * @p slackHops or more (diminishing returns). The paper's 4x4
     * example lands at k = 6.
     */
    static int kneePoint(const std::vector<CriticalityPoint> &sweep,
                         double slackHops = 0.5);

  private:
    /**
     * All-pairs shortest distances in hops and in cycles.
     * dist[i*n+j] is hops, lat[i*n+j] is cycles.
     */
    void shortestPaths(const std::vector<bool> &poweredOn,
                       std::vector<double> &distHops,
                       std::vector<double> &distCycles) const;

    const MeshTopology &mesh_;
    const BypassRing &ring_;
    int onHopCycles_;
    int offHopCycles_;
};

/**
 * Process-wide cache of criticality-analysis results, keyed by mesh
 * shape. The greedy Floyd-Warshall sweep is deterministic per shape, so
 * benches and tests that construct many NocSystems share one computation.
 *
 * This replaces the anonymous function-local `static std::map` caches
 * that used to live in noc_system.cc and cdg.cc: those were unsynchronized
 * mutable statics -- data races the moment two NocSystems are built on two
 * threads (see tests/test_concurrency.cc). The cache is the one piece of
 * deliberately shared mutable state in the library; it is mutex-guarded
 * and carries a nord-lint whitelist entry telling its story.
 *
 * Returned references stay valid for the process lifetime (std::map nodes
 * are stable, entries are never erased except by clear(), which is a
 * test-only hook callers must not race with lookups).
 */
class CriticalityCache
{
  public:
    /** The process-wide instance. */
    static CriticalityCache &instance();

    /** Knee point of the greedy sweep for @p mesh's shape. */
    int knee(const MeshTopology &mesh, const BypassRing &ring);

    /** Performance-centric router set of size @p count. */
    const std::vector<NodeId> &perfSet(const MeshTopology &mesh,
                                       const BypassRing &ring, int count);

    /** NoRD steering table for a performance-centric set. */
    const std::vector<double> &steering(const MeshTopology &mesh,
                                        const BypassRing &ring,
                                        const std::vector<NodeId> &perf);

    /** Drop every cached entry (tests only; forces recomputation). */
    void clear();

    /** Cached entries across all tables (tests). */
    std::size_t entries() const;

  private:
    CriticalityCache() = default;

    NORD_STATE_EXCLUDE(config, "synchronization primitive, not state")
    mutable std::mutex mu_;
    NORD_STATE_EXCLUDE(cache, "memoized knee search; recomputed on miss")
    std::map<std::pair<int, int>, int> knee_;
    NORD_STATE_EXCLUDE(cache, "memoized perf-centric sets; recomputed on miss")
    std::map<std::tuple<int, int, int>, std::vector<NodeId>> perfSet_;
    NORD_STATE_EXCLUDE(cache, "memoized steering weights; recomputed on miss")
    std::map<std::tuple<int, int, int>, std::vector<double>> steering_;
};

}  // namespace nord

#endif  // NORD_TOPOLOGY_CRITICALITY_HH

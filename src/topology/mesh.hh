/**
 * @file
 * k-ary 2-D mesh topology helpers.
 *
 * Nodes are numbered row-major: node id = row * cols + col, with row 0 at
 * the "north" edge. Direction::kNorth decreases the row index.
 */

#ifndef NORD_TOPOLOGY_MESH_HH
#define NORD_TOPOLOGY_MESH_HH

#include <vector>

#include "common/types.hh"

namespace nord {

/**
 * Immutable description of a 2-D mesh.
 */
class MeshTopology
{
  public:
    /**
     * @param rows number of rows (must be >= 2 and even for the bypass
     *             ring construction)
     * @param cols number of columns (must be >= 2)
     */
    MeshTopology(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int numNodes() const { return rows_ * cols_; }

    /** Row of @p node. */
    int rowOf(NodeId node) const { return node / cols_; }

    /** Column of @p node. */
    int colOf(NodeId node) const { return node % cols_; }

    /** Node at (@p row, @p col). */
    NodeId nodeAt(int row, int col) const { return row * cols_ + col; }

    /** True if @p node is a valid node id. */
    bool valid(NodeId node) const
    {
        return node >= 0 && node < numNodes();
    }

    /**
     * Neighbor of @p node in mesh direction @p d, or kInvalidNode if that
     * direction leaves the mesh (or d == kLocal).
     */
    NodeId neighbor(NodeId node, Direction d) const;

    /**
     * Direction from @p from to an adjacent node @p to.
     * Panics if the nodes are not mesh neighbors.
     */
    Direction directionTo(NodeId from, NodeId to) const;

    /** True if the two nodes are mesh-adjacent. */
    bool adjacent(NodeId a, NodeId b) const;

    /** Manhattan (minimal) hop distance. */
    int manhattan(NodeId a, NodeId b) const;

    /**
     * The set of minimal (productive) mesh directions from @p from
     * towards @p to. Empty when from == to.
     */
    std::vector<Direction> minimalDirections(NodeId from, NodeId to) const;

    /**
     * The single dimension-order (XY: X first, then Y) direction from
     * @p from towards @p to, or kLocal when from == to.
     */
    Direction xyDirection(NodeId from, NodeId to) const;

  private:
    int rows_;
    int cols_;
};

}  // namespace nord

#endif  // NORD_TOPOLOGY_MESH_HH

/**
 * @file
 * Cross-component ownership / access tracker (DESIGN.md section 5.8).
 *
 * The sharded parallel kernel (ROADMAP item 1) requires that each Clocked
 * component touch only (a) its own state and (b) other components' state
 * through a small set of declared, order-audited channels. This layer makes
 * that contract machine-checked *before* anything is parallelized:
 *
 *  - every Clocked component declares its owned state domain and the
 *    channels it writes/reads on other components (declareOwnership());
 *  - the kernel, when a tracker is attached, brackets each tick() with a
 *    thread-local "who is executing" context;
 *  - the component-boundary methods (link push/deliver, credit return,
 *    wakeup and gating signals, NI injection/ejection, bypass datapath)
 *    record each cross-component access into the active tracker;
 *  - verify() flags (1) observed writes with no matching declaration --
 *    i.e. accesses that would be data races under per-shard execution --
 *    and (2) declared visibility contracts that the kernel's registration
 *    order violates (a silent off-by-one-cycle bug);
 *  - dumpDot()/dumpJson() emit the component-interaction graph.
 *
 * Tracking is observational only: it never alters simulation behavior,
 * is excluded from checkpoints, and costs a single thread-local branch
 * per boundary call when disabled.
 */

#ifndef NORD_VERIFY_ACCESS_ACCESS_TRACKER_HH
#define NORD_VERIFY_ACCESS_ACCESS_TRACKER_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nord {

class Clocked;

/**
 * Semantic label for a cross-component channel. One (from, to, kind)
 * triple identifies a channel instance in the interaction graph.
 */
enum class ChannelKind : std::int8_t {
    kFlitPush = 0,    ///< upstream pushes a flit into a FlitLink delay line
    kFlitDeliver,     ///< FlitLink delivers a flit into a router input port
    kCreditPush,      ///< downstream pushes a credit into a CreditLink
    kCreditDeliver,   ///< CreditLink delivers a credit to an output port
    kLocalInject,     ///< NI enqueues a flit at the router's local port
    kEjection,        ///< router hands a flit to the NI ejection queue
    kLocalCredit,     ///< router returns a local-port credit to the NI
    kWakeup,          ///< wakeup request raised at a PgController
    kBypassLatch,     ///< link-time claim/write of the NI bypass latch
    kBypassDrive,     ///< NI drives the gated router's bypass datapath
    kPowerSignal,     ///< controller drives router sleep/wake hooks
    kBypassControl,   ///< power FSM enables/drains the NI bypass path
    kPowerObserve,    ///< read of a power-gating FSM state signal
    kRouterObserve,   ///< read of router datapath status signals
    kNiObserve,       ///< read of NI queue/bypass status signals
    kDelivery,        ///< NI tail-delivery callback into the workload
    kInjection,       ///< workload enqueues a packet into an NI
    kFault,           ///< fault injector perturbing a component
    kAudit,           ///< invariant auditor state sweep
    kRepair,          ///< auditor kRecover repair write
};

/** Stable short name for a channel kind (used in DOT/JSON output). */
const char *channelKindName(ChannelKind k);

/** Direction of an access through a channel. */
enum class AccessMode : std::int8_t { kRead = 0, kWrite = 1 };

/**
 * When a write through a channel becomes visible to the target component,
 * relative to the kernel's one-pass-per-cycle evaluation. This is what
 * ties the declared dataflow to the registration order:
 *
 *  - kSameCycle: the target consumes the value later in the *same* kernel
 *    pass, so the writing component's kernel slot must come before the
 *    target's (e.g. link->router flit delivery, wakeup requests sampled
 *    by controllers the cycle they are raised).
 *  - kNextCycle: the target consumes the value on a *later* pass, so the
 *    target's kernel slot must come before the writer's (e.g. NI local
 *    injection processed by the router next cycle, controller sleep/wake
 *    signals observed next cycle).
 *  - kAny: due-stamped or repair channels whose timing is carried by an
 *    explicit cycle stamp; registration order is irrelevant.
 */
enum class Visibility : std::int8_t { kSameCycle = 0, kNextCycle, kAny };

/** Stable name for a visibility contract. */
const char *visibilityName(Visibility v);

class AccessTracker;

/**
 * Collector passed to Clocked::declareOwnership(). Bound to the declaring
 * component; every writes()/reads() call declares an outbound channel
 * from that component.
 */
class OwnershipDeclarator
{
  public:
    /** One-line description of the state domain this component owns. */
    void owns(const std::string &domain);

    /** Declare a write channel to @p target with visibility @p vis. */
    void writes(const Clocked *target, ChannelKind kind, Visibility vis);

    /** Declare a read channel from @p target. */
    void reads(const Clocked *target, ChannelKind kind);

    /**
     * Blanket write permission (fault injector, auditor repairs). The
     * component may write anywhere; its writes are exempt from the
     * registration-order audit (they are deliberately out-of-contract).
     */
    void writesAny();

    /** Blanket read permission (the invariant auditor's sweeps). */
    void readsAny();

  private:
    friend class AccessTracker;
    OwnershipDeclarator(AccessTracker *tracker, int componentId)
        : tracker_(tracker), componentId_(componentId)
    {}

    AccessTracker *tracker_;
    int componentId_;
};

/**
 * Records cross-component accesses observed while the kernel ticks, checks
 * them against the declared channels, and renders the interaction graph.
 *
 * Lifecycle: components are registered in kernel order (SimKernel forwards
 * its add() calls), declarations are collected once wiring is complete
 * (collectDeclarations()), then accesses accumulate during run. verify()
 * may be called at any point after collection.
 */
class AccessTracker
{
  public:
    /** Per-component node in the interaction graph. */
    struct Component
    {
        const Clocked *object = nullptr;
        std::string name;
        int order = 0;          ///< kernel registration slot
        std::string domain;     ///< declared owned-state description
        bool wildcardWrite = false;
        bool wildcardRead = false;
    };

    /** Aggregated observations for one (from, to, kind, mode) edge. */
    struct Edge
    {
        int from = -1;          ///< attributed component (domain semantics)
        int to = -1;
        ChannelKind kind = ChannelKind::kFlitPush;
        AccessMode mode = AccessMode::kRead;
        std::uint64_t count = 0;
        Cycle firstCycle = 0;
        Cycle lastCycle = 0;
        int minRootOrder = 0;   ///< earliest kernel slot that performed it
        int maxRootOrder = 0;   ///< latest kernel slot that performed it
        bool declared = false;  ///< matched a declaration (or wildcard)
        bool viaWildcard = false;
        Visibility visibility = Visibility::kAny;  ///< declared contract
    };

    /** One contract violation found by verify(). */
    struct Violation
    {
        enum class Type { kUndeclaredWrite, kOrderViolation };
        Type type = Type::kUndeclaredWrite;
        std::string what;
    };

    AccessTracker() = default;
    ~AccessTracker();

    AccessTracker(const AccessTracker &) = delete;
    AccessTracker &operator=(const AccessTracker &) = delete;

    /** Register a component; call order must mirror kernel order. */
    void registerComponent(const Clocked *c);

    /**
     * Invoke declareOwnership() on every registered component. Call after
     * all wiring (neighbors, links, NIs) is complete.
     */
    void collectDeclarations();

    /**
     * Declare a channel on behalf of @p from, for edges a component cannot
     * name itself (e.g. the NI -> workload-ticker delivery callback wired
     * through NocSystem).
     */
    void declareChannel(const Clocked *from, const Clocked *to,
                        ChannelKind kind, AccessMode mode, Visibility vis);

    /** Record one access; called from the instrumentation helpers. */
    void record(const Clocked *target, ChannelKind kind, AccessMode mode);

    // -- Tick context (used by SimKernel and the handoff helper). --------

    /** Enter a component's tick: sets the executing/root context. */
    void beginTick(const Clocked *c, Cycle now);

    /** Leave the current tick context. */
    void endTick();

    // -- Results. --------------------------------------------------------

    /**
     * Check observations against declarations.
     *
     * Returns undeclared cross-component *writes* (reads are reported via
     * undeclaredReads() as advisory) and registration-order violations:
     * for each declared kSameCycle write channel every observed rooting
     * slot must precede the target's slot; for kNextCycle it must follow.
     */
    std::vector<Violation> verify() const;

    /** Advisory: observed read edges with no matching declaration. */
    std::vector<std::string> undeclaredReads() const;

    const std::vector<Component> &components() const { return components_; }

    /** Aggregated observed edges, ordered by (from, to, kind, mode). */
    std::vector<Edge> edges() const;

    /** Count of observed edges matching (fromName, toName, kind). */
    std::uint64_t edgeCount(const std::string &fromName,
                            const std::string &toName,
                            ChannelKind kind) const;

    /** Total recorded accesses. */
    std::uint64_t totalAccesses() const { return totalAccesses_; }

    /** Graphviz rendering of the interaction graph. */
    std::string dot() const;

    /** JSON rendering (components + edges + violations). */
    std::string json() const;

    /** Convenience: write dot()/json() to a stream. */
    void dumpDot(std::FILE *out) const;
    void dumpJson(std::FILE *out) const;

  private:
    friend class OwnershipDeclarator;

    struct DeclKey
    {
        int from;
        int to;  ///< -1 for wildcard
        ChannelKind kind;
        AccessMode mode;
        bool operator<(const DeclKey &o) const;
    };

    struct EdgeKey
    {
        int from;
        int to;
        ChannelKind kind;
        AccessMode mode;
        bool operator<(const EdgeKey &o) const;
    };

    struct EdgeData
    {
        std::uint64_t count = 0;
        Cycle firstCycle = 0;
        Cycle lastCycle = 0;
        int minRootOrder = 0;
        int maxRootOrder = 0;
    };

    int idOf(const Clocked *c) const;
    const char *nameOf(int id) const;
    bool isDeclared(int from, int to, ChannelKind kind, AccessMode mode,
                    Visibility *vis, bool *viaWildcard) const;

    std::vector<Component> components_;
    std::map<const Clocked *, int> ids_;
    std::map<DeclKey, Visibility> declarations_;
    std::map<EdgeKey, EdgeData> observed_;
    std::uint64_t totalAccesses_ = 0;
    bool collected_ = false;
};

namespace access {

/**
 * Thread-local execution context. tracker is non-null only inside a
 * kernel tick with tracking enabled; current is the component whose
 * domain the executing code belongs to; root is the component whose
 * kernel slot is running (never changed by handoffs).
 */
struct TickContext
{
    AccessTracker *tracker = nullptr;
    const Clocked *current = nullptr;
    const Clocked *root = nullptr;
    Cycle now = 0;
};

/** The calling thread's context (one per thread: shard-safe by design). */
TickContext &tickContext();

/**
 * Record a cross-component write of @p target through @p kind. No-op when
 * no tracker is active or when @p target is the executing component.
 */
inline void
onWrite(const Clocked *target, ChannelKind kind)
{
    TickContext &ctx = tickContext();
    if (ctx.tracker != nullptr)
        ctx.tracker->record(target, kind, AccessMode::kWrite);
}

/** Record a cross-component read of @p target through @p kind. */
inline void
onRead(const Clocked *target, ChannelKind kind)
{
    TickContext &ctx = tickContext();
    if (ctx.tracker != nullptr)
        ctx.tracker->record(target, kind, AccessMode::kRead);
}

/**
 * RAII domain handoff: code inside a cross-component entry point executes
 * on behalf of the callee's domain. Entry points record the inbound access
 * first, then hand off, so nested accesses are attributed to the callee
 * (e.g. a gated router's input stage redirecting a delivered flit into the
 * NI bypass latch attributes the latch write to the router, not the link).
 * The root component -- whose kernel slot is running -- is preserved for
 * the registration-order audit.
 */
class Handoff
{
  public:
    explicit Handoff(const Clocked *callee)
        : ctx_(tickContext()), saved_(ctx_.current)
    {
        if (ctx_.tracker != nullptr)
            ctx_.current = callee;
    }

    ~Handoff() { ctx_.current = saved_; }

    Handoff(const Handoff &) = delete;
    Handoff &operator=(const Handoff &) = delete;

  private:
    TickContext &ctx_;
    const Clocked *saved_;
};

}  // namespace access

}  // namespace nord

#endif  // NORD_VERIFY_ACCESS_ACCESS_TRACKER_HH

/**
 * @file
 * Cross-component access tracker implementation.
 */

#include "verify/access/access_tracker.hh"

#include <algorithm>
#include <climits>
#include <sstream>

#include "common/log.hh"
#include "sim/clocked.hh"

namespace nord {

const char *
channelKindName(ChannelKind k)
{
    switch (k) {
      case ChannelKind::kFlitPush: return "flit_push";
      case ChannelKind::kFlitDeliver: return "flit_deliver";
      case ChannelKind::kCreditPush: return "credit_push";
      case ChannelKind::kCreditDeliver: return "credit_deliver";
      case ChannelKind::kLocalInject: return "local_inject";
      case ChannelKind::kEjection: return "ejection";
      case ChannelKind::kLocalCredit: return "local_credit";
      case ChannelKind::kWakeup: return "wakeup";
      case ChannelKind::kBypassLatch: return "bypass_latch";
      case ChannelKind::kBypassDrive: return "bypass_drive";
      case ChannelKind::kPowerSignal: return "power_signal";
      case ChannelKind::kBypassControl: return "bypass_control";
      case ChannelKind::kPowerObserve: return "power_observe";
      case ChannelKind::kRouterObserve: return "router_observe";
      case ChannelKind::kNiObserve: return "ni_observe";
      case ChannelKind::kDelivery: return "delivery";
      case ChannelKind::kInjection: return "injection";
      case ChannelKind::kFault: return "fault";
      case ChannelKind::kAudit: return "audit";
      case ChannelKind::kRepair: return "repair";
    }
    return "unknown";
}

const char *
visibilityName(Visibility v)
{
    switch (v) {
      case Visibility::kSameCycle: return "same_cycle";
      case Visibility::kNextCycle: return "next_cycle";
      case Visibility::kAny: return "any";
    }
    return "unknown";
}

namespace access {

TickContext &
tickContext()
{
    static thread_local TickContext ctx;
    return ctx;
}

}  // namespace access

// ---------------------------------------------------------------------------
// OwnershipDeclarator
// ---------------------------------------------------------------------------

void
OwnershipDeclarator::owns(const std::string &domain)
{
    tracker_->components_[componentId_].domain = domain;
}

void
OwnershipDeclarator::writes(const Clocked *target, ChannelKind kind,
                            Visibility vis)
{
    const int to = tracker_->idOf(target);
    if (to < 0)
        return;
    tracker_->declarations_[{componentId_, to, kind, AccessMode::kWrite}] =
        vis;
}

void
OwnershipDeclarator::reads(const Clocked *target, ChannelKind kind)
{
    const int to = tracker_->idOf(target);
    if (to < 0)
        return;
    tracker_->declarations_[{componentId_, to, kind, AccessMode::kRead}] =
        Visibility::kAny;
}

void
OwnershipDeclarator::writesAny()
{
    tracker_->components_[componentId_].wildcardWrite = true;
}

void
OwnershipDeclarator::readsAny()
{
    tracker_->components_[componentId_].wildcardRead = true;
}

// ---------------------------------------------------------------------------
// AccessTracker
// ---------------------------------------------------------------------------

AccessTracker::~AccessTracker() = default;

bool
AccessTracker::DeclKey::operator<(const DeclKey &o) const
{
    if (from != o.from)
        return from < o.from;
    if (to != o.to)
        return to < o.to;
    if (kind != o.kind)
        return kind < o.kind;
    return mode < o.mode;
}

bool
AccessTracker::EdgeKey::operator<(const EdgeKey &o) const
{
    if (from != o.from)
        return from < o.from;
    if (to != o.to)
        return to < o.to;
    if (kind != o.kind)
        return kind < o.kind;
    return mode < o.mode;
}

void
AccessTracker::registerComponent(const Clocked *c)
{
    NORD_ASSERT(c != nullptr, "null component registered with tracker");
    if (ids_.count(c) != 0)
        return;
    Component comp;
    comp.object = c;
    comp.name = c->name();
    comp.order = static_cast<int>(components_.size());
    ids_[c] = comp.order;
    components_.push_back(std::move(comp));
}

void
AccessTracker::collectDeclarations()
{
    for (size_t i = 0; i < components_.size(); ++i) {
        OwnershipDeclarator d(this, static_cast<int>(i));
        components_[i].object->declareOwnership(d);
    }
    collected_ = true;
}

void
AccessTracker::declareChannel(const Clocked *from, const Clocked *to,
                              ChannelKind kind, AccessMode mode,
                              Visibility vis)
{
    const int f = idOf(from);
    const int t = idOf(to);
    NORD_ASSERT(f >= 0 && t >= 0,
                "declareChannel on unregistered component");
    declarations_[{f, t, kind, mode}] = vis;
}

int
AccessTracker::idOf(const Clocked *c) const
{
    auto it = ids_.find(c);
    return it == ids_.end() ? -1 : it->second;
}

const char *
AccessTracker::nameOf(int id) const
{
    if (id < 0 || id >= static_cast<int>(components_.size()))
        return "external";
    return components_[id].name.c_str();
}

void
AccessTracker::record(const Clocked *target, ChannelKind kind,
                      AccessMode mode)
{
    const access::TickContext &ctx = access::tickContext();
    if (ctx.current == nullptr || ctx.current == target)
        return;  // outside any tick, or an access to the own domain
    const int from = idOf(ctx.current);
    const int to = idOf(target);
    if (from < 0 || to < 0)
        return;  // components not under this tracker (e.g. test fixtures)

    EdgeData &e = observed_[{from, to, kind, mode}];
    if (e.count == 0) {
        e.firstCycle = ctx.now;
        e.minRootOrder = INT_MAX;
        e.maxRootOrder = -1;
    }
    ++e.count;
    e.lastCycle = ctx.now;
    ++totalAccesses_;

    // Root slot, for the registration-order audit. Wildcard writers
    // (fault injector, auditor repairs) are deliberately out of the
    // ordering contract; do not fold their slots into the bounds.
    const int rootId = idOf(ctx.root);
    if (rootId >= 0 && !components_[rootId].wildcardWrite) {
        const int slot = components_[rootId].order;
        e.minRootOrder = std::min(e.minRootOrder, slot);
        e.maxRootOrder = std::max(e.maxRootOrder, slot);
    }
}

void
AccessTracker::beginTick(const Clocked *c, Cycle now)
{
    access::TickContext &ctx = access::tickContext();
    ctx.tracker = this;
    ctx.current = c;
    ctx.root = c;
    ctx.now = now;
}

void
AccessTracker::endTick()
{
    access::TickContext &ctx = access::tickContext();
    ctx.tracker = nullptr;
    ctx.current = nullptr;
    ctx.root = nullptr;
}

bool
AccessTracker::isDeclared(int from, int to, ChannelKind kind,
                          AccessMode mode, Visibility *vis,
                          bool *viaWildcard) const
{
    auto it = declarations_.find({from, to, kind, mode});
    if (it != declarations_.end()) {
        *vis = it->second;
        *viaWildcard = false;
        return true;
    }
    const Component &f = components_[from];
    if ((mode == AccessMode::kWrite && f.wildcardWrite) ||
        (mode == AccessMode::kRead && f.wildcardRead)) {
        *vis = Visibility::kAny;
        *viaWildcard = true;
        return true;
    }
    return false;
}

std::vector<AccessTracker::Edge>
AccessTracker::edges() const
{
    std::vector<Edge> result;
    result.reserve(observed_.size());
    for (const auto &[key, data] : observed_) {
        Edge e;
        e.from = key.from;
        e.to = key.to;
        e.kind = key.kind;
        e.mode = key.mode;
        e.count = data.count;
        e.firstCycle = data.firstCycle;
        e.lastCycle = data.lastCycle;
        e.minRootOrder = data.minRootOrder;
        e.maxRootOrder = data.maxRootOrder;
        e.declared = isDeclared(key.from, key.to, key.kind, key.mode,
                                &e.visibility, &e.viaWildcard);
        result.push_back(e);
    }
    return result;
}

std::uint64_t
AccessTracker::edgeCount(const std::string &fromName,
                         const std::string &toName, ChannelKind kind) const
{
    std::uint64_t total = 0;
    for (const auto &[key, data] : observed_) {
        if (key.kind == kind && fromName == nameOf(key.from) &&
            toName == nameOf(key.to))
            total += data.count;
    }
    return total;
}

std::vector<AccessTracker::Violation>
AccessTracker::verify() const
{
    std::vector<Violation> out;
    for (const Edge &e : edges()) {
        const char *fromName = nameOf(e.from);
        const char *toName = nameOf(e.to);
        if (e.mode == AccessMode::kWrite && !e.declared) {
            Violation v;
            v.type = Violation::Type::kUndeclaredWrite;
            v.what = std::string("undeclared write ") + fromName + " -> " +
                     toName + " via " + channelKindName(e.kind) + " (x" +
                     std::to_string(e.count) +
                     "): would be a data race under per-shard execution";
            out.push_back(std::move(v));
            continue;
        }
        if (e.mode != AccessMode::kWrite || e.viaWildcard ||
            e.maxRootOrder < 0)
            continue;
        const int targetSlot = components_[e.to].order;
        const char *why = nullptr;
        if (e.visibility == Visibility::kSameCycle &&
            e.maxRootOrder > targetSlot) {
            why = "same-cycle channel written from a kernel slot after "
                  "the consumer's (value would arrive a cycle late)";
        } else if (e.visibility == Visibility::kNextCycle &&
                   e.minRootOrder < targetSlot) {
            why = "next-cycle channel written from a kernel slot before "
                  "the consumer's (value would arrive a cycle early)";
        }
        if (why != nullptr) {
            Violation v;
            v.type = Violation::Type::kOrderViolation;
            v.what = std::string("registration-order violation on ") +
                     fromName + " -> " + toName + " via " +
                     channelKindName(e.kind) + " [" +
                     visibilityName(e.visibility) + ", root slots " +
                     std::to_string(e.minRootOrder) + ".." +
                     std::to_string(e.maxRootOrder) + ", target slot " +
                     std::to_string(targetSlot) + "]: " + why;
            out.push_back(std::move(v));
        }
    }
    return out;
}

std::vector<std::string>
AccessTracker::undeclaredReads() const
{
    std::vector<std::string> out;
    for (const Edge &e : edges()) {
        if (e.mode != AccessMode::kRead || e.declared)
            continue;
        out.push_back(std::string("undeclared read ") + nameOf(e.from) +
                      " -> " + nameOf(e.to) + " via " +
                      channelKindName(e.kind) + " (x" +
                      std::to_string(e.count) + ")");
    }
    return out;
}

namespace {

/** Minimal JSON string escaping (component names are plain ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

std::string
AccessTracker::dot() const
{
    std::ostringstream os;
    os << "digraph nord_access {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=box, fontsize=9];\n";
    for (const Component &c : components_) {
        os << "  c" << c.order << " [label=\"" << c.name << "\\nslot "
           << c.order << "\"";
        if (c.wildcardWrite || c.wildcardRead)
            os << ", style=dashed";
        os << "];\n";
    }
    for (const Edge &e : edges()) {
        os << "  c" << e.from << " -> c" << e.to << " [label=\""
           << channelKindName(e.kind) << " x" << e.count << "\"";
        if (e.mode == AccessMode::kWrite && !e.declared)
            os << ", color=red, penwidth=2";
        else if (e.mode == AccessMode::kRead)
            os << ", color=gray50, style=dashed";
        else if (e.viaWildcard)
            os << ", color=orange";
        os << "];\n";
    }
    // Declared channels never exercised by this run: coverage hints.
    for (const auto &[key, vis] : declarations_) {
        if (observed_.count({key.from, key.to, key.kind, key.mode}) != 0)
            continue;
        os << "  c" << key.from << " -> c" << key.to << " [label=\""
           << channelKindName(key.kind)
           << " (declared, unobserved)\", color=blue, style=dotted];\n";
        (void)vis;
    }
    os << "}\n";
    return os.str();
}

std::string
AccessTracker::json() const
{
    std::ostringstream os;
    os << "{\n  \"components\": [\n";
    for (size_t i = 0; i < components_.size(); ++i) {
        const Component &c = components_[i];
        os << "    {\"id\": " << c.order << ", \"name\": \""
           << jsonEscape(c.name) << "\", \"domain\": \""
           << jsonEscape(c.domain) << "\", \"wildcard_write\": "
           << (c.wildcardWrite ? "true" : "false")
           << ", \"wildcard_read\": "
           << (c.wildcardRead ? "true" : "false") << "}"
           << (i + 1 < components_.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"edges\": [\n";
    const std::vector<Edge> es = edges();
    for (size_t i = 0; i < es.size(); ++i) {
        const Edge &e = es[i];
        os << "    {\"from\": \"" << jsonEscape(nameOf(e.from))
           << "\", \"to\": \"" << jsonEscape(nameOf(e.to))
           << "\", \"kind\": \"" << channelKindName(e.kind)
           << "\", \"mode\": \""
           << (e.mode == AccessMode::kWrite ? "write" : "read")
           << "\", \"count\": " << e.count << ", \"declared\": "
           << (e.declared ? "true" : "false") << ", \"wildcard\": "
           << (e.viaWildcard ? "true" : "false") << ", \"visibility\": \""
           << visibilityName(e.visibility) << "\", \"first_cycle\": "
           << e.firstCycle << ", \"last_cycle\": " << e.lastCycle << "}"
           << (i + 1 < es.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"violations\": [\n";
    const std::vector<Violation> vs = verify();
    for (size_t i = 0; i < vs.size(); ++i) {
        os << "    \"" << jsonEscape(vs[i].what) << "\""
           << (i + 1 < vs.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"undeclared_reads\": [\n";
    const std::vector<std::string> rs = undeclaredReads();
    for (size_t i = 0; i < rs.size(); ++i) {
        os << "    \"" << jsonEscape(rs[i]) << "\""
           << (i + 1 < rs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

void
AccessTracker::dumpDot(std::FILE *out) const
{
    const std::string s = dot();
    std::fwrite(s.data(), 1, s.size(), out);
}

void
AccessTracker::dumpJson(std::FILE *out) const
{
    const std::string s = json();
    std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace nord

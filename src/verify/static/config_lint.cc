/**
 * @file
 * Configuration lint implementation.
 */

#include "verify/static/config_lint.hh"

#include <vector>

#include "topology/bypass_ring.hh"
#include "topology/mesh.hh"

namespace nord {

std::string
LintResult::summary() const
{
    if (ok())
        return "clean";
    std::string s = std::to_string(problems.size()) + " problem(s):";
    for (const std::string &p : problems)
        s += "\n  - " + p;
    return s;
}

LintResult
lintConfig(const NocConfig &config)
{
    LintResult r;
    auto flag = [&r](std::string what) {
        r.problems.push_back(std::move(what));
    };

    // --- Mesh / ring structure -------------------------------------------
    const bool meshOk = config.rows >= 2 && config.cols >= 2;
    if (!meshOk) {
        flag("mesh must be at least 2x2 (got " +
             std::to_string(config.rows) + "x" +
             std::to_string(config.cols) + ")");
    }
    if (config.rows % 2 != 0) {
        flag("canonical bypass-ring construction requires an even row "
             "count (got " + std::to_string(config.rows) + ")");
    }
    if (meshOk && config.rows % 2 == 0) {
        // The canonical ring must itself pass the Hamiltonian lint; a bug
        // in the serpentine construction would surface here rather than as
        // a NORD_FATAL deep inside a simulation run.
        MeshTopology mesh(config.rows, config.cols);
        BypassRing ring(mesh);
        LintResult ringLint = lintRingOrder(mesh, ring.order());
        for (std::string &p : ringLint.problems)
            r.problems.push_back("canonical ring: " + std::move(p));
    }

    // --- VC partition ----------------------------------------------------
    if (config.numVcs < 2)
        flag("need at least 2 VCs (1 escape + 1 adaptive)");
    if (config.numEscapeVcs < 1) {
        flag("escape class is empty (numEscapeVcs = " +
             std::to_string(config.numEscapeVcs) +
             "): Duato's Protocol has no deadlock-free fallback");
    } else if (config.numEscapeVcs >= config.numVcs) {
        flag("adaptive class is empty (numEscapeVcs = " +
             std::to_string(config.numEscapeVcs) + " of " +
             std::to_string(config.numVcs) + " VCs)");
    }
    if (config.design == PgDesign::kNord && config.numEscapeVcs < 2) {
        flag("NoRD's unidirectional ring escape needs 2 escape VCs "
             "(dateline scheme); with " +
             std::to_string(config.numEscapeVcs) +
             " the ring's channel dependence stays cyclic");
    }

    // --- Buffer / allocation assumptions ---------------------------------
    if (config.bufferDepth < 1)
        flag("bufferDepth must be >= 1");
    if (config.escapeAfterBlockedCycles < 1) {
        flag("escapeAfterBlockedCycles must be >= 1 (blocked adaptive "
             "heads must eventually request escape for Duato progress)");
    }
    if (config.nordMisrouteCap < 0)
        flag("nordMisrouteCap must be >= 0");

    // --- Power-gating handshake parameters -------------------------------
    if (config.wakeupLatency < 1)
        flag("wakeupLatency must be >= 1");
    if (config.nordWakeupWindow < 1)
        flag("nordWakeupWindow must be >= 1");
    if (config.nordPerfThreshold < 1 || config.nordPowerThreshold < 1)
        flag("wakeup thresholds must be >= 1");
    if (config.nordPerfThreshold > config.nordPowerThreshold) {
        flag("asymmetric thresholds inverted: performance-centric (" +
             std::to_string(config.nordPerfThreshold) +
             ") must wake no later than power-centric (" +
             std::to_string(config.nordPowerThreshold) + ")");
    }
    if (config.nordPowerSleepGuard < 0 || config.nordPerfSleepGuard < 0)
        flag("sleep guards must be >= 0");
    if (config.niStarvationLimit < 1)
        flag("niStarvationLimit must be >= 1");
    if (config.nordPerfCentricCount > config.numNodes()) {
        flag("nordPerfCentricCount (" +
             std::to_string(config.nordPerfCentricCount) +
             ") exceeds the node count");
    }

    // --- Verification / fault settings -----------------------------------
    if (config.verify.interval > 0) {
        if (config.verify.stallThreshold < 1)
            flag("verify.stallThreshold must be >= 1");
        if (config.verify.maxFlitAge < 1)
            flag("verify.maxFlitAge must be >= 1");
    }
    if (config.fault.enabled) {
        for (double rate :
             {config.fault.flitCorruptRate, config.fault.flitDropRate,
              config.fault.creditLeakRate, config.fault.lostWakeupRate}) {
            if (rate < 0.0 || rate > 1.0) {
                flag("fault rates must be probabilities in [0, 1]");
                break;
            }
        }
        for (const FaultEvent &ev : config.fault.schedule) {
            if (ev.node < 0 || ev.node >= config.numNodes()) {
                flag("scheduled fault targets node " +
                     std::to_string(ev.node) + " outside the mesh");
            }
        }
    }
    return r;
}

LintResult
lintRingOrder(const MeshTopology &mesh, const std::vector<NodeId> &order)
{
    LintResult r;
    const int n = mesh.numNodes();
    if (static_cast<int>(order.size()) != n) {
        r.problems.push_back(
            "ring order has " + std::to_string(order.size()) +
            " entries, mesh has " + std::to_string(n) + " nodes");
        return r;
    }
    std::vector<int> count(static_cast<size_t>(n), 0);
    for (NodeId node : order) {
        if (node < 0 || node >= n) {
            r.problems.push_back("ring order contains invalid node " +
                                 std::to_string(node));
            return r;
        }
        ++count[node];
    }
    for (NodeId node = 0; node < n; ++node) {
        if (count[node] == 0) {
            r.problems.push_back("ring does not cover node " +
                                 std::to_string(node) +
                                 " (not Hamiltonian)");
        } else if (count[node] > 1) {
            r.problems.push_back("ring visits node " +
                                 std::to_string(node) + " " +
                                 std::to_string(count[node]) + " times");
        }
    }
    for (size_t i = 0; i < order.size(); ++i) {
        const NodeId from = order[i];
        const NodeId to = order[(i + 1) % order.size()];
        if (!mesh.adjacent(from, to)) {
            r.problems.push_back(
                "ring hop " + std::to_string(from) + " -> " +
                std::to_string(to) +
                " is not a mesh link (cycle does not close over the mesh)");
        }
    }
    return r;
}

}  // namespace nord

/**
 * @file
 * Offline channel-dependency-graph (CDG) deadlock analysis.
 *
 * NoRD's deadlock-freedom argument (Section 4.2 of the paper) is Duato's
 * Protocol: adaptive VCs may route freely as long as every packet, at every
 * hop, can fall back to an *escape* sub-network whose channel-dependency
 * graph is acyclic and which delivers every packet. The paper argues this
 * by hand (two escape VCs + a dateline break the ring's cyclic dependence);
 * this pass proves it mechanically for a concrete NocConfig, before a
 * single cycle is simulated.
 *
 * The analysis drives the *actual* RoutingPolicy / BypassRing / Mesh code
 * -- not a re-implementation of it -- over every reachable
 * (src, dst, intermediate-hop, escape-status) state:
 *
 *  - Escape channels are enumerated by walking the escape sub-network from
 *    every possible entry state: a packet may be forced onto escape at any
 *    intermediate node with escLevel 0 (adaptive packets never carry a
 *    nonzero level), so every walk (entry, dst, level 0) is simulated to
 *    delivery, collecting the (link, escape-VC-level) channels it occupies
 *    and the dependency edges between consecutive channels. Restricting
 *    the graph to *reachable* states is essential: enumerating all
 *    (node, level) pairs blindly would flag the dateline scheme itself as
 *    cyclic, because a level-1 packet re-crossing the dateline is exactly
 *    the state the scheme makes unreachable.
 *
 *  - Adaptive states are enumerated exhaustively -- every (here, dst,
 *    input port, misroute count around the cap, neighbor power-state mask)
 *    -- through RoutingPolicy::route() and routeAtBypass(), recording
 *    adaptive->adaptive and adaptive->escape dependencies and
 *    cross-checking the misroute-cap / forced-escape bookkeeping of the
 *    two entry points against each other.
 *
 * Verified properties:
 *  1. the escape-restricted CDG is acyclic (counterexample: the cycle,
 *     with the routing state that created each dependency edge);
 *  2. escape is reachable from every adaptive state (escapeDir valid and
 *     its channel present in the escape graph);
 *  3. the escape sub-network delivers: every (entry, dst) walk terminates
 *     at dst within a hop bound (no escape livelock).
 *
 * Counterexamples are replayable: replayCycle() re-derives every edge of a
 * reported cycle from the live RoutingPolicy, so a test (or a human) can
 * confirm the dependency really exists in the code rather than in the
 * analyzer's imagination.
 */

#ifndef NORD_VERIFY_STATIC_CDG_HH
#define NORD_VERIFY_STATIC_CDG_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "network/noc_config.hh"

namespace nord {

class MeshTopology;
class BypassRing;
class RoutingPolicy;
class Router;
class NetworkStats;

/** One channel of the extended CDG: a directed link plus a VC class. */
struct CdgChannel
{
    NodeId from = kInvalidNode;  ///< upstream node driving the link
    Direction dir = Direction::kLocal;  ///< direction out of @p from
    VcClass cls = VcClass::kAdaptive;
    int escLevel = 0;            ///< escape dateline level; 0 for adaptive

    std::string describe() const;
};

/** The routing state that created one dependency edge (for replay). */
struct CdgEdgeContext
{
    NodeId here = kInvalidNode;  ///< router that made the decision
    NodeId dst = kInvalidNode;   ///< packet destination
    Direction inPort = Direction::kLocal;
    bool onEscape = false;
    int escLevel = 0;
    int misroutes = 0;
    bool atBypass = false;       ///< decided by routeAtBypass (gated router)

    std::string describe() const;
};

/** A dependency cycle found in the escape-restricted CDG. */
struct CdgCounterexample
{
    /** Channels of the cycle; channel i depends on channel i+1 (mod n). */
    std::vector<CdgChannel> channels;

    /** The routing state witnessing each dependency edge. */
    std::vector<CdgEdgeContext> edges;

    bool empty() const { return channels.empty(); }
    std::string describe() const;
};

/** Knobs for seeding negative tests and selecting the routing mode. */
struct CdgOptions
{
    /**
     * Analyze NoRD with the steering table installed (the normal operating
     * mode) or without it (the minimal+ring-fallback mode used before the
     * criticality analysis runs). Ignored by conventional designs.
     */
    bool steering = true;

    /**
     * Seed a deliberately broken escape scheme: force every escape hop to
     * this dateline level, modelling a single-escape-VC ring without the
     * dateline break. The level-0 ring then closes on itself and the pass
     * must report the cycle. -1 = use the real escapeVcLevel() code.
     */
    int escapeLevelOverride = -1;

    /**
     * Enumerate adaptive states under every neighbor power-state mask
     * (2^4 per router; NoRD's candidate set depends on which neighbors
     * are gated). Disable for a faster escape-only run.
     */
    bool enumerateGatedViews = true;

    /** Hop bound multiplier for escape-delivery walks (bound = k * n). */
    int walkBoundFactor = 2;
};

/** Everything the pass proved (or refuted) about one configuration. */
struct CdgResult
{
    int numChannels = 0;         ///< channels in the extended CDG
    int numEscapeChannels = 0;   ///< channels of the escape class
    std::size_t numEdges = 0;    ///< dependency edges, all classes
    std::size_t numEscapeEdges = 0;
    std::size_t statesExplored = 0;  ///< routing states driven through route()

    bool escapeAcyclic = false;  ///< property 1
    bool escapeReachable = false;  ///< property 2
    bool escapeDelivers = false;   ///< property 3

    /** Non-empty iff !escapeAcyclic. */
    CdgCounterexample cycle;

    /** Human-readable diagnoses for failed reachability/delivery states
     *  and any bookkeeping divergence between route() and routeAtBypass(). */
    std::vector<std::string> problems;

    bool ok() const
    {
        return escapeAcyclic && escapeReachable && escapeDelivers &&
               problems.empty();
    }

    std::string summary() const;
};

/**
 * One analysis instance: owns the topology, ring, routing policy and a
 * probe router for the given configuration, mirroring exactly what
 * NocSystem would build (including the NoRD steering table).
 */
class CdgAnalysis
{
  public:
    explicit CdgAnalysis(const NocConfig &config, CdgOptions opts = {});
    ~CdgAnalysis();

    CdgAnalysis(const CdgAnalysis &) = delete;
    CdgAnalysis &operator=(const CdgAnalysis &) = delete;

    /** Run all three checks; cheap enough to call repeatedly. */
    CdgResult run();

    /**
     * Re-derive every dependency edge of @p cx from the live RoutingPolicy
     * (same options as this analysis). Returns true when every edge is
     * confirmed; otherwise *why describes the first edge that could not be
     * reproduced. A genuine counterexample always replays.
     */
    bool replayCycle(const CdgCounterexample &cx, std::string *why) const;

    const MeshTopology &mesh() const { return *mesh_; }
    const BypassRing &ring() const { return *ring_; }
    const RoutingPolicy &policy() const { return *policy_; }
    const NocConfig &config() const { return config_; }

  private:
    /** Flat channel id for (from, dir, cls, level); -1 for local dirs. */
    int channelId(NodeId from, Direction dir, VcClass cls, int level) const;

    /** Inverse of channelId(). */
    CdgChannel channelOf(int id) const;

    /** Escape dateline level for a hop, honoring escapeLevelOverride. */
    int hopEscapeLevel(NodeId here, Direction dir, int curLevel) const;

    /** Walk the escape sub-network from (entry, dst, level 0). */
    void walkEscape(NodeId entry, NodeId dst, CdgResult &result);

    /** Enumerate adaptive states at @p here towards @p dst. */
    void enumerateAdaptive(NodeId here, NodeId dst, CdgResult &result);

    /** Record edge a -> b created by @p ctx (first witness wins). */
    void addEdge(int a, int b, const CdgEdgeContext &ctx);

    /** Find a cycle in the escape-restricted subgraph, if any. */
    void findEscapeCycle(CdgResult &result) const;

    NocConfig config_;
    CdgOptions opts_;
    std::unique_ptr<MeshTopology> mesh_;
    std::unique_ptr<BypassRing> ring_;
    std::unique_ptr<NetworkStats> stats_;
    std::unique_ptr<RoutingPolicy> policy_;
    std::unique_ptr<Router> probe_;  ///< carries forced neighbor PG views

    int numClassSlots_ = 3;  ///< esc level 0, esc level 1, adaptive

    /** adjacency[ch] = outgoing dependency edges. */
    std::vector<std::vector<int>> adj_;

    /** First witness context per (a, b) edge, keyed a * channels + b. */
    std::vector<int> edgeWitness_;  ///< index into witnesses_, -1 = none
    std::vector<CdgEdgeContext> witnesses_;

    /** (entry, dst) -> delivery ok (escape walk bookkeeping). */
    std::vector<bool> delivered_;
};

}  // namespace nord

#endif  // NORD_VERIFY_STATIC_CDG_HH

/**
 * @file
 * Shipped-configuration registry implementation.
 */

#include "verify/static/config_registry.hh"

namespace nord {

NocConfig
makeShippedConfig(PgDesign design, int rows, int cols)
{
    NocConfig config;
    config.design = design;
    config.rows = rows;
    config.cols = cols;
    return config;
}

bool
parseDesignName(const std::string &name, PgDesign *out)
{
    if (name == "nopg" || name == "no_pg") {
        *out = PgDesign::kNoPg;
    } else if (name == "convpg" || name == "conv_pg") {
        *out = PgDesign::kConvPg;
    } else if (name == "convpgopt" || name == "conv_pg_opt") {
        *out = PgDesign::kConvPgOpt;
    } else if (name == "nord") {
        *out = PgDesign::kNord;
    } else {
        return false;
    }
    return true;
}

std::vector<NamedConfig>
shippedConfigs()
{
    static const struct { PgDesign design; const char *name; } kDesigns[] = {
        {PgDesign::kNoPg, "nopg"},
        {PgDesign::kConvPg, "convpg"},
        {PgDesign::kConvPgOpt, "convpgopt"},
        {PgDesign::kNord, "nord"},
    };
    static const struct { int rows, cols; } kShapes[] = {
        {4, 4},
        {8, 8},
    };
    std::vector<NamedConfig> out;
    for (const auto &d : kDesigns) {
        for (const auto &s : kShapes) {
            NamedConfig named;
            named.name = std::string(d.name) + "-" +
                         std::to_string(s.rows) + "x" +
                         std::to_string(s.cols);
            named.config = makeShippedConfig(d.design, s.rows, s.cols);
            out.push_back(std::move(named));
        }
    }
    return out;
}

}  // namespace nord

/**
 * @file
 * PG-handshake product-FSM model checker implementation.
 */

#include "verify/static/fsm_check.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"

namespace nord {

namespace {

// Field ranges of the dense state encoding.
constexpr int kPowerRange = 3;
constexpr int kRampRange = 3;
constexpr int kBoolRange = 2;
constexpr int kPendingRange = 3;

constexpr std::int8_t kOn = static_cast<std::int8_t>(PowerState::kOn);
constexpr std::int8_t kOff = static_cast<std::int8_t>(PowerState::kOff);
constexpr std::int8_t kWaking =
    static_cast<std::int8_t>(PowerState::kWakingUp);

}  // namespace

const char *
fsmEventName(FsmEvent e)
{
    switch (e) {
      case FsmEvent::kTick: return "tick";
      case FsmEvent::kTickSleep: return "tick+sleep";
      case FsmEvent::kNewWork: return "new-work";
      case FsmEvent::kCommitFlit: return "commit-flit";
      case FsmEvent::kLandFlit: return "land-flit";
      case FsmEvent::kServeWork: return "serve-work";
      case FsmEvent::kBypassServe: return "bypass-serve";
      case FsmEvent::kWakeRequest: return "wake-request";
      case FsmEvent::kSuppressOn: return "suppress-on";
      case FsmEvent::kSuppressOff: return "suppress-off";
      case FsmEvent::kForcedOff: return "forced-off";
      case FsmEvent::kWatchdogWake: return "watchdog-wake";
    }
    return "?";
}

const char *
fsmMutationName(FsmMutation m)
{
    switch (m) {
      case FsmMutation::kNone: return "none";
      case FsmMutation::kDeafWakeupInput: return "deaf-wakeup-input";
      case FsmMutation::kDropIcGuard: return "drop-ic-guard";
      case FsmMutation::kNoDrainCheck: return "no-drain-check";
    }
    return "?";
}

const char *
fsmPropertyName(FsmProperty p)
{
    switch (p) {
      case FsmProperty::kDeadlockFree: return "deadlock-freedom";
      case FsmProperty::kNoLostWakeup: return "no-lost-wakeup";
      case FsmProperty::kNoStWhileGated: return "no-ST-while-gated";
    }
    return "?";
}

bool
FsmState::operator==(const FsmState &o) const
{
    return power == o.power && ramp == o.ramp && wake == o.wake &&
           pending == o.pending && window == o.window &&
           inFlight == o.inFlight && buffered == o.buffered &&
           suppressed == o.suppressed;
}

std::string
FsmState::describe() const
{
    std::string s = powerStateName(static_cast<PowerState>(power));
    if (power == kWaking) {
        s += "(";
        s += std::to_string(ramp);
        s += ")";
    }
    s += " pending=";
    s += std::to_string(pending);
    if (window > 0) {
        s += " window=";
        s += std::to_string(window);
    }
    if (wake)
        s += " WU";
    if (inFlight)
        s += " in-flight";
    if (buffered)
        s += " buffered";
    if (suppressed)
        s += " suppressed";
    return s;
}

std::string
FsmCounterexample::describe() const
{
    std::string s = std::string(fsmPropertyName(property)) +
                    " violated: " + what + "\n  trace (" +
                    std::to_string(trace.size()) + " events):\n";
    for (const FsmTraceStep &step : trace) {
        s += "    ";
        s += fsmEventName(step.event);
        s += " -> [";
        s += step.next.describe();
        s += "]\n";
    }
    return s;
}

std::string
FsmResult::summary() const
{
    std::string s = "states=" + std::to_string(statesReached) + "/" +
                    std::to_string(stateSpace) + " transitions=" +
                    std::to_string(transitions);
    s += deadlockFree ? " deadlock-free=yes" : " deadlock-free=NO";
    s += noLostWakeup ? " no-lost-wakeup=yes" : " no-lost-wakeup=NO";
    s += noStWhileGated ? " no-ST-while-gated=yes"
                        : " no-ST-while-gated=NO";
    return s;
}

FsmCheck::FsmCheck(FsmOptions opts) : opts_(opts)
{
    NORD_ASSERT(opts_.wakeupThreshold >= 1, "threshold must be positive");
    thrCap_ = opts_.wakeupThreshold;
    rampLen_ = 2;
}

int
FsmCheck::encode(const FsmState &s) const
{
    int id = s.power;
    id = id * kRampRange + s.ramp;
    id = id * kBoolRange + s.wake;
    id = id * kPendingRange + s.pending;
    id = id * (thrCap_ + 1) + s.window;
    id = id * kBoolRange + s.inFlight;
    id = id * kBoolRange + s.buffered;
    id = id * kBoolRange + s.suppressed;
    return id;
}

FsmState
FsmCheck::decode(int id) const
{
    FsmState s;
    s.suppressed = static_cast<std::int8_t>(id % kBoolRange);
    id /= kBoolRange;
    s.buffered = static_cast<std::int8_t>(id % kBoolRange);
    id /= kBoolRange;
    s.inFlight = static_cast<std::int8_t>(id % kBoolRange);
    id /= kBoolRange;
    s.window = static_cast<std::int8_t>(id % (thrCap_ + 1));
    id /= (thrCap_ + 1);
    s.pending = static_cast<std::int8_t>(id % kPendingRange);
    id /= kPendingRange;
    s.wake = static_cast<std::int8_t>(id % kBoolRange);
    id /= kBoolRange;
    s.ramp = static_cast<std::int8_t>(id % kRampRange);
    id /= kRampRange;
    s.power = static_cast<std::int8_t>(id);
    return s;
}

bool
FsmCheck::sleepLegal(const FsmState &s) const
{
    // PgController::sleepAllowed(): datapath empty, no incoming flit,
    // no pending wakeup request -- minus whatever the mutation drops.
    const bool drainOk = s.buffered == 0 ||
                         opts_.mutation == FsmMutation::kNoDrainCheck;
    const bool icOk = s.inFlight == 0 ||
                      opts_.mutation == FsmMutation::kDropIcGuard ||
                      opts_.mutation == FsmMutation::kNoDrainCheck;
    return drainOk && icOk && !s.wake;
}

bool
FsmCheck::metricFired(const FsmState &s) const
{
    if (s.power != kOff)
        return false;
    if (opts_.design == PgDesign::kNord)
        return s.window >= thrCap_;
    return s.wake != 0;
}

int
FsmCheck::totalWork(const FsmState &s) const
{
    return s.pending + s.inFlight + s.buffered;
}

void
FsmCheck::tick(FsmState &s, bool sleepChoice) const
{
    // 1. Ramp completion (PgController::tick head).
    if (s.power == kWaking) {
        if (s.ramp <= 1) {
            s.power = kOn;
            s.ramp = 0;
        } else {
            --s.ramp;
        }
    }

    // 2. Policy.
    if (s.power == kOn) {
        if (sleepLegal(s) && sleepChoice) {
            s.power = kOff;
            s.ramp = 0;
            if (opts_.design == PgDesign::kNord)
                s.window = 0;  // stale window must not re-wake immediately
        }
    } else if (s.power == kOff) {
        if (opts_.design == PgDesign::kNord) {
            // NordController: sample the NI VC-request count into the
            // sliding window; waiting heads re-assert every cycle.
            s.window = static_cast<std::int8_t>(
                std::min<int>(thrCap_, s.window + s.pending));
            if (s.window >= thrCap_ && !s.suppressed) {
                s.power = kWaking;
                s.ramp = static_cast<std::int8_t>(rampLen_);
            }
        } else if (s.wake && !s.suppressed) {
            s.power = kWaking;
            s.ramp = static_cast<std::int8_t>(rampLen_);
        }
    }

    // 3. WU is a level signal: consumed once evaluated while on.
    if (s.power == kOn)
        s.wake = 0;
}

bool
FsmCheck::apply(FsmState &s, FsmEvent e) const
{
    const bool nord = opts_.design == PgDesign::kNord;
    switch (e) {
      case FsmEvent::kTick:
        tick(s, false);
        return true;
      case FsmEvent::kTickSleep:
        if (s.power != kOn || !sleepLegal(s))
            return false;
        tick(s, true);
        return true;
      case FsmEvent::kNewWork:
        if (s.pending >= kPendingRange - 1)
            return false;
        ++s.pending;
        return true;
      case FsmEvent::kCommitFlit:
        // The sender only commits while it observes the router on; the
        // hazard window (sleep decided with the flit already in flight)
        // is what the IC guard closes.
        if (s.power != kOn || s.pending == 0 || s.inFlight)
            return false;
        --s.pending;
        s.inFlight = 1;
        return true;
      case FsmEvent::kLandFlit:
        if (!s.inFlight || s.buffered)
            return false;
        s.inFlight = 0;
        s.buffered = 1;
        return true;
      case FsmEvent::kServeWork:
        if (s.power != kOn || !s.buffered)
            return false;
        s.buffered = 0;
        return true;
      case FsmEvent::kBypassServe:
        // NoRD decoupling: the NI bypass serves the node while the router
        // is gated; this is why NoRD work can always drain.
        if (!nord || s.power != kOff || s.pending == 0)
            return false;
        --s.pending;
        return true;
      case FsmEvent::kWakeRequest:
        // NordController::requestWakeup is deliberately a no-op.
        if (nord || s.power == kOn || s.wake)
            return false;
        s.wake = 1;
        return true;
      case FsmEvent::kSuppressOn:
        if (!opts_.faultEvents || s.suppressed)
            return false;
        s.suppressed = 1;
        return true;
      case FsmEvent::kSuppressOff:
        // Under the deaf-input mutation the suppression never clears.
        if (!s.suppressed || opts_.mutation == FsmMutation::kDeafWakeupInput)
            return false;
        s.suppressed = 0;
        return true;
      case FsmEvent::kForcedOff:
        // Model the forced-off fault on an empty router only: forcing the
        // rail off with flits in the datapath deliberately breaks the
        // invariant (that is the injected bug the *runtime* auditor must
        // flag); the handshake logic itself is only responsible for never
        // getting there on its own, which kDropIcGuard/kNoDrainCheck test.
        if (!opts_.faultEvents || s.power == kOff || s.buffered ||
            s.inFlight) {
            return false;
        }
        s.power = kOff;
        s.ramp = 0;
        return true;
      case FsmEvent::kWatchdogWake:
        // The watchdog path is not suppressible (see PgController::tick),
        // but it only observes the *latched* WU request -- which
        // NordController never sets (its policy retries tryBeginWakeup
        // every off-cycle instead of latching). So the watchdog rescues
        // the baselines' lost wakeups, never NoRD's: exactly what the
        // model must reproduce for the deaf-input mutation to be caught.
        if (!opts_.watchdog || s.power != kOff || !s.wake)
            return false;
        s.power = kWaking;
        s.ramp = static_cast<std::int8_t>(rampLen_);
        return true;
    }
    return false;
}

std::vector<std::pair<FsmEvent, FsmState>>
FsmCheck::successors(const FsmState &s) const
{
    static constexpr FsmEvent kAll[] = {
        FsmEvent::kTick,       FsmEvent::kTickSleep,
        FsmEvent::kNewWork,    FsmEvent::kCommitFlit,
        FsmEvent::kLandFlit,   FsmEvent::kServeWork,
        FsmEvent::kBypassServe, FsmEvent::kWakeRequest,
        FsmEvent::kSuppressOn, FsmEvent::kSuppressOff,
        FsmEvent::kForcedOff,  FsmEvent::kWatchdogWake,
    };
    std::vector<std::pair<FsmEvent, FsmState>> out;
    for (FsmEvent e : kAll) {
        FsmState next = s;
        if (apply(next, e) && !(next == s))
            out.emplace_back(e, next);
    }
    return out;
}

FsmResult
FsmCheck::run()
{
    FsmResult result;
    const int space = kPowerRange * kRampRange * kBoolRange *
                      kPendingRange * (thrCap_ + 1) * kBoolRange *
                      kBoolRange * kBoolRange;
    result.stateSpace = static_cast<std::size_t>(space);

    FsmState init;
    init.power = kOn;
    if (opts_.mutation == FsmMutation::kDeafWakeupInput)
        init.suppressed = 1;  // the input is dead from the start

    // Forward BFS: reachable set + spanning tree for trace extraction.
    std::vector<bool> seen(static_cast<size_t>(space), false);
    std::vector<int> parent(static_cast<size_t>(space), -1);
    std::vector<FsmEvent> via(static_cast<size_t>(space), FsmEvent::kTick);
    std::vector<std::vector<int>> radj(static_cast<size_t>(space));
    std::deque<int> queue;

    const int initId = encode(init);
    seen[initId] = true;
    queue.push_back(initId);
    while (!queue.empty()) {
        const int id = queue.front();
        queue.pop_front();
        ++result.statesReached;
        const FsmState s = decode(id);
        for (const auto &[e, next] : successors(s)) {
            const int nid = encode(next);
            radj[nid].push_back(id);
            ++result.transitions;
            if (!seen[nid]) {
                seen[nid] = true;
                parent[nid] = id;
                via[nid] = e;
                queue.push_back(nid);
            }
        }
    }
    result.unreachableStates = result.stateSpace - result.statesReached;

    auto traceTo = [&](int id) {
        std::vector<FsmTraceStep> trace;
        for (int cur = id; parent[cur] >= 0; cur = parent[cur])
            trace.push_back({via[cur], decode(cur)});
        std::reverse(trace.begin(), trace.end());
        return trace;
    };

    // Backward reachability helper over the explored graph.
    auto backwardFrom = [&](auto &&inTarget) {
        std::vector<bool> can(static_cast<size_t>(space), false);
        std::deque<int> bq;
        for (int id = 0; id < space; ++id) {
            if (seen[id] && inTarget(decode(id))) {
                can[id] = true;
                bq.push_back(id);
            }
        }
        while (!bq.empty()) {
            const int id = bq.front();
            bq.pop_front();
            for (int prev : radj[id]) {
                if (!can[prev]) {
                    can[prev] = true;
                    bq.push_back(prev);
                }
            }
        }
        return can;
    };

    // P3 (invariant): no reachable state holds a flit inside a gated
    // router. Report the shortest-trace witness BFS found.
    result.noStWhileGated = true;
    for (int id = 0; id < space && result.noStWhileGated; ++id) {
        if (!seen[id])
            continue;
        const FsmState s = decode(id);
        if (s.power == kOff && s.buffered) {
            result.noStWhileGated = false;
            FsmCounterexample cx;
            cx.property = FsmProperty::kNoStWhileGated;
            cx.what = "a flit sits buffered inside a gated-off router";
            cx.trace = traceTo(id);
            result.counterexamples.push_back(std::move(cx));
        }
    }

    // P1 (liveness): every reachable state can drain all its work.
    const auto canDrain = backwardFrom(
        [&](const FsmState &s) { return totalWork(s) == 0; });
    result.deadlockFree = true;
    for (int id = 0; id < space && result.deadlockFree; ++id) {
        if (!seen[id] || canDrain[id])
            continue;
        result.deadlockFree = false;
        FsmCounterexample cx;
        cx.property = FsmProperty::kDeadlockFree;
        cx.what = "no continuation drains the outstanding work from [" +
                  decode(id).describe() + "]";
        cx.trace = traceTo(id);
        result.counterexamples.push_back(std::move(cx));
    }

    // P2 (liveness): a fired wakeup metric can always be served.
    const auto canWake = backwardFrom(
        [&](const FsmState &s) { return s.power != kOff; });
    result.noLostWakeup = true;
    for (int id = 0; id < space && result.noLostWakeup; ++id) {
        if (!seen[id] || canWake[id])
            continue;
        const FsmState s = decode(id);
        if (!metricFired(s))
            continue;
        result.noLostWakeup = false;
        FsmCounterexample cx;
        cx.property = FsmProperty::kNoLostWakeup;
        cx.what = "wakeup metric fired at [" + s.describe() +
                  "] but no continuation ever powers the router on";
        cx.trace = traceTo(id);
        result.counterexamples.push_back(std::move(cx));
    }

    // P4 (coverage): sample a few unreachable abstract states.
    for (int id = 0; id < space &&
                     result.unreachableSamples.size() < 3; ++id) {
        if (!seen[id])
            result.unreachableSamples.push_back(decode(id).describe());
    }
    return result;
}

}  // namespace nord

/**
 * @file
 * Registry of shipped configurations for the verify matrix.
 *
 * Every configuration the examples and benches instantiate is derived from
 * NocConfig defaults plus a (design, mesh shape) choice; this registry
 * enumerates that matrix so nord-verify and scripts/verify_matrix.sh can
 * prove properties for *all* shipped operating points rather than whatever
 * subset a test happens to construct.
 */

#ifndef NORD_VERIFY_STATIC_CONFIG_REGISTRY_HH
#define NORD_VERIFY_STATIC_CONFIG_REGISTRY_HH

#include <string>
#include <vector>

#include "network/noc_config.hh"

namespace nord {

/** A named configuration in the shipped matrix. */
struct NamedConfig
{
    std::string name;   ///< e.g. "nord-4x4"
    NocConfig config;
};

/** A config with the given design and mesh shape, defaults otherwise. */
NocConfig makeShippedConfig(PgDesign design, int rows, int cols);

/** Parse a design name ("nopg", "convpg", "convpgopt", "nord").
 *  Returns false when @p name is unknown. */
bool parseDesignName(const std::string &name, PgDesign *out);

/** The shipped matrix: all four designs x {4x4, 8x8}. */
std::vector<NamedConfig> shippedConfigs();

}  // namespace nord

#endif  // NORD_VERIFY_STATIC_CONFIG_REGISTRY_HH

/**
 * @file
 * CDG deadlock analysis implementation (see cdg.hh for the method).
 */

#include "verify/static/cdg.hh"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/flit.hh"
#include "common/log.hh"
#include "router/router.hh"
#include "routing/routing_policy.hh"
#include "stats/network_stats.hh"
#include "topology/bypass_ring.hh"
#include "topology/criticality.hh"
#include "topology/mesh.hh"

namespace nord {

namespace {

/** Cap on accumulated problem diagnoses (one per state can explode). */
constexpr std::size_t kMaxProblems = 32;

/**
 * The worst-case steering table is deterministic per mesh shape and
 * perf-set size; share the process-wide CriticalityCache with NocSystem
 * (the verify matrix analyzes the same shapes repeatedly, and the 8x8
 * greedy sweep is the single most expensive step of the whole pass).
 */
const std::vector<double> &
cachedSteeringTable(const MeshTopology &mesh, const BypassRing &ring,
                    int perfCount)
{
    CriticalityCache &cache = CriticalityCache::instance();
    int count = perfCount;
    if (count < 0)
        count = cache.knee(mesh, ring);
    return cache.steering(mesh, ring, cache.perfSet(mesh, ring, count));
}

}  // namespace

std::string
CdgChannel::describe() const
{
    std::string s = "link " + std::to_string(from) + "-" + dirName(dir);
    if (cls == VcClass::kEscape)
        s += " escape/L" + std::to_string(escLevel);
    else
        s += " adaptive";
    return s;
}

std::string
CdgEdgeContext::describe() const
{
    std::string s = "at router " + std::to_string(here) + " (dst " +
                    std::to_string(dst) + ", in " + dirName(inPort);
    if (onEscape)
        s += ", escape L" + std::to_string(escLevel);
    if (misroutes > 0)
        s += ", misroutes " + std::to_string(misroutes);
    if (atBypass)
        s += ", bypass";
    s += ")";
    return s;
}

std::string
CdgCounterexample::describe() const
{
    if (empty())
        return "(no cycle)";
    std::string s = "escape-CDG dependency cycle of " +
                    std::to_string(channels.size()) + " channels:\n";
    for (size_t i = 0; i < channels.size(); ++i) {
        s += "  " + channels[i].describe() + " -> " +
             channels[(i + 1) % channels.size()].describe() + "  [" +
             edges[i].describe() + "]\n";
    }
    return s;
}

std::string
CdgResult::summary() const
{
    std::string s = "channels=" + std::to_string(numChannels) +
                    " (escape " + std::to_string(numEscapeChannels) +
                    ") edges=" + std::to_string(numEdges) + " (escape " +
                    std::to_string(numEscapeEdges) + ") states=" +
                    std::to_string(statesExplored);
    s += escapeAcyclic ? " acyclic=yes" : " acyclic=NO";
    s += escapeReachable ? " escape-reachable=yes" : " escape-reachable=NO";
    s += escapeDelivers ? " delivers=yes" : " delivers=NO";
    if (!problems.empty())
        s += " problems=" + std::to_string(problems.size());
    return s;
}

CdgAnalysis::CdgAnalysis(const NocConfig &config, CdgOptions opts)
    : config_(config), opts_(opts)
{
    mesh_ = std::make_unique<MeshTopology>(config_.rows, config_.cols);
    ring_ = std::make_unique<BypassRing>(*mesh_);
    stats_ = std::make_unique<NetworkStats>(config_.numNodes(), 0);
    policy_ = std::make_unique<RoutingPolicy>(config_, *mesh_, *ring_);
    if (config_.design == PgDesign::kNord && opts_.steering) {
        policy_->setSteeringTable(cachedSteeringTable(
            *mesh_, *ring_, config_.nordPerfCentricCount));
    }
    // The probe router only contributes its per-output neighbor-PG views
    // to route(); its id and wiring are never consulted.
    probe_ = std::make_unique<Router>(0, config_, *mesh_, *ring_, *stats_);
}

CdgAnalysis::~CdgAnalysis() = default;

int
CdgAnalysis::channelId(NodeId from, Direction dir, VcClass cls,
                       int level) const
{
    if (dir == Direction::kLocal ||
        mesh_->neighbor(from, dir) == kInvalidNode) {
        return -1;
    }
    const int slot = (cls == VcClass::kEscape) ? std::min(level, 1) : 2;
    return (from * kNumMeshDirs + dirIndex(dir)) * numClassSlots_ + slot;
}

CdgChannel
CdgAnalysis::channelOf(int id) const
{
    CdgChannel ch;
    const int slot = id % numClassSlots_;
    const int link = id / numClassSlots_;
    ch.from = link / kNumMeshDirs;
    ch.dir = indexDir(link % kNumMeshDirs);
    ch.cls = (slot == 2) ? VcClass::kAdaptive : VcClass::kEscape;
    ch.escLevel = (slot == 2) ? 0 : slot;
    return ch;
}

int
CdgAnalysis::hopEscapeLevel(NodeId here, Direction dir, int curLevel) const
{
    if (opts_.escapeLevelOverride >= 0)
        return opts_.escapeLevelOverride;
    Flit head;
    head.escLevel = static_cast<std::int8_t>(curLevel);
    head.onEscape = true;
    return policy_->escapeVcLevel(here, dir, head);
}

void
CdgAnalysis::addEdge(int a, int b, const CdgEdgeContext &ctx)
{
    if (a < 0 || b < 0 || a == b)
        return;
    const size_t key =
        static_cast<size_t>(a) * adj_.size() + static_cast<size_t>(b);
    if (edgeWitness_[key] >= 0)
        return;  // already recorded with a witness
    witnesses_.push_back(ctx);
    edgeWitness_[key] = static_cast<int>(witnesses_.size()) - 1;
    adj_[a].push_back(b);
}

void
CdgAnalysis::walkEscape(NodeId entry, NodeId dst, CdgResult &result)
{
    const int n = mesh_->numNodes();
    const int bound = opts_.walkBoundFactor * n + kNumMeshDirs;
    NodeId node = entry;
    Direction inPort = Direction::kLocal;
    int level = 0;  // adaptive packets always enter escape at level 0
    int prevCh = -1;
    for (int hop = 0; hop <= bound; ++hop) {
        if (node == dst) {
            delivered_[static_cast<size_t>(entry) * n + dst] = true;
            return;
        }
        Flit head;
        head.dst = dst;
        head.src = entry;
        head.onEscape = true;
        head.escLevel = static_cast<std::int8_t>(level);
        RouteRequest req = policy_->route(node, head, inPort, *probe_);
        ++result.statesExplored;
        if (!req.mustEscape && result.problems.size() < kMaxProblems) {
            result.problems.push_back(
                "escape-confined packet not forced to escape at router " +
                std::to_string(node) + " towards " + std::to_string(dst));
        }
        const Direction dir = req.escapeDir;
        if (dir == Direction::kLocal ||
            mesh_->neighbor(node, dir) == kInvalidNode) {
            if (result.problems.size() < kMaxProblems) {
                result.problems.push_back(
                    "invalid escape direction at router " +
                    std::to_string(node) + " towards " +
                    std::to_string(dst));
            }
            return;
        }
        const int outLevel = hopEscapeLevel(node, dir, level);
        const int ch = channelId(node, dir, VcClass::kEscape, outLevel);
        CdgEdgeContext ctx;
        ctx.here = node;
        ctx.dst = dst;
        ctx.inPort = inPort;
        ctx.onEscape = true;
        ctx.escLevel = level;
        addEdge(prevCh, ch, ctx);
        prevCh = ch;
        level = outLevel;
        inPort = opposite(dir);  // arrive at the next node on this side
        node = mesh_->neighbor(node, dir);
    }
    // Hop bound exceeded: the escape sub-network fails to deliver.
    if (result.problems.size() < kMaxProblems) {
        result.problems.push_back(
            "escape walk from " + std::to_string(entry) + " to " +
            std::to_string(dst) + " exceeded " + std::to_string(bound) +
            " hops (escape livelock)");
    }
}

void
CdgAnalysis::enumerateAdaptive(NodeId here, NodeId dst, CdgResult &result)
{
    const bool nord = config_.design == PgDesign::kNord;
    const int cap = config_.nordMisrouteCap;

    // Misroute counts around the cap boundary: under the cap, at the last
    // allowed value, and at the cap itself (where non-minimal adaptive
    // hops must disappear).
    int misrouteStates[3] = {0, cap > 0 ? cap - 1 : 0, cap};
    const int numMis = nord ? 3 : 1;

    // Neighbor power-state masks: NoRD's candidate set depends on which
    // downstream routers are gated; conventional designs only reorder
    // candidates, so one all-on and one half-gated mask suffice.
    std::vector<int> masks;
    if (nord && opts_.enumerateGatedViews) {
        for (int m = 0; m < (1 << kNumMeshDirs); ++m)
            masks.push_back(m);
    } else {
        masks = {0, 0b0101};
    }

    for (int mi = 0; mi < numMis; ++mi) {
        const int mis = misrouteStates[mi];
        for (int mask : masks) {
            for (int d = 0; d < kNumMeshDirs; ++d)
                probe_->forceGatedView(indexDir(d), (mask >> d) & 1);
            for (int pi = 0; pi <= kNumMeshDirs; ++pi) {
                const Direction inPort = indexDir(pi == kNumMeshDirs
                                                      ? dirIndex(Direction::kLocal)
                                                      : pi);
                if (inPort != Direction::kLocal &&
                    mesh_->neighbor(here, inPort) == kInvalidNode) {
                    continue;  // a flit cannot arrive from off-mesh
                }
                Flit head;
                head.dst = dst;
                head.misroutes = static_cast<std::int16_t>(mis);
                RouteRequest req =
                    policy_->route(here, head, inPort, *probe_);
                ++result.statesExplored;

                // Duato reachability: some escape egress must exist at
                // every state (route() always fills escapeDir), and the
                // escape walk from here must deliver.
                if (req.escapeDir == Direction::kLocal ||
                    channelId(here, req.escapeDir, VcClass::kEscape,
                              hopEscapeLevel(here, req.escapeDir, 0)) < 0) {
                    result.escapeReachable = false;
                    if (result.problems.size() < kMaxProblems) {
                        result.problems.push_back(
                            "no escape egress at router " +
                            std::to_string(here) + " towards " +
                            std::to_string(dst));
                    }
                }
                if (!req.mustEscape && req.adaptive.empty() &&
                    result.problems.size() < kMaxProblems) {
                    result.problems.push_back(
                        "router " + std::to_string(here) +
                        ": no adaptive candidate yet mustEscape not set");
                }
                // Misroute-cap semantics: at the cap, no adaptive
                // candidate may be non-minimal (Section 4.2).
                if (nord && mis >= cap) {
                    for (const RouteCandidate &c : req.adaptive) {
                        if (c.nonMinimal &&
                            result.problems.size() < kMaxProblems) {
                            result.problems.push_back(
                                "misroute cap violated: router " +
                                std::to_string(here) + " dst " +
                                std::to_string(dst) + " offers non-minimal " +
                                dirName(c.dir) + " at misroutes=" +
                                std::to_string(mis));
                        }
                    }
                }

                // Dependency edges. The input channel is the link the
                // packet occupies while waiting at `here`.
                const int inCh =
                    inPort == Direction::kLocal
                        ? -1  // injection source, never part of a cycle
                        : channelId(mesh_->neighbor(here, inPort),
                                    opposite(inPort), VcClass::kAdaptive, 0);
                CdgEdgeContext ctx;
                ctx.here = here;
                ctx.dst = dst;
                ctx.inPort = inPort;
                ctx.misroutes = mis;
                for (const RouteCandidate &c : req.adaptive) {
                    addEdge(inCh,
                            channelId(here, c.dir, VcClass::kAdaptive, 0),
                            ctx);
                }
                const int escLevel =
                    hopEscapeLevel(here, req.escapeDir, 0);
                addEdge(inCh,
                        channelId(here, req.escapeDir, VcClass::kEscape,
                                  escLevel),
                        ctx);
            }
        }
    }
    for (int d = 0; d < kNumMeshDirs; ++d)
        probe_->forceGatedView(indexDir(d), false);

    // Gated-router states: the same packet decided at the NI bypass of
    // `here` (routeAtBypass), cross-checked against route()'s bookkeeping.
    if (!nord)
        return;
    for (int mi = 0; mi < 3; ++mi) {
        const int mis = misrouteStates[mi];
        Flit head;
        head.dst = dst;
        head.misroutes = static_cast<std::int16_t>(mis);
        RouteRequest reqB = policy_->routeAtBypass(here, head);
        RouteRequest reqR = policy_->route(here, head, Direction::kLocal,
                                           *probe_);
        ++result.statesExplored;
        if (reqB.escapeNonMinimal != reqR.escapeNonMinimal &&
            result.problems.size() < kMaxProblems) {
            result.problems.push_back(
                "bypass/router escape-misroute bookkeeping diverges at " +
                std::to_string(here) + " towards " + std::to_string(dst));
        }
        if (mis >= cap && reqB.escapeNonMinimal && !reqB.mustEscape &&
            result.problems.size() < kMaxProblems) {
            result.problems.push_back(
                "bypass ignores misroute cap at router " +
                std::to_string(here) + " dst " + std::to_string(dst) +
                " misroutes=" + std::to_string(mis));
        }
        if (mis < cap && !reqB.mustEscape && reqB.adaptive.empty() &&
            result.problems.size() < kMaxProblems) {
            result.problems.push_back(
                "bypass offers neither adaptive nor forced escape at " +
                std::to_string(here));
        }
        CdgEdgeContext ctx;
        ctx.here = here;
        ctx.dst = dst;
        ctx.inPort = ring_->bypassInport(here);
        ctx.misroutes = mis;
        ctx.atBypass = true;
        const int inCh = channelId(ring_->predecessor(here),
                                   ring_->bypassOutport(ring_->predecessor(here)),
                                   VcClass::kAdaptive, 0);
        for (const RouteCandidate &c : reqB.adaptive) {
            if (c.dir == Direction::kLocal)
                continue;
            addEdge(inCh, channelId(here, c.dir, VcClass::kAdaptive, 0),
                    ctx);
        }
        const int escLevel = hopEscapeLevel(here, reqB.escapeDir, 0);
        addEdge(inCh,
                channelId(here, reqB.escapeDir, VcClass::kEscape, escLevel),
                ctx);
    }
}

void
CdgAnalysis::findEscapeCycle(CdgResult &result) const
{
    const int numCh = static_cast<int>(adj_.size());
    // Iterative DFS with coloring, restricted to escape channels.
    enum : std::int8_t { kWhite, kGray, kBlack };
    std::vector<std::int8_t> color(static_cast<size_t>(numCh), kWhite);
    std::vector<int> stack;
    std::vector<int> pathNext;  // per gray node: index into its adj list

    auto isEscape = [this](int ch) {
        return ch % numClassSlots_ != 2;
    };

    for (int start = 0; start < numCh; ++start) {
        if (!isEscape(start) || color[start] != kWhite)
            continue;
        stack.clear();
        stack.push_back(start);
        pathNext.assign(static_cast<size_t>(numCh), 0);
        color[start] = kGray;
        std::vector<int> path{start};
        while (!path.empty()) {
            const int u = path.back();
            bool advanced = false;
            for (int &i = pathNext[u];
                 i < static_cast<int>(adj_[u].size());) {
                const int v = adj_[u][i++];
                if (!isEscape(v))
                    continue;
                if (color[v] == kGray) {
                    // Back edge: extract the cycle v .. u (+ edge u->v).
                    auto it = std::find(path.begin(), path.end(), v);
                    std::vector<int> cyc(it, path.end());
                    result.escapeAcyclic = false;
                    for (size_t k = 0; k < cyc.size(); ++k) {
                        const int a = cyc[k];
                        const int b = cyc[(k + 1) % cyc.size()];
                        result.cycle.channels.push_back(channelOf(a));
                        const size_t key = static_cast<size_t>(a) *
                                               adj_.size() +
                                           static_cast<size_t>(b);
                        NORD_ASSERT(edgeWitness_[key] >= 0,
                                    "cycle edge without witness");
                        result.cycle.edges.push_back(
                            witnesses_[edgeWitness_[key]]);
                    }
                    return;
                }
                if (color[v] == kWhite) {
                    color[v] = kGray;
                    path.push_back(v);
                    advanced = true;
                    break;
                }
            }
            if (!advanced) {
                color[u] = kBlack;
                path.pop_back();
            }
        }
    }
}

CdgResult
CdgAnalysis::run()
{
    const int n = mesh_->numNodes();
    CdgResult result;
    result.escapeAcyclic = true;
    result.escapeReachable = true;
    result.escapeDelivers = true;

    adj_.assign(static_cast<size_t>(n) * kNumMeshDirs * numClassSlots_, {});
    edgeWitness_.assign(adj_.size() * adj_.size(), -1);
    witnesses_.clear();
    delivered_.assign(static_cast<size_t>(n) * n, false);

    // 1. Escape sub-network: walk every reachable (entry, dst) trajectory.
    for (NodeId entry = 0; entry < n; ++entry) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (dst != entry)
                walkEscape(entry, dst, result);
        }
    }
    for (NodeId entry = 0; entry < n; ++entry) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (dst != entry &&
                !delivered_[static_cast<size_t>(entry) * n + dst]) {
                result.escapeDelivers = false;
            }
        }
    }

    // 2. Adaptive states, including the gated-router bypass entry point.
    for (NodeId here = 0; here < n; ++here) {
        for (NodeId dst = 0; dst < n; ++dst) {
            if (dst != here)
                enumerateAdaptive(here, dst, result);
        }
    }

    // 3. Tally and cycle-check.
    for (size_t ch = 0; ch < adj_.size(); ++ch) {
        const bool escape = ch % numClassSlots_ != 2;
        if (adj_[ch].empty())
            continue;
        for (int to : adj_[ch]) {
            ++result.numEdges;
            if (escape && to % numClassSlots_ != 2)
                ++result.numEscapeEdges;
        }
    }
    std::vector<bool> present(adj_.size(), false);
    for (size_t ch = 0; ch < adj_.size(); ++ch) {
        for (int to : adj_[ch]) {
            present[ch] = true;
            present[to] = true;
        }
    }
    for (size_t ch = 0; ch < adj_.size(); ++ch) {
        if (present[ch]) {
            ++result.numChannels;
            if (ch % numClassSlots_ != 2)
                ++result.numEscapeChannels;
        }
    }
    findEscapeCycle(result);
    if (!result.problems.empty()) {
        // Delivery/reachability problems were already flagged per state.
        for (const std::string &p : result.problems) {
            if (p.find("livelock") != std::string::npos)
                result.escapeDelivers = false;
        }
    }
    return result;
}

bool
CdgAnalysis::replayCycle(const CdgCounterexample &cx,
                         std::string *why) const
{
    if (cx.empty()) {
        if (why)
            *why = "empty counterexample";
        return false;
    }
    for (size_t i = 0; i < cx.channels.size(); ++i) {
        const CdgChannel &a = cx.channels[i];
        const CdgChannel &b = cx.channels[(i + 1) % cx.channels.size()];
        const CdgEdgeContext &ctx = cx.edges[i];
        if (mesh_->neighbor(a.from, a.dir) != ctx.here ||
            b.from != ctx.here) {
            if (why) {
                *why = "edge " + std::to_string(i) +
                       ": channels do not meet at the deciding router";
            }
            return false;
        }
        Flit head;
        head.dst = ctx.dst;
        head.onEscape = ctx.onEscape;
        head.escLevel = static_cast<std::int8_t>(ctx.escLevel);
        head.misroutes = static_cast<std::int16_t>(ctx.misroutes);
        RouteRequest req =
            ctx.atBypass ? policy_->routeAtBypass(ctx.here, head)
                         : policy_->route(ctx.here, head, ctx.inPort,
                                          *probe_);
        if (req.escapeDir != b.dir) {
            if (why) {
                *why = "edge " + std::to_string(i) +
                       ": live policy routes escape to " +
                       dirName(req.escapeDir) + ", counterexample claims " +
                       dirName(b.dir);
            }
            return false;
        }
        const int level = hopEscapeLevel(ctx.here, req.escapeDir,
                                         ctx.escLevel);
        if (b.cls == VcClass::kEscape && level != b.escLevel) {
            if (why) {
                *why = "edge " + std::to_string(i) +
                       ": live escape level " + std::to_string(level) +
                       " != claimed " + std::to_string(b.escLevel);
            }
            return false;
        }
    }
    return true;
}

}  // namespace nord

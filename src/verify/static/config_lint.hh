/**
 * @file
 * Static configuration lint: the diagnosing counterpart of
 * NocConfig::validate().
 *
 * validate() is a hard gate -- it NORD_FATALs the process on the first
 * inconsistency, which is the right behavior at simulator startup but
 * useless for a verification CLI that should enumerate *all* problems of a
 * proposed configuration and keep going. This pass re-checks everything
 * validate() enforces, plus the structural assumptions the runtime checks
 * (InvariantAuditor atomic VC allocation, the bypass ring contract) take
 * for granted, and returns them as a list of diagnoses:
 *
 *  - mesh shape constraints (positive dims, even rows so the canonical
 *    serpentine Hamiltonian ring exists);
 *  - ring structure: a proposed node order must be a Hamiltonian cycle
 *    over mesh links -- a permutation of all nodes, pairwise mesh-adjacent,
 *    closing back on its start (lintRingOrder(), usable on orders the
 *    BypassRing constructor would fatally reject);
 *  - VC partition: escape class non-empty, adaptive class non-empty,
 *    NoRD's two-escape-VC dateline requirement;
 *  - buffer/credit assumptions behind atomic allocation: positive buffer
 *    depth, positive escape-after-blocked and misroute-cap settings,
 *    sane wakeup window/threshold/guard values.
 */

#ifndef NORD_VERIFY_STATIC_CONFIG_LINT_HH
#define NORD_VERIFY_STATIC_CONFIG_LINT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "network/noc_config.hh"

namespace nord {

class MeshTopology;

/** Outcome of a lint pass: empty problems == clean. */
struct LintResult
{
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }
    std::string summary() const;
};

/** Lint one configuration (never aborts, unlike validate()). */
LintResult lintConfig(const NocConfig &config);

/**
 * Lint a proposed bypass-ring node order for @p mesh: Hamiltonian (every
 * node exactly once), every consecutive hop a mesh link, and the order
 * closes into a cycle. Safe to call on orders BypassRing would reject.
 */
LintResult lintRingOrder(const MeshTopology &mesh,
                         const std::vector<NodeId> &order);

}  // namespace nord

#endif  // NORD_VERIFY_STATIC_CONFIG_LINT_HH

/**
 * @file
 * Bounded model checker for the power-gating handshake.
 *
 * The PG handshake's correctness claims -- a wakeup is never lost, a flit
 * is never delivered into a gated router, and the node can always drain its
 * work -- involve three interacting state machines: the PgController power
 * FSM, the NI-side wakeup logic (NoRD's sliding VC-request window or the
 * baselines' WU level signal), and the environment (traffic arrival, link
 * traversal, injected faults). This pass explores the *product* of an
 * abstraction of those machines exhaustively by BFS and checks:
 *
 *  - P1 deadlock-freedom: from every reachable state, a path exists that
 *    drains all outstanding work (weak fairness: the controller keeps
 *    ticking and helpful events may occur);
 *  - P2 no-lost-wakeup: from every reachable state whose wakeup metric has
 *    fired (NoRD: window sum at threshold while off; baselines: WU latched
 *    while off), a path exists to the router being on or ramping;
 *  - P3 no-ST-while-gated: no reachable state holds a flit inside a
 *    gated-off router's pipeline;
 *  - P4 coverage: states of the abstract space never reached are reported
 *    (several, like "gated with a buffered flit", are *supposed* to be
 *    unreachable -- their reachability is exactly a P3 violation).
 *
 * Abstraction and soundness. The model collapses quantities whose exact
 * value cannot change which handshake actions are enabled: the Vdd ramp is
 * shortened to 2 ticks (its length only delays the On transition), sleep
 * guards and emptiness streaks become a nondeterministic sleep-or-defer
 * choice whenever sleeping is legal (every guard refinement picks a subset
 * of those branches), outstanding work is capped at 2 units and the wakeup
 * window at the threshold (both saturate monotonically: more work/requests
 * only enables a superset of transitions). Each abstract event corresponds
 * to a concrete simulator action (see the table in DESIGN.md section 5.7),
 * so a counterexample trace is directly replayable against the live
 * simulator -- tests/test_static_verify.cc does exactly that.
 *
 * Mutations seed known-bad controllers for negative testing: a dead wakeup
 * command input (lost wakeups forever), dropping the incoming-flit guard
 * from the sleep check (drains into a gated router), and skipping the
 * drain check entirely.
 */

#ifndef NORD_VERIFY_STATIC_FSM_CHECK_HH
#define NORD_VERIFY_STATIC_FSM_CHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nord {

/** Environment / controller events of the abstract product FSM. */
enum class FsmEvent : std::int8_t
{
    kTick = 0,       ///< controller tick, policy declines to sleep
    kTickSleep,      ///< controller tick, policy elects to sleep
    kNewWork,        ///< a head flit starts waiting at the local NI
    kCommitFlit,     ///< sender commits a flit onto the link to the router
    kLandFlit,       ///< the in-flight flit arrives at the router
    kServeWork,      ///< the powered-on router serves the buffered flit
    kBypassServe,    ///< the NI bypass serves waiting work (NoRD, gated)
    kWakeRequest,    ///< neighbor/NI asserts WU (baselines only)
    kSuppressOn,     ///< fault: wakeup command input becomes stuck
    kSuppressOff,    ///< fault clears (absent under kDeafWakeupInput)
    kForcedOff,      ///< fault: rail forced off regardless of policy
    kWatchdogWake,   ///< always-on supervisor forces the ramp
};

/** Name of an event (stable, used in counterexample traces). */
const char *fsmEventName(FsmEvent e);

/** Seeded controller bugs for negative tests. */
enum class FsmMutation : std::int8_t
{
    kNone = 0,
    /**
     * The wakeup command input is permanently deaf: tryBeginWakeup()
     * always loses the command and no suppression-clearing event exists.
     * Models injectWakeupSuppression(forever); must be caught as a lost
     * wakeup (P2), and for baselines also as a deadlock (P1).
     */
    kDeafWakeupInput,
    /**
     * sleepAllowed() forgets to check the incoming-flit (IC) signal: the
     * router may gate off with a flit in flight towards it. Must be
     * caught as a flit delivered into a gated router (P3).
     */
    kDropIcGuard,
    /** sleepAllowed() forgets the datapath-drain check entirely. */
    kNoDrainCheck,
};

/** Name of a mutation. */
const char *fsmMutationName(FsmMutation m);

/** One abstract state of the product FSM. */
struct FsmState
{
    std::int8_t power = 0;      ///< PowerState numeric value
    std::int8_t ramp = 0;       ///< remaining abstract ramp ticks (0..2)
    std::int8_t wake = 0;       ///< WU level latched (baselines)
    std::int8_t pending = 0;    ///< work units waiting at the NI (0..2)
    std::int8_t window = 0;     ///< NoRD window sum, saturated at threshold
    std::int8_t inFlight = 0;   ///< flit on the link towards the router
    std::int8_t buffered = 0;   ///< flit inside the router datapath
    std::int8_t suppressed = 0; ///< wakeup commands currently lost

    bool operator==(const FsmState &o) const;
    std::string describe() const;
};

/** One step of a counterexample trace. */
struct FsmTraceStep
{
    FsmEvent event;
    FsmState next;  ///< state after the event
};

/** Checked property identifiers. */
enum class FsmProperty : std::int8_t
{
    kDeadlockFree = 0,
    kNoLostWakeup,
    kNoStWhileGated,
};

/** Name of a property. */
const char *fsmPropertyName(FsmProperty p);

/** A property violation with its replayable event trace from the
 *  initial state to the violating state. */
struct FsmCounterexample
{
    FsmProperty property;
    std::string what;            ///< human-readable diagnosis
    std::vector<FsmTraceStep> trace;

    std::string describe() const;
};

/** Model parameters. */
struct FsmOptions
{
    /** Which controller family to model. */
    PgDesign design = PgDesign::kNord;

    /** NoRD wakeup threshold (window sum that must trigger the ramp). */
    int wakeupThreshold = 2;

    /** Model the always-on wakeup watchdog (config.fault.wakeupWatchdog). */
    bool watchdog = false;

    /** Enable the fault environment events (suppression, forced-off). */
    bool faultEvents = true;

    /** Seeded controller bug, if any. */
    FsmMutation mutation = FsmMutation::kNone;
};

/** Everything the exploration proved (or refuted). */
struct FsmResult
{
    std::size_t statesReached = 0;
    std::size_t transitions = 0;
    std::size_t stateSpace = 0;        ///< encodable abstract states
    std::size_t unreachableStates = 0; ///< stateSpace - statesReached

    bool deadlockFree = false;   ///< P1
    bool noLostWakeup = false;   ///< P2
    bool noStWhileGated = false; ///< P3

    /** First counterexample found per violated property. */
    std::vector<FsmCounterexample> counterexamples;

    /** A few decoded unreachable states (P4, informational). */
    std::vector<std::string> unreachableSamples;

    bool ok() const
    {
        return deadlockFree && noLostWakeup && noStWhileGated;
    }

    std::string summary() const;
};

/**
 * The checker: builds the reachable product-FSM graph by BFS from the
 * initial state (router on, everything idle) and evaluates P1-P4 by
 * invariant checks plus backward reachability over the explored graph.
 */
class FsmCheck
{
  public:
    explicit FsmCheck(FsmOptions opts);

    /** Exhaustively explore and check. Runs in milliseconds. */
    FsmResult run();

    /**
     * Execute one event on a state, as the model defines it. Exposed so
     * tests can replay counterexample traces step by step and compare
     * each abstract state against the live simulator's. Returns false
     * when the event is not enabled in @p s (state unchanged).
     */
    bool apply(FsmState &s, FsmEvent e) const;

    const FsmOptions &options() const { return opts_; }

  private:
    /** Dense encoding of a state (perfect hash over the field ranges). */
    int encode(const FsmState &s) const;
    FsmState decode(int id) const;

    /** All (event, successor) pairs enabled in @p s. */
    std::vector<std::pair<FsmEvent, FsmState>>
    successors(const FsmState &s) const;

    /** The controller-tick part of the model (policy + ramp + WU). */
    void tick(FsmState &s, bool sleepChoice) const;

    /** Is sleeping legal in @p s under the (possibly mutated) checks? */
    bool sleepLegal(const FsmState &s) const;

    /** Has the wakeup metric fired in @p s (P2 antecedent)? */
    bool metricFired(const FsmState &s) const;

    /** Total outstanding work units in @p s (P1 quantity). */
    int totalWork(const FsmState &s) const;

    FsmOptions opts_;
    int thrCap_;     ///< window saturation value
    int rampLen_;    ///< abstract ramp length in ticks
};

}  // namespace nord

#endif  // NORD_VERIFY_STATIC_FSM_CHECK_HH

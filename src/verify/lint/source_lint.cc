/**
 * @file
 * nord-lint engine implementation (see source_lint.hh for the checks).
 *
 * Deliberately std-only (no nord dependencies): the CLI builds this file
 * standalone, and the engine must be able to lint a tree that does not
 * compile.
 */

#include "verify/lint/source_lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace nord {

namespace {

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when content[pos..pos+len) is the whole identifier @p word. */
bool
isWordAt(const std::string &s, size_t pos, const char *word, size_t len)
{
    if (s.compare(pos, len, word) != 0)
        return false;
    if (pos > 0 && isWordChar(s[pos - 1]))
        return false;
    if (pos + len < s.size() && isWordChar(s[pos + len]))
        return false;
    return true;
}

/** 1-based line number of offset @p pos. */
int
lineOf(const std::string &s, size_t pos)
{
    return 1 + static_cast<int>(std::count(s.begin(),
                                           s.begin() +
                                               static_cast<long>(pos),
                                           '\n'));
}

/** The full text of 1-based line @p line (empty when out of range). */
std::string
lineText(const std::string &s, int line)
{
    std::istringstream in(s);
    std::string text;
    for (int i = 0; i < line; ++i) {
        if (!std::getline(in, text))
            return "";
    }
    return text;
}

/**
 * True when `// nord-lint-allow(...)` naming @p check (or the blanket
 * alias @p alias, may be null) appears on @p line or the @p span lines
 * above it in the ORIGINAL content (annotations live in comments, which
 * stripCode removes).
 */
bool
allowedAt(const std::string &original, int line, const std::string &check,
          const char *alias, int span = 2)
{
    for (int l = line; l >= 1 && l >= line - span; --l) {
        const std::string text = lineText(original, l);
        const size_t at = text.find("nord-lint-allow(");
        if (at == std::string::npos)
            continue;
        const size_t close = text.find(')', at);
        if (close == std::string::npos)
            continue;
        const std::string args =
            text.substr(at + 16, close - (at + 16));
        if (args.find(check) != std::string::npos)
            return true;
        if (alias && args.find(alias) != std::string::npos)
            return true;
    }
    return false;
}

/** Scope of one file relative to the repo root. */
struct Scope
{
    bool underSrc = false;     ///< src/...
    bool underCommon = false;  ///< src/common/...
    bool isRngWrapper = false; ///< src/common/rng.{hh,cc}
    bool durability = false;   ///< src/ckpt/... or src/campaign/...
    bool header = false;       ///< *.hh
};

Scope
classify(const std::string &path)
{
    // Normalize separators; accept both repo-relative and absolute paths.
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    Scope s;
    auto within = [&p](const char *dir) {
        const std::string d = std::string(dir) + "/";
        return p.rfind(d, 0) == 0 ||
               p.find("/" + d) != std::string::npos;
    };
    s.underSrc = within("src");
    s.underCommon = within("src/common");
    s.isRngWrapper = p.find("src/common/rng.") != std::string::npos;
    s.durability = within("src/ckpt") || within("src/campaign");
    s.header = p.size() > 3 && p.compare(p.size() - 3, 3, ".hh") == 0;
    return s;
}

/**
 * Span of the declaration/statement starting at the `static` keyword:
 * ends at the first `;` at zero bracket depth, or where a brace block
 * opened after the keyword closes back to depth zero (function bodies,
 * brace initializers, lambda initializers).
 */
size_t
statementEnd(const std::string &s, size_t from)
{
    int depth = 0;
    bool sawBrace = false;
    const size_t cap = std::min(s.size(), from + 4000);
    for (size_t i = from; i < cap; ++i) {
        const char c = s[i];
        if (c == '(' || c == '[')
            ++depth;
        else if (c == ')' || c == ']')
            --depth;
        else if (c == '{') {
            ++depth;
            sawBrace = true;
        } else if (c == '}') {
            --depth;
            if (sawBrace && depth <= 0)
                return i + 1;
        } else if (c == ';' && depth <= 0) {
            return i + 1;
        }
    }
    return cap;
}

/**
 * Classify the `static` at @p pos: returns true (and the finding line)
 * when it declares a mutable variable -- i.e. scanning forward at zero
 * template/paren depth, none of const/constexpr/constinit/thread_local
 * appears, the previous token is not thread_local, and the declaration
 * hits `;`, `=` or `{` before any `(` (a `(` first means a function).
 */
bool
isMutableStaticVariable(const std::string &s, size_t pos, size_t len)
{
    // Previous token: `thread_local static int x;` is shard-safe.
    size_t b = pos;
    while (b > 0 &&
           std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    size_t e = b;
    while (b > 0 && isWordChar(s[b - 1]))
        --b;
    if (s.compare(b, e - b, "thread_local") == 0)
        return false;

    int angle = 0;
    size_t i = pos + len;
    while (i < s.size()) {
        const char c = s[i];
        if (c == '<') {
            ++angle;
            ++i;
        } else if (c == '>') {
            if (angle > 0)
                --angle;
            ++i;
        } else if (angle == 0 &&
                   (c == '(' || c == ';' || c == '=' || c == '{')) {
            return c != '(';
        } else if (isWordChar(c)) {
            size_t j = i;
            while (j < s.size() && isWordChar(s[j]))
                ++j;
            const std::string word = s.substr(i, j - i);
            if (word == "const" || word == "constexpr" ||
                word == "constinit" || word == "thread_local")
                return false;
            i = j;
        } else {
            ++i;
        }
    }
    return false;
}

bool
whitelisted(const LintFinding &f, const std::string &offendingLine,
            const std::vector<LintWhitelistEntry> &wl)
{
    for (const LintWhitelistEntry &w : wl) {
        if (f.check != w.check)
            continue;
        if (f.file.size() < w.fileSuffix.size() ||
            f.file.compare(f.file.size() - w.fileSuffix.size(),
                           w.fileSuffix.size(), w.fileSuffix) != 0)
            continue;
        if (offendingLine.find(w.token) != std::string::npos)
            return true;
    }
    return false;
}

void
checkStatics(const std::string &path, const std::string &original,
             const std::string &stripped, const Scope &scope,
             const std::vector<LintWhitelistEntry> &wl,
             std::vector<LintFinding> &out)
{
    for (size_t i = stripped.find("static"); i != std::string::npos;
         i = stripped.find("static", i + 6)) {
        if (!isWordAt(stripped, i, "static", 6))
            continue;
        const int line = lineOf(stripped, i);
        const std::string span =
            stripped.substr(i, statementEnd(stripped, i) - i);

        // env-latch: a static seeded from the environment freezes the
        // first environment it sees. Banned everywhere, const or not.
        if (span.find("getenv") != std::string::npos) {
            LintFinding f{path, line, "env-latch",
                          "static initialized from getenv(): latches the "
                          "first environment seen and can never be reset "
                          "(use an explicit resettable config object)"};
            if (!allowedAt(original, line, f.check, nullptr) &&
                !whitelisted(f, lineText(original, line), wl))
                out.push_back(std::move(f));
        }

        // mutable-static: src/ only.
        if (scope.underSrc &&
            isMutableStaticVariable(stripped, i, 6)) {
            LintFinding f{path, line, "mutable-static",
                          "non-const static variable: hidden process-"
                          "global state, a data race once two NocSystems "
                          "run on two threads (own it in a component, or "
                          "whitelist it with a story)"};
            if (!allowedAt(original, line, f.check, nullptr) &&
                !whitelisted(f, lineText(original, line), wl))
                out.push_back(std::move(f));
        }
    }
}

void
checkEnvReads(const std::string &path, const std::string &original,
              const std::string &stripped, const Scope &scope,
              std::vector<LintFinding> &out)
{
    // Tests and benches may read their own knobs from the environment;
    // the ban is on the simulator library itself.
    if (!scope.underSrc || scope.underCommon)
        return;
    for (size_t i = stripped.find("getenv"); i != std::string::npos;
         i = stripped.find("getenv", i + 6)) {
        if (!isWordAt(stripped, i, "getenv", 6))
            continue;
        const int line = lineOf(stripped, i);
        if (allowedAt(original, line, "env-read", nullptr))
            continue;
        out.push_back({path, line, "env-read",
                       "getenv() outside src/common/: environment side "
                       "channel (funnel it through common/)"});
    }
}

void
checkFlitHeap(const std::string &path, const std::string &original,
              const std::string &stripped, const Scope &scope,
              std::vector<LintFinding> &out)
{
    // Per-flit heap churn is the hot-path cost the pool arena
    // (src/common/arena.hh) exists to eliminate: flit/packet storage in
    // the simulator belongs in arena-backed containers, never in direct
    // new-expressions. The arena itself and code outside src/ (tests,
    // benches, tools) are exempt.
    if (!scope.underSrc ||
        path.find("src/common/arena.") != std::string::npos) {
        return;
    }
    static const struct
    {
        const char *word;
        size_t len;
    } kTypes[] = {{"Flit", 4}, {"PacketDescriptor", 16}};
    for (size_t i = stripped.find("new"); i != std::string::npos;
         i = stripped.find("new", i + 3)) {
        if (!isWordAt(stripped, i, "new", 3))
            continue;
        size_t j = i + 3;
        while (j < stripped.size() &&
               (stripped[j] == ' ' || stripped[j] == '\t' ||
                stripped[j] == '\n')) {
            ++j;
        }
        for (const auto &t : kTypes) {
            if (stripped.compare(j, t.len, t.word) != 0 ||
                !isWordAt(stripped, j, t.word, t.len)) {
                continue;
            }
            const int line = lineOf(stripped, i);
            if (allowedAt(original, line, "flit-heap", nullptr))
                continue;
            out.push_back(
                {path, line, "flit-heap",
                 std::string("new ") + t.word +
                     ": direct heap allocation of flit/packet storage "
                     "bypasses the pool arena (use an arena-backed "
                     "container, see src/common/arena.hh)"});
        }
    }
}

void
checkStdio(const std::string &path, const std::string &original,
           const std::string &stripped, const Scope &scope,
           std::vector<LintFinding> &out)
{
    if (!scope.underSrc || scope.underCommon)
        return;
    static const struct
    {
        const char *word;
        size_t len;
    } kBanned[] = {{"stderr", 6}, {"stdout", 6}, {"printf", 6},
                   {"scanf", 5}, {"puts", 4}};
    for (const auto &b : kBanned) {
        for (size_t i = stripped.find(b.word); i != std::string::npos;
             i = stripped.find(b.word, i + b.len)) {
            if (!isWordAt(stripped, i, b.word, b.len))
                continue;
            const int line = lineOf(stripped, i);
            if (allowedAt(original, line, "stdio-side-channel", nullptr))
                continue;
            out.push_back(
                {path, line, "stdio-side-channel",
                 std::string(b.word) +
                     " in src/ outside src/common/: route diagnostics "
                     "through diagStream() / a FILE* parameter so side "
                     "channels stay enumerable"});
        }
    }
}

void
checkDeterminism(const std::string &path, const std::string &original,
                 const std::string &stripped, const Scope &scope,
                 std::vector<LintFinding> &out)
{
    if (scope.isRngWrapper)
        return;
    auto report = [&](size_t pos, const std::string &msg) {
        const int line = lineOf(stripped, pos);
        if (allowedAt(original, line, "determinism", nullptr))
            return;
        out.push_back({path, line, "determinism", msg});
    };

    for (const char *word : {"rand", "srand"}) {
        const size_t len = std::string(word).size();
        for (size_t i = stripped.find(word); i != std::string::npos;
             i = stripped.find(word, i + len)) {
            if (!isWordAt(stripped, i, word, len)) {
                continue;
            }
            size_t j = i + len;
            while (j < stripped.size() &&
                   std::isspace(static_cast<unsigned char>(stripped[j])))
                ++j;
            if (j < stripped.size() && stripped[j] == '(')
                report(i, "libc rand()/srand(): global hidden PRNG state; "
                          "all randomness must flow through the seeded "
                          "src/common/rng.*");
        }
    }

    for (size_t i = stripped.find("std::random_device");
         i != std::string::npos;
         i = stripped.find("std::random_device", i + 18)) {
        report(i, "std::random_device: nondeterministic hardware entropy; "
                  "use the seeded src/common/rng.*");
    }

    for (size_t i = stripped.find("time"); i != std::string::npos;
         i = stripped.find("time", i + 4)) {
        if (!isWordAt(stripped, i, "time", 4))
            continue;
        size_t j = i + 4;
        while (j < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[j])))
            ++j;
        if (j >= stripped.size() || stripped[j] != '(')
            continue;
        const size_t close = stripped.find(')', j);
        if (close == std::string::npos)
            continue;
        std::string arg = stripped.substr(j + 1, close - j - 1);
        arg.erase(std::remove_if(arg.begin(), arg.end(),
                                 [](char c) {
                                     return std::isspace(
                                         static_cast<unsigned char>(c));
                                 }),
                  arg.end());
        if (arg.empty() || arg == "nullptr" || arg == "NULL" ||
            arg == "0")
            report(i, "wall-clock time() call: wall time must never leak "
                      "into simulation state");
    }
}

void
checkUncheckedIo(const std::string &path, const std::string &original,
                 const std::string &stripped, const Scope &scope,
                 std::vector<LintFinding> &out)
{
    // Durability code (checkpoints, the campaign journal) must never
    // drop an I/O result: an ignored fwrite/fsync/rename is exactly how
    // a "durable" journal silently loses its tail on a full disk. The
    // heuristic flags a call used as a bare statement -- the last
    // non-space character before the call (skipping a std:: qualifier)
    // is a statement boundary, so the return value cannot have been
    // consumed. `if (fsync(fd) != 0)` and `(void)fflush(f)` both pass:
    // the first checks, the second at least states intent.
    if (!scope.durability)
        return;
    static const struct
    {
        const char *word;
        size_t len;
    } kCalls[] = {{"fwrite", 6}, {"fflush", 6}, {"rename", 6},
                  {"fsync", 5}};
    for (const auto &c : kCalls) {
        for (size_t i = stripped.find(c.word); i != std::string::npos;
             i = stripped.find(c.word, i + c.len)) {
            if (!isWordAt(stripped, i, c.word, c.len))
                continue;
            size_t j = i + c.len;
            while (j < stripped.size() &&
                   std::isspace(static_cast<unsigned char>(stripped[j])))
                ++j;
            if (j >= stripped.size() || stripped[j] != '(')
                continue;  // not a call (declaration, comment token, ...)
            size_t b = i;
            if (b >= 5 && stripped.compare(b - 5, 5, "std::") == 0)
                b -= 5;
            while (b > 0 && std::isspace(
                                static_cast<unsigned char>(stripped[b - 1])))
                --b;
            const char prev = b > 0 ? stripped[b - 1] : ';';
            if (prev != ';' && prev != '{' && prev != '}')
                continue;
            const int line = lineOf(stripped, i);
            if (allowedAt(original, line, "unchecked-io", nullptr))
                continue;
            out.push_back({path, line, "unchecked-io",
                           std::string(c.word) +
                               "() result discarded in durability code: a "
                               "failed write/flush/rename must be "
                               "detected, not assumed (check the return, "
                               "or annotate a deliberate best-effort call "
                               "with nord-lint-allow(unchecked-io))"});
        }
    }

    // A checked rename() is still not durable by itself: the new
    // directory entry lives in the parent directory's data, and a power
    // loss right after rename() can resurface the old file on the next
    // mount. Every rename in durability code must therefore be followed
    // by a fsyncParentDir() call nearby (same atomic-publish sequence);
    // "nearby" is a window of a few lines, wide enough for the error
    // branch between them, narrow enough that the fsync is visibly part
    // of the same operation.
    constexpr int kDirFsyncWindow = 12;
    for (size_t i = stripped.find("rename"); i != std::string::npos;
         i = stripped.find("rename", i + 6)) {
        if (!isWordAt(stripped, i, "rename", 6))
            continue;
        size_t j = i + 6;
        while (j < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[j])))
            ++j;
        if (j >= stripped.size() || stripped[j] != '(')
            continue;
        // A word character immediately left of the name (after a
        // possible std:: qualifier) means a declaration's return type
        // (`int rename(...)`) -- not a call site.
        size_t b = i;
        if (b >= 5 && stripped.compare(b - 5, 5, "std::") == 0)
            b -= 5;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(stripped[b - 1])))
            --b;
        if (b > 0 && isWordChar(stripped[b - 1]))
            continue;
        const int line = lineOf(stripped, i);
        bool synced = false;
        for (size_t f = stripped.find("fsyncParentDir", i);
             f != std::string::npos;
             f = stripped.find("fsyncParentDir", f + 14)) {
            if (lineOf(stripped, f) <= line + kDirFsyncWindow) {
                synced = true;
            }
            break;
        }
        if (synced)
            continue;
        if (allowedAt(original, line, "unchecked-io", nullptr))
            continue;
        out.push_back({path, line, "unchecked-io",
                       "rename() without a nearby fsyncParentDir() in "
                       "durability code: the new directory entry is not "
                       "durable until the parent directory is fsynced "
                       "(publish via fsyncParentDir after the rename, or "
                       "annotate with nord-lint-allow(unchecked-io))"});
    }
}

void
checkClockedContract(const std::string &path, const std::string &original,
                     const std::string &stripped, const Scope &scope,
                     std::vector<LintFinding> &out)
{
    if (!scope.underSrc || !scope.header)
        return;
    for (size_t i = stripped.find("public Clocked");
         i != std::string::npos;
         i = stripped.find("public Clocked", i + 14)) {
        if (!isWordAt(stripped, i + 7, "Clocked", 7))
            continue;
        // Identify `class <Name>` to the left of the base clause.
        size_t cls = stripped.rfind("class", i);
        if (cls == std::string::npos)
            continue;
        size_t n = cls + 5;
        while (n < stripped.size() &&
               std::isspace(static_cast<unsigned char>(stripped[n])))
            ++n;
        size_t ne = n;
        while (ne < stripped.size() && isWordChar(stripped[ne]))
            ++ne;
        const std::string name = stripped.substr(n, ne - n);
        const int line = lineOf(stripped, cls);

        // Class body: first '{' after the base clause to its match.
        size_t open = stripped.find('{', i);
        if (open == std::string::npos)
            continue;
        int depth = 0;
        size_t close = open;
        for (; close < stripped.size(); ++close) {
            if (stripped[close] == '{')
                ++depth;
            else if (stripped[close] == '}' && --depth == 0)
                break;
        }
        const std::string body =
            stripped.substr(open, close - open);

        if (body.find("serializeState") == std::string::npos &&
            !allowedAt(original, line, "clocked-serialize",
                       "clocked-contract", 4)) {
            out.push_back({path, line, "clocked-serialize",
                           "Clocked subclass " + name +
                               " has no serializeState: its state would "
                               "silently vanish from checkpoints"});
        }
        if (body.find("declareOwnership") == std::string::npos &&
            !allowedAt(original, line, "clocked-ownership",
                       "clocked-contract", 4)) {
            out.push_back({path, line, "clocked-ownership",
                           "Clocked subclass " + name +
                               " has no declareOwnership: it is invisible "
                               "to the shard-safety access analysis"});
        }
    }
}

}  // namespace

std::string
stripCode(const std::string &content)
{
    std::string out = content;
    enum class St
    {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString,
    } st = St::kCode;
    std::string rawDelim;  // )delim" terminator for raw strings

    for (size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        switch (st) {
          case St::kCode:
            if (c == '/' && next == '/') {
                st = St::kLineComment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                st = St::kBlockComment;
                out[i] = ' ';
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || !isWordChar(content[i - 1]))) {
                // R"delim( ... )delim"
                size_t open = content.find('(', i + 2);
                if (open == std::string::npos)
                    break;
                rawDelim = ")";
                rawDelim.append(content, i + 2, open - (i + 2));
                rawDelim.push_back('"');
                st = St::kRawString;
                for (size_t j = i; j <= open && j < out.size(); ++j) {
                    if (out[j] != '\n')
                        out[j] = ' ';
                }
                i = open;
            } else if (c == '"') {
                st = St::kString;
                out[i] = ' ';
            } else if (c == '\'') {
                st = St::kChar;
                out[i] = ' ';
            }
            break;
          case St::kLineComment:
            if (c == '\n')
                st = St::kCode;
            else
                out[i] = ' ';
            break;
          case St::kBlockComment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::kString:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                out[i] = ' ';
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::kChar:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                out[i] = ' ';
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case St::kRawString:
            if (content.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (size_t j = i; j < i + rawDelim.size(); ++j)
                    out[j] = ' ';
                i += rawDelim.size() - 1;
                st = St::kCode;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

const std::vector<LintWhitelistEntry> &
lintWhitelist()
{
    static const std::vector<LintWhitelistEntry> kWhitelist = {
        {"src/topology/criticality.cc", "mutable-static",
         "static CriticalityCache cache",
         "process-wide criticality cache: the one sanctioned shared-state "
         "singleton, mutex-guarded, results immutable once computed"},
        {"src/common/trace.cc", "mutable-static",
         "static std::atomic<PacketId> selected",
         "trace selection: a single lock-free atomic, resettable via "
         "TraceConfig, never a data race"},
    };
    return kWhitelist;
}

std::vector<LintFinding>
lintSource(const std::string &path, const std::string &content,
           const std::vector<LintWhitelistEntry> &whitelist)
{
    std::vector<LintFinding> out;
    const Scope scope = classify(path);
    const std::string stripped = stripCode(content);
    checkStatics(path, content, stripped, scope, whitelist, out);
    checkEnvReads(path, content, stripped, scope, out);
    checkFlitHeap(path, content, stripped, scope, out);
    checkStdio(path, content, stripped, scope, out);
    checkDeterminism(path, content, stripped, scope, out);
    checkUncheckedIo(path, content, stripped, scope, out);
    checkClockedContract(path, content, stripped, scope, out);
    std::sort(out.begin(), out.end(),
              [](const LintFinding &a, const LintFinding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.check < b.check;
              });
    return out;
}

std::vector<LintFinding>
lintTree(const std::string &root,
         const std::vector<LintWhitelistEntry> &whitelist,
         std::string *err)
{
    namespace fs = std::filesystem;
    std::vector<LintFinding> out;
    std::vector<std::string> files;
    for (const char *dir :
         {"src", "tools", "bench", "examples", "tests"}) {
        const fs::path base = fs::path(root) / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (auto it = fs::recursive_directory_iterator(base, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file(ec))
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            const std::string rel =
                fs::relative(it->path(), root, ec).generic_string();
            // Planted-violation fixture trees (tests/fixtures/...) are
            // test data for the analyzers, not code to lint.
            if (rel.find("/fixtures/") != std::string::npos)
                continue;
            files.push_back(rel);
        }
    }
    std::sort(files.begin(), files.end());
    for (const std::string &rel : files) {
        std::ifstream in(fs::path(root) / rel,
                         std::ios::in | std::ios::binary);
        if (!in) {
            if (err)
                *err = "cannot read " + rel;
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        std::vector<LintFinding> found =
            lintSource(rel, buf.str(), whitelist);
        out.insert(out.end(), found.begin(), found.end());
    }
    return out;
}

}  // namespace nord

/**
 * @file
 * nord-lint: the static source pass behind the shard-safety analysis.
 *
 * The runtime AccessTracker (verify/access/) proves that *component*
 * state only crosses shard boundaries through declared channels. This
 * pass closes the remaining hole: *hidden* process-global state that no
 * component owns. It scans the C++ sources themselves and bans
 *
 *  - mutable-static: non-const, non-thread_local function-local or
 *    namespace-scope `static` variables in src/ (each one is a data race
 *    the moment two NocSystems run on two threads), outside a short
 *    whitelist whose entries each carry a story;
 *  - env-latch: a `static` initialized from getenv() -- state that
 *    silently freezes the first environment it sees (the old
 *    tracedPacket() bug), banned everywhere including src/common/;
 *  - env-read: getenv() outside src/common/ (environment access is a
 *    side channel; it must be funneled through common/);
 *  - stdio-side-channel: stderr/stdout/printf in src/ outside
 *    src/common/ (diagnostics go through diagStream() so every side
 *    channel is enumerable);
 *  - determinism: libc rand()/srand(), std::random_device and wall-clock
 *    time() anywhere in src/tools/bench/examples/tests except the
 *    seeded generator src/common/rng.* (absorbed from the retired
 *    scripts/determinism_lint.sh);
 *  - flit-heap: a direct new-expression of Flit or PacketDescriptor in
 *    src/ outside the arena itself (src/common/arena.*) -- flit/packet
 *    storage goes through arena-backed containers so the hot path never
 *    pays per-flit heap churn;
 *  - unchecked-io: fwrite/fflush/fsync/rename called as a bare statement
 *    (result discarded) in the durability layers src/ckpt/ and
 *    src/campaign/ -- an ignored I/O result there is how a "durable"
 *    journal silently loses its tail on a full disk;
 *  - clocked-contract: every class deriving directly from Clocked in a
 *    src/ header must declare both serializeState (checkpointable) and
 *    declareOwnership (shard-safety contract).
 *
 * A finding on line N is suppressed by `// nord-lint-allow(<check>)` on
 * line N or one of the two lines above it. The engine is std-only so the
 * CLI (tools/nord-lint) builds standalone.
 */

#ifndef NORD_VERIFY_LINT_SOURCE_LINT_HH
#define NORD_VERIFY_LINT_SOURCE_LINT_HH

#include <string>
#include <vector>

namespace nord {

/** One lint violation. */
struct LintFinding
{
    std::string file;     ///< path as handed to lintSource
    int line = 0;         ///< 1-based line number
    std::string check;    ///< check slug (e.g. "mutable-static")
    std::string message;  ///< human-readable description
};

/** One sanctioned exception, with its justification. */
struct LintWhitelistEntry
{
    std::string fileSuffix;  ///< applies when the path ends with this
    std::string check;       ///< check slug the exception is for
    std::string token;       ///< offending line must contain this
    std::string story;       ///< why this one is safe
};

/**
 * The built-in whitelist: the library's sanctioned mutable statics
 * (the mutex-guarded CriticalityCache, the lock-free trace selection).
 */
const std::vector<LintWhitelistEntry> &lintWhitelist();

/**
 * Lint one file's content. @p path selects scope-sensitive checks
 * (src/ vs src/common/ vs tests/...) and should be repo-relative.
 */
std::vector<LintFinding>
lintSource(const std::string &path, const std::string &content,
           const std::vector<LintWhitelistEntry> &whitelist =
               lintWhitelist());

/**
 * Lint every *.cc / *.hh under @p root's src, tools, bench, examples and
 * tests directories. Findings are sorted by (file, line). On I/O failure
 * returns what was gathered and sets *err.
 */
std::vector<LintFinding>
lintTree(const std::string &root,
         const std::vector<LintWhitelistEntry> &whitelist = lintWhitelist(),
         std::string *err = nullptr);

/**
 * Strip comments, string literals (including raw strings) and char
 * literals from C++ source, preserving newlines and length, so token
 * scans cannot be fooled by quoted or commented text. Exposed for tests.
 */
std::string stripCode(const std::string &content);

}  // namespace nord

#endif  // NORD_VERIFY_LINT_SOURCE_LINT_HH

/**
 * @file
 * Machine-readable finding output shared by the analysis CLIs
 * (nord-lint, nord-statecheck).
 *
 * With --json each finding is printed as one JSON object per line
 * (JSON Lines), so CI can render annotations without scraping the
 * human-readable text:
 *
 *   {"file":"src/sim/kernel.hh","line":42,"rule":"unserialized-member",
 *    "severity":"error","message":"..."}
 *
 * Header-only and std-only: both CLIs build standalone, outside the nord
 * library, exactly like the lint engine itself.
 */

#ifndef NORD_VERIFY_FINDINGS_JSON_HH
#define NORD_VERIFY_FINDINGS_JSON_HH

#include <cstdio>
#include <string>

namespace nord {

/** Escape @p s for inclusion in a JSON string literal. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Print one finding as a JSON Lines record on stdout. */
inline void
printFindingJson(const std::string &file, int line,
                 const std::string &rule, const std::string &severity,
                 const std::string &message)
{
    // nord-lint-allow(stdio-side-channel): stdout IS this helper's
    // output channel -- it exists so the analysis CLIs emit findings.
    std::printf("{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\","
                "\"severity\":\"%s\",\"message\":\"%s\"}\n",
                jsonEscape(file).c_str(), line, jsonEscape(rule).c_str(),
                jsonEscape(severity).c_str(), jsonEscape(message).c_str());
}

}  // namespace nord

#endif  // NORD_VERIFY_FINDINGS_JSON_HH

/**
 * @file
 * Runtime invariant auditor: the always-available correctness net.
 *
 * Registered with the SimKernel (after every other component, so it sees a
 * settled cycle), the auditor sweeps the whole network every
 * `verify.interval` cycles and on every router power-state transition,
 * mechanically checking the protocol-level invariants NoRD's correctness
 * argument rests on:
 *
 *  1. Flit conservation -- flits injected == flits in router buffers +
 *     links + NI queues/latches + flits ejected, network-wide.
 *  2. Credit conservation -- per (link, VC), upstream credits + credits
 *     in flight + flits in flight + downstream occupancy equals the buffer
 *     depth, including the Section 4.3 credit re-adjustment to the single
 *     NI bypass latch slot while the ring successor is gated.
 *  3. VC state-machine legality -- idle/alloc/active transitions with
 *     head/tail-flit accounting and exclusive output-VC ownership.
 *  4. Power-gating handshake safety -- no flit is delivered into (or in
 *     flight toward) a router that is not fully on except via the NoRD
 *     bypass edge; wakeup requests are never lost; a gated router's
 *     datapath is provably empty.
 *  5. Liveness -- a network-wide progress watchdog (deadlock) and a
 *     per-flit age bound (livelock), both dumping a full stall diagnosis
 *     before aborting.
 *
 * Violations are recorded with a human-readable diagnosis. What a
 * kernel-driven sweep then does is governed by `verify.policy`:
 * `kAbort` dumps state and panics on the first *unexpected* violation,
 * `kDiagnose` prints every new violation and keeps running, and
 * `kRecover` additionally repairs what it can -- credit deficits that a
 * FaultInjector announced via expectCreditDeficit() are restored in place
 * and counted in recoveredFaults(). Injected faults the auditor was told
 * about (announced leaks, suppressed or dead controllers) are marked
 * `expected` and never abort the run, so a fault campaign can measure
 * resilience while the auditor still catches genuine bugs. Direct calls
 * to sweep() only accumulate -- that is what the fault-injection tests
 * use. All inspection goes through cheap const introspection hooks on
 * routers, NIs, links and controllers; with `verify.interval == 0` the
 * per-cycle cost is a single branch.
 */

#ifndef NORD_VERIFY_INVARIANT_AUDITOR_HH
#define NORD_VERIFY_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flit.hh"
#include "common/state_annotations.hh"
#include "common/types.hh"
#include "network/noc_config.hh"
#include "sim/clocked.hh"

namespace nord {

class NocSystem;
class StateSerializer;

/**
 * Whole-network invariant checker (see file comment).
 */
class InvariantAuditor : public Clocked
{
  public:
    /** Invariant family a violation belongs to. */
    enum class Kind : std::int8_t
    {
        kFlitConservation,
        kCreditConservation,
        kVcState,
        kPgSafety,
        kLiveness,
    };

    /** One detected invariant violation. */
    struct Violation
    {
        Kind kind;
        NodeId node;            ///< primary router involved (-1: global)
        Cycle cycle;            ///< cycle the sweep detected it
        std::string diagnosis;  ///< human-readable description
        bool expected = false;  ///< attributable to an announced fault
    };

    InvariantAuditor(const NocSystem &sys, const VerifyConfig &config);

    /** True when periodic sweeps are configured (interval > 0). */
    bool enabled() const { return config_.interval > 0; }

    /** Kernel hook: watchdog every cycle, full sweep every interval. */
    void tick(Cycle now) override;

    std::string name() const override { return "auditor"; }

    /**
     * Run every check once, recording (but never aborting on) violations.
     *
     * @param controllersSettled true when all PG controllers have ticked
     *        this cycle (end-of-cycle sweeps); transition-triggered sweeps
     *        pass false and skip the lost-wakeup check, which is only
     *        meaningful once every controller has evaluated its policy.
     * @return number of violations found by this sweep
     */
    size_t sweep(Cycle now, bool controllersSettled = true);

    /** PgController transition hook (wired by NocSystem). */
    void onPowerTransition(Cycle now, PowerState from, PowerState to);

    /** All violations recorded so far. */
    const std::vector<Violation> &violations() const { return violations_; }

    /** True when some recorded violation is of kind @p k. */
    bool hasViolation(Kind k) const;

    /** Recorded violations not attributable to an announced fault. */
    size_t unexpectedViolations() const;

    /** Injected faults repaired so far (kRecover policy). */
    std::uint64_t recoveredFaults() const { return recovered_; }

    /**
     * Give the auditor a mutable handle on the system it watches, enabling
     * in-place repair under the kRecover policy. Wired by NocSystem.
     */
    void setRecoveryTarget(NocSystem *sys) { mutableSys_ = sys; }

    /**
     * FaultInjector hook: one credit of link (@p node, @p dir), VC @p vc
     * was deliberately leaked. The matching conservation deficit is marked
     * expected, and kRecover repairs it.
     */
    void expectCreditDeficit(NodeId node, Direction dir, VcId vc);

    /** Forget recorded violations (between fault-injection experiments). */
    void clearViolations() { violations_.clear(); }

    /** Completed sweeps (periodic + transition + manual). */
    std::uint64_t sweepCount() const { return sweeps_; }

    /** Short name of a violation kind. */
    static const char *kindName(Kind k);

    /**
     * Checkpoint hook: recorded violations (with their expected-fault
     * attribution), announced leak expectations, recovery tallies and the
     * progress watchdog, so a restored run neither re-flags repaired
     * faults nor false-alarms on its first post-restore sweep.
     */
    void serializeState(StateSerializer &s);

    /**
     * Shard-safety contract: sweeps read every component (wildcard
     * reader), and the kRecover policy may repair credits in any router
     * (wildcard writer). Like the FaultInjector, the auditor is a
     * barrier component under a per-shard kernel.
     */
    void declareOwnership(OwnershipDeclarator &d) const override;

  private:
    // Individual invariant families.
    void checkFlitConservation(Cycle now);
    void checkCreditConservation(Cycle now);
    void checkVcStates(Cycle now);
    void checkPgSafety(Cycle now, bool controllersSettled);
    void checkFlitAges(Cycle now);

    /** Deadlock watchdog: network-wide forward progress, every cycle. */
    void watchdog(Cycle now);

    /** Sum of all forward-progress events since construction. */
    std::uint64_t progressCounter() const;

    /** Flits currently inside the network fabric. */
    std::uint64_t inNetworkFlits() const;

    /** Occupancy / VC / PG snapshot of every non-idle router. */
    std::string stallDiagnosis(Cycle now) const;

    /** PG states and occupancy along @p flit's minimal route. */
    std::string routeDiagnosis(const Flit &flit, Cycle now) const;

    void report(Kind kind, NodeId node, Cycle now, std::string diagnosis,
                bool expected = false);

    /** Apply the configured policy to a kernel-driven sweep's findings. */
    void applyPolicy(size_t before, Cycle now);

    /** Expected-leak key for (node, output direction, VC). */
    static std::uint64_t leakKey(NodeId node, Direction dir, VcId vc)
    {
        return (static_cast<std::uint64_t>(node) << 16) |
               (static_cast<std::uint64_t>(dirIndex(dir)) << 8) |
               static_cast<std::uint64_t>(vc);
    }

    const NocSystem &sys_;
    NORD_STATE_EXCLUDE(config, "kRecover repair handle wired by NocSystem")
    NocSystem *mutableSys_ = nullptr;
    NORD_STATE_EXCLUDE(config, "audit policy fixed at construction")
    VerifyConfig config_;
    std::vector<Violation> violations_;
    std::uint64_t sweeps_ = 0;

    // Fault bookkeeping.
    std::map<std::uint64_t, int> expectedLeaks_;  ///< leakKey -> credits
    std::uint64_t recovered_ = 0;

    // Watchdog state.
    std::uint64_t lastProgress_ = 0;
    Cycle lastProgressCycle_ = 0;
    bool stallReported_ = false;
};

}  // namespace nord

#endif  // NORD_VERIFY_INVARIANT_AUDITOR_HH

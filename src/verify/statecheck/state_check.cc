/**
 * @file
 * nord-statecheck rules (see state_check.hh).
 */

#include "verify/statecheck/state_check.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <string>
#include <vector>

namespace nord {
namespace statecheck {

const char kRuleUnserializedMember[] = "unserialized-member";
const char kRuleExcludeButSerialized[] = "exclude-but-serialized";
const char kRuleBadExcludeCategory[] = "bad-exclude-category";
const char kRuleDanglingExclude[] = "dangling-exclude";
const char kRuleMissingSerializeBody[] = "missing-serialize-body";
const char kRuleUndeclaredTickMutation[] = "undeclared-tick-mutation";
const char kRuleUndeclaredChannelUse[] = "undeclared-channel-use";

namespace {

const std::array<const char *, 4> kCategories = {
    "cache", "stat", "perf_counter", "config"};

/** Outermost class of a nesting-qualified name ("Router::InputPort"). */
std::string
outermostOf(const std::string &qualified)
{
    const size_t pos = qualified.find("::");
    return pos == std::string::npos ? qualified : qualified.substr(0, pos);
}

/** Every class name along the nesting chain. */
std::vector<std::string>
chainOf(const std::string &qualified)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = qualified.find("::", start);
        if (pos == std::string::npos) {
            out.push_back(qualified.substr(start));
            return out;
        }
        out.push_back(qualified.substr(start, pos - start));
        start = pos + 2;
    }
}

const ClassModel *
findClass(const TreeModel &model, const std::string &name)
{
    for (const ClassModel &c : model.classes) {
        if (c.qualified == name || (!c.nested && c.name == name))
            return &c;
    }
    return nullptr;
}

/** True when some method of a class in @p chain mutates @p member. */
bool
writtenAnywhere(const TreeModel &model,
                const std::vector<std::string> &chain,
                const std::string &member)
{
    for (const MethodBody &mb : model.methods) {
        for (const std::string &cls : chain) {
            if (mb.cls == cls && mutatesMember(mb.text, member))
                return true;
        }
    }
    return false;
}

/** True when @p body reaches through pointer member @p name ("name->"). */
bool
usesPointerMember(const std::string &body, const std::string &name)
{
    for (size_t i = body.find(name); i != std::string::npos;
         i = body.find(name, i + 1)) {
        if (i > 0 && (std::isalnum(static_cast<unsigned char>(
                          body[i - 1])) ||
                      body[i - 1] == '_'))
            continue;
        size_t a = i + name.size();
        if (a < body.size() && (std::isalnum(static_cast<unsigned char>(
                                    body[a])) ||
                                body[a] == '_'))
            continue;
        while (a < body.size() &&
               std::isspace(static_cast<unsigned char>(body[a])))
            ++a;
        if (a + 1 < body.size() && body[a] == '-' && body[a + 1] == '>')
            return true;
        // Array of pointers: name[i]->...
        if (a < body.size() && body[a] == '[') {
            int depth = 0;
            while (a < body.size()) {
                if (body[a] == '[')
                    ++depth;
                else if (body[a] == ']' && --depth == 0) {
                    ++a;
                    break;
                }
                ++a;
            }
            while (a < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[a])))
                ++a;
            if (a + 1 < body.size() && body[a] == '-' &&
                body[a + 1] == '>')
                return true;
        }
    }
    return false;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

void
emit(std::vector<CheckFinding> &out, const std::string &file, int line,
     const char *rule, const std::string &message)
{
    CheckFinding f;
    f.file = file;
    f.line = line;
    f.rule = rule;
    f.severity = "error";
    f.message = message;
    out.push_back(std::move(f));
}

}  // namespace

namespace {

/**
 * Fixpoint-expand @p text with the bodies of @p cls methods whose names
 * it mentions (transitively). Lets accessor-based serialization --
 * io(Rng&) calling rawState()/setRawState() -- credit the members those
 * accessors touch.
 */
std::string
expandClosure(std::string text, std::vector<bool> &included,
              const std::vector<const MethodBody *> &own)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < own.size(); ++i) {
            if (included[i])
                continue;
            if (containsWord(text, own[i]->name)) {
                included[i] = true;
                text += own[i]->text;
                text += '\n';
                changed = true;
            }
        }
    }
    return text;
}

std::vector<const MethodBody *>
methodsOf(const TreeModel &model, const std::string &cls)
{
    std::vector<const MethodBody *> own;
    for (const MethodBody &mb : model.methods) {
        if (mb.cls == cls)
            own.push_back(&mb);
    }
    return own;
}

}  // namespace

std::string
methodClosure(const TreeModel &model, const std::string &cls,
              const std::vector<std::string> &seeds)
{
    const std::vector<const MethodBody *> own = methodsOf(model, cls);
    std::vector<bool> included(own.size(), false);
    std::string text;
    for (size_t i = 0; i < own.size(); ++i) {
        for (const std::string &seed : seeds) {
            if (own[i]->name == seed) {
                included[i] = true;
                text += own[i]->text;
                text += '\n';
                break;
            }
        }
    }
    return expandClosure(std::move(text), included, own);
}

std::string
expandWalk(const TreeModel &model, const std::string &cls,
           std::string walk)
{
    const std::vector<const MethodBody *> own = methodsOf(model, cls);
    std::vector<bool> included(own.size(), false);
    return expandClosure(std::move(walk), included, own);
}

std::vector<CheckFinding>
checkTree(const TreeModel &model)
{
    std::vector<CheckFinding> out;

    // External serializer walks (StateSerializer::io(T&)).
    auto externalWalk = [&](const std::string &cls) {
        std::string text;
        const std::string key = "io#" + cls;
        for (const MethodBody &mb : model.methods) {
            if (mb.name == key) {
                text += mb.text;
                text += '\n';
            }
        }
        return text;
    };

    for (const ClassModel &cls : model.classes) {
        const ClassModel *top =
            cls.nested ? findClass(model, outermostOf(cls.qualified))
                       : &cls;
        const std::string external = externalWalk(cls.name);

        // Scope: Clocked, serializable, annotated, externally walked, or
        // a nested struct used as member storage of an in-scope class.
        bool inScope = cls.clocked || cls.declaresSerialize ||
                       !cls.danglingExcludeLines.empty() ||
                       !external.empty();
        for (const MemberModel &m : cls.members) {
            if (m.excluded)
                inScope = true;
        }
        if (!inScope && cls.nested && cls.usedAsMemberType && top &&
            top != &cls) {
            inScope = top->clocked || top->declaresSerialize;
        }
        if (!inScope)
            continue;

        // The serialize walk this class's members must appear in: its own
        // serializeState closure, the outermost class's walk for nested
        // storage structs, or the external io(T&) body.
        std::string walk =
            methodClosure(model, cls.name, {"serializeState"});
        if (walk.empty() && cls.nested && top && top != &cls)
            walk = methodClosure(model, top->name, {"serializeState"});
        if (!external.empty())
            walk = expandWalk(model, cls.name, walk + external);

        // Tick-path mutation context: this class when Clocked, else the
        // outermost Clocked class whose tick drives it.
        std::string tickCls;
        if (cls.clocked)
            tickCls = cls.name;
        else if (top && top != &cls && top->clocked)
            tickCls = top->name;
        const std::string tickClosure =
            tickCls.empty()
                ? std::string()
                : methodClosure(model, tickCls, {"tick", "commit"});

        const bool serializesChain =
            cls.declaresSerialize ||
            (top && top != &cls && top->declaresSerialize);

        for (int line : cls.danglingExcludeLines) {
            emit(out, cls.file, line, kRuleDanglingExclude,
                 "NORD_STATE_EXCLUDE in " + cls.qualified +
                     " binds to no member declaration");
        }

        int checkable = 0;
        for (const MemberModel &m : cls.members) {
            if (!m.isStatic && !m.isConst && !m.isReference)
                ++checkable;
        }
        const bool walkMissing =
            walk.empty() && cls.declaresSerialize && checkable > 0;
        if (walkMissing) {
            emit(out, cls.file, cls.line, kRuleMissingSerializeBody,
                 cls.qualified +
                     " declares serializeState but no body was found "
                     "for its walk");
        }

        const std::vector<std::string> chain = chainOf(cls.qualified);
        for (const MemberModel &m : cls.members) {
            if (m.isStatic || m.isConst || m.isReference)
                continue;
            const bool serialized = containsWord(walk, m.name);
            if (!m.excluded) {
                if (!serialized && !walkMissing) {
                    emit(out, cls.file, m.line, kRuleUnserializedMember,
                         cls.qualified + "::" + m.name +
                             " is not serialized and carries no "
                             "NORD_STATE_EXCLUDE annotation");
                }
                continue;
            }
            if (serialized) {
                emit(out, cls.file, m.excludeLine,
                     kRuleExcludeButSerialized,
                     cls.qualified + "::" + m.name +
                         " carries NORD_STATE_EXCLUDE but appears in "
                         "the serializeState walk");
            }
            bool known = false;
            for (const char *cat : kCategories)
                known = known || m.category == cat;
            if (!known) {
                emit(out, cls.file, m.excludeLine, kRuleBadExcludeCategory,
                     cls.qualified + "::" + m.name +
                         ": unknown exclude category '" + m.category +
                         "' (expected cache, stat, perf_counter or "
                         "config)");
            } else if (m.category == "cache") {
                if (!writtenAnywhere(model, chain, m.name)) {
                    emit(out, cls.file, m.excludeLine,
                         kRuleBadExcludeCategory,
                         cls.qualified + "::" + m.name +
                             ": 'cache' member is never written by any "
                             "method; annotate as config instead");
                }
            } else if (m.category == "stat") {
                if (!serializesChain) {
                    emit(out, cls.file, m.excludeLine,
                         kRuleBadExcludeCategory,
                         cls.qualified + "::" + m.name +
                             ": 'stat' is only legal in classes that "
                             "serialize the rest of their state");
                }
            } else if (m.category == "perf_counter") {
                if (!startsWith(cls.file, "src/sim/") &&
                    !startsWith(cls.file, "src/common/")) {
                    emit(out, cls.file, m.excludeLine,
                         kRuleBadExcludeCategory,
                         cls.qualified + "::" + m.name +
                             ": 'perf_counter' is only legal under "
                             "src/sim/ and src/common/");
                }
            } else if (m.category == "config") {
                if (!tickClosure.empty() &&
                    mutatesMember(tickClosure, m.name)) {
                    emit(out, cls.file, m.excludeLine,
                         kRuleBadExcludeCategory,
                         cls.qualified + "::" + m.name +
                             ": 'config' member is mutated on the tick "
                             "path");
                }
            }
        }

        // Ownership-coverage for Clocked classes.
        if (cls.clocked) {
            const std::string ownBody =
                methodClosure(model, cls.name, {"declareOwnership"});
            bool tickMutates = false;
            int mutLine = cls.line;
            for (const MemberModel &m : cls.members) {
                if (m.isStatic || m.isConst)
                    continue;
                if (!tickClosure.empty() &&
                    mutatesMember(tickClosure, m.name)) {
                    tickMutates = true;
                    mutLine = m.line;
                    break;
                }
            }
            if (tickMutates && !containsWord(ownBody, "owns")) {
                emit(out, cls.file, mutLine, kRuleUndeclaredTickMutation,
                     cls.qualified +
                         " mutates member state on the tick path but "
                         "declareOwnership claims no ownership domain");
            }
            const bool declaresChannels =
                containsWord(ownBody, "writes") ||
                containsWord(ownBody, "writesAny") ||
                containsWord(ownBody, "reads") ||
                containsWord(ownBody, "readsAny");
            for (const MemberModel &m : cls.members) {
                if (!m.isPointer || m.isStatic)
                    continue;
                if (!tickClosure.empty() &&
                    usesPointerMember(tickClosure, m.name) &&
                    !declaresChannels) {
                    emit(out, cls.file, m.line, kRuleUndeclaredChannelUse,
                         cls.qualified + " reaches through pointer " +
                             m.name +
                             " on the tick path but declareOwnership "
                             "declares no channel access");
                    break;
                }
            }
        }
    }

    std::sort(out.begin(), out.end(),
              [](const CheckFinding &a, const CheckFinding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

}  // namespace statecheck
}  // namespace nord
